package metricdb

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func calibBatch(items []Item, m int) []Query {
	qs := make([]Query, m)
	for i := range qs {
		qs[i] = Query{ID: uint64(i), Vec: items[(i*13)%len(items)].Vec, Type: KNNQuery(5)}
	}
	return qs
}

// TestCalibrationObservational is the satellite property test: a DB with
// the calibration recorder attached must produce bit-identical answers and
// msq.Stats to one without, for every engine at widths 1, 2, and 8 — the
// recorder only reads numbers the run already produced.
func TestCalibrationObservational(t *testing.T) {
	items := testItems(11, 600, 6)
	engines := []EngineKind{EngineScan, EngineXTree, EngineVAFile, EnginePivot, EnginePMTree}
	widths := []int{1, 2, 8}
	for _, eng := range engines {
		for _, m := range widths {
			plain, err := Open(items, Options{Engine: eng})
			if err != nil {
				t.Fatalf("%s: %v", eng, err)
			}
			calibrated, err := Open(items, Options{Engine: eng, Calibrate: true})
			if err != nil {
				t.Fatalf("%s calibrated: %v", eng, err)
			}
			queries := calibBatch(items, m)
			pa, ps, err := plain.NewBatch().QueryAll(queries)
			if err != nil {
				t.Fatalf("%s m=%d plain: %v", eng, m, err)
			}
			ca, cs, err := calibrated.NewBatch().QueryAll(queries)
			if err != nil {
				t.Fatalf("%s m=%d calibrated: %v", eng, m, err)
			}
			if ps != cs {
				t.Errorf("%s m=%d: stats diverge with calibration on: %+v vs %+v", eng, m, cs, ps)
			}
			if !reflect.DeepEqual(pa, ca) {
				t.Errorf("%s m=%d: answers diverge with calibration on", eng, m)
			}
			if got := calibrated.Calibration().Samples(); got != 1 {
				t.Errorf("%s m=%d: recorded %d samples, want 1", eng, m, got)
			}
			if plain.Calibration() != nil {
				t.Errorf("%s: plain DB grew a recorder", eng)
			}

			// EXPLAIN with calibration stays a real run too, and carries
			// the predicted rows (raw always; calibrated after the sample
			// above).
			pex, err := plain.Explain(queries)
			if err != nil {
				t.Fatalf("%s m=%d plain explain: %v", eng, m, err)
			}
			cex, err := calibrated.Explain(queries)
			if err != nil {
				t.Fatalf("%s m=%d calibrated explain: %v", eng, m, err)
			}
			if pex.Stats != cex.Stats {
				t.Errorf("%s m=%d: explain stats diverge: %+v vs %+v", eng, m, cex.Stats, pex.Stats)
			}
			if !reflect.DeepEqual(pex.Queries, cex.Queries) {
				t.Errorf("%s m=%d: explain profiles diverge", eng, m)
			}
			if len(pex.Predicted) != 0 {
				t.Errorf("%s: plain explain carries predictions", eng)
			}
			if len(cex.Predicted) != 2 {
				t.Fatalf("%s m=%d: calibrated explain carries %d predicted rows, want 2 (model + calibrated)", eng, m, len(cex.Predicted))
			}
			if cex.Predicted[0].Source != "model" || cex.Predicted[1].Source != "calibrated" {
				t.Errorf("%s: predicted row sources = %q, %q", eng, cex.Predicted[0].Source, cex.Predicted[1].Source)
			}
			if cex.Predicted[0].Engine != string(eng) {
				t.Errorf("%s: predicted row prices engine %q", eng, cex.Predicted[0].Engine)
			}
		}
	}
}

// TestCalibrationSurfaces checks the read paths over a warmed recorder:
// ProcessorStats carries the Calibration section and the counter
// partition, and DB.AdviseBatch adds the calibrated ranking.
func TestCalibrationSurfaces(t *testing.T) {
	items := testItems(12, 500, 6)
	db, err := Open(items, Options{Engine: EnginePivot, Calibrate: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := calibBatch(items, 8)
	for i := 0; i < 3; i++ {
		if _, _, err := db.NewBatch().QueryAll(queries); err != nil {
			t.Fatal(err)
		}
	}
	ps := db.ProcessorStats()
	if ps.Calibration == nil {
		t.Fatal("ProcessorStats.Calibration is nil with Calibrate on")
	}
	if ps.Calibration.Samples != 3 {
		t.Errorf("calibration samples = %d, want 3", ps.Calibration.Samples)
	}
	if len(ps.Calibration.Engines) != 1 || ps.Calibration.Engines[0].Engine != "pivot" {
		t.Errorf("calibration engines = %+v, want one pivot entry", ps.Calibration.Engines)
	}
	if ps.PivotDistCalcs == 0 {
		t.Error("ProcessorStats.PivotDistCalcs = 0 on the pivot engine")
	}

	a, err := db.AdviseBatch(queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Calibrated) != len(a.Candidates) {
		t.Fatalf("calibrated ranking has %d rows, want %d", len(a.Calibrated), len(a.Candidates))
	}
	for i := 1; i < len(a.Calibrated); i++ {
		if a.Calibrated[i].Total < a.Calibrated[i-1].Total {
			t.Errorf("calibrated ranking not sorted at %d: %+v", i, a.Calibrated)
		}
	}

	// PredictBlock stays silent below the evidence floor (3 < 8), then
	// predicts once the floor is reached.
	if got := db.PredictBlock(queries); got != 0 {
		t.Errorf("PredictBlock below MinSamples = %v, want 0", got)
	}
	for i := 0; i < 6; i++ {
		db.ObserveBlock(queries, Stats{DistCalcs: 1000, PagesRead: 10}, 2*time.Millisecond)
	}
	if got := db.PredictBlock(queries); got <= 0 {
		t.Errorf("PredictBlock past MinSamples = %v, want > 0", got)
	}

	// A plain DB's hooks are inert.
	plain, err := Open(items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.PredictBlock(queries); got != 0 {
		t.Errorf("plain PredictBlock = %v", got)
	}
	plain.ObserveBlock(queries, Stats{}, time.Millisecond) // must not panic
	if plain.ProcessorStats().Calibration != nil {
		t.Error("plain ProcessorStats carries a Calibration section")
	}
}

// TestCalibrationConcurrentStress hammers one calibrated DB with
// concurrent batches, advise calls and snapshot reads under -race: the
// recorder is the only shared mutable state the feature adds, and it must
// hold up.
func TestCalibrationConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short")
	}
	items := testItems(13, 400, 4)
	db, err := Open(items, Options{Engine: EngineScan, Calibrate: true, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, rounds = 8, 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			queries := calibBatch(items, 1+g%4)
			for i := 0; i < rounds; i++ {
				if _, _, err := db.NewBatch().QueryAll(queries); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if _, err := db.AdviseBatch(queries, 1); err != nil {
					t.Errorf("goroutine %d advise: %v", g, err)
					return
				}
				db.ProcessorStats()
				db.PredictBlock(queries)
			}
		}(g)
	}
	wg.Wait()
	if got := db.Calibration().Samples(); got != goroutines*rounds {
		t.Fatalf("recorded %d samples, want %d", got, goroutines*rounds)
	}
}
