package metricdb

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"metricdb/internal/dataset"
	"metricdb/internal/pivot"
)

func storedDir(t *testing.T, seed int64, n, dim, capacity int) string {
	t.Helper()
	dir := t.TempDir()
	if err := dataset.SaveDir(dir, testItems(seed, n, dim), dataset.SaveOptions{
		PageCapacity: capacity, NoSync: true,
	}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestOpenStoredMatchesOpen: for every engine kind, a database served from
// persistent storage must answer exactly like one built over the same
// items in memory — answers bit for bit, and for the scan engine (which
// serves the stored page layout directly) the identical I/O statistics.
func TestOpenStoredMatchesOpen(t *testing.T) {
	const dim, n, capacity = 4, 260, 16
	items := testItems(61, n, dim)
	dir := storedDir(t, 61, n, dim, capacity)

	rng := rand.New(rand.NewSource(62))
	point := func() Vector {
		v := make(Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		return v
	}
	batch := []Query{
		{ID: 0, Vec: point(), Type: RangeQuery(0.5)},
		{ID: 1, Vec: point(), Type: KNNQuery(9)},
		{ID: 2, Vec: point(), Type: BoundedKNNQuery(4, 0.7)},
		{ID: 3, Vec: point(), Type: KNNQuery(3)},
	}

	for _, kind := range []EngineKind{EngineScan, EngineXTree, EngineVAFile, EnginePivot, EnginePMTree} {
		for _, mmap := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/mmap=%v", kind, mmap), func(t *testing.T) {
				opts := Options{Engine: kind, PageCapacity: capacity, BufferPages: 4}
				mem, err := Open(items, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.Mmap = mmap
				stored, err := OpenStored(dir, opts)
				if err != nil {
					t.Fatal(err)
				}
				defer func() {
					if err := stored.Close(); err != nil {
						t.Errorf("Close: %v", err)
					}
				}()

				if mode, ok := stored.Stored(); !ok || mode == "" {
					t.Errorf("Stored() = %q, %v; want a storage mode", mode, ok)
				}
				if _, ok := mem.Stored(); ok {
					t.Error("in-memory DB claims persistent storage")
				}
				if stored.Len() != mem.Len() || stored.Dim() != mem.Dim() {
					t.Fatalf("shape: stored %d/%d, mem %d/%d", stored.Len(), stored.Dim(), mem.Len(), mem.Dim())
				}

				memAns, memStats, err := mem.NewBatch().QueryAll(batch)
				if err != nil {
					t.Fatal(err)
				}
				storedAns, storedStats, err := stored.NewBatch().QueryAll(batch)
				if err != nil {
					t.Fatal(err)
				}
				if len(memAns) != len(storedAns) {
					t.Fatalf("answer list counts differ")
				}
				for q := range memAns {
					if len(memAns[q]) != len(storedAns[q]) {
						t.Fatalf("query %d: %d vs %d answers", q, len(memAns[q]), len(storedAns[q]))
					}
					for i := range memAns[q] {
						if memAns[q][i].ID != storedAns[q][i].ID ||
							math.Float64bits(memAns[q][i].Dist) != math.Float64bits(storedAns[q][i].Dist) {
							t.Fatalf("query %d answer %d differs: %+v vs %+v",
								q, i, memAns[q][i], storedAns[q][i])
						}
					}
				}
				// The pivot engine is the one kind whose stored layout
				// differs from its in-memory one (Open lays pages out in
				// pivot order, OpenStored serves the dataset's sequential
				// pages), so its pruning statistics legitimately diverge.
				if kind != EnginePivot && storedStats != memStats {
					t.Errorf("stats differ:\n  mem:    %+v\n  stored: %+v", memStats, storedStats)
				}
				if kind == EngineScan && stored.IOStats() != mem.IOStats() {
					t.Errorf("scan I/O stats differ: mem %+v, stored %+v", mem.IOStats(), stored.IOStats())
				}

				st, ok := stored.StorageStats()
				if !ok {
					t.Fatal("stored DB reports no storage stats")
				}
				if mode, _ := stored.Stored(); mode == "pread" && (st.Preads == 0 || st.BytesRead == 0) {
					t.Errorf("pread mode issued no reads: %+v", st)
				}
				if st.ChecksumFailures != 0 {
					t.Errorf("checksum failures on a clean dataset: %+v", st)
				}
				if _, ok := mem.StorageStats(); ok {
					t.Error("in-memory DB reports storage stats")
				}
			})
		}
	}
}

// TestOpenStoredDerivedLayout: index engines persist their private page
// layout beside the dataset and rebuild it on every open.
func TestOpenStoredDerivedLayout(t *testing.T) {
	dir := storedDir(t, 71, 150, 3, 8)
	db, err := OpenStored(dir, Options{Engine: EngineXTree, PageCapacity: 8, BufferPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	layout := filepath.Join(dir, "layout-xtree")
	if _, err := os.Stat(filepath.Join(layout, "MANIFEST")); err != nil {
		t.Errorf("layout manifest missing: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the layout generation bumps and the dataset still serves.
	db, err = OpenStored(dir, Options{Engine: EngineXTree, PageCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck
	if ans, _, err := db.Query(Vector{0.5, 0.5, 0.5}, KNNQuery(5)); err != nil || len(ans) != 5 {
		t.Fatalf("query after reopen: %d answers, %v", len(ans), err)
	}
}

// TestOpenStoredPivotTablePersistence: the first pivot open computes the
// distance matrix and persists the table; later opens load it back without
// a single build distance calculation, and a stale or corrupt table is
// silently rebuilt.
func TestOpenStoredPivotTablePersistence(t *testing.T) {
	dir := storedDir(t, 91, 200, 4, 16)
	opts := Options{Engine: EnginePivot, Pivot: &PivotOptions{Pivots: 8}, BufferPages: 4}

	db, err := OpenStored(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng1, ok := db.eng.(*pivot.Engine)
	if !ok {
		t.Fatalf("stored pivot DB built a %T", db.eng)
	}
	if eng1.Table().BuildDistCalcs == 0 {
		t.Error("first open did not compute the distance matrix")
	}
	if _, err := os.Stat(filepath.Join(dir, pivot.TableFileName)); err != nil {
		t.Fatalf("pivot table not persisted: %v", err)
	}
	ans1, _, err := db.Query(Vector{0.4, 0.6, 0.2, 0.8}, KNNQuery(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Second open: the table comes from disk. A loaded table carries no
	// BuildDistCalcs — the distance matrix was not recomputed.
	db, err = OpenStored(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := db.eng.(*pivot.Engine)
	if eng2.Table().BuildDistCalcs != 0 {
		t.Errorf("second open recomputed the matrix (%d distance calculations)", eng2.Table().BuildDistCalcs)
	}
	if got, want := eng2.Table().NumPivots(), 8; got != want {
		t.Errorf("loaded table has %d pivots, want %d", got, want)
	}
	ans2, _, err := db.Query(Vector{0.4, 0.6, 0.2, 0.8}, KNNQuery(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans1) != len(ans2) {
		t.Fatalf("answers differ across opens: %d vs %d", len(ans1), len(ans2))
	}
	for i := range ans1 {
		if ans1[i] != ans2[i] {
			t.Fatalf("answer %d differs across opens: %+v vs %+v", i, ans1[i], ans2[i])
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// A different pivot count must not serve the stale table.
	db, err = OpenStored(dir, Options{Engine: EnginePivot, Pivot: &PivotOptions{Pivots: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.eng.(*pivot.Engine).Table().NumPivots(); got != 4 {
		t.Errorf("table has %d pivots after reopen with 4", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Corruption is shrugged off with a rebuild.
	if err := os.WriteFile(filepath.Join(dir, pivot.TableFileName), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err = OpenStored(dir, opts)
	if err != nil {
		t.Fatalf("corrupt table broke open: %v", err)
	}
	if db.eng.(*pivot.Engine).Table().BuildDistCalcs == 0 {
		t.Error("corrupt table was not rebuilt")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenStoredErrors: a missing directory, a gob file, and a corrupt
// dataset are all rejected cleanly.
func TestOpenStoredErrors(t *testing.T) {
	if _, err := OpenStored(filepath.Join(t.TempDir(), "nope"), Options{}); err == nil {
		t.Error("missing directory accepted")
	}
	if _, err := OpenStored(t.TempDir(), Options{}); err == nil {
		t.Error("empty directory accepted")
	}
	if _, err := OpenStored(storedDir(t, 81, 40, 2, 8), Options{Engine: "btree"}); err == nil {
		t.Error("unknown engine accepted")
	}
}
