package metricdb

import (
	"fmt"
	"sync"
	"time"

	"metricdb/internal/calib"
	"metricdb/internal/cost"
	"metricdb/internal/dataset"
	"metricdb/internal/msq"
	"metricdb/internal/obs"
)

// CalibrationStats is the advisor-calibration snapshot a DB reports: the
// recorder's configuration, per-engine correction factors, raw-vs-
// calibrated residual EWMAs, fitted time constants, and (when requested
// with history) the recent sample ring.
type CalibrationStats = calib.Snapshot

// calibrationSeed is the fixed seed of the calibration meter's intrinsic-
// dimension estimate. Fixing it makes recorded predictions identical to
// what DB.AdviseBatch(queries, calibrationSeed) serves, so the residuals
// score the advice a caller would actually have received.
const calibrationSeed int64 = 1

// calibMeter scores executed batches against the advisor's prediction for
// the engine that ran them and feeds the samples to a calib.Recorder.
// Everything it consumes is already computed (Stats deltas, wall times) or
// side-effect free (the intrinsic-dimension estimate samples with its own
// raw metric; batchRangeSelectivity uses the raw Options.Metric) — it
// never touches the counting metric, the pager, or an engine, which is
// what makes calibrated runs bit-identical to plain runs.
type calibMeter struct {
	db  *DB
	rec *calib.Recorder

	once      sync.Once
	intrinsic float64
	warning   string
}

// setupCalibration attaches a calibration meter when Options.Calibrate is
// set. Called by every DB construction path (Open, OpenStored).
func (db *DB) setupCalibration() {
	if !db.opts.Calibrate {
		return
	}
	db.calib = &calibMeter{db: db, rec: calib.NewRecorder(calib.Config{Seed: calibrationSeed})}
}

// Calibration exposes the underlying calibration recorder (nil unless the
// DB was opened with Options.Calibrate) for in-module integrations such as
// the metrics registry of cmd/msqserver; external callers read
// ProcessorStats().Calibration instead.
func (db *DB) Calibration() *calib.Recorder {
	if db.calib == nil {
		return nil
	}
	return db.calib.rec
}

// intrinsicDim resolves (once) the dataset's intrinsic-dimension estimate
// under the calibration seed, falling back to the ambient dimension like
// AdviseBatch does when the estimator degenerates.
func (m *calibMeter) intrinsicDim() float64 {
	m.once.Do(func() {
		est, err := dataset.EstimateIntrinsicDimension(m.db.items, 100, 10, calibrationSeed)
		if err != nil {
			m.warning = fmt.Sprintf("intrinsic-dimension estimate failed: %v; pricing with ambient dimension %d", err, m.db.dim)
			est = float64(m.db.dim)
		}
		m.intrinsic = est
	})
	return m.intrinsic
}

// predict prices the batch for the database's active engine with exactly
// the shape AdviseBatch would build.
func (m *calibMeter) predict(queries []Query) (cost.EngineEstimate, bool) {
	if len(queries) == 0 {
		return cost.EngineEstimate{}, false
	}
	shape := batchShape(m.db.items, queries, m.db.opts, m.intrinsicDim())
	est, err := cost.PaperModel(m.db.dim).EstimateFor(shape, string(m.db.opts.Engine))
	if err != nil {
		return cost.EngineEstimate{}, false
	}
	return est, true
}

// phaseSums reads the cumulative kernel and page-fetch phase wall times
// from the processor's tracer (zero without one); the caller differences
// two reads around a batch to approximate its phase split.
func (m *calibMeter) phaseSums(proc *msq.Processor) (kernelNs, fetchNs int64) {
	tr := proc.Tracer()
	if !tr.Enabled() {
		return 0, 0
	}
	return tr.Snapshot(obs.PhaseKernel).SumNs, tr.Snapshot(obs.PhasePageFetch).SumNs
}

// record folds one executed batch into the recorder. kernelNs/fetchNs may
// be zero (untraced, unprofiled runs); the fitted time constants then
// simply do not update for this sample.
func (m *calibMeter) record(queries []Query, stats msq.Stats, wall time.Duration, kernelNs, fetchNs int64) {
	pred, ok := m.predict(queries)
	if !ok {
		return
	}
	m.rec.Record(calib.Sample{
		Engine:    pred.Engine,
		Width:     len(queries),
		Predicted: pred,
		Observed: calib.Observed{
			DistCalcs:      stats.DistCalcs,
			PivotDistCalcs: stats.PivotDistCalcs,
			PagesRead:      stats.PagesRead,
			KernelNs:       kernelNs,
			FetchNs:        fetchNs,
			WallNs:         int64(wall),
		},
	})
}

// annotateExplain attaches the advisor's predicted-cost rows for the
// engine the batch ran on: the raw model row always, plus the calibrated
// row once the recorder has samples. Annotation happens before the run is
// recorded, so the calibrated row is the prediction the advisor would have
// served when the batch was admitted — not a fit to the batch itself.
func (m *calibMeter) annotateExplain(ex *msq.Explain, queries []Query) {
	pred, ok := m.predict(queries)
	if !ok {
		return
	}
	ex.Predicted = append(ex.Predicted, predictedRow(pred, "model"))
	if m.rec.EngineSamples(pred.Engine) > 0 {
		ex.Predicted = append(ex.Predicted, predictedRow(m.rec.CalibrateOne(pred), "calibrated"))
	}
}

func predictedRow(e cost.EngineEstimate, source string) msq.PredictedCost {
	return msq.PredictedCost{
		Engine:         e.Engine,
		Source:         source,
		PagesRead:      e.PagesRead,
		DistCalcs:      e.DistCalcs,
		PivotDistCalcs: e.PivotDistCalcs,
		TotalNs:        int64(e.Total),
	}
}

// PredictBlock predicts the wall time of executing queries as one batch on
// this database, from the calibrated cost model's width-m pricing and the
// fitted time constants. It returns 0 — no prediction — without a
// calibration recorder or below its evidence floor, so it plugs directly
// into admit.Config.PredictBlock: the admission release gate then falls
// back to its own execution EWMA until the model has earned trust.
func (db *DB) PredictBlock(queries []Query) time.Duration {
	m := db.calib
	if m == nil || len(queries) == 0 {
		return 0
	}
	pred, ok := m.predict(queries)
	if !ok {
		return 0
	}
	return m.rec.PredictWall(pred)
}

// ObserveBlock records one externally executed batch (the admission
// controller's released blocks, which run on the processor directly) as a
// calibration sample. A nil-calibration DB ignores the call, so the pair
// (PredictBlock, ObserveBlock) can be wired into admit.Config
// unconditionally.
func (db *DB) ObserveBlock(queries []Query, stats Stats, elapsed time.Duration) {
	if db.calib == nil || len(queries) == 0 {
		return
	}
	db.calib.record(queries, stats, elapsed, 0, 0)
}
