package metricdb

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"metricdb/internal/dataset"
)

func layoutBatch(dim int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	point := func() Vector {
		v := make(Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		return v
	}
	return []Query{
		{ID: 0, Vec: point(), Type: RangeQuery(0.5)},
		{ID: 1, Vec: point(), Type: KNNQuery(9)},
		{ID: 2, Vec: point(), Type: BoundedKNNQuery(4, 0.7)},
		{ID: 3, Vec: point(), Type: KNNQuery(3)},
	}
}

func compareLayoutAnswers(t *testing.T, label string, want, got [][]Answer, tol float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d answer lists", label, len(want), len(got))
	}
	for q := range want {
		if len(want[q]) != len(got[q]) {
			t.Fatalf("%s: query %d: %d vs %d answers", label, q, len(want[q]), len(got[q]))
		}
		for i := range want[q] {
			a, b := want[q][i], got[q][i]
			if a.ID != b.ID {
				t.Fatalf("%s: query %d answer %d: id %d vs %d", label, q, i, a.ID, b.ID)
			}
			if tol == 0 {
				if math.Float64bits(a.Dist) != math.Float64bits(b.Dist) {
					t.Fatalf("%s: query %d answer %d: dist %v vs %v", label, q, i, a.Dist, b.Dist)
				}
			} else if math.Abs(a.Dist-b.Dist) > tol {
				t.Fatalf("%s: query %d answer %d: |Δdist| %g exceeds %g", label, q, i, math.Abs(a.Dist-b.Dist), tol)
			}
		}
	}
}

// TestOpenLayouts: for every engine, each layout must answer like the
// default AoS database — bit-identically for soa and quant, and within
// the float32 rounding bound for f32 (whose rows engage only on
// avoidance-free pages, so run with AvoidOff to actually exercise them).
func TestOpenLayouts(t *testing.T) {
	const dim, n, capacity = 4, 260, 16
	items := testItems(91, n, dim)
	batch := layoutBatch(dim, 92)

	for _, kind := range []EngineKind{EngineScan, EngineXTree, EngineVAFile} {
		base := Options{Engine: kind, PageCapacity: capacity, BufferPages: 4, Avoidance: AvoidOff}
		aosDB, err := Open(items, base)
		if err != nil {
			t.Fatal(err)
		}
		aosAns, aosStats, err := aosDB.NewBatch().QueryAll(batch)
		if err != nil {
			t.Fatal(err)
		}
		for _, layout := range []string{"soa", "f32", "quant"} {
			t.Run(fmt.Sprintf("%s/%s", kind, layout), func(t *testing.T) {
				opts := base
				opts.Layout = layout
				db, err := Open(items, opts)
				if err != nil {
					t.Fatal(err)
				}
				if got := db.ProcessorStats().Layout; got != layout {
					t.Errorf("ProcessorStats().Layout = %q, want %q", got, layout)
				}
				ans, stats, err := db.NewBatch().QueryAll(batch)
				if err != nil {
					t.Fatal(err)
				}
				tol := 0.0
				if layout == "f32" {
					tol = 1e-5
				}
				compareLayoutAnswers(t, layout, aosAns, ans, tol)
				if stats.PagesRead != aosStats.PagesRead {
					t.Errorf("PagesRead = %d, aos %d", stats.PagesRead, aosStats.PagesRead)
				}
				if layout == "soa" && stats != aosStats {
					t.Errorf("soa stats differ:\n  aos: %+v\n  soa: %+v", aosStats, stats)
				}
			})
		}
	}
}

// TestOpenStoredLayouts covers both persistence directions: a version-2
// dataset whose pages already carry the siblings must serve every layout
// directly, and a plain version-1 dataset must serve them anyway by
// columnizing pages on read (the WrapColumns path). Answers always match
// the in-memory AoS database.
func TestOpenStoredLayouts(t *testing.T) {
	const dim, n, capacity = 4, 260, 16
	items := testItems(93, n, dim)
	batch := layoutBatch(dim, 94)

	aosDB, err := Open(items, Options{PageCapacity: capacity, BufferPages: 4, Avoidance: AvoidOff})
	if err != nil {
		t.Fatal(err)
	}
	aosAns, _, err := aosDB.NewBatch().QueryAll(batch)
	if err != nil {
		t.Fatal(err)
	}

	v1 := t.TempDir()
	if err := dataset.SaveDir(v1, items, dataset.SaveOptions{PageCapacity: capacity, NoSync: true}); err != nil {
		t.Fatal(err)
	}
	v2 := t.TempDir()
	if err := dataset.SaveDir(v2, items, dataset.SaveOptions{
		PageCapacity: capacity, NoSync: true, Columnar: true, F32: true, QuantBits: 8,
	}); err != nil {
		t.Fatal(err)
	}

	for _, dir := range []struct{ name, path string }{{"v1", v1}, {"v2", v2}} {
		for _, kind := range []EngineKind{EngineScan, EngineXTree, EngineVAFile} {
			for _, layout := range []string{"aos", "soa", "f32", "quant"} {
				t.Run(fmt.Sprintf("%s/%s/%s", dir.name, kind, layout), func(t *testing.T) {
					db, err := OpenStored(dir.path, Options{
						Engine: kind, PageCapacity: capacity, BufferPages: 4,
						Avoidance: AvoidOff, Layout: layout,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer db.Close() //nolint:errcheck
					if _, ok := db.Stored(); !ok {
						t.Error("stored DB does not report persistent storage")
					}
					ans, _, err := db.NewBatch().QueryAll(batch)
					if err != nil {
						t.Fatal(err)
					}
					tol := 0.0
					if layout == "f32" {
						tol = 1e-5
					}
					compareLayoutAnswers(t, layout, aosAns, ans, tol)
				})
			}
		}
	}
}

// TestLayoutOptionValidation: the layout knobs reject mistakes before any
// data is touched.
func TestLayoutOptionValidation(t *testing.T) {
	if err := (Options{Layout: "columnar"}).Validate(); err == nil {
		t.Error("unknown layout accepted")
	}
	if err := (Options{QuantBits: 4}).Validate(); err == nil {
		t.Error("QuantBits without quant layout accepted")
	}
	if err := (Options{Layout: "quant", QuantBits: 9}).Validate(); err == nil {
		t.Error("out-of-range QuantBits accepted")
	}
	if err := (Options{Layout: "quant", QuantBits: 4}).Validate(); err != nil {
		t.Errorf("valid quant options rejected: %v", err)
	}
	if err := (Options{Layout: "soa"}).Validate(); err != nil {
		t.Errorf("soa layout rejected: %v", err)
	}
	mink, err := Minkowski(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(testItems(95, 40, 3), Options{Layout: "f32", Metric: mink}); err == nil {
		t.Error("f32 layout with a Minkowski metric accepted; no float32 kernel exists")
	}
}
