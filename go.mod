module metricdb

go 1.24
