package metricdb

import (
	"fmt"

	"metricdb/internal/engines"
	"metricdb/internal/msq"
	"metricdb/internal/parallel"
	"metricdb/internal/store"
)

// Declustering strategies for parallel databases.
type DeclusterStrategy = parallel.Strategy

// Re-exported strategies.
const (
	// DeclusterRoundRobin deals items to servers in turn (default).
	DeclusterRoundRobin = parallel.RoundRobin
	// DeclusterRandom places items on uniformly random servers.
	DeclusterRandom = parallel.RandomAssign
	// DeclusterRange assigns contiguous first-coordinate ranges.
	DeclusterRange = parallel.RangePartition
)

// ClusterOptions configures OpenCluster.
type ClusterOptions struct {
	// Servers is the number of shared-nothing servers (s in the paper).
	Servers int
	// Strategy is the declustering strategy; the zero value is
	// round-robin.
	Strategy DeclusterStrategy
	// Seed feeds the random declustering strategy.
	Seed int64
	// Engine selects the per-server organization; empty means scan.
	Engine EngineKind
	// Metric is the distance function; nil means Euclidean.
	Metric Metric
	// PageCapacity is items per page; 0 derives it from 32 KB blocks.
	PageCapacity int
	// BufferPages per server; 0 selects the 10 % default, negative
	// disables buffering.
	BufferPages int
	// Avoidance selects the triangle-inequality mode.
	Avoidance AvoidanceMode
}

// ClusterDB is a shared-nothing parallel metric database: each server holds
// a partition on its own simulated disk and all servers evaluate every
// query batch concurrently (§5.3).
type ClusterDB struct {
	cluster *parallel.Cluster
	servers int
}

// ClusterReport is the per-server cost of one parallel operation.
type ClusterReport = parallel.Report

// OpenCluster declusters items over the configured servers and builds one
// engine per server.
func OpenCluster(items []Item, opts ClusterOptions) (*ClusterDB, error) {
	dim, err := validateItems(items)
	if err != nil {
		return nil, err
	}
	if opts.Servers < 1 {
		return nil, fmt.Errorf("metricdb: cluster needs at least one server, got %d", opts.Servers)
	}
	if opts.PageCapacity == 0 {
		opts.PageCapacity = store.PageCapacityForBlockSize(32768, dim)
	}
	if opts.Engine != "" && !engines.Known(engines.Kind(opts.Engine)) {
		return nil, fmt.Errorf("metricdb: unknown engine %q (have %v)", opts.Engine, engines.Kinds())
	}
	bufferPages := opts.BufferPages
	switch {
	case bufferPages == 0:
		bufferPages = -1 // parallel package: negative = 10 % default
	case bufferPages < 0:
		bufferPages = 0
	}
	c, err := parallel.New(items, parallel.Config{
		Servers:      opts.Servers,
		Strategy:     opts.Strategy,
		Seed:         opts.Seed,
		Engine:       engines.Kind(opts.Engine),
		Dim:          dim,
		PageCapacity: opts.PageCapacity,
		BufferPages:  bufferPages,
		Metric:       opts.Metric,
		Avoidance:    opts.Avoidance,
	})
	if err != nil {
		return nil, err
	}
	return &ClusterDB{cluster: c, servers: opts.Servers}, nil
}

// Servers returns the number of servers.
func (c *ClusterDB) Servers() int { return c.servers }

// Query evaluates one similarity query on all servers and merges the
// results.
func (c *ClusterDB) Query(q Vector, t QueryType) ([]Answer, ClusterReport, error) {
	res, rep, err := c.cluster.Single(q, t)
	if err != nil {
		return nil, rep, err
	}
	return res.Answers(), rep, nil
}

// QueryAll evaluates a batch of queries to completion on all servers in
// parallel — the paper's parallel multiple similarity query with block
// size m·s — and merges the per-server answers.
func (c *ClusterDB) QueryAll(queries []Query) ([][]Answer, ClusterReport, error) {
	lists, rep, err := c.cluster.MultiQueryAll(queries)
	if err != nil {
		return nil, rep, err
	}
	out := make([][]Answer, len(lists))
	for i, l := range lists {
		out[i] = l.Answers()
	}
	return out, rep, nil
}

// compile-time check that the alias wiring stays intact.
var _ = func() msq.Stats { return Stats{} }
