package main

import (
	"path/filepath"
	"testing"

	"metricdb/internal/dataset"
)

func TestRunAllTasks(t *testing.T) {
	for _, task := range []string{"dbscan", "classify", "explore", "trends", "rules"} {
		for _, engine := range []string{"scan", "xtree", "vafile"} {
			if err := run(task, "", 400, 6, 3, engine, 8, 0.12, 3, 5, 2, 2, 1); err != nil {
				t.Errorf("task %s on %s: %v", task, engine, err)
			}
		}
	}
}

func TestRunWithDataFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.gob")
	items, err := dataset.Clustered(dataset.ClusteredConfig{Seed: 1, N: 300, Dim: 4, Clusters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteFile(path, items); err != nil {
		t.Fatal(err)
	}
	if err := run("dbscan", path, 0, 0, 0, "scan", 4, 0.1, 3, 1, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run("fly", "", 100, 4, 2, "scan", 4, 0.1, 3, 1, 1, 1, 1); err == nil {
		t.Error("unknown task accepted")
	}
	if err := run("dbscan", "/does/not/exist", 0, 0, 0, "scan", 4, 0.1, 3, 1, 1, 1, 1); err == nil {
		t.Error("missing data file accepted")
	}
	if err := run("dbscan", "", 100, 4, 2, "btree", 4, 0.1, 3, 1, 1, 1, 1); err == nil {
		t.Error("unknown engine accepted")
	}
}
