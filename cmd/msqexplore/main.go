// Command msqexplore runs the paper's data-mining algorithms on generated
// or stored datasets, comparing single-query and multiple-query execution.
//
// Usage:
//
//	msqexplore -task dbscan|classify|explore|trends|rules
//	           [-data file.gob|dataset-dir] [-n 5000] [-dim 16] [-clusters 5]
//	           [-engine scan|xtree|vafile] [-batch 20] [-eps 0.1] [-minpts 5]
//	           [-k 10] [-users 4] [-rounds 5] [-seed 1]
//
// Without -data, a clustered dataset is generated in memory.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"metricdb"
	"metricdb/internal/dataset"
)

func main() {
	var (
		task     = flag.String("task", "dbscan", "dbscan, classify, explore, trends or rules")
		dataFile = flag.String("data", "", "dataset written by msqgen: directory or gob file (default: generate)")
		n        = flag.Int("n", 5000, "generated dataset size")
		dim      = flag.Int("dim", 16, "generated dataset dimensionality")
		clusters = flag.Int("clusters", 5, "generated cluster count")
		engine   = flag.String("engine", "xtree", "physical organization: scan, xtree or vafile")
		batch    = flag.Int("batch", 20, "multiple-similarity-query batch size m")
		eps      = flag.Float64("eps", 0.1, "range-query radius (dbscan, rules)")
		minPts   = flag.Int("minpts", 5, "DBSCAN density threshold")
		k        = flag.Int("k", 10, "k for k-NN based tasks")
		users    = flag.Int("users", 4, "concurrent users (explore)")
		rounds   = flag.Int("rounds", 5, "navigation rounds (explore)")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*task, *dataFile, *n, *dim, *clusters, *engine, *batch, *eps, *minPts, *k, *users, *rounds, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "msqexplore:", err)
		os.Exit(1)
	}
}

func run(task, dataFile string, n, dim, clusters int, engine string, batch int,
	eps float64, minPts, k, users, rounds int, seed int64) error {

	var items []metricdb.Item
	var err error
	if dataFile != "" {
		items, err = dataset.ReadAny(dataFile)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d items from %s\n", len(items), dataFile)
	} else {
		items, err = dataset.Clustered(dataset.ClusteredConfig{
			Seed: seed, N: n, Dim: dim, Clusters: clusters, NoiseFraction: 0.05,
		})
		if err != nil {
			return err
		}
		fmt.Printf("generated %d items (%d-d, %d clusters + 5%% noise)\n", n, dim, clusters)
	}

	db, err := metricdb.Open(items, metricdb.Options{Engine: metricdb.EngineKind(engine)})
	if err != nil {
		return err
	}
	fmt.Printf("engine=%s pages=%d batch=m=%d\n\n", engine, db.NumPages(), batch)

	start := time.Now()
	switch task {
	case "dbscan":
		res, err := db.DBSCAN(eps, minPts, batch)
		if err != nil {
			return err
		}
		noise := 0
		for _, l := range res.Labels {
			if l == -1 {
				noise++
			}
		}
		fmt.Printf("DBSCAN(eps=%g, minPts=%d): %d clusters, %d noise objects\n", eps, minPts, res.Clusters, noise)
		printStats(res.Stats)
	case "classify":
		probes := len(items) / 20
		if probes < 1 {
			probes = 1
		}
		objects := make([]metricdb.Vector, probes)
		truth := make([]int, probes)
		for i := 0; i < probes; i++ {
			it := items[(i*37)%len(items)]
			objects[i] = it.Vec
			truth[i] = it.Label
		}
		labels, stats, err := db.ClassifyKNN(objects, k, batch)
		if err != nil {
			return err
		}
		correct := 0
		for i := range labels {
			if labels[i] == truth[i] {
				correct++
			}
		}
		fmt.Printf("classified %d objects with %d-NN: %d correct (%.1f%%)\n",
			probes, k, correct, 100*float64(correct)/float64(probes))
		printStats(stats)
	case "explore":
		stats, err := db.SimulateExploration(metricdb.ExplorationConfig{
			Users: users, K: k, Rounds: rounds, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("simulated %d users x %d rounds of %d-NN navigation\n", users, rounds, k)
		printStats(stats)
	case "trends":
		attr := func(it metricdb.Item) float64 { return it.Vec[0] }
		trends, stats, err := db.DetectTrends(0, attr, metricdb.TrendConfig{
			K: k, Branch: 2, MaxLength: 5, MinR2: 0.8,
		}, batch)
		if err != nil {
			return err
		}
		fmt.Printf("found %d trends from object 0 (attribute: first coordinate)\n", len(trends))
		for i, tr := range trends {
			if i == 5 {
				fmt.Printf("  ... and %d more\n", len(trends)-5)
				break
			}
			fmt.Printf("  path len %d  slope %+.3f  R2 %.3f\n", len(tr.Path), tr.Slope, tr.R2)
		}
		printStats(stats)
	case "rules":
		rules, stats, err := db.AssociationRules(0, eps, 0.1, 0.05, batch)
		if err != nil {
			return err
		}
		fmt.Printf("association rules for type 0 within eps=%g:\n", eps)
		for _, r := range rules {
			fmt.Printf("  type %d -> type %d  support %.2f  confidence %.2f  (%d objects)\n",
				r.From, r.To, r.Support, r.Confidence, r.Count)
		}
		printStats(stats)
	default:
		return fmt.Errorf("unknown task %q", task)
	}
	fmt.Printf("wall time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func printStats(s metricdb.ExploreStats) {
	fmt.Printf("queries: %d   pages read: %d   distance calcs: %d (+%d matrix)   avoided: %d of %d tries\n",
		s.Steps, s.Query.PagesRead, s.Query.DistCalcs, s.Query.MatrixDistCalcs,
		s.Query.Avoided, s.Query.AvoidTries)
}
