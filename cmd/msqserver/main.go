// Command msqserver serves similarity queries over TCP, providing the
// multiple similarity query as a basic DBMS operation (the paper's closing
// recommendation). The protocol is line-delimited JSON; each connection
// owns one incremental multi-query session.
//
// Usage:
//
//	msqserver -addr :7707 [-data file.gob] [-n 20000] [-dim 16]
//	          [-engine scan|xtree|vafile]
//
// Request/response format (one JSON object per line):
//
//	{"op":"query","queries":[{"vector":[...],"kind":"knn","k":10}]}
//	{"op":"multi","queries":[{"id":1,"vector":[...],"kind":"range","range":0.5}, ...]}
//	{"op":"multi_all","queries":[...]}
//	{"op":"stats"}
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"metricdb"
	"metricdb/internal/dataset"
	"metricdb/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7707", "listen address")
		dataFile = flag.String("data", "", "dataset file written by msqgen (default: generate)")
		n        = flag.Int("n", 20000, "generated dataset size")
		dim      = flag.Int("dim", 16, "generated dataset dimensionality")
		engine   = flag.String("engine", "xtree", "physical organization: scan, xtree or vafile")
	)
	flag.Parse()
	if err := run(*addr, *dataFile, *n, *dim, *engine); err != nil {
		fmt.Fprintln(os.Stderr, "msqserver:", err)
		os.Exit(1)
	}
}

func run(addr, dataFile string, n, dim int, engine string) error {
	var items []metricdb.Item
	var err error
	if dataFile != "" {
		items, err = dataset.ReadFile(dataFile)
	} else {
		items, err = dataset.Clustered(dataset.ClusteredConfig{Seed: 1, N: n, Dim: dim, Clusters: 8})
	}
	if err != nil {
		return err
	}

	srv, lis, err := serve(addr, items, engine)
	if err != nil {
		return err
	}
	fmt.Printf("serving %d items (%s engine) on %s\n", len(items), engine, lis.Addr())
	defer srv.Close()
	return srv.Serve(lis)
}

// serve builds the database and binds the listener (separated for tests).
func serve(addr string, items []metricdb.Item, engine string) (*wire.Server, net.Listener, error) {
	db, err := metricdb.Open(items, metricdb.Options{Engine: metricdb.EngineKind(engine)})
	if err != nil {
		return nil, nil, err
	}
	srv, err := wire.NewServer(db.Processor())
	if err != nil {
		return nil, nil, err
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	return srv, lis, nil
}
