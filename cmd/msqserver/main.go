// Command msqserver serves similarity queries over TCP, providing the
// multiple similarity query as a basic DBMS operation (the paper's closing
// recommendation). The protocol is line-delimited JSON; each connection
// owns one incremental multi-query session.
//
// Usage:
//
//	msqserver -addr :7707 [-data file.gob] [-n 20000] [-dim 16]
//	          [-engine scan|xtree|vafile] [-concurrency 1]
//	          [-max-conns 0] [-max-request-bytes 1048576]
//	          [-read-timeout 0] [-write-timeout 10s] [-drain 5s]
//
// Request/response format (one JSON object per line):
//
//	{"op":"query","queries":[{"vector":[...],"kind":"knn","k":10}]}
//	{"op":"multi","queries":[{"id":1,"vector":[...],"kind":"range","range":0.5}, ...]}
//	{"op":"multi_all","queries":[...]}
//	{"op":"stats"}
//	{"op":"ping"}
//
// Error responses carry a code ("bad_request", "engine_error", "overload",
// "shutting_down"); malformed requests get a final error response instead
// of a dropped connection. SIGINT/SIGTERM drain gracefully: the listener
// closes, in-flight requests finish within the -drain grace period, then
// remaining connections are force-closed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"metricdb"
	"metricdb/internal/dataset"
	"metricdb/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7707", "listen address")
		dataFile = flag.String("data", "", "dataset file written by msqgen (default: generate)")
		n        = flag.Int("n", 20000, "generated dataset size")
		dim      = flag.Int("dim", 16, "generated dataset dimensionality")
		engine   = flag.String("engine", "xtree", "physical organization: scan, xtree or vafile")
		width    = flag.Int("concurrency", 1, "intra-server pipeline width per query batch (1 = sequential)")

		maxConns  = flag.Int("max-conns", 0, "concurrent connection limit (0 = unlimited)")
		maxReqLen = flag.Int("max-request-bytes", wire.DefaultMaxRequestBytes, "request line size cap")
		readTO    = flag.Duration("read-timeout", 0, "idle read deadline per connection (0 = none)")
		writeTO   = flag.Duration("write-timeout", 10*time.Second, "per-response write deadline (0 = none)")
		drain     = flag.Duration("drain", 5*time.Second, "graceful-shutdown grace period")
	)
	flag.Parse()
	cfg := wire.ServerConfig{
		ReadTimeout:     *readTO,
		WriteTimeout:    *writeTO,
		MaxRequestBytes: *maxReqLen,
		MaxConns:        *maxConns,
		Logf:            log.Printf,
		Concurrency:     *width,
	}
	if err := run(*addr, *dataFile, *n, *dim, *engine, cfg, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "msqserver:", err)
		os.Exit(1)
	}
}

func run(addr, dataFile string, n, dim int, engine string, cfg wire.ServerConfig, drain time.Duration) error {
	var items []metricdb.Item
	var err error
	if dataFile != "" {
		items, err = dataset.ReadFile(dataFile)
	} else {
		items, err = dataset.Clustered(dataset.ClusteredConfig{Seed: 1, N: n, Dim: dim, Clusters: 8})
	}
	if err != nil {
		return err
	}

	srv, lis, err := serve(addr, items, engine, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("serving %d items (%s engine) on %s\n", len(items), engine, lis.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	draining := make(chan struct{})
	drained := make(chan error, 1)
	go func() {
		s := <-sig
		log.Printf("msqserver: received %v, draining (grace %v)", s, drain)
		close(draining)
		drained <- srv.Shutdown(drain)
	}()

	err = srv.Serve(lis)
	select {
	case <-draining:
		// Shutdown closed the listener, which is what made Serve return;
		// wait for the drain to finish and report its outcome instead of
		// Serve's expected net.ErrClosed.
		derr := <-drained
		if errors.Is(err, net.ErrClosed) {
			err = derr
		}
		log.Printf("msqserver: drained")
	default:
		srv.Close() //nolint:errcheck
	}
	signal.Stop(sig)
	return err
}

// serve builds the database and binds the listener (separated for tests).
func serve(addr string, items []metricdb.Item, engine string, cfg wire.ServerConfig) (*wire.Server, net.Listener, error) {
	db, err := metricdb.Open(items, metricdb.Options{Engine: metricdb.EngineKind(engine)})
	if err != nil {
		return nil, nil, err
	}
	srv, err := wire.NewServerWithConfig(db.Processor(), cfg)
	if err != nil {
		return nil, nil, err
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	return srv, lis, nil
}
