// Command msqserver serves similarity queries over TCP, providing the
// multiple similarity query as a basic DBMS operation (the paper's closing
// recommendation). The protocol is line-delimited JSON; each connection
// owns one incremental multi-query session.
//
// Usage:
//
//	msqserver -addr :7707 [-data file.gob|dataset-dir] [-mmap]
//	          [-n 20000] [-dim 16]
//	          [-engine scan|xtree|vafile|pivot|pmtree] [-layout aos|soa|f32|quant]
//	          [-concurrency 1]
//	          [-max-conns 0] [-max-request-bytes 1048576]
//	          [-read-timeout 0] [-write-timeout 10s] [-drain 5s]
//	          [-admin 127.0.0.1:7708] [-slow-query 100ms]
//	          [-admit] [-admit-queue 256] [-admit-max-width 16]
//	          [-admit-max-wait 2ms] [-admit-slo 1s] [-calibrate]
//
// Request/response format (one JSON object per line):
//
//	{"op":"query","queries":[{"vector":[...],"kind":"knn","k":10}]}
//	{"op":"multi","queries":[{"id":1,"vector":[...],"kind":"range","range":0.5}, ...]}
//	{"op":"multi_all","queries":[...]}
//	{"op":"stats"}
//	{"op":"ping"}
//
// Error responses carry a code ("bad_request", "engine_error", "overload",
// "shutting_down"); malformed requests get a final error response instead
// of a dropped connection. SIGINT/SIGTERM drain gracefully: the listener
// closes, in-flight requests finish within the -drain grace period, then
// remaining connections are force-closed.
//
// -admit enables admission control with cross-caller batch forming:
// concurrently arriving "query" requests are grouped into multi-query
// blocks (up to -admit-max-width wide, lingering at most -admit-max-wait),
// requests that cannot meet their deadline budget (request deadline_ms, or
// -admit-slo when absent) are shed early with a structured overload error
// and a retry-after hint, and at most -admit-queue requests wait at once.
//
// When -data names a dataset directory written by msqgen (the persistent
// page-store format), the server serves data pages from the file system —
// pread by default, memory-mapped with -mmap — verifying page checksums on
// every read, and /metrics additionally exports metricdb_storage_* real-I/O
// counters. A gob -data file or a generated dataset serves from memory as
// before.
//
// -admin binds a second, HTTP, listener with the observability surface:
// GET /metrics (Prometheus text: per-phase latency histograms, buffer and
// disk gauges, wire counters), GET /debug/traces (recent phase spans as
// JSONL), GET /debug/slow (the slow-query log, threshold -slow-query),
// GET /debug/advise (per-batch engine advice: ?m=8&k=10[&range=r][&seed=1];
// the response always carries a "warning" field — empty when the estimator
// ran cleanly, the fallback explanation otherwise — so a degraded ranking
// is never served silently) and /debug/pprof/*. When -admin is empty no
// tracer is installed and the query path runs with observability hooks
// disabled (the near-zero overhead configuration).
//
// -calibrate attaches the advisor calibration loop: every completed batch
// is scored against the cost model's prediction for the active engine,
// /metrics exports the metricdb_advisor_* gauges (prediction error, learned
// correction factors, fitted unit constants), /debug/advise?calibrated=1
// additionally returns the raw-vs-calibrated rankings with the recent
// residual history, and — combined with -admit — the admission release
// gate consults the calibrated model's width-m pricing once it has enough
// samples.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"metricdb"
	"metricdb/internal/admit"
	"metricdb/internal/dataset"
	"metricdb/internal/obs"
	"metricdb/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7707", "listen address")
		dataFile = flag.String("data", "", "dataset written by msqgen: directory or gob file (default: generate)")
		mmap     = flag.Bool("mmap", false, "memory-map the page file of a -data dataset directory")
		n        = flag.Int("n", 20000, "generated dataset size")
		dim      = flag.Int("dim", 16, "generated dataset dimensionality")
		engine   = flag.String("engine", "xtree", "physical organization: scan, xtree, vafile, pivot or pmtree")
		layout   = flag.String("layout", "", "page layout: aos (default), soa, f32 or quant — soa/f32/quant run the blocked row kernels")
		width    = flag.Int("concurrency", 1, "intra-server pipeline width per query batch (1 = sequential)")

		maxConns  = flag.Int("max-conns", 0, "concurrent connection limit (0 = unlimited)")
		maxReqLen = flag.Int("max-request-bytes", wire.DefaultMaxRequestBytes, "request line size cap")
		readTO    = flag.Duration("read-timeout", 0, "idle read deadline per connection (0 = none)")
		writeTO   = flag.Duration("write-timeout", 10*time.Second, "per-response write deadline (0 = none)")
		drain     = flag.Duration("drain", 5*time.Second, "graceful-shutdown grace period")

		adminAddr = flag.String("admin", "", "admin HTTP listen address for /metrics, /debug/traces, /debug/explain and /debug/pprof (empty = observability disabled)")
		slowQuery = flag.Duration("slow-query", obs.DefaultSlowQueryThreshold, "slow-query log threshold (needs -admin; negative disables the log)")
		node      = flag.String("node", "server", "node label on distributed trace spans recorded by this process")

		admitOn       = flag.Bool("admit", false, "enable admission control and cross-caller batch forming for single-query requests")
		admitQueue    = flag.Int("admit-queue", admit.DefaultMaxQueue, "admission queue bound (requests beyond it are shed with overload)")
		admitMaxWidth = flag.Int("admit-max-width", admit.DefaultMaxWidth, "maximum formed batch width m")
		admitMaxWait  = flag.Duration("admit-max-wait", admit.DefaultMaxWait, "maximum linger waiting for arrivals to widen a batch")
		admitSLO      = flag.Duration("admit-slo", admit.DefaultDefaultSLO, "deadline budget for requests that carry no deadline_ms")

		calibrate = flag.Bool("calibrate", false, "record predicted-vs-observed batch costs, export metricdb_advisor_* gauges, and let -admit consult the calibrated pricing")
	)
	flag.Parse()
	cfg := wire.ServerConfig{
		ReadTimeout:     *readTO,
		WriteTimeout:    *writeTO,
		MaxRequestBytes: *maxReqLen,
		MaxConns:        *maxConns,
		Logf:            log.Printf,
		Concurrency:     *width,
	}
	if *admitOn {
		cfg.Admit = &admit.Config{
			MaxQueue:   *admitQueue,
			MaxWidth:   *admitMaxWidth,
			MaxWait:    *admitMaxWait,
			DefaultSLO: *admitSLO,
		}
	}
	if err := run(*addr, *dataFile, *mmap, *n, *dim, *engine, *layout, *calibrate, cfg, *drain, *adminAddr, *slowQuery, *node); err != nil {
		fmt.Fprintln(os.Stderr, "msqserver:", err)
		os.Exit(1)
	}
}

func run(addr, dataFile string, mmap bool, n, dim int, engine, layout string, calibrate bool, cfg wire.ServerConfig, drain time.Duration, adminAddr string, slowQuery time.Duration, node string) error {
	src := dataSource{mmap: mmap, layout: layout, calibrate: calibrate}
	if dataFile != "" {
		st, err := os.Stat(dataFile)
		if err != nil {
			return err
		}
		if st.IsDir() {
			src.dir = dataFile
		} else {
			if src.items, err = dataset.ReadAny(dataFile); err != nil {
				return err
			}
		}
	} else {
		items, err := dataset.Clustered(dataset.ClusteredConfig{Seed: 1, N: n, Dim: dim, Clusters: 8})
		if err != nil {
			return err
		}
		src.items = items
	}

	db, srv, lis, adminLis, err := serve(addr, src, engine, cfg, adminAddr, slowQuery, node)
	if err != nil {
		return err
	}
	defer db.Close() //nolint:errcheck
	if mode, ok := db.Stored(); ok {
		fmt.Printf("serving %d items (%s engine, %s storage from %s) on %s\n",
			db.Len(), engine, mode, dataFile, lis.Addr())
	} else {
		fmt.Printf("serving %d items (%s engine) on %s\n", db.Len(), engine, lis.Addr())
	}
	if adminLis != nil {
		fmt.Printf("admin HTTP (metrics, traces, pprof) on %s\n", adminLis.lis.Addr())
		go func() {
			if err := adminLis.srv.Serve(adminLis.lis); err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
				log.Printf("msqserver: admin listener: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	draining := make(chan struct{})
	drained := make(chan error, 1)
	go func() {
		s := <-sig
		log.Printf("msqserver: received %v, draining (grace %v)", s, drain)
		close(draining)
		drained <- srv.Shutdown(drain)
	}()

	err = srv.Serve(lis)
	select {
	case <-draining:
		// Shutdown closed the listener, which is what made Serve return;
		// wait for the drain to finish and report its outcome instead of
		// Serve's expected net.ErrClosed.
		derr := <-drained
		if errors.Is(err, net.ErrClosed) {
			err = derr
		}
		log.Printf("msqserver: drained")
	default:
		srv.Close() //nolint:errcheck
	}
	if adminLis != nil {
		adminLis.srv.Close() //nolint:errcheck
	}
	signal.Stop(sig)
	return err
}

// adminListener pairs the admin HTTP server with its bound listener.
type adminListener struct {
	srv *http.Server
	lis net.Listener
}

// dataSource selects where the served database lives: in-memory items, or
// a persistent dataset directory read through a file-backed page store.
type dataSource struct {
	items     []metricdb.Item
	dir       string
	mmap      bool
	layout    string
	calibrate bool
}

// serve builds the database and binds the listeners (separated for tests).
// When adminAddr is non-empty the query path runs with a tracer installed
// and the returned adminListener serves the observability endpoints. The
// caller owns the returned DB and must Close it after shutdown.
func serve(addr string, src dataSource, engine string, cfg wire.ServerConfig, adminAddr string, slowQuery time.Duration, node string) (*metricdb.DB, *wire.Server, net.Listener, *adminListener, error) {
	opts := metricdb.Options{Engine: metricdb.EngineKind(engine), Mmap: src.mmap, Layout: src.layout, Calibrate: src.calibrate}
	if err := opts.Validate(); err != nil {
		return nil, nil, nil, nil, err
	}
	var (
		db  *metricdb.DB
		err error
	)
	if src.dir != "" {
		db, err = metricdb.OpenStored(src.dir, opts)
	} else {
		db, err = metricdb.Open(src.items, opts)
	}
	if err != nil {
		return nil, nil, nil, nil, err
	}

	proc := db.Processor()
	var tracer *obs.Tracer
	if adminAddr != "" {
		tracer = obs.New(obs.Config{SlowQueryThreshold: slowQuery, Node: node})
		proc = proc.WithTracer(tracer) // also installs the pager's page_fetch hook
		cfg.Tracer = tracer
	}
	if src.calibrate && cfg.Admit != nil {
		// Close the loop: the admission release gate consults the calibrated
		// model's width-m pricing (silent until the recorder has evidence),
		// and every admitted block feeds an observation back.
		cfg.Admit.PredictBlock = db.PredictBlock
		cfg.Admit.BlockObserver = db.ObserveBlock
	}
	srv, err := wire.NewServerWithConfig(proc, cfg)
	if err != nil {
		db.Close() //nolint:errcheck
		return nil, nil, nil, nil, err
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		db.Close() //nolint:errcheck
		return nil, nil, nil, nil, err
	}

	var admin *adminListener
	if adminAddr != "" {
		alis, err := net.Listen("tcp", adminAddr)
		if err != nil {
			lis.Close() //nolint:errcheck
			db.Close()  //nolint:errcheck
			return nil, nil, nil, nil, err
		}
		reg := newRegistry(tracer, db, srv, engine)
		admin = &adminListener{
			srv: &http.Server{
				Handler: obs.AdminHandler(reg,
					obs.Endpoint{Pattern: "/debug/explain", Handler: srv.ExplainHandler()},
					obs.Endpoint{Pattern: "/debug/advise", Handler: adviseHandler(db)},
				),
				ReadHeaderTimeout: 5 * time.Second,
			},
			lis: alis,
		}
	}
	return db, srv, lis, admin, nil
}

// adviseResponse wraps Advice for the admin endpoint. The outer Warning
// shadows the embedded omitempty field so the "warning" key is always
// present in the JSON: an empty string is the explicit healthy signal, and
// a fallback explanation can never be mistaken for a clean run by a client
// that only checks key presence.
type adviseResponse struct {
	metricdb.Advice
	Warning     string                     `json:"warning"`
	Calibration *metricdb.CalibrationStats `json:"calibration,omitempty"`
}

// adviseHandler serves GET /debug/advise: it prices every engine for a
// synthetic batch shaped by the query parameters (m = batch width, k = kNN
// cardinality, range = radius turning the batch into range queries, seed)
// against the live dataset, and returns the per-batch Advice as JSON —
// recommended engine, reason, intrinsic dimensionality, the predicted cost
// of every candidate engine, and (with -calibrate) the calibrated ranking.
// ?calibrated=1 additionally attaches the recorder snapshot with the recent
// residual history; it is a 400 when the server runs without -calibrate.
func adviseHandler(db *metricdb.DB) http.HandlerFunc {
	intParam := func(r *http.Request, name string, def int) (int, error) {
		s := r.URL.Query().Get(name)
		if s == "" {
			return def, nil
		}
		return strconv.Atoi(s)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		m, err := intParam(r, "m", 8)
		if err == nil && m < 1 {
			err = fmt.Errorf("m must be >= 1")
		}
		k, kerr := intParam(r, "k", 10)
		if err == nil {
			err = kerr
		}
		if err == nil && k < 1 {
			err = fmt.Errorf("k must be >= 1")
		}
		seed, serr := intParam(r, "seed", 1)
		if err == nil {
			err = serr
		}
		qt := metricdb.KNNQuery(k)
		if s := r.URL.Query().Get("range"); err == nil && s != "" {
			radius, perr := strconv.ParseFloat(s, 64)
			if perr != nil || radius < 0 {
				err = fmt.Errorf("bad range %q", s)
			} else {
				qt = metricdb.RangeQuery(radius)
			}
		}
		wantCalib := false
		if s := r.URL.Query().Get("calibrated"); err == nil && s != "" {
			wantCalib, err = strconv.ParseBool(s)
			if err != nil {
				err = fmt.Errorf("bad calibrated %q", s)
			} else if wantCalib && db.Calibration() == nil {
				err = fmt.Errorf("calibration is not enabled (run msqserver with -calibrate)")
			}
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}

		// Query points are dataset items at a deterministic stride, so the
		// batch is representative of the data and the advice reproducible.
		items := db.Items()
		stride := len(items) / m
		if stride < 1 {
			stride = 1
		}
		batch := make([]metricdb.Query, m)
		for i := range batch {
			batch[i] = metricdb.Query{ID: uint64(i), Vec: items[(i*stride)%len(items)].Vec, Type: qt}
		}
		advice, err := db.AdviseBatch(batch, int64(seed))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp := adviseResponse{Advice: advice, Warning: advice.Warning}
		if wantCalib {
			snap := db.Calibration().Snapshot(32)
			resp.Calibration = &snap
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp) //nolint:errcheck // best effort on a live conn
	}
}

// newRegistry registers gauges and counters over the live database, buffer
// pool, disk and wire-server counters; values are sampled at scrape time.
func newRegistry(tracer *obs.Tracer, db *metricdb.DB, srv *wire.Server, engine string) *obs.Registry {
	reg := obs.NewRegistry(tracer)
	engLabel := fmt.Sprintf("engine=%q", engine)

	reg.Gauge("metricdb_db_items", engLabel, "Objects in the database.",
		func() float64 { return float64(db.Len()) })
	reg.Gauge("metricdb_db_pages", engLabel, "Data pages in the physical organization.",
		func() float64 { return float64(db.NumPages()) })

	reg.Counter("metricdb_disk_reads_total", `kind="seq"`, "Page reads that reached the disk.",
		func() float64 { return float64(db.IOStats().SeqReads) })
	reg.Counter("metricdb_disk_reads_total", `kind="rand"`, "Page reads that reached the disk.",
		func() float64 { return float64(db.IOStats().RandReads) })

	if mode, ok := db.Stored(); ok {
		reg.Gauge("metricdb_storage_mode", fmt.Sprintf("mode=%q", mode),
			"Always 1; the label carries the file-backed storage mode (pread or mmap).",
			func() float64 { return 1 })
		reg.Counter("metricdb_storage_preads_total", "", "Real page reads issued to the file system.",
			func() float64 { st, _ := db.StorageStats(); return float64(st.Preads) })
		reg.Counter("metricdb_storage_bytes_read_total", "", "Bytes fetched from the page file.",
			func() float64 { st, _ := db.StorageStats(); return float64(st.BytesRead) })
		reg.Counter("metricdb_storage_checksum_failures_total", "", "Page reads rejected by checksum or structural verification.",
			func() float64 { st, _ := db.StorageStats(); return float64(st.ChecksumFailures) })
	}

	buf := db.Processor().Engine().Pager().Buffer()
	reg.Counter("metricdb_buffer_hits_total", "", "Buffer-pool lookups served without disk I/O.",
		func() float64 { hits, _, _ := buf.HitRate(); return float64(hits) })
	reg.Counter("metricdb_buffer_misses_total", "", "Buffer-pool lookups that missed.",
		func() float64 { _, misses, _ := buf.HitRate(); return float64(misses) })
	reg.Counter("metricdb_buffer_evictions_total", "", "Pages evicted from the buffer pool (LRU).",
		func() float64 { return float64(buf.Evictions()) })
	reg.Gauge("metricdb_buffer_pages", "", "Pages currently resident in the buffer pool.",
		func() float64 { return float64(buf.Len()) })
	reg.Gauge("metricdb_buffer_capacity_pages", "", "Buffer-pool capacity in pages.",
		func() float64 { return float64(buf.Capacity()) })

	reg.Counter("metricdb_distance_calcs_total", "", "Distance function invocations.",
		func() float64 { return float64(db.ProcessorStats().DistCalcs) })
	reg.Counter("metricdb_distance_partial_total", "", "Distance calculations abandoned early by the bounded kernels.",
		func() float64 { return float64(db.ProcessorStats().PartialAbandoned) })
	reg.Counter("metricdb_distance_pivot_total", engLabel, "Distance calculations spent on pivot-table filtering (a partition of the distance budget).",
		func() float64 { return float64(db.ProcessorStats().PivotDistCalcs) })
	reg.Counter("metricdb_quant_filtered_total", "", "Candidates eliminated by quantized lower bounds without a full distance calculation.",
		func() float64 { return float64(db.ProcessorStats().QuantFiltered) })

	if rec := db.Calibration(); rec != nil {
		eng := engine
		for _, counter := range []string{"dist_calcs", "pages_read"} {
			counter := counter
			reg.Gauge("metricdb_advisor_abs_pct_error",
				fmt.Sprintf("engine=%q,counter=%q,model=%q", eng, counter, "raw"),
				"EWMA absolute relative prediction error of the cost model, per counter; model=raw is the uncorrected paper model, model=calibrated the leave-one-out corrected one.",
				func() float64 { return rec.AbsPctError(eng, counter, false) })
			reg.Gauge("metricdb_advisor_abs_pct_error",
				fmt.Sprintf("engine=%q,counter=%q,model=%q", eng, counter, "calibrated"),
				"EWMA absolute relative prediction error of the cost model, per counter; model=raw is the uncorrected paper model, model=calibrated the leave-one-out corrected one.",
				func() float64 { return rec.AbsPctError(eng, counter, true) })
			reg.Gauge("metricdb_advisor_factor",
				fmt.Sprintf("engine=%q,counter=%q", eng, counter),
				"Learned multiplicative correction applied to the raw model's counter prediction (1 = uncorrected).",
				func() float64 { return rec.Factor(eng, counter) })
		}
		for _, unit := range []string{"dist_calc", "page_read", "time_scale"} {
			unit := unit
			reg.Gauge("metricdb_advisor_fitted_ns",
				fmt.Sprintf("engine=%q,unit=%q", eng, unit),
				"Fitted unit time constants in nanoseconds (time_scale is the dimensionless wall-clock scale); 0 while unfitted.",
				func() float64 { return rec.FittedNs(eng, unit) })
		}
		reg.Gauge("metricdb_advisor_samples", engLabel,
			"Batches recorded by the advisor calibration loop.",
			func() float64 { return float64(rec.EngineSamples(eng)) })
	}

	reg.Gauge("metricdb_wire_connections", "", "Open client connections.",
		func() float64 { return float64(srv.ConnCount()) })
	reg.Counter("metricdb_wire_requests_total", "", "Requests received on the wire protocol.",
		func() float64 { return float64(srv.RequestCount()) })
	reg.Counter("metricdb_wire_bad_requests_total", "", "Requests rejected with code bad_request.",
		func() float64 { return float64(srv.BadRequestCount()) })
	reg.Counter("metricdb_wire_engine_errors_total", "", "Requests failed with code engine_error.",
		func() float64 { return float64(srv.EngineErrorCount()) })
	reg.Counter("metricdb_wire_refused_total", "", "Connections refused (overload or shutdown).",
		func() float64 { return float64(srv.RefusedCount()) })
	if adm := srv.Admitter(); adm != nil {
		reg.Gauge("metricdb_admit_queue_depth", "", "Requests waiting in the admission queue.",
			func() float64 { return float64(adm.QueueDepth()) })
		reg.Gauge("metricdb_admit_width_target", "", "Most recent adaptive batch-width target.",
			func() float64 { return float64(adm.WidthTarget()) })
		reg.Gauge("metricdb_admit_width_achieved", "", "Achieved mean batch width across executed blocks.",
			adm.AvgWidth)
		reg.Counter("metricdb_admit_admitted_total", "", "Queries answered through a formed batch.",
			func() float64 { return float64(adm.Admitted()) })
		reg.Counter("metricdb_admit_batches_total", "", "Batches executed by the admission former.",
			func() float64 { return float64(adm.Batches()) })
		for _, r := range []struct {
			reason string
			count  func() int64
		}{
			{"queue_full", func() int64 { f, _, _ := adm.ShedByReason(); return f }},
			{"deadline", func() int64 { _, d, _ := adm.ShedByReason(); return d }},
			{"shutting_down", func() int64 { _, _, s := adm.ShedByReason(); return s }},
		} {
			count := r.count
			reg.Counter("metricdb_admit_shed_total", fmt.Sprintf("reason=%q", r.reason),
				"Requests shed by the admission controller.",
				func() float64 { return float64(count()) })
		}
	}
	return reg
}
