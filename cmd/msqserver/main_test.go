package main

import (
	"encoding/json"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"metricdb/internal/dataset"
	"metricdb/internal/wire"
)

func TestServeEndToEnd(t *testing.T) {
	items := dataset.Uniform(3, 500, 4)
	srv, lis, err := serve("127.0.0.1:0", items, "xtree", wire.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()

	c, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	answers, stats, err := c.Query(wire.QuerySpec{
		Vector: []float64{0.5, 0.5, 0.5, 0.5}, Kind: "knn", K: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 7 || stats.DistCalcs == 0 {
		t.Errorf("answers=%d stats=%+v", len(answers), stats)
	}
}

func TestServeRejectsBadEngine(t *testing.T) {
	items := dataset.Uniform(4, 50, 3)
	if _, _, err := serve("127.0.0.1:0", items, "btree", wire.ServerConfig{}); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestMalformedRequestGetsErrorResponse is the satellite contract: garbage
// on the wire yields a JSON error response with a bad_request code, not a
// silently dropped connection.
func TestMalformedRequestGetsErrorResponse(t *testing.T) {
	items := dataset.Uniform(5, 200, 3)
	srv, lis, err := serve("127.0.0.1:0", items, "scan", wire.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("{this is not json\n")); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("no error response before close: %v", err)
	}
	if resp.Code != wire.CodeBadRequest || !strings.Contains(resp.Err, "malformed") {
		t.Errorf("response = %+v, want bad_request", resp)
	}
}

// TestGracefulDrain exercises the SIGINT/SIGTERM path: Shutdown stops the
// listener, lets connected clients finish, and Serve returns cleanly.
func TestGracefulDrain(t *testing.T) {
	items := dataset.Uniform(6, 300, 3)
	srv, lis, err := serve("127.0.0.1:0", items, "scan", wire.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(lis) }()

	c, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Query(wire.QuerySpec{Vector: []float64{0.1, 0.2, 0.3}, Kind: "knn", K: 2}); err != nil {
		t.Fatal(err)
	}

	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-served:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("Serve returned %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// New connections are refused after the drain.
	if _, err := net.DialTimeout("tcp", lis.Addr().String(), time.Second); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
}
