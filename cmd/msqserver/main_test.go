package main

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"metricdb/internal/admit"
	"metricdb/internal/dataset"
	"metricdb/internal/wire"
)

func TestServeEndToEnd(t *testing.T) {
	items := dataset.Uniform(3, 500, 4)
	db, srv, lis, _, err := serve("127.0.0.1:0", dataSource{items: items}, "xtree", wire.ServerConfig{}, "", 0, "server")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()
	defer db.Close() //nolint:errcheck

	c, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	answers, stats, err := c.Query(wire.QuerySpec{
		Vector: []float64{0.5, 0.5, 0.5, 0.5}, Kind: "knn", K: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 7 || stats.DistCalcs == 0 {
		t.Errorf("answers=%d stats=%+v", len(answers), stats)
	}
}

func TestServeRejectsBadEngine(t *testing.T) {
	items := dataset.Uniform(4, 50, 3)
	if _, _, _, _, err := serve("127.0.0.1:0", dataSource{items: items}, "btree", wire.ServerConfig{}, "", 0, "server"); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestMalformedRequestGetsErrorResponse is the satellite contract: garbage
// on the wire yields a JSON error response with a bad_request code, not a
// silently dropped connection.
func TestMalformedRequestGetsErrorResponse(t *testing.T) {
	items := dataset.Uniform(5, 200, 3)
	db, srv, lis, _, err := serve("127.0.0.1:0", dataSource{items: items}, "scan", wire.ServerConfig{}, "", 0, "server")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()
	defer db.Close() //nolint:errcheck

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("{this is not json\n")); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("no error response before close: %v", err)
	}
	if resp.Code != wire.CodeBadRequest || !strings.Contains(resp.Err, "malformed") {
		t.Errorf("response = %+v, want bad_request", resp)
	}
}

// TestGracefulDrain exercises the SIGINT/SIGTERM path: Shutdown stops the
// listener, lets connected clients finish, and Serve returns cleanly.
func TestGracefulDrain(t *testing.T) {
	items := dataset.Uniform(6, 300, 3)
	db, srv, lis, _, err := serve("127.0.0.1:0", dataSource{items: items}, "scan", wire.ServerConfig{}, "", 0, "server")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck
	served := make(chan error, 1)
	go func() { served <- srv.Serve(lis) }()

	c, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Query(wire.QuerySpec{Vector: []float64{0.1, 0.2, 0.3}, Kind: "knn", K: 2}); err != nil {
		t.Fatal(err)
	}

	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-served:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("Serve returned %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// New connections are refused after the drain.
	if _, err := net.DialTimeout("tcp", lis.Addr().String(), time.Second); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
}

// TestAdminEndpoints serves with -admin enabled, runs a query over the
// wire, and checks that /metrics exposes the phase histograms and wire
// counters and that /debug/traces returns the recorded spans as JSONL.
func TestAdminEndpoints(t *testing.T) {
	items := dataset.Uniform(7, 400, 4)
	db, srv, lis, admin, err := serve("127.0.0.1:0", dataSource{items: items}, "scan", wire.ServerConfig{}, "127.0.0.1:0", time.Nanosecond, "server")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()
	defer db.Close() //nolint:errcheck
	if admin == nil {
		t.Fatal("admin listener not built")
	}
	go admin.srv.Serve(admin.lis) //nolint:errcheck
	defer admin.srv.Close()

	c, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Query(wire.QuerySpec{Vector: []float64{0.5, 0.5, 0.5, 0.5}, Kind: "knn", K: 5}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + admin.lis.Addr().String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		`metricdb_phase_duration_seconds_count{phase="kernel"}`,
		"metricdb_wire_requests_total 1",
		"metricdb_buffer_capacity_pages",
		"metricdb_buffer_evictions_total",
		`metricdb_disk_reads_total{kind="rand"}`,
		"metricdb_traced_queries_total 1",
		`metricdb_phase_duration_quantile_seconds{phase="kernel",quantile="0.95"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	traces := get("/debug/traces")
	if !strings.Contains(traces, `"phase":"kernel"`) {
		t.Errorf("/debug/traces has no kernel span: %.200s", traces)
	}
	var span map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(traces, "\n", 2)[0]), &span); err != nil {
		t.Errorf("/debug/traces first line is not JSON: %v", err)
	}

	slow := get("/debug/slow")
	if !strings.Contains(slow, `"op": "single"`) {
		t.Errorf("/debug/slow missing the query at 1ns threshold: %.200s", slow)
	}

	// The process-specific /debug/explain endpoint is mounted on the same
	// admin mux and profiles a POSTed batch.
	body := strings.NewReader(`{"queries":[{"id":1,"vector":[0.5,0.5,0.5,0.5],"kind":"knn","k":5}]}`)
	resp, err := http.Post("http://"+admin.lis.Addr().String()+"/debug/explain", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	explain, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /debug/explain: status %d: %.200s", resp.StatusCode, explain)
	}
	if !strings.Contains(string(explain), `"pages_visited"`) {
		t.Errorf("/debug/explain has no profile: %.200s", explain)
	}

	// /debug/advise prices a synthetic batch against the live dataset.
	advise := get("/debug/advise?m=4&k=5")
	var advice struct {
		Engine       string           `json:"engine"`
		Reason       string           `json:"reason"`
		IntrinsicDim float64          `json:"intrinsic_dim"`
		Candidates   []map[string]any `json:"candidates"`
	}
	if err := json.Unmarshal([]byte(advise), &advice); err != nil {
		t.Fatalf("/debug/advise is not JSON: %v: %.200s", err, advise)
	}
	if advice.Engine == "" || advice.Reason == "" || advice.IntrinsicDim <= 0 {
		t.Errorf("/debug/advise incomplete: %.300s", advise)
	}
	if len(advice.Candidates) != 5 {
		t.Errorf("/debug/advise priced %d candidates, want 5", len(advice.Candidates))
	}
	if resp, err := http.Get("http://" + admin.lis.Addr().String() + "/debug/advise?m=0"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("/debug/advise?m=0: status %d, want 400", resp.StatusCode)
		}
	}
}

// TestCalibrationEndToEnd serves with -calibrate and -admit, drives single
// queries through the admission former (whose BlockObserver feeds the
// calibration recorder), and checks the whole loop is visible from the
// admin surface: the metricdb_advisor_* gauges and the counter-partition
// counters on /metrics, the always-present warning field on /debug/advise,
// and the ?calibrated=1 recorder snapshot with a live sample count.
func TestCalibrationEndToEnd(t *testing.T) {
	items := dataset.Uniform(9, 500, 4)
	cfg := wire.ServerConfig{Admit: &admit.Config{
		MaxQueue:   admit.DefaultMaxQueue,
		MaxWidth:   admit.DefaultMaxWidth,
		MaxWait:    time.Millisecond,
		DefaultSLO: time.Second,
	}}
	db, srv, lis, admin, err := serve("127.0.0.1:0", dataSource{items: items, calibrate: true}, "scan", cfg, "127.0.0.1:0", -1, "server")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()
	defer db.Close()              //nolint:errcheck
	go admin.srv.Serve(admin.lis) //nolint:errcheck
	defer admin.srv.Close()

	c, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		if _, _, err := c.Query(wire.QuerySpec{Vector: []float64{0.5, 0.4, 0.3, 0.2}, Kind: "knn", K: 5}); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Calibration().Samples(); got == 0 {
		t.Fatal("admitted queries recorded no calibration samples")
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + admin.lis.Addr().String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		`metricdb_advisor_abs_pct_error{engine="scan",counter="dist_calcs",model="raw"}`,
		`metricdb_advisor_abs_pct_error{engine="scan",counter="dist_calcs",model="calibrated"}`,
		`metricdb_advisor_abs_pct_error{engine="scan",counter="pages_read",model="raw"}`,
		`metricdb_advisor_factor{engine="scan",counter="dist_calcs"}`,
		`metricdb_advisor_factor{engine="scan",counter="pages_read"}`,
		`metricdb_advisor_fitted_ns{engine="scan",unit="dist_calc"}`,
		`metricdb_advisor_fitted_ns{engine="scan",unit="time_scale"}`,
		`metricdb_distance_pivot_total{engine="scan"}`,
		"metricdb_quant_filtered_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(metrics, `metricdb_advisor_samples{engine="scan"}`) ||
		strings.Contains(metrics, `metricdb_advisor_samples{engine="scan"} 0`) {
		t.Errorf("/metrics advisor sample count absent or zero")
	}

	// The advise response always carries the warning key ("" when healthy)
	// and, with ?calibrated=1, the recorder snapshot.
	advise := get("/debug/advise?m=2&k=3&calibrated=1")
	var doc map[string]any
	if err := json.Unmarshal([]byte(advise), &doc); err != nil {
		t.Fatalf("/debug/advise is not JSON: %v: %.200s", err, advise)
	}
	if _, ok := doc["warning"]; !ok {
		t.Error("/debug/advise response has no warning key")
	}
	cal, ok := doc["calibration"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/advise?calibrated=1 has no calibration section: %.300s", advise)
	}
	if samples, _ := cal["samples"].(float64); samples < 1 {
		t.Errorf("calibration snapshot samples = %v, want >= 1", cal["samples"])
	}
	if _, ok := doc["calibrated"].([]any); !ok {
		t.Errorf("advise response carries no calibrated ranking: %.300s", advise)
	}

	// Asking for the calibrated view on a server running without -calibrate
	// is a client error, not a silently absent section.
	pdb, psrv, plis, padmin, err := serve("127.0.0.1:0", dataSource{items: items}, "scan", wire.ServerConfig{}, "127.0.0.1:0", -1, "server")
	if err != nil {
		t.Fatal(err)
	}
	defer psrv.Close()
	defer pdb.Close()               //nolint:errcheck
	plis.Close()                    //nolint:errcheck
	go padmin.srv.Serve(padmin.lis) //nolint:errcheck
	defer padmin.srv.Close()
	resp, err := http.Get("http://" + padmin.lis.Addr().String() + "/debug/advise?calibrated=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("?calibrated=1 without -calibrate: status %d, want 400", resp.StatusCode)
	}
}

// TestServeStoredDataset serves a persistent dataset directory and checks
// that queries flow from the file-backed page store and that /metrics
// exports the metricdb_storage_* counters.
func TestServeStoredDataset(t *testing.T) {
	dir := t.TempDir()
	items := dataset.Uniform(8, 600, 4)
	if err := dataset.SaveDir(dir, items, dataset.SaveOptions{PageCapacity: 32, NoSync: true}); err != nil {
		t.Fatal(err)
	}
	db, srv, lis, admin, err := serve("127.0.0.1:0", dataSource{dir: dir}, "scan",
		wire.ServerConfig{}, "127.0.0.1:0", -1, "server")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()
	defer db.Close()              //nolint:errcheck
	go admin.srv.Serve(admin.lis) //nolint:errcheck
	defer admin.srv.Close()

	if mode, ok := db.Stored(); !ok || mode == "" {
		t.Fatalf("served DB is not storage-backed (mode %q, ok %v)", mode, ok)
	}

	c, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	answers, stats, err := c.Query(wire.QuerySpec{
		Vector: []float64{0.5, 0.5, 0.5, 0.5}, Kind: "knn", K: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 9 || stats.DistCalcs == 0 {
		t.Errorf("answers=%d stats=%+v", len(answers), stats)
	}

	resp, err := http.Get("http://" + admin.lis.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		`metricdb_storage_mode{mode="pread"} 1`,
		"metricdb_storage_preads_total",
		"metricdb_storage_bytes_read_total",
		"metricdb_storage_checksum_failures_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	st, ok := db.StorageStats()
	if !ok || st.Preads == 0 {
		t.Errorf("storage stats after query: %+v ok=%v", st, ok)
	}
}
