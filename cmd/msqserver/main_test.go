package main

import (
	"testing"

	"metricdb/internal/dataset"
	"metricdb/internal/wire"
)

func TestServeEndToEnd(t *testing.T) {
	items := dataset.Uniform(3, 500, 4)
	srv, lis, err := serve("127.0.0.1:0", items, "xtree")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()

	c, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	answers, stats, err := c.Query(wire.QuerySpec{
		Vector: []float64{0.5, 0.5, 0.5, 0.5}, Kind: "knn", K: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 7 || stats.DistCalcs == 0 {
		t.Errorf("answers=%d stats=%+v", len(answers), stats)
	}
}

func TestServeRejectsBadEngine(t *testing.T) {
	items := dataset.Uniform(4, 50, 3)
	if _, _, err := serve("127.0.0.1:0", items, "btree"); err == nil {
		t.Error("unknown engine accepted")
	}
}
