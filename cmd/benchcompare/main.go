// Command benchcompare diffs freshly generated BENCH_*.json artifacts
// against the committed baselines and fails (exit 1) on regression beyond
// a tolerance.
//
// Usage:
//
//	benchcompare [-tolerance 0.10] [-speedup-tolerance 0.25] baseline.json fresh.json [...]
//
// The two documents of each pair are walked in lockstep and compared
// metric by metric, keyed by JSON field name. Only scale-free metrics are
// judged, so the comparison is meaningful across machines:
//
//   - identity verdicts ("identical", "stable", "improved"): a
//     true-to-false flip is always a regression, tolerance does not apply;
//   - work counters, lower is better ("pages_read", "dist_calcs",
//     "mape_calibrated"): fresh exceeding baseline by more than the
//     tolerance is a regression;
//   - effectiveness metrics, higher is better ("speedup", "avoided",
//     "partial_abandoned"): fresh falling short of baseline by more than
//     the tolerance is a regression.
//
// Wall-clock fields (seconds, *_ns, *_ns_per_op) are machine-dependent
// and are deliberately not compared. Speedups are ratios of wall clocks —
// scale-free across machines but noisy run to run on a shared box — so
// they are judged against the wider -speedup-tolerance; the deterministic
// counters and verdicts use the tight -tolerance. A judged metric present
// in the baseline but missing from the fresh document is a regression;
// fields added by newer code are ignored, so baselines age gracefully.
//
// Exit codes: 0 all pairs within tolerance, 1 regression detected, 2
// usage or unreadable/corrupt input, 3 a baseline file does not exist —
// the usual cause is a freshly added experiment whose artifact has not
// been committed yet; the error message shows the seeding commands.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative slack for deterministic metrics")
	speedupTol := flag.Float64("speedup-tolerance", 0.25, "allowed relative slack for wall-clock-derived speedups")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 || len(args)%2 != 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcompare [-tolerance 0.10] [-speedup-tolerance 0.25] baseline.json fresh.json [...]")
		os.Exit(2)
	}
	failed := false
	for i := 0; i < len(args); i += 2 {
		if baselineMissing(args[i]) {
			fmt.Fprint(os.Stderr, missingBaselineMsg(args[i], args[i+1]))
			os.Exit(3)
		}
		regressions, compared, err := compareFiles(args[i], args[i+1], *tolerance, *speedupTol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
			os.Exit(2)
		}
		if len(regressions) == 0 {
			fmt.Printf("ok   %s vs %s (%d metrics within %.0f%%)\n", args[i], args[i+1], compared, *tolerance*100)
			continue
		}
		failed = true
		fmt.Printf("FAIL %s vs %s (%d metrics compared):\n", args[i], args[i+1], compared)
		for _, r := range regressions {
			fmt.Printf("  %s\n", r)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func compareFiles(basePath, freshPath string, tolerance, speedupTol float64) (regressions []string, compared int, err error) {
	base, err := readJSON(basePath)
	if err != nil {
		return nil, 0, err
	}
	fresh, err := readJSON(freshPath)
	if err != nil {
		return nil, 0, err
	}
	c := &comparer{basePath: basePath, tolerance: tolerance, speedupTol: speedupTol}
	c.walk("", base, fresh)
	sort.Strings(c.regressions)
	return c.regressions, c.compared, nil
}

// baselineMissing reports whether the committed baseline file does not
// exist — a distinct, fixable situation (exit 3) that must not be
// conflated with a corrupt or unreadable input (exit 2): there is nothing
// to judge against, and the fix is to seed and commit the baseline, not
// to debug the comparison.
func baselineMissing(path string) bool {
	_, err := os.Stat(path)
	return os.IsNotExist(err)
}

// missingBaselineMsg is the actionable report for a missing baseline: it
// names the gap and spells out the exact commands that close it.
func missingBaselineMsg(basePath, freshPath string) string {
	return fmt.Sprintf(`benchcompare: no committed baseline at %[1]s
A fresh artifact exists at %[2]s, but with no baseline to judge it
against no regression verdict is possible. If this experiment is new,
inspect the fresh artifact, then seed the baseline from it and commit:

    cp %[2]s %[1]s
    git add %[1]s

and re-run the comparison.
`, basePath, freshPath)
}

func readJSON(path string) (any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// Metric classification by JSON field name.
var (
	boolMetrics = map[string]bool{"identical": true, "stable": true, "improved": true}
	// higherWorse are work counters: doing more of this is a regression.
	// mape_calibrated is the advisor experiment's calibrated prediction
	// error — the quantity the calibration loop exists to shrink.
	higherWorse = map[string]bool{"pages_read": true, "dist_calcs": true, "mape_calibrated": true}
	// lowerWorse are effectiveness metrics: achieving less is a regression.
	lowerWorse = map[string]bool{"speedup": true, "avoided": true, "partial_abandoned": true}
)

type comparer struct {
	basePath    string
	tolerance   float64
	speedupTol  float64
	compared    int
	regressions []string
}

// fail records one regression line, prefixed with the baseline file and
// the full metric path — each line must name the offending baseline and
// key on its own, because CI logs interleave many pairs.
func (c *comparer) fail(path, format string, args ...any) {
	c.regressions = append(c.regressions, c.basePath+" "+path+": "+fmt.Sprintf(format, args...))
}

// walk descends base and fresh in lockstep. Objects are matched by key,
// arrays by index (rows of one experiment's result table keep their order
// across runs). Leaves are judged only when their key is classified.
func (c *comparer) walk(path string, base, fresh any) {
	switch b := base.(type) {
	case map[string]any:
		f, ok := fresh.(map[string]any)
		if !ok {
			c.fail(path, "object in baseline, %T in fresh", fresh)
			return
		}
		for k, bv := range b {
			sub := path + "/" + k
			fv, ok := f[k]
			if !ok {
				if boolMetrics[k] || higherWorse[k] || lowerWorse[k] {
					c.fail(sub, "judged metric missing from fresh document")
				}
				continue
			}
			c.walk(sub, bv, fv)
		}
	case []any:
		f, ok := fresh.([]any)
		if !ok {
			c.fail(path, "array in baseline, %T in fresh", fresh)
			return
		}
		if len(f) < len(b) {
			c.fail(path, "baseline has %d entries, fresh only %d", len(b), len(f))
		}
		for i := 0; i < len(b) && i < len(f); i++ {
			c.walk(fmt.Sprintf("%s[%d]", path, i), b[i], f[i])
		}
	case bool:
		key := leafKey(path)
		if !boolMetrics[key] {
			return
		}
		fv, ok := fresh.(bool)
		if !ok {
			c.fail(path, "bool in baseline, %T in fresh", fresh)
			return
		}
		c.compared++
		if b && !fv {
			c.fail(path, "verdict flipped true -> false")
		}
	case float64:
		key := leafKey(path)
		worse := higherWorse[key]
		better := lowerWorse[key]
		if !worse && !better {
			return
		}
		fv, ok := fresh.(float64)
		if !ok {
			c.fail(path, "number in baseline, %T in fresh", fresh)
			return
		}
		c.compared++
		tol := c.tolerance
		if key == "speedup" {
			tol = c.speedupTol
		}
		switch {
		case b == 0:
			if worse && fv > 0 {
				c.fail(path, "was 0, now %g", fv)
			}
		case worse && fv > b*(1+tol):
			c.fail(path, "%g -> %g (+%.1f%%, tolerance %.0f%%)", b, fv, (fv/b-1)*100, tol*100)
		case better && fv < b*(1-tol):
			c.fail(path, "%g -> %g (-%.1f%%, tolerance %.0f%%)", b, fv, (1-fv/b)*100, tol*100)
		}
	}
}

func leafKey(path string) string {
	key := path[strings.LastIndex(path, "/")+1:]
	if i := strings.IndexByte(key, '['); i >= 0 {
		key = key[:i]
	}
	return key
}
