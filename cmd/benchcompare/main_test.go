package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestComparePasses(t *testing.T) {
	base := write(t, "base.json", `[{"results":[
		{"identical":true,"speedup":2.0,"pages_read":100,"dist_calcs":5000,"seconds":9.0},
		{"identical":true,"speedup":3.5,"pages_read":100,"dist_calcs":5000,"seconds":4.0}]}]`)
	fresh := write(t, "fresh.json", `[{"results":[
		{"identical":true,"speedup":1.95,"pages_read":100,"dist_calcs":5100,"seconds":0.1},
		{"identical":true,"speedup":3.6,"pages_read":100,"dist_calcs":5000,"seconds":0.1}]}]`)
	regressions, compared, err := compareFiles(base, fresh, 0.10, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Errorf("unexpected regressions: %v", regressions)
	}
	// 2 verdicts + 2 speedups + 2 pages_read + 2 dist_calcs; seconds is
	// wall clock and must not be judged.
	if compared != 8 {
		t.Errorf("compared %d metrics, want 8", compared)
	}
}

func TestCompareFlagsCounterRegression(t *testing.T) {
	base := write(t, "base.json", `{"pages_read":100}`)
	fresh := write(t, "fresh.json", `{"pages_read":115}`)
	regressions, _, err := compareFiles(base, fresh, 0.10, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 1 || !strings.Contains(regressions[0], "pages_read") {
		t.Errorf("regressions = %v, want one on pages_read", regressions)
	}
}

func TestCompareFlagsVerdictFlip(t *testing.T) {
	base := write(t, "base.json", `{"identical":true}`)
	fresh := write(t, "fresh.json", `{"identical":false}`)
	regressions, _, err := compareFiles(base, fresh, 0.10, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 1 || !strings.Contains(regressions[0], "flipped") {
		t.Errorf("regressions = %v, want one verdict flip", regressions)
	}
}

func TestCompareFlagsSpeedupDrop(t *testing.T) {
	base := write(t, "base.json", `{"speedup":4.0,"avoided":1000}`)
	fresh := write(t, "fresh.json", `{"speedup":2.5,"avoided":850}`)
	regressions, _, err := compareFiles(base, fresh, 0.10, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 2 {
		t.Errorf("regressions = %v, want speedup and avoided", regressions)
	}
}

func TestCompareFlagsMissingMetricAndShortArray(t *testing.T) {
	base := write(t, "base.json", `{"results":[{"speedup":2.0},{"speedup":3.0}]}`)
	fresh := write(t, "fresh.json", `{"results":[{"seconds":1.0}]}`)
	regressions, _, err := compareFiles(base, fresh, 0.10, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var missing, short bool
	for _, r := range regressions {
		if strings.Contains(r, "missing") {
			missing = true
		}
		if strings.Contains(r, "entries") {
			short = true
		}
	}
	if !missing || !short {
		t.Errorf("regressions = %v, want a missing-metric and a short-array failure", regressions)
	}
}

func TestMissingBaselineDetection(t *testing.T) {
	existing := write(t, "base.json", `{}`)
	if baselineMissing(existing) {
		t.Error("existing baseline reported missing")
	}
	if !baselineMissing(filepath.Join(t.TempDir(), "BENCH_new.json")) {
		t.Error("nonexistent baseline not reported missing")
	}
}

func TestMissingBaselineMessageIsActionable(t *testing.T) {
	msg := missingBaselineMsg("BENCH_load.json", ".bench-fresh/BENCH_load.json")
	for _, want := range []string{
		"no committed baseline at BENCH_load.json",
		"cp .bench-fresh/BENCH_load.json BENCH_load.json",
		"git add BENCH_load.json",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("message missing %q:\n%s", want, msg)
		}
	}
}

func TestCompareIgnoresAddedFields(t *testing.T) {
	base := write(t, "base.json", `{"speedup":2.0}`)
	fresh := write(t, "fresh.json", `{"speedup":2.1,"new_metric":123,"identical":false}`)
	regressions, _, err := compareFiles(base, fresh, 0.10, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Errorf("added fresh-only fields must not be judged, got %v", regressions)
	}
}

// TestRegressionLinesNameBaselineAndKey: CI interleaves many pairs, so
// every regression line must name its offending baseline file and the full
// metric path on its own.
func TestRegressionLinesNameBaselineAndKey(t *testing.T) {
	base := write(t, "BENCH_advisor.json", `{"results":[{"engine":"scan","mape_calibrated":0.05,"improved":true}]}`)
	fresh := write(t, "fresh.json", `{"results":[{"engine":"scan","mape_calibrated":0.50,"improved":false}]}`)
	regressions, compared, err := compareFiles(base, fresh, 0.10, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 2 {
		t.Errorf("compared %d metrics, want 2 (improved + mape_calibrated)", compared)
	}
	if len(regressions) != 2 {
		t.Fatalf("regressions = %v, want 2", regressions)
	}
	for _, r := range regressions {
		if !strings.Contains(r, "BENCH_advisor.json") {
			t.Errorf("regression line does not name the baseline file: %q", r)
		}
	}
	var sawMape, sawImproved bool
	for _, r := range regressions {
		sawMape = sawMape || strings.Contains(r, "/results[0]/mape_calibrated")
		sawImproved = sawImproved || strings.Contains(r, "/results[0]/improved")
	}
	if !sawMape || !sawImproved {
		t.Errorf("regression lines missing metric paths: %v", regressions)
	}
}
