// Command msqbench regenerates every figure of the paper's evaluation
// (§6, Figures 7–12, plus the distance-vs-comparison micro-measurement)
// as text tables and optional CSV files.
//
// Usage:
//
//	msqbench [-experiment all|micro|fig7|fig8|fig9|fig10|fig11|fig12|chaos|intra|kernels|block|obs|distobs|load|storage|engines|advisor]
//	         [-scale small|medium|paper] [-csv dir] [-measure]
//	         [-intra-out BENCH_parallel_intra.json]
//	         [-kernels-out BENCH_kernels.json]
//	         [-block-out BENCH_block.json]
//	         [-obs-out BENCH_obs.json]
//	         [-distobs-out BENCH_distobs.json]
//	         [-load-out BENCH_load.json]
//	         [-storage-out BENCH_storage.json]
//	         [-engines-out BENCH_engines.json]
//	         [-advisor-out BENCH_advisor.json]
//
// The chaos experiment is not a paper figure: it declusters each workload
// over 4 servers, injects disk faults into 0..3 of them, and reports the
// degraded-mode coverage and recall of the surviving cluster.
//
// The intra experiment is not a paper figure either: it sweeps the
// intra-server pipeline width of the multi-query processor (goroutines
// evaluating each page, with page I/O prefetched alongside), reports the
// wall-clock speedup per engine, re-checks that every width returned
// answers and page reads identical to the sequential run, and writes the
// results to -intra-out as JSON.
//
// The kernels experiment microbenchmarks the bounded distance kernels:
// full Distance against early-abandoning DistanceWithin per metric, vector
// dimensionality and abandon rate, writing the ns/op table to -kernels-out
// as JSON.
//
// The block experiment measures the columnar (SoA) page layouts end to
// end: sequential page-pass throughput of one m-query batch on the scan
// engine across dimensionality × batch width × layout (aos, soa, f32,
// quant), re-checking on the measured runs that soa answers and counters
// are bit-identical to aos at pipeline widths 1, 2 and 8, that f32 keeps
// the IDs within the rounding bound, and that quant's filter moves pairs
// between CPU disposals without touching answers or page reads. Results go
// to -block-out as JSON.
//
// The obs experiment profiles the multi-query processor with the
// observability tracer enabled: per-phase latency histograms (page fetch
// and wait, query-distance matrix, kernel, avoidance checks, merge) per
// engine and pipeline width, re-checking that every traced run returned
// answers and counters identical to an untraced reference, and writes the
// phase baseline to -obs-out as JSON.
//
// The distobs experiment exercises the distributed observability layer: a
// coordinator fans one batch out to 4 wire servers on loopback TCP (one on
// a transient disk fault, forcing a retried attempt), checks that a single
// stitched cross-server trace with one child span per server call was
// recorded and that traced and untraced runs returned bit-identical
// answers and counters at every pipeline width, verifies the per-query
// EXPLAIN profile's width stability, and writes the results to
// -distobs-out as JSON.
//
// The load experiment drives an admission-controlled wire server with an
// open-loop generator through ramp, spike and sustained-overload traffic
// profiles (rates expressed as multiples of the host's own calibrated
// sequential capacity), records latency percentiles, shed rate and
// achieved cross-caller batch width, verifies that overload sheds are
// structured with retry-after hints while admitted answers stay
// bit-identical to the unbatched sequential path, and writes the results
// to -load-out as JSON.
//
// The storage experiment measures the file-backed page store (pread and
// mmap modes) against the simulated disk on the scan engine: one m-query
// batch per backend run cold (empty buffer, every page fetched) and warm
// (buffer covering the dataset), verifying that every backend returned
// answers, statistics and I/O counters bit-identical to the simulated
// reference, and writes the results to -storage-out as JSON.
//
// The engines experiment compares every physical organization the engine
// registry can build (scan, xtree, vafile, pivot, pmtree) on one k-NN
// batch across dimensionality × batch width, re-checking that each engine
// answered bit-identically to the sequential scan at pipeline widths 1 and
// 8, and writes the deterministic work counters (distance calculations,
// pages read, pivot setup distances) to -engines-out as JSON.
//
// The advisor experiment evaluates the calibration loop: per engine and
// dimensionality a calibrated database records predicted-vs-observed work
// counters over a warmup, then fresh judged batches compare the raw cost
// model's predictions against the calibrated ones. The run fails unless
// calibration strictly improves the prediction error wherever the raw
// model left any, and unless the calibrated database stayed bit-identical
// to a plain reference on every judged batch. Results go to -advisor-out
// as JSON.
//
// -measure calibrates the cost model on this host instead of using the
// paper's nominal 1999 hardware constants.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"metricdb/internal/cost"
	"metricdb/internal/experiments"
	"metricdb/internal/experiments/advisor"
	"metricdb/internal/parallel"
	"metricdb/internal/report"
	"metricdb/internal/vec"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run: all, micro, fig7..fig12, chaos, intra, kernels, block, obs, distobs, load, storage, engines, advisor")
		scaleName  = flag.String("scale", "small", "dataset scale: small, medium or paper")
		csvDir     = flag.String("csv", "", "also write each figure as CSV into this directory")
		measure    = flag.Bool("measure", false, "calibrate the cost model on this host instead of nominal 1999 constants")
		intraOut   = flag.String("intra-out", "BENCH_parallel_intra.json", "output file for the intra experiment's JSON results")
		kernelsOut = flag.String("kernels-out", "BENCH_kernels.json", "output file for the kernels experiment's JSON results")
		blockOut   = flag.String("block-out", "BENCH_block.json", "output file for the block experiment's JSON results")
		obsOut     = flag.String("obs-out", "BENCH_obs.json", "output file for the obs experiment's JSON results")
		distObsOut = flag.String("distobs-out", "BENCH_distobs.json", "output file for the distobs experiment's JSON results")
		loadOut    = flag.String("load-out", "BENCH_load.json", "output file for the load experiment's JSON results")
		storageOut = flag.String("storage-out", "BENCH_storage.json", "output file for the storage experiment's JSON results")
		enginesOut = flag.String("engines-out", "BENCH_engines.json", "output file for the engines experiment's JSON results")
		advisorOut = flag.String("advisor-out", "BENCH_advisor.json", "output file for the advisor experiment's JSON results")
	)
	flag.Parse()
	if err := run(*experiment, *scaleName, *csvDir, *measure, *intraOut, *kernelsOut, *blockOut, *obsOut, *distObsOut, *loadOut, *storageOut, *enginesOut, *advisorOut); err != nil {
		fmt.Fprintln(os.Stderr, "msqbench:", err)
		os.Exit(1)
	}
}

func run(experiment, scaleName, csvDir string, measure bool, intraOut, kernelsOut, blockOut, obsOut, distObsOut, loadOut, storageOut, enginesOut, advisorOut string) error {
	sc, err := experiments.ScaleByName(scaleName)
	if err != nil {
		return err
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}

	want := func(name string) bool { return experiment == "all" || experiment == name }
	valid := map[string]bool{"all": true, "micro": true, "fig7": true, "fig8": true,
		"fig9": true, "fig10": true, "fig11": true, "fig12": true, "chaos": true,
		"intra": true, "kernels": true, "block": true, "obs": true, "distobs": true,
		"load": true, "storage": true, "engines": true, "advisor": true}
	if !valid[experiment] {
		return fmt.Errorf("unknown experiment %q", experiment)
	}

	fmt.Printf("scale=%s  astronomy: %d x %d-d   image: %d x %d-d\n\n",
		sc.Name, sc.AstroN, sc.AstroDim, sc.ImageN, sc.ImageDim)

	emit := func(fig *report.Figure) error {
		if err := fig.WriteTable(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if csvDir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(csvDir, slug(fig.Title)+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fig.WriteCSV(f); err != nil {
			return err
		}
		return f.Close()
	}

	if want("micro") {
		if err := emit(experiments.MicroFigure([]int{20, 64})); err != nil {
			return err
		}
	}

	if want("kernels") {
		sweep, err := experiments.RunKernels([]int{4, 16, 64}, []float64{0, 0.5, 0.95}, 512)
		if err != nil {
			return err
		}
		if err := emit(sweep.Figure()); err != nil {
			return err
		}
		if err := experiments.WriteKernelsJSONFile(kernelsOut, sweep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", kernelsOut)
	}

	if want("block") {
		sweep, err := experiments.RunBlockLayouts([]int{4, 8, 16, 32}, []int{1, 8, 32}, 6000)
		if err != nil {
			return err
		}
		for _, r := range sweep.Results {
			if !r.Identical {
				return fmt.Errorf("block: layout %s at dim %d, m %d diverged from the sequential AoS reference",
					r.Layout, r.Dim, r.M)
			}
		}
		if err := emit(sweep.Figure()); err != nil {
			return err
		}
		if err := experiments.WriteBlockJSONFile(blockOut, sweep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", blockOut)
	}

	if want("engines") {
		sweep, err := experiments.RunEngines([]int{4, 8, 16}, []int{1, 8, 32}, 4000)
		if err != nil {
			return err
		}
		for _, r := range sweep.Results {
			if !r.Identical {
				return fmt.Errorf("engines: %s at dim %d, m %d diverged from the scan reference",
					r.Engine, r.Dim, r.M)
			}
		}
		if err := emit(sweep.Figure()); err != nil {
			return err
		}
		if err := experiments.WriteEnginesJSONFile(enginesOut, sweep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", enginesOut)
	}

	if want("advisor") {
		sweep, err := advisor.Run([]int{4, 8}, 3000)
		if err != nil {
			return err
		}
		for _, r := range sweep.Results {
			if !r.Identical {
				return fmt.Errorf("advisor: %s at dim %d: calibrated run diverged from the plain reference",
					r.Engine, r.Dim)
			}
			if !r.Improved {
				return fmt.Errorf("advisor: %s at dim %d: calibration did not improve the cost model (MAPE %.4f raw vs %.4f calibrated)",
					r.Engine, r.Dim, r.MAPERaw, r.MAPECalibrated)
			}
		}
		if err := emit(sweep.Figure()); err != nil {
			return err
		}
		if err := advisor.WriteJSONFile(advisorOut, sweep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", advisorOut)
	}

	needSweep := want("fig7") || want("fig8") || want("fig9") || want("fig10")
	needParallel := want("fig11") || want("fig12")
	needChaos := want("chaos")
	needIntra := want("intra")
	needObs := want("obs")
	needDistObs := want("distobs")
	needLoad := want("load")
	needStorage := want("storage")
	if !needSweep && !needParallel && !needChaos && !needIntra && !needObs && !needDistObs && !needLoad && !needStorage {
		return nil
	}

	modelFor := func(dim int) cost.Model {
		if measure {
			return cost.Measure(vec.Euclidean{}, dim)
		}
		return cost.PaperModel(dim)
	}

	astro := experiments.Astronomy(sc)
	image, err := experiments.Image(sc)
	if err != nil {
		return err
	}
	workloads := []struct {
		w     experiments.Workload
		model cost.Model
	}{
		{astro, modelFor(sc.AstroDim)},
		{image, modelFor(sc.ImageDim)},
	}

	if needSweep {
		for _, wl := range workloads {
			sweep, err := experiments.RunSweep(wl.w, sc.MValues, wl.model)
			if err != nil {
				return err
			}
			figs := map[string]*report.Figure{
				"fig7":  sweep.Fig7(),
				"fig8":  sweep.Fig8(),
				"fig9":  sweep.Fig9(),
				"fig10": sweep.Fig10(),
			}
			for _, name := range []string{"fig7", "fig8", "fig9", "fig10"} {
				if want(name) {
					if err := emit(figs[name]); err != nil {
						return err
					}
				}
			}
		}
	}

	if needChaos {
		for _, wl := range workloads {
			res, err := experiments.RunChaos(wl.w, 4, sc.BaseM)
			if err != nil {
				return err
			}
			if err := emit(res.Figure()); err != nil {
				return err
			}
		}
	}

	if needIntra {
		var sweeps []*experiments.IntraSweep
		for _, wl := range workloads {
			sweep, err := experiments.RunIntra(wl.w, []int{1, 2, 4, 8}, sc.BaseM)
			if err != nil {
				return err
			}
			for _, r := range sweep.Results {
				if !r.Identical {
					return fmt.Errorf("intra: %s/%s width %d returned different answers or page reads than sequential",
						r.Workload, r.Engine, r.Width)
				}
			}
			if err := emit(sweep.Figure()); err != nil {
				return err
			}
			sweeps = append(sweeps, sweep)
		}
		if err := experiments.WriteIntraJSONFile(intraOut, sweeps); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", intraOut)
	}

	if needObs {
		var profiles []*experiments.ObsProfile
		for _, wl := range workloads {
			profile, err := experiments.RunObs(wl.w, []int{1, 2, 8}, sc.BaseM)
			if err != nil {
				return err
			}
			for _, r := range profile.Results {
				if !r.Identical {
					return fmt.Errorf("obs: %s/%s width %d: traced run diverged from the untraced reference",
						r.Workload, r.Engine, r.Width)
				}
			}
			if err := emit(profile.Figure()); err != nil {
				return err
			}
			profiles = append(profiles, profile)
		}
		if err := experiments.WriteObsJSONFile(obsOut, profiles); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", obsOut)
	}

	if needDistObs {
		var profiles []*experiments.DistObsProfile
		for _, wl := range workloads {
			profile, err := experiments.RunDistObs(wl.w, 4, []int{1, 2, 8}, sc.BaseM)
			if err != nil {
				return err
			}
			for _, r := range profile.Runs {
				if !r.Identical {
					return fmt.Errorf("distobs: %s width %d: traced run diverged from the untraced reference",
						profile.Workload, r.Width)
				}
				if r.Traces != 1 {
					return fmt.Errorf("distobs: %s width %d: %d stitched traces, want exactly 1",
						profile.Workload, r.Width, r.Traces)
				}
				if r.ServerCalls < profile.Servers+1 {
					return fmt.Errorf("distobs: %s width %d: %d server_call spans, want >= %d (servers + retried attempt)",
						profile.Workload, r.Width, r.ServerCalls, profile.Servers+1)
				}
			}
			for _, e := range profile.Explain {
				if !e.Stable {
					return fmt.Errorf("distobs: %s: EXPLAIN profile moved between widths %d and %d",
						profile.Workload, profile.Explain[0].Width, e.Width)
				}
			}
			if err := emit(profile.Figure()); err != nil {
				return err
			}
			profiles = append(profiles, profile)
		}
		if err := experiments.WriteDistObsJSONFile(distObsOut, profiles); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", distObsOut)
	}

	if needLoad {
		result, err := experiments.RunLoad(astro, experiments.LoadConfig{})
		if err != nil {
			return err
		}
		for _, r := range result.Runs {
			if !r.Identical {
				return fmt.Errorf("load: %s profile: an admitted answer diverged from the unbatched sequential reference", r.Profile)
			}
			if !r.Stable {
				return fmt.Errorf("load: %s profile unstable: admitted=%d shed=%d errors=%d p95=%.1fms (SLO %.0fms) width=%.2f hints=%v",
					r.Profile, r.Admitted, r.Shed, r.ErrorsOther, r.P95Ms, result.SLOMs, r.AvgWidth, r.RetryAfterHints)
			}
		}
		if err := emit(result.Figure()); err != nil {
			return err
		}
		if err := experiments.WriteLoadJSONFile(loadOut, result); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", loadOut)
	}

	if needStorage {
		var results []*experiments.StorageResult
		for _, wl := range workloads {
			res, err := experiments.RunStorage(wl.w, sc.BaseM)
			if err != nil {
				return err
			}
			for _, r := range res.Runs {
				if !r.Identical {
					return fmt.Errorf("storage: %s/%s backend diverged from the simulated-disk reference",
						r.Workload, r.Backend)
				}
			}
			if err := emit(res.Figure()); err != nil {
				return err
			}
			results = append(results, res)
		}
		if err := experiments.WriteStorageJSONFile(storageOut, results); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", storageOut)
	}

	if needParallel {
		for _, wl := range workloads {
			var f11, f12 []*report.Figure
			for _, kind := range []parallel.EngineKind{parallel.ScanEngine, parallel.XTreeEngine} {
				sw, err := experiments.RunParallelSweep(wl.w, sc, kind, wl.model)
				if err != nil {
					return err
				}
				f11 = append(f11, sw.Fig11())
				f12 = append(f12, sw.Fig12())
			}
			if want("fig11") {
				merged, err := experiments.MergeFigures(
					fmt.Sprintf("Figure 11: parallelization speed-up wrt s (%s database)", wl.w.Name), f11...)
				if err != nil {
					return err
				}
				if err := emit(merged); err != nil {
					return err
				}
			}
			if want("fig12") {
				merged, err := experiments.MergeFigures(
					fmt.Sprintf("Figure 12: overall speed-up wrt s (%s database)", wl.w.Name), f12...)
				if err != nil {
					return err
				}
				if err := emit(merged); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// slug converts a figure title into a file name.
func slug(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && !strings.HasSuffix(b.String(), "-"):
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}
