package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Figure 7: avg I/O cost per similarity query (astronomy database)": "figure-7-avg-i-o-cost-per-similarity-query-astronomy-database",
		"Micro: distance calculation":                                      "micro-distance-calculation",
		"---":                                                              "",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run("fig99", "small", "", false, "out.json", "kernels.json", "block.json", "obs.json", "distobs.json", "load.json", "storage.json", "engines.json", "advisor.json"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run("all", "galactic", "", false, "out.json", "kernels.json", "block.json", "obs.json", "distobs.json", "load.json", "storage.json", "engines.json", "advisor.json"); err == nil {
		t.Error("unknown scale accepted")
	}
}

// TestRunMicroWritesCSV runs the cheapest experiment end to end, including
// the CSV output path. Stdout is redirected away to keep test logs clean.
func TestRunMicroWritesCSV(t *testing.T) {
	dir := t.TempDir()

	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()

	if err := run("micro", "small", dir, false, "out.json", "kernels.json", "block.json", "obs.json", "distobs.json", "load.json", "storage.json", "engines.json", "advisor.json"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !strings.HasSuffix(entries[0].Name(), ".csv") {
		t.Fatalf("CSV dir contents: %v", entries)
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "dim,") {
		t.Errorf("CSV content: %q", string(data))
	}
}
