package main

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"metricdb"

	"metricdb/internal/dataset"
	"metricdb/internal/store"
)

func TestRunGeneratesAllKinds(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		kind string
		dim  int
	}{
		{"uniform", 6},
		{"nearuniform", 12},
		{"clustered", 8},
	}
	for _, c := range cases {
		out := filepath.Join(dir, c.kind+".gob")
		if err := run(out, "gob", 0, c.kind, 500, c.dim, 4, 0.05, 4, c.kind == "clustered", 0, 7, "aos", 0, false); err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		items, err := dataset.ReadFile(out)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if len(items) != 500 || items[0].Vec.Dim() != c.dim {
			t.Errorf("%s: %d items of dim %d", c.kind, len(items), items[0].Vec.Dim())
		}
	}
}

// TestRunDirFormatRoundTrip: the default dir format must load back the
// exact items the gob format records — the two encodings of one generator
// run are bit-identical — and the manifest carries the provenance attrs.
func TestRunDirFormatRoundTrip(t *testing.T) {
	base := t.TempDir()
	gobOut := filepath.Join(base, "ds.gob")
	dirOut := filepath.Join(base, "ds.dir")
	if err := run(gobOut, "gob", 0, "clustered", 400, 5, 4, 0.05, 0, false, 0.1, 9, "aos", 0, false); err != nil {
		t.Fatal(err)
	}
	if err := run(dirOut, "dir", 16, "clustered", 400, 5, 4, 0.05, 0, false, 0.1, 9, "aos", 0, false); err != nil {
		t.Fatal(err)
	}
	fromGob, err := dataset.ReadAny(gobOut)
	if err != nil {
		t.Fatal(err)
	}
	fromDir, err := dataset.ReadAny(dirOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromGob) != len(fromDir) {
		t.Fatalf("%d gob items vs %d dir items", len(fromGob), len(fromDir))
	}
	for i := range fromGob {
		if fromGob[i].ID != fromDir[i].ID || fromGob[i].Label != fromDir[i].Label {
			t.Fatalf("item %d metadata differs", i)
		}
		for d := range fromGob[i].Vec {
			if math.Float64bits(fromGob[i].Vec[d]) != math.Float64bits(fromDir[i].Vec[d]) {
				t.Fatalf("item %d coord %d differs across formats", i, d)
			}
		}
	}
	fd, err := store.OpenFileDisk(dirOut, store.FileDiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close() //nolint:errcheck
	man := fd.Manifest()
	if man.Attrs["kind"] != "clustered" || man.Attrs["seed"] != "9" || man.PageCapacity != 16 {
		t.Errorf("manifest provenance: %+v", man)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "dir", 0, "uniform", 10, 2, 1, 0, 1, false, 0, 1, "aos", 0, false); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "x"), "dir", 0, "weird", 10, 2, 1, 0, 1, false, 0, 1, "aos", 0, false); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "x"), "tar", 0, "uniform", 10, 2, 1, 0, 1, false, 0, 1, "aos", 0, false); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "x"), "dir", 0, "nearuniform", 10, 2, 1, 0, 99, false, 0, 1, "aos", 0, false); err == nil {
		t.Error("bad intrinsic dimension accepted")
	}
}

// TestAdviceLineSurfacesWarning: an estimator fallback must appear in the
// stdout advice line itself, not only on stderr — a piped consumer must
// never read a silently degraded ranking.
func TestAdviceLineSurfacesWarning(t *testing.T) {
	healthy := metricdb.Advice{Engine: metricdb.EngineXTree, IntrinsicDim: 5.2, Reason: "tree retains selectivity"}
	if got := adviceLine(healthy); !strings.Contains(got, "advice: engine=xtree") || strings.Contains(got, "warning") {
		t.Errorf("healthy advice line wrong: %q", got)
	}
	degraded := healthy
	degraded.Warning = "intrinsic-dimension estimate failed: duplicated data"
	got := adviceLine(degraded)
	if !strings.Contains(got, "warning: intrinsic-dimension estimate failed") {
		t.Errorf("fallback warning missing from advice line: %q", got)
	}
}
