package main

import (
	"path/filepath"
	"testing"

	"metricdb/internal/dataset"
)

func TestRunGeneratesAllKinds(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		kind string
		dim  int
	}{
		{"uniform", 6},
		{"nearuniform", 12},
		{"clustered", 8},
	}
	for _, c := range cases {
		out := filepath.Join(dir, c.kind+".gob")
		if err := run(out, c.kind, 500, c.dim, 4, 0.05, 4, c.kind == "clustered", 0, 7); err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		items, err := dataset.ReadFile(out)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if len(items) != 500 || items[0].Vec.Dim() != c.dim {
			t.Errorf("%s: %d items of dim %d", c.kind, len(items), items[0].Vec.Dim())
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "uniform", 10, 2, 1, 0, 1, false, 0, 1); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "x"), "weird", 10, 2, 1, 0, 1, false, 0, 1); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "x"), "nearuniform", 10, 2, 1, 0, 99, false, 0, 1); err == nil {
		t.Error("bad intrinsic dimension accepted")
	}
}
