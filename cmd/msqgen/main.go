// Command msqgen generates synthetic datasets (the paper-data substitutes)
// and stores them in gob files for reuse by msqexplore and custom
// experiments.
//
// Usage:
//
//	msqgen -out data.gob -kind uniform|nearuniform|clustered
//	       [-n 100000] [-dim 20] [-clusters 10] [-spread 0.05]
//	       [-intrinsic 8] [-histogram] [-noise 0.0] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"metricdb/internal/dataset"
	"metricdb/internal/store"
)

func main() {
	var (
		out       = flag.String("out", "", "output file (required)")
		kind      = flag.String("kind", "uniform", "uniform, nearuniform or clustered")
		n         = flag.Int("n", 100000, "number of items")
		dim       = flag.Int("dim", 20, "dimensionality")
		clusters  = flag.Int("clusters", 10, "clusters (clustered kind)")
		spread    = flag.Float64("spread", 0.05, "cluster spread (clustered kind)")
		intrinsic = flag.Int("intrinsic", 8, "intrinsic dimensionality (nearuniform kind)")
		histogram = flag.Bool("histogram", false, "L1-normalize to histograms (clustered kind)")
		noise     = flag.Float64("noise", 0, "noise fraction (clustered) or noise level (nearuniform)")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*out, *kind, *n, *dim, *clusters, *spread, *intrinsic, *histogram, *noise, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "msqgen:", err)
		os.Exit(1)
	}
}

func run(out, kind string, n, dim, clusters int, spread float64, intrinsic int, histogram bool, noise float64, seed int64) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	var items []store.Item
	var err error
	switch kind {
	case "uniform":
		items = dataset.Uniform(seed, n, dim)
	case "nearuniform":
		items, err = dataset.NearUniform(seed, n, dim, intrinsic, noise)
	case "clustered":
		items, err = dataset.Clustered(dataset.ClusteredConfig{
			Seed: seed, N: n, Dim: dim, Clusters: clusters,
			Spread: spread, Histogram: histogram, NoiseFraction: noise,
		})
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if err != nil {
		return err
	}
	if err := dataset.WriteFile(out, items); err != nil {
		return err
	}
	fmt.Printf("wrote %d %d-d items (%s) to %s\n", len(items), dim, kind, out)
	return nil
}
