// Command msqgen generates synthetic datasets (the paper-data substitutes)
// and stores them for reuse by msqexplore, msqserver -data, and custom
// experiments. The default output is a persistent dataset directory in the
// checksummed page-store format (servable without loading into memory);
// -format gob keeps the legacy single-file encoding.
//
// Usage:
//
//	msqgen -out data.dir -kind uniform|nearuniform|clustered
//	       [-format dir|gob] [-pagecap 0] [-n 100000] [-dim 20]
//	       [-clusters 10] [-spread 0.05] [-intrinsic 8] [-histogram]
//	       [-noise 0.0] [-seed 1] [-layout aos|soa|f32|quant] [-quantbits 8]
//	       [-advise]
//
// -advise additionally runs the engine advisor on the generated items and
// prints the recommendation; advisor warnings (estimator fallbacks) are
// appended to the stdout advice line and repeated on stderr — a fallback
// ranking is never printed silently.
//
// -layout soa writes version-2 columnar page records (contiguous float64
// blocks per page); f32 adds the float32 sibling; quant adds VA-file-style
// quantized codes at -quantbits bits per dimension. Version-1 readers are
// unaffected: OpenStored columnizes on read when the file lacks a
// representation the session's layout wants.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"metricdb"
	"metricdb/internal/dataset"
	"metricdb/internal/store"
)

func main() {
	var (
		out       = flag.String("out", "", "output path (required)")
		format    = flag.String("format", "dir", "dir (persistent page store) or gob (legacy single file)")
		pagecap   = flag.Int("pagecap", 0, "items per page for -format dir (0 derives from 32 KB blocks)")
		kind      = flag.String("kind", "uniform", "uniform, nearuniform or clustered")
		n         = flag.Int("n", 100000, "number of items")
		dim       = flag.Int("dim", 20, "dimensionality")
		clusters  = flag.Int("clusters", 10, "clusters (clustered kind)")
		spread    = flag.Float64("spread", 0.05, "cluster spread (clustered kind)")
		intrinsic = flag.Int("intrinsic", 8, "intrinsic dimensionality (nearuniform kind)")
		histogram = flag.Bool("histogram", false, "L1-normalize to histograms (clustered kind)")
		noise     = flag.Float64("noise", 0, "noise fraction (clustered) or noise level (nearuniform)")
		seed      = flag.Int64("seed", 1, "random seed")
		layout    = flag.String("layout", "aos", "page representation for -format dir: aos, soa, f32 or quant")
		quantbits = flag.Int("quantbits", 0, "bits per dimension for -layout quant (0 selects 8)")
		advise    = flag.Bool("advise", false, "print an engine recommendation for the generated dataset")
	)
	flag.Parse()
	if err := run(*out, *format, *pagecap, *kind, *n, *dim, *clusters, *spread, *intrinsic, *histogram, *noise, *seed, *layout, *quantbits, *advise); err != nil {
		fmt.Fprintln(os.Stderr, "msqgen:", err)
		os.Exit(1)
	}
}

func run(out, format string, pagecap int, kind string, n, dim, clusters int, spread float64, intrinsic int, histogram bool, noise float64, seed int64, layout string, quantbits int, advise bool) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	save := dataset.SaveOptions{PageCapacity: pagecap}
	switch layout {
	case "", "aos":
	case "soa":
		save.Columnar = true
	case "f32":
		save.Columnar, save.F32 = true, true
	case "quant":
		save.Columnar = true
		save.QuantBits = quantbits
		if save.QuantBits == 0 {
			save.QuantBits = 8
		}
	default:
		return fmt.Errorf("unknown layout %q (want aos, soa, f32 or quant)", layout)
	}
	if quantbits != 0 && layout != "quant" {
		return fmt.Errorf("-quantbits requires -layout quant")
	}
	if quantbits < 0 || quantbits > 8 {
		return fmt.Errorf("-quantbits must be in [0, 8], got %d", quantbits)
	}
	var items []store.Item
	var err error
	switch kind {
	case "uniform":
		items = dataset.Uniform(seed, n, dim)
	case "nearuniform":
		items, err = dataset.NearUniform(seed, n, dim, intrinsic, noise)
	case "clustered":
		items, err = dataset.Clustered(dataset.ClusteredConfig{
			Seed: seed, N: n, Dim: dim, Clusters: clusters,
			Spread: spread, Histogram: histogram, NoiseFraction: noise,
		})
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if err != nil {
		return err
	}
	switch format {
	case "dir":
		save.Attrs = map[string]string{
			"kind": kind,
			"seed": strconv.FormatInt(seed, 10),
		}
		err = dataset.SaveDir(out, items, save)
	case "gob":
		err = dataset.WriteFile(out, items)
	default:
		return fmt.Errorf("unknown format %q (want dir or gob)", format)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d %d-d items (%s, %s format) to %s\n", len(items), dim, kind, format, out)
	if advise {
		a, err := metricdb.Advise(items, seed)
		if err != nil {
			return err
		}
		fmt.Print(adviceLine(a))
		// The warning is repeated on stderr for log separation, but never
		// only there — see adviceLine.
		if a.Warning != "" {
			fmt.Fprintln(os.Stderr, "msqgen: advisor warning:", a.Warning)
		}
	}
	return nil
}

// adviceLine renders the advisor's recommendation for stdout. A warning
// (estimator fallback) is part of the line itself: anyone reading or
// piping only stdout must see that the ranking rests on a fallback rather
// than receive it silently.
func adviceLine(a metricdb.Advice) string {
	line := fmt.Sprintf("advice: engine=%s intrinsic_dim=%.1f — %s", a.Engine, a.IntrinsicDim, a.Reason)
	if a.Warning != "" {
		line += fmt.Sprintf(" (warning: %s)", a.Warning)
	}
	return line + "\n"
}
