package metricdb

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestOptionsValidate(t *testing.T) {
	good := []Options{
		{},
		{Engine: EngineScan},
		{Engine: EngineXTree, XTree: &XTreeOptions{MaxOverlap: 0.2, MinFillRatio: 0.4}},
		{Engine: EngineVAFile, VAFileBits: 8},
		{BufferPages: -1}, // sentinel: unbuffered
	}
	for i, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("good options %d rejected: %v", i, err)
		}
	}
	bad := []Options{
		{Engine: "btree"},
		{PageCapacity: -1},
		{Concurrency: -2},
		{VAFileBits: -1},
		{Engine: EngineXTree, XTree: &XTreeOptions{MaxOverlap: 1.5}},
		{Engine: EngineXTree, XTree: &XTreeOptions{MinFillRatio: 0.9}},
		{Engine: EngineXTree, XTree: &XTreeOptions{ReinsertFraction: 1}},
		{Engine: EngineXTree, XTree: &XTreeOptions{DirFanout: -3}},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d accepted: %+v", i, o)
		}
		if _, err := Open(testItems(1, 10, 3), o); err == nil {
			t.Errorf("Open accepted bad options %d: %+v", i, o)
		}
	}
}

func TestQueryContextCancellation(t *testing.T) {
	db, err := Open(testItems(80, 400, 6), Options{PageCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	q := Vector{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := db.QueryContext(ctx, q, KNNQuery(5)); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled QueryContext error = %v, want context.Canceled", err)
	}

	// An expired deadline surfaces as DeadlineExceeded.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer dcancel()
	if _, _, err := db.QueryContext(dctx, q, KNNQuery(5)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired QueryContext error = %v, want context.DeadlineExceeded", err)
	}

	// A live context changes nothing: answers and stats match the
	// context-free path on a fresh, identically built database.
	want, _, err := db.Query(q, KNNQuery(5))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := db.QueryContext(context.Background(), q, KNNQuery(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("QueryContext returned %d answers, Query %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("answer %d: QueryContext %+v != Query %+v", i, got[i], want[i])
		}
	}
}

func TestBatchContextCancellationAndResume(t *testing.T) {
	items := testItems(81, 600, 6)
	db, err := Open(items, Options{PageCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{ID: 1, Vec: items[3].Vec, Type: KNNQuery(4)},
		{ID: 2, Vec: items[77].Vec, Type: KNNQuery(4)},
	}

	b := db.NewBatch()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := b.QueryContext(ctx, queries); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Batch.QueryContext error = %v, want context.Canceled", err)
	}
	if _, _, err := b.QueryAllContext(ctx, queries); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Batch.QueryAllContext error = %v, want context.Canceled", err)
	}

	// The aborted batch resumes: a live context completes the same batch,
	// and the answers match a fresh uncancelled batch.
	got, _, err := b.QueryAllContext(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.NewBatch().QueryAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range want {
		if len(got[qi]) != len(want[qi]) {
			t.Fatalf("query %d: resumed batch returned %d answers, fresh batch %d", qi, len(got[qi]), len(want[qi]))
		}
		for i := range want[qi] {
			if got[qi][i] != want[qi][i] {
				t.Errorf("query %d answer %d: resumed %+v != fresh %+v", qi, i, got[qi][i], want[qi][i])
			}
		}
	}
}

func TestProcessorStatsFacade(t *testing.T) {
	db, err := Open(testItems(82, 200, 4), Options{Concurrency: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := db.ProcessorStats()
	if st.Concurrency != 3 || st.Avoidance != AvoidBoth {
		t.Errorf("fresh ProcessorStats = %+v", st)
	}
	if st.DistCalcs != 0 {
		t.Errorf("fresh DistCalcs = %d, want 0", st.DistCalcs)
	}
	if _, _, err := db.Query(Vector{0.1, 0.2, 0.3, 0.4}, KNNQuery(3)); err != nil {
		t.Fatal(err)
	}
	after := db.ProcessorStats()
	if after.DistCalcs <= 0 {
		t.Errorf("DistCalcs after a query = %d, want > 0", after.DistCalcs)
	}
	if after.PartialAbandoned > after.DistCalcs {
		t.Errorf("PartialAbandoned %d exceeds DistCalcs %d", after.PartialAbandoned, after.DistCalcs)
	}

	// WithConcurrency shares the counters and storage but repins the width.
	wide := db.WithConcurrency(8)
	if got := wide.ProcessorStats().Concurrency; got != 8 {
		t.Errorf("WithConcurrency(8) width = %d", got)
	}
	if got := wide.ProcessorStats().DistCalcs; got != after.DistCalcs {
		t.Errorf("WithConcurrency counters diverged: %d != %d", got, after.DistCalcs)
	}
	if db.ProcessorStats().Concurrency != 3 {
		t.Error("WithConcurrency mutated the receiver")
	}
}
