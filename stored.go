package metricdb

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"metricdb/internal/dataset"
	"metricdb/internal/engine"
	"metricdb/internal/engines"
	"metricdb/internal/msq"
	"metricdb/internal/pivot"
	"metricdb/internal/scan"
	"metricdb/internal/store"
)

// OpenStored opens a database over a persistent dataset directory — the
// on-disk format written by dataset.SaveDir and cmd/msqgen. Unlike Open,
// which paginates in-memory items onto a simulated disk, the returned DB
// reads its data pages from the file system (pread, or mmap when
// Options.Mmap is set), verifying each page's checksum on the way; I/O
// statistics count real reads.
//
// Engine mapping:
//
//   - EngineScan serves the dataset's own page layout directly, so opening
//     is free of page reads (sizes come from the manifest) and the scan's
//     sequential-I/O property holds on the physical file.
//   - EnginePivot also serves the dataset's own pages; its pivot table is
//     loaded from the dataset directory (pivots.dat) when one matching the
//     manifest's generation, metric, and shape is present, and otherwise
//     rebuilt from the items and persisted crash-safely for the next open.
//   - EngineXTree, EngineVAFile and EnginePMTree build their structure
//     from the loaded items, then persist their private page layout into a
//     "layout-<engine>" subdirectory (rebuilt, crash-safely, on every
//     open) and read data pages from it.
//
// The caller owns the returned DB and must Close it to release the
// underlying file handles and mappings.
func OpenStored(dir string, opts Options) (*DB, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	items, err := dataset.LoadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("metricdb: opening stored database: %w", err)
	}
	dim, err := validateItems(items)
	if err != nil {
		return nil, fmt.Errorf("metricdb: stored dataset %s: %w", dir, err)
	}
	opts, bufferPages := opts.withDefaults(dim, len(items))

	var db *DB
	switch opts.Engine {
	case EngineScan, EnginePivot:
		db, err = openStoredDirect(dir, items, dim, opts, bufferPages)
	default:
		db, err = openStoredDerived(dir, items, dim, opts, bufferPages)
	}
	if err != nil {
		return nil, err
	}
	return db, nil
}

// openStoredDirect serves the dataset's own pages through a FileDisk — the
// stored layout is the engine's layout. The scan uses it as-is; the pivot
// engine additionally loads (or rebuilds and persists) its pivot table.
func openStoredDirect(dir string, items []Item, dim int, opts Options, bufferPages int) (*DB, error) {
	fd, err := store.OpenFileDisk(dir, store.FileDiskOptions{Mmap: opts.Mmap})
	if err != nil {
		return nil, fmt.Errorf("metricdb: %w", err)
	}
	man := fd.Manifest()
	// Serve pages through a columnizing wrapper when the layout wants
	// sibling representations the stored format does not carry: a
	// version-1 dataset (or one written without the f32/quant sections)
	// then materializes them per page on first read, with the buffer
	// caching the columnized page. Datasets that already store the
	// siblings decode them directly and skip the wrapper. A stored
	// quantization grid wins over a freshly derived one so the on-page
	// codes and the filter agree.
	columns, err := opts.columnSpec(items, dim)
	if err != nil {
		fd.Close() //nolint:errcheck
		return nil, err
	}
	if man.Quant != nil {
		columns.Quant = nil
	}
	var src store.PageSource = fd
	if (columns.Columnar && !man.Columnar) || (columns.F32 && !man.F32) || columns.Quant != nil {
		src = store.WrapColumns(fd, columns)
	}
	var buf *store.Buffer
	if bufferPages > 0 {
		if buf, err = store.NewBuffer(bufferPages); err != nil {
			fd.Close() //nolint:errcheck
			return nil, fmt.Errorf("metricdb: %w", err)
		}
	}
	pager, err := store.NewPager(src, buf)
	if err != nil {
		fd.Close() //nolint:errcheck
		return nil, fmt.Errorf("metricdb: %w", err)
	}
	lens := make([]int, len(man.Pages))
	for i, e := range man.Pages {
		lens[i] = e.Items
	}

	var eng engine.Engine
	switch opts.Engine {
	case EnginePivot:
		table, err := storedPivotTable(dir, items, man, lens, opts)
		if err != nil {
			fd.Close() //nolint:errcheck
			return nil, err
		}
		eng, err = pivot.NewStored(pager, table, opts.Metric, man.Items, lens, man.PageCapacity)
		if err != nil {
			fd.Close() //nolint:errcheck
			return nil, fmt.Errorf("metricdb: %w", err)
		}
	default:
		eng, err = scan.NewStored(pager, man.Items, lens)
		if err != nil {
			fd.Close() //nolint:errcheck
			return nil, fmt.Errorf("metricdb: %w", err)
		}
	}
	// The stored layout dictates the page capacity; reflect it in the
	// options so DB introspection reports the truth.
	opts.PageCapacity = man.PageCapacity
	layout, err := parseLayout(opts.Layout)
	if err != nil {
		fd.Close() //nolint:errcheck
		return nil, err
	}
	proc, err := msq.New(eng, opts.Metric, msq.Options{Avoidance: opts.Avoidance, Concurrency: opts.Concurrency, Layout: layout})
	if err != nil {
		fd.Close() //nolint:errcheck
		return nil, err
	}
	db := &DB{items: items, dim: dim, eng: eng, proc: proc, opts: opts, closers: []io.Closer{fd}}
	db.setupCalibration()
	return db, nil
}

// storedPivotTable returns the dataset's pivot table: the persisted one
// when its provenance (generation, metric, shape, pivot count) matches the
// live manifest, and otherwise a fresh deterministic rebuild, persisted
// crash-safely so the next open skips the distance matrix. A missing or
// corrupt table file is not an error — the table is a pure cache.
func storedPivotTable(dir string, items []Item, man *store.Manifest, lens []int, opts Options) (*pivot.Table, error) {
	want := pivot.DefaultPivots
	if opts.Pivot != nil && opts.Pivot.Pivots > 0 {
		want = opts.Pivot.Pivots
	}
	if want > len(items) {
		want = len(items)
	}
	if t, err := pivot.LoadTableFile(dir); err == nil {
		if t.Generation == man.Generation && t.NumPivots() == want &&
			t.CheckShape(opts.Metric.Name(), man.Items, len(man.Pages)) == nil {
			return t, nil
		}
	}
	t, err := pivot.BuildTable(items, lens, want, opts.Metric)
	if err != nil {
		return nil, fmt.Errorf("metricdb: %w", err)
	}
	t.Generation = man.Generation
	if err := pivot.WriteTableFile(dir, t); err != nil {
		return nil, fmt.Errorf("metricdb: persisting pivot table: %w", err)
	}
	return t, nil
}

// openStoredDerived builds an index engine from the loaded items and
// persists the engine's page layout next to the dataset, serving data
// pages from the file system through the engine's WrapDisk hook.
func openStoredDerived(dir string, items []Item, dim int, opts Options, bufferPages int) (*DB, error) {
	layoutDir := filepath.Join(dir, "layout-"+string(opts.Engine))
	columns, err := opts.columnSpec(items, dim)
	if err != nil {
		return nil, err
	}
	layout, err := parseLayout(opts.Layout)
	if err != nil {
		return nil, err
	}
	var fd *store.FileDisk
	wrap := func(src store.PageSource) (store.PageSource, error) {
		pages := make([]*store.Page, src.NumPages())
		capacity := 0
		for pid := range pages {
			p, err := src.Read(store.PageID(pid))
			if err != nil {
				return nil, err
			}
			pages[pid] = p
			if len(p.Items) > capacity {
				capacity = len(p.Items)
			}
		}
		// The engine columnized its pages before building the disk, so
		// the blocks ride along into the persisted layout: the meta
		// fields make the written records carry them, and the reopened
		// FileDisk decodes them back.
		meta := store.DatasetMeta{Dim: dim, PageCapacity: capacity,
			Columnar: columns.Columnar, F32: columns.F32,
			Attrs: map[string]string{"layout": string(opts.Engine)}}
		if columns.Quant != nil {
			meta.QuantBits = columns.Quant.Bits
		}
		if err := store.WriteDataset(layoutDir, pages, meta, store.WriteOptions{}); err != nil {
			return nil, err
		}
		var err error
		if fd, err = store.OpenFileDisk(layoutDir, store.FileDiskOptions{Mmap: opts.Mmap}); err != nil {
			return nil, err
		}
		return fd, nil
	}

	eng, err := engines.Build(opts.engineSpec(items, dim, bufferPages, columns, wrap))
	if err != nil {
		if fd != nil {
			fd.Close() //nolint:errcheck
		}
		return nil, err
	}
	proc, err := msq.New(eng, opts.Metric, msq.Options{Avoidance: opts.Avoidance, Concurrency: opts.Concurrency, Layout: layout})
	if err != nil {
		if fd != nil {
			fd.Close() //nolint:errcheck
		}
		return nil, err
	}
	db := &DB{items: items, dim: dim, eng: eng, proc: proc, opts: opts, closers: []io.Closer{fd}}
	db.setupCalibration()
	return db, nil
}

// Close releases the file handles and memory mappings of a stored database.
// On a DB built by Open it is a no-op. Queries must not be in flight or
// issued after Close.
func (db *DB) Close() error {
	var errs []error
	for _, c := range db.closers {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	db.closers = nil
	return errors.Join(errs...)
}

// Stored reports whether the database serves its data pages from
// persistent storage, and if so in which mode ("pread" or "mmap").
func (db *DB) Stored() (mode string, ok bool) {
	if fd, isFile := store.UnwrapSource(db.eng.Pager().Disk()).(*store.FileDisk); isFile {
		return fd.Mode(), true
	}
	return "", false
}

// StorageStats returns the real-I/O counters of a stored database's
// file-backed disk (preads issued, bytes read, checksum failures). ok is
// false for in-memory databases.
func (db *DB) StorageStats() (stats store.StorageStats, ok bool) {
	if fd, isFile := store.UnwrapSource(db.eng.Pager().Disk()).(*store.FileDisk); isFile {
		return fd.Storage(), true
	}
	return store.StorageStats{}, false
}
