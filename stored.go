package metricdb

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"metricdb/internal/dataset"
	"metricdb/internal/engine"
	"metricdb/internal/msq"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vafile"
	"metricdb/internal/xtree"
)

// OpenStored opens a database over a persistent dataset directory — the
// on-disk format written by dataset.SaveDir and cmd/msqgen. Unlike Open,
// which paginates in-memory items onto a simulated disk, the returned DB
// reads its data pages from the file system (pread, or mmap when
// Options.Mmap is set), verifying each page's checksum on the way; I/O
// statistics count real reads.
//
// Engine mapping:
//
//   - EngineScan serves the dataset's own page layout directly, so opening
//     is free of page reads (sizes come from the manifest) and the scan's
//     sequential-I/O property holds on the physical file.
//   - EngineXTree and EngineVAFile build their structure from the loaded
//     items, then persist their private page layout into a "layout-xtree"
//     or "layout-vafile" subdirectory (rebuilt, crash-safely, on every
//     open) and read data pages from it.
//
// The caller owns the returned DB and must Close it to release the
// underlying file handles and mappings.
func OpenStored(dir string, opts Options) (*DB, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	items, err := dataset.LoadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("metricdb: opening stored database: %w", err)
	}
	dim, err := validateItems(items)
	if err != nil {
		return nil, fmt.Errorf("metricdb: stored dataset %s: %w", dir, err)
	}
	opts, bufferPages := opts.withDefaults(dim, len(items))

	var db *DB
	switch opts.Engine {
	case EngineScan:
		db, err = openStoredScan(dir, items, dim, opts, bufferPages)
	case EngineXTree, EngineVAFile:
		db, err = openStoredDerived(dir, items, dim, opts, bufferPages)
	default:
		return nil, fmt.Errorf("metricdb: unknown engine %q", opts.Engine)
	}
	if err != nil {
		return nil, err
	}
	return db, nil
}

// openStoredScan serves the dataset's own pages through a FileDisk: the
// stored layout is the scan layout.
func openStoredScan(dir string, items []Item, dim int, opts Options, bufferPages int) (*DB, error) {
	fd, err := store.OpenFileDisk(dir, store.FileDiskOptions{Mmap: opts.Mmap})
	if err != nil {
		return nil, fmt.Errorf("metricdb: %w", err)
	}
	man := fd.Manifest()
	// Serve pages through a columnizing wrapper when the layout wants
	// sibling representations the stored format does not carry: a
	// version-1 dataset (or one written without the f32/quant sections)
	// then materializes them per page on first read, with the buffer
	// caching the columnized page. Datasets that already store the
	// siblings decode them directly and skip the wrapper. A stored
	// quantization grid wins over a freshly derived one so the on-page
	// codes and the filter agree.
	columns, err := opts.columnSpec(items, dim)
	if err != nil {
		fd.Close() //nolint:errcheck
		return nil, err
	}
	if man.Quant != nil {
		columns.Quant = nil
	}
	var src store.PageSource = fd
	if (columns.Columnar && !man.Columnar) || (columns.F32 && !man.F32) || columns.Quant != nil {
		src = store.WrapColumns(fd, columns)
	}
	var buf *store.Buffer
	if bufferPages > 0 {
		if buf, err = store.NewBuffer(bufferPages); err != nil {
			fd.Close() //nolint:errcheck
			return nil, fmt.Errorf("metricdb: %w", err)
		}
	}
	pager, err := store.NewPager(src, buf)
	if err != nil {
		fd.Close() //nolint:errcheck
		return nil, fmt.Errorf("metricdb: %w", err)
	}
	lens := make([]int, len(man.Pages))
	for i, e := range man.Pages {
		lens[i] = e.Items
	}
	eng, err := scan.NewStored(pager, man.Items, lens)
	if err != nil {
		fd.Close() //nolint:errcheck
		return nil, fmt.Errorf("metricdb: %w", err)
	}
	// The stored layout dictates the page capacity; reflect it in the
	// options so DB introspection reports the truth.
	opts.PageCapacity = man.PageCapacity
	layout, err := parseLayout(opts.Layout)
	if err != nil {
		fd.Close() //nolint:errcheck
		return nil, err
	}
	proc, err := msq.New(eng, opts.Metric, msq.Options{Avoidance: opts.Avoidance, Concurrency: opts.Concurrency, Layout: layout})
	if err != nil {
		fd.Close() //nolint:errcheck
		return nil, err
	}
	return &DB{items: items, dim: dim, eng: eng, proc: proc, opts: opts, closers: []io.Closer{fd}}, nil
}

// openStoredDerived builds an index engine from the loaded items and
// persists the engine's page layout next to the dataset, serving data
// pages from the file system through the engine's WrapDisk hook.
func openStoredDerived(dir string, items []Item, dim int, opts Options, bufferPages int) (*DB, error) {
	layoutDir := filepath.Join(dir, "layout-"+string(opts.Engine))
	columns, err := opts.columnSpec(items, dim)
	if err != nil {
		return nil, err
	}
	layout, err := parseLayout(opts.Layout)
	if err != nil {
		return nil, err
	}
	var fd *store.FileDisk
	wrap := func(src store.PageSource) (store.PageSource, error) {
		pages := make([]*store.Page, src.NumPages())
		capacity := 0
		for pid := range pages {
			p, err := src.Read(store.PageID(pid))
			if err != nil {
				return nil, err
			}
			pages[pid] = p
			if len(p.Items) > capacity {
				capacity = len(p.Items)
			}
		}
		// The engine columnized its pages before building the disk, so
		// the blocks ride along into the persisted layout: the meta
		// fields make the written records carry them, and the reopened
		// FileDisk decodes them back.
		meta := store.DatasetMeta{Dim: dim, PageCapacity: capacity,
			Columnar: columns.Columnar, F32: columns.F32,
			Attrs: map[string]string{"layout": string(opts.Engine)}}
		if columns.Quant != nil {
			meta.QuantBits = columns.Quant.Bits
		}
		if err := store.WriteDataset(layoutDir, pages, meta, store.WriteOptions{}); err != nil {
			return nil, err
		}
		var err error
		if fd, err = store.OpenFileDisk(layoutDir, store.FileDiskOptions{Mmap: opts.Mmap}); err != nil {
			return nil, err
		}
		return fd, nil
	}

	var eng engine.Engine
	switch opts.Engine {
	case EngineXTree:
		cfg := xtree.DefaultConfig(dim)
		cfg.LeafCapacity = opts.PageCapacity
		cfg.BufferPages = bufferPages
		cfg.Metric = opts.Metric
		cfg.WrapDisk = wrap
		cfg.Columns = columns
		if x := opts.XTree; x != nil {
			if x.DirFanout != 0 {
				cfg.DirFanout = x.DirFanout
			}
			cfg.MaxOverlap = x.MaxOverlap
			cfg.MinFillRatio = x.MinFillRatio
			cfg.ReinsertFraction = x.ReinsertFraction
		}
		if opts.XTree != nil && opts.XTree.STRBulkLoad {
			eng, err = xtree.BulkSTR(items, dim, cfg)
		} else {
			eng, err = xtree.Bulk(items, dim, cfg)
		}
	case EngineVAFile:
		eng, err = vafile.New(items, vafile.Config{
			Bits:         opts.VAFileBits,
			PageCapacity: opts.PageCapacity,
			BufferPages:  bufferPages,
			Metric:       opts.Metric,
			WrapDisk:     wrap,
			Columns:      columns,
		})
	}
	if err != nil {
		if fd != nil {
			fd.Close() //nolint:errcheck
		}
		return nil, err
	}
	proc, err := msq.New(eng, opts.Metric, msq.Options{Avoidance: opts.Avoidance, Concurrency: opts.Concurrency, Layout: layout})
	if err != nil {
		if fd != nil {
			fd.Close() //nolint:errcheck
		}
		return nil, err
	}
	return &DB{items: items, dim: dim, eng: eng, proc: proc, opts: opts, closers: []io.Closer{fd}}, nil
}

// Close releases the file handles and memory mappings of a stored database.
// On a DB built by Open it is a no-op. Queries must not be in flight or
// issued after Close.
func (db *DB) Close() error {
	var errs []error
	for _, c := range db.closers {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	db.closers = nil
	return errors.Join(errs...)
}

// Stored reports whether the database serves its data pages from
// persistent storage, and if so in which mode ("pread" or "mmap").
func (db *DB) Stored() (mode string, ok bool) {
	if fd, isFile := store.UnwrapSource(db.eng.Pager().Disk()).(*store.FileDisk); isFile {
		return fd.Mode(), true
	}
	return "", false
}

// StorageStats returns the real-I/O counters of a stored database's
// file-backed disk (preads issued, bytes read, checksum failures). ok is
// false for in-memory databases.
func (db *DB) StorageStats() (stats store.StorageStats, ok bool) {
	if fd, isFile := store.UnwrapSource(db.eng.Pager().Disk()).(*store.FileDisk); isFile {
		return fd.Storage(), true
	}
	return store.StorageStats{}, false
}
