// Package metricdb efficiently supports multiple similarity queries for
// mining in metric databases, reproducing Braunmüller, Ester, Kriegel and
// Sander (ICDE 2000).
//
// A metric database stores objects with a metric distance function; the
// fundamental queries are range queries and k-nearest-neighbor queries.
// Data-mining algorithms (clustering, classification, interactive
// exploration, ...) issue *many* such queries, typically on the answers of
// previous queries. This library processes such query sets as multiple
// similarity queries, which
//
//   - read each data page once for all queries it is relevant for,
//     reducing I/O cost (§5.1 of the paper), and
//   - use the triangle inequality over the inter-query distance matrix to
//     avoid distance calculations, reducing CPU cost (§5.2), and
//   - optionally run over a shared-nothing group of servers (§5.3).
//
// # Quick start
//
//	items := ...                           // []metricdb.Item
//	db, err := metricdb.Open(items, metricdb.Options{Engine: metricdb.EngineXTree})
//	answers, _, err := db.Query(q, metricdb.KNNQuery(10))
//
// For batches, use db.NewBatch and either QueryAll (complete answers for
// every query) or the incremental Query (the paper's Definition 4: the
// first query's answers are complete, the rest are prefetched and buffered).
//
// Physical organizations: a sequential scan (always applicable, maximal
// multi-query benefit), an X-tree (selective in low and moderate
// dimensions), and a VA-file (the refined scan: bit-quantized
// approximations). General metric data without vectors is served by the
// generic M-tree (NewMTree). Mining algorithms from the paper are available
// as DB methods (DBSCAN, ClassifyKNN, ...) and via the Explore framework,
// incremental nearest-neighbor ranking via DB.Ranking, and physical-design
// advice via Advise. The cmd/msqserver command exposes all of it over TCP.
package metricdb

import (
	"fmt"

	"metricdb/internal/explore"
	"metricdb/internal/msq"
	"metricdb/internal/mtree"
	"metricdb/internal/query"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// Core value types, aliased from the implementation packages so that all
// functionality is reachable through this package alone.
type (
	// Vector is a point in d-dimensional space.
	Vector = vec.Vector
	// Metric is a metric distance function on vectors.
	Metric = vec.Metric
	// Item is one database object: ID, vector, and an optional label.
	Item = store.Item
	// ItemID identifies a database object.
	ItemID = store.ItemID
	// QueryType is the similarity-query specification T of Definition 1.
	QueryType = query.Type
	// Answer is one query result: item ID and distance.
	Answer = query.Answer
	// Query is one element of a multiple similarity query.
	Query = msq.Query
	// Stats counts query-processing work: pages read, distance
	// calculations, triangle-inequality comparisons.
	Stats = msq.Stats
	// AvoidanceMode selects the triangle-inequality lemmas to apply.
	AvoidanceMode = msq.AvoidanceMode
	// Hooks customizes the ExploreNeighborhoods framework.
	Hooks = explore.Hooks
	// ExploreStats aggregates exploration cost.
	ExploreStats = explore.Stats
	// DBSCANResult is the output of density-based clustering.
	DBSCANResult = explore.DBSCANResult
	// Trend is a detected spatial trend.
	Trend = explore.Trend
	// TrendConfig parameterizes trend detection.
	TrendConfig = explore.TrendConfig
	// Rule is a spatial association rule.
	Rule = explore.Rule
	// Feature is one dimension of a proximity common-feature analysis.
	Feature = explore.Feature
	// ExplorationConfig parameterizes the manual-exploration simulation.
	ExplorationConfig = explore.ExplorationConfig
	// MTree is a generic metric index over any Go type; see NewMTree.
	MTree[T any] = mtree.Tree[T]
	// MTreeResult is one M-tree search answer.
	MTreeResult[T any] = mtree.Result[T]
)

// Avoidance modes, re-exported.
const (
	// AvoidBoth applies Lemma 1 and Lemma 2 (the default and the
	// paper's method).
	AvoidBoth = msq.AvoidBoth
	// AvoidOff disables distance-calculation avoidance.
	AvoidOff = msq.AvoidOff
	// AvoidLemma1 applies only Lemma 1.
	AvoidLemma1 = msq.AvoidLemma1
	// AvoidLemma2 applies only Lemma 2.
	AvoidLemma2 = msq.AvoidLemma2
)

// DBSCANNoise is the label DBSCAN assigns to objects in no cluster.
const DBSCANNoise = explore.Noise

// RangeQuery returns the query type of Definition 2: all objects within
// distance eps.
func RangeQuery(eps float64) QueryType { return query.NewRange(eps) }

// KNNQuery returns the query type of Definition 3: the k nearest objects.
func KNNQuery(k int) QueryType { return query.NewKNN(k) }

// BoundedKNNQuery returns the combined type: the k nearest objects among
// those within distance eps.
func BoundedKNNQuery(k int, eps float64) QueryType { return query.NewBoundedKNN(k, eps) }

// Euclidean returns the L2 metric, the library default.
func Euclidean() Metric { return vec.Euclidean{} }

// Manhattan returns the L1 metric.
func Manhattan() Metric { return vec.Manhattan{} }

// Chebyshev returns the L∞ metric.
func Chebyshev() Metric { return vec.Chebyshev{} }

// Minkowski returns the Lp metric for p >= 1.
func Minkowski(p float64) (Metric, error) { return vec.NewMinkowski(p) }

// WeightedEuclidean returns the Euclidean metric with positive
// per-dimension weights.
func WeightedEuclidean(weights Vector) (Metric, error) { return vec.NewWeightedEuclidean(weights) }

// QuadraticForm returns the quadratic-form metric sqrt((a-b)^T A (a-b))
// for a symmetric positive-definite matrix A in row-major order, as used
// for color-histogram similarity. Note that the X-tree cannot derive
// geometric lower bounds for it and degrades to scan-like behaviour.
func QuadraticForm(dim int, a []float64) (Metric, error) { return vec.NewQuadraticForm(dim, a) }

// HistogramMatrix returns a symmetric positive-definite matrix coupling
// nearby histogram bins, suitable for QuadraticForm.
func HistogramMatrix(dim int, decay float64) ([]float64, error) {
	return vec.HistogramSimilarityMatrix(dim, decay)
}

// NewMTree creates a generic metric index over any Go type T with the
// given metric distance function — the structure for metric databases
// whose objects are not vectors (e.g. WWW sessions under edit distance).
// nodeCapacity 0 selects the default.
func NewMTree[T any](dist func(a, b T) float64, nodeCapacity int) (*MTree[T], error) {
	return mtree.New[T](dist, mtree.Config{NodeCapacity: nodeCapacity})
}

// NewItems packs vectors into items with IDs equal to their indexes, the
// layout the mining framework requires.
func NewItems(vectors []Vector) []Item {
	items := make([]Item, len(vectors))
	for i, v := range vectors {
		items[i] = Item{ID: ItemID(i), Vec: v}
	}
	return items
}

// validateItems checks the ID-equals-index invariant and dimensional
// consistency.
func validateItems(items []Item) (dim int, err error) {
	if len(items) == 0 {
		return 0, fmt.Errorf("metricdb: empty database")
	}
	dim = items[0].Vec.Dim()
	if dim == 0 {
		return 0, fmt.Errorf("metricdb: zero-dimensional items")
	}
	for i := range items {
		if items[i].ID != ItemID(i) {
			return 0, fmt.Errorf("metricdb: item at index %d has ID %d; IDs must equal indexes", i, items[i].ID)
		}
		if items[i].Vec.Dim() != dim {
			return 0, fmt.Errorf("metricdb: item %d has dimension %d, expected %d", i, items[i].Vec.Dim(), dim)
		}
	}
	return dim, nil
}
