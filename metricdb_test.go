package metricdb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"metricdb/internal/dataset"
)

func testItems(seed int64, n, dim int) []Item {
	return dataset.Uniform(seed, n, dim)
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil, Options{}); err == nil {
		t.Error("empty database accepted")
	}
	bad := testItems(1, 10, 3)
	bad[4].ID = 99
	if _, err := Open(bad, Options{}); err == nil {
		t.Error("misnumbered items accepted")
	}
	mixed := testItems(1, 10, 3)
	mixed[2].Vec = Vector{1, 2}
	if _, err := Open(mixed, Options{}); err == nil {
		t.Error("mixed dimensions accepted")
	}
	if _, err := Open(testItems(1, 10, 3), Options{Engine: "btree"}); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := Open([]Item{{ID: 0, Vec: Vector{}}}, Options{}); err == nil {
		t.Error("zero-dimensional items accepted")
	}
}

func TestNewItems(t *testing.T) {
	items := NewItems([]Vector{{1, 2}, {3, 4}})
	if len(items) != 2 || items[0].ID != 0 || items[1].ID != 1 {
		t.Errorf("NewItems = %+v", items)
	}
}

func TestOpenDefaults(t *testing.T) {
	db, err := Open(testItems(2, 300, 20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Engine() != EngineScan {
		t.Errorf("default engine = %q", db.Engine())
	}
	if db.Len() != 300 || db.Dim() != 20 {
		t.Errorf("Len=%d Dim=%d", db.Len(), db.Dim())
	}
	// 32 KB / 20-d => 195 items per page => 2 pages.
	if db.NumPages() != 2 {
		t.Errorf("NumPages = %d, want 2", db.NumPages())
	}
	it, err := db.Item(7)
	if err != nil || it.ID != 7 {
		t.Errorf("Item(7) = %+v, %v", it, err)
	}
	if _, err := db.Item(999); err == nil {
		t.Error("out-of-range ID accepted")
	}
	if len(db.Items()) != 300 {
		t.Error("Items() wrong length")
	}
}

func TestQueryAgainstBruteForce(t *testing.T) {
	const dim = 5
	items := testItems(3, 400, dim)
	m := Euclidean()

	for _, kind := range []EngineKind{EngineScan, EngineXTree} {
		db, err := Open(items, Options{Engine: kind, PageCapacity: 16})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		for trial := 0; trial < 10; trial++ {
			q := make(Vector, dim)
			for j := range q {
				q[j] = rng.Float64()
			}
			got, stats, err := db.Query(q, KNNQuery(7))
			if err != nil {
				t.Fatal(err)
			}
			if stats.Queries != 1 {
				t.Errorf("stats.Queries = %d", stats.Queries)
			}
			type pair struct {
				id ItemID
				d  float64
			}
			all := make([]pair, len(items))
			for i := range items {
				all[i] = pair{items[i].ID, m.Distance(q, items[i].Vec)}
			}
			sort.Slice(all, func(a, b int) bool {
				if all[a].d != all[b].d {
					return all[a].d < all[b].d
				}
				return all[a].id < all[b].id
			})
			if len(got) != 7 {
				t.Fatalf("%s: got %d answers", kind, len(got))
			}
			for i := range got {
				if got[i].ID != all[i].id || math.Abs(got[i].Dist-all[i].d) > 1e-12 {
					t.Fatalf("%s trial %d: answer %d = %+v, want %+v", kind, trial, i, got[i], all[i])
				}
			}
		}
	}
}

func TestBatchIncrementalSemantics(t *testing.T) {
	items := testItems(5, 500, 6)
	db, err := Open(items, Options{Engine: EngineXTree, PageCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]Query, 5)
	for i := range queries {
		queries[i] = Query{ID: uint64(i), Vec: items[i*31].Vec, Type: KNNQuery(4)}
	}
	b := db.NewBatch()
	res, stats, err := b.Query(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(queries) {
		t.Fatalf("got %d result sets", len(res))
	}
	// First query complete: compare to a direct single query.
	want, _, err := db.Query(queries[0].Vec, queries[0].Type)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0]) != len(want) {
		t.Fatalf("first query %d answers, want %d", len(res[0]), len(want))
	}
	for i := range want {
		if res[0][i] != want[i] {
			t.Fatalf("first answer %d = %+v, want %+v", i, res[0][i], want[i])
		}
	}
	if stats.MatrixDistCalcs != int64(len(queries)*(len(queries)-1)/2) {
		t.Errorf("MatrixDistCalcs = %d", stats.MatrixDistCalcs)
	}
}

func TestBatchQueryAllSavesIO(t *testing.T) {
	items := testItems(6, 1000, 12)
	queries := make([]Query, 25)
	qi, err := dataset.SampleQueries(7, items, len(queries))
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range qi {
		queries[i] = Query{ID: uint64(it.ID), Vec: it.Vec, Type: KNNQuery(10)}
	}

	dbSingle, err := Open(items, Options{BufferPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	var singleStats Stats
	for _, q := range queries {
		_, st, err := dbSingle.Query(q.Vec, q.Type)
		if err != nil {
			t.Fatal(err)
		}
		singleStats = singleStats.Add(st)
	}

	dbMulti, err := Open(items, Options{BufferPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, multiStats, err := dbMulti.NewBatch().QueryAll(queries)
	if err != nil {
		t.Fatal(err)
	}

	if multiStats.PagesRead >= singleStats.PagesRead {
		t.Errorf("multi read %d pages, singles %d", multiStats.PagesRead, singleStats.PagesRead)
	}
	if multiStats.DistCalcs >= singleStats.DistCalcs {
		t.Errorf("multi computed %d distances, singles %d", multiStats.DistCalcs, singleStats.DistCalcs)
	}
	if multiStats.Avoided == 0 {
		t.Error("nothing avoided")
	}
}

func TestResetCountersAndIOStats(t *testing.T) {
	db, err := Open(testItems(8, 200, 4), Options{PageCapacity: 16, BufferPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Query(Vector{0.5, 0.5, 0.5, 0.5}, KNNQuery(3)); err != nil {
		t.Fatal(err)
	}
	if db.IOStats().Reads == 0 {
		t.Error("no reads recorded")
	}
	prev := db.ResetCounters()
	if prev.Reads == 0 {
		t.Error("ResetCounters returned empty stats")
	}
	if db.IOStats().Reads != 0 {
		t.Error("counters not reset")
	}
}

func TestMetricConstructors(t *testing.T) {
	a, b := Vector{0, 0}, Vector{3, 4}
	if Euclidean().Distance(a, b) != 5 {
		t.Error("Euclidean wrong")
	}
	if Manhattan().Distance(a, b) != 7 {
		t.Error("Manhattan wrong")
	}
	if Chebyshev().Distance(a, b) != 4 {
		t.Error("Chebyshev wrong")
	}
	mk, err := Minkowski(2)
	if err != nil || math.Abs(mk.Distance(a, b)-5) > 1e-12 {
		t.Errorf("Minkowski: %v %v", mk, err)
	}
	if _, err := Minkowski(0.5); err == nil {
		t.Error("bad Minkowski order accepted")
	}
	we, err := WeightedEuclidean(Vector{1, 1})
	if err != nil || we.Distance(a, b) != 5 {
		t.Errorf("WeightedEuclidean: %v", err)
	}
	hm, err := HistogramMatrix(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QuadraticForm(4, hm); err != nil {
		t.Errorf("QuadraticForm: %v", err)
	}
}

func TestQueryTypeConstructors(t *testing.T) {
	if RangeQuery(0.5).Range != 0.5 {
		t.Error("RangeQuery wrong")
	}
	if KNNQuery(5).Cardinality != 5 {
		t.Error("KNNQuery wrong")
	}
	bk := BoundedKNNQuery(3, 0.7)
	if bk.Cardinality != 3 || bk.Range != 0.7 {
		t.Error("BoundedKNNQuery wrong")
	}
}

func TestMTreeFacade(t *testing.T) {
	dist := func(a, b string) float64 {
		// Hamming-ish toy metric on equal-length strings.
		n := 0
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				n++
			}
		}
		return float64(n + lenDiff(a, b))
	}
	tr, err := NewMTree(dist, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"abcd", "abce", "zzzz", "abcf"} {
		tr.Insert(s)
	}
	res := tr.KNN("abcd", 2)
	if len(res) != 2 || res[0].Obj != "abcd" {
		t.Errorf("KNN = %v", res)
	}
	var one MTreeResult[string] = res[0]
	if one.Dist != 0 {
		t.Errorf("self distance = %v", one.Dist)
	}
	if _, err := NewMTree[string](nil, 0); err == nil {
		t.Error("nil metric accepted")
	}
}

func lenDiff(a, b string) int {
	if len(a) > len(b) {
		return len(a) - len(b)
	}
	return len(b) - len(a)
}

func TestMiningFacade(t *testing.T) {
	items, err := dataset.Clustered(dataset.ClusteredConfig{
		Seed: 9, N: 400, Dim: 4, Clusters: 3, Spread: 0.02, NoiseFraction: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(items, Options{PageCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}

	res, err := db.DBSCAN(0.1, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters < 2 {
		t.Errorf("DBSCAN found %d clusters", res.Clusters)
	}

	labels, _, err := db.ClassifyKNN([]Vector{items[0].Vec, items[100].Vec}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2 {
		t.Errorf("labels = %v", labels)
	}

	if _, err := db.SimulateExploration(ExplorationConfig{Users: 2, K: 3, Rounds: 2, Seed: 1}); err != nil {
		t.Errorf("SimulateExploration: %v", err)
	}

	top, _, err := db.ProximityTopK([]ItemID{0, 1, 2}, 3, 4)
	if err != nil || len(top) != 3 {
		t.Errorf("ProximityTopK: %v %v", top, err)
	}
	if _, err := db.CommonFeatures([]ItemID{0, 1, 2}, 0.8); err != nil {
		t.Errorf("CommonFeatures: %v", err)
	}

	if _, _, err := db.DetectTrends(0, func(it Item) float64 { return it.Vec[0] }, TrendConfig{K: 3, Branch: 1, MaxLength: 4, MinR2: 0}, 4); err != nil {
		t.Errorf("DetectTrends: %v", err)
	}

	if _, _, err := db.AssociationRules(0, 0.15, 0.01, 0.0, 8); err != nil {
		t.Errorf("AssociationRules: %v", err)
	}

	// Explore / ExploreMultiple equivalence via the façade.
	count1, count2 := 0, 0
	hooks := func(c *int) Hooks {
		return Hooks{
			Proc2:     func(Item, []Answer) { *c++ },
			Condition: func(l, step int) bool { return l > 0 && step < 10 },
			Filter: func(_ Item, as []Answer) []ItemID {
				ids := make([]ItemID, 0, len(as))
				for _, a := range as {
					ids = append(ids, a.ID)
				}
				return ids
			},
		}
	}
	if _, err := db.Explore([]ItemID{0}, KNNQuery(3), hooks(&count1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExploreMultiple([]ItemID{0}, KNNQuery(3), 4, hooks(&count2)); err != nil {
		t.Fatal(err)
	}
	if count1 != count2 || count1 != 10 {
		t.Errorf("explore counts: %d vs %d", count1, count2)
	}
}

func TestClusterFacade(t *testing.T) {
	items := testItems(10, 400, 4)
	if _, err := OpenCluster(items, ClusterOptions{Servers: 0}); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := OpenCluster(items, ClusterOptions{Servers: 2, Engine: "weird"}); err == nil {
		t.Error("unknown engine accepted")
	}
	c, err := OpenCluster(items, ClusterOptions{Servers: 4, Engine: EngineXTree, PageCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if c.Servers() != 4 {
		t.Errorf("Servers = %d", c.Servers())
	}

	db, err := Open(items, Options{PageCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	q := items[11].Vec
	want, _, err := db.Query(q, KNNQuery(5))
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := c.Query(q, KNNQuery(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerServer) != 4 {
		t.Errorf("report servers = %d", len(rep.PerServer))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parallel answer %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	batch := []Query{
		{ID: 1, Vec: items[3].Vec, Type: KNNQuery(3)},
		{ID: 2, Vec: items[4].Vec, Type: RangeQuery(0.3)},
	}
	res, _, err := c.QueryAll(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || len(res[0]) != 3 {
		t.Errorf("QueryAll results: %d sets, first has %d", len(res), len(res[0]))
	}
}

func TestVAFileEngineFacade(t *testing.T) {
	items := testItems(11, 500, 6)
	dbVA, err := Open(items, Options{Engine: EngineVAFile, PageCapacity: 16, VAFileBits: 6})
	if err != nil {
		t.Fatal(err)
	}
	if dbVA.Engine() != EngineVAFile {
		t.Errorf("Engine = %q", dbVA.Engine())
	}
	dbScan, err := Open(items, Options{Engine: EngineScan, PageCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}

	q := items[123].Vec
	want, scanStats, err := dbScan.Query(q, KNNQuery(8))
	if err != nil {
		t.Fatal(err)
	}
	got, vaStats, err := dbVA.Query(q, KNNQuery(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("VA-file %d answers, scan %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	if vaStats.PagesRead >= scanStats.PagesRead {
		t.Errorf("VA-file read %d pages, scan %d — approximations gave no selectivity", vaStats.PagesRead, scanStats.PagesRead)
	}

	// Batched queries over the VA-file.
	queries := []Query{
		{ID: 1, Vec: items[3].Vec, Type: KNNQuery(5)},
		{ID: 2, Vec: items[4].Vec, Type: RangeQuery(0.4)},
	}
	res, _, err := dbVA.NewBatch().QueryAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0]) != 5 {
		t.Errorf("batched VA-file kNN returned %d answers", len(res[0]))
	}

	// VA-file servers in a cluster.
	c, err := OpenCluster(items, ClusterOptions{Servers: 3, Engine: EngineVAFile, PageCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	pgot, _, err := c.Query(q, KNNQuery(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if pgot[i] != want[i] {
			t.Fatalf("parallel VA-file answer %d: %+v vs %+v", i, pgot[i], want[i])
		}
	}
}

func TestSTRBulkLoadFacade(t *testing.T) {
	items := testItems(12, 600, 5)
	db, err := Open(items, Options{
		Engine: EngineXTree, PageCapacity: 16,
		XTree: &XTreeOptions{STRBulkLoad: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// STR packs pages full.
	if want := (600 + 15) / 16; db.NumPages() != want {
		t.Errorf("STR pages = %d, want %d", db.NumPages(), want)
	}
	got, _, err := db.Query(items[50].Vec, KNNQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 50 || got[0].Dist != 0 {
		t.Errorf("1-NN of stored object = %+v", got[0])
	}
}

func TestRankingFacade(t *testing.T) {
	items := testItems(13, 300, 4)
	db, err := Open(items, Options{Engine: EngineXTree, PageCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	r, err := db.Ranking(items[7].Vec)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	for i := 0; i < 25; i++ {
		a, ok, err := r.Next()
		if err != nil || !ok {
			t.Fatalf("ranking stopped at %d: %v", i, err)
		}
		if a.Dist < prev {
			t.Fatalf("ranking not ascending at %d", i)
		}
		prev = a.Dist
		if i == 0 && (a.ID != 7 || a.Dist != 0) {
			t.Fatalf("first ranked object = %+v, want the query object itself", a)
		}
	}
}

func TestAdvise(t *testing.T) {
	lowDim, err := dataset.NearUniform(60, 1500, 20, 6, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Advise(lowDim, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Engine != EngineXTree {
		t.Errorf("intrinsic-6 data recommended %q (est %.1f): %s", a.Engine, a.IntrinsicDim, a.Reason)
	}
	if a.AmbientDim != 20 || a.Reason == "" {
		t.Errorf("Advice = %+v", a)
	}

	highDim := testItems(61, 1500, 32) // i.i.d. uniform: intrinsic ≈ ambient
	b, err := Advise(highDim, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Engine == EngineXTree {
		t.Errorf("32-d i.i.d. data recommended a tree index (est %.1f)", b.IntrinsicDim)
	}
	if b.IntrinsicDim <= a.IntrinsicDim {
		t.Errorf("intrinsic estimates not ordered: %.1f vs %.1f", b.IntrinsicDim, a.IntrinsicDim)
	}

	// Degenerate data falls back to the scan without erroring.
	dup := make([]Item, 50)
	for i := range dup {
		dup[i] = Item{ID: ItemID(i), Vec: Vector{1, 2}}
	}
	c, err := Advise(dup, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Engine != EngineScan {
		t.Errorf("degenerate data recommended %q", c.Engine)
	}

	if _, err := Advise(nil, 1); err == nil {
		t.Error("empty database accepted")
	}
}

func TestAdviseBatch(t *testing.T) {
	lowDim, err := dataset.NearUniform(60, 1500, 20, 6, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Query, 16)
	for i := range batch {
		batch[i] = Query{ID: uint64(i), Vec: lowDim[i*7].Vec, Type: KNNQuery(5)}
	}

	a, err := AdviseBatch(lowDim, batch, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Candidates) != 5 {
		t.Fatalf("priced %d candidate engines, want 5", len(a.Candidates))
	}
	if a.Engine != EngineKind(a.Candidates[0].Engine) {
		t.Errorf("recommended %q but cheapest candidate is %q", a.Engine, a.Candidates[0].Engine)
	}
	for i := 1; i < len(a.Candidates); i++ {
		if a.Candidates[i].Total < a.Candidates[i-1].Total {
			t.Errorf("candidates not sorted ascending at %d: %+v", i, a.Candidates)
		}
	}
	if a.Warning != "" {
		t.Errorf("unexpected warning: %s", a.Warning)
	}

	// The DB method prices its own items and options identically.
	db, err := Open(lowDim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fromDB, err := db.AdviseBatch(batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fromDB.Engine != a.Engine || fromDB.IntrinsicDim != a.IntrinsicDim {
		t.Errorf("DB.AdviseBatch diverges: %+v vs %+v", fromDB, a)
	}

	// Range queries get their selectivity measured from real distances: a
	// radius covering everything must push the advice to the scan.
	wide := []Query{{ID: 0, Vec: lowDim[0].Vec, Type: RangeQuery(1e9)}}
	w, err := AdviseBatch(lowDim, wide, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Engine != EngineScan {
		t.Errorf("radius covering the dataset recommended %q, want scan", w.Engine)
	}

	// Degenerate data still yields advice, with the estimator failure in
	// the structured Warning field.
	dup := make([]Item, 50)
	for i := range dup {
		dup[i] = Item{ID: ItemID(i), Vec: Vector{1, 2}}
	}
	d, err := AdviseBatch(dup, []Query{{Vec: Vector{1, 2}, Type: KNNQuery(3)}}, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Warning == "" {
		t.Error("estimator failure not surfaced in Warning")
	}
	if len(d.Candidates) == 0 {
		t.Error("no candidates despite fallback pricing")
	}

	if _, err := AdviseBatch(lowDim, nil, Options{}, 1); err == nil {
		t.Error("empty batch accepted")
	}
	bad := []Query{{Vec: lowDim[0].Vec, Type: RangeQuery(-1)}}
	if _, err := AdviseBatch(lowDim, bad, Options{}, 1); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestConcurrentSingleQueries(t *testing.T) {
	items := testItems(70, 800, 5)
	db, err := Open(items, Options{Engine: EngineXTree, PageCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.Query(items[5].Vec, KNNQuery(4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, _, err := db.Query(items[5].Vec, KNNQuery(4))
				if err != nil {
					errs[g] = err
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errs[g] = fmt.Errorf("goroutine %d: answer %d diverged", g, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
