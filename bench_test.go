package metricdb

// The benchmark suite regenerates every table and figure of the paper's
// evaluation (§6) at benchmark scale and reports the paper's metrics as
// custom benchmark outputs:
//
//	BenchmarkDistanceVsComparison — the §6.2 micro-measurement (52x / 155x)
//	BenchmarkFig7*  — avg I/O cost (pages/query) vs m
//	BenchmarkFig8*  — avg CPU cost (distance calcs/query) vs m
//	BenchmarkFig9*  — avg total priced cost (ms/query) vs m
//	BenchmarkFig10* — speed-up of the multi-query vs single queries
//	BenchmarkFig11* — parallel speed-up vs s (m scaled to 100·s)
//	BenchmarkFig12* — overall speed-up vs sequential single queries
//	BenchmarkAblation* — design-choice ablations from DESIGN.md §5
//
// Run with: go test -bench=. -benchmem
// For tables at paper proportions use: go run ./cmd/msqbench -scale medium

import (
	"fmt"
	"sync"
	"testing"

	"metricdb/internal/cost"
	"metricdb/internal/dataset"
	"metricdb/internal/experiments"
	"metricdb/internal/msq"
	"metricdb/internal/parallel"
	"metricdb/internal/vec"
)

// benchScale keeps a full -bench=. run in the minutes range.
func benchScale() experiments.Scale {
	sc := experiments.SmallScale()
	sc.AstroN = 10000
	sc.ImageN = 8000
	sc.MValues = []int{1, 10, 100}
	sc.ServerCounts = []int{1, 4, 16}
	sc.BaseM = 50
	return sc
}

// workloads are built once; X-tree construction is cached inside the maker.
var (
	benchOnce  sync.Once
	benchAstro experiments.Workload
	benchImage experiments.Workload
	benchErr   error
)

func benchWorkloads(b *testing.B) (experiments.Workload, experiments.Workload) {
	b.Helper()
	benchOnce.Do(func() {
		sc := benchScale()
		benchAstro = experiments.Astronomy(sc)
		benchImage, benchErr = experiments.Image(sc)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchAstro, benchImage
}

// BenchmarkDistanceVsComparison reproduces the §6.2 micro-measurement: the
// CPU cost of one Euclidean distance at 20 and 64 dimensions versus one
// triangle-inequality comparison. The paper reports ratios of 52 and 155 on
// a Pentium II; the ratio (reported as the custom metric dist/compare) is
// hardware-dependent but must be large and grow with dimension.
func BenchmarkDistanceVsComparison(b *testing.B) {
	for _, dim := range []int{20, 64} {
		b.Run(fmt.Sprintf("distance-%dd", dim), func(b *testing.B) {
			x := make(vec.Vector, dim)
			y := make(vec.Vector, dim)
			for i := range x {
				x[i] = float64(i)
				y[i] = float64(dim - i)
			}
			m := vec.Euclidean{}
			var sink float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += m.Distance(x, y)
			}
			_ = sink
			b.ReportMetric(cost.MeasureDistanceNs(m, dim)/cost.MeasureCompareNs(), "dist/compare")
		})
	}
	b.Run("triangle-compare", func(b *testing.B) {
		d, mij, qd := 1.5, 0.25, 1.0
		hits := 0
		for i := 0; i < b.N; i++ {
			if d-mij > qd || mij-d > qd {
				hits++
			}
			d += 1e-9
		}
		_ = hits
	})
}

// sweepBench runs the m-sweep for one figure metric over both workloads and
// engines, reporting the metric per m value.
func sweepBench(b *testing.B, metric func(experiments.Measurement) float64, unit string) {
	astro, image := benchWorkloads(b)
	sc := benchScale()
	for _, w := range []experiments.Workload{astro, image} {
		model := cost.PaperModel(w.Dim)
		queries, err := w.Queries(1234, maxInt(sc.MValues))
		if err != nil {
			b.Fatal(err)
		}
		for _, mk := range []experiments.EngineMaker{experiments.ScanMaker(w), experiments.XTreeMaker(w)} {
			for _, m := range sc.MValues {
				b.Run(fmt.Sprintf("%s/%s/m=%d", w.Name, mk.Name, m), func(b *testing.B) {
					var last experiments.Measurement
					for i := 0; i < b.N; i++ {
						meas, err := experiments.RunBlocks(mk, queries, m, model, msq.AvoidBoth)
						if err != nil {
							b.Fatal(err)
						}
						last = meas
					}
					b.ReportMetric(metric(last), unit)
				})
			}
		}
	}
}

// BenchmarkFig7IOCost reports the average I/O cost per similarity query in
// pages, per workload, engine and block size m (Figure 7).
func BenchmarkFig7IOCost(b *testing.B) {
	sweepBench(b, experiments.Measurement.PagesPerQuery, "pages/query")
}

// BenchmarkFig8CPUCost reports the average CPU cost per similarity query in
// distance calculations (Figure 8).
func BenchmarkFig8CPUCost(b *testing.B) {
	sweepBench(b, experiments.Measurement.DistCalcsPerQuery, "dist/query")
}

// BenchmarkFig9TotalCost reports the average priced total cost per query in
// milliseconds under the paper's hardware model (Figure 9).
func BenchmarkFig9TotalCost(b *testing.B) {
	sweepBench(b, func(m experiments.Measurement) float64 {
		return m.CostPerQuery() * 1000
	}, "ms/query")
}

// BenchmarkFig10Speedup reports the speed-up of processing queries as one
// multiple similarity query of size m versus m single queries (Figure 10).
func BenchmarkFig10Speedup(b *testing.B) {
	astro, image := benchWorkloads(b)
	sc := benchScale()
	for _, w := range []experiments.Workload{astro, image} {
		model := cost.PaperModel(w.Dim)
		queries, err := w.Queries(1234, maxInt(sc.MValues))
		if err != nil {
			b.Fatal(err)
		}
		for _, mk := range []experiments.EngineMaker{experiments.ScanMaker(w), experiments.XTreeMaker(w)} {
			base, err := experiments.RunBlocks(mk, queries, 1, model, msq.AvoidBoth)
			if err != nil {
				b.Fatal(err)
			}
			for _, m := range sc.MValues[1:] {
				b.Run(fmt.Sprintf("%s/%s/m=%d", w.Name, mk.Name, m), func(b *testing.B) {
					var speedup float64
					for i := 0; i < b.N; i++ {
						meas, err := experiments.RunBlocks(mk, queries, m, model, msq.AvoidBoth)
						if err != nil {
							b.Fatal(err)
						}
						speedup = base.CostPerQuery() / meas.CostPerQuery()
					}
					b.ReportMetric(speedup, "speedup")
				})
			}
		}
	}
}

// parallelBench runs the s-sweep of Figures 11 and 12 and reports both
// speed-ups per server count.
func parallelBench(b *testing.B, fig11 bool) {
	astro, _ := benchWorkloads(b)
	sc := benchScale()
	model := cost.PaperModel(astro.Dim)
	for _, kind := range []parallel.EngineKind{parallel.ScanEngine, parallel.XTreeEngine} {
		name := "scan"
		if kind == parallel.XTreeEngine {
			name = "xtree"
		}
		b.Run(name, func(b *testing.B) {
			var sweep *experiments.ParallelSweep
			for i := 0; i < b.N; i++ {
				sw, err := experiments.RunParallelSweep(astro, sc, kind, model)
				if err != nil {
					b.Fatal(err)
				}
				sweep = sw
			}
			fig := sweep.Fig12()
			if fig11 {
				fig = sweep.Fig11()
			}
			for i, s := range sc.ServerCounts {
				b.ReportMetric(fig.Series[0].Y[i], fmt.Sprintf("speedup@s=%d", s))
			}
		})
	}
}

// BenchmarkFig11ParallelSpeedup reports the parallelization speed-up per
// query versus the sequential multiple similarity query, with m scaled to
// BaseM·s (Figure 11).
func BenchmarkFig11ParallelSpeedup(b *testing.B) { parallelBench(b, true) }

// BenchmarkFig12OverallSpeedup reports the overall speed-up versus
// sequential single queries — the combined multi-query and parallelization
// effect (Figure 12).
func BenchmarkFig12OverallSpeedup(b *testing.B) { parallelBench(b, false) }

// BenchmarkAblationAvoidance isolates §5.2: the same multi-query workload
// with the triangle-inequality avoidance off, with each lemma alone, and
// with both (DESIGN.md ablation).
func BenchmarkAblationAvoidance(b *testing.B) {
	astro, _ := benchWorkloads(b)
	model := cost.PaperModel(astro.Dim)
	queries, err := astro.Queries(77, 100)
	if err != nil {
		b.Fatal(err)
	}
	mk := experiments.ScanMaker(astro)
	for _, mode := range []msq.AvoidanceMode{msq.AvoidOff, msq.AvoidLemma1, msq.AvoidLemma2, msq.AvoidBoth} {
		b.Run(mode.String(), func(b *testing.B) {
			var last experiments.Measurement
			for i := 0; i < b.N; i++ {
				meas, err := experiments.RunBlocks(mk, queries, 100, model, mode)
				if err != nil {
					b.Fatal(err)
				}
				last = meas
			}
			b.ReportMetric(last.DistCalcsPerQuery(), "dist/query")
			b.ReportMetric(float64(last.Stats.Avoided), "avoided")
		})
	}
}

// BenchmarkAblationIncremental compares incremental evaluation (queries
// arrive dynamically, answers prefetched into the session buffer — the
// ExploreNeighborhoods pattern of §5.1) against evaluating each query
// completely on arrival.
func BenchmarkAblationIncremental(b *testing.B) {
	astro, _ := benchWorkloads(b)
	items := astro.Items
	db, err := Open(items, Options{Engine: EngineXTree})
	if err != nil {
		b.Fatal(err)
	}
	// A dependent stream: each query's answers spawn the next queries.
	stream := func(process func(batch []Query) ([][]Answer, error)) (int64, error) {
		db.ResetCounters()
		var queue []Query
		seen := map[uint64]bool{}
		push := func(id ItemID) {
			if !seen[uint64(id)] {
				seen[uint64(id)] = true
				queue = append(queue, Query{ID: uint64(id), Vec: items[id].Vec, Type: KNNQuery(10)})
			}
		}
		push(0)
		for steps := 0; len(queue) > 0 && steps < 60; steps++ {
			m := len(queue)
			if m > 20 {
				m = 20
			}
			res, err := process(queue[:m])
			if err != nil {
				return 0, err
			}
			head := res[0]
			queue = queue[1:]
			for _, a := range head[:3] {
				push(a.ID)
			}
		}
		return db.IOStats().Reads, nil
	}

	b.Run("incremental", func(b *testing.B) {
		var pages int64
		for i := 0; i < b.N; i++ {
			batch := db.NewBatch()
			p, err := stream(func(qs []Query) ([][]Answer, error) {
				res, _, err := batch.Query(qs)
				return res, err
			})
			if err != nil {
				b.Fatal(err)
			}
			pages = p
		}
		b.ReportMetric(float64(pages), "pages")
	})
	b.Run("non-incremental", func(b *testing.B) {
		var pages int64
		for i := 0; i < b.N; i++ {
			p, err := stream(func(qs []Query) ([][]Answer, error) {
				// Complete every query of the batch on arrival, with no
				// cross-call buffering.
				res, _, err := db.NewBatch().QueryAll(qs)
				return res, err
			})
			if err != nil {
				b.Fatal(err)
			}
			pages = p
		}
		b.ReportMetric(float64(pages), "pages")
	})
}

// BenchmarkAblationDecluster compares declustering strategies for the
// parallel query processor (the paper's future-work topic).
func BenchmarkAblationDecluster(b *testing.B) {
	astro, _ := benchWorkloads(b)
	queries, err := astro.Queries(99, 200)
	if err != nil {
		b.Fatal(err)
	}
	for _, strategy := range []parallel.Strategy{parallel.RoundRobin, parallel.RandomAssign, parallel.RangePartition} {
		b.Run(strategy.String(), func(b *testing.B) {
			var maxPages int64
			for i := 0; i < b.N; i++ {
				cluster, err := parallel.New(astro.Items, parallel.Config{
					Servers: 4, Strategy: strategy, Seed: 5,
					Engine: parallel.XTreeEngine, Dim: astro.Dim,
					PageCapacity: 195, BufferPages: -1,
				})
				if err != nil {
					b.Fatal(err)
				}
				_, rep, err := cluster.MultiQueryAll(queries)
				if err != nil {
					b.Fatal(err)
				}
				maxPages = rep.MaxPagesRead()
			}
			b.ReportMetric(float64(maxPages), "busiest-pages")
		})
	}
}

// BenchmarkXTreeBuild measures dynamic X-tree construction throughput.
func BenchmarkXTreeBuild(b *testing.B) {
	items := dataset.Uniform(3, 5000, 16)
	vectors := make([]Vector, len(items))
	for i := range items {
		vectors[i] = items[i].Vec
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Open(NewItems(vectors), Options{Engine: EngineXTree, PageCapacity: 32}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(items)), "items/build")
}

// BenchmarkMTree measures generic metric-index operations under a
// non-vector metric (string edit distance on WWW sessions).
func BenchmarkMTree(b *testing.B) {
	sessions := dataset.Sessions(9, 3000)
	edit := func(a, c string) float64 {
		la, lc := len(a), len(c)
		if la == 0 || lc == 0 {
			return float64(la + lc)
		}
		prev := make([]int, lc+1)
		cur := make([]int, lc+1)
		for j := range prev {
			prev[j] = j
		}
		for i := 1; i <= la; i++ {
			cur[0] = i
			for j := 1; j <= lc; j++ {
				cost := 1
				if a[i-1] == c[j-1] {
					cost = 0
				}
				m := prev[j] + 1
				if v := cur[j-1] + 1; v < m {
					m = v
				}
				if v := prev[j-1] + cost; v < m {
					m = v
				}
				cur[j] = m
			}
			prev, cur = cur, prev
		}
		return float64(prev[lc])
	}
	tree, err := NewMTree(edit, 32)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range sessions {
		tree.Insert(s)
	}

	b.Run("range", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tree.Range(sessions[i%len(sessions)], 3)
		}
	})
	b.Run("knn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tree.KNN(sessions[i%len(sessions)], 5)
		}
	})
	b.Run("batch-range-20", func(b *testing.B) {
		queries := sessions[:20]
		for i := 0; i < b.N; i++ {
			_, _ = tree.BatchRange(queries, 3)
		}
	})
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// BenchmarkAblationSupernodes isolates the X-tree's supernode mechanism:
// MaxOverlap near 1 never builds supernodes (a plain R*-tree), the 0.2
// default is the X-tree, and a tiny threshold forces aggressive supernodes.
// Reported: data pages read by a 10-NN query batch.
func BenchmarkAblationSupernodes(b *testing.B) {
	astro, _ := benchWorkloads(b)
	queries, err := astro.Queries(55, 50)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name       string
		maxOverlap float64
	}{
		{"rstar(maxOverlap=0.999)", 0.999},
		{"xtree(maxOverlap=0.2)", 0.2},
		{"aggressive(maxOverlap=0.01)", 0.01},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			db, err := Open(astro.Items, Options{
				Engine: EngineXTree, PageCapacity: 64,
				XTree: &XTreeOptions{MaxOverlap: cfg.maxOverlap},
			})
			if err != nil {
				b.Fatal(err)
			}
			var pages int64
			for i := 0; i < b.N; i++ {
				db.ResetCounters()
				if _, _, err := db.NewBatch().QueryAll(queries); err != nil {
					b.Fatal(err)
				}
				pages = db.IOStats().Reads
			}
			b.ReportMetric(float64(pages), "pages")
		})
	}
}

// BenchmarkAblationBulkLoad compares dynamic insertion against STR bulk
// loading: construction speed and the resulting page count and query I/O.
func BenchmarkAblationBulkLoad(b *testing.B) {
	astro, _ := benchWorkloads(b)
	queries, err := astro.Queries(66, 50)
	if err != nil {
		b.Fatal(err)
	}
	for _, str := range []bool{false, true} {
		name := "dynamic-insert"
		if str {
			name = "str-bulk-load"
		}
		b.Run(name, func(b *testing.B) {
			var db *DB
			for i := 0; i < b.N; i++ {
				var err error
				db, err = Open(astro.Items, Options{
					Engine: EngineXTree, PageCapacity: 64,
					XTree: &XTreeOptions{STRBulkLoad: str},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(db.NumPages()), "pages-built")
			db.ResetCounters()
			if _, _, err := db.NewBatch().QueryAll(queries); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(db.IOStats().Reads), "query-pages")
		})
	}
}

// BenchmarkVAFileVsScan compares the VA-file's two-phase processing against
// the plain scan and the X-tree for single 10-NN queries (an extension
// beyond the paper's two engines).
func BenchmarkVAFileVsScan(b *testing.B) {
	astro, _ := benchWorkloads(b)
	queries, err := astro.Queries(88, 30)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []EngineKind{EngineScan, EngineVAFile, EngineXTree} {
		b.Run(string(kind), func(b *testing.B) {
			db, err := Open(astro.Items, Options{Engine: kind, PageCapacity: 64})
			if err != nil {
				b.Fatal(err)
			}
			var pages, dists int64
			for i := 0; i < b.N; i++ {
				db.ResetCounters()
				var total Stats
				for _, q := range queries {
					_, st, err := db.Query(q.Vec, q.Type)
					if err != nil {
						b.Fatal(err)
					}
					total = total.Add(st)
				}
				pages = total.PagesRead
				dists = total.DistCalcs
			}
			b.ReportMetric(float64(pages)/float64(len(queries)), "pages/query")
			b.ReportMetric(float64(dists)/float64(len(queries)), "dist/query")
		})
	}
}
