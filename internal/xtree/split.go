package xtree

import (
	"sort"

	"metricdb/internal/geom"
)

// splitResult describes a candidate partition of a node's entries into two
// groups, identified by their indices into the original entry slice.
type splitResult struct {
	left, right         []int
	leftRect, rightRect geom.Rect
	overlap             float64 // volume of leftRect ∩ rightRect
	axis                int     // split dimension (for the split history)
}

// overlapRatio returns the overlap volume normalized by the volume of the
// union MBR — the quantity the X-tree compares against its MaxOverlap
// threshold when deciding between a split and a supernode. Degenerate
// (zero-volume) unions report ratio 0.
func (s splitResult) overlapRatio() float64 {
	u := s.leftRect.Union(s.rightRect).Area()
	if u <= 0 {
		return 0
	}
	return s.overlap / u
}

// topologicalSplit performs the R*-tree topological split over rects:
// the split axis is the one minimizing the total margin over all candidate
// distributions, and along that axis the distribution with minimal overlap
// (ties broken by minimal combined area) wins. minFill is the minimum group
// size; it is clamped to [1, len(rects)/2].
func topologicalSplit(rects []geom.Rect, minFill int) splitResult {
	n := len(rects)
	if minFill < 1 {
		minFill = 1
	}
	if minFill > n/2 {
		minFill = n / 2
	}
	dim := rects[0].Dim()

	bestAxis := 0
	bestAxisUpper := false
	bestMargin := -1.0
	for axis := 0; axis < dim; axis++ {
		for _, byUpper := range []bool{false, true} {
			order := sortedOrder(rects, axis, byUpper)
			prefix, suffix := cumulativeRects(rects, order)
			margin := 0.0
			for k := minFill; k <= n-minFill; k++ {
				margin += prefix[k].Margin() + suffix[k].Margin()
			}
			if bestMargin < 0 || margin < bestMargin {
				bestMargin = margin
				bestAxis = axis
				bestAxisUpper = byUpper
			}
		}
	}

	order := sortedOrder(rects, bestAxis, bestAxisUpper)
	prefix, suffix := cumulativeRects(rects, order)
	var best splitResult
	bestScore := -1.0
	bestArea := 0.0
	for k := minFill; k <= n-minFill; k++ {
		l, r := prefix[k], suffix[k]
		ov := l.Overlap(r)
		area := l.Area() + r.Area()
		if bestScore < 0 || ov < bestScore || (ov == bestScore && area < bestArea) {
			bestScore = ov
			bestArea = area
			best = splitResult{
				left:      append([]int(nil), order[:k]...),
				right:     append([]int(nil), order[k:]...),
				leftRect:  l.Clone(),
				rightRect: r.Clone(),
				overlap:   ov,
				axis:      bestAxis,
			}
		}
	}
	return best
}

// cumulativeRects returns, for every split position k, the MBR of the
// first k entries (prefix[k]) and of the remaining entries (suffix[k]) in
// sorted order, computed in one linear pass instead of per-distribution —
// the difference between O(n²·d) and O(n·d) per axis.
func cumulativeRects(rects []geom.Rect, order []int) (prefix, suffix []geom.Rect) {
	n := len(order)
	dim := rects[0].Dim()
	prefix = make([]geom.Rect, n+1)
	suffix = make([]geom.Rect, n+1)
	prefix[0] = geom.EmptyRect(dim)
	for k := 1; k <= n; k++ {
		prefix[k] = prefix[k-1].Clone()
		prefix[k].ExtendRect(rects[order[k-1]])
	}
	suffix[n] = geom.EmptyRect(dim)
	for k := n - 1; k >= 0; k-- {
		suffix[k] = suffix[k+1].Clone()
		suffix[k].ExtendRect(rects[order[k]])
	}
	return prefix, suffix
}

// sortedOrder returns entry indices sorted along axis by lower edge (or
// upper edge when byUpper), with the other edge and index as tie-breakers
// for determinism.
func sortedOrder(rects []geom.Rect, axis int, byUpper bool) []int {
	order := make([]int, len(rects))
	for i := range order {
		order[i] = i
	}
	key := func(i int) (float64, float64) {
		if byUpper {
			return rects[i].Max[axis], rects[i].Min[axis]
		}
		return rects[i].Min[axis], rects[i].Max[axis]
	}
	sort.Slice(order, func(a, b int) bool {
		pa, sa := key(order[a])
		pb, sb := key(order[b])
		if pa != pb {
			return pa < pb
		}
		if sa != sb {
			return sa < sb
		}
		return order[a] < order[b]
	})
	return order
}
