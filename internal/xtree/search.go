package xtree

import (
	"fmt"
	"sort"

	"metricdb/internal/engine"
	"metricdb/internal/geom"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// The Tree implements engine.Engine once built.
var _ engine.Engine = (*Tree)(nil)

// Name returns "xtree".
func (t *Tree) Name() string { return "xtree" }

// Plan traverses the memory-resident directory and returns every data page
// whose lower-bound distance to q does not exceed queryDist, in ascending
// lower-bound order (the Hjaltason–Samet page schedule). For a k-NN query
// the caller passes queryDist = +Inf and prunes while consuming the plan as
// its answer list tightens.
func (t *Tree) Plan(q vec.Vector, queryDist float64) []engine.PageRef {
	t.mustBeBuilt()
	var refs []engine.PageRef
	var walk func(n *node)
	walk = func(n *node) {
		b := geom.LowerBound(t.cfg.Metric, n.rect, q)
		if b > queryDist {
			return
		}
		if n.isLeaf() {
			refs = append(refs, engine.PageRef{ID: n.pid, MinDist: b})
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].MinDist != refs[j].MinDist {
			return refs[i].MinDist < refs[j].MinDist
		}
		return refs[i].ID < refs[j].ID
	})
	return refs
}

// MinDist returns the lower bound on the distance from q to any item on
// data page pid.
func (t *Tree) MinDist(q vec.Vector, pid store.PageID) float64 {
	t.mustBeBuilt()
	return geom.LowerBound(t.cfg.Metric, t.leafRects[pid], q)
}

// MaxDist returns the upper bound (MAXDIST of the page MBR) on the distance
// from q to any item on data page pid.
func (t *Tree) MaxDist(q vec.Vector, pid store.PageID) float64 {
	t.mustBeBuilt()
	return geom.UpperBound(t.cfg.Metric, t.leafRects[pid], q)
}

// PageLen returns the number of items on data page pid.
func (t *Tree) PageLen(pid store.PageID) int {
	t.mustBeBuilt()
	return t.leafLens[pid]
}

// ReadPage fetches a data page through the tree's pager.
func (t *Tree) ReadPage(pid store.PageID) (*store.Page, error) {
	t.mustBeBuilt()
	return t.pager.ReadPage(pid)
}

// NumPages returns the number of data pages.
func (t *Tree) NumPages() int {
	t.mustBeBuilt()
	return t.pager.NumPages()
}

// NumItems returns the number of stored items.
func (t *Tree) NumItems() int { return t.count }

// Pager returns the data-page pager.
func (t *Tree) Pager() *store.Pager {
	t.mustBeBuilt()
	return t.pager
}

func (t *Tree) mustBeBuilt() {
	if !t.built {
		panic(fmt.Sprintf("xtree: query before Build on tree with %d items", t.count))
	}
}
