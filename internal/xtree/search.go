package xtree

import (
	"fmt"
	"sort"

	"metricdb/internal/engine"
	"metricdb/internal/geom"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// The Tree implements engine.Engine once built.
var _ engine.Engine = (*Tree)(nil)

// Name returns "xtree".
func (t *Tree) Name() string { return "xtree" }

// Prepare returns the per-query handle. MBR bounds are cheap enough to
// compute per probe, so the handle only pins the query vector.
func (t *Tree) Prepare(q vec.Vector) engine.PreparedQuery {
	t.mustBeBuilt()
	return &prepared{t: t, q: q}
}

// prepared answers page probes for one query against the memory-resident
// directory.
type prepared struct {
	t *Tree
	q vec.Vector
}

// Plan traverses the memory-resident directory and returns every data page
// whose lower-bound distance to q does not exceed queryDist, in ascending
// lower-bound order (the Hjaltason–Samet page schedule). For a k-NN query
// the caller passes queryDist = +Inf and prunes while consuming the plan as
// its answer list tightens.
func (p *prepared) Plan(queryDist float64) []engine.PageRef {
	t := p.t
	var refs []engine.PageRef
	var walk func(n *node)
	walk = func(n *node) {
		b := geom.LowerBound(t.cfg.Metric, n.rect, p.q)
		if b > queryDist {
			return
		}
		if n.isLeaf() {
			refs = append(refs, engine.PageRef{ID: n.pid, MinDist: b})
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].MinDist != refs[j].MinDist {
			return refs[i].MinDist < refs[j].MinDist
		}
		return refs[i].ID < refs[j].ID
	})
	return refs
}

// MinDist returns the lower bound on the distance from q to any item on
// data page pid.
func (p *prepared) MinDist(pid store.PageID) float64 {
	return geom.LowerBound(p.t.cfg.Metric, p.t.leafRects[pid], p.q)
}

// MaxDist returns the upper bound (MAXDIST of the page MBR) on the distance
// from q to any item on data page pid.
func (p *prepared) MaxDist(pid store.PageID) float64 {
	return geom.UpperBound(p.t.cfg.Metric, p.t.leafRects[pid], p.q)
}

// Describe reports the directory tuning for EXPLAIN output.
func (t *Tree) Describe() engine.Config {
	return engine.Config{PageCapacity: t.cfg.LeafCapacity, Fanout: t.cfg.DirFanout}
}

// PageLen returns the number of items on data page pid.
func (t *Tree) PageLen(pid store.PageID) int {
	t.mustBeBuilt()
	return t.leafLens[pid]
}

// ReadPage fetches a data page through the tree's pager.
func (t *Tree) ReadPage(pid store.PageID) (*store.Page, error) {
	t.mustBeBuilt()
	return t.pager.ReadPage(pid)
}

// NumPages returns the number of data pages.
func (t *Tree) NumPages() int {
	t.mustBeBuilt()
	return t.pager.NumPages()
}

// NumItems returns the number of stored items.
func (t *Tree) NumItems() int { return t.count }

// Pager returns the data-page pager.
func (t *Tree) Pager() *store.Pager {
	t.mustBeBuilt()
	return t.pager
}

func (t *Tree) mustBeBuilt() {
	if !t.built {
		panic(fmt.Sprintf("xtree: query before Build on tree with %d items", t.count))
	}
}
