// Package xtree implements the X-tree of Berchtold, Keim and Kriegel
// (VLDB 1996): an R*-tree-style index for high-dimensional point data whose
// directory avoids high-overlap splits by creating supernodes — directory
// nodes of variable size that are scanned linearly instead of being split
// into heavily overlapping halves.
//
// The directory is memory-resident (as in typical deployments and in the
// paper's buffered setting); the leaf level is materialized as data pages
// on the simulated disk, so I/O accounting covers exactly the data-page
// accesses that Figure 7 of the multi-query paper reports. Leaf pages are
// laid out on disk in tree order, giving spatially clustered physical
// addresses.
//
// A built tree is immutable on the query path: Plan, MinDist, MaxDist and
// ReadPage only walk the in-memory directory and read through the pager,
// so they are safe for concurrent readers (the engine contract the msq
// pipeline relies on). Insert is not concurrent with queries.
package xtree

import (
	"metricdb/internal/geom"
	"metricdb/internal/store"
)

// node is one X-tree node. Leaves (level 0) hold items and map 1:1 to disk
// data pages after Build; directory nodes hold children. A directory node
// whose children count exceeds the normal fanout is a supernode.
type node struct {
	level    int // 0 for leaves
	rect     geom.Rect
	children []*node      // directory nodes only
	items    []store.Item // leaves only
	pid      store.PageID // assigned by flush; InvalidPage before
	// splitHist is the X-tree split history: a bit per dimension that
	// some ancestor split of this node used. If every child of a
	// directory node carries a common bit d, an overlap-free split along
	// dimension d exists (the X-tree's split theorem). Only tracked for
	// dimensionalities up to 64.
	splitHist uint64
}

func (n *node) isLeaf() bool { return n.level == 0 }

// isSuper reports whether a directory node is a supernode for the given
// normal fanout.
func (n *node) isSuper(fanout int) bool {
	return !n.isLeaf() && len(n.children) > fanout
}

// recompute rebuilds the node's MBR from its contents.
func (n *node) recompute(dim int) {
	r := geom.EmptyRect(dim)
	if n.isLeaf() {
		for i := range n.items {
			r.Extend(n.items[i].Vec)
		}
	} else {
		for _, c := range n.children {
			r.ExtendRect(c.rect)
		}
	}
	n.rect = r
}

// Stats describes the shape of a built X-tree.
type Stats struct {
	Height     int // number of levels, 1 for a single leaf
	Leaves     int
	DirNodes   int // directory nodes, including supernodes
	Supernodes int
	Items      int
}

func collectStats(n *node, fanout int, s *Stats) {
	if n.isLeaf() {
		s.Leaves++
		s.Items += len(n.items)
		return
	}
	s.DirNodes++
	if n.isSuper(fanout) {
		s.Supernodes++
	}
	for _, c := range n.children {
		collectStats(c, fanout, s)
	}
}
