package xtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"metricdb/internal/geom"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

func testConfig() Config {
	return Config{LeafCapacity: 8, DirFanout: 6, BufferPages: 0}
}

func uniformItems(rng *rand.Rand, n, dim int) []store.Item {
	items := make([]store.Item, n)
	for i := range items {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = store.Item{ID: store.ItemID(i), Vec: v}
	}
	return items
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{LeafCapacity: 1, DirFanout: 4},
		{LeafCapacity: 4, DirFanout: 1},
		{LeafCapacity: 4, DirFanout: 4, MinFillRatio: 0.9},
		{LeafCapacity: 4, DirFanout: 4, MaxOverlap: 2},
		{LeafCapacity: 4, DirFanout: 4, MinFillRatio: -0.1},
	}
	for _, c := range bad {
		if _, err := New(2, c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if _, err := New(0, testConfig()); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := New(2, testConfig()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(20)
	if c.LeafCapacity != 195 {
		t.Errorf("LeafCapacity = %d, want 195 (32 KB / 20-d)", c.LeafCapacity)
	}
	if c.DirFanout < 4 {
		t.Errorf("DirFanout = %d", c.DirFanout)
	}
	if _, err := New(20, c); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestInsertValidation(t *testing.T) {
	tr, err := New(2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(store.Item{ID: 1, Vec: vec.Vector{1, 2, 3}}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := tr.Insert(store.Item{ID: 1, Vec: vec.Vector{1, 2}}); err != nil {
		t.Errorf("valid insert rejected: %v", err)
	}
	if err := tr.Build(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(store.Item{ID: 2, Vec: vec.Vector{0, 0}}); err == nil {
		t.Error("insert after Build accepted")
	}
	if err := tr.Build(); err == nil {
		t.Error("double Build accepted")
	}
}

func TestQueryBeforeBuildPanics(t *testing.T) {
	tr, err := New(2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when querying an unbuilt tree")
		}
	}()
	tr.Prepare(vec.Vector{0, 0}).Plan(1)
}

func TestTreeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := uniformItems(rng, 2000, 4)
	tr, err := Bulk(items, 4, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Items != 2000 {
		t.Errorf("stats items = %d", s.Items)
	}
	if s.Height < 3 {
		t.Errorf("height = %d, expected a multi-level tree", s.Height)
	}
	if s.Leaves != tr.NumPages() {
		t.Errorf("leaves %d != pages %d", s.Leaves, tr.NumPages())
	}
	if tr.Len() != 2000 || tr.NumItems() != 2000 {
		t.Errorf("Len = %d, NumItems = %d", tr.Len(), tr.NumItems())
	}
	if tr.Dim() != 4 {
		t.Errorf("Dim = %d", tr.Dim())
	}
	if !tr.Built() {
		t.Error("Built() = false after Build")
	}
	// Every item must be stored on exactly one page.
	seen := make(map[store.ItemID]int)
	for pid := 0; pid < tr.NumPages(); pid++ {
		p, err := tr.ReadPage(store.PageID(pid))
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range p.Items {
			seen[it.ID]++
		}
	}
	if len(seen) != 2000 {
		t.Fatalf("pages hold %d distinct items, want 2000", len(seen))
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("item %d stored %d times", id, c)
		}
	}
}

func TestSupernodesAppearInHighDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := uniformItems(rng, 3000, 16)
	cfg := Config{LeafCapacity: 16, DirFanout: 8, BufferPages: 0, MaxOverlap: 0.05}
	tr, err := Bulk(items, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Stats().Supernodes; got == 0 {
		t.Error("expected supernodes in 16-d uniform data with a strict overlap threshold")
	}
}

func TestLowDimensionalTreeAvoidsSupernodes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := uniformItems(rng, 3000, 2)
	tr, err := Bulk(items, 2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Supernodes > s.DirNodes/4 {
		t.Errorf("2-d uniform data produced %d supernodes of %d dir nodes", s.Supernodes, s.DirNodes)
	}
}

// bruteRange returns the IDs within eps of q.
func bruteRange(items []store.Item, m vec.Metric, q vec.Vector, eps float64) map[store.ItemID]bool {
	out := make(map[store.ItemID]bool)
	for _, it := range items {
		if m.Distance(q, it.Vec) <= eps {
			out[it.ID] = true
		}
	}
	return out
}

// TestPlanCoversRangeQueries checks the pruning safety contract: every item
// within queryDist of q lives on some planned page.
func TestPlanCoversRangeQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := uniformItems(rng, 1500, 6)
	tr, err := Bulk(items, 6, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := vec.Euclidean{}
	for trial := 0; trial < 20; trial++ {
		q := uniformItems(rng, 1, 6)[0].Vec
		eps := 0.2 + rng.Float64()*0.3
		want := bruteRange(items, m, q, eps)

		planned := make(map[store.PageID]bool)
		for _, ref := range tr.Prepare(q).Plan(eps) {
			planned[ref.ID] = true
			if tr.Prepare(q).MinDist(ref.ID) != ref.MinDist {
				t.Fatalf("MinDist(%d) inconsistent with plan", ref.ID)
			}
		}
		got := make(map[store.ItemID]bool)
		for pid := range planned {
			p, err := tr.ReadPage(pid)
			if err != nil {
				t.Fatal(err)
			}
			for _, it := range p.Items {
				if m.Distance(q, it.Vec) <= eps {
					got[it.ID] = true
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: plan yields %d answers, brute force %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: item %d missed by plan", trial, id)
			}
		}
	}
}

func TestPlanIsSortedAndSelective(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	items := uniformItems(rng, 2000, 3)
	tr, err := Bulk(items, 3, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := vec.Vector{0.5, 0.5, 0.5}

	all := tr.Prepare(q).Plan(math.Inf(1))
	if len(all) != tr.NumPages() {
		t.Errorf("unbounded plan has %d pages, want all %d", len(all), tr.NumPages())
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].MinDist <= all[j].MinDist }) {
		t.Error("plan not sorted by MinDist")
	}

	small := tr.Prepare(q).Plan(0.05)
	if len(small) >= len(all) {
		t.Errorf("tight range query planned %d of %d pages — no selectivity in 3-d", len(small), len(all))
	}
}

func TestNonCoordinatewiseMetricLosesSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	items := uniformItems(rng, 300, 4)
	hm, err := vec.HistogramSimilarityMatrix(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	qf, err := vec.NewQuadraticForm(4, hm)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Metric = qf
	tr, err := Bulk(items, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All bounds are zero: the plan must include every page (scan
	// degeneration, safe but unselective).
	if got := len(tr.Prepare(vec.Vector{0, 0, 0, 0}).Plan(0.01)); got != tr.NumPages() {
		t.Errorf("quadratic-form plan covers %d of %d pages", got, tr.NumPages())
	}
}

func TestBuildUsesDefaultBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	items := uniformItems(rng, 1000, 2)
	cfg := testConfig()
	cfg.BufferPages = -1
	tr, err := Bulk(items, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := tr.Pager().Buffer()
	if buf == nil {
		t.Fatal("default buffer missing")
	}
	if want := store.DefaultBufferPages(tr.NumPages()); buf.Capacity() != want {
		t.Errorf("buffer capacity = %d, want %d", buf.Capacity(), want)
	}
}

// Property: leaf MBRs are tight — every stored item lies inside its page's
// reported rectangle (checked via MinDist == 0 from the item itself).
func TestLeafRectsContainItemsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items := uniformItems(rng, 200+rng.Intn(200), 3)
		tr, err := Bulk(items, 3, testConfig())
		if err != nil {
			return false
		}
		for pid := 0; pid < tr.NumPages(); pid++ {
			p, err := tr.ReadPage(store.PageID(pid))
			if err != nil {
				return false
			}
			for _, it := range p.Items {
				if tr.Prepare(it.Vec).MinDist(store.PageID(pid)) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestTopologicalSplitBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rects := make([]geom.Rect, 20)
	for i := range rects {
		a := vec.Vector{rng.Float64(), rng.Float64()}
		r := geom.PointRect(a)
		r.Extend(vec.Vector{a[0] + rng.Float64()*0.1, a[1] + rng.Float64()*0.1})
		rects[i] = r
	}
	res := topologicalSplit(rects, 8)
	if len(res.left) < 8 || len(res.right) < 8 {
		t.Errorf("split violates minFill: %d/%d", len(res.left), len(res.right))
	}
	if len(res.left)+len(res.right) != 20 {
		t.Errorf("split loses entries: %d + %d", len(res.left), len(res.right))
	}
	// Every index appears exactly once.
	seen := make(map[int]bool)
	for _, i := range append(append([]int(nil), res.left...), res.right...) {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
	// Group rects cover their members.
	for _, i := range res.left {
		if !res.leftRect.ContainsRect(rects[i]) {
			t.Errorf("left rect misses member %d", i)
		}
	}
	for _, i := range res.right {
		if !res.rightRect.ContainsRect(rects[i]) {
			t.Errorf("right rect misses member %d", i)
		}
	}
}

func TestSplitOverlapRatio(t *testing.T) {
	a, _ := geom.NewRect(vec.Vector{0, 0}, vec.Vector{1, 1})
	b, _ := geom.NewRect(vec.Vector{2, 0}, vec.Vector{3, 1})
	s := splitResult{leftRect: a, rightRect: b}
	if got := s.overlapRatio(); got != 0 {
		t.Errorf("disjoint overlap ratio = %v", got)
	}
	c, _ := geom.NewRect(vec.Vector{0, 0}, vec.Vector{1, 1})
	d, _ := geom.NewRect(vec.Vector{0.5, 0}, vec.Vector{1.5, 1})
	s2 := splitResult{leftRect: c, rightRect: d, overlap: c.Overlap(d)}
	if got := s2.overlapRatio(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("overlap ratio = %v, want 1/3", got)
	}
	// Degenerate zero-volume union.
	e := geom.PointRect(vec.Vector{1, 1})
	s3 := splitResult{leftRect: e, rightRect: e}
	if got := s3.overlapRatio(); got != 0 {
		t.Errorf("degenerate ratio = %v", got)
	}
}

func TestBulkSTRMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	items := uniformItems(rng, 1700, 5)
	tr, err := BulkSTR(items, 5, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Built() || tr.Len() != 1700 {
		t.Fatalf("Built=%v Len=%d", tr.Built(), tr.Len())
	}

	// Every item stored exactly once and inside its page MBR.
	seen := make(map[store.ItemID]bool)
	total := 0
	for pid := 0; pid < tr.NumPages(); pid++ {
		p, err := tr.ReadPage(store.PageID(pid))
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Items) > testConfig().LeafCapacity {
			t.Fatalf("page %d overflows: %d items", pid, len(p.Items))
		}
		total += len(p.Items)
		for _, it := range p.Items {
			if seen[it.ID] {
				t.Fatalf("item %d duplicated", it.ID)
			}
			seen[it.ID] = true
			if tr.Prepare(it.Vec).MinDist(store.PageID(pid)) != 0 {
				t.Fatalf("item %d outside its page MBR", it.ID)
			}
		}
	}
	if total != 1700 {
		t.Fatalf("pages hold %d items", total)
	}

	// Range query safety against brute force.
	m := vec.Euclidean{}
	for trial := 0; trial < 10; trial++ {
		q := uniformItems(rng, 1, 5)[0].Vec
		eps := 0.2 + rng.Float64()*0.2
		want := bruteRange(items, m, q, eps)
		got := 0
		for _, ref := range tr.Prepare(q).Plan(eps) {
			p, err := tr.ReadPage(ref.ID)
			if err != nil {
				t.Fatal(err)
			}
			for _, it := range p.Items {
				if m.Distance(q, it.Vec) <= eps {
					got++
				}
			}
		}
		if got != len(want) {
			t.Fatalf("trial %d: STR plan yields %d answers, want %d", trial, got, len(want))
		}
	}
}

func TestBulkSTRPacksFullPages(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	items := uniformItems(rng, 2048, 4)
	cfg := testConfig() // leaf capacity 8
	str, err := BulkSTR(items, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Bulk(items, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// STR packs pages full: it must need no more (usually far fewer)
	// pages than dynamic insertion.
	if str.NumPages() > dyn.NumPages() {
		t.Errorf("STR uses %d pages, dynamic %d", str.NumPages(), dyn.NumPages())
	}
	if str.NumPages() != 2048/8 {
		t.Errorf("STR pages = %d, want fully packed %d", str.NumPages(), 2048/8)
	}
}

func TestBulkSTREdgeCases(t *testing.T) {
	if _, err := BulkSTR(nil, 3, testConfig()); err != nil {
		t.Errorf("empty STR build failed: %v", err)
	}
	rng := rand.New(rand.NewSource(44))
	bad := uniformItems(rng, 4, 3)
	bad[2].Vec = vec.Vector{1}
	if _, err := BulkSTR(bad, 3, testConfig()); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Tiny dataset: single leaf.
	tiny := uniformItems(rng, 3, 3)
	tr, err := BulkSTR(tiny, 3, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumPages() != 1 || tr.Stats().Height != 1 {
		t.Errorf("tiny STR tree: pages=%d height=%d", tr.NumPages(), tr.Stats().Height)
	}
}

func TestForcedReinsertion(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	items := uniformItems(rng, 3000, 4)

	cfg := testConfig()
	plain, err := Bulk(items, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ReinsertFraction = 0.3
	reins, err := Bulk(items, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Correctness: the reinserted tree stores every item exactly once
	// and answers range queries like brute force.
	seen := make(map[store.ItemID]bool)
	for pid := 0; pid < reins.NumPages(); pid++ {
		p, err := reins.ReadPage(store.PageID(pid))
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range p.Items {
			if seen[it.ID] {
				t.Fatalf("item %d duplicated", it.ID)
			}
			seen[it.ID] = true
		}
	}
	if len(seen) != 3000 {
		t.Fatalf("reinserted tree holds %d items", len(seen))
	}
	m := vec.Euclidean{}
	for trial := 0; trial < 8; trial++ {
		q := uniformItems(rng, 1, 4)[0].Vec
		want := len(bruteRange(items, m, q, 0.25))
		got := 0
		for _, ref := range reins.Prepare(q).Plan(0.25) {
			p, err := reins.ReadPage(ref.ID)
			if err != nil {
				t.Fatal(err)
			}
			for _, it := range p.Items {
				if m.Distance(q, it.Vec) <= 0.25 {
					got++
				}
			}
		}
		if got != want {
			t.Fatalf("trial %d: %d answers, want %d", trial, got, want)
		}
	}

	// Quality: reinsertion should not increase the page count materially
	// (R* typically packs pages better).
	if reins.NumPages() > plain.NumPages()*11/10 {
		t.Errorf("reinsertion grew the tree: %d vs %d pages", reins.NumPages(), plain.NumPages())
	}

	if _, err := New(4, Config{LeafCapacity: 8, DirFanout: 6, ReinsertFraction: 0.9}); err == nil {
		t.Error("ReinsertFraction > 0.5 accepted")
	}
}

func TestOverlapFreeSplitUsesHistory(t *testing.T) {
	// Force high-overlap topological splits with a strict threshold: the
	// history mechanism should still find zero-overlap directory splits
	// where possible, keeping some splits that a pure supernode policy
	// would refuse.
	rng := rand.New(rand.NewSource(61))
	items := uniformItems(rng, 4000, 8)
	strict := Config{LeafCapacity: 16, DirFanout: 8, BufferPages: 0, MaxOverlap: 0.0001}
	tr, err := Bulk(items, 8, strict)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.DirNodes <= 1 {
		t.Skip("tree too small to exercise directory splits")
	}
	// With history-based splits available, the directory must not
	// degenerate into a single giant supernode: some directory splits
	// must have succeeded despite the brutal overlap threshold.
	if s.DirNodes < 3 {
		t.Errorf("directory degenerated to %+v", s)
	}

	// Correctness under the strict threshold.
	m := vec.Euclidean{}
	q := items[123].Vec
	want := len(bruteRange(items, m, q, 0.4))
	got := 0
	for _, ref := range tr.Prepare(q).Plan(0.4) {
		p, err := tr.ReadPage(ref.ID)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range p.Items {
			if m.Distance(q, it.Vec) <= 0.4 {
				got++
			}
		}
	}
	if got != want {
		t.Errorf("range query under history splits: %d answers, want %d", got, want)
	}
}

func TestHistoryBit(t *testing.T) {
	if historyBit(3, 8) != 1<<3 {
		t.Error("historyBit wrong")
	}
	if historyBit(70, 128) != 0 || historyBit(3, 128) != 0 {
		t.Error("high-dimensional history should be disabled")
	}
}
