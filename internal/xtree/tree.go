package xtree

import (
	"fmt"
	"math"
	"sort"

	"metricdb/internal/geom"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// Config parameterizes an X-tree.
type Config struct {
	// LeafCapacity is the number of items per data page. Required.
	LeafCapacity int
	// DirFanout is the normal directory fanout; supernodes grow in
	// multiples of it. Required.
	DirFanout int
	// MinFillRatio is the minimum node fill on splits (R*-tree default
	// 0.4). Zero selects the default.
	MinFillRatio float64
	// MaxOverlap is the X-tree overlap threshold: if the best topological
	// split of a directory node overlaps more than this fraction of the
	// union volume, the node becomes a supernode instead. The X-tree
	// paper derives 20 % as a good threshold. Zero selects the default.
	MaxOverlap float64
	// BufferPages sizes the LRU data-page buffer created by Build.
	// Negative selects the paper's default of 10 % of the data pages;
	// zero disables buffering.
	BufferPages int
	// Metric is used for query lower bounds. Nil selects Euclidean.
	// Non-coordinatewise metrics are allowed but give the index no
	// selectivity (all lower bounds are zero).
	Metric vec.Metric
	// WrapDisk, when non-nil, interposes on the disk built by Build before
	// the pager is attached — the hook used to run the tree on
	// fault-injected storage. The directory stays in memory, so only data-
	// page reads pass through the wrapper.
	WrapDisk func(store.PageSource) (store.PageSource, error)
	// ReinsertFraction enables R*-style forced reinsertion: on the first
	// leaf overflow of an insertion, this fraction of the leaf's items
	// farthest from its center are reinserted from the root instead of
	// splitting, which tightens MBRs. 0 disables reinsertion (default);
	// the R*-tree paper recommends 0.3. Must be in [0, 0.5].
	ReinsertFraction float64
	// Columns selects which sibling representations (columnar float64
	// block, float32, quantized codes) Build materializes on each data
	// page for the blocked distance kernels.
	Columns store.ColumnSpec
}

// withDefaults fills in defaulted fields and validates the config.
func (c Config) withDefaults() (Config, error) {
	if c.LeafCapacity < 2 {
		return c, fmt.Errorf("xtree: LeafCapacity must be >= 2, got %d", c.LeafCapacity)
	}
	if c.DirFanout < 2 {
		return c, fmt.Errorf("xtree: DirFanout must be >= 2, got %d", c.DirFanout)
	}
	if c.MinFillRatio == 0 {
		c.MinFillRatio = 0.4
	}
	if c.MinFillRatio < 0 || c.MinFillRatio > 0.5 {
		return c, fmt.Errorf("xtree: MinFillRatio must be in (0, 0.5], got %g", c.MinFillRatio)
	}
	if c.MaxOverlap == 0 {
		c.MaxOverlap = 0.2
	}
	if c.MaxOverlap < 0 || c.MaxOverlap > 1 {
		return c, fmt.Errorf("xtree: MaxOverlap must be in (0, 1], got %g", c.MaxOverlap)
	}
	if c.ReinsertFraction < 0 || c.ReinsertFraction > 0.5 {
		return c, fmt.Errorf("xtree: ReinsertFraction must be in [0, 0.5], got %g", c.ReinsertFraction)
	}
	if c.Metric == nil {
		c.Metric = vec.Euclidean{}
	}
	return c, nil
}

// DefaultConfig returns the configuration used by the experiments: page
// capacity derived from the paper's 32 KB blocks for the given
// dimensionality, matching directory fanout, and the 10 % buffer.
func DefaultConfig(dim int) Config {
	return Config{
		LeafCapacity: store.PageCapacityForBlockSize(32768, dim),
		DirFanout:    dirFanoutForBlockSize(32768, dim),
		BufferPages:  -1,
	}
}

// dirFanoutForBlockSize returns how many directory entries (an MBR of 2*dim
// float64 plus a child pointer) fit in a block.
func dirFanoutForBlockSize(blockSize, dim int) int {
	per := 16*dim + 8
	f := blockSize / per
	if f < 4 {
		f = 4
	}
	return f
}

// Tree is an X-tree under construction (Insert) or built (Build), after
// which it serves queries as an engine.Engine.
type Tree struct {
	cfg   Config
	dim   int
	root  *node
	count int

	// reinserting guards against reinsertion cascades: at most one forced
	// reinsertion per top-level insert.
	reinserting bool

	// Set by Build.
	built     bool
	pager     *store.Pager
	leafRects []geom.Rect // indexed by PageID
	leafLens  []int       // items per page, indexed by PageID
}

// New creates an empty X-tree for dim-dimensional items.
func New(dim int, cfg Config) (*Tree, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if dim <= 0 {
		return nil, fmt.Errorf("xtree: dimension must be positive, got %d", dim)
	}
	return &Tree{
		cfg:  cfg,
		dim:  dim,
		root: &node{level: 0, rect: geom.EmptyRect(dim)},
	}, nil
}

// Insert adds an item to the tree. It fails after Build (the index is
// static once materialized on the simulated disk, matching the experimental
// setup) or on dimension mismatch.
func (t *Tree) Insert(it store.Item) error {
	if t.built {
		return fmt.Errorf("xtree: tree is already built")
	}
	if it.Vec.Dim() != t.dim {
		return fmt.Errorf("xtree: item %d has dimension %d, tree expects %d", it.ID, it.Vec.Dim(), t.dim)
	}
	t.insertTop(it)
	t.count++
	return nil
}

// insertTop inserts from the root, growing the tree when the root splits.
func (t *Tree) insertTop(it store.Item) {
	if sib := t.insertAt(t.root, it); sib != nil {
		old := t.root
		t.root = &node{
			level:    old.level + 1,
			rect:     old.rect.Union(sib.rect),
			children: []*node{old, sib},
			pid:      store.InvalidPage,
		}
	}
}

// insertAt inserts it into the subtree rooted at n and returns a new
// sibling node if n was split.
func (t *Tree) insertAt(n *node, it store.Item) *node {
	if n.isLeaf() {
		n.items = append(n.items, it)
		n.rect.Extend(it.Vec)
		if len(n.items) > t.cfg.LeafCapacity {
			if t.cfg.ReinsertFraction > 0 && !t.reinserting {
				t.reinsertOverflow(n)
				return nil
			}
			return t.splitLeaf(n)
		}
		return nil
	}
	c := t.chooseSubtree(n, it.Vec)
	sib := t.insertAt(c, it)
	n.rect.ExtendRect(c.rect)
	if sib == nil {
		return nil
	}
	n.children = append(n.children, sib)
	n.rect.ExtendRect(sib.rect)
	if len(n.children) > t.dirCapacity(n) {
		return t.splitDir(n)
	}
	return nil
}

// dirCapacity returns the current capacity of a directory node: the normal
// fanout, or the next multiple of it for supernodes.
func (t *Tree) dirCapacity(n *node) int {
	f := t.cfg.DirFanout
	if len(n.children) <= f {
		return f
	}
	// Supernode: capacity is the smallest multiple of f that holds the
	// children that were present before the current overflow.
	blocks := (len(n.children) - 1 + f - 1) / f
	if blocks < 1 {
		blocks = 1
	}
	return blocks * f
}

// chooseSubtree implements the R*-tree descent criterion: minimal overlap
// enlargement when the children are leaves, minimal area enlargement
// otherwise, with area and child count as tie-breakers.
func (t *Tree) chooseSubtree(n *node, p vec.Vector) *node {
	// Fast path: children whose MBR already contains p need no
	// enlargement at all (zero area and zero overlap increase), so the
	// smallest such child wins outright. This skips the quadratic
	// overlap computation for the vast majority of inserts.
	best := -1
	var bestArea float64
	for i, c := range n.children {
		if c.rect.Contains(p) {
			if a := c.rect.Area(); best == -1 || a < bestArea {
				best, bestArea = i, a
			}
		}
	}
	if best >= 0 {
		return n.children[best]
	}

	// Area enlargements for every child (one linear pass).
	areaIncs := make([]float64, len(n.children))
	areas := make([]float64, len(n.children))
	for i, c := range n.children {
		areas[i] = c.rect.Area()
		areaIncs[i] = c.rect.AreaWithPoint(p) - areas[i]
	}

	// R*-style criterion. The overlap-enlargement test above the leaf
	// level is O(f²·d); following the R*-tree's own mitigation, it is
	// evaluated only for the few children with the least area
	// enlargement (the rest cannot plausibly win).
	candidates := identity(len(n.children))
	if n.level == 1 {
		const overlapCandidates = 8
		if len(candidates) > overlapCandidates {
			sort.Slice(candidates, func(a, b int) bool {
				if areaIncs[candidates[a]] != areaIncs[candidates[b]] {
					return areaIncs[candidates[a]] < areaIncs[candidates[b]]
				}
				return candidates[a] < candidates[b]
			})
			candidates = candidates[:overlapCandidates]
		}
	}

	var bestOverlapInc, bestAreaInc float64
	for _, i := range candidates {
		c := n.children[i]
		var overlapInc float64
		if n.level == 1 {
			for j, o := range n.children {
				if j == i {
					continue
				}
				overlapInc += c.rect.OverlapWithPoint(p, o.rect) - c.rect.Overlap(o.rect)
			}
		}
		better := false
		switch {
		case best == -1:
			better = true
		case n.level == 1 && overlapInc != bestOverlapInc:
			better = overlapInc < bestOverlapInc
		case areaIncs[i] != bestAreaInc:
			better = areaIncs[i] < bestAreaInc
		default:
			better = areas[i] < bestArea
		}
		if better {
			best = i
			bestOverlapInc, bestAreaInc, bestArea = overlapInc, areaIncs[i], areas[i]
		}
	}
	return n.children[best]
}

// identity returns [0..n).
func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// splitLeaf splits an overflowing leaf with the topological split and
// returns the new right sibling.
func (t *Tree) splitLeaf(n *node) *node {
	rects := make([]geom.Rect, len(n.items))
	for i := range n.items {
		rects[i] = geom.PointRect(n.items[i].Vec)
	}
	minFill := int(math.Ceil(t.cfg.MinFillRatio * float64(len(n.items))))
	res := topologicalSplit(rects, minFill)

	left := make([]store.Item, 0, len(res.left))
	right := make([]store.Item, 0, len(res.right))
	for _, i := range res.left {
		left = append(left, n.items[i])
	}
	for _, i := range res.right {
		right = append(right, n.items[i])
	}
	n.items = left
	n.rect = res.leftRect
	hist := n.splitHist | historyBit(res.axis, t.dim)
	n.splitHist = hist
	return &node{level: 0, items: right, rect: res.rightRect, pid: store.InvalidPage, splitHist: hist}
}

// historyBit returns the split-history bit for an axis, or 0 when the
// dimensionality exceeds the 64 tracked bits.
func historyBit(axis, dim int) uint64 {
	if dim > 64 || axis >= 64 {
		return 0
	}
	return 1 << uint(axis)
}

// splitDir splits an overflowing directory node — unless the best split
// would overlap more than MaxOverlap of the union volume, in which case the
// node becomes (or grows as) a supernode and nil is returned. This is the
// X-tree's central deviation from the R*-tree.
func (t *Tree) splitDir(n *node) *node {
	rects := make([]geom.Rect, len(n.children))
	for i, c := range n.children {
		rects[i] = c.rect
	}
	minFill := int(math.Ceil(t.cfg.MinFillRatio * float64(len(n.children))))
	res := topologicalSplit(rects, minFill)
	if res.overlapRatio() > t.cfg.MaxOverlap {
		// The topological split overlaps too much. The X-tree then
		// consults the split history for a guaranteed overlap-free
		// split; only when that would be too unbalanced does the node
		// become (or grow as) a supernode.
		alt, ok := t.overlapFreeSplit(n, minFill)
		if !ok {
			return nil // supernode: capacity grows via dirCapacity
		}
		res = alt
	}
	left := make([]*node, 0, len(res.left))
	right := make([]*node, 0, len(res.right))
	for _, i := range res.left {
		left = append(left, n.children[i])
	}
	for _, i := range res.right {
		right = append(right, n.children[i])
	}
	n.children = left
	n.rect = res.leftRect
	hist := n.splitHist | historyBit(res.axis, t.dim)
	n.splitHist = hist
	return &node{level: n.level, children: right, rect: res.rightRect, pid: store.InvalidPage, splitHist: hist}
}

// overlapFreeSplit tries the X-tree's history-based split of a directory
// node: a dimension d along which *every* child has previously been split
// admits a zero-overlap partition; among the balanced zero-overlap
// candidates the most balanced one wins. ok is false when no common split
// dimension exists or every zero-overlap split violates the minimum fill.
func (t *Tree) overlapFreeSplit(n *node, minFill int) (splitResult, bool) {
	if t.dim > 64 || len(n.children) < 2 {
		return splitResult{}, false
	}
	common := ^uint64(0)
	for _, c := range n.children {
		common &= c.splitHist
	}
	if common == 0 {
		return splitResult{}, false
	}
	rects := make([]geom.Rect, len(n.children))
	for i, c := range n.children {
		rects[i] = c.rect
	}
	nEntries := len(rects)
	var best splitResult
	bestBalance := -1
	for d := 0; d < t.dim && d < 64; d++ {
		if common&(1<<uint(d)) == 0 {
			continue
		}
		order := sortedOrder(rects, d, false)
		prefix, suffix := cumulativeRects(rects, order)
		for k := minFill; k <= nEntries-minFill; k++ {
			if prefix[k].Overlap(suffix[k]) != 0 {
				continue
			}
			balance := k
			if nEntries-k < balance {
				balance = nEntries - k
			}
			if balance > bestBalance {
				bestBalance = balance
				best = splitResult{
					left:      append([]int(nil), order[:k]...),
					right:     append([]int(nil), order[k:]...),
					leftRect:  prefix[k].Clone(),
					rightRect: suffix[k].Clone(),
					overlap:   0,
					axis:      d,
				}
			}
		}
	}
	return best, bestBalance >= 0
}

// Build materializes the leaf level as data pages on a fresh simulated
// disk, laid out in tree (DFS) order so that physically close pages are
// spatially close. After Build the tree is immutable and serves queries.
func (t *Tree) Build() error {
	if t.built {
		return fmt.Errorf("xtree: already built")
	}
	var pages []*store.Page
	var rects []geom.Rect
	var lens []int
	var flush func(n *node)
	flush = func(n *node) {
		if n.isLeaf() {
			n.pid = store.PageID(len(pages))
			pages = append(pages, &store.Page{ID: n.pid, Items: n.items})
			rects = append(rects, n.rect)
			lens = append(lens, len(n.items))
			return
		}
		for _, c := range n.children {
			flush(c)
		}
	}
	flush(t.root)

	if err := store.Columnize(pages, t.cfg.Columns); err != nil {
		return fmt.Errorf("xtree: %w", err)
	}
	disk, err := store.NewDisk(pages)
	if err != nil {
		return fmt.Errorf("xtree: %w", err)
	}
	var src store.PageSource = disk
	if t.cfg.WrapDisk != nil {
		if src, err = t.cfg.WrapDisk(disk); err != nil {
			return fmt.Errorf("xtree: %w", err)
		}
	}
	bufPages := t.cfg.BufferPages
	if bufPages < 0 {
		bufPages = store.DefaultBufferPages(len(pages))
	}
	var buf *store.Buffer
	if bufPages > 0 {
		if buf, err = store.NewBuffer(bufPages); err != nil {
			return fmt.Errorf("xtree: %w", err)
		}
	}
	pager, err := store.NewPager(src, buf)
	if err != nil {
		return fmt.Errorf("xtree: %w", err)
	}
	t.pager = pager
	t.leafRects = rects
	t.leafLens = lens
	t.built = true
	return nil
}

// Bulk builds an X-tree over items using dynamic insertion followed by
// Build — the convenience path used by the experiments.
func Bulk(items []store.Item, dim int, cfg Config) (*Tree, error) {
	t, err := New(dim, cfg)
	if err != nil {
		return nil, err
	}
	for _, it := range items {
		if err := t.Insert(it); err != nil {
			return nil, err
		}
	}
	if err := t.Build(); err != nil {
		return nil, err
	}
	return t, nil
}

// Stats returns shape statistics of the tree.
func (t *Tree) Stats() Stats {
	var s Stats
	s.Height = t.root.level + 1
	collectStats(t.root, t.cfg.DirFanout, &s)
	return s
}

// Built reports whether Build has run.
func (t *Tree) Built() bool { return t.built }

// Len returns the number of inserted items.
func (t *Tree) Len() int { return t.count }

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// reinsertOverflow implements R* forced reinsertion: the fraction of the
// overflowing leaf's items farthest from its center are removed and
// reinserted from the root, tightening the leaf's MBR. Ancestor MBRs stay
// valid supersets (they are never shrunk), so in-flight descents remain
// correct. The reinserting flag limits the mechanism to once per
// top-level insertion, as in the R*-tree.
func (t *Tree) reinsertOverflow(n *node) {
	center := n.rect.Center()
	m := vec.BaseMetric(t.cfg.Metric)
	type withDist struct {
		item store.Item
		d    float64
	}
	scored := make([]withDist, len(n.items))
	for i, it := range n.items {
		scored[i] = withDist{item: it, d: m.Distance(center, it.Vec)}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].d != scored[j].d {
			return scored[i].d > scored[j].d // farthest first
		}
		return scored[i].item.ID < scored[j].item.ID
	})
	k := int(t.cfg.ReinsertFraction * float64(len(scored)))
	if k < 1 {
		k = 1
	}
	removed := make([]store.Item, k)
	for i := 0; i < k; i++ {
		removed[i] = scored[i].item
	}
	n.items = n.items[:0]
	for _, s := range scored[k:] {
		n.items = append(n.items, s.item)
	}
	n.recompute(t.dim)

	t.reinserting = true
	defer func() { t.reinserting = false }()
	// Close-reinsert order: nearest removed items first (R* default).
	for i := k - 1; i >= 0; i-- {
		t.insertTop(removed[i])
	}
}
