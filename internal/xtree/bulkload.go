package xtree

import (
	"fmt"
	"math"
	"sort"

	"metricdb/internal/geom"
	"metricdb/internal/store"
)

// BulkSTR builds the tree bottom-up with Sort-Tile-Recursive packing
// (Leutenegger et al.): items are recursively sorted and sliced into slabs
// dimension by dimension until each tile fits a leaf, and the directory is
// packed level by level over the tile order. Compared to dynamic insertion
// (Bulk) this is much faster and produces full pages, at the price of more
// leaf overlap in high dimensions — the ablation benchmark quantifies the
// trade-off. The returned tree is already built (leaves are on the
// simulated disk).
func BulkSTR(items []store.Item, dim int, cfg Config) (*Tree, error) {
	t, err := New(dim, cfg)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return t, t.Build()
	}
	for i := range items {
		if items[i].Vec.Dim() != dim {
			return nil, fmt.Errorf("xtree: item %d has dimension %d, tree expects %d", items[i].ID, items[i].Vec.Dim(), dim)
		}
	}

	tiles := strTiles(items, t.cfg.LeafCapacity, dim)
	level := make([]*node, len(tiles))
	for i, tile := range tiles {
		n := &node{level: 0, items: tile, pid: store.InvalidPage}
		n.recompute(dim)
		level[i] = n
	}

	// Pack the directory bottom-up over the tile order.
	height := 0
	for len(level) > 1 {
		height++
		parents := make([]*node, 0, (len(level)+t.cfg.DirFanout-1)/t.cfg.DirFanout)
		for start := 0; start < len(level); start += t.cfg.DirFanout {
			end := start + t.cfg.DirFanout
			if end > len(level) {
				end = len(level)
			}
			p := &node{level: height, children: level[start:end:end], pid: store.InvalidPage}
			p.rect = geom.EmptyRect(dim)
			for _, c := range p.children {
				p.rect.ExtendRect(c.rect)
			}
			parents = append(parents, p)
		}
		level = parents
	}
	t.root = level[0]
	t.count = len(items)
	return t, t.Build()
}

// strTiles recursively partitions items into leaf-sized tiles: at recursion
// depth d the slice is sorted by coordinate d and cut into
// ceil(P^(1/(dim-d))) slabs, where P is the number of leaf pages needed.
func strTiles(items []store.Item, capacity, dim int) [][]store.Item {
	work := append([]store.Item(nil), items...)
	var out [][]store.Item
	var rec func(part []store.Item, d int)
	rec = func(part []store.Item, d int) {
		if len(part) <= capacity {
			out = append(out, part)
			return
		}
		if d >= dim {
			// All dimensions consumed: chop in order.
			for start := 0; start < len(part); start += capacity {
				end := start + capacity
				if end > len(part) {
					end = len(part)
				}
				out = append(out, part[start:end:end])
			}
			return
		}
		sort.SliceStable(part, func(i, j int) bool {
			if part[i].Vec[d] != part[j].Vec[d] {
				return part[i].Vec[d] < part[j].Vec[d]
			}
			return part[i].ID < part[j].ID
		})
		pages := (len(part) + capacity - 1) / capacity
		slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(dim-d))))
		if slabs < 1 {
			slabs = 1
		}
		// Slab sizes are multiples of the leaf capacity so every tile
		// except the last packs full pages.
		pagesPerSlab := (pages + slabs - 1) / slabs
		per := pagesPerSlab * capacity
		for start := 0; start < len(part); start += per {
			end := start + per
			if end > len(part) {
				end = len(part)
			}
			rec(part[start:end:end], d+1)
		}
	}
	rec(work, 0)
	return out
}
