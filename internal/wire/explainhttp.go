package wire

import (
	"encoding/json"
	"fmt"
	"net/http"

	"metricdb/internal/msq"
	"metricdb/internal/vec"
)

// buildBatch converts wire query specs into a validated msq batch.
func buildBatch(specs []QuerySpec) ([]msq.Query, error) {
	batch := make([]msq.Query, len(specs))
	seen := make(map[uint64]bool, len(specs))
	for i, q := range specs {
		t, err := q.toType()
		if err != nil {
			return nil, err
		}
		if seen[q.ID] {
			return nil, fmt.Errorf("wire: duplicate query id %d", q.ID)
		}
		seen[q.ID] = true
		batch[i] = msq.Query{ID: q.ID, Vec: vec.Vector(q.Vector), Type: t}
		if err := batch[i].Validate(); err != nil {
			return nil, err
		}
	}
	return batch, nil
}

// ExplainHandler returns an HTTP handler for the admin surface: POST a
// JSON body {"queries": [<QuerySpec>, ...]} and receive the per-query
// EXPLAIN profile (msq.Explain) of evaluating that batch to completion.
// Each request runs in a fresh session, so concurrent explains are safe
// and do not disturb the wire connections' incremental sessions.
func (s *Server) ExplainHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a JSON body {\"queries\": [...]}", http.StatusMethodNotAllowed)
			return
		}
		var body struct {
			Queries []QuerySpec `json:"queries"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxRequestBytes))).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(body.Queries) == 0 {
			http.Error(w, "wire: explain needs at least one query", http.StatusBadRequest)
			return
		}
		batch, err := buildBatch(body.Queries)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ex, err := s.proc.ExplainContext(r.Context(), batch)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(ex) //nolint:errcheck
	}
}
