package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"metricdb/internal/dataset"
	"metricdb/internal/fault"
	"metricdb/internal/msq"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// startServerCfg runs a scan-backed server with explicit robustness knobs,
// optionally on fault-injected storage.
func startServerCfg(t *testing.T, cfg ServerConfig, wrap func(store.PageSource) (store.PageSource, error)) (*Server, string) {
	t.Helper()
	items := dataset.Uniform(9, 300, 3)
	eng, err := scan.NewWithConfig(items, scan.Config{PageCapacity: 16, WrapDisk: wrap})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := msq.New(eng, vec.Euclidean{}, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerWithConfig(proc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck // ends with net.ErrClosed on shutdown
	t.Cleanup(func() { srv.Close() })
	return srv, lis.Addr().String()
}

func TestServerConfigValidation(t *testing.T) {
	proc := newTestProc(t)
	if _, err := NewServerWithConfig(proc, ServerConfig{MaxConns: -1}); err == nil {
		t.Error("negative MaxConns accepted")
	}
	if _, err := NewServerWithConfig(proc, ServerConfig{MaxRequestBytes: -1}); err == nil {
		t.Error("negative MaxRequestBytes accepted")
	}
}

func newTestProc(t *testing.T) *msq.Processor {
	t.Helper()
	eng, err := scan.New(dataset.Uniform(8, 50, 2), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := msq.New(eng, vec.Euclidean{}, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

func TestPing(t *testing.T) {
	_, addr := startServerCfg(t, ServerConfig{}, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	// The session survives a ping.
	if _, _, err := c.Query(QuerySpec{Vector: []float64{0.1, 0.2, 0.3}, Kind: "knn", K: 2}); err != nil {
		t.Fatalf("query after ping: %v", err)
	}
}

// TestErrorTaxonomy checks that client mistakes and server trouble come
// back with the right code on the typed ServerError.
func TestErrorTaxonomy(t *testing.T) {
	_, addr := startServerCfg(t, ServerConfig{}, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	wantCode := func(err error, code string) {
		t.Helper()
		var se *ServerError
		if !errors.As(err, &se) {
			t.Fatalf("error %v is not a ServerError", err)
		}
		if se.Code != code {
			t.Errorf("code = %q, want %q (msg %q)", se.Code, code, se.Msg)
		}
	}
	_, _, err = c.Query(QuerySpec{Vector: []float64{0, 0, 0}, Kind: "weird"})
	wantCode(err, CodeBadRequest)
	_, _, err = c.Query(QuerySpec{Vector: []float64{0, 0, 0}, Kind: "knn", K: 0})
	wantCode(err, CodeBadRequest)
	_, err = c.roundTrip(Request{Op: "dance"})
	wantCode(err, CodeBadRequest)
}

// TestEngineErrorCode: a storage fault surfaces as engine_error, and the
// session survives to serve the next request once the fault clears.
func TestEngineErrorCode(t *testing.T) {
	var injector *fault.Disk
	_, addr := startServerCfg(t, ServerConfig{}, func(src store.PageSource) (store.PageSource, error) {
		var err error
		injector, err = fault.Wrap(src, fault.Config{Seed: 4, ErrProb: 1, MaxFaults: 1})
		return injector, err
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, _, err = c.Query(QuerySpec{Vector: []float64{0.5, 0.5, 0.5}, Kind: "knn", K: 3})
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeEngine {
		t.Fatalf("injected fault returned %v, want engine_error", err)
	}
	if !injector.Exhausted() {
		t.Fatal("fault budget not spent")
	}
	if _, _, err := c.Query(QuerySpec{Vector: []float64{0.5, 0.5, 0.5}, Kind: "knn", K: 3}); err != nil {
		t.Fatalf("session did not survive the engine error: %v", err)
	}
}

// TestMalformedRequestResponse: garbage on the wire yields a JSON
// bad_request response before the connection closes — not a silent drop.
func TestMalformedRequestResponse(t *testing.T) {
	_, addr := startServerCfg(t, ServerConfig{}, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("not json at all\n")); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("no error response before close: %v", err)
	}
	if resp.Code != CodeBadRequest || !strings.Contains(resp.Err, "malformed") {
		t.Errorf("response = %+v", resp)
	}
	// The connection is closed after the final error response.
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := bufio.NewReader(conn).ReadByte(); err == nil {
		t.Error("connection still open after malformed request")
	}
}

// TestRequestTooLarge: a request line beyond MaxRequestBytes is answered
// with bad_request instead of being buffered without bound.
func TestRequestTooLarge(t *testing.T) {
	_, addr := startServerCfg(t, ServerConfig{MaxRequestBytes: 256}, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	big := fmt.Sprintf(`{"op":"query","queries":[{"kind":"%s"}]}`+"\n", strings.Repeat("x", 1024))
	if _, err := conn.Write([]byte(big)); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("no error response: %v", err)
	}
	if resp.Code != CodeBadRequest || !strings.Contains(resp.Err, "limit") {
		t.Errorf("response = %+v", resp)
	}
}

// TestOverload: beyond MaxConns, new connections get an overload error
// response, and a slot freed by a disconnect is reusable.
func TestOverload(t *testing.T) {
	_, addr := startServerCfg(t, ServerConfig{MaxConns: 1}, nil)
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Ping(); err != nil { // ensure the server admitted c1
		t.Fatal(err)
	}

	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	err = c2.Ping()
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeOverload {
		t.Fatalf("second connection got %v, want overload", err)
	}
	c2.Close()

	// Free the slot and retry until the server reaps the old connection.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		err = c3.Ping()
		c3.Close()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClientGuardsEmptyAnswers: a structurally invalid success response
// (no answer lists) yields ErrMalformedResponse, not a panic.
func TestClientGuardsEmptyAnswers(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		if _, err := br.ReadBytes('\n'); err != nil {
			return
		}
		fmt.Fprintln(conn, `{"answers":[]}`)
	}()

	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.Query(QuerySpec{Vector: []float64{0.1, 0.1, 0.1}, Kind: "knn", K: 1})
	if !errors.Is(err, ErrMalformedResponse) {
		t.Fatalf("empty answers returned %v, want ErrMalformedResponse", err)
	}
}

// TestShutdownWithConcurrentClients is the -race acceptance scenario:
// clients hammer the server while Shutdown drains it. Every client must
// end cleanly — either all queries succeeded or the connection was
// drained/refused — and Shutdown must return without force-closing a
// request mid-response.
func TestShutdownWithConcurrentClients(t *testing.T) {
	srv, addr := startServerCfg(t, ServerConfig{}, nil)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	started := make(chan struct{}, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			started <- struct{}{}
			for i := 0; i < 200; i++ {
				v := []float64{float64(g) / clients, float64(i%20) / 20, 0.5}
				if _, _, err := c.Query(QuerySpec{Vector: v, Kind: "knn", K: 3}); err != nil {
					// Acceptable ends: drained connection (EOF/reset) or an
					// explicit shutdown refusal. Anything else is a bug.
					var se *ServerError
					if errors.As(err, &se) && se.Code != CodeShutdown {
						errs <- err
					}
					return
				}
			}
		}(g)
	}
	for g := 0; g < clients; g++ {
		<-started
	}

	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("client error: %v", err)
	}

	// Post-shutdown connections are refused outright.
	if c, err := Dial(addr); err == nil {
		if err := c.Ping(); err == nil {
			t.Error("server still answering after Shutdown")
		}
		c.Close()
	}
}
