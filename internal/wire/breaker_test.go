package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestClassify pins the retry policy: which failures retry, which honor a
// retry-after hint, and which trip the circuit breaker.
func TestClassify(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		retryable  bool
		retryAfter time.Duration
		trips      bool
	}{
		{"transport", errors.New("dial tcp: connection refused"), true, 0, true},
		{"bad_request", &ServerError{Code: CodeBadRequest, Msg: "no"}, false, 0, false},
		{"shutting_down", &ServerError{Code: CodeShutdown, Msg: "bye"}, false, 0, true},
		{"overload", &ServerError{Code: CodeOverload, Msg: "busy", RetryAfter: 42 * time.Millisecond}, true, 42 * time.Millisecond, true},
		{"engine_error", &ServerError{Code: CodeEngine, Msg: "boom"}, true, 0, true},
	}
	for _, c := range cases {
		retryable, after, trips := classify(c.err)
		if retryable != c.retryable || after != c.retryAfter || trips != c.trips {
			t.Errorf("%s: classify = (%v, %v, %v), want (%v, %v, %v)",
				c.name, retryable, after, trips, c.retryable, c.retryAfter, c.trips)
		}
	}
}

// TestBreakerStateMachine drives one breaker through closed → open →
// half-open → closed and the failed-probe re-open.
func TestBreakerStateMachine(t *testing.T) {
	b := &breaker{threshold: 2, cooldown: 20 * time.Millisecond}
	if !b.allow() || b.currentState() != "closed" {
		t.Fatal("new breaker must be closed and allowing")
	}
	b.failure()
	if !b.allow() {
		t.Fatal("one failure below threshold must not trip")
	}
	b.failure()
	if b.allow() {
		t.Fatal("threshold consecutive failures must open the breaker")
	}
	if got := b.currentState(); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	time.Sleep(25 * time.Millisecond)
	if !b.allow() {
		t.Fatal("cooldown elapsed: one half-open probe must be admitted")
	}
	if b.allow() {
		t.Fatal("second call during the probe must be rejected")
	}
	b.failure() // probe failed: re-open immediately
	if b.allow() {
		t.Fatal("failed probe must re-open the breaker")
	}
	time.Sleep(25 * time.Millisecond)
	if !b.allow() {
		t.Fatal("second probe must be admitted after another cooldown")
	}
	b.success()
	if !b.allow() || b.currentState() != "closed" {
		t.Fatal("successful probe must close the breaker")
	}
	// A nil breaker (breakers disabled) is a pass-through.
	var nb *breaker
	if !nb.allow() {
		t.Fatal("nil breaker must allow")
	}
	nb.success()
	nb.failure()
}

// fakeServer speaks just enough of the line protocol to return a canned
// error response for every request, counting the requests it saw.
func fakeServer(t *testing.T, resp Response) (addr string, calls *atomic.Int64) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	calls = new(atomic.Int64)
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					if _, err := br.ReadBytes('\n'); err != nil {
						return
					}
					calls.Add(1)
					if err := json.NewEncoder(conn).Encode(resp); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return lis.Addr().String(), calls
}

// TestCoordinatorFailsFastOnBadRequest: a bad_request response must not be
// retried — the server already proved the request itself is the problem —
// and must not trip the breaker.
func TestCoordinatorFailsFastOnBadRequest(t *testing.T) {
	addr, calls := fakeServer(t, Response{Err: "nope", Code: CodeBadRequest})
	c, err := NewCoordinator(CoordinatorConfig{
		Addrs: []string{addr}, Timeout: 5 * time.Second, Retries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := c.MultiAll(coordSpecsDummy())
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeBadRequest {
		t.Fatalf("got %v, want bad_request ServerError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (fail fast)", got)
	}
	if stats.PerServer[0].Attempts != 1 {
		t.Fatalf("health attempts = %d, want 1", stats.PerServer[0].Attempts)
	}
	if got := c.BreakerState(0); got != "closed" {
		t.Fatalf("breaker = %q after bad_request, want closed", got)
	}
}

// TestCoordinatorHonorsRetryAfter: retries after an overload response wait
// at least the server's hint, and the hint surfaces on ServerError.
func TestCoordinatorHonorsRetryAfter(t *testing.T) {
	const hint = 60 * time.Millisecond
	addr, calls := fakeServer(t, Response{
		Err: "overloaded", Code: CodeOverload, RetryAfterMs: hint.Milliseconds(),
	})
	c, err := NewCoordinator(CoordinatorConfig{
		Addrs: []string{addr}, Timeout: 5 * time.Second, Retries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, err = c.MultiAll(coordSpecsDummy())
	elapsed := time.Since(start)
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeOverload {
		t.Fatalf("got %v, want overload ServerError", err)
	}
	if se.RetryAfter != hint {
		t.Fatalf("ServerError.RetryAfter = %v, want %v", se.RetryAfter, hint)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
	if elapsed < hint {
		t.Fatalf("retried after %v, before the server's %v retry-after hint", elapsed, hint)
	}
}

// TestCoordinatorBreakerTripsAndProbes: consecutive failures against a dead
// server open its breaker (later operations fail fast with ErrCircuitOpen,
// zero attempts), and after the cooldown one probe is admitted again.
func TestCoordinatorBreakerTripsAndProbes(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close() // nothing listens: every dial fails fast

	const cooldown = 80 * time.Millisecond
	c, err := NewCoordinator(CoordinatorConfig{
		Addrs: []string{addr}, Timeout: time.Second, Retries: 1,
		BreakerThreshold: 2, BreakerCooldown: cooldown,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := coordSpecsDummy()
	// Two failed attempts (1 try + 1 retry) reach the threshold.
	if _, stats, err := c.MultiAll(specs); err == nil {
		t.Fatal("dead server: want error")
	} else if stats.PerServer[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", stats.PerServer[0].Attempts)
	}
	if got := c.BreakerState(0); got != "open" {
		t.Fatalf("breaker = %q after threshold failures, want open", got)
	}
	// Open breaker: the next operation fails fast without dialing.
	_, stats, err := c.MultiAll(specs)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("got %v, want ErrCircuitOpen", err)
	}
	if stats.PerServer[0].Attempts != 0 {
		t.Fatalf("attempts = %d while open, want 0", stats.PerServer[0].Attempts)
	}
	// After the cooldown a probe is admitted (and fails, re-opening).
	time.Sleep(cooldown + 20*time.Millisecond)
	if _, stats, err := c.MultiAll(specs); err == nil {
		t.Fatal("dead server probe: want error")
	} else if stats.PerServer[0].Attempts == 0 {
		t.Fatal("cooldown elapsed: want a probe attempt")
	}
	if got := c.BreakerState(0); got != "open" {
		t.Fatalf("breaker = %q after failed probe, want open", got)
	}
}

// TestCoordinatorBreakerRecovers: a breaker opened by a dead server closes
// again once the server comes back and the probe succeeds.
func TestCoordinatorBreakerRecovers(t *testing.T) {
	addrs, items := startPartitionedServers(t, 1, nil, nil)
	specs := coordSpecs(items)
	want := refAnswers(t, items, specs)

	const cooldown = 50 * time.Millisecond
	c, err := NewCoordinator(CoordinatorConfig{
		Addrs: addrs, Timeout: 5 * time.Second,
		BreakerThreshold: 1, BreakerCooldown: cooldown,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Trip the breaker by hand (simulating a just-recovered server).
	c.breakers[0].failure()
	if _, _, err := c.MultiAll(specs); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("got %v, want ErrCircuitOpen while open", err)
	}
	time.Sleep(cooldown + 20*time.Millisecond)
	got, stats, err := c.MultiAll(specs)
	if err != nil {
		t.Fatalf("probe against a live server: %v", err)
	}
	if !sameCoordAnswers(got, want) {
		t.Fatal("answers after breaker recovery differ from reference")
	}
	if stats.Degraded {
		t.Fatal("recovered cluster must not report degraded")
	}
	if got := c.BreakerState(0); got != "closed" {
		t.Fatalf("breaker = %q after successful probe, want closed", got)
	}
}

// coordSpecsDummy is a minimal valid batch for servers that never answer.
func coordSpecsDummy() []QuerySpec {
	return []QuerySpec{{ID: 1, Vector: []float64{0.5, 0.5, 0.5}, Kind: "knn", K: 2}}
}
