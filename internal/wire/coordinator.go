package wire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"metricdb/internal/msq"
	"metricdb/internal/obs"
	"metricdb/internal/query"
	"metricdb/internal/store"
)

// Coordinator is the cross-process counterpart of parallel.Cluster: it fans
// a batch out to a set of wire servers (one partition each), merges the
// per-server answers by the union-merge property, and aggregates stats —
// including the per-server health latency the stats op reports. When its
// tracer retains distributed spans, every operation records a root span
// with one child span per server attempt (retries as sibling attempt
// spans), propagates the span context in Request.Trace, and stitches the
// servers' returned span subtrees into one cross-server trace; the
// servers' phase-histogram deltas are merged into per-server tracers so a
// coordinator-side registry scrape covers the cluster.
//
// Connections are per attempt: the line protocol cannot retract a request
// already on the wire, so a fresh dial per attempt keeps a timed-out or
// failed attempt from poisoning later ones.
type Coordinator struct {
	cfg      CoordinatorConfig
	breakers []*breaker // one per address; nil slice when disabled
}

// CoordinatorConfig tunes a Coordinator.
type CoordinatorConfig struct {
	// Addrs lists the servers, one partition each.
	Addrs []string
	// Timeout bounds one server attempt (dial + round trip); zero means
	// no per-attempt bound beyond the operation context.
	Timeout time.Duration
	// Retries is the number of additional attempts after a failed or
	// timed-out server call. Retries apply only to failures worth
	// retrying: bad_request and shutting_down responses fail fast, and an
	// overload response waits at least the server's retry-after hint
	// before the next attempt instead of hammering a shedding server.
	Retries int
	// Backoff is the wait before the first retry, doubling on each
	// subsequent one.
	Backoff time.Duration
	// BreakerThreshold is the number of consecutive failed attempts that
	// trips a server's circuit breaker (calls then fail fast with
	// ErrCircuitOpen until the cooldown admits a half-open probe). Zero
	// selects DefaultBreakerThreshold; negative disables the breakers.
	// bad_request responses never trip a breaker — they prove the server
	// is answering.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before one
	// probe call is admitted. Zero selects DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// Degrade allows partial results: servers that still fail after all
	// retries are dropped from the merge and the stats report coverage
	// < 1 instead of the operation failing.
	Degrade bool
	// Tracer, when non-nil, records the coordinator-side spans (root +
	// per-attempt server_call children, plus the server_call phase
	// histogram) and receives the servers' imported span subtrees.
	Tracer *obs.Tracer
	// ServerTracers, when non-empty, must hold one tracer per address;
	// server i's returned phase-histogram deltas are merged into
	// ServerTracers[i], keeping per-server phase costs separable for a
	// labelled registry exposition (obs.Registry.AttachTracer). Empty
	// merges the deltas into Tracer instead.
	ServerTracers []*obs.Tracer
}

// NewCoordinator validates the configuration.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("wire: coordinator needs at least one server address")
	}
	if len(cfg.ServerTracers) != 0 && len(cfg.ServerTracers) != len(cfg.Addrs) {
		return nil, fmt.Errorf("wire: ServerTracers must hold one tracer per address (%d), got %d",
			len(cfg.Addrs), len(cfg.ServerTracers))
	}
	if cfg.Retries < 0 {
		return nil, fmt.Errorf("wire: negative retries")
	}
	c := &Coordinator{cfg: cfg}
	threshold := cfg.BreakerThreshold
	if threshold == 0 {
		threshold = DefaultBreakerThreshold
	}
	if threshold > 0 {
		cooldown := cfg.BreakerCooldown
		if cooldown == 0 {
			cooldown = DefaultBreakerCooldown
		}
		c.breakers = make([]*breaker, len(cfg.Addrs))
		for i := range c.breakers {
			c.breakers[i] = &breaker{threshold: threshold, cooldown: cooldown}
		}
	}
	return c, nil
}

// BreakerState returns server i's circuit-breaker state ("closed", "open"
// or "half-open"; "closed" when breakers are disabled or i is out of
// range). Intended for metrics exposition and tests.
func (c *Coordinator) BreakerState(i int) string {
	if i < 0 || i >= len(c.breakers) {
		return breakerClosed.String()
	}
	return c.breakers[i].currentState()
}

// Servers returns the number of servers the coordinator fans out to.
func (c *Coordinator) Servers() int { return len(c.cfg.Addrs) }

// RegisterMetrics attaches the per-server tracers to reg under server="i"
// labels, so the phase deltas merged from the servers' responses appear in
// one exposition (the coordinator metrics aggregation).
func (c *Coordinator) RegisterMetrics(reg *obs.Registry) {
	for i, tr := range c.cfg.ServerTracers {
		if tr != nil {
			reg.AttachTracer(fmt.Sprintf("server=%q", fmt.Sprint(i)), tr)
		}
	}
}

// serverResult is one server's final outcome within an operation.
type serverResult struct {
	resp   Response
	health ServerHealth
	err    error
}

// MultiAll fans the batch out to every server, evaluates it to completion,
// and merges the answers.
func (c *Coordinator) MultiAll(qs []QuerySpec) ([][]Answer, Stats, error) {
	return c.MultiAllContext(context.Background(), qs)
}

// MultiAllContext is MultiAll bounded by ctx. The returned Stats sum the
// servers' work and carry per-server health (attempts, final error,
// final-attempt latency) plus the degraded-coverage state when
// Config.Degrade admits partial results.
func (c *Coordinator) MultiAllContext(ctx context.Context, qs []QuerySpec) ([][]Answer, Stats, error) {
	results, root := c.fanOut(ctx, Request{Op: OpMultiAll, Queries: qs})
	defer root.End()

	stats, firstErr, firstIdx, covered := c.aggregate(results)
	if firstErr != nil && (!c.cfg.Degrade || covered == 0) {
		root.SetErr(firstErr.Error())
		return nil, stats, fmt.Errorf("wire: coordinator: server %d: %w", firstIdx, firstErr)
	}

	merged, err := mergeAnswers(qs, results)
	if err != nil {
		root.SetErr(err.Error())
		return nil, stats, err
	}
	return merged, stats, nil
}

// fanOut runs one request on every server concurrently with per-server
// retry/backoff/timeout, under a root distributed span. Each attempt dials
// a fresh connection, carries the attempt span's context in Request.Trace,
// and imports the server's returned span subtree; phase deltas are merged
// into the per-server tracers.
func (c *Coordinator) fanOut(ctx context.Context, req Request) ([]serverResult, *obs.ActiveSpan) {
	root := c.cfg.Tracer.StartSpan("coordinator:" + string(req.Op))
	results := make([]serverResult, len(c.cfg.Addrs))

	var wg sync.WaitGroup
	for i, addr := range c.cfg.Addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			results[i] = c.callWithRetry(ctx, i, addr, req, root)
		}(i, addr)
	}
	wg.Wait()
	return results, root
}

// callWithRetry runs one server's attempts for one operation: per-attempt
// span and latency accounting, the error-code-aware retry policy (see
// classify), and the per-server circuit breaker.
func (c *Coordinator) callWithRetry(ctx context.Context, i int, addr string, req Request, root *obs.ActiveSpan) serverResult {
	var br *breaker
	if i < len(c.breakers) {
		br = c.breakers[i]
	}
	attempts := 0
	backoff := c.cfg.Backoff
	var retryAfter time.Duration
	var lastErr error
	var lastLatency time.Duration
	for try := 0; try <= c.cfg.Retries; try++ {
		if try > 0 {
			// An overloaded server's retry-after hint floors the backoff:
			// retrying sooner than the server asked just gets shed again.
			wait := backoff
			if retryAfter > wait {
				wait = retryAfter
			}
			if wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
				}
			}
			backoff *= 2
			if err := ctx.Err(); err != nil {
				lastErr = err
				break
			}
		}
		if !br.allow() {
			lastErr = ErrCircuitOpen
			break
		}
		attempts++
		span := root.StartChild("server_call")
		span.SetServer(fmt.Sprintf("srv%d", i))
		span.SetAttempt(attempts)
		start := time.Now()
		resp, err := c.callServer(ctx, addr, req, span)
		lastLatency = time.Since(start)
		c.cfg.Tracer.Observe(obs.PhaseServerCall, lastLatency)
		if err != nil {
			span.SetErr(err.Error())
		}
		span.End()
		if err == nil {
			br.success()
			c.absorbTrace(i, resp.Trace)
			return serverResult{
				resp:   resp,
				health: ServerHealth{OK: true, Attempts: attempts, LatencyNs: int64(lastLatency)},
			}
		}
		lastErr = err
		retryable, hint, trips := classify(err)
		if trips {
			br.failure()
		}
		retryAfter = hint
		if !retryable || ctx.Err() != nil {
			break // client mistake, deliberate refusal, or canceled context
		}
	}
	return serverResult{
		health: ServerHealth{Attempts: attempts, Err: lastErr.Error(), LatencyNs: int64(lastLatency)},
		err:    lastErr,
	}
}

// classify maps one failed attempt onto the retry policy: whether another
// attempt can help, how long the server asked us to wait first, and
// whether the failure indicates server trouble (counts toward the circuit
// breaker). Transport errors (dial, timeout, broken connection) are
// retryable server trouble. Of the taxonomy codes, bad_request is the
// caller's own mistake — never retried, never trips the breaker;
// shutting_down is deliberate and final for this server — not retried;
// overload is retryable but only after the server's retry-after hint.
func classify(err error) (retryable bool, retryAfter time.Duration, trips bool) {
	var se *ServerError
	if !errors.As(err, &se) {
		return true, 0, true
	}
	switch se.Code {
	case CodeBadRequest:
		return false, 0, false
	case CodeShutdown:
		return false, 0, true
	case CodeOverload:
		return true, se.RetryAfter, true
	default:
		return true, 0, true
	}
}

// callServer runs one attempt: fresh dial, request with the attempt span's
// trace context, one round trip, close.
func (c *Coordinator) callServer(ctx context.Context, addr string, req Request, span *obs.ActiveSpan) (Response, error) {
	attemptCtx := ctx
	if c.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		attemptCtx, cancel = context.WithTimeout(ctx, c.cfg.Timeout)
		defer cancel()
	}
	client, err := Dial(addr)
	if err != nil {
		return Response{}, err
	}
	defer client.Close()
	if deadline, ok := attemptCtx.Deadline(); ok {
		client.conn.SetDeadline(deadline) //nolint:errcheck
	}
	if sc := span.Context(); sc.Valid() {
		r := req // shallow copy; Queries is shared read-only
		r.Trace = &sc
		req = r
	}
	return client.DoContext(attemptCtx, req)
}

// absorbTrace stitches a server's span subtree into the coordinator's
// tracer and merges its phase deltas into the per-server tracer (or the
// coordinator tracer when no per-server tracers are configured).
func (c *Coordinator) absorbTrace(i int, info *TraceInfo) {
	if info == nil {
		return
	}
	c.cfg.Tracer.ImportSpans(info.Spans)
	target := c.cfg.Tracer
	if i < len(c.cfg.ServerTracers) && c.cfg.ServerTracers[i] != nil {
		target = c.cfg.ServerTracers[i]
	}
	if target == nil || len(info.Phases) == 0 {
		return
	}
	names := obs.PhaseNames()
	for p, name := range names {
		if snap, ok := info.Phases[name]; ok {
			target.MergeSnapshot(obs.Phase(p), snap)
		}
	}
}

// aggregate sums the servers' stats, collects per-server health, and
// derives the coverage state.
func (c *Coordinator) aggregate(results []serverResult) (stats Stats, firstErr error, firstIdx, covered int) {
	stats.Coverage = 1
	stats.PerServer = make([]ServerHealth, len(results))
	firstIdx = -1
	for i, r := range results {
		stats.PerServer[i] = r.health
		if r.err != nil {
			if firstErr == nil {
				firstErr, firstIdx = r.err, i
			}
			continue
		}
		covered++
		st := r.resp.Stats
		stats.Queries += st.Queries
		stats.PagesRead += st.PagesRead
		stats.DistCalcs += st.DistCalcs
		stats.MatrixDistCalcs += st.MatrixDistCalcs
		stats.AvoidTries += st.AvoidTries
		stats.Avoided += st.Avoided
		stats.PartialAbandoned += st.PartialAbandoned
	}
	if len(results) > 0 {
		stats.Coverage = float64(covered) / float64(len(results))
		stats.Degraded = covered < len(results)
	}
	return stats, firstErr, firstIdx, covered
}

// mergeAnswers merges the surviving servers' per-query answer lists via
// the union-merge property: every server returns (at least) its local top
// answers, so feeding them all through one answer list per query yields
// the global result (a sound subset under degradation).
func mergeAnswers(qs []QuerySpec, results []serverResult) ([][]Answer, error) {
	merged := make([][]Answer, len(qs))
	for qi, spec := range qs {
		t, err := spec.toType()
		if err != nil {
			return nil, fmt.Errorf("wire: coordinator: %w", err)
		}
		l := query.NewAnswerList(t)
		for si := range results {
			if results[si].err != nil {
				continue
			}
			if len(results[si].resp.Answers) != len(qs) {
				return nil, fmt.Errorf("%w: server %d returned %d answer lists for %d queries",
					ErrMalformedResponse, si, len(results[si].resp.Answers), len(qs))
			}
			for _, a := range results[si].resp.Answers[qi] {
				l.Consider(store.ItemID(a.ID), a.Dist)
			}
		}
		merged[qi] = toWireAnswers(l.Answers())
	}
	return merged, nil
}

// Explain fans an explain request out to every server and returns the
// per-server profiles (indexed by server; failed servers hold nil). The
// aggregated Stats carry per-server health like MultiAllContext.
func (c *Coordinator) Explain(ctx context.Context, qs []QuerySpec) ([]*msq.Explain, Stats, error) {
	results, root := c.fanOut(ctx, Request{Op: OpExplain, Queries: qs})
	defer root.End()
	stats, firstErr, firstIdx, covered := c.aggregate(results)
	if firstErr != nil && (!c.cfg.Degrade || covered == 0) {
		root.SetErr(firstErr.Error())
		return nil, stats, fmt.Errorf("wire: coordinator: server %d: %w", firstIdx, firstErr)
	}
	out := make([]*msq.Explain, len(results))
	for i, r := range results {
		if r.err == nil {
			out[i] = r.resp.Explain
		}
	}
	return out, stats, nil
}
