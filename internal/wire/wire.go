// Package wire provides the paper's closing recommendation — "multiple
// similarity queries should be provided as a basic DBMS operation" — as an
// actual database operation: a line-delimited JSON protocol over TCP with a
// server wrapping a metric database and a matching client.
//
// Each connection owns one multi-query session, so partial answers and the
// query-distance matrix are buffered across requests exactly like a local
// Batch: a client can stream an ExploreNeighborhoods workload and get the
// incremental first-query-complete semantics of Definition 4 over the wire.
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/vec"
)

// Op names a request operation.
type Op string

// Supported operations.
const (
	// OpQuery evaluates one similarity query completely.
	OpQuery Op = "query"
	// OpMulti evaluates a multiple similarity query incrementally: the
	// first query's answers are complete, the rest partial (Definition 4).
	OpMulti Op = "multi"
	// OpMultiAll evaluates a batch to completion.
	OpMultiAll Op = "multi_all"
	// OpStats returns the session's accumulated statistics.
	OpStats Op = "stats"
)

// QuerySpec is one query in wire form.
type QuerySpec struct {
	ID     uint64    `json:"id"`
	Vector []float64 `json:"vector"`
	// Kind is "range", "knn" or "bounded-knn".
	Kind string `json:"kind"`
	// Range is ε for range and bounded-knn kinds.
	Range float64 `json:"range,omitempty"`
	// K is the cardinality for knn kinds.
	K int `json:"k,omitempty"`
}

// toType converts the wire kind to a query type.
func (q QuerySpec) toType() (query.Type, error) {
	switch q.Kind {
	case "range":
		return query.NewRange(q.Range), nil
	case "knn":
		return query.NewKNN(q.K), nil
	case "bounded-knn":
		return query.NewBoundedKNN(q.K, q.Range), nil
	default:
		return query.Type{}, fmt.Errorf("wire: unknown query kind %q", q.Kind)
	}
}

// Request is one client message.
type Request struct {
	Op      Op          `json:"op"`
	Queries []QuerySpec `json:"queries,omitempty"`
}

// Answer is one result in wire form.
type Answer struct {
	ID   uint64  `json:"id"`
	Dist float64 `json:"dist"`
}

// Stats mirrors the processing statistics over the wire.
type Stats struct {
	Queries         int64 `json:"queries"`
	PagesRead       int64 `json:"pages_read"`
	DistCalcs       int64 `json:"dist_calcs"`
	MatrixDistCalcs int64 `json:"matrix_dist_calcs"`
	AvoidTries      int64 `json:"avoid_tries"`
	Avoided         int64 `json:"avoided"`
}

func fromStats(s msq.Stats) Stats {
	return Stats{
		Queries:         s.Queries,
		PagesRead:       s.PagesRead,
		DistCalcs:       s.DistCalcs,
		MatrixDistCalcs: s.MatrixDistCalcs,
		AvoidTries:      s.AvoidTries,
		Avoided:         s.Avoided,
	}
}

// Response is one server message.
type Response struct {
	// Answers holds one result list per request query (a single list for
	// OpQuery).
	Answers [][]Answer `json:"answers,omitempty"`
	Stats   Stats      `json:"stats"`
	Err     string     `json:"err,omitempty"`
}

// Server serves similarity queries over a metric database. Each accepted
// connection gets its own multi-query session; connections are handled
// concurrently (the processor's engine and counting metric are safe for
// concurrent readers).
type Server struct {
	proc *msq.Processor

	mu     sync.Mutex
	closed bool
	lis    net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer wraps a processor.
func NewServer(proc *msq.Processor) (*Server, error) {
	if proc == nil {
		return nil, fmt.Errorf("wire: nil processor")
	}
	return &Server{proc: proc, conns: make(map[net.Conn]struct{})}, nil
}

// Serve accepts connections on lis until Close is called. It always
// returns a non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}

// handle runs the per-connection request loop with a dedicated session.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()

	session := s.proc.NewSession()
	var total msq.Stats
	dec := json.NewDecoder(bufio.NewReader(conn))
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)

	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken connection: drop the session
		}
		resp := s.dispatch(session, &total, req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch executes one request against the connection's session.
func (s *Server) dispatch(session *msq.Session, total *msq.Stats, req Request) Response {
	fail := func(err error) Response {
		return Response{Err: err.Error(), Stats: fromStats(*total)}
	}
	switch req.Op {
	case OpQuery:
		if len(req.Queries) != 1 {
			return fail(fmt.Errorf("wire: op %q needs exactly one query, got %d", req.Op, len(req.Queries)))
		}
		t, err := req.Queries[0].toType()
		if err != nil {
			return fail(err)
		}
		answers, st, err := s.proc.Single(vec.Vector(req.Queries[0].Vector), t)
		if err != nil {
			return fail(err)
		}
		*total = total.Add(st)
		return Response{Answers: [][]Answer{toWireAnswers(answers.Answers())}, Stats: fromStats(st)}
	case OpMulti, OpMultiAll:
		batch := make([]msq.Query, len(req.Queries))
		for i, q := range req.Queries {
			t, err := q.toType()
			if err != nil {
				return fail(err)
			}
			batch[i] = msq.Query{ID: q.ID, Vec: vec.Vector(q.Vector), Type: t}
		}
		run := session.MultiQuery
		if req.Op == OpMultiAll {
			run = session.MultiQueryAll
		}
		lists, st, err := run(batch)
		if err != nil {
			return fail(err)
		}
		*total = total.Add(st)
		out := make([][]Answer, len(lists))
		for i, l := range lists {
			out[i] = toWireAnswers(l.Answers())
		}
		return Response{Answers: out, Stats: fromStats(st)}
	case OpStats:
		return Response{Stats: fromStats(*total)}
	default:
		return fail(fmt.Errorf("wire: unknown op %q", req.Op))
	}
}

func toWireAnswers(as []query.Answer) []Answer {
	out := make([]Answer, len(as))
	for i, a := range as {
		out[i] = Answer{ID: uint64(a.ID), Dist: a.Dist}
	}
	return out
}

// Client talks to a Server over one connection (= one server-side session).
// Not safe for concurrent use; open one client per goroutine.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	w    *bufio.Writer
	enc  *json.Encoder
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	w := bufio.NewWriter(conn)
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		w:    w,
		enc:  json.NewEncoder(w),
	}, nil
}

// Close closes the connection, ending the server-side session.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads one response.
func (c *Client) roundTrip(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("wire: send: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return Response{}, fmt.Errorf("wire: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("wire: receive: %w", err)
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("wire: server: %s", resp.Err)
	}
	return resp, nil
}

// Query evaluates a single similarity query.
func (c *Client) Query(q QuerySpec) ([]Answer, Stats, error) {
	resp, err := c.roundTrip(Request{Op: OpQuery, Queries: []QuerySpec{q}})
	if err != nil {
		return nil, resp.Stats, err
	}
	return resp.Answers[0], resp.Stats, nil
}

// Multi evaluates a multiple similarity query incrementally (Definition 4).
func (c *Client) Multi(qs []QuerySpec) ([][]Answer, Stats, error) {
	resp, err := c.roundTrip(Request{Op: OpMulti, Queries: qs})
	return resp.Answers, resp.Stats, err
}

// MultiAll evaluates a batch to completion.
func (c *Client) MultiAll(qs []QuerySpec) ([][]Answer, Stats, error) {
	resp, err := c.roundTrip(Request{Op: OpMultiAll, Queries: qs})
	return resp.Answers, resp.Stats, err
}

// SessionStats returns the connection's accumulated statistics.
func (c *Client) SessionStats() (Stats, error) {
	resp, err := c.roundTrip(Request{Op: OpStats})
	return resp.Stats, err
}
