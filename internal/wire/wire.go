// Package wire provides the paper's closing recommendation — "multiple
// similarity queries should be provided as a basic DBMS operation" — as an
// actual database operation: a line-delimited JSON protocol over TCP with a
// server wrapping a metric database and a matching client.
//
// Each connection owns one multi-query session, so partial answers and the
// query-distance matrix are buffered across requests exactly like a local
// Batch: a client can stream an ExploreNeighborhoods workload and get the
// incremental first-query-complete semantics of Definition 4 over the wire.
package wire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"metricdb/internal/admit"
	"metricdb/internal/msq"
	"metricdb/internal/obs"
	"metricdb/internal/query"
	"metricdb/internal/vec"
)

// Op names a request operation.
type Op string

// Supported operations.
const (
	// OpQuery evaluates one similarity query completely.
	OpQuery Op = "query"
	// OpMulti evaluates a multiple similarity query incrementally: the
	// first query's answers are complete, the rest partial (Definition 4).
	OpMulti Op = "multi"
	// OpMultiAll evaluates a batch to completion.
	OpMultiAll Op = "multi_all"
	// OpStats returns the session's accumulated statistics.
	OpStats Op = "stats"
	// OpPing is a liveness probe; the server answers with an empty
	// success response.
	OpPing Op = "ping"
	// OpExplain evaluates a batch to completion like OpMultiAll and
	// returns per-query EXPLAIN profiles (pages visited, lemma breakdown,
	// kernel abandons, buffer hit ratio, per-phase wall time) instead of
	// the answers. The answers land in the session's buffers as usual.
	OpExplain Op = "explain"
)

// Error taxonomy: every error response carries one of these codes so
// clients can tell their own mistakes from server trouble.
const (
	// CodeBadRequest marks client errors: malformed JSON, unknown ops,
	// invalid query specifications, oversized requests.
	CodeBadRequest = "bad_request"
	// CodeEngine marks server-side query-processing failures (e.g. the
	// storage layer returned an error).
	CodeEngine = "engine_error"
	// CodeOverload marks requests refused because the server is at its
	// connection limit, or shed by the admission controller before any
	// I/O was spent on them. Overload responses carry a retry-after hint
	// (Response.RetryAfterMs) when the server can estimate one; clients
	// must not retry before it elapses.
	CodeOverload = "overload"
	// CodeShutdown marks responses sent while the server is draining.
	// Not retryable against the same server.
	CodeShutdown = "shutting_down"
)

// QuerySpec is one query in wire form.
type QuerySpec struct {
	ID     uint64    `json:"id"`
	Vector []float64 `json:"vector"`
	// Kind is "range", "knn" or "bounded-knn".
	Kind string `json:"kind"`
	// Range is ε for range and bounded-knn kinds.
	Range float64 `json:"range,omitempty"`
	// K is the cardinality for knn kinds.
	K int `json:"k,omitempty"`
}

// toType converts the wire kind to a query type.
func (q QuerySpec) toType() (query.Type, error) {
	switch q.Kind {
	case "range":
		return query.NewRange(q.Range), nil
	case "knn":
		return query.NewKNN(q.K), nil
	case "bounded-knn":
		return query.NewBoundedKNN(q.K, q.Range), nil
	default:
		return query.Type{}, fmt.Errorf("wire: unknown query kind %q", q.Kind)
	}
}

// Request is one client message.
type Request struct {
	Op      Op          `json:"op"`
	Queries []QuerySpec `json:"queries,omitempty"`
	// DeadlineMs is the caller's latency budget for this request in
	// milliseconds. On servers with admission control a single query
	// ("query" op) that cannot be admitted within the budget is shed
	// early with an overload error; zero applies the server's default
	// SLO. Other ops currently ignore it.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Trace, when non-nil, is the caller's distributed-trace position (a
	// coordinator's server_call span). A trace-enabled server then runs
	// the request under a child span and returns its span subtree and
	// phase-histogram deltas in Response.Trace, so the coordinator can
	// stitch one cross-server trace. Absent on plain requests.
	Trace *obs.SpanContext `json:"trace,omitempty"`
}

// TraceInfo is the server's contribution to a distributed trace, returned
// when the request carried a Trace context and the server has a
// trace-enabled tracer.
type TraceInfo struct {
	// Spans is the server-side span subtree of this request (the request
	// span; wall-clock timestamps, so the coordinator can place it on the
	// shared timeline).
	Spans []obs.DistSpan `json:"spans,omitempty"`
	// Phases maps phase names to the server's phase-histogram deltas over
	// the request window (HistSnapshot.Sub). The server tracer is shared
	// across connections, so under concurrent load a delta can include
	// observations of overlapping requests; it is exact when requests do
	// not overlap.
	Phases map[string]obs.HistSnapshot `json:"phases,omitempty"`
}

// Answer is one result in wire form.
type Answer struct {
	ID   uint64  `json:"id"`
	Dist float64 `json:"dist"`
}

// Stats mirrors the processing statistics over the wire.
type Stats struct {
	Queries         int64 `json:"queries"`
	PagesRead       int64 `json:"pages_read"`
	DistCalcs       int64 `json:"dist_calcs"`
	MatrixDistCalcs int64 `json:"matrix_dist_calcs"`
	AvoidTries      int64 `json:"avoid_tries"`
	Avoided         int64 `json:"avoided"`
	// PartialAbandoned counts bounded-kernel distance calculations that
	// stopped mid-vector because the partial result already exceeded the
	// query's pruning bound (a subset of DistCalcs).
	PartialAbandoned int64 `json:"partial_abandoned"`
	// PivotDistCalcs counts query-to-pivot setup distances of the
	// pivot-filtering engines — the rest of the distance-work partition
	// next to DistCalcs. Zero for engines without a pivot phase.
	PivotDistCalcs int64 `json:"pivot_dist_calcs,omitempty"`
	// QuantFiltered counts (query, item) pairs a lossy filter excluded
	// without any distance calculation (quant layout, VA-file bounds).
	QuantFiltered int64 `json:"quant_filtered,omitempty"`
	// Degraded and Coverage expose the degraded-result contract when the
	// backing processor runs over a partitioned execution; a single-node
	// server always reports Degraded=false, Coverage=1.
	Degraded bool    `json:"degraded,omitempty"`
	Coverage float64 `json:"coverage"`
	// PerServer carries per-server health — including the final-attempt
	// latency — when the stats describe a coordinated multi-server
	// operation. Single-node servers leave it empty.
	PerServer []ServerHealth `json:"per_server,omitempty"`
	// BatchWidth is the number of single queries the admission
	// controller's batch former executed together with this one (1 = the
	// request ran alone). Zero on paths that do not batch across callers.
	// The other counters of an admitted response describe the *block*,
	// amortized evidence of the sharing, not per-query attribution.
	BatchWidth int `json:"batch_width,omitempty"`
	// ServiceUs is the server-measured in-system time of an admitted
	// request in microseconds: submission to answer ready, covering the
	// admission queue wait, batch linger and block execution. This is the
	// latency the admission controller's SLO governs — unlike the
	// client-observed round trip it excludes network transit and
	// scheduling delay on either side. Zero on paths without admission
	// control.
	ServiceUs int64 `json:"service_us,omitempty"`
}

// ServerHealth mirrors parallel.ServerHealth over the wire: one server's
// fate during a coordinated operation, latency included.
type ServerHealth struct {
	OK       bool   `json:"ok"`
	Attempts int    `json:"attempts"`
	Err      string `json:"err,omitempty"`
	// LatencyNs is the wall time of the server's final attempt in
	// nanoseconds (backoff waits excluded).
	LatencyNs int64 `json:"latency_ns"`
}

func fromStats(s msq.Stats) Stats {
	return Stats{
		Queries:          s.Queries,
		PagesRead:        s.PagesRead,
		DistCalcs:        s.DistCalcs,
		MatrixDistCalcs:  s.MatrixDistCalcs,
		AvoidTries:       s.AvoidTries,
		Avoided:          s.Avoided,
		PartialAbandoned: s.PartialAbandoned,
		PivotDistCalcs:   s.PivotDistCalcs,
		QuantFiltered:    s.QuantFiltered,
		Degraded:         s.Degraded,
		Coverage:         s.Coverage(),
	}
}

// Response is one server message.
type Response struct {
	// Answers holds one result list per request query (a single list for
	// OpQuery).
	Answers [][]Answer `json:"answers,omitempty"`
	Stats   Stats      `json:"stats"`
	// Explain holds the per-query profiles for OpExplain responses.
	Explain *msq.Explain `json:"explain,omitempty"`
	// Trace holds the server's span subtree and phase deltas when the
	// request carried a trace context (see TraceInfo).
	Trace *TraceInfo `json:"trace,omitempty"`
	Err   string     `json:"err,omitempty"`
	// Code classifies a non-empty Err (CodeBadRequest, CodeEngine,
	// CodeOverload, CodeShutdown).
	Code string `json:"code,omitempty"`
	// RetryAfterMs hints, on overload errors, how long the caller should
	// wait before retrying (an estimate of the backlog drain time).
	// Absent when the server has no estimate or the error is final.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// DefaultMaxRequestBytes caps one request line when ServerConfig leaves
// MaxRequestBytes zero.
const DefaultMaxRequestBytes = 1 << 20

// ServerConfig tunes the server's robustness knobs. The zero value gives
// a server with the default request-size cap and everything else
// unlimited.
type ServerConfig struct {
	// ReadTimeout bounds how long the server waits for the next request
	// on an idle connection; zero means forever.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response; zero means forever.
	WriteTimeout time.Duration
	// MaxRequestBytes caps the length of one request line; a longer line
	// is answered with a bad_request error and the connection is closed.
	// Zero selects DefaultMaxRequestBytes.
	MaxRequestBytes int
	// MaxConns caps concurrently served connections; further connections
	// are sent an overload error and closed. Zero means unlimited.
	MaxConns int
	// Logf, when non-nil, receives per-connection lifecycle lines
	// (session statistics at disconnect, rejected connections).
	Logf func(format string, args ...any)
	// Concurrency overrides the processor's intra-server pipeline width
	// for the sessions this server creates: the number of goroutines
	// evaluating each data page per query batch. Zero keeps the
	// processor's own setting; 1 pins the sequential path. Answers are
	// bit-identical at every width.
	Concurrency int
	// Tracer, when non-nil, receives wire_decode and wire_encode spans for
	// every request and response this server handles. It does not replace
	// the processor's tracer — install that separately with
	// msq.Processor.WithTracer (typically the same tracer). Nil disables
	// wire-level tracing at no cost.
	Tracer *obs.Tracer
	// Admit, when non-nil, routes single-query ("query" op) requests
	// through an admission controller that forms cross-caller batches and
	// sheds early under overload (see internal/admit). The controller's
	// Tracer defaults to this config's Tracer when unset. Batched ops
	// ("multi", "multi_all", "explain") keep their per-connection session
	// path — they already are batches.
	Admit *admit.Config
}

// Server serves similarity queries over a metric database. Each accepted
// connection gets its own multi-query session; connections are handled
// concurrently (the processor's engine and counting metric are safe for
// concurrent readers).
type Server struct {
	proc  *msq.Processor
	cfg   ServerConfig
	admit *admit.Controller

	mu       sync.Mutex
	closed   bool
	draining bool
	lis      net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup

	// Lifetime counters for metrics exposition: requests handled, error
	// responses sent (by the taxonomy: client mistakes vs server trouble),
	// connections refused before admission (overload / shutdown), and
	// requests shed by the admission controller.
	requests    atomic.Int64
	badRequests atomic.Int64
	engineErrs  atomic.Int64
	refused     atomic.Int64
	sheds       atomic.Int64
}

// ConnCount returns the number of currently served connections.
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// RequestCount returns the number of requests handled since start.
func (s *Server) RequestCount() int64 { return s.requests.Load() }

// BadRequestCount returns the number of bad_request error responses sent.
func (s *Server) BadRequestCount() int64 { return s.badRequests.Load() }

// EngineErrorCount returns the number of engine_error responses sent.
func (s *Server) EngineErrorCount() int64 { return s.engineErrs.Load() }

// RefusedCount returns the number of connections refused before admission
// (overload or shutdown).
func (s *Server) RefusedCount() int64 { return s.refused.Load() }

// ShedCount returns the number of requests shed by the admission
// controller (always zero when ServerConfig.Admit is nil).
func (s *Server) ShedCount() int64 { return s.sheds.Load() }

// Admitter returns the server's admission controller, or nil when
// admission control is not configured. Intended for metrics exposition
// (queue depth, shed counts, achieved batch width) and tests.
func (s *Server) Admitter() *admit.Controller { return s.admit }

// NewServer wraps a processor with the default configuration.
func NewServer(proc *msq.Processor) (*Server, error) {
	return NewServerWithConfig(proc, ServerConfig{})
}

// NewServerWithConfig wraps a processor with explicit robustness knobs.
func NewServerWithConfig(proc *msq.Processor, cfg ServerConfig) (*Server, error) {
	if proc == nil {
		return nil, fmt.Errorf("wire: nil processor")
	}
	if cfg.MaxRequestBytes == 0 {
		cfg.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if cfg.MaxRequestBytes < 0 || cfg.MaxConns < 0 {
		return nil, fmt.Errorf("wire: negative limit in config")
	}
	if cfg.Concurrency < 0 {
		return nil, fmt.Errorf("wire: negative concurrency in config")
	}
	if cfg.Concurrency > 0 {
		proc = proc.WithConcurrency(cfg.Concurrency)
	}
	s := &Server{proc: proc, cfg: cfg, conns: make(map[net.Conn]struct{})}
	if cfg.Admit != nil {
		acfg := *cfg.Admit
		if acfg.Tracer == nil {
			acfg.Tracer = cfg.Tracer
		}
		adm, err := admit.New(proc, acfg)
		if err != nil {
			return nil, err
		}
		s.admit = adm
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on lis until Close is called. It always
// returns a non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		// Shutdown/Close ran before the listener was registered and so
		// could not close it; close it here, or the open socket would keep
		// accepting TCP handshakes into the backlog with no one serving.
		s.mu.Unlock()
		lis.Close() //nolint:errcheck
		return net.ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		if s.draining {
			s.mu.Unlock()
			s.refuse(conn, CodeShutdown, "server is shutting down")
			continue
		}
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.refuse(conn, CodeOverload, fmt.Sprintf("connection limit %d reached", s.cfg.MaxConns))
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// refuse sends a final error response and closes the connection without
// admitting it to the served set.
func (s *Server) refuse(conn net.Conn, code, msg string) {
	s.refused.Add(1)
	s.logf("wire: refusing %s: %s", conn.RemoteAddr(), msg)
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)) //nolint:errcheck
	}
	json.NewEncoder(conn).Encode(Response{Err: msg, Code: code}) //nolint:errcheck
	conn.Close()
}

// Shutdown drains the server gracefully: it stops accepting, lets every
// connection finish its in-flight request (idle connections are released
// immediately), and after the grace period force-closes whatever is left.
// It is the SIGINT/SIGTERM path of cmd/msqserver.
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var lisErr error
	if lis != nil {
		lisErr = lis.Close()
	}
	// Wake handlers blocked waiting for the next request; handlers busy
	// processing keep running and close after responding (handle checks
	// draining after every response).
	now := time.Now()
	for _, c := range conns {
		c.SetReadDeadline(now) //nolint:errcheck
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if grace > 0 {
		select {
		case <-done:
		case <-time.After(grace):
			s.logf("wire: drain grace %v elapsed, force-closing", grace)
		}
	}
	if err := s.Close(); err != nil && lisErr == nil && !errors.Is(err, net.ErrClosed) {
		lisErr = err
	}
	if errors.Is(lisErr, net.ErrClosed) {
		lisErr = nil
	}
	return lisErr
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	// Close the admission controller first: handlers blocked in Submit are
	// released (shed with shutting_down) so wg.Wait cannot deadlock on them.
	if s.admit != nil {
		s.admit.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// errRequestTooLarge is returned by readLine for lines beyond the cap.
var errRequestTooLarge = errors.New("wire: request exceeds size limit")

// readLine reads one newline-terminated request line of at most max bytes.
// A final unterminated line before EOF is returned as a request; EOF with
// no pending bytes is returned as io.EOF (the clean-close signal).
func readLine(br *bufio.Reader, max int) ([]byte, error) {
	var line []byte
	for {
		frag, err := br.ReadSlice('\n')
		line = append(line, frag...)
		if len(line) > max {
			return nil, errRequestTooLarge
		}
		switch {
		case err == nil:
			return line, nil
		case errors.Is(err, bufio.ErrBufferFull):
			continue
		case errors.Is(err, io.EOF) && len(bytes.TrimSpace(line)) > 0:
			return line, nil
		default:
			if len(line) == 0 && errors.Is(err, io.EOF) {
				return nil, io.EOF
			}
			return nil, err
		}
	}
}

// handle runs the per-connection request loop with a dedicated session.
//
// Error handling distinguishes a clean close (io.EOF after a complete
// request: the session simply ends) from client mistakes: malformed JSON
// and oversized lines get a final bad_request response before the
// connection is closed, instead of the silent drop they used to cause.
func (s *Server) handle(conn net.Conn) {
	session := s.proc.NewSession()
	var total msq.Stats
	requests := 0
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.logf("wire: %s disconnected: requests=%d queries=%d pages_read=%d dist_calcs=%d avoided=%d",
			conn.RemoteAddr(), requests, total.Queries, total.PagesRead, total.DistCalcs, total.Avoided)
		s.wg.Done()
	}()

	br := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)
	tr := s.cfg.Tracer
	traced := tr.Enabled()
	send := func(resp Response) error {
		switch resp.Code {
		case CodeBadRequest:
			s.badRequests.Add(1)
		case CodeEngine:
			s.engineErrs.Add(1)
		}
		if s.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)) //nolint:errcheck
		}
		var encStart time.Time
		if traced {
			encStart = time.Now()
		}
		err := enc.Encode(resp)
		if err == nil {
			err = w.Flush()
		}
		if traced {
			tr.ObserveSince(obs.PhaseWireEncode, encStart)
		}
		return err
	}

	for {
		if s.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)) //nolint:errcheck
		}
		line, err := readLine(br, s.cfg.MaxRequestBytes)
		switch {
		case err == nil:
		case errors.Is(err, errRequestTooLarge):
			send(Response{ //nolint:errcheck // closing anyway
				Err:   fmt.Sprintf("request exceeds %d-byte limit", s.cfg.MaxRequestBytes),
				Code:  CodeBadRequest,
				Stats: fromStats(total),
			})
			return
		default:
			// io.EOF (clean close), a read deadline during drain, or a
			// broken connection: drop the session.
			return
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		requests++
		s.requests.Add(1)
		var decStart time.Time
		if traced {
			decStart = time.Now()
		}
		var req Request
		err = json.Unmarshal(line, &req)
		if traced {
			tr.ObserveSince(obs.PhaseWireDecode, decStart)
		}
		if err != nil {
			send(Response{ //nolint:errcheck // closing anyway
				Err:   fmt.Sprintf("malformed request: %v", err),
				Code:  CodeBadRequest,
				Stats: fromStats(total),
			})
			return
		}
		if err := send(s.traceDispatch(session, &total, req)); err != nil {
			return
		}
		if s.isDraining() {
			return // in-flight request finished; drain the connection
		}
	}
}

// traceDispatch runs dispatch under the request's distributed-trace
// context when one is present: the server-side work becomes a child span
// of the caller's span, and the response carries that span plus the phase-
// histogram deltas over the request window, for the coordinator to stitch
// and merge. Requests without a trace context (or servers without a
// tracer) dispatch untouched.
func (s *Server) traceDispatch(session *msq.Session, total *msq.Stats, req Request) Response {
	tr := s.cfg.Tracer
	if req.Trace == nil || !tr.Enabled() {
		return s.dispatch(session, total, req)
	}
	span := tr.StartSpanFrom(*req.Trace, "request:"+string(req.Op))
	before := tr.Snapshots()
	resp := s.dispatch(session, total, req)
	info := &TraceInfo{}
	if span != nil {
		if resp.Err != "" {
			span.SetErr(resp.Err)
		}
		span.End()
		info.Spans = []obs.DistSpan{span.Span()}
	}
	after := tr.Snapshots()
	for p := range after {
		if d := after[p].Sub(before[p]); d.Count > 0 {
			if info.Phases == nil {
				info.Phases = make(map[string]obs.HistSnapshot)
			}
			info.Phases[obs.Phase(p).String()] = d
		}
	}
	if len(info.Spans) > 0 || len(info.Phases) > 0 {
		resp.Trace = info
	}
	return resp
}

// dispatch executes one request against the connection's session. Errors
// are classified: invalid specifications are bad_request, failures from
// the query processor (e.g. injected storage faults) are engine_error.
func (s *Server) dispatch(session *msq.Session, total *msq.Stats, req Request) Response {
	fail := func(code string, err error) Response {
		return Response{Err: err.Error(), Code: code, Stats: fromStats(*total)}
	}
	switch req.Op {
	case OpPing:
		return Response{Stats: fromStats(*total)}
	case OpQuery:
		if len(req.Queries) != 1 {
			return fail(CodeBadRequest, fmt.Errorf("wire: op %q needs exactly one query, got %d", req.Op, len(req.Queries)))
		}
		t, err := req.Queries[0].toType()
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		q := msq.Query{Vec: vec.Vector(req.Queries[0].Vector), Type: t}
		if err := q.Validate(); err != nil {
			return fail(CodeBadRequest, err)
		}
		if s.admit != nil {
			return s.admitQuery(total, req, q)
		}
		answers, st, err := s.proc.Single(q.Vec, t)
		if err != nil {
			return fail(CodeEngine, err)
		}
		*total = total.Add(st)
		return Response{Answers: [][]Answer{toWireAnswers(answers.Answers())}, Stats: fromStats(st)}
	case OpMulti, OpMultiAll, OpExplain:
		batch, err := buildBatch(req.Queries)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if req.Op == OpExplain {
			ex, err := session.ExplainAllContext(context.Background(), batch)
			if err != nil {
				return fail(CodeEngine, err)
			}
			*total = total.Add(ex.Stats)
			return Response{Explain: ex, Stats: fromStats(ex.Stats)}
		}
		run := session.MultiQuery
		if req.Op == OpMultiAll {
			run = session.MultiQueryAll
		}
		lists, st, err := run(batch)
		if err != nil {
			return fail(CodeEngine, err)
		}
		*total = total.Add(st)
		out := make([][]Answer, len(lists))
		for i, l := range lists {
			out[i] = toWireAnswers(l.Answers())
		}
		return Response{Answers: out, Stats: fromStats(st)}
	case OpStats:
		return Response{Stats: fromStats(*total)}
	default:
		return fail(CodeBadRequest, fmt.Errorf("wire: unknown op %q", req.Op))
	}
}

// admitQuery routes one single-query request through the admission
// controller: the request's deadline_ms bounds its time in the queue, a
// shed comes back as a structured overload (or shutting_down) response
// with a retry-after hint, and an admitted request returns the answers its
// cross-caller batch produced — bit-identical to the unbatched path.
func (s *Server) admitQuery(total *msq.Stats, req Request, q msq.Query) Response {
	ctx := context.Background()
	if req.DeadlineMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMs)*time.Millisecond)
		defer cancel()
	}
	answers, st, width, service, err := s.admit.Submit(ctx, q)
	if err != nil {
		var ov *admit.Overload
		if errors.As(err, &ov) {
			s.sheds.Add(1)
			code := CodeOverload
			if ov.Reason == admit.ReasonShutdown {
				code = CodeShutdown
			}
			return Response{
				Err:          err.Error(),
				Code:         code,
				RetryAfterMs: int64((ov.RetryAfter + time.Millisecond - 1) / time.Millisecond),
				Stats:        fromStats(*total),
			}
		}
		return Response{Err: err.Error(), Code: CodeEngine, Stats: fromStats(*total)}
	}
	*total = total.Add(st)
	stats := fromStats(st)
	stats.BatchWidth = width
	stats.ServiceUs = service.Microseconds()
	return Response{Answers: [][]Answer{toWireAnswers(answers)}, Stats: stats}
}

func toWireAnswers(as []query.Answer) []Answer {
	out := make([]Answer, len(as))
	for i, a := range as {
		out[i] = Answer{ID: uint64(a.ID), Dist: a.Dist}
	}
	return out
}

// Client talks to a Server over one connection (= one server-side session).
// Not safe for concurrent use; open one client per goroutine.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	w    *bufio.Writer
	enc  *json.Encoder
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	w := bufio.NewWriter(conn)
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		w:    w,
		enc:  json.NewEncoder(w),
	}, nil
}

// Close closes the connection, ending the server-side session.
func (c *Client) Close() error { return c.conn.Close() }

// ServerError is an error response from the server, carrying the taxonomy
// code so callers can distinguish their own mistakes (CodeBadRequest) from
// server trouble (CodeEngine, CodeOverload, CodeShutdown). Overload
// responses also carry the server's retry-after hint.
type ServerError struct {
	Code string
	Msg  string
	// RetryAfter is the server's suggested backoff before retrying
	// (CodeOverload responses; zero otherwise).
	RetryAfter time.Duration
}

// Error renders the server error.
func (e *ServerError) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("wire: server: %s", e.Msg)
	}
	return fmt.Sprintf("wire: server [%s]: %s", e.Code, e.Msg)
}

// ErrMalformedResponse marks a structurally invalid server response (e.g.
// a success response missing the expected answer lists, as a buggy or
// degraded server might produce).
var ErrMalformedResponse = errors.New("wire: malformed server response")

// roundTrip sends one request and reads one response.
func (c *Client) roundTrip(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("wire: send: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return Response{}, fmt.Errorf("wire: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("wire: receive: %w", err)
	}
	if resp.Err != "" {
		return resp, &ServerError{
			Code:       resp.Code,
			Msg:        resp.Err,
			RetryAfter: time.Duration(resp.RetryAfterMs) * time.Millisecond,
		}
	}
	return resp, nil
}

// roundTripContext is roundTrip bounded by ctx: a context deadline becomes
// the connection deadline, and a cancellation interrupts the blocked read
// or write by expiring the connection immediately. The line protocol has no
// way to retract a request already on the wire, so after a context abort
// the connection is out of sync with the server and unusable — the caller
// should Close it and dial a fresh client (which also discards the
// server-side session, exactly as the paper's incremental semantics
// require: buffered partial answers live and die with the connection).
func (c *Client) roundTripContext(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, fmt.Errorf("wire: %w", err)
	}
	if d, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(d) //nolint:errcheck
	}
	stop := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			c.conn.SetDeadline(time.Now()) //nolint:errcheck // unblock I/O now
		case <-stop:
		}
	}()
	resp, err := c.roundTrip(req)
	close(stop)
	<-watcherDone
	if ctxErr := ctx.Err(); ctxErr != nil && err != nil {
		return Response{}, fmt.Errorf("wire: %w", ctxErr)
	}
	c.conn.SetDeadline(time.Time{}) //nolint:errcheck
	return resp, err
}

// Query evaluates a single similarity query.
func (c *Client) Query(q QuerySpec) ([]Answer, Stats, error) {
	return c.QueryContext(context.Background(), q)
}

// QueryContext is Query bounded by ctx (see roundTripContext for the
// connection-poisoning caveat on aborts). A ctx deadline is also forwarded
// to the server as the request's deadline_ms, so an admission-controlled
// server can shed the request early instead of answering past its budget.
func (c *Client) QueryContext(ctx context.Context, q QuerySpec) ([]Answer, Stats, error) {
	req := Request{Op: OpQuery, Queries: []QuerySpec{q}}
	if d, ok := ctx.Deadline(); ok {
		if ms := time.Until(d).Milliseconds(); ms > 0 {
			req.DeadlineMs = ms
		}
	}
	resp, err := c.roundTripContext(ctx, req)
	if err != nil {
		return nil, resp.Stats, err
	}
	if len(resp.Answers) != 1 {
		return nil, resp.Stats, fmt.Errorf("%w: %d answer lists for one query", ErrMalformedResponse, len(resp.Answers))
	}
	return resp.Answers[0], resp.Stats, nil
}

// Ping probes the server for liveness over the session connection.
func (c *Client) Ping() error {
	return c.PingContext(context.Background())
}

// PingContext is Ping bounded by ctx.
func (c *Client) PingContext(ctx context.Context) error {
	_, err := c.roundTripContext(ctx, Request{Op: OpPing})
	return err
}

// Multi evaluates a multiple similarity query incrementally (Definition 4).
func (c *Client) Multi(qs []QuerySpec) ([][]Answer, Stats, error) {
	return c.MultiContext(context.Background(), qs)
}

// MultiContext is Multi bounded by ctx.
func (c *Client) MultiContext(ctx context.Context, qs []QuerySpec) ([][]Answer, Stats, error) {
	resp, err := c.roundTripContext(ctx, Request{Op: OpMulti, Queries: qs})
	return resp.Answers, resp.Stats, err
}

// MultiAll evaluates a batch to completion.
func (c *Client) MultiAll(qs []QuerySpec) ([][]Answer, Stats, error) {
	return c.MultiAllContext(context.Background(), qs)
}

// MultiAllContext is MultiAll bounded by ctx.
func (c *Client) MultiAllContext(ctx context.Context, qs []QuerySpec) ([][]Answer, Stats, error) {
	resp, err := c.roundTripContext(ctx, Request{Op: OpMultiAll, Queries: qs})
	return resp.Answers, resp.Stats, err
}

// ExplainContext evaluates the batch to completion and returns the
// server's per-query EXPLAIN profiles instead of the answers.
func (c *Client) ExplainContext(ctx context.Context, qs []QuerySpec) (*msq.Explain, Stats, error) {
	resp, err := c.roundTripContext(ctx, Request{Op: OpExplain, Queries: qs})
	if err != nil {
		return nil, resp.Stats, err
	}
	if resp.Explain == nil {
		return nil, resp.Stats, fmt.Errorf("%w: explain response without profiles", ErrMalformedResponse)
	}
	return resp.Explain, resp.Stats, nil
}

// DoContext sends one raw request — trace context included — and returns
// the raw response. It is the coordinator's entry point; most callers want
// the typed helpers instead.
func (c *Client) DoContext(ctx context.Context, req Request) (Response, error) {
	return c.roundTripContext(ctx, req)
}

// SessionStats returns the connection's accumulated statistics.
func (c *Client) SessionStats() (Stats, error) {
	resp, err := c.roundTrip(Request{Op: OpStats})
	return resp.Stats, err
}
