package wire

import (
	"context"
	"errors"
	"testing"
	"time"

	"metricdb/internal/fault"
	"metricdb/internal/obs"
	"metricdb/internal/store"
)

// TestServerCounters checks the error-taxonomy accounting: every request
// lands in exactly the right counter (requests / bad_request / engine
// error / refused), the numbers the admin /metrics endpoint exposes.
func TestServerCounters(t *testing.T) {
	var injector *fault.Disk
	srv, addr := startServerCfg(t, ServerConfig{MaxConns: 1}, func(src store.PageSource) (store.PageSource, error) {
		var err error
		injector, err = fault.Wrap(src, fault.Config{Seed: 5, ErrProb: 1, MaxFaults: 1})
		return injector, err
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// The fault budget is one read: the first query fails as engine_error.
	if _, _, err := c.Query(QuerySpec{Vector: []float64{0.5, 0.5, 0.5}, Kind: "knn", K: 3}); err == nil {
		t.Fatal("injected fault did not surface")
	}
	// Two client mistakes.
	c.Query(QuerySpec{Vector: []float64{0, 0, 0}, Kind: "weird"})      //nolint:errcheck
	c.Query(QuerySpec{Vector: []float64{0, 0, 0}, Kind: "knn", K: -1}) //nolint:errcheck
	// One good query now that the fault budget is spent.
	if _, _, err := c.Query(QuerySpec{Vector: []float64{0.5, 0.5, 0.5}, Kind: "knn", K: 3}); err != nil {
		t.Fatalf("query after fault budget: %v", err)
	}
	// One refused connection (MaxConns is 1 and c holds the slot).
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c2.Ping() //nolint:errcheck // expected overload refusal
	c2.Close()

	if got := srv.RequestCount(); got != 5 {
		t.Errorf("RequestCount = %d, want 5 (ping + 4 queries)", got)
	}
	if got := srv.BadRequestCount(); got != 2 {
		t.Errorf("BadRequestCount = %d, want 2", got)
	}
	if got := srv.EngineErrorCount(); got != 1 {
		t.Errorf("EngineErrorCount = %d, want 1", got)
	}
	if got := srv.RefusedCount(); got != 1 {
		t.Errorf("RefusedCount = %d, want 1", got)
	}
	if got := srv.ConnCount(); got != 1 {
		t.Errorf("ConnCount = %d, want 1", got)
	}
}

// TestRefusedCountsShutdown: connections arriving during a drain are
// refused with code shutting_down and land in the refused counter.
func TestRefusedCountsShutdown(t *testing.T) {
	srv, addr := startServerCfg(t, ServerConfig{}, nil)
	c0, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	if err := c0.Ping(); err != nil { // the accept loop is live
		t.Fatal(err)
	}

	// Enter the drain window without closing the listener (Shutdown would
	// race the test's dial), the state a connection arriving mid-drain sees.
	srv.mu.Lock()
	srv.draining = true
	srv.mu.Unlock()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var se *ServerError
	if err := c.Ping(); !errors.As(err, &se) || se.Code != CodeShutdown {
		t.Fatalf("mid-drain connection got %v, want %s", err, CodeShutdown)
	}
	if got := srv.RefusedCount(); got != 1 {
		t.Errorf("RefusedCount = %d, want 1", got)
	}
}

// TestWireTracerSpans: a tracer in ServerConfig records decode and encode
// spans for each request.
func TestWireTracerSpans(t *testing.T) {
	tr := obs.New(obs.Config{SlowQueryThreshold: -1})
	_, addr := startServerCfg(t, ServerConfig{Tracer: tr}, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Query(QuerySpec{Vector: []float64{0.2, 0.4, 0.6}, Kind: "knn", K: 2}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Snapshot(obs.PhaseWireDecode).Count; got == 0 {
		t.Error("no wire_decode spans recorded")
	}
	if got := tr.Snapshot(obs.PhaseWireEncode).Count; got == 0 {
		t.Error("no wire_encode spans recorded")
	}
}

// TestClientContext covers the context-aware client calls: a canceled or
// expired context aborts the round trip with the context's error, and the
// documented recovery from an abort is redialing.
func TestClientContext(t *testing.T) {
	_, addr := startServerCfg(t, ServerConfig{}, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A live context behaves exactly like the context-free call.
	if err := c.PingContext(context.Background()); err != nil {
		t.Fatalf("PingContext: %v", err)
	}
	answers, _, err := c.QueryContext(context.Background(), QuerySpec{Vector: []float64{0.5, 0.5, 0.5}, Kind: "knn", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 3 {
		t.Fatalf("QueryContext returned %d answers, want 3", len(answers))
	}

	// A pre-canceled context fails before touching the connection, so the
	// same client keeps working afterwards.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.PingContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled PingContext = %v, want context.Canceled", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("client broken after upfront cancellation: %v", err)
	}

	// An expired deadline mid-call aborts the round trip; the connection
	// is then poisoned (documented) and recovery is a redial.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Unix(0, 1))
	defer dcancel()
	if _, _, err := c.MultiAllContext(dctx, []QuerySpec{{ID: 1, Vector: []float64{0.1, 0.2, 0.3}, Kind: "knn", K: 2}}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired MultiAllContext = %v, want context.DeadlineExceeded", err)
	}
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.PingContext(context.Background()); err != nil {
		t.Fatalf("redialed client: %v", err)
	}
}
