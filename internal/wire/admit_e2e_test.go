package wire

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"metricdb/internal/admit"
	"metricdb/internal/dataset"
	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/vec"
)

// slowWireMetric delays each distance evaluation so block execution is
// long enough for concurrent arrivals to pile up behind the former.
type slowWireMetric struct {
	delay time.Duration
}

func (m slowWireMetric) Distance(a, b vec.Vector) float64 {
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	return vec.Euclidean{}.Distance(a, b)
}

func (slowWireMetric) Name() string { return "slow-euclidean" }

// TestAdmissionOverloadEndToEnd saturates an admission-controlled loopback
// server well past its queue limit from independent connections and checks
// the whole overload contract at once: shed requests come back as
// structured overload errors with positive retry-after hints, admitted
// requests return answers bit-identical to the unbatched sequential
// reference with the Degraded/Coverage contract untouched, and the batch
// former actually groups independent callers into blocks wider than one.
func TestAdmissionOverloadEndToEnd(t *testing.T) {
	const (
		n, dim  = 256, 4
		callers = 32
	)
	items := dataset.Uniform(11, n, dim)
	eng, err := scan.New(items, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := msq.New(eng, slowWireMetric{delay: 20 * time.Microsecond}, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerWithConfig(proc, ServerConfig{
		Admit: &admit.Config{
			MaxQueue: 8,
			MaxWidth: 8,
			MaxWait:  20 * time.Millisecond,
			// The saturation target here is the bounded queue, not the
			// deadline: a generous SLO keeps slow-engine blocks (the
			// race detector stretches the per-distance sleeps) from
			// turning admitted members into deadline sheds.
			DefaultSLO: 30 * time.Second,
			Pressure:   func() float64 { return 1 }, // always aim for MaxWidth
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck // ends with net.ErrClosed on shutdown
	t.Cleanup(func() { srv.Close() })
	addr := lis.Addr().String()

	// Reference answers from the unbatched sequential path on the same
	// processor (Single does not go through admission).
	refProc, err := msq.New(eng, slowWireMetric{}, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]QuerySpec, callers)
	refs := make([][]query.Answer, callers)
	for i := range queries {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64((i*7+j*3)%100) / 100
		}
		// Caller-side IDs deliberately collide: each connection is an
		// independent caller, and the controller must renumber.
		queries[i] = QuerySpec{ID: 7, Vector: v, Kind: "knn", K: 5}
		l, _, err := refProc.Single(vec.Vector(v), query.NewKNN(5))
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = l.Answers()
	}

	type outcome struct {
		answers []Answer
		stats   Stats
		shed    bool
		hintOK  bool
		err     error
	}
	outcomes := make([]outcome, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			defer c.Close()
			answers, stats, err := c.Query(queries[i])
			if err != nil {
				var se *ServerError
				if errors.As(err, &se) && se.Code == CodeOverload {
					outcomes[i] = outcome{shed: true, hintOK: se.RetryAfter > 0}
					return
				}
				outcomes[i] = outcome{err: err}
				return
			}
			outcomes[i] = outcome{answers: answers, stats: stats}
		}(i)
	}
	wg.Wait()

	admitted, shed, maxWidth := 0, 0, 0
	for i, o := range outcomes {
		switch {
		case o.err != nil:
			t.Fatalf("caller %d: unexpected error %v", i, o.err)
		case o.shed:
			shed++
			if !o.hintOK {
				t.Fatalf("caller %d: overload shed without positive retry-after hint", i)
			}
		default:
			admitted++
			if len(o.answers) != len(refs[i]) {
				t.Fatalf("caller %d: %d answers, want %d", i, len(o.answers), len(refs[i]))
			}
			for j, a := range o.answers {
				// Bit-identical: exact equality, no tolerance.
				if a.ID != uint64(refs[i][j].ID) || a.Dist != refs[i][j].Dist {
					t.Fatalf("caller %d answer %d: (%d, %v) differs from sequential reference (%d, %v)",
						i, j, a.ID, a.Dist, refs[i][j].ID, refs[i][j].Dist)
				}
			}
			if o.stats.Degraded {
				t.Fatalf("caller %d: admitted response reports degraded", i)
			}
			if o.stats.Coverage != 1 {
				t.Fatalf("caller %d: coverage %v, want 1", i, o.stats.Coverage)
			}
			if o.stats.BatchWidth > maxWidth {
				maxWidth = o.stats.BatchWidth
			}
		}
	}
	if admitted == 0 {
		t.Fatal("no request admitted under overload")
	}
	if shed == 0 {
		t.Fatalf("%d callers through an 8-slot queue with a slow engine: expected sheds", callers)
	}
	if maxWidth <= 1 {
		t.Fatalf("no cross-caller block wider than 1 (max width %d)", maxWidth)
	}
	if got := srv.ShedCount(); got != int64(shed) {
		t.Errorf("server ShedCount = %d, clients saw %d sheds", got, shed)
	}
	adm := srv.Admitter()
	if adm == nil {
		t.Fatal("admission-configured server reports nil Admitter")
	}
	if got := adm.Admitted(); got != int64(admitted) {
		t.Errorf("controller Admitted = %d, clients saw %d successes", got, admitted)
	}
}
