package wire

import (
	"net"
	"testing"

	"metricdb/internal/dataset"
	"metricdb/internal/msq"
	"metricdb/internal/vec"
	"metricdb/internal/xtree"
)

// TestServerConcurrencyConfig checks the ServerConfig.Concurrency plumbing:
// negative widths are rejected, a positive width reaches the processor the
// server hands to sessions, and queries over the wire return the same
// answers as at width 1.
func TestServerConcurrencyConfig(t *testing.T) {
	items := dataset.Uniform(5, 300, 4)
	tr, err := xtree.Bulk(items, 4, xtree.Config{LeafCapacity: 16, DirFanout: 8, BufferPages: 0})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := msq.New(tr, vec.Euclidean{}, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := NewServerWithConfig(proc, ServerConfig{Concurrency: -1}); err == nil {
		t.Error("negative concurrency accepted")
	}

	srv, err := NewServerWithConfig(proc, ServerConfig{Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.proc.Concurrency(); got != 4 {
		t.Errorf("server processor width = %d, want 4", got)
	}
	if proc.Concurrency() != 1 {
		t.Error("ServerConfig.Concurrency mutated the caller's processor")
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck // ends with net.ErrClosed on shutdown
	defer srv.Close() //nolint:errcheck

	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q := QuerySpec{Vector: []float64{0.5, 0.5, 0.5, 0.5}, Kind: "knn", K: 5}
	got, _, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := q.toType()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := proc.Single(vec.Vector(q.Vector), tp)
	if err != nil {
		t.Fatal(err)
	}
	wa := want.Answers()
	if len(got) != len(wa) {
		t.Fatalf("wire returned %d answers, want %d", len(got), len(wa))
	}
	for i := range got {
		if got[i].ID != uint64(wa[i].ID) || got[i].Dist != wa[i].Dist {
			t.Errorf("answer %d: (%d, %v) vs sequential (%d, %v)",
				i, got[i].ID, got[i].Dist, wa[i].ID, wa[i].Dist)
		}
	}
}
