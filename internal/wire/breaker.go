package wire

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen marks a server call skipped because the per-server
// circuit breaker is open: the server failed BreakerThreshold consecutive
// attempts and its cooldown has not elapsed, so the coordinator fails the
// call immediately instead of burning a dial + timeout on a server that is
// almost certainly still down. With Degrade set this turns a slow
// degraded operation into a fast one.
var ErrCircuitOpen = errors.New("wire: circuit breaker open")

// Circuit breaker defaults (CoordinatorConfig.BreakerThreshold / Cooldown).
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = time.Second
)

// breakerState enumerates the classic three states.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one server's circuit breaker. Closed passes every call and
// counts consecutive failures; threshold consecutive failures open it;
// after the cooldown one probe call is let through (half-open) — its
// success closes the breaker, its failure re-opens it for another
// cooldown. Successes reset the failure count. Only failures that indicate
// server trouble should be recorded: a bad_request proves the server is
// answering fine and must not trip it (the caller decides, see classify).
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
}

// allow reports whether a call may proceed. In the open state it flips to
// half-open once the cooldown has elapsed, admitting exactly one probe;
// concurrent calls during the probe are rejected.
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: probe in flight
		return false
	}
}

// success records a successful call, closing the breaker.
func (b *breaker) success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.mu.Unlock()
}

// failure records a failed call: a failed half-open probe re-opens
// immediately, and the threshold-th consecutive closed-state failure opens.
func (b *breaker) failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
}

// currentState returns the state label for metrics and tests ("closed"
// when the breaker is disabled).
func (b *breaker) currentState() string {
	if b == nil {
		return breakerClosed.String()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Surface the impending half-open transition: an open breaker past its
	// cooldown will admit the next call.
	if b.state == breakerOpen && time.Since(b.openedAt) >= b.cooldown {
		return breakerHalfOpen.String()
	}
	return b.state.String()
}
