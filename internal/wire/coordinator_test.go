package wire

import (
	"context"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"metricdb/internal/dataset"
	"metricdb/internal/fault"
	"metricdb/internal/msq"
	"metricdb/internal/obs"
	"metricdb/internal/parallel"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// startPartitionedServers declusters one dataset round-robin over n wire
// servers and returns their addresses plus the full item set for reference
// answers. wrap, when non-nil, interposes on each partition's storage;
// tracers, when non-empty, installs tracers[i] on server i's processor and
// wire layer.
func startPartitionedServers(t *testing.T, n int, wrap func(server int, src store.PageSource) (store.PageSource, error), tracers []*obs.Tracer) (addrs []string, items []store.Item) {
	t.Helper()
	const dim = 3
	items = dataset.Uniform(17, 360, dim)
	parts, err := parallel.Decluster(items, n, parallel.RoundRobin, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, part := range parts {
		cfg := scan.Config{PageCapacity: 16}
		if wrap != nil {
			si := i
			cfg.WrapDisk = func(src store.PageSource) (store.PageSource, error) { return wrap(si, src) }
		}
		eng, err := scan.NewWithConfig(part, cfg)
		if err != nil {
			t.Fatal(err)
		}
		proc, err := msq.New(eng, vec.Euclidean{}, msq.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var scfg ServerConfig
		if len(tracers) > 0 && tracers[i] != nil {
			proc = proc.WithTracer(tracers[i])
			scfg.Tracer = tracers[i]
		}
		srv, err := NewServerWithConfig(proc, scfg)
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(lis) //nolint:errcheck // ends with net.ErrClosed on shutdown
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, lis.Addr().String())
	}
	return addrs, items
}

// coordSpecs is a mixed range/k-NN batch over the partitioned dataset.
func coordSpecs(items []store.Item) []QuerySpec {
	return []QuerySpec{
		{ID: 1, Vector: items[5].Vec, Kind: "knn", K: 4},
		{ID: 2, Vector: items[23].Vec, Kind: "range", Range: 0.35},
		{ID: 3, Vector: items[77].Vec, Kind: "knn", K: 6},
	}
}

// refAnswers computes the fault-free single-node answers for the batch.
func refAnswers(t *testing.T, items []store.Item, specs []QuerySpec) [][]Answer {
	t.Helper()
	eng, err := scan.New(items, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := msq.New(eng, vec.Euclidean{}, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var qs []msq.Query
	for _, s := range specs {
		typ, err := s.toType()
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, msq.Query{ID: s.ID, Vec: s.Vector, Type: typ})
	}
	lists, _, err := proc.MultiQuery(qs)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]Answer, len(lists))
	for i, l := range lists {
		for _, a := range l.Answers() {
			out[i] = append(out[i], Answer{ID: uint64(a.ID), Dist: a.Dist})
		}
	}
	return out
}

func sameCoordAnswers(a, b [][]Answer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j].ID != b[i][j].ID || math.Abs(a[i][j].Dist-b[i][j].Dist) > 1e-12 {
				return false
			}
		}
	}
	return true
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(CoordinatorConfig{}); err == nil {
		t.Error("empty address list accepted")
	}
	if _, err := NewCoordinator(CoordinatorConfig{Addrs: []string{"a", "b"},
		ServerTracers: []*obs.Tracer{nil}}); err == nil {
		t.Error("mismatched ServerTracers accepted")
	}
	if _, err := NewCoordinator(CoordinatorConfig{Addrs: []string{"a"}, Retries: -1}); err == nil {
		t.Error("negative retries accepted")
	}
}

// TestCoordinatorUnionMerge: the coordinator's merged answers over a
// partitioned cluster equal the single-node answers, and the stats carry
// per-server health with measured latency (the stats-op fix).
func TestCoordinatorUnionMerge(t *testing.T) {
	addrs, items := startPartitionedServers(t, 3, nil, nil)
	specs := coordSpecs(items)
	c, err := NewCoordinator(CoordinatorConfig{Addrs: addrs, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := c.MultiAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if want := refAnswers(t, items, specs); !sameCoordAnswers(got, want) {
		t.Errorf("merged answers differ from single-node reference")
	}
	if stats.Degraded || stats.Coverage != 1 {
		t.Errorf("healthy cluster reported degraded stats: %+v", stats)
	}
	if len(stats.PerServer) != len(addrs) {
		t.Fatalf("PerServer has %d entries for %d servers", len(stats.PerServer), len(addrs))
	}
	for i, h := range stats.PerServer {
		if !h.OK || h.Attempts != 1 {
			t.Errorf("server %d health = %+v", i, h)
		}
		if h.LatencyNs <= 0 {
			t.Errorf("server %d latency not measured: %+v", i, h)
		}
	}
}

// TestCoordinatorTraceAcrossRetries (satellite S3): a transient fault on
// one server appears in the stitched cross-server trace as a failed
// attempt span with a retry sibling, the retry carrying the server-side
// request span; the servers' phase deltas land in the per-server tracers
// and a coordinator scrape exposes them under server labels.
func TestCoordinatorTraceAcrossRetries(t *testing.T) {
	const servers = 3
	serverTrs := make([]*obs.Tracer, servers)
	for i := range serverTrs {
		serverTrs[i] = obs.New(obs.Config{SlowQueryThreshold: -1, Node: "srv" + string(rune('0'+i))})
	}
	wrap := func(server int, src store.PageSource) (store.PageSource, error) {
		if server != 0 {
			return src, nil
		}
		return fault.Wrap(src, fault.Config{ErrProb: 1, MaxFaults: 1})
	}
	addrs, items := startPartitionedServers(t, servers, wrap, serverTrs)
	specs := coordSpecs(items)

	coordTr := obs.New(obs.Config{SlowQueryThreshold: -1, Node: "coordinator"})
	coordSide := make([]*obs.Tracer, servers)
	for i := range coordSide {
		coordSide[i] = obs.New(obs.Config{SlowQueryThreshold: -1})
	}
	c, err := NewCoordinator(CoordinatorConfig{
		Addrs: addrs, Timeout: 30 * time.Second, Retries: 2,
		Tracer: coordTr, ServerTracers: coordSide,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := c.MultiAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Degraded {
		t.Fatalf("transient fault left the result degraded: %+v", stats)
	}
	if want := refAnswers(t, items, specs); !sameCoordAnswers(got, want) {
		t.Error("answers after a recovered fault differ from the reference")
	}
	if h := stats.PerServer[0]; !h.OK || h.Attempts != 2 {
		t.Errorf("faulted server health = %+v, want OK after 2 attempts", h)
	}

	ids := coordTr.TraceIDs()
	if len(ids) != 1 {
		t.Fatalf("TraceIDs = %v, want one trace for one operation", ids)
	}
	tree := coordTr.Trace(ids[0])
	if tree == nil || tree.Name != "coordinator:multi_all" {
		t.Fatalf("stitched root = %+v", tree)
	}
	if len(tree.Children) != servers+1 {
		t.Fatalf("root has %d children, want %d server calls (one retry)", len(tree.Children), servers+1)
	}
	var failed, retries, remote int
	for _, ch := range tree.Children {
		if ch.Name != "server_call" {
			t.Errorf("child %q, want server_call", ch.Name)
		}
		if ch.Err != "" {
			failed++
			if ch.Node != "srv0" || ch.Attempt != 1 || len(ch.Children) != 0 {
				t.Errorf("failed attempt = %+v, want bare srv0 attempt 1", ch.DistSpan)
			}
		}
		if ch.Attempt > 1 {
			retries++
		}
		for _, g := range ch.Children {
			if strings.HasPrefix(g.Name, "request:") && g.Node != "" && g.Node != "coordinator" {
				remote++
			}
		}
	}
	if failed != 1 || retries != 1 {
		t.Errorf("trace shows %d failed / %d retry spans, want 1 / 1", failed, retries)
	}
	if remote != servers {
		t.Errorf("trace carries %d server-side request spans, want %d", remote, servers)
	}

	// The servers' phase deltas were merged coordinator-side per server.
	for i, tr := range coordSide {
		if tr.Snapshot(obs.PhaseKernel).Count == 0 {
			t.Errorf("server %d phase deltas not merged", i)
		}
	}
	reg := obs.NewRegistry(coordTr)
	c.RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), obs.PhaseHistogramMetric+`_count{phase="kernel",server="0"}`) {
		t.Error("coordinator scrape missing server-labeled kernel histogram")
	}
}

// TestCoordinatorDegradedDeadServer: with Degrade set, a permanently
// unreachable server is dropped from the merge after its retries; the
// result is a sound subset and the stats say so.
func TestCoordinatorDegradedDeadServer(t *testing.T) {
	addrs, items := startPartitionedServers(t, 3, nil, nil)
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close() // nothing listens here any more
	addrs[1] = deadAddr

	specs := coordSpecs(items)
	c, err := NewCoordinator(CoordinatorConfig{
		Addrs: addrs, Timeout: 5 * time.Second, Retries: 1, Degrade: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := c.MultiAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Degraded || stats.Coverage >= 1 {
		t.Errorf("dead server not reflected in stats: %+v", stats)
	}
	if h := stats.PerServer[1]; h.OK || h.Attempts != 2 || h.Err == "" {
		t.Errorf("dead server health = %+v, want 2 failed attempts", h)
	}
	// The degraded result is exactly the fault-free result over the
	// surviving partitions (k-NN becomes bounded-k-NN over them).
	parts, err := parallel.Decluster(items, 3, parallel.RoundRobin, 0)
	if err != nil {
		t.Fatal(err)
	}
	surviving := append(append([]store.Item(nil), parts[0]...), parts[2]...)
	if want := refAnswers(t, surviving, specs); !sameCoordAnswers(got, want) {
		t.Error("degraded answers differ from the surviving-partition reference")
	}

	// Without Degrade the same cluster fails the whole operation.
	strict, err := NewCoordinator(CoordinatorConfig{Addrs: addrs, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := strict.MultiAll(specs); err == nil {
		t.Error("strict coordinator succeeded with a dead server")
	}
}

// TestCoordinatorServerTimeout (satellite S3): a server that accepts but
// never answers trips the per-attempt timeout; the attempts appear as
// failed spans in the trace and the operation degrades around the server.
func TestCoordinatorServerTimeout(t *testing.T) {
	addrs, items := startPartitionedServers(t, 2, nil, nil)
	hung, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hung.Close() })
	go func() { // accept and hold connections open without responding
		for {
			conn, err := hung.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	addrs = append(addrs, hung.Addr().String())

	specs := coordSpecs(items)
	coordTr := obs.New(obs.Config{SlowQueryThreshold: -1, Node: "coordinator"})
	c, err := NewCoordinator(CoordinatorConfig{
		Addrs: addrs, Timeout: 100 * time.Millisecond, Retries: 1, Degrade: true,
		Tracer: coordTr,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, stats, err := c.MultiAllContext(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Degraded {
		t.Errorf("hung server not degraded: %+v", stats)
	}
	if h := stats.PerServer[2]; h.OK || h.Attempts != 2 || h.Err == "" {
		t.Errorf("hung server health = %+v, want 2 timed-out attempts", h)
	}
	tree := coordTr.Trace(coordTr.TraceIDs()[0])
	var timedOut int
	for _, ch := range tree.Children {
		if ch.Node == "srv2" && ch.Err != "" {
			timedOut++
		}
	}
	if timedOut != 2 {
		t.Errorf("trace shows %d failed spans for the hung server, want 2", timedOut)
	}
}

// TestCoordinatorExplain: the explain op fans out like multi_all and
// returns one profile set per server with batch-consistent headers.
func TestCoordinatorExplain(t *testing.T) {
	addrs, items := startPartitionedServers(t, 3, nil, nil)
	specs := coordSpecs(items)
	c, err := NewCoordinator(CoordinatorConfig{Addrs: addrs, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	profiles, stats, err := c.Explain(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != len(addrs) {
		t.Fatalf("%d profile sets for %d servers", len(profiles), len(addrs))
	}
	var pages int64
	for i, ex := range profiles {
		if ex == nil {
			t.Fatalf("server %d returned no profile", i)
		}
		if len(ex.Queries) != len(specs) {
			t.Errorf("server %d profiled %d queries, want %d", i, len(ex.Queries), len(specs))
		}
		if ex.Engine != "scan" {
			t.Errorf("server %d engine = %q", i, ex.Engine)
		}
		pages += ex.Stats.PagesRead
	}
	if pages != stats.PagesRead {
		t.Errorf("profile pages sum to %d, aggregated stats say %d", pages, stats.PagesRead)
	}
}
