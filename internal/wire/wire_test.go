package wire

import (
	"math"
	"net"
	"strings"
	"testing"

	"metricdb/internal/dataset"
	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/vec"
	"metricdb/internal/xtree"
)

// startServer runs a server over a fresh database and returns its address
// plus the backing processor for cross-checking.
func startServer(t *testing.T, n, dim int) (addr string, proc *msq.Processor) {
	t.Helper()
	items := dataset.Uniform(1, n, dim)
	tr, err := xtree.Bulk(items, dim, xtree.Config{LeafCapacity: 16, DirFanout: 8, BufferPages: 0})
	if err != nil {
		t.Fatal(err)
	}
	proc, err = msq.New(tr, vec.Euclidean{}, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(proc)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck // ends with net.ErrClosed on shutdown
	t.Cleanup(func() { srv.Close() })
	return lis.Addr().String(), proc
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Error("nil processor accepted")
	}
}

func TestQueryOverWire(t *testing.T) {
	addr, proc := startServer(t, 400, 4)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q := QuerySpec{Vector: []float64{0.5, 0.5, 0.5, 0.5}, Kind: "knn", K: 5}
	got, stats, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := proc.Single(vec.Vector(q.Vector), query.NewKNN(5))
	if err != nil {
		t.Fatal(err)
	}
	wa := want.Answers()
	if len(got) != len(wa) {
		t.Fatalf("got %d answers, want %d", len(got), len(wa))
	}
	for i := range wa {
		if got[i].ID != uint64(wa[i].ID) || math.Abs(got[i].Dist-wa[i].Dist) > 1e-12 {
			t.Fatalf("answer %d: %+v vs %+v", i, got[i], wa[i])
		}
	}
	if stats.PagesRead == 0 || stats.DistCalcs == 0 {
		t.Errorf("stats empty: %+v", stats)
	}
}

func TestRangeAndBoundedKindsOverWire(t *testing.T) {
	addr, proc := startServer(t, 300, 3)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cases := []struct {
		spec QuerySpec
		typ  query.Type
	}{
		{QuerySpec{Vector: []float64{0.2, 0.2, 0.2}, Kind: "range", Range: 0.3}, query.NewRange(0.3)},
		{QuerySpec{Vector: []float64{0.8, 0.1, 0.5}, Kind: "bounded-knn", K: 3, Range: 0.5}, query.NewBoundedKNN(3, 0.5)},
	}
	for _, cse := range cases {
		got, _, err := c.Query(cse.spec)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := proc.Single(vec.Vector(cse.spec.Vector), cse.typ)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want.Answers()) {
			t.Errorf("%s: %d answers, want %d", cse.spec.Kind, len(got), len(want.Answers()))
		}
	}
}

// TestIncrementalSessionOverWire: the connection-scoped session buffers
// partial answers — completing the second query later is nearly free.
func TestIncrementalSessionOverWire(t *testing.T) {
	addr, _ := startServer(t, 600, 4)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	qs := []QuerySpec{
		{ID: 1, Vector: []float64{0.1, 0.2, 0.3, 0.4}, Kind: "knn", K: 4},
		{ID: 2, Vector: []float64{0.15, 0.25, 0.35, 0.45}, Kind: "knn", K: 4},
	}
	first, _, err := c.Multi(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 || len(first[0]) != 4 {
		t.Fatalf("first response shape: %d lists, first has %d", len(first), len(first[0]))
	}
	// Complete query 2; the queries are adjacent so most pages are done.
	second, stats2, err := c.Multi(qs[1:])
	if err != nil {
		t.Fatal(err)
	}
	if len(second[0]) != 4 {
		t.Fatalf("second query returned %d answers", len(second[0]))
	}
	if stats2.PagesRead > 4 {
		t.Errorf("completing the buffered query read %d pages", stats2.PagesRead)
	}

	total, err := c.SessionStats()
	if err != nil {
		t.Fatal(err)
	}
	if total.Queries != 2 || total.PagesRead == 0 {
		t.Errorf("session stats: %+v", total)
	}
}

func TestMultiAllOverWire(t *testing.T) {
	addr, proc := startServer(t, 500, 5)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	qs := []QuerySpec{
		{ID: 10, Vector: []float64{0.1, 0.9, 0.4, 0.6, 0.2}, Kind: "knn", K: 6},
		{ID: 11, Vector: []float64{0.7, 0.3, 0.8, 0.2, 0.5}, Kind: "range", Range: 0.45},
		{ID: 12, Vector: []float64{0.5, 0.5, 0.5, 0.5, 0.5}, Kind: "knn", K: 2},
	}
	res, _, err := c.MultiAll(qs)
	if err != nil {
		t.Fatal(err)
	}
	types := []query.Type{query.NewKNN(6), query.NewRange(0.45), query.NewKNN(2)}
	for i := range qs {
		want, _, err := proc.Single(vec.Vector(qs[i].Vector), types[i])
		if err != nil {
			t.Fatal(err)
		}
		wa := want.Answers()
		if len(res[i]) != len(wa) {
			t.Fatalf("query %d: %d answers, want %d", i, len(res[i]), len(wa))
		}
		for j := range wa {
			if res[i][j].ID != uint64(wa[j].ID) {
				t.Fatalf("query %d answer %d: %+v vs %+v", i, j, res[i][j], wa[j])
			}
		}
	}
}

func TestWireErrors(t *testing.T) {
	addr, _ := startServer(t, 100, 2)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.Query(QuerySpec{Vector: []float64{0, 0}, Kind: "weird"}); err == nil || !strings.Contains(err.Error(), "unknown query kind") {
		t.Errorf("unknown kind: %v", err)
	}
	// The connection survives an error response.
	if _, _, err := c.Query(QuerySpec{Vector: []float64{0, 0}, Kind: "knn", K: 3}); err != nil {
		t.Errorf("connection did not survive the error: %v", err)
	}
	// Invalid query type from the processor.
	if _, _, err := c.Query(QuerySpec{Vector: []float64{0, 0}, Kind: "knn", K: 0}); err == nil {
		t.Error("k=0 accepted over the wire")
	}
	// Multi with duplicate IDs.
	dupe := []QuerySpec{
		{ID: 5, Vector: []float64{0, 0}, Kind: "knn", K: 1},
		{ID: 5, Vector: []float64{1, 1}, Kind: "knn", K: 1},
	}
	if _, _, err := c.Multi(dupe); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := c.roundTrip(Request{Op: "dance"}); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, _ := startServer(t, 800, 4)
	done := make(chan error, 6)
	for g := 0; g < 6; g++ {
		go func(g int) {
			c, err := Dial(addr)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				v := []float64{float64(g) / 6, float64(i) / 20, 0.5, 0.5}
				if _, _, err := c.Query(QuerySpec{Vector: v, Kind: "knn", K: 3}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 6; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestScanBackedServer(t *testing.T) {
	items := dataset.Uniform(2, 200, 3)
	e, err := scan.New(items, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := msq.New(e, vec.Euclidean{}, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(proc)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()

	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, _, err := c.Query(QuerySpec{Vector: []float64{0.3, 0.3, 0.3}, Kind: "knn", K: 1})
	if err != nil || len(got) != 1 {
		t.Fatalf("scan-backed query: %v, %v", got, err)
	}

	// Double Close is safe; Serve after Close refuses.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
