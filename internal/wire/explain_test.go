package wire

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"metricdb/internal/dataset"
	"metricdb/internal/msq"
	"metricdb/internal/obs"
	"metricdb/internal/scan"
	"metricdb/internal/vec"
)

// TestExplainOverWire: the explain op returns the per-query profiles of a
// real evaluation — the response stats match the profile's own batch stats
// and the attribution covers every query.
func TestExplainOverWire(t *testing.T) {
	_, addr := startServerCfg(t, ServerConfig{}, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	specs := []QuerySpec{
		{ID: 1, Vector: []float64{0.2, 0.4, 0.6}, Kind: "knn", K: 3},
		{ID: 2, Vector: []float64{0.5, 0.5, 0.5}, Kind: "range", Range: 0.3},
	}
	ex, stats, err := c.ExplainContext(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Queries) != len(specs) {
		t.Fatalf("%d profiles for %d queries", len(ex.Queries), len(specs))
	}
	if got := fromStats(ex.Stats); got.PagesRead != stats.PagesRead ||
		got.DistCalcs != stats.DistCalcs || got.Avoided != stats.Avoided ||
		got.AvoidTries != stats.AvoidTries || got.Queries != stats.Queries {
		t.Errorf("response stats %+v differ from profile stats %+v", stats, got)
	}
	for i, p := range ex.Queries {
		if p.ID != specs[i].ID || p.PagesVisited <= 0 {
			t.Errorf("profile %d = %+v", i, p)
		}
	}
	// Malformed batches are rejected before evaluation.
	if _, _, err := c.ExplainContext(context.Background(), nil); err == nil {
		t.Error("empty explain batch accepted")
	}
}

// TestExplainHandler: the admin endpoint profiles a POSTed batch and
// rejects wrong methods and malformed bodies.
func TestExplainHandler(t *testing.T) {
	srv, _ := startServerCfg(t, ServerConfig{}, nil)
	h := srv.ExplainHandler()

	body := `{"queries":[{"id":1,"vector":[0.2,0.4,0.6],"kind":"knn","k":3}]}`
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/debug/explain", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("explain status %d: %s", rec.Code, rec.Body.String())
	}
	var ex msq.Explain
	if err := json.Unmarshal(rec.Body.Bytes(), &ex); err != nil {
		t.Fatalf("explain body is not JSON: %v", err)
	}
	if len(ex.Queries) != 1 || ex.Queries[0].ID != 1 || ex.Engine != "scan" {
		t.Errorf("explain profile = %+v", ex)
	}

	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/debug/explain", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", rec.Code)
	}
	for _, bad := range []string{"not json", `{"queries":[]}`, `{"queries":[{"kind":"warp"}]}`} {
		rec = httptest.NewRecorder()
		h(rec, httptest.NewRequest("POST", "/debug/explain", strings.NewReader(bad)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", bad, rec.Code)
		}
	}
}

// TestTraceDispatch: a request carrying a span context gets the server's
// request span and phase deltas back; requests without one stay untraced.
func TestTraceDispatch(t *testing.T) {
	// The tracer must be shared by the wire layer (request spans, delta
	// window) and the processor (phase observations), as msqserver wires it.
	tr := obs.New(obs.Config{SlowQueryThreshold: -1, Node: "srv0"})
	eng, err := scan.New(dataset.Uniform(9, 300, 3), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := msq.New(eng, vec.Euclidean{}, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerWithConfig(proc.WithTracer(tr), ServerConfig{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck // ends with net.ErrClosed on shutdown
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	specs := []QuerySpec{
		{ID: 1, Vector: []float64{0.2, 0.4, 0.6}, Kind: "knn", K: 3},
		{ID: 2, Vector: []float64{0.5, 0.5, 0.5}, Kind: "range", Range: 0.3},
	}

	// Untraced request: no TraceInfo in the response.
	resp, err := c.DoContext(context.Background(), Request{Op: OpMultiAll, Queries: specs})
	if err != nil || resp.Err != "" {
		t.Fatalf("untraced round trip: %v %q", err, resp.Err)
	}
	if resp.Trace != nil {
		t.Error("untraced request returned trace info")
	}

	// Traced request on a fresh connection (a fresh session — the first
	// request's session has the batch buffered, leaving no page work to
	// profile): the server's span subtree hangs off the caller's span and
	// the kernel phase delta comes back for merging.
	c2, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	caller := obs.New(obs.Config{SlowQueryThreshold: -1, Node: "coordinator"})
	span := caller.StartSpan("server_call")
	sc := span.Context()
	resp, err = c2.DoContext(context.Background(), Request{Op: OpMultiAll, Queries: specs, Trace: &sc})
	span.End()
	if err != nil || resp.Err != "" {
		t.Fatalf("traced round trip: %v %q", err, resp.Err)
	}
	if resp.Trace == nil || len(resp.Trace.Spans) == 0 {
		t.Fatal("traced request returned no trace info")
	}
	req := resp.Trace.Spans[0]
	if req.Name != "request:multi_all" || req.Node != "srv0" ||
		req.Trace != sc.Trace || req.Parent != sc.Span {
		t.Errorf("server span = %+v, want request:multi_all under the caller's span", req)
	}
	if snap, ok := resp.Trace.Phases["kernel"]; !ok || snap.Count == 0 {
		t.Errorf("phase deltas = %v, want a kernel entry", resp.Trace.Phases)
	}
}
