package explore

import (
	"fmt"
	"sort"

	"metricdb/internal/msq"
	"metricdb/internal/query"
)

// Rule is a spatial association rule "objects of type From are close to
// objects of type To" (§3.2, after Koperski & Han), discovered from
// neighborhood relations. Types are the items' Label values.
type Rule struct {
	From, To int
	// Support is the fraction of type-From objects that have at least
	// one type-To neighbor within the query radius.
	Support float64
	// Confidence is the fraction of all neighbors of type-From objects
	// that are of type To.
	Confidence float64
	// Count is the number of supporting type-From objects.
	Count int
}

// SpatialAssociationRules discovers rules From → To for the given From
// type: the start objects are all database objects of that type (as in the
// paper's instance), their eps-neighborhoods are retrieved as multiple
// similarity queries in blocks of cfg.BatchSize, and rules meeting both
// thresholds are returned sorted by support. cfg.SimType is ignored.
func SpatialAssociationRules(cfg Config, fromType int, eps, minSupport, minConfidence float64) ([]Rule, Stats, error) {
	cfg.SimType = query.NewRange(eps)
	var stats Stats
	if err := cfg.Validate(); err != nil {
		return nil, stats, err
	}
	if minSupport < 0 || minSupport > 1 || minConfidence < 0 || minConfidence > 1 {
		return nil, stats, fmt.Errorf("explore: thresholds must be in [0,1]")
	}

	var starts []msq.Query
	for i := range cfg.Items {
		if cfg.Items[i].Label == fromType {
			starts = append(starts, msq.Query{
				ID:   uint64(cfg.Items[i].ID),
				Vec:  cfg.Items[i].Vec,
				Type: cfg.SimType,
			})
		}
	}
	if len(starts) == 0 {
		return nil, stats, fmt.Errorf("explore: no objects of type %d", fromType)
	}

	// proc_2 of this instance: per start object, which neighbor types
	// occur; plus global neighbor-type counts for confidence.
	supporting := make(map[int]int) // toType -> #start objects with such a neighbor
	neighborCount := make(map[int]int)
	totalNeighbors := 0

	m := cfg.BatchSize
	if m < 1 {
		m = 1
	}
	for blockStart := 0; blockStart < len(starts); blockStart += m {
		end := blockStart + m
		if end > len(starts) {
			end = len(starts)
		}
		session := cfg.Proc.NewSession()
		results, qs, err := session.MultiQueryAll(starts[blockStart:end])
		stats.Query = stats.Query.Add(qs)
		stats.Steps += end - blockStart
		if err != nil {
			return nil, stats, err
		}
		for bi, r := range results {
			selfID := starts[blockStart+bi].ID
			typesSeen := make(map[int]bool)
			for _, a := range r.Answers() {
				if uint64(a.ID) == selfID {
					continue // the object is trivially its own neighbor
				}
				label := cfg.Items[a.ID].Label
				typesSeen[label] = true
				neighborCount[label]++
				totalNeighbors++
			}
			for label := range typesSeen {
				supporting[label]++
			}
		}
	}

	var rules []Rule
	for toType, count := range supporting {
		support := float64(count) / float64(len(starts))
		confidence := 0.0
		if totalNeighbors > 0 {
			confidence = float64(neighborCount[toType]) / float64(totalNeighbors)
		}
		if support >= minSupport && confidence >= minConfidence {
			rules = append(rules, Rule{
				From:       fromType,
				To:         toType,
				Support:    support,
				Confidence: confidence,
				Count:      count,
			})
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		return rules[i].To < rules[j].To
	})
	return rules, stats, nil
}
