package explore

import (
	"fmt"
	"math/rand"

	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/store"
)

// ExplorationConfig parameterizes the manual-data-exploration simulation of
// §6: c concurrent hypothetical users navigate the database by repeatedly
// choosing one of their k current answers; the system prefetches the
// k-nearest neighbors of *all* current answers, producing m = c·k highly
// dependent queries per round.
type ExplorationConfig struct {
	Users  int
	K      int
	Rounds int
	Seed   int64
}

// Validate checks the simulation parameters.
func (e ExplorationConfig) Validate() error {
	if e.Users < 1 {
		return fmt.Errorf("explore: need at least one user, got %d", e.Users)
	}
	if e.K < 1 {
		return fmt.Errorf("explore: k must be >= 1, got %d", e.K)
	}
	if e.Rounds < 1 {
		return fmt.Errorf("explore: need at least one round, got %d", e.Rounds)
	}
	return nil
}

// SimulateExploration runs the manual-exploration workload and returns the
// aggregated query cost. Each round issues one block of m = Users·K
// k-nearest-neighbor queries through a shared session, so that pages and
// buffered answers are reused across users and rounds — the "highly
// dependent queries" workload of the image-database experiments.
// cfg.SimType is ignored.
func SimulateExploration(cfg Config, ec ExplorationConfig) (Stats, error) {
	cfg.SimType = query.NewKNN(ec.K)
	var stats Stats
	if err := cfg.Validate(); err != nil {
		return stats, err
	}
	if err := ec.Validate(); err != nil {
		return stats, err
	}
	if len(cfg.Items) == 0 {
		return stats, fmt.Errorf("explore: empty database")
	}

	rng := rand.New(rand.NewSource(ec.Seed))
	session := cfg.Proc.NewSession()

	// Each user's current answer set; initially the k-NN of a random
	// start object.
	current := make([][]store.ItemID, ec.Users)
	startBatch := make([]msq.Query, ec.Users)
	for u := 0; u < ec.Users; u++ {
		it := cfg.Items[rng.Intn(len(cfg.Items))]
		startBatch[u] = msq.Query{ID: uint64(it.ID), Vec: it.Vec, Type: cfg.SimType}
	}
	startBatch = dedupeQueries(startBatch)
	results, qs, err := session.MultiQueryAll(startBatch)
	stats.Query = stats.Query.Add(qs)
	stats.Steps += len(startBatch)
	if err != nil {
		return stats, err
	}
	answersByID := make(map[uint64][]store.ItemID, len(startBatch))
	for i, r := range results {
		answersByID[startBatch[i].ID] = r.IDs()
	}
	for u := 0; u < ec.Users; u++ {
		current[u] = answersByID[startBatch[u].ID]
	}

	for round := 0; round < ec.Rounds; round++ {
		// Prefetch the k-NN of every current answer of every user:
		// one block of (up to) c·k queries.
		var batch []msq.Query
		for u := 0; u < ec.Users; u++ {
			for _, id := range current[u] {
				it := cfg.Items[id]
				batch = append(batch, msq.Query{ID: uint64(it.ID), Vec: it.Vec, Type: cfg.SimType})
			}
		}
		batch = dedupeQueries(batch)
		if len(batch) == 0 {
			break
		}
		results, qs, err := session.MultiQueryAll(batch)
		stats.Query = stats.Query.Add(qs)
		stats.Steps += len(batch)
		if err != nil {
			return stats, err
		}
		byID := make(map[uint64][]store.ItemID, len(batch))
		for i, r := range results {
			byID[batch[i].ID] = r.IDs()
		}
		// Each user chooses one of their answers; its (already fetched)
		// neighbors become the user's next answer set.
		for u := 0; u < ec.Users; u++ {
			if len(current[u]) == 0 {
				continue
			}
			chosen := current[u][rng.Intn(len(current[u]))]
			current[u] = byID[uint64(chosen)]
		}
	}
	return stats, nil
}

// dedupeQueries removes duplicate query IDs, keeping first occurrences:
// several users may land on the same objects.
func dedupeQueries(batch []msq.Query) []msq.Query {
	seen := make(map[uint64]bool, len(batch))
	out := batch[:0]
	for _, q := range batch {
		if seen[q.ID] {
			continue
		}
		seen[q.ID] = true
		out = append(out, q)
	}
	return out
}
