package explore

import (
	"fmt"
	"math"

	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/store"
)

// Trend is one detected spatial trend: a neighborhood path starting at the
// start object along which the observed attribute changes regularly,
// described by the least-squares regression of attribute value against
// path distance.
type Trend struct {
	// Path is the sequence of item IDs, starting at the start object.
	Path []store.ItemID
	// Slope and Intercept describe attr ≈ Intercept + Slope · distance.
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the regression.
	R2 float64
}

// TrendConfig parameterizes spatial trend detection (§3.2, after Ester et
// al. 1998): neighborhood paths of up to MaxLength steps are grown from the
// start object, following up to Branch nearest neighbors per step, and a
// regression of the attribute over the cumulative path distance is
// performed; paths with R² >= MinR2 are reported as trends.
type TrendConfig struct {
	K         int     // neighbors retrieved per step
	Branch    int     // paths followed per step (<= K)
	MaxLength int     // maximum path length in steps
	MinR2     float64 // regression quality threshold
}

// Validate checks the trend parameters.
func (tc TrendConfig) Validate() error {
	if tc.K < 1 {
		return fmt.Errorf("explore: trend K must be >= 1, got %d", tc.K)
	}
	if tc.Branch < 1 || tc.Branch > tc.K {
		return fmt.Errorf("explore: trend Branch must be in [1, K], got %d", tc.Branch)
	}
	if tc.MaxLength < 1 {
		return fmt.Errorf("explore: trend MaxLength must be >= 1, got %d", tc.MaxLength)
	}
	if tc.MinR2 < 0 || tc.MinR2 > 1 {
		return fmt.Errorf("explore: trend MinR2 must be in [0,1], got %g", tc.MinR2)
	}
	return nil
}

// DetectTrends grows neighborhood paths from start and returns the paths
// whose attribute regression is strong enough. attr extracts the non-spatial
// attribute under analysis. The per-step neighborhood queries of all open
// paths are evaluated as one multiple similarity query — this instance's
// ExploreNeighborhoods loop is "additionally controlled by the number of
// steps". cfg.SimType is ignored.
func DetectTrends(cfg Config, start store.ItemID, attr func(store.Item) float64, tc TrendConfig) ([]Trend, Stats, error) {
	cfg.SimType = query.NewKNN(tc.K + 1) // +1: the object itself is its own 1-NN
	var stats Stats
	if err := cfg.Validate(); err != nil {
		return nil, stats, err
	}
	if err := tc.Validate(); err != nil {
		return nil, stats, err
	}
	if attr == nil {
		return nil, stats, fmt.Errorf("explore: nil attribute function")
	}

	type path struct {
		ids   []store.ItemID
		dists []float64 // cumulative distance at each node
	}
	open := []path{{ids: []store.ItemID{start}, dists: []float64{0}}}
	session := cfg.Proc.NewSession()
	var finished []path

	for step := 0; step < tc.MaxLength && len(open) > 0; step++ {
		// One multiple similarity query over the tips of all open paths.
		batch := make([]msq.Query, 0, len(open))
		for _, p := range open {
			tip := cfg.Items[p.ids[len(p.ids)-1]]
			batch = append(batch, msq.Query{ID: uint64(tip.ID), Vec: tip.Vec, Type: cfg.SimType})
		}
		batch = dedupeQueries(batch)
		results, qs, err := session.MultiQueryAll(batch)
		stats.Query = stats.Query.Add(qs)
		stats.Steps += len(batch)
		if err != nil {
			return nil, stats, err
		}
		answersByID := make(map[uint64][]query.Answer, len(batch))
		for i, r := range results {
			answersByID[batch[i].ID] = r.Answers()
		}

		var next []path
		for _, p := range open {
			tip := p.ids[len(p.ids)-1]
			onPath := make(map[store.ItemID]bool, len(p.ids))
			for _, id := range p.ids {
				onPath[id] = true
			}
			extended := 0
			for _, a := range answersByID[uint64(tip)] {
				if extended == tc.Branch {
					break
				}
				if onPath[a.ID] {
					continue
				}
				np := path{
					ids:   append(append([]store.ItemID(nil), p.ids...), a.ID),
					dists: append(append([]float64(nil), p.dists...), p.dists[len(p.dists)-1]+a.Dist),
				}
				next = append(next, np)
				extended++
			}
			if extended == 0 {
				finished = append(finished, p)
			}
		}
		open = next
	}
	finished = append(finished, open...)

	var trends []Trend
	for _, p := range finished {
		if len(p.ids) < 3 {
			continue // too short for a meaningful regression
		}
		ys := make([]float64, len(p.ids))
		for i, id := range p.ids {
			ys[i] = attr(cfg.Items[id])
		}
		slope, intercept, r2 := linearRegression(p.dists, ys)
		if r2 >= tc.MinR2 {
			trends = append(trends, Trend{Path: p.ids, Slope: slope, Intercept: intercept, R2: r2})
		}
	}
	return trends, stats, nil
}

// linearRegression returns the least-squares fit y = intercept + slope*x
// and its R². A degenerate x-spread yields slope 0 and R² 0.
func linearRegression(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	dx := n*sxx - sx*sx
	if dx == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / dx
	intercept = (sy - slope*sx) / n
	dy := n*syy - sy*sy
	if dy == 0 {
		// Constant attribute: a perfect (if trivial) fit.
		return slope, intercept, 1
	}
	r := (n*sxy - sx*sy) / math.Sqrt(dx*dy)
	return slope, intercept, r * r
}
