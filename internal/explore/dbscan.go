package explore

import (
	"fmt"

	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/store"
)

// Cluster labels produced by DBSCAN.
const (
	// Noise marks objects in no cluster.
	Noise = -1
	// Unclassified is the pre-assignment state (never returned).
	Unclassified = 0
)

// DBSCANResult holds the clustering outcome.
type DBSCANResult struct {
	// Labels assigns every item a cluster ID (1-based) or Noise.
	Labels []int
	// Clusters is the number of clusters found.
	Clusters int
	// Stats aggregates the query-processing cost.
	Stats Stats
}

// DBSCAN runs density-based clustering (Ester, Kriegel, Sander, Xu 1996)
// with parameters eps and minPts, issuing its neighborhood retrievals as
// multiple similarity queries of cfg.BatchSize per the transformed
// ExploreNeighborhoodsMultiple scheme: while a cluster is expanded, the
// pending seed objects are prefetched alongside the object being processed.
// cfg.SimType is ignored; DBSCAN always uses range queries of radius eps.
func DBSCAN(cfg Config, eps float64, minPts int) (*DBSCANResult, error) {
	cfg.SimType = query.NewRange(eps)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if minPts < 1 {
		return nil, fmt.Errorf("explore: DBSCAN minPts must be >= 1, got %d", minPts)
	}

	n := len(cfg.Items)
	labels := make([]int, n)
	res := &DBSCANResult{Labels: labels}
	session := cfg.Proc.NewSession()

	// neighborhood evaluates the range query for the object at the head
	// of seeds, prefetching up to BatchSize-1 pending seeds.
	neighborhood := func(head store.ItemID, pending []store.ItemID) ([]query.Answer, error) {
		m := cfg.BatchSize
		if m < 1 {
			m = 1
		}
		batch := make([]msq.Query, 0, m)
		batch = append(batch, msq.Query{ID: uint64(head), Vec: cfg.Items[head].Vec, Type: cfg.SimType})
		for _, id := range pending {
			if len(batch) == m {
				break
			}
			if id == head {
				continue
			}
			batch = append(batch, msq.Query{ID: uint64(id), Vec: cfg.Items[id].Vec, Type: cfg.SimType})
		}
		results, qs, err := session.MultiQuery(batch)
		res.Stats.Query = res.Stats.Query.Add(qs)
		res.Stats.Steps++
		if err != nil {
			return nil, err
		}
		return results[0].Answers(), nil
	}

	for i := 0; i < n; i++ {
		if labels[i] != Unclassified {
			continue
		}
		answers, err := neighborhood(store.ItemID(i), nil)
		if err != nil {
			return nil, err
		}
		if len(answers) < minPts {
			labels[i] = Noise
			continue
		}
		// New cluster: expand from the core object.
		res.Clusters++
		c := res.Clusters
		labels[i] = c
		var seeds []store.ItemID
		for _, a := range answers {
			if labels[a.ID] == Unclassified || labels[a.ID] == Noise {
				if labels[a.ID] == Unclassified {
					seeds = append(seeds, a.ID)
				}
				labels[a.ID] = c
			}
		}
		for len(seeds) > 0 {
			id := seeds[0]
			seeds = seeds[1:]
			nbrs, err := neighborhood(id, seeds)
			if err != nil {
				return nil, err
			}
			if len(nbrs) < minPts {
				continue // border object: no further expansion
			}
			for _, a := range nbrs {
				switch labels[a.ID] {
				case Unclassified:
					labels[a.ID] = c
					seeds = append(seeds, a.ID)
				case Noise:
					labels[a.ID] = c // density-reachable border object
				}
			}
		}
	}
	return res, nil
}
