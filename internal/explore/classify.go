package explore

import (
	"fmt"
	"sort"

	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/vec"
)

// ClassifyKNN performs simultaneous classification of a set of new objects
// (§3.2, the astronomy use case): a k-NN query is issued for every object
// and the majority label among its neighbors is returned. The queries are
// processed in blocks of cfg.BatchSize multiple similarity queries, exactly
// the paper's evaluation setup for the Tycho data. Ties are broken toward
// the smallest label for determinism. cfg.SimType is ignored.
func ClassifyKNN(cfg Config, objects []vec.Vector, k int) ([]int, Stats, error) {
	cfg.SimType = query.NewKNN(k)
	var stats Stats
	if err := cfg.Validate(); err != nil {
		return nil, stats, err
	}
	if k < 1 {
		return nil, stats, fmt.Errorf("explore: k must be >= 1, got %d", k)
	}

	labels := make([]int, len(objects))
	m := cfg.BatchSize
	if m < 1 {
		m = 1
	}
	for blockStart := 0; blockStart < len(objects); blockStart += m {
		end := blockStart + m
		if end > len(objects) {
			end = len(objects)
		}
		batch := make([]msq.Query, 0, end-blockStart)
		for i := blockStart; i < end; i++ {
			batch = append(batch, msq.Query{ID: uint64(i), Vec: objects[i], Type: cfg.SimType})
		}
		session := cfg.Proc.NewSession()
		results, qs, err := session.MultiQueryAll(batch)
		stats.Query = stats.Query.Add(qs)
		stats.Steps += len(batch)
		if err != nil {
			return nil, stats, err
		}
		for bi, r := range results {
			labels[blockStart+bi] = majorityLabel(cfg, r.Answers())
		}
	}
	return labels, stats, nil
}

// majorityLabel returns the most frequent label among the answers, ties
// broken toward the smallest label; Noise (-1) neighbors are counted like
// any other label.
func majorityLabel(cfg Config, answers []query.Answer) int {
	counts := make(map[int]int)
	for _, a := range answers {
		counts[cfg.Items[a.ID].Label]++
	}
	labels := make([]int, 0, len(counts))
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	best, bestCount := Noise, -1
	for _, l := range labels {
		if counts[l] > bestCount {
			best, bestCount = l, counts[l]
		}
	}
	return best
}
