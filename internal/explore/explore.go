// Package explore implements the paper's generic data-mining scheme
// ExploreNeighborhoods (Figure 2) and its purely syntactic transformation
// ExploreNeighborhoodsMultiple (Figure 3), which replaces single similarity
// queries with multiple similarity queries while computing exactly the same
// result.
//
// The package also provides the concrete instances discussed in §3.2:
// density-based clustering (DBSCAN), simultaneous k-NN classification,
// manual data exploration by concurrent users, proximity analysis, spatial
// trend detection, and spatial association rules.
package explore

import (
	"fmt"

	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/store"
)

// Config binds an exploration to a query processor and the database items.
type Config struct {
	// Proc evaluates the similarity queries.
	Proc *msq.Processor
	// Items is the database; Items[i].ID must equal ItemID(i) so that
	// answers can be resolved back to objects.
	Items []store.Item
	// SimType is the similarity query type used for neighborhoods.
	SimType query.Type
	// BatchSize is m, the number of query objects per multiple similarity
	// query; values below 2 make RunMultiple degenerate to Run.
	BatchSize int
}

// Validate checks the configuration, including the ID-equals-index
// requirement.
func (c Config) Validate() error {
	if c.Proc == nil {
		return fmt.Errorf("explore: nil processor")
	}
	if err := c.SimType.Validate(); err != nil {
		return fmt.Errorf("explore: %w", err)
	}
	for i := range c.Items {
		if c.Items[i].ID != store.ItemID(i) {
			return fmt.Errorf("explore: item at index %d has ID %d; IDs must equal indexes", i, c.Items[i].ID)
		}
	}
	return nil
}

// Hooks are the task-specific procedures of the scheme. Any hook may be
// nil:
//
//	Condition defaults to "control list not empty",
//	Proc1 and Proc2 default to no-ops,
//	Filter defaults to "no new query objects".
type Hooks struct {
	// Condition is condition_check: the loop continues while it returns
	// true. It receives the control-list length and the step count.
	Condition func(controlLen, step int) bool
	// Proc1 runs on the selected object before its query.
	Proc1 func(obj store.Item)
	// Proc2 runs on the selected object's complete answers.
	Proc2 func(obj store.Item, answers []query.Answer)
	// Filter selects which answers become new query objects. Objects
	// that were ever on the control list are dropped automatically, which
	// (together with a finite database) guarantees termination.
	Filter func(obj store.Item, answers []query.Answer) []store.ItemID
}

func (h Hooks) condition(controlLen, step int) bool {
	if h.Condition != nil {
		return h.Condition(controlLen, step)
	}
	return controlLen > 0
}

// Stats aggregates the cost of an exploration run.
type Stats struct {
	// Steps is the number of executed loop iterations (= completed
	// similarity queries).
	Steps int
	// Query aggregates the query-processing cost.
	Query msq.Stats
}

// controlList is the scheme's ControlList: FIFO with an ever-seen set so no
// object is enqueued twice.
type controlList struct {
	queue []store.ItemID
	seen  map[store.ItemID]bool
}

func newControlList(start []store.ItemID) *controlList {
	c := &controlList{seen: make(map[store.ItemID]bool, len(start))}
	for _, id := range start {
		c.push(id)
	}
	return c
}

func (c *controlList) push(id store.ItemID) {
	if c.seen[id] {
		return
	}
	c.seen[id] = true
	c.queue = append(c.queue, id)
}

func (c *controlList) pop() store.ItemID {
	id := c.queue[0]
	c.queue = c.queue[1:]
	return id
}

func (c *controlList) len() int { return len(c.queue) }

// Run executes the ExploreNeighborhoods scheme of Figure 2 with single
// similarity queries.
func Run(cfg Config, start []store.ItemID, hooks Hooks) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	var stats Stats
	control := newControlList(start)
	for hooks.condition(control.len(), stats.Steps) {
		obj := cfg.Items[control.pop()]
		if hooks.Proc1 != nil {
			hooks.Proc1(obj)
		}
		answers, qs, err := cfg.Proc.Single(obj.Vec, cfg.SimType)
		stats.Query = stats.Query.Add(qs)
		if err != nil {
			return stats, err
		}
		finishStep(cfg, hooks, obj, answers.Answers(), control)
		stats.Steps++
	}
	return stats, nil
}

// RunMultiple executes the transformed scheme of Figure 3: a set of up to
// BatchSize objects is selected from the control list and evaluated as one
// multiple similarity query, but only the first object and its (complete)
// answers are processed per iteration — the remaining answers are
// prefetched into the session buffer. The computed result is identical to
// Run's.
func RunMultiple(cfg Config, start []store.ItemID, hooks Hooks) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	if cfg.BatchSize < 2 {
		return Run(cfg, start, hooks)
	}
	var stats Stats
	control := newControlList(start)
	session := cfg.Proc.NewSession()
	for hooks.condition(control.len(), stats.Steps) {
		// choose_multiple: the first min(m, len) objects.
		m := cfg.BatchSize
		if m > control.len() {
			m = control.len()
		}
		batch := make([]msq.Query, m)
		for i := 0; i < m; i++ {
			it := cfg.Items[control.queue[i]]
			batch[i] = msq.Query{ID: uint64(it.ID), Vec: it.Vec, Type: cfg.SimType}
		}
		obj := cfg.Items[control.pop()]
		if hooks.Proc1 != nil {
			hooks.Proc1(obj)
		}
		results, qs, err := session.MultiQuery(batch)
		stats.Query = stats.Query.Add(qs)
		if err != nil {
			return stats, err
		}
		finishStep(cfg, hooks, obj, results[0].Answers(), control)
		stats.Steps++
	}
	return stats, nil
}

// finishStep runs proc_2 and the filter and updates the control list.
func finishStep(cfg Config, hooks Hooks, obj store.Item, answers []query.Answer, control *controlList) {
	if hooks.Proc2 != nil {
		hooks.Proc2(obj, answers)
	}
	if hooks.Filter == nil {
		return
	}
	for _, id := range hooks.Filter(obj, answers) {
		control.push(id)
	}
}
