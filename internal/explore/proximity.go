package explore

import (
	"fmt"
	"math"
	"sort"

	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/store"
)

// ProximityTopK implements the retrieval half of proximity analysis (§3.2,
// after Knorr & Ng): it finds the k database objects closest to a cluster,
// where an object's distance to the cluster is its minimum distance to any
// cluster member, excluding the members themselves. StartObjects is the
// cluster; all member queries run as one multiple similarity query.
// cfg.SimType is ignored.
func ProximityTopK(cfg Config, clusterIDs []store.ItemID, k int) ([]query.Answer, Stats, error) {
	// Each member asks for enough neighbors that, even if the nearest
	// ones are all fellow members, k outsiders remain.
	kNN := k + len(clusterIDs)
	cfg.SimType = query.NewKNN(kNN)
	var stats Stats
	if err := cfg.Validate(); err != nil {
		return nil, stats, err
	}
	if k < 1 {
		return nil, stats, fmt.Errorf("explore: k must be >= 1, got %d", k)
	}
	if len(clusterIDs) == 0 {
		return nil, stats, fmt.Errorf("explore: empty cluster")
	}

	member := make(map[store.ItemID]bool, len(clusterIDs))
	batch := make([]msq.Query, 0, len(clusterIDs))
	for _, id := range clusterIDs {
		if member[id] {
			continue
		}
		member[id] = true
		it := cfg.Items[id]
		batch = append(batch, msq.Query{ID: uint64(id), Vec: it.Vec, Type: cfg.SimType})
	}

	session := cfg.Proc.NewSession()
	results, qs, err := session.MultiQueryAll(batch)
	stats.Query = stats.Query.Add(qs)
	stats.Steps += len(batch)
	if err != nil {
		return nil, stats, err
	}

	// Aggregate: min distance to any member, per non-member object.
	minDist := make(map[store.ItemID]float64)
	for _, r := range results {
		for _, a := range r.Answers() {
			if member[a.ID] {
				continue
			}
			if d, ok := minDist[a.ID]; !ok || a.Dist < d {
				minDist[a.ID] = a.Dist
			}
		}
	}
	out := make([]query.Answer, 0, len(minDist))
	for id, d := range minDist {
		out = append(out, query.Answer{ID: id, Dist: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, stats, nil
}

// Feature describes one dimension of the common-feature analysis.
type Feature struct {
	Dim    int
	Mean   float64
	StdDev float64
	// Common reports whether the dimension's spread among the analyzed
	// objects is below the threshold relative to the global spread — the
	// "features that are common to most of them".
	Common bool
}

// CommonFeatures performs the second half of proximity analysis: given the
// top-k objects near a cluster, it reports per-dimension statistics and
// flags dimensions whose standard deviation within the group is below
// ratio times the standard deviation over the whole database.
func CommonFeatures(items []store.Item, ids []store.ItemID, ratio float64) ([]Feature, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("explore: no objects to analyze")
	}
	if ratio <= 0 {
		return nil, fmt.Errorf("explore: ratio must be positive, got %g", ratio)
	}
	dim := items[0].Vec.Dim()
	features := make([]Feature, dim)
	for d := 0; d < dim; d++ {
		gm, gs := meanStd(items, nil, d)
		m, s := meanStd(items, ids, d)
		features[d] = Feature{
			Dim:    d,
			Mean:   m,
			StdDev: s,
			Common: gs > 0 && s <= ratio*gs,
		}
		_ = gm
	}
	return features, nil
}

// meanStd computes mean and standard deviation of dimension d over the
// given ids, or over all items when ids is nil.
func meanStd(items []store.Item, ids []store.ItemID, d int) (mean, std float64) {
	var n int
	var sum, sum2 float64
	acc := func(v float64) {
		n++
		sum += v
		sum2 += v * v
	}
	if ids == nil {
		for i := range items {
			acc(items[i].Vec[d])
		}
	} else {
		for _, id := range ids {
			acc(items[id].Vec[d])
		}
	}
	if n == 0 {
		return 0, 0
	}
	mean = sum / float64(n)
	v := sum2/float64(n) - mean*mean
	if v < 0 {
		v = 0
	}
	return mean, math.Sqrt(v)
}
