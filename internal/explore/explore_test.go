package explore

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"metricdb/internal/dataset"
	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vec"
	"metricdb/internal/xtree"
)

func newConfig(t *testing.T, items []store.Item, simType query.Type, batch int) Config {
	t.Helper()
	e, err := scan.New(items, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := msq.New(e, vec.Euclidean{}, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Config{Proc: p, Items: items, SimType: simType, BatchSize: batch}
}

func TestConfigValidate(t *testing.T) {
	items := dataset.Uniform(1, 20, 2)
	cfg := newConfig(t, items, query.NewKNN(3), 4)
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := cfg
	bad.Proc = nil
	if bad.Validate() == nil {
		t.Error("nil processor accepted")
	}
	bad2 := cfg
	bad2.SimType = query.NewKNN(0)
	if bad2.Validate() == nil {
		t.Error("invalid sim type accepted")
	}
	// IDs must equal indexes.
	swapped := append([]store.Item(nil), items...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	bad3 := cfg
	bad3.Items = swapped
	if bad3.Validate() == nil {
		t.Error("misnumbered items accepted")
	}
}

// TestRunEquivalence checks the paper's central framework claim: the
// transformed multiple-query scheme computes exactly the same exploration
// as the single-query scheme.
func TestRunEquivalence(t *testing.T) {
	items := dataset.Uniform(2, 300, 4)
	hooks := func(visited *[]store.ItemID) Hooks {
		return Hooks{
			Proc2: func(obj store.Item, answers []query.Answer) {
				*visited = append(*visited, obj.ID)
			},
			Filter: func(obj store.Item, answers []query.Answer) []store.ItemID {
				var out []store.ItemID
				for _, a := range answers {
					if a.Dist <= 0.2 {
						out = append(out, a.ID)
					}
				}
				return out
			},
			Condition: func(controlLen, step int) bool {
				return controlLen > 0 && step < 40
			},
		}
	}

	var visitedSingle []store.ItemID
	cfg1 := newConfig(t, items, query.NewKNN(5), 0)
	s1, err := Run(cfg1, []store.ItemID{0, 7}, hooks(&visitedSingle))
	if err != nil {
		t.Fatal(err)
	}

	var visitedMulti []store.ItemID
	cfg2 := newConfig(t, items, query.NewKNN(5), 6)
	s2, err := RunMultiple(cfg2, []store.ItemID{0, 7}, hooks(&visitedMulti))
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(visitedSingle, visitedMulti) {
		t.Fatalf("exploration orders differ:\nsingle %v\nmulti  %v", visitedSingle, visitedMulti)
	}
	if s1.Steps != s2.Steps {
		t.Errorf("steps differ: %d vs %d", s1.Steps, s2.Steps)
	}
	// The multiple form must not cost more I/O than the single form.
	if s2.Query.PagesRead > s1.Query.PagesRead {
		t.Errorf("multiple form read more pages (%d) than single (%d)", s2.Query.PagesRead, s1.Query.PagesRead)
	}
}

func TestRunMultipleDegeneratesToRun(t *testing.T) {
	items := dataset.Uniform(3, 100, 3)
	cfg := newConfig(t, items, query.NewKNN(3), 1)
	var steps int
	_, err := RunMultiple(cfg, []store.ItemID{0}, Hooks{
		Proc2: func(store.Item, []query.Answer) { steps++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps != 1 {
		t.Errorf("steps = %d", steps)
	}
}

func TestControlListNoDuplicates(t *testing.T) {
	c := newControlList([]store.ItemID{1, 2, 1})
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	c.push(2)
	if c.len() != 2 {
		t.Error("duplicate enqueued")
	}
	if got := c.pop(); got != 1 {
		t.Errorf("pop = %d", got)
	}
	c.push(1) // was seen before: must stay out
	if c.len() != 1 {
		t.Error("re-enqueued a previously seen ID")
	}
}

// bruteDBSCAN is an independent reference implementation over a distance
// matrix.
func bruteDBSCAN(items []store.Item, eps float64, minPts int) []int {
	n := len(items)
	m := vec.Euclidean{}
	nbrs := make([][]store.ItemID, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m.Distance(items[i].Vec, items[j].Vec) <= eps {
				nbrs[i] = append(nbrs[i], store.ItemID(j))
			}
		}
	}
	labels := make([]int, n)
	cluster := 0
	for i := 0; i < n; i++ {
		if labels[i] != 0 {
			continue
		}
		if len(nbrs[i]) < minPts {
			labels[i] = Noise
			continue
		}
		cluster++
		labels[i] = cluster
		queue := append([]store.ItemID(nil), nbrs[i]...)
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			if labels[id] == Noise {
				labels[id] = cluster
			}
			if labels[id] != 0 {
				continue
			}
			labels[id] = cluster
			if len(nbrs[id]) >= minPts {
				queue = append(queue, nbrs[id]...)
			}
		}
	}
	return labels
}

func TestDBSCANMatchesReference(t *testing.T) {
	items, err := dataset.Clustered(dataset.ClusteredConfig{
		Seed: 4, N: 400, Dim: 2, Clusters: 3, Spread: 0.02, NoiseFraction: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	const eps, minPts = 0.08, 4

	cfg := newConfig(t, items, query.Type{}, 8)
	res, err := DBSCAN(cfg, eps, minPts)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteDBSCAN(items, eps, minPts)

	// Cluster IDs may be permuted; compare the partitions.
	if !samePartition(res.Labels, want) {
		t.Error("DBSCAN partition differs from reference")
	}
	if res.Clusters < 2 {
		t.Errorf("found %d clusters, expected the generated 3 (possibly merged)", res.Clusters)
	}
	if res.Stats.Query.PagesRead == 0 || res.Stats.Steps == 0 {
		t.Error("no work recorded")
	}
}

// samePartition checks that two labelings induce the same grouping, with
// noise (-1) required to match exactly.
func samePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[int]int)
	rev := make(map[int]int)
	for i := range a {
		if (a[i] == Noise) != (b[i] == Noise) {
			return false
		}
		if a[i] == Noise {
			continue
		}
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if y, ok := rev[b[i]]; ok && y != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

func TestDBSCANValidation(t *testing.T) {
	items := dataset.Uniform(5, 50, 2)
	cfg := newConfig(t, items, query.Type{}, 4)
	if _, err := DBSCAN(cfg, 0.1, 0); err == nil {
		t.Error("minPts 0 accepted")
	}
	if _, err := DBSCAN(cfg, -1, 3); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestClassifyKNN(t *testing.T) {
	items, err := dataset.Clustered(dataset.ClusteredConfig{
		Seed: 6, N: 600, Dim: 8, Clusters: 4, Spread: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := newConfig(t, items, query.Type{}, 10)

	// Classify perturbed copies of known items; the majority of the
	// predictions must recover the generating cluster.
	const probes = 40
	objects := make([]vec.Vector, probes)
	truth := make([]int, probes)
	for i := 0; i < probes; i++ {
		src := items[i*7]
		v := src.Vec.Clone()
		v[0] += 0.001
		objects[i] = v
		truth[i] = src.Label
	}
	labels, stats, err := ClassifyKNN(cfg, objects, 5)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range labels {
		if labels[i] == truth[i] {
			correct++
		}
	}
	if correct < probes*8/10 {
		t.Errorf("only %d/%d classified correctly", correct, probes)
	}
	if stats.Steps != probes {
		t.Errorf("steps = %d, want %d", stats.Steps, probes)
	}
	if _, _, err := ClassifyKNN(cfg, objects, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestSimulateExploration(t *testing.T) {
	items, err := dataset.Clustered(dataset.ClusteredConfig{
		Seed: 7, N: 500, Dim: 6, Clusters: 4, Spread: 0.04,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := xtree.Bulk(items, 6, xtree.Config{LeafCapacity: 16, DirFanout: 8, BufferPages: 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := msq.New(tr, vec.Euclidean{}, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Proc: p, Items: items, SimType: query.Type{}, BatchSize: 0}

	stats, err := SimulateExploration(cfg, ExplorationConfig{Users: 3, K: 5, Rounds: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps == 0 || stats.Query.PagesRead == 0 {
		t.Errorf("no work recorded: %+v", stats)
	}

	bad := []ExplorationConfig{
		{Users: 0, K: 5, Rounds: 1},
		{Users: 1, K: 0, Rounds: 1},
		{Users: 1, K: 5, Rounds: 0},
	}
	for _, ec := range bad {
		if _, err := SimulateExploration(cfg, ec); err == nil {
			t.Errorf("config %+v accepted", ec)
		}
	}
}

func TestProximityTopK(t *testing.T) {
	// Plant a tight cluster at the origin corner and a few known nearby
	// outsiders.
	var items []store.Item
	addAt := func(x, y float64, label int) store.ItemID {
		id := store.ItemID(len(items))
		items = append(items, store.Item{ID: id, Vec: vec.Vector{x, y}, Label: label})
		return id
	}
	var clusterIDs []store.ItemID
	for i := 0; i < 5; i++ {
		clusterIDs = append(clusterIDs, addAt(0.01*float64(i), 0.0, 1))
	}
	near := addAt(0.1, 0.0, 0)
	mid := addAt(0.3, 0.0, 0)
	for i := 0; i < 30; i++ {
		addAt(0.8+0.005*float64(i), 0.9, 0)
	}

	cfg := newConfig(t, items, query.Type{}, 8)
	top, stats, err := ProximityTopK(cfg, clusterIDs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("got %d answers", len(top))
	}
	if top[0].ID != near || top[1].ID != mid {
		t.Errorf("top-2 = %v, want [%d %d]", top, near, mid)
	}
	if math.Abs(top[0].Dist-0.06) > 1e-9 {
		t.Errorf("closest distance %v, want 0.06 (min over members)", top[0].Dist)
	}
	if stats.Steps != len(clusterIDs) {
		t.Errorf("steps = %d", stats.Steps)
	}

	if _, _, err := ProximityTopK(cfg, nil, 2); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, _, err := ProximityTopK(cfg, clusterIDs, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestCommonFeatures(t *testing.T) {
	// Dimension 0 is identical among the selected items, dimension 1 varies.
	items := []store.Item{
		{ID: 0, Vec: vec.Vector{0.5, 0.1}},
		{ID: 1, Vec: vec.Vector{0.5, 0.9}},
		{ID: 2, Vec: vec.Vector{0.5, 0.4}},
		{ID: 3, Vec: vec.Vector{0.1, 0.2}},
		{ID: 4, Vec: vec.Vector{0.9, 0.7}},
	}
	fs, err := CommonFeatures(items, []store.ItemID{0, 1, 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !fs[0].Common {
		t.Error("constant dimension not flagged common")
	}
	if fs[1].Common {
		t.Error("varying dimension flagged common")
	}
	if _, err := CommonFeatures(items, nil, 0.5); err == nil {
		t.Error("empty selection accepted")
	}
	if _, err := CommonFeatures(items, []store.ItemID{0}, 0); err == nil {
		t.Error("zero ratio accepted")
	}
}

func TestDetectTrends(t *testing.T) {
	// A 1-d chain with linearly increasing attribute: a perfect trend.
	var items []store.Item
	for i := 0; i < 30; i++ {
		items = append(items, store.Item{
			ID:    store.ItemID(i),
			Vec:   vec.Vector{float64(i) * 0.1, 0},
			Label: i, // attribute = index
		})
	}
	cfg := newConfig(t, items, query.Type{}, 4)
	attr := func(it store.Item) float64 { return float64(it.Label) }

	trends, stats, err := DetectTrends(cfg, 0, attr, TrendConfig{K: 2, Branch: 1, MaxLength: 6, MinR2: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(trends) == 0 {
		t.Fatal("no trend found on perfectly linear data")
	}
	tr := trends[0]
	if tr.Slope <= 0 {
		t.Errorf("slope = %v, want positive", tr.Slope)
	}
	if tr.R2 < 0.9 {
		t.Errorf("R2 = %v", tr.R2)
	}
	if len(tr.Path) < 3 || tr.Path[0] != 0 {
		t.Errorf("path = %v", tr.Path)
	}
	if stats.Steps == 0 {
		t.Error("no steps recorded")
	}

	if _, _, err := DetectTrends(cfg, 0, nil, TrendConfig{K: 2, Branch: 1, MaxLength: 3}); err == nil {
		t.Error("nil attribute accepted")
	}
	if _, _, err := DetectTrends(cfg, 0, attr, TrendConfig{K: 2, Branch: 5, MaxLength: 3}); err == nil {
		t.Error("Branch > K accepted")
	}
}

func TestLinearRegression(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	slope, intercept, r2 := linearRegression(xs, ys)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Errorf("fit = %v, %v, %v", slope, intercept, r2)
	}
	// Degenerate x.
	s2, _, r22 := linearRegression([]float64{1, 1}, []float64{0, 5})
	if s2 != 0 || r22 != 0 {
		t.Errorf("degenerate fit = %v, %v", s2, r22)
	}
	// Constant y.
	_, _, r23 := linearRegression([]float64{0, 1, 2}, []float64{4, 4, 4})
	if r23 != 1 {
		t.Errorf("constant-y R2 = %v", r23)
	}
}

func TestSpatialAssociationRules(t *testing.T) {
	// Towns (label 1) planted right next to lakes (label 2); factories
	// (label 3) far away.
	var items []store.Item
	add := func(x, y float64, label int) {
		items = append(items, store.Item{ID: store.ItemID(len(items)), Vec: vec.Vector{x, y}, Label: label})
	}
	for i := 0; i < 10; i++ {
		x := float64(i) * 0.5
		add(x, 0, 1)      // town
		add(x+0.01, 0, 2) // lake next to it
	}
	for i := 0; i < 5; i++ {
		add(float64(i)*0.5, 5, 3) // factories far away
	}

	cfg := newConfig(t, items, query.Type{}, 6)
	rules, stats, err := SpatialAssociationRules(cfg, 1, 0.05, 0.6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("rules = %+v, want exactly town→lake", rules)
	}
	r := rules[0]
	if r.From != 1 || r.To != 2 {
		t.Errorf("rule = %+v", r)
	}
	if r.Support < 0.99 {
		t.Errorf("support = %v, want 1.0 (every town has a lake)", r.Support)
	}
	if stats.Steps != 10 {
		t.Errorf("steps = %d", stats.Steps)
	}

	if _, _, err := SpatialAssociationRules(cfg, 99, 0.05, 0.5, 0.1); err == nil {
		t.Error("unknown type accepted")
	}
	if _, _, err := SpatialAssociationRules(cfg, 1, 0.05, 2, 0.1); err == nil {
		t.Error("bad threshold accepted")
	}
}

func TestExplorationSurfacesDiskErrors(t *testing.T) {
	items := dataset.Uniform(30, 200, 3)
	cfg := newConfig(t, items, query.NewKNN(3), 4)
	boom := errors.New("boom")
	cfg.Proc.Engine().Pager().Disk().(*store.Disk).FailOn(func(pid store.PageID) error {
		if pid >= 2 {
			return boom
		}
		return nil
	})
	if _, err := Run(cfg, []store.ItemID{0}, Hooks{}); !errors.Is(err, boom) {
		t.Errorf("Run did not surface the disk error: %v", err)
	}
	if _, err := RunMultiple(cfg, []store.ItemID{0}, Hooks{}); !errors.Is(err, boom) {
		t.Errorf("RunMultiple did not surface the disk error: %v", err)
	}
	if _, err := DBSCAN(cfg, 0.2, 3); !errors.Is(err, boom) {
		t.Errorf("DBSCAN did not surface the disk error: %v", err)
	}
	if _, _, err := ClassifyKNN(cfg, []vec.Vector{items[0].Vec}, 3); !errors.Is(err, boom) {
		t.Errorf("ClassifyKNN did not surface the disk error: %v", err)
	}
	if _, err := SimulateExploration(cfg, ExplorationConfig{Users: 1, K: 2, Rounds: 1, Seed: 1}); !errors.Is(err, boom) {
		t.Errorf("SimulateExploration did not surface the disk error: %v", err)
	}
	if _, _, err := ProximityTopK(cfg, []store.ItemID{0, 1}, 2); !errors.Is(err, boom) {
		t.Errorf("ProximityTopK did not surface the disk error: %v", err)
	}
}
