package vec

import (
	"fmt"
	"math"
)

// Block is the columnar (SoA) representation of one page's item
// coordinates: a single contiguous item-major float64 buffer instead of
// one heap allocation per item, plus optional reduced-precision sibling
// representations materialized at build time.
//
//	F64:   [item0 d0..dDim-1 | item1 d0..dDim-1 | ...]   8·Dim bytes/item
//	F32:   same layout in float32                         4·Dim bytes/item
//	Codes: same layout, one cell index byte per dimension  Dim bytes/item
//
// F64 is always present and is the source of truth: page Items alias rows
// of it (Item(i) returns a subslice, never a copy), so every existing
// per-pair code path reads the exact same float64 values whether or not a
// block is attached — attaching one can change memory placement but never
// results. The siblings trade precision for memory bandwidth:
//
//   - F32 stores coordinates rounded to float32. Distances computed over
//     it (see RowWithinF32) accumulate in float64, so the only error is
//     the half-ulp input rounding: for the coordinatewise metrics this
//     bounds the distance error by ~Dim·2⁻²⁴ relative to the coordinate
//     magnitudes — documented, not hidden, and opted into per open.
//   - Codes is a VA-file-style fixed-bit quantization on a dataset-wide
//     per-dimension grid (Grid). It supports only lower-bound filtering
//     (QuantFilter): a code-level rejection proves dist > limit, and
//     survivors are always refined on F64, so answers stay bit-identical.
type Block struct {
	// Dim is the dimensionality of every row.
	Dim int
	// N is the number of items in the block.
	N int
	// F64 is the item-major coordinate buffer, len N*Dim. Always non-nil
	// for a built block.
	F64 []float64
	// F32 is the optional float32 sibling, len N*Dim when present.
	F32 []float32
	// Codes is the optional quantized sibling, one byte per coordinate
	// (len N*Dim) regardless of CodeBits, which keeps decoding trivial
	// and rows addressable; CodeBits ≤ 8 bounds the cell count.
	Codes []uint8
	// CodeBits is the quantization width in bits (1..8) when Codes is
	// present. It is stored on the block (not only on Grid) because a
	// decoded page record carries the codes and their width before the
	// dataset-wide grid is attached.
	CodeBits int
	// Grid is the dataset-wide quantization grid for Codes. It is
	// attached by whoever built or loaded the dataset; Codes without a
	// Grid can be re-encoded to disk but not used for filtering.
	Grid *QuantGrid
}

// NewBlock allocates a block for n items of the given dimensionality with
// only the float64 representation.
func NewBlock(dim, n int) *Block {
	return &Block{Dim: dim, N: n, F64: make([]float64, n*dim)}
}

// Item returns row i of the float64 buffer as a Vector. The returned slice
// aliases the block.
func (b *Block) Item(i int) Vector {
	return b.F64[i*b.Dim : (i+1)*b.Dim : (i+1)*b.Dim]
}

// ItemF32 returns row i of the float32 sibling; nil if absent.
func (b *Block) ItemF32(i int) []float32 {
	if b.F32 == nil {
		return nil
	}
	return b.F32[i*b.Dim : (i+1)*b.Dim : (i+1)*b.Dim]
}

// ItemCodes returns row i of the quantized sibling; nil if absent.
func (b *Block) ItemCodes(i int) []uint8 {
	if b.Codes == nil {
		return nil
	}
	return b.Codes[i*b.Dim : (i+1)*b.Dim : (i+1)*b.Dim]
}

// SetItem copies v into row i of the float64 buffer.
func (b *Block) SetItem(i int, v Vector) {
	if len(v) != b.Dim {
		panic(fmt.Sprintf("vec: block row dim %d, vector dim %d", b.Dim, len(v)))
	}
	copy(b.F64[i*b.Dim:(i+1)*b.Dim], v)
}

// DeriveF32 (re)materializes the float32 sibling by rounding F64.
func (b *Block) DeriveF32() {
	if b.F32 == nil {
		b.F32 = make([]float32, len(b.F64))
	}
	for i, v := range b.F64 {
		b.F32[i] = float32(v)
	}
}

// DeriveCodes (re)materializes the quantized sibling on grid g and
// attaches it.
func (b *Block) DeriveCodes(g *QuantGrid) {
	if g.Dim() != b.Dim {
		panic(fmt.Sprintf("vec: grid dim %d, block dim %d", g.Dim(), b.Dim))
	}
	if b.Codes == nil {
		b.Codes = make([]uint8, len(b.F64))
	}
	for i := 0; i < b.N; i++ {
		g.EncodeInto(b.Item(i), b.Codes[i*b.Dim:(i+1)*b.Dim])
	}
	b.Grid = g
	b.CodeBits = g.Bits
}

// ToF32 rounds a float64 vector to float32, the query-side counterpart of
// Block.DeriveF32 (both sides of an F32 distance must be rounded the same
// way for the documented error bound to hold).
func ToF32(v Vector) []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// QuantGrid is a dataset-wide equi-width per-dimension quantization grid:
// dimension d is cut into 2^Bits cells of width Step[d] starting at
// Min[d]. It mirrors the VA-file construction in internal/vafile but lives
// here so the storage layer and the kernels can share it without a
// dependency cycle.
type QuantGrid struct {
	// Bits is the per-dimension cell index width, 1..8.
	Bits int
	// Min is the lower edge of cell 0 per dimension.
	Min []float64
	// Step is the cell width per dimension; 0 for degenerate dimensions
	// (all values identical), which the encoder and filter handle
	// explicitly.
	Step []float64
}

// BuildQuantGrid constructs a grid from per-dimension data bounds.
func BuildQuantGrid(bits int, lo, hi []float64) (*QuantGrid, error) {
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("vec: quantization bits must be in [1,8], got %d", bits)
	}
	if len(lo) != len(hi) {
		return nil, fmt.Errorf("vec: bound slices disagree: %d vs %d dims", len(lo), len(hi))
	}
	cells := float64(int(1) << bits)
	g := &QuantGrid{Bits: bits, Min: make([]float64, len(lo)), Step: make([]float64, len(lo))}
	for d := range lo {
		if math.IsNaN(lo[d]) || math.IsNaN(hi[d]) || math.IsInf(lo[d], 0) || math.IsInf(hi[d], 0) {
			return nil, fmt.Errorf("vec: non-finite bound on dimension %d", d)
		}
		if hi[d] < lo[d] {
			return nil, fmt.Errorf("vec: inverted bounds on dimension %d", d)
		}
		g.Min[d] = lo[d]
		g.Step[d] = (hi[d] - lo[d]) / cells
		if g.Step[d] == 0 && hi[d] > lo[d] {
			// The division underflowed on a pathologically narrow
			// dimension; one full-range cell keeps every invariant the
			// filter relies on (values below boundary(1) = hi).
			g.Step[d] = hi[d] - lo[d]
		}
	}
	return g, nil
}

// Dim returns the grid's dimensionality.
func (g *QuantGrid) Dim() int { return len(g.Min) }

// Cells returns the number of cells per dimension.
func (g *QuantGrid) Cells() int { return 1 << g.Bits }

// boundary returns the lower edge of cell c on dimension d.
func (g *QuantGrid) boundary(d, c int) float64 {
	return g.Min[d] + g.Step[d]*float64(c)
}

// EncodeInto quantizes v into dst (len == Dim). Cell assignment divides by
// the step, then nudges against the computed boundaries — the same
// floating-point edge-drift guard the VA-file uses — so the invariant
// boundary(c) <= v (for c > 0) and v < boundary(c+1) (for c < cells-1)
// holds exactly. Values outside the grid (possible when the grid was built
// from different data) clamp into the edge cells; the filter treats the
// edge cells as open-ended, so clamping stays sound.
func (g *QuantGrid) EncodeInto(v Vector, dst []uint8) {
	if len(v) != len(g.Min) || len(dst) != len(g.Min) {
		panic(fmt.Sprintf("vec: grid dim %d, vector dim %d, dst %d", len(g.Min), len(v), len(dst)))
	}
	top := g.Cells() - 1
	for d, x := range v {
		c := 0
		if step := g.Step[d]; step > 0 {
			c = int((x - g.Min[d]) / step)
			if c < 0 {
				c = 0
			}
			if c > top {
				c = top
			}
			for c > 0 && x < g.boundary(d, c) {
				c--
			}
			for c < top && x >= g.boundary(d, c+1) {
				c++
			}
		}
		// Degenerate dimensions (Step == 0: every value equal) stay in
		// cell 0, where v == boundary(1) holds non-strictly — exactly
		// what the filter's upper-gap bound needs.
		dst[d] = uint8(c)
	}
}

// quantXform selects how QuantFilter transforms a distance limit into the
// pre-finalization accumulation space its table lives in.
type quantXform int

const (
	xformIdentity quantXform = iota // L1, L∞: accumulate plain gaps
	xformSquare                     // L2, weighted L2: accumulate squared gaps
	xformPow                        // general Lp: accumulate gap^p
)

// QuantFilter is the per-query lower-bound filter over quantized codes: a
// precomputed dim×cells table of per-dimension gap terms between the query
// coordinate and the nearest edge of each cell, in the metric's
// pre-finalization space. Accumulating the table entries for an item's
// codes yields a lower bound on the true distance (every coordinate of the
// item lies inside its cell, edge cells open-ended), so Exceeds==true
// proves dist > limit without touching the item's coordinates.
//
// The filter is sound for the coordinatewise metrics only; NewQuantFilter
// returns nil for anything else (e.g. the quadratic form) and a nil filter
// rejects nothing.
type QuantFilter struct {
	dim, cells int
	table      []float64 // dim*cells pre-finalization gap terms
	xform      quantXform
	p          float64 // order for xformPow
	maxCombine bool    // Chebyshev: combine by max instead of sum
}

// NewQuantFilter builds the filter for query q under metric m on grid g,
// or nil when the metric does not support code-level lower bounds.
// Counting wrappers are stripped first.
func NewQuantFilter(m Metric, g *QuantGrid, q Vector) *QuantFilter {
	base := BaseMetric(m)
	dim, cells := g.Dim(), g.Cells()
	if len(q) != dim {
		panic(fmt.Sprintf("vec: grid dim %d, query dim %d", dim, len(q)))
	}
	f := &QuantFilter{dim: dim, cells: cells, table: make([]float64, dim*cells)}
	var term func(d int, gap float64) float64
	switch bm := base.(type) {
	case Euclidean:
		f.xform = xformSquare
		term = func(_ int, gap float64) float64 { return gap * gap }
	case Manhattan:
		f.xform = xformIdentity
		term = func(_ int, gap float64) float64 { return gap }
	case Chebyshev:
		f.xform = xformIdentity
		f.maxCombine = true
		term = func(_ int, gap float64) float64 { return gap }
	case Minkowski:
		switch bm.p {
		case 1:
			f.xform = xformIdentity
			term = func(_ int, gap float64) float64 { return gap }
		case 2:
			f.xform = xformSquare
			term = func(_ int, gap float64) float64 { return gap * gap }
		default:
			f.xform = xformPow
			f.p = bm.p
			term = func(_ int, gap float64) float64 { return bm.term(gap) }
		}
	case *WeightedEuclidean:
		if len(bm.weights) != dim {
			return nil
		}
		f.xform = xformSquare
		w := bm.weights
		term = func(d int, gap float64) float64 { return w[d] * gap * gap }
	default:
		return nil
	}
	for d := 0; d < dim; d++ {
		qv := q[d]
		for c := 0; c < cells; c++ {
			var gap float64
			if lo := g.boundary(d, c); c > 0 && qv < lo {
				gap = lo - qv
			} else if hi := g.boundary(d, c+1); c < cells-1 && qv > hi {
				gap = qv - hi
			}
			f.table[d*cells+c] = term(d, gap)
		}
	}
	return f
}

// Exceeds reports whether the code-level lower bound for an item with the
// given codes provably exceeds limit, i.e. the true distance to the
// filter's query is > limit and the pair can be skipped without reading
// coordinates. A nil filter rejects nothing.
func (f *QuantFilter) Exceeds(codes []uint8, limit float64) bool {
	if f == nil {
		return false
	}
	var t float64
	switch f.xform {
	case xformSquare:
		t = limit * limit
	case xformPow:
		t = math.Pow(limit, f.p)
	default:
		t = limit
	}
	table, cells := f.table, f.cells
	if f.maxCombine {
		for d, c := range codes {
			if table[d*cells+int(c)] > t {
				return true
			}
		}
		return false
	}
	var s float64
	for d, c := range codes {
		s += table[d*cells+int(c)]
		if s > t {
			return true
		}
	}
	return false
}

// BlockKernel evaluates one item of a columnar block against many queries
// at once: the row-at-a-time building block of the blocked page pass. The
// m-queries × page-items tile streams each item row through the cache once
// for the whole active set, and the per-metric implementations call the
// exact scalar kernel bodies (euclideanWithin and friends), so for float64
// the results — d, within, and the abandon point — are bit-identical to m
// independent DistanceWithin calls with the same limits.
type BlockKernel interface {
	// RowWithin evaluates every query against item i of b under the
	// per-query limits, writing distances to dOut and within flags to
	// wOut (both len(queries)), and returns how many evaluations the
	// limits resolved (within == false). Each within flag is bit-identical
	// to DistanceWithin(queries[a], b.Item(i), limits[a]), and so is
	// dOut[a] wherever wOut[a] holds; an abandoned lane's dOut is some
	// value exceeding its limit (the specialized kernels report +Inf
	// rather than pay the scalar kernel's abandon-point square root), and
	// the page passes never read it.
	RowWithin(queries []Vector, b *Block, i int, limits []float64, dOut []float64, wOut []bool) int

	// RowWithinF32 is RowWithin over the float32 sibling: queries must be
	// pre-rounded with ToF32, accumulation is float64, and results carry
	// the documented input-rounding error. Panics when the metric has no
	// float32 kernel — guard with SupportsF32.
	RowWithinF32(queries [][]float32, b *Block, i int, limits []float64, dOut []float64, wOut []bool) int

	// PairWithinF32 is the single-pair float32 evaluation used by code
	// paths (triangle-inequality avoidance) that cannot batch a whole
	// row. Panics when the metric has no float32 kernel.
	PairWithinF32(q []float32, b *Block, i int, limit float64) (float64, bool)

	// SupportsF32 reports whether the float32 entry points are available.
	SupportsF32() bool
}

// NewBlockKernel returns the blocked kernel for m: a specialized
// implementation for the metrics with native scalar kernels, and a generic
// per-query fallback (same results, no devirtualization win) for anything
// else. Minkowski p ∈ {1, 2} resolves to the L1/L2 kernels, matching the
// scalar delegation.
func NewBlockKernel(m BoundedMetric) BlockKernel {
	switch bm := m.(type) {
	case Euclidean:
		return eucBlockKernel{}
	case Manhattan:
		return manBlockKernel{}
	case Chebyshev:
		return chebBlockKernel{}
	case Minkowski:
		switch bm.p {
		case 1:
			return manBlockKernel{}
		case 2:
			return eucBlockKernel{}
		}
		return minkBlockKernel{m: bm}
	case *WeightedEuclidean:
		return wgtBlockKernel{m: bm}
	}
	return genericBlockKernel{bm: m}
}

// DistanceBlockWithin evaluates the queries × items tile over rows
// [lo, hi) of b: row i-lo of dOut/wOut receives the per-query results for
// item i, exactly as RowWithin would produce them. It returns the batch
// counter deltas — calcs evaluations performed, abandoned of them resolved
// by their limit — for a single Counting.AddCalls settlement per block.
func DistanceBlockWithin(k BlockKernel, queries []Vector, b *Block, lo, hi int, limits []float64, dOut [][]float64, wOut [][]bool) (calcs, abandoned int64) {
	m := int64(len(queries))
	for i := lo; i < hi; i++ {
		ab := k.RowWithin(queries, b, i, limits, dOut[i-lo], wOut[i-lo])
		calcs += m
		abandoned += int64(ab)
	}
	return calcs, abandoned
}

// eucBlockKernel is the Euclidean row kernel. Queries are processed in
// groups of four so the item row — just loaded into L1 — feeds four
// independent accumulation chains; when none of the group's limits is
// finite the check-free interleaved fast path (euclideanRow4Inf) runs,
// otherwise the bounded interleaved path (euclideanRow4) does, whose
// flags and within-distances match the scalar kernel bit-for-bit.
type eucBlockKernel struct{}

func (eucBlockKernel) SupportsF32() bool { return true }

func (eucBlockKernel) RowWithin(queries []Vector, b *Block, i int, limits []float64, dOut []float64, wOut []bool) int {
	it := b.Item(i)
	inf := math.Inf(1)
	ab := 0
	a := 0
	for ; a+4 <= len(queries); a += 4 {
		if limits[a] == inf && limits[a+1] == inf && limits[a+2] == inf && limits[a+3] == inf {
			euclideanRow4Inf(queries[a], queries[a+1], queries[a+2], queries[a+3], it, dOut[a:a+4])
			wOut[a], wOut[a+1], wOut[a+2], wOut[a+3] = true, true, true, true
			continue
		}
		ab += euclideanRow4(queries[a], queries[a+1], queries[a+2], queries[a+3], it,
			limits[a:a+4], dOut[a:a+4], wOut[a:a+4])
	}
	for ; a < len(queries); a++ {
		d, w := euclideanWithin(queries[a], it, limits[a])
		dOut[a], wOut[a] = d, w
		if !w {
			ab++
		}
	}
	return ab
}

func (eucBlockKernel) RowWithinF32(queries [][]float32, b *Block, i int, limits []float64, dOut []float64, wOut []bool) int {
	it := b.ItemF32(i)
	ab := 0
	for a := range queries {
		d, w := euclideanWithinF32(queries[a], it, limits[a])
		dOut[a], wOut[a] = d, w
		if !w {
			ab++
		}
	}
	return ab
}

func (eucBlockKernel) PairWithinF32(q []float32, b *Block, i int, limit float64) (float64, bool) {
	return euclideanWithinF32(q, b.ItemF32(i), limit)
}

// euclideanRow4Inf accumulates four unbounded Euclidean distances against
// one item row with element-interleaved lanes: four independent dependency
// chains keep the FPU busy where the scalar kernel's single running sum is
// latency-bound. Per lane the additions happen in strict index order, so
// each result is bit-equal to euclideanWithin(q, it, +Inf).
func euclideanRow4Inf(q0, q1, q2, q3, it Vector, dOut []float64) {
	mustSameDim(q0, it)
	mustSameDim(q1, it)
	mustSameDim(q2, it)
	mustSameDim(q3, it)
	n := len(it)
	q0, q1, q2, q3 = q0[:n], q1[:n], q2[:n], q3[:n]
	dOut = dOut[:4]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		v0, v1, v2, v3 := it[i], it[i+1], it[i+2], it[i+3]
		e00 := q0[i] - v0
		s0 += e00 * e00
		e10 := q1[i] - v0
		s1 += e10 * e10
		e20 := q2[i] - v0
		s2 += e20 * e20
		e30 := q3[i] - v0
		s3 += e30 * e30
		e01 := q0[i+1] - v1
		s0 += e01 * e01
		e11 := q1[i+1] - v1
		s1 += e11 * e11
		e21 := q2[i+1] - v1
		s2 += e21 * e21
		e31 := q3[i+1] - v1
		s3 += e31 * e31
		e02 := q0[i+2] - v2
		s0 += e02 * e02
		e12 := q1[i+2] - v2
		s1 += e12 * e12
		e22 := q2[i+2] - v2
		s2 += e22 * e22
		e32 := q3[i+2] - v2
		s3 += e32 * e32
		e03 := q0[i+3] - v3
		s0 += e03 * e03
		e13 := q1[i+3] - v3
		s1 += e13 * e13
		e23 := q2[i+3] - v3
		s2 += e23 * e23
		e33 := q3[i+3] - v3
		s3 += e33 * e33
	}
	for ; i < n; i++ {
		v := it[i]
		e0 := q0[i] - v
		s0 += e0 * e0
		e1 := q1[i] - v
		s1 += e1 * e1
		e2 := q2[i] - v
		s2 += e2 * e2
		e3 := q3[i] - v
		s3 += e3 * e3
	}
	dOut[0] = math.Sqrt(s0)
	dOut[1] = math.Sqrt(s1)
	dOut[2] = math.Sqrt(s2)
	dOut[3] = math.Sqrt(s3)
}

// rowLimitSlack widens the squared-limit screen of the bounded row kernel.
// The guarantee needed is one-sided: s > fl(fl(limit²)·rowLimitSlack) must
// imply sqrt(s) > limit, so a lane can be declared abandoned without a
// square root. Each rounding contributes ~1.1e-16 of relative error while
// the slack adds 1e-10 of headroom, so the implication holds with margin;
// lanes in the (at most ~1e-10-wide) band above the exact squared limit
// simply fall through to the exact square-root comparison.
const rowLimitSlack = 1 + 1e-10

// eucLane resolves one lane of euclideanRow4 from its full squared sum:
// past the widened screen h the lane is abandoned without a square root
// (reported as +Inf — see the RowWithin contract), otherwise the exact
// comparison decides, which is the scalar kernel's final check verbatim.
func eucLane(s, limit, h float64) (float64, bool) {
	if s > h {
		return math.Inf(1), false
	}
	d := math.Sqrt(s)
	return d, d <= limit
}

// euclideanRow4 is the bounded counterpart of euclideanRow4Inf: four
// element-interleaved accumulation chains over one item row, with the
// scalar kernel's running limit checks replaced by one group check per
// chunk — sums only grow, so once every lane exceeds its widened squared
// limit all four are provably abandoned and the row stops — and a
// squared-domain screen per lane at the end. Abandoned lanes never pay the
// square root the scalar kernel computes at its abandon point; that and
// the removed per-chunk branch-and-sqrt are where the bounded row path
// gains over per-pair evaluation. Flags and abandon counts still match
// euclideanWithin exactly: per lane the additions happen in strict index
// order, and both loops decide within ⟺ sqrt(full sum) <= limit (the
// scalar early return fires only when that predicate already fails, and a
// sum that stays under the limit is accumulated to the end by both).
func euclideanRow4(q0, q1, q2, q3, it Vector, limits, dOut []float64, wOut []bool) int {
	mustSameDim(q0, it)
	mustSameDim(q1, it)
	mustSameDim(q2, it)
	mustSameDim(q3, it)
	n := len(it)
	// Reslicing to the common length lets the compiler retire the bounds
	// checks inside the chunk loop (it cannot see the equality mustSameDim
	// established); likewise pinning the lane outputs to exactly four.
	q0, q1, q2, q3 = q0[:n], q1[:n], q2[:n], q3[:n]
	limits, dOut, wOut = limits[:4], dOut[:4], wOut[:4]
	h0 := limits[0] * limits[0] * rowLimitSlack
	h1 := limits[1] * limits[1] * rowLimitSlack
	h2 := limits[2] * limits[2] * rowLimitSlack
	h3 := limits[3] * limits[3] * rowLimitSlack
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		v0, v1, v2, v3 := it[i], it[i+1], it[i+2], it[i+3]
		e00 := q0[i] - v0
		s0 += e00 * e00
		e10 := q1[i] - v0
		s1 += e10 * e10
		e20 := q2[i] - v0
		s2 += e20 * e20
		e30 := q3[i] - v0
		s3 += e30 * e30
		e01 := q0[i+1] - v1
		s0 += e01 * e01
		e11 := q1[i+1] - v1
		s1 += e11 * e11
		e21 := q2[i+1] - v1
		s2 += e21 * e21
		e31 := q3[i+1] - v1
		s3 += e31 * e31
		e02 := q0[i+2] - v2
		s0 += e02 * e02
		e12 := q1[i+2] - v2
		s1 += e12 * e12
		e22 := q2[i+2] - v2
		s2 += e22 * e22
		e32 := q3[i+2] - v2
		s3 += e32 * e32
		e03 := q0[i+3] - v3
		s0 += e03 * e03
		e13 := q1[i+3] - v3
		s1 += e13 * e13
		e23 := q2[i+3] - v3
		s2 += e23 * e23
		e33 := q3[i+3] - v3
		s3 += e33 * e33
		// Group check only while chunks remain: on the last chunk the
		// per-lane resolve below performs the same screens anyway.
		if i+8 <= n && s0 > h0 && s1 > h1 && s2 > h2 && s3 > h3 {
			inf := math.Inf(1)
			dOut[0], dOut[1], dOut[2], dOut[3] = inf, inf, inf, inf
			wOut[0], wOut[1], wOut[2], wOut[3] = false, false, false, false
			return 4
		}
	}
	for ; i < n; i++ {
		v := it[i]
		e0 := q0[i] - v
		s0 += e0 * e0
		e1 := q1[i] - v
		s1 += e1 * e1
		e2 := q2[i] - v
		s2 += e2 * e2
		e3 := q3[i] - v
		s3 += e3 * e3
	}
	ab := 0
	var w bool
	if dOut[0], w = eucLane(s0, limits[0], h0); !w {
		ab++
	}
	wOut[0] = w
	if dOut[1], w = eucLane(s1, limits[1], h1); !w {
		ab++
	}
	wOut[1] = w
	if dOut[2], w = eucLane(s2, limits[2], h2); !w {
		ab++
	}
	wOut[2] = w
	if dOut[3], w = eucLane(s3, limits[3], h3); !w {
		ab++
	}
	wOut[3] = w
	return ab
}

// euclideanWithinF32 is the early-abandoning Euclidean kernel over float32
// coordinates with float64 accumulation: the error versus the exact
// distance comes only from rounding the inputs to float32.
func euclideanWithinF32(a, b []float32, limit float64) (float64, bool) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch: %d vs %d", len(a), len(b)))
	}
	lim2 := limit * limit
	var s float64
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := float64(a[i]) - float64(b[i])
		s += d0 * d0
		d1 := float64(a[i+1]) - float64(b[i+1])
		s += d1 * d1
		d2 := float64(a[i+2]) - float64(b[i+2])
		s += d2 * d2
		d3 := float64(a[i+3]) - float64(b[i+3])
		s += d3 * d3
		if s > lim2 {
			if d := math.Sqrt(s); d > limit {
				return d, false
			}
		}
	}
	for ; i < n; i++ {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	d := math.Sqrt(s)
	return d, d <= limit
}

// manBlockKernel is the L1 row kernel.
type manBlockKernel struct{}

func (manBlockKernel) SupportsF32() bool { return true }

func (manBlockKernel) RowWithin(queries []Vector, b *Block, i int, limits []float64, dOut []float64, wOut []bool) int {
	it := b.Item(i)
	ab := 0
	for a := range queries {
		d, w := manhattanWithin(queries[a], it, limits[a])
		dOut[a], wOut[a] = d, w
		if !w {
			ab++
		}
	}
	return ab
}

func (manBlockKernel) RowWithinF32(queries [][]float32, b *Block, i int, limits []float64, dOut []float64, wOut []bool) int {
	it := b.ItemF32(i)
	ab := 0
	for a := range queries {
		d, w := manhattanWithinF32(queries[a], it, limits[a])
		dOut[a], wOut[a] = d, w
		if !w {
			ab++
		}
	}
	return ab
}

func (manBlockKernel) PairWithinF32(q []float32, b *Block, i int, limit float64) (float64, bool) {
	return manhattanWithinF32(q, b.ItemF32(i), limit)
}

// manhattanWithinF32 is the early-abandoning L1 kernel over float32
// coordinates with float64 accumulation.
func manhattanWithinF32(a, b []float32, limit float64) (float64, bool) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch: %d vs %d", len(a), len(b)))
	}
	var s float64
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s += math.Abs(float64(a[i]) - float64(b[i]))
		s += math.Abs(float64(a[i+1]) - float64(b[i+1]))
		s += math.Abs(float64(a[i+2]) - float64(b[i+2]))
		s += math.Abs(float64(a[i+3]) - float64(b[i+3]))
		if s > limit {
			return s, false
		}
	}
	for ; i < n; i++ {
		s += math.Abs(float64(a[i]) - float64(b[i]))
	}
	return s, s <= limit
}

// chebBlockKernel is the L∞ row kernel.
type chebBlockKernel struct{}

func (chebBlockKernel) SupportsF32() bool { return true }

func (chebBlockKernel) RowWithin(queries []Vector, b *Block, i int, limits []float64, dOut []float64, wOut []bool) int {
	it := b.Item(i)
	ab := 0
	for a := range queries {
		d, w := chebyshevWithin(queries[a], it, limits[a])
		dOut[a], wOut[a] = d, w
		if !w {
			ab++
		}
	}
	return ab
}

func (chebBlockKernel) RowWithinF32(queries [][]float32, b *Block, i int, limits []float64, dOut []float64, wOut []bool) int {
	it := b.ItemF32(i)
	ab := 0
	for a := range queries {
		d, w := chebyshevWithinF32(queries[a], it, limits[a])
		dOut[a], wOut[a] = d, w
		if !w {
			ab++
		}
	}
	return ab
}

func (chebBlockKernel) PairWithinF32(q []float32, b *Block, i int, limit float64) (float64, bool) {
	return chebyshevWithinF32(q, b.ItemF32(i), limit)
}

// chebyshevWithinF32 is the early-abandoning L∞ kernel over float32
// coordinates with float64 accumulation.
func chebyshevWithinF32(a, b []float32, limit float64) (float64, bool) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch: %d vs %d", len(a), len(b)))
	}
	var m float64
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
		if d := math.Abs(float64(a[i+1]) - float64(b[i+1])); d > m {
			m = d
		}
		if d := math.Abs(float64(a[i+2]) - float64(b[i+2])); d > m {
			m = d
		}
		if d := math.Abs(float64(a[i+3]) - float64(b[i+3])); d > m {
			m = d
		}
		if m > limit {
			return m, false
		}
	}
	for ; i < n; i++ {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m, m <= limit
}

// minkBlockKernel is the general-order Lp row kernel (p ∉ {1, 2}).
type minkBlockKernel struct{ m Minkowski }

func (minkBlockKernel) SupportsF32() bool { return false }

func (k minkBlockKernel) RowWithin(queries []Vector, b *Block, i int, limits []float64, dOut []float64, wOut []bool) int {
	it := b.Item(i)
	ab := 0
	for a := range queries {
		d, w := minkowskiWithin(k.m, queries[a], it, limits[a])
		dOut[a], wOut[a] = d, w
		if !w {
			ab++
		}
	}
	return ab
}

func (minkBlockKernel) RowWithinF32([][]float32, *Block, int, []float64, []float64, []bool) int {
	panic("vec: Minkowski block kernel has no float32 path")
}

func (minkBlockKernel) PairWithinF32([]float32, *Block, int, float64) (float64, bool) {
	panic("vec: Minkowski block kernel has no float32 path")
}

// wgtBlockKernel is the weighted-L2 row kernel.
type wgtBlockKernel struct{ m *WeightedEuclidean }

func (wgtBlockKernel) SupportsF32() bool { return false }

func (k wgtBlockKernel) RowWithin(queries []Vector, b *Block, i int, limits []float64, dOut []float64, wOut []bool) int {
	it := b.Item(i)
	ab := 0
	for a := range queries {
		d, w := k.m.DistanceWithin(queries[a], it, limits[a])
		dOut[a], wOut[a] = d, w
		if !w {
			ab++
		}
	}
	return ab
}

func (wgtBlockKernel) RowWithinF32([][]float32, *Block, int, []float64, []float64, []bool) int {
	panic("vec: weighted Euclidean block kernel has no float32 path")
}

func (wgtBlockKernel) PairWithinF32([]float32, *Block, int, float64) (float64, bool) {
	panic("vec: weighted Euclidean block kernel has no float32 path")
}

// genericBlockKernel evaluates rows through the wrapped BoundedMetric —
// the fallback for metrics without a specialized kernel. Results are
// identical to per-pair calls by construction; only the dispatch saving is
// lost.
type genericBlockKernel struct{ bm BoundedMetric }

func (genericBlockKernel) SupportsF32() bool { return false }

func (k genericBlockKernel) RowWithin(queries []Vector, b *Block, i int, limits []float64, dOut []float64, wOut []bool) int {
	it := b.Item(i)
	ab := 0
	for a := range queries {
		d, w := k.bm.DistanceWithin(queries[a], it, limits[a])
		dOut[a], wOut[a] = d, w
		if !w {
			ab++
		}
	}
	return ab
}

func (genericBlockKernel) RowWithinF32([][]float32, *Block, int, []float64, []float64, []bool) int {
	panic("vec: metric has no float32 block kernel")
}

func (genericBlockKernel) PairWithinF32([]float32, *Block, int, float64) (float64, bool) {
	panic("vec: metric has no float32 block kernel")
}
