package vec

import (
	"fmt"
	"math"
)

// BoundedMetric is a Metric that can evaluate a distance under a known upper
// bound, abandoning the per-coordinate loop as soon as the running partial
// result proves the exact distance irrelevant. This is the classic
// partial-distance early-abandonment complement to triangle-inequality
// pruning: the avoidance lemmas skip distance *calls*, the bounded kernel
// cheapens the calls that cannot be skipped.
//
// The contract is deliberately strict so that query processing built on top
// stays bit-identical to full evaluation:
//
//   - If within is true, d equals Distance(a, b) exactly (same floating-
//     point operations in the same order) and dist(a, b) <= limit held at
//     the caller's comparison granularity: any consumer that would accept
//     d <= limit accepts the same items either way.
//   - If within is false, the full Distance(a, b) value is strictly greater
//     than limit, so an item filtered by "dist <= limit" could never have
//     qualified. d is then only a lower bound on the true distance and must
//     not be used as the distance itself.
//
// Kernels guarantee the within=false direction without tolerances: partial
// accumulations are monotonically non-decreasing, and whenever a kernel
// needs a non-monotone finalization (sqrt, x^(1/p)) it confirms the abandon
// decision by applying the same finalization to the partial sum, so
// monotonicity of the finalizer carries the strict inequality through to
// the full-evaluation result.
//
// Each kernel body lives in a package-level function (euclideanWithin and
// friends) shared verbatim by the exported method and the blocked row
// kernels in block.go: one body means the scalar per-pair path and the
// columnar page path cannot drift apart, which is what makes the SoA
// layout's bit-identity guarantee a structural property rather than a
// test-enforced one.
type BoundedMetric interface {
	Metric
	// DistanceWithin reports whether dist(a, b) <= limit, abandoning the
	// accumulation early when the partial result already exceeds the
	// bound. See the interface comment for the exact d/within contract.
	DistanceWithin(a, b Vector, limit float64) (d float64, within bool)
}

// DistanceWithin evaluates dist(a, b) under the upper bound limit using m's
// native bounded kernel when it has one, and a full calculation otherwise.
// It is the generic entry point for metrics (e.g. the quadratic form) that
// do not implement BoundedMetric: the result contract is identical, only
// the early-abandonment saving is lost.
func DistanceWithin(m Metric, a, b Vector, limit float64) (float64, bool) {
	if bm, ok := m.(BoundedMetric); ok {
		return bm.DistanceWithin(a, b, limit)
	}
	d := m.Distance(a, b)
	return d, d <= limit
}

// DistanceWithin is the early-abandoning Euclidean kernel: it accumulates
// in squared space with a 4-wide unrolled loop, compares partial sums
// against limit², and takes the square root only on success. The abandon
// path confirms sqrt(partial) > limit before giving up, so boundary cases
// where s barely exceeds limit² but sqrt(s) still rounds to limit are
// never misclassified (math.Sqrt is correctly rounded, hence monotone).
func (Euclidean) DistanceWithin(a, b Vector, limit float64) (float64, bool) {
	return euclideanWithin(a, b, limit)
}

// euclideanWithin is the shared Euclidean kernel body.
//
// The check cadence is two-phase: every 4 elements for the first 16 —
// low-dimensional vectors and far pairs abandon at the earliest possible
// block — then every 16. On long vectors whose partial sum crosses the
// limit only near the end (tight bounds over clustered data, where most
// of the distance accrues in every block), a per-block check costs more
// than the abandonment saves; the sparser cadence caps that overhead at a
// quarter while giving up at most 12 extra elements of saving. The
// accumulation order is identical in all phases, so the within=true
// result stays bit-equal to Distance.
func euclideanWithin(a, b Vector, limit float64) (float64, bool) {
	mustSameDim(a, b)
	lim2 := limit * limit
	var s float64
	n := len(a)
	head := n
	if head > 16 {
		head = 16
	}
	i := 0
	for ; i+4 <= head; i += 4 {
		d0 := a[i] - b[i]
		s += d0 * d0
		d1 := a[i+1] - b[i+1]
		s += d1 * d1
		d2 := a[i+2] - b[i+2]
		s += d2 * d2
		d3 := a[i+3] - b[i+3]
		s += d3 * d3
		if s > lim2 {
			if d := math.Sqrt(s); d > limit {
				return d, false
			}
		}
	}
	for ; i+16 <= n; i += 16 {
		a16, b16 := a[i:i+16], b[i:i+16]
		d0 := a16[0] - b16[0]
		s += d0 * d0
		d1 := a16[1] - b16[1]
		s += d1 * d1
		d2 := a16[2] - b16[2]
		s += d2 * d2
		d3 := a16[3] - b16[3]
		s += d3 * d3
		d4 := a16[4] - b16[4]
		s += d4 * d4
		d5 := a16[5] - b16[5]
		s += d5 * d5
		d6 := a16[6] - b16[6]
		s += d6 * d6
		d7 := a16[7] - b16[7]
		s += d7 * d7
		d8 := a16[8] - b16[8]
		s += d8 * d8
		d9 := a16[9] - b16[9]
		s += d9 * d9
		d10 := a16[10] - b16[10]
		s += d10 * d10
		d11 := a16[11] - b16[11]
		s += d11 * d11
		d12 := a16[12] - b16[12]
		s += d12 * d12
		d13 := a16[13] - b16[13]
		s += d13 * d13
		d14 := a16[14] - b16[14]
		s += d14 * d14
		d15 := a16[15] - b16[15]
		s += d15 * d15
		if s > lim2 {
			if d := math.Sqrt(s); d > limit {
				return d, false
			}
		}
	}
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		s += d0 * d0
		d1 := a[i+1] - b[i+1]
		s += d1 * d1
		d2 := a[i+2] - b[i+2]
		s += d2 * d2
		d3 := a[i+3] - b[i+3]
		s += d3 * d3
		if s > lim2 {
			if d := math.Sqrt(s); d > limit {
				return d, false
			}
		}
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	d := math.Sqrt(s)
	return d, d <= limit
}

// DistanceWithin is the early-abandoning L1 kernel. The accumulated sum is
// the distance itself, so partial sums compare directly against limit and
// monotonicity of non-negative accumulation makes the abandon decision
// exact without any confirmation step.
func (Manhattan) DistanceWithin(a, b Vector, limit float64) (float64, bool) {
	return manhattanWithin(a, b, limit)
}

// manhattanWithin is the shared L1 kernel body.
func manhattanWithin(a, b Vector, limit float64) (float64, bool) {
	mustSameDim(a, b)
	var s float64
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s += math.Abs(a[i] - b[i])
		s += math.Abs(a[i+1] - b[i+1])
		s += math.Abs(a[i+2] - b[i+2])
		s += math.Abs(a[i+3] - b[i+3])
		if s > limit {
			return s, false
		}
	}
	for ; i < n; i++ {
		s += math.Abs(a[i] - b[i])
	}
	return s, s <= limit
}

// DistanceWithin is the early-abandoning L∞ kernel: the running maximum is
// the distance so far, so it compares directly against limit.
func (Chebyshev) DistanceWithin(a, b Vector, limit float64) (float64, bool) {
	return chebyshevWithin(a, b, limit)
}

// chebyshevWithin is the shared L∞ kernel body.
func chebyshevWithin(a, b Vector, limit float64) (float64, bool) {
	mustSameDim(a, b)
	var m float64
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
		if d := math.Abs(a[i+1] - b[i+1]); d > m {
			m = d
		}
		if d := math.Abs(a[i+2] - b[i+2]); d > m {
			m = d
		}
		if d := math.Abs(a[i+3] - b[i+3]); d > m {
			m = d
		}
		if m > limit {
			return m, false
		}
	}
	for ; i < n; i++ {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m, m <= limit
}

// DistanceWithin is the early-abandoning Lp kernel. p = 1 and p = 2
// delegate to the specialized L1/L2 kernels; other orders accumulate
// |a_i-b_i|^p (via repeated multiplication for integer p, math.Pow
// otherwise) against limit^p and confirm an abandon decision through the
// same x^(1/p) finalization the full kernel applies.
func (m Minkowski) DistanceWithin(a, b Vector, limit float64) (float64, bool) {
	switch m.p {
	case 1:
		return manhattanWithin(a, b, limit)
	case 2:
		return euclideanWithin(a, b, limit)
	}
	return minkowskiWithin(m, a, b, limit)
}

// minkowskiWithin is the shared general-order Lp kernel body (p ∉ {1, 2}).
func minkowskiWithin(m Minkowski, a, b Vector, limit float64) (float64, bool) {
	mustSameDim(a, b)
	limP := math.Pow(limit, m.p)
	var s float64
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s += m.term(math.Abs(a[i] - b[i]))
		s += m.term(math.Abs(a[i+1] - b[i+1]))
		s += m.term(math.Abs(a[i+2] - b[i+2]))
		s += m.term(math.Abs(a[i+3] - b[i+3]))
		if s > limP {
			if d := math.Pow(s, m.invp); d > limit {
				return d, false
			}
		}
	}
	for ; i < n; i++ {
		s += m.term(math.Abs(a[i] - b[i]))
	}
	d := math.Pow(s, m.invp)
	return d, d <= limit
}

// DistanceWithin is the early-abandoning weighted-L2 kernel, the Euclidean
// kernel with per-dimension weights folded into the squared accumulation.
func (m *WeightedEuclidean) DistanceWithin(a, b Vector, limit float64) (float64, bool) {
	mustSameDim(a, b)
	if len(a) != len(m.weights) {
		panic(fmt.Sprintf("vec: weighted Euclidean configured for dim %d, got %d", len(m.weights), len(a)))
	}
	return weightedEuclideanWithin(m.weights, a, b, limit)
}

// weightedEuclideanWithin is the shared weighted-L2 kernel body; w must
// already be validated against the vector dimensionality.
func weightedEuclideanWithin(w []float64, a, b Vector, limit float64) (float64, bool) {
	lim2 := limit * limit
	var s float64
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		s += w[i] * d0 * d0
		d1 := a[i+1] - b[i+1]
		s += w[i+1] * d1 * d1
		d2 := a[i+2] - b[i+2]
		s += w[i+2] * d2 * d2
		d3 := a[i+3] - b[i+3]
		s += w[i+3] * d3 * d3
		if s > lim2 {
			if d := math.Sqrt(s); d > limit {
				return d, false
			}
		}
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s += w[i] * d * d
	}
	d := math.Sqrt(s)
	return d, d <= limit
}
