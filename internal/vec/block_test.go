package vec

import (
	"math"
	"math/rand"
	"testing"
)

func testBlock(t *testing.T, rng *rand.Rand, dim, n int) *Block {
	t.Helper()
	b := NewBlock(dim, n)
	for i := 0; i < n; i++ {
		row := make(Vector, dim)
		for d := range row {
			row[d] = rng.NormFloat64()
		}
		b.SetItem(i, row)
	}
	return b
}

func blockBounds(b *Block) (lo, hi []float64) {
	lo = make([]float64, b.Dim)
	hi = make([]float64, b.Dim)
	for d := 0; d < b.Dim; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for i := 0; i < b.N; i++ {
		for d, v := range b.Item(i) {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	return lo, hi
}

func blockMetrics(t *testing.T, dim int) []BoundedMetric {
	t.Helper()
	mink, err := NewMinkowski(3)
	if err != nil {
		t.Fatal(err)
	}
	w := make(Vector, dim)
	for i := range w {
		w[i] = 0.5 + float64(i%4)
	}
	wgt, err := NewWeightedEuclidean(w)
	if err != nil {
		t.Fatal(err)
	}
	ident := make([]float64, dim*dim)
	for i := 0; i < dim; i++ {
		ident[i*dim+i] = 1
	}
	qf, err := NewQuadraticForm(dim, ident)
	if err != nil {
		t.Fatal(err)
	}
	return []BoundedMetric{
		Euclidean{}, Manhattan{}, Chebyshev{}, mink, wgt,
		NewCounting(qf).Kernel(), // generic fallback path
	}
}

// TestBlockRowIdentical asserts the row kernels are bit-identical to
// per-pair DistanceWithin calls for every metric, across limit regimes
// (infinite, tight, mixed) and query counts that exercise the grouped
// fast path, its remainder, and the scalar lanes.
func TestBlockRowIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, dim := range []int{1, 3, 4, 7, 16, 33} {
		b := testBlock(t, rng, dim, 24)
		for _, metric := range blockMetrics(t, dim) {
			k := NewBlockKernel(metric)
			for _, m := range []int{1, 2, 4, 5, 8, 11} {
				queries := make([]Vector, m)
				for a := range queries {
					queries[a] = make(Vector, dim)
					for d := range queries[a] {
						queries[a][d] = rng.NormFloat64()
					}
				}
				for _, regime := range []string{"inf", "tight", "mixed"} {
					limits := make([]float64, m)
					for a := range limits {
						switch regime {
						case "inf":
							limits[a] = math.Inf(1)
						case "tight":
							limits[a] = 0.5 * rng.Float64() * float64(dim)
						default:
							if a%2 == 0 {
								limits[a] = math.Inf(1)
							} else {
								limits[a] = rng.Float64() * float64(dim)
							}
						}
					}
					dOut := make([]float64, m)
					wOut := make([]bool, m)
					for i := 0; i < b.N; i++ {
						ab := k.RowWithin(queries, b, i, limits, dOut, wOut)
						wantAb := 0
						for a := range queries {
							d, w := metric.DistanceWithin(queries[a], b.Item(i), limits[a])
							if w != wOut[a] {
								t.Fatalf("%s dim=%d m=%d %s: row (%d,%d) within %v want %v",
									metric.Name(), dim, m, regime, a, i, wOut[a], w)
							}
							// dOut is contractual only where within holds;
							// an abandoned lane must merely exceed its limit.
							if w && math.Float64bits(d) != math.Float64bits(dOut[a]) {
								t.Fatalf("%s dim=%d m=%d %s: row (%d,%d) dist %v want %v",
									metric.Name(), dim, m, regime, a, i, dOut[a], d)
							}
							if !w {
								if !(dOut[a] > limits[a]) {
									t.Fatalf("%s dim=%d m=%d %s: row (%d,%d) abandoned dist %v not beyond limit %v",
										metric.Name(), dim, m, regime, a, i, dOut[a], limits[a])
								}
								wantAb++
							}
						}
						if ab != wantAb {
							t.Fatalf("%s dim=%d m=%d %s: abandoned %d want %d", metric.Name(), dim, m, regime, ab, wantAb)
						}
					}
				}
			}
		}
	}
}

// TestDistanceBlockWithinTile asserts the tile helper reproduces RowWithin
// row by row and returns exact batch counter deltas.
func TestDistanceBlockWithinTile(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	dim, n, m := 8, 20, 6
	b := testBlock(t, rng, dim, n)
	k := NewBlockKernel(Euclidean{})
	queries := make([]Vector, m)
	limits := make([]float64, m)
	for a := range queries {
		queries[a] = make(Vector, dim)
		for d := range queries[a] {
			queries[a][d] = rng.NormFloat64()
		}
		limits[a] = rng.Float64() * 3
	}
	lo, hi := 3, 17
	dOut := make([][]float64, hi-lo)
	wOut := make([][]bool, hi-lo)
	for i := range dOut {
		dOut[i] = make([]float64, m)
		wOut[i] = make([]bool, m)
	}
	calcs, abandoned := DistanceBlockWithin(k, queries, b, lo, hi, limits, dOut, wOut)
	if calcs != int64((hi-lo)*m) {
		t.Fatalf("calcs %d want %d", calcs, (hi-lo)*m)
	}
	var wantAb int64
	for i := lo; i < hi; i++ {
		for a := range queries {
			d, w := euclideanWithin(queries[a], b.Item(i), limits[a])
			if w != wOut[i-lo][a] {
				t.Fatalf("tile (%d,%d) within mismatch", i, a)
			}
			if w && math.Float64bits(d) != math.Float64bits(dOut[i-lo][a]) {
				t.Fatalf("tile (%d,%d) dist mismatch", i, a)
			}
			if !w && !(dOut[i-lo][a] > limits[a]) {
				t.Fatalf("tile (%d,%d) abandoned dist %v not beyond limit %v", i, a, dOut[i-lo][a], limits[a])
			}
			if !w {
				wantAb++
			}
		}
	}
	if abandoned != wantAb {
		t.Fatalf("abandoned %d want %d", abandoned, wantAb)
	}
}

// TestBlockF32Bound asserts the float32 row kernels stay within the
// documented input-rounding error of the exact float64 distance, and that
// the within=false direction still implies the f32 distance exceeds the
// limit (the lower-bound contract in f32 space).
func TestBlockF32Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, metric := range []BoundedMetric{Euclidean{}, Manhattan{}, Chebyshev{}} {
		k := NewBlockKernel(metric)
		if !k.SupportsF32() {
			t.Fatalf("%s: expected float32 support", metric.Name())
		}
		for _, dim := range []int{2, 8, 19} {
			b := testBlock(t, rng, dim, 16)
			b.DeriveF32()
			m := 5
			queries := make([]Vector, m)
			q32 := make([][]float32, m)
			limits := make([]float64, m)
			for a := range queries {
				queries[a] = make(Vector, dim)
				for d := range queries[a] {
					queries[a][d] = rng.NormFloat64()
				}
				q32[a] = ToF32(queries[a])
				limits[a] = math.Inf(1)
			}
			dOut := make([]float64, m)
			wOut := make([]bool, m)
			for i := 0; i < b.N; i++ {
				k.RowWithinF32(q32, b, i, limits, dOut, wOut)
				for a := range queries {
					exact := metric.Distance(queries[a], b.Item(i))
					// Coordinates are O(1) normals; rounding each input to
					// float32 perturbs each |a_i - b_i| term by at most
					// ~2^-23 of the coordinate magnitudes, so a generous
					// per-dimension envelope catches real kernel bugs
					// without flaking on legitimate rounding.
					bound := float64(dim+1) * 64 * (1.0 / (1 << 23))
					if math.Abs(dOut[a]-exact) > bound {
						t.Fatalf("%s dim=%d: f32 distance %v vs exact %v exceeds bound %v",
							metric.Name(), dim, dOut[a], exact, bound)
					}
					if !wOut[a] {
						t.Fatalf("%s: infinite limit must always be within", metric.Name())
					}
					pd, pw := k.PairWithinF32(q32[a], b, i, math.Inf(1))
					if math.Float64bits(pd) != math.Float64bits(dOut[a]) || !pw {
						t.Fatalf("%s: PairWithinF32 disagrees with RowWithinF32", metric.Name())
					}
				}
			}
			// Bounded regime: within=false must imply f32 distance > limit.
			for a := range limits {
				limits[a] = rng.Float64() * 2
			}
			for i := 0; i < b.N; i++ {
				k.RowWithinF32(q32, b, i, limits, dOut, wOut)
				for a := range queries {
					full, _ := k.PairWithinF32(q32[a], b, i, math.Inf(1))
					if wOut[a] {
						if math.Float64bits(dOut[a]) != math.Float64bits(full) {
							t.Fatalf("%s: within=true f32 distance not exact", metric.Name())
						}
						if dOut[a] > limits[a] {
							t.Fatalf("%s: within=true but d > limit", metric.Name())
						}
					} else if full <= limits[a] {
						t.Fatalf("%s: abandoned pair actually within limit (d=%v limit=%v)", metric.Name(), full, limits[a])
					}
				}
			}
		}
	}
}

// TestQuantGridEncodeInvariant asserts the drift-guarded cell assignment
// invariant: every value lies at or above its cell's lower edge (cells
// above 0) and strictly below the next edge (cells below the top).
func TestQuantGridEncodeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for _, bits := range []int{1, 4, 6, 8} {
		dim := 6
		b := testBlock(t, rng, dim, 200)
		lo, hi := blockBounds(b)
		g, err := BuildQuantGrid(bits, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		codes := make([]uint8, dim)
		top := g.Cells() - 1
		for i := 0; i < b.N; i++ {
			g.EncodeInto(b.Item(i), codes)
			for d, v := range b.Item(i) {
				c := int(codes[d])
				if c > 0 && v < g.boundary(d, c) {
					t.Fatalf("bits=%d item %d dim %d: %v below cell %d lower edge %v", bits, i, d, v, c, g.boundary(d, c))
				}
				if c < top && v >= g.boundary(d, c+1) {
					t.Fatalf("bits=%d item %d dim %d: %v at or above cell %d upper edge %v", bits, i, d, v, c, g.boundary(d, c+1))
				}
			}
		}
	}
}

// TestQuantFilterSound is the soundness property of the code-level filter:
// whenever Exceeds reports true, the exact distance must be strictly
// greater than the limit — for every supported metric, including values
// outside the grid (clamped into the open-ended edge cells).
func TestQuantFilterSound(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	dim := 5
	mink, _ := NewMinkowski(3)
	w := make(Vector, dim)
	for i := range w {
		w[i] = 0.25 + float64(i)
	}
	wgt, _ := NewWeightedEuclidean(w)
	metrics := []Metric{Euclidean{}, Manhattan{}, Chebyshev{}, mink, wgt}
	b := testBlock(t, rng, dim, 150)
	lo, hi := blockBounds(b)
	g, err := BuildQuantGrid(6, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	b.DeriveCodes(g)
	// Extra probes outside the grid bounds exercise edge-cell clamping.
	outside := make(Vector, dim)
	for d := range outside {
		outside[d] = hi[d] + 1 + rng.Float64()
	}
	outsideCodes := make([]uint8, dim)
	g.EncodeInto(outside, outsideCodes)
	for _, metric := range metrics {
		for trial := 0; trial < 40; trial++ {
			q := make(Vector, dim)
			for d := range q {
				q[d] = rng.NormFloat64() * 1.5
			}
			f := NewQuantFilter(NewCounting(metric), g, q) // stripping Counting is part of the contract
			if f == nil {
				t.Fatalf("%s: expected a filter", metric.Name())
			}
			limit := rng.Float64() * 3
			rejected, kept := 0, 0
			for i := 0; i < b.N; i++ {
				if f.Exceeds(b.ItemCodes(i), limit) {
					rejected++
					if d := metric.Distance(q, b.Item(i)); d <= limit {
						t.Fatalf("%s: filter rejected item %d with d=%v <= limit=%v", metric.Name(), i, d, limit)
					}
				} else {
					kept++
				}
			}
			if f.Exceeds(outsideCodes, limit) {
				if d := metric.Distance(q, outside); d <= limit {
					t.Fatalf("%s: filter rejected out-of-grid probe with d <= limit", metric.Name())
				}
			}
			_ = rejected
			_ = kept
		}
	}
	// Unsupported metric: no filter, and a nil filter rejects nothing.
	ident := make([]float64, dim*dim)
	for i := 0; i < dim; i++ {
		ident[i*dim+i] = 1
	}
	qf, err := NewQuadraticForm(dim, ident)
	if err != nil {
		t.Fatal(err)
	}
	if f := NewQuantFilter(qf, g, make(Vector, dim)); f != nil {
		t.Fatal("quadratic form should have no quantized filter")
	}
	var nilFilter *QuantFilter
	if nilFilter.Exceeds(outsideCodes, 0) {
		t.Fatal("nil filter must reject nothing")
	}
}

// TestQuantFilterSelective sanity-checks that the filter actually rejects
// something under tight limits (it is a perf feature, not just a sound
// no-op).
func TestQuantFilterSelective(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	dim := 8
	b := testBlock(t, rng, dim, 300)
	lo, hi := blockBounds(b)
	g, err := BuildQuantGrid(8, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	b.DeriveCodes(g)
	q := make(Vector, dim)
	for d := range q {
		q[d] = rng.NormFloat64()
	}
	f := NewQuantFilter(Euclidean{}, g, q)
	limit := 0.5 // tight for N(0,1) data at dim 8: most items are far outside
	rejected := 0
	for i := 0; i < b.N; i++ {
		if f.Exceeds(b.ItemCodes(i), limit) {
			rejected++
		}
	}
	if rejected < b.N/2 {
		t.Fatalf("filter rejected only %d/%d items at limit %v", rejected, b.N, limit)
	}
}

// TestBlockDegenerateDim covers a zero-width dimension (all values equal):
// encoding stays in-range and filtering stays sound.
func TestBlockDegenerateDim(t *testing.T) {
	dim, n := 3, 10
	b := NewBlock(dim, n)
	for i := 0; i < n; i++ {
		b.SetItem(i, Vector{float64(i), 7, -float64(i)})
	}
	lo, hi := blockBounds(b)
	g, err := BuildQuantGrid(4, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	b.DeriveCodes(g)
	q := Vector{0, 100, 0}
	f := NewQuantFilter(Manhattan{}, g, q)
	for i := 0; i < n; i++ {
		if f.Exceeds(b.ItemCodes(i), 1000) {
			t.Fatal("filter rejected item within a huge limit")
		}
		if !f.Exceeds(b.ItemCodes(i), 1) {
			t.Fatalf("item %d: |q1-7|=93 alone should exceed limit 1", i)
		}
		if d := (Manhattan{}).Distance(q, b.Item(i)); d <= 1 {
			t.Fatal("test premise broken")
		}
	}
}
