package vec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// boundedTestMetrics returns every metric with a native bounded kernel,
// constructed for the given dimensionality, plus the quadratic form as a
// representative of the generic full-calculation fallback.
func boundedTestMetrics(t testing.TB, dim int, rng *rand.Rand) []Metric {
	t.Helper()
	mink3, err := NewMinkowski(3)
	if err != nil {
		t.Fatalf("NewMinkowski(3): %v", err)
	}
	mink25, err := NewMinkowski(2.5)
	if err != nil {
		t.Fatalf("NewMinkowski(2.5): %v", err)
	}
	weights := make(Vector, dim)
	for i := range weights {
		weights[i] = 0.5 + rng.Float64()
	}
	we, err := NewWeightedEuclidean(weights)
	if err != nil {
		t.Fatalf("NewWeightedEuclidean: %v", err)
	}
	qf, err := NewQuadraticForm(dim, IdentityMatrix(dim))
	if err != nil {
		t.Fatalf("NewQuadraticForm: %v", err)
	}
	return []Metric{Euclidean{}, Manhattan{}, Chebyshev{}, mink3, mink25, we, qf}
}

// checkWithinContract asserts the full BoundedMetric contract for one
// (metric, pair, limit) instance against the reference full distance.
func checkWithinContract(t *testing.T, m Metric, a, b Vector, limit, full float64) {
	t.Helper()
	d, within := DistanceWithin(m, a, b, limit)
	if within != (full <= limit) {
		t.Fatalf("%s: within=%v but Distance=%v, limit=%v", m.Name(), within, full, limit)
	}
	if within && d != full {
		t.Fatalf("%s: within=true returned d=%v, want the exact Distance %v (limit %v)",
			m.Name(), d, full, limit)
	}
	if !within && !(d <= full) {
		t.Fatalf("%s: within=false returned d=%v > Distance %v, not a lower bound (limit %v)",
			m.Name(), d, full, limit)
	}
	if !within && math.IsInf(limit, 1) {
		t.Fatalf("%s: abandoned under an infinite limit", m.Name())
	}
}

// TestDistanceWithinAgreesWithDistance is the property test for the bounded
// kernels: for every metric, random pairs at many dimensionalities (odd
// tails exercise the unrolled loops' remainder handling) and adversarial
// limits — 0, +Inf, the exact distance, and one-ulp neighbors of it —
// DistanceWithin must classify exactly like "Distance <= limit", return the
// bitwise-identical distance when within, and only a lower bound otherwise.
func TestDistanceWithinAgreesWithDistance(t *testing.T) {
	rounds := 120
	if testing.Short() {
		rounds = 25
	}
	for _, dim := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 33, 64} {
		rng := rand.New(rand.NewSource(int64(1000 + dim)))
		for _, m := range boundedTestMetrics(t, dim, rng) {
			m := m
			t.Run(fmt.Sprintf("%s/dim=%d", m.Name(), dim), func(t *testing.T) {
				for r := 0; r < rounds; r++ {
					a := randomVector(rng, dim)
					b := randomVector(rng, dim)
					if r%8 == 0 {
						b = a.Clone() // identity: distance exactly 0
					}
					full := m.Distance(a, b)
					limits := []float64{
						0,
						math.Inf(1),
						full,                         // boundary: within must hold at equality
						math.Nextafter(full, 0),      // one ulp short: must abandon
						math.Nextafter(full, full+1), // one ulp beyond
						full * 0.25,
						full * 0.75,
						full * 1.5,
						rng.Float64() * 2 * full,
					}
					for _, limit := range limits {
						checkWithinContract(t, m, a, b, limit, full)
					}
				}
			})
		}
	}
}

// TestDistanceWithinCounting checks the accounting rules of the Counting
// wrapper: every bounded evaluation counts as one distance calculation
// whether or not it is abandoned, and the abandoned counter records exactly
// the within=false outcomes. The invariant DistCalcs-style counters depend
// on is Abandoned() <= Count() with both reset together.
func TestDistanceWithinCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := NewCounting(Euclidean{})
	const dim, n = 16, 200
	var wantAbandoned int64
	for i := 0; i < n; i++ {
		a := randomVector(rng, dim)
		b := randomVector(rng, dim)
		full := Euclidean{}.Distance(a, b)
		limit := rng.Float64() * 2 * full
		d, within := c.DistanceWithin(a, b, limit)
		if within != (full <= limit) || (within && d != full) {
			t.Fatalf("counting wrapper changed the kernel result at round %d", i)
		}
		if !within {
			wantAbandoned++
		}
	}
	if c.Count() != n {
		t.Fatalf("Count() = %d after %d bounded evaluations, want %d", c.Count(), n, n)
	}
	if c.Abandoned() != wantAbandoned {
		t.Fatalf("Abandoned() = %d, want %d", c.Abandoned(), wantAbandoned)
	}
	if c.Reset() != n {
		t.Fatalf("Reset() did not return the previous count")
	}
	if c.Count() != 0 || c.Abandoned() != 0 {
		t.Fatalf("Reset() left counters at n=%d abandoned=%d", c.Count(), c.Abandoned())
	}
}

// TestDistanceWithinFallback pins the generic-fallback path: a metric
// without a native kernel (the quadratic form) must never abandon — the
// distance is always computed in full — yet still classify exactly.
func TestDistanceWithinFallback(t *testing.T) {
	dim := 8
	qf, err := NewQuadraticForm(dim, IdentityMatrix(dim))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Metric(qf).(BoundedMetric); ok {
		t.Fatal("quadratic form unexpectedly implements BoundedMetric; pick another fallback specimen")
	}
	rng := rand.New(rand.NewSource(7))
	c := NewCounting(qf)
	a, b := randomVector(rng, dim), randomVector(rng, dim)
	full := qf.Distance(a, b)
	if d, within := c.DistanceWithin(a, b, full/2); within || d != full {
		t.Fatalf("fallback: got (%v, %v), want the full distance %v and within=false", d, within, full)
	}
	if c.Count() != 1 || c.Abandoned() != 1 {
		t.Fatalf("fallback accounting: n=%d abandoned=%d, want 1 and 1", c.Count(), c.Abandoned())
	}
}

// TestMinkowskiIntegerFastPath checks that the repeated-multiplication term
// evaluation for small integer orders matches math.Pow closely and that
// orders 1 and 2 delegate bitwise to the L1/L2 kernels.
func TestMinkowskiIntegerFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, p := range []float64{3, 4, 5} {
		m, err := NewMinkowski(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			x := rng.Float64() * 10
			got, want := m.term(x), math.Pow(x, p)
			if diff := math.Abs(got - want); diff > 1e-12*math.Max(1, want) {
				t.Fatalf("term(%v) with p=%v: %v, math.Pow gives %v", x, p, got, want)
			}
		}
	}
	for _, p := range []float64{1, 2} {
		m, err := NewMinkowski(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			a, b := randomVector(rng, 9), randomVector(rng, 9)
			var want float64
			if p == 1 {
				want = Manhattan{}.Distance(a, b)
			} else {
				want = Euclidean{}.Distance(a, b)
			}
			if got := m.Distance(a, b); got != want {
				t.Fatalf("minkowski(%g).Distance = %v, want the specialized kernel's %v", p, got, want)
			}
			gd, gw := m.DistanceWithin(a, b, want)
			if !gw || gd != want {
				t.Fatalf("minkowski(%g).DistanceWithin at the boundary: (%v, %v), want (%v, true)", p, gd, gw, want)
			}
		}
	}
}
