// Package vec provides dense float64 vectors and the metric distance
// functions used throughout the library.
//
// A metric distance function dist must satisfy, for all objects o1, o2, o3:
//
//	identity:   dist(o1, o2) == 0  iff  o1 == o2
//	symmetry:   dist(o1, o2) == dist(o2, o1)
//	triangle:   dist(o1, o3) <= dist(o1, o2) + dist(o2, o3)
//
// The triangle inequality is what the multiple-similarity-query processor
// exploits to avoid distance calculations (Lemma 1 and Lemma 2 of the
// paper), so every Metric in this package is a true metric.
package vec

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Vector is a point in a d-dimensional real vector space.
type Vector []float64

// Dim returns the dimensionality of the vector.
func (v Vector) Dim() int { return len(v) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Equal reports whether v and w have the same dimension and components.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// Add returns v + w. It panics if the dimensions differ.
func (v Vector) Add(w Vector) Vector {
	mustSameDim(v, w)
	r := make(Vector, len(v))
	for i := range v {
		r[i] = v[i] + w[i]
	}
	return r
}

// Sub returns v - w. It panics if the dimensions differ.
func (v Vector) Sub(w Vector) Vector {
	mustSameDim(v, w)
	r := make(Vector, len(v))
	for i := range v {
		r[i] = v[i] - w[i]
	}
	return r
}

// Scale returns s * v.
func (v Vector) Scale(s float64) Vector {
	r := make(Vector, len(v))
	for i := range v {
		r[i] = s * v[i]
	}
	return r
}

// Dot returns the inner product of v and w. It panics if the dimensions
// differ.
func (v Vector) Dot(w Vector) float64 {
	mustSameDim(v, w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean length of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// L1Normalize scales v in place so its components sum to 1, which turns a
// non-negative vector into a histogram. A zero vector is left unchanged.
func (v Vector) L1Normalize() {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	if s == 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}

// String renders the vector as "(x1, x2, ...)" with short float formatting.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatFloat(x, 'g', 6, 64))
	}
	b.WriteByte(')')
	return b.String()
}

func mustSameDim(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(v), len(w)))
	}
}
