package vec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Microbenchmarks for the bounded distance kernels: full Distance against
// DistanceWithin at several abandon rates. The limit for a target rate is
// the matching quantile of the benchmark pairs' distance distribution, so
// "abandon=95" means ~95% of evaluations abandon mid-vector — the regime
// the multi-query hot path lives in, where most offered items are far
// outside the pruning bound. abandon=0 uses an infinite limit and measures
// the kernel's bookkeeping overhead when the bound never helps.

var (
	benchSinkF float64
	benchSinkB bool
)

type benchPair struct{ a, b Vector }

func benchPairs(dim, n int, seed int64) []benchPair {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]benchPair, n)
	for i := range pairs {
		pairs[i] = benchPair{randomVector(rng, dim), randomVector(rng, dim)}
	}
	return pairs
}

// limitForRate returns the distance quantile such that about rate of the
// pairs abandon (their distance exceeds the limit). rate 0 returns +Inf.
func limitForRate(m Metric, pairs []benchPair, rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	ds := make([]float64, len(pairs))
	for i, p := range pairs {
		ds[i] = m.Distance(p.a, p.b)
	}
	sort.Float64s(ds)
	idx := int(float64(len(ds)) * (1 - rate))
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	return ds[idx]
}

func benchKernelMetrics(b *testing.B, dim int) []Metric {
	rng := rand.New(rand.NewSource(99))
	return boundedTestMetrics(b, dim, rng)[:6] // drop the quadratic-form fallback
}

func BenchmarkDistanceFull(b *testing.B) {
	for _, dim := range []int{4, 16, 64} {
		pairs := benchPairs(dim, 256, int64(dim))
		for _, m := range benchKernelMetrics(b, dim) {
			b.Run(fmt.Sprintf("%s/dim=%d", m.Name(), dim), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p := pairs[i&255]
					benchSinkF = m.Distance(p.a, p.b)
				}
			})
		}
	}
}

func BenchmarkDistanceWithin(b *testing.B) {
	for _, dim := range []int{4, 16, 64} {
		pairs := benchPairs(dim, 256, int64(dim))
		for _, m := range benchKernelMetrics(b, dim) {
			for _, rate := range []float64{0, 0.5, 0.95} {
				limit := limitForRate(m, pairs, rate)
				b.Run(fmt.Sprintf("%s/dim=%d/abandon=%d", m.Name(), dim, int(rate*100)), func(b *testing.B) {
					b.ReportAllocs()
					bm := m.(BoundedMetric)
					for i := 0; i < b.N; i++ {
						p := pairs[i&255]
						benchSinkF, benchSinkB = bm.DistanceWithin(p.a, p.b, limit)
					}
				})
			}
		}
	}
}
