package vec

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}

	if got := v.Dim(); got != 3 {
		t.Errorf("Dim() = %d, want 3", got)
	}
	if got := v.Add(w); !got.Equal(Vector{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(Vector{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.Equal(Vector{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := (Vector{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestVectorEqual(t *testing.T) {
	cases := []struct {
		a, b Vector
		want bool
	}{
		{Vector{1, 2}, Vector{1, 2}, true},
		{Vector{1, 2}, Vector{1, 3}, false},
		{Vector{1, 2}, Vector{1, 2, 3}, false},
		{Vector{}, Vector{}, true},
		{nil, Vector{}, true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestVectorL1Normalize(t *testing.T) {
	v := Vector{1, 3}
	v.L1Normalize()
	if !v.Equal(Vector{0.25, 0.75}) {
		t.Errorf("L1Normalize = %v", v)
	}
	z := Vector{0, 0}
	z.L1Normalize() // must not divide by zero
	if !z.Equal(Vector{0, 0}) {
		t.Errorf("L1Normalize of zero vector = %v", z)
	}
}

func TestVectorString(t *testing.T) {
	s := Vector{1, 2.5}.String()
	if !strings.Contains(s, "1") || !strings.Contains(s, "2.5") {
		t.Errorf("String() = %q", s)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Euclidean{}.Distance(Vector{1}, Vector{1, 2})
}

func TestMetricValues(t *testing.T) {
	a := Vector{0, 0}
	b := Vector{3, 4}

	if got := (Euclidean{}).Distance(a, b); got != 5 {
		t.Errorf("euclidean = %v, want 5", got)
	}
	if got := (Manhattan{}).Distance(a, b); got != 7 {
		t.Errorf("manhattan = %v, want 7", got)
	}
	if got := (Chebyshev{}).Distance(a, b); got != 4 {
		t.Errorf("chebyshev = %v, want 4", got)
	}

	m2, err := NewMinkowski(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Distance(a, b); math.Abs(got-5) > 1e-12 {
		t.Errorf("minkowski(2) = %v, want 5", got)
	}
}

func TestMinkowskiRejectsBadOrder(t *testing.T) {
	for _, p := range []float64{0.5, 0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewMinkowski(p); err == nil {
			t.Errorf("NewMinkowski(%v) accepted a non-metric order", p)
		}
	}
}

func TestWeightedEuclidean(t *testing.T) {
	m, err := NewWeightedEuclidean(Vector{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	// sqrt(4*(1-0)^2 + 1*(0-0)^2) = 2
	if got := m.Distance(Vector{0, 0}, Vector{1, 0}); got != 2 {
		t.Errorf("weighted euclidean = %v, want 2", got)
	}

	if _, err := NewWeightedEuclidean(Vector{1, 0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewWeightedEuclidean(Vector{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewWeightedEuclidean(nil); err == nil {
		t.Error("empty weights accepted")
	}
}

func TestWeightedEuclideanWrongDimPanics(t *testing.T) {
	m, err := NewWeightedEuclidean(Vector{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when query dim differs from weight dim")
		}
	}()
	m.Distance(Vector{1, 2, 3}, Vector{1, 2, 3})
}

func TestQuadraticFormIdentityMatchesEuclidean(t *testing.T) {
	const dim = 8
	qf, err := NewQuadraticForm(dim, IdentityMatrix(dim))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a, b := randomVector(rng, dim), randomVector(rng, dim)
		want := Euclidean{}.Distance(a, b)
		got := qf.Distance(a, b)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("quadratic form with identity = %v, euclidean = %v", got, want)
		}
	}
}

func TestQuadraticFormRejectsBadMatrices(t *testing.T) {
	// Asymmetric.
	if _, err := NewQuadraticForm(2, []float64{1, 0.5, 0.2, 1}); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	// Not positive definite.
	if _, err := NewQuadraticForm(2, []float64{1, 2, 2, 1}); err == nil {
		t.Error("indefinite matrix accepted")
	}
	// Wrong size.
	if _, err := NewQuadraticForm(2, []float64{1, 0, 0}); err == nil {
		t.Error("wrong-size matrix accepted")
	}
	if _, err := NewQuadraticForm(0, nil); err == nil {
		t.Error("zero dimension accepted")
	}
}

func TestHistogramSimilarityMatrix(t *testing.T) {
	m, err := HistogramSimilarityMatrix(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewQuadraticForm(16, m); err != nil {
		t.Errorf("histogram similarity matrix is not positive definite: %v", err)
	}
	if _, err := HistogramSimilarityMatrix(0, 1); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := HistogramSimilarityMatrix(4, 0); err == nil {
		t.Error("zero decay accepted")
	}
}

func TestCounting(t *testing.T) {
	c := NewCounting(Euclidean{})
	if c.Name() != "euclidean" {
		t.Errorf("Name = %q", c.Name())
	}
	a, b := Vector{0, 0}, Vector{3, 4}
	for i := 0; i < 5; i++ {
		if got := c.Distance(a, b); got != 5 {
			t.Fatalf("Distance = %v", got)
		}
	}
	if got := c.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	c.AddFiltered(7)
	c.AddFiltered(0)
	if got := c.Filtered(); got != 7 {
		t.Errorf("Filtered = %d, want 7", got)
	}
	if got := c.Reset(); got != 5 {
		t.Errorf("Reset returned %d, want 5", got)
	}
	if got := c.Count(); got != 0 {
		t.Errorf("Count after Reset = %d, want 0", got)
	}
	if got := c.Filtered(); got != 0 {
		t.Errorf("Filtered after Reset = %d, want 0", got)
	}
	if c.Unwrap() != (Euclidean{}) {
		t.Error("Unwrap did not return the inner metric")
	}
}

func randomVector(rng *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// allMetrics returns one instance of every metric for axiom testing.
func allMetrics(t *testing.T, dim int) []Metric {
	t.Helper()
	mk, err := NewMinkowski(3)
	if err != nil {
		t.Fatal(err)
	}
	weights := make(Vector, dim)
	for i := range weights {
		weights[i] = 0.5 + float64(i%3)
	}
	we, err := NewWeightedEuclidean(weights)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := HistogramSimilarityMatrix(dim, 2)
	if err != nil {
		t.Fatal(err)
	}
	qf, err := NewQuadraticForm(dim, hm)
	if err != nil {
		t.Fatal(err)
	}
	return []Metric{Euclidean{}, Manhattan{}, Chebyshev{}, mk, we, qf}
}

// TestMetricAxioms property-tests symmetry, non-negativity, identity, and
// the triangle inequality for every metric. The triangle inequality is the
// load-bearing property for the multi-query avoidance lemmas.
func TestMetricAxioms(t *testing.T) {
	const dim = 6
	rng := rand.New(rand.NewSource(42))
	for _, m := range allMetrics(t, dim) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				a := randomVector(r, dim)
				b := randomVector(r, dim)
				c := randomVector(r, dim)

				dab := m.Distance(a, b)
				dba := m.Distance(b, a)
				dac := m.Distance(a, c)
				dbc := m.Distance(b, c)

				const eps = 1e-9
				if dab < 0 || math.IsNaN(dab) {
					t.Logf("negative or NaN distance %v", dab)
					return false
				}
				if math.Abs(dab-dba) > eps {
					t.Logf("asymmetric: %v vs %v", dab, dba)
					return false
				}
				if m.Distance(a, a) > eps {
					t.Logf("identity violated: d(a,a)=%v", m.Distance(a, a))
					return false
				}
				if dac > dab+dbc+eps {
					t.Logf("triangle violated: d(a,c)=%v > %v", dac, dab+dbc)
					return false
				}
				return true
			}
			cfg := &quick.Config{
				MaxCount: 200,
				Values:   nil,
				Rand:     rng,
			}
			if err := quick.Check(f, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}
