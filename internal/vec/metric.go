package vec

import (
	"fmt"
	"math"
)

// Metric is a metric distance function on vectors together with a name for
// reporting. Implementations must satisfy the metric axioms (see the package
// comment); the multi-query processor silently produces wrong answers
// otherwise.
type Metric interface {
	// Distance returns dist(a, b) >= 0.
	Distance(a, b Vector) float64
	// Name identifies the metric in reports and error messages.
	Name() string
}

// Euclidean is the L2 metric, the paper's default distance function.
type Euclidean struct{}

// Distance returns the Euclidean distance between a and b.
func (Euclidean) Distance(a, b Vector) float64 {
	mustSameDim(a, b)
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Name returns "euclidean".
func (Euclidean) Name() string { return "euclidean" }

// Manhattan is the L1 metric.
type Manhattan struct{}

// Distance returns the city-block distance between a and b.
func (Manhattan) Distance(a, b Vector) float64 {
	mustSameDim(a, b)
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Name returns "manhattan".
func (Manhattan) Name() string { return "manhattan" }

// Chebyshev is the L∞ metric.
type Chebyshev struct{}

// Distance returns the maximum per-coordinate difference between a and b.
func (Chebyshev) Distance(a, b Vector) float64 {
	mustSameDim(a, b)
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Name returns "chebyshev".
func (Chebyshev) Name() string { return "chebyshev" }

// Minkowski is the Lp metric for p >= 1. For p < 1 the triangle inequality
// fails, so NewMinkowski rejects such p.
type Minkowski struct {
	p    float64
	invp float64 // 1/p, precomputed so both kernels finalize identically
	ip   int     // p as an integer when integral and small, else 0
}

// maxIntPow bounds the integer-exponent fast path: beyond this order the
// repeated-multiplication loop stops being clearly cheaper than math.Pow,
// and real workloads never use such orders.
const maxIntPow = 32

// NewMinkowski returns the Lp metric. It returns an error if p < 1, because
// Lp is not a metric there.
func NewMinkowski(p float64) (Minkowski, error) {
	if p < 1 || math.IsNaN(p) || math.IsInf(p, 0) {
		return Minkowski{}, fmt.Errorf("vec: Minkowski order p must be a finite value >= 1, got %v", p)
	}
	m := Minkowski{p: p, invp: 1 / p}
	if p == math.Trunc(p) && p <= maxIntPow {
		m.ip = int(p)
	}
	return m, nil
}

// term returns x^p for one non-negative coordinate gap, using repeated
// multiplication for small integer orders instead of math.Pow.
func (m Minkowski) term(x float64) float64 {
	if m.ip != 0 {
		r := x
		for i := 1; i < m.ip; i++ {
			r *= x
		}
		return r
	}
	return math.Pow(x, m.p)
}

// Distance returns the Lp distance between a and b. Orders 1 and 2 delegate
// to the specialized L1/L2 kernels, so the generic metric is never slower
// than naming the specialized one; other integer orders replace the
// per-coordinate math.Pow with repeated multiplication.
func (m Minkowski) Distance(a, b Vector) float64 {
	switch m.p {
	case 1:
		return Manhattan{}.Distance(a, b)
	case 2:
		return Euclidean{}.Distance(a, b)
	}
	mustSameDim(a, b)
	var s float64
	for i := range a {
		s += m.term(math.Abs(a[i] - b[i]))
	}
	return math.Pow(s, m.invp)
}

// Name returns "minkowski(p)".
func (m Minkowski) Name() string { return fmt.Sprintf("minkowski(%g)", m.p) }

// WeightedEuclidean is the Euclidean metric with a positive per-dimension
// weight vector, as used for user-adaptable similarity search.
type WeightedEuclidean struct {
	weights Vector
}

// NewWeightedEuclidean returns a weighted Euclidean metric. All weights must
// be strictly positive, otherwise the identity axiom fails.
func NewWeightedEuclidean(weights Vector) (*WeightedEuclidean, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("vec: weighted Euclidean needs at least one weight")
	}
	for i, w := range weights {
		if !(w > 0) { // also rejects NaN
			return nil, fmt.Errorf("vec: weight %d is %v, must be > 0", i, w)
		}
	}
	return &WeightedEuclidean{weights: weights.Clone()}, nil
}

// Distance returns sqrt(sum_i w_i (a_i - b_i)^2).
func (m *WeightedEuclidean) Distance(a, b Vector) float64 {
	mustSameDim(a, b)
	if len(a) != len(m.weights) {
		panic(fmt.Sprintf("vec: weighted Euclidean configured for dim %d, got %d", len(m.weights), len(a)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += m.weights[i] * d * d
	}
	return math.Sqrt(s)
}

// Name returns "weighted-euclidean".
func (*WeightedEuclidean) Name() string { return "weighted-euclidean" }

// QuadraticForm is the quadratic-form distance sqrt((a-b)^T A (a-b)) used for
// color-histogram similarity. The matrix A must be symmetric positive
// definite for the result to be a metric; NewQuadraticForm verifies symmetry
// and positive diagonal and checks definiteness via a Cholesky factorization.
type QuadraticForm struct {
	dim int
	// chol is the lower-triangular Cholesky factor L of A, stored row-major,
	// so dist(a,b) = |L^T (a-b)|_2. Factoring once makes Distance O(d^2)
	// with good locality instead of a naive matrix product.
	chol []float64
}

// NewQuadraticForm builds a quadratic-form metric from the symmetric
// positive-definite matrix a, given in row-major order.
func NewQuadraticForm(dim int, a []float64) (*QuadraticForm, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vec: quadratic form dimension must be positive, got %d", dim)
	}
	if len(a) != dim*dim {
		return nil, fmt.Errorf("vec: quadratic form matrix has %d entries, want %d", len(a), dim*dim)
	}
	for i := 0; i < dim; i++ {
		for j := i + 1; j < dim; j++ {
			if math.Abs(a[i*dim+j]-a[j*dim+i]) > 1e-9 {
				return nil, fmt.Errorf("vec: quadratic form matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	chol, err := cholesky(dim, a)
	if err != nil {
		return nil, err
	}
	return &QuadraticForm{dim: dim, chol: chol}, nil
}

// cholesky computes the lower-triangular factor L with A = L L^T.
func cholesky(n int, a []float64) ([]float64, error) {
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("vec: quadratic form matrix not positive definite (pivot %d is %g)", i, s)
				}
				l[i*n+i] = math.Sqrt(s)
			} else {
				l[i*n+j] = s / l[j*n+j]
			}
		}
	}
	return l, nil
}

// Distance returns sqrt((a-b)^T A (a-b)).
func (m *QuadraticForm) Distance(a, b Vector) float64 {
	mustSameDim(a, b)
	if len(a) != m.dim {
		panic(fmt.Sprintf("vec: quadratic form configured for dim %d, got %d", m.dim, len(a)))
	}
	// |L^T d|^2 where d = a-b: component j of L^T d is sum_{i>=j} L[i][j] d[i].
	var total float64
	for j := 0; j < m.dim; j++ {
		var c float64
		for i := j; i < m.dim; i++ {
			c += m.chol[i*m.dim+j] * (a[i] - b[i])
		}
		total += c * c
	}
	return math.Sqrt(total)
}

// Name returns "quadratic-form".
func (*QuadraticForm) Name() string { return "quadratic-form" }

// IdentityMatrix returns the dim×dim identity in row-major order, a
// convenient starting point for quadratic-form matrices.
func IdentityMatrix(dim int) []float64 {
	a := make([]float64, dim*dim)
	for i := 0; i < dim; i++ {
		a[i*dim+i] = 1
	}
	return a
}

// HistogramSimilarityMatrix returns a symmetric positive-definite matrix for
// color-histogram style quadratic-form distances: A[i][j] = exp(-decay *
// |i-j| / dim) couples nearby bins, mimicking perceptual similarity between
// adjacent colors. decay must be positive.
func HistogramSimilarityMatrix(dim int, decay float64) ([]float64, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vec: histogram matrix dimension must be positive, got %d", dim)
	}
	if !(decay > 0) {
		return nil, fmt.Errorf("vec: histogram matrix decay must be > 0, got %v", decay)
	}
	a := make([]float64, dim*dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			a[i*dim+j] = math.Exp(-decay * math.Abs(float64(i-j)) / float64(dim))
		}
	}
	return a, nil
}
