package vec

import "sync/atomic"

// Counting wraps a Metric and counts how many distance calculations are
// performed. The counters are atomic, so one Counting value may be shared
// by the parallel query processor's servers.
//
// Distance calculations are the dominant CPU cost of similarity query
// processing; the paper's Figures 8-10 are all expressed in terms of this
// count, so the wrapper is the instrumentation point for every experiment.
//
// Counting implements BoundedMetric regardless of whether the wrapped
// metric does: DistanceWithin falls back to a full calculation for metrics
// without a native bounded kernel. A bounded evaluation always counts as
// one distance calculation — abandoned or not — so DistCalcs-style
// accounting is independent of whether early abandonment is in effect; the
// abandoned counter additionally records how many of those calculations
// were resolved by the bound instead of running to completion.
type Counting struct {
	inner    Metric
	bounded  BoundedMetric // inner's native bounded kernel, or nil
	n        atomic.Int64
	abandon  atomic.Int64
	filtered atomic.Int64
}

// NewCounting returns a counting wrapper around m.
func NewCounting(m Metric) *Counting {
	c := &Counting{inner: m}
	if bm, ok := m.(BoundedMetric); ok {
		c.bounded = bm
	}
	return c
}

// Distance computes the wrapped distance and increments the counter.
func (c *Counting) Distance(a, b Vector) float64 {
	c.n.Add(1)
	return c.inner.Distance(a, b)
}

// DistanceWithin evaluates the wrapped distance under limit, counting the
// call as one distance calculation and additionally as abandoned when the
// bound resolved it (within == false). For wrapped metrics without a
// native kernel the distance is computed in full, so an abandoned count
// then records a bound hit rather than saved work.
func (c *Counting) DistanceWithin(a, b Vector, limit float64) (float64, bool) {
	c.n.Add(1)
	var (
		d      float64
		within bool
	)
	if c.bounded != nil {
		d, within = c.bounded.DistanceWithin(a, b, limit)
	} else {
		d = c.inner.Distance(a, b)
		within = d <= limit
	}
	if !within {
		c.abandon.Add(1)
	}
	return d, within
}

// Kernel returns a BoundedMetric view of the wrapped metric that performs
// no counting: the native bounded kernel when the metric has one, or a
// full-calculation adapter otherwise. Hot loops that evaluate many bounded
// distances per page call the kernel directly and settle their counts in
// one AddCalls batch, instead of paying two atomic updates and a wrapper
// frame per evaluation.
func (c *Counting) Kernel() BoundedMetric {
	if c.bounded != nil {
		return c.bounded
	}
	return fullKernel{c.inner}
}

// AddCalls credits a batch of bounded evaluations performed directly on the
// Kernel(): calcs distance calculations, abandoned of which were resolved
// by their limit. The split counters preserve the invariant
// Abandoned() <= Count() exactly as per-call counting would. Zero deltas
// skip their atomic entirely, so a block with nothing abandoned — the
// common case for the no-limit fast paths — settles in a single contended
// add per page pass.
func (c *Counting) AddCalls(calcs, abandoned int64) {
	if calcs != 0 {
		c.n.Add(calcs)
	}
	if abandoned != 0 {
		c.abandon.Add(abandoned)
	}
}

// AddFiltered credits rows excluded by a lossy filter (quantized-page
// refinement, VA-file bounds) before any distance calculation ran. The
// cumulative counter is the lifetime sibling of the per-batch
// Stats.QuantFiltered delta, giving operators the full distance-work
// partition next to Count()/Abandoned().
func (c *Counting) AddFiltered(n int64) {
	if n != 0 {
		c.filtered.Add(n)
	}
}

// fullKernel adapts a metric without a native bounded kernel to the
// BoundedMetric contract by always computing the full distance.
type fullKernel struct{ m Metric }

func (f fullKernel) Name() string                 { return f.m.Name() }
func (f fullKernel) Distance(a, b Vector) float64 { return f.m.Distance(a, b) }

func (f fullKernel) DistanceWithin(a, b Vector, limit float64) (float64, bool) {
	d := f.m.Distance(a, b)
	return d, d <= limit
}

// Name returns the wrapped metric's name.
func (c *Counting) Name() string { return c.inner.Name() }

// Count returns the number of distance calculations so far, including
// bounded evaluations that were abandoned early.
func (c *Counting) Count() int64 { return c.n.Load() }

// Abandoned returns how many bounded evaluations were resolved by their
// limit (within == false) so far. Always <= Count().
func (c *Counting) Abandoned() int64 { return c.abandon.Load() }

// Filtered returns how many rows lossy filters excluded without a
// distance calculation so far.
func (c *Counting) Filtered() int64 { return c.filtered.Load() }

// Reset sets the counters back to zero and returns the previous total
// calculation count.
func (c *Counting) Reset() int64 {
	c.abandon.Store(0)
	c.filtered.Store(0)
	return c.n.Swap(0)
}

// Unwrap returns the underlying metric.
func (c *Counting) Unwrap() Metric { return c.inner }
