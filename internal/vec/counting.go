package vec

import "sync/atomic"

// Counting wraps a Metric and counts how many distance calculations are
// performed. The counter is atomic, so one Counting value may be shared by
// the parallel query processor's servers.
//
// Distance calculations are the dominant CPU cost of similarity query
// processing; the paper's Figures 8-10 are all expressed in terms of this
// count, so the wrapper is the instrumentation point for every experiment.
type Counting struct {
	inner Metric
	n     atomic.Int64
}

// NewCounting returns a counting wrapper around m.
func NewCounting(m Metric) *Counting { return &Counting{inner: m} }

// Distance computes the wrapped distance and increments the counter.
func (c *Counting) Distance(a, b Vector) float64 {
	c.n.Add(1)
	return c.inner.Distance(a, b)
}

// Name returns the wrapped metric's name.
func (c *Counting) Name() string { return c.inner.Name() }

// Count returns the number of distance calculations so far.
func (c *Counting) Count() int64 { return c.n.Load() }

// Reset sets the counter back to zero and returns the previous value.
func (c *Counting) Reset() int64 { return c.n.Swap(0) }

// Unwrap returns the underlying metric.
func (c *Counting) Unwrap() Metric { return c.inner }
