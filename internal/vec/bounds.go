package vec

// Coordinatewise is implemented by metrics whose distance is a monotone
// function of the per-coordinate absolute differences |a_i - b_i|. For such
// metrics a valid lower bound on the distance from a query point to any
// point inside an axis-aligned rectangle is obtained by applying the metric
// to the per-coordinate gap vector (the "gap trick" used by geom).
//
// All Lp metrics and the weighted Euclidean metric are coordinatewise; the
// quadratic-form metric is not (its off-diagonal terms can shrink distances
// below the gap-vector value).
type Coordinatewise interface {
	Metric
	// CoordinatewiseMetric is a marker; implementations return true.
	CoordinatewiseMetric() bool
}

// CoordinatewiseMetric marks Euclidean as coordinatewise.
func (Euclidean) CoordinatewiseMetric() bool { return true }

// CoordinatewiseMetric marks Manhattan as coordinatewise.
func (Manhattan) CoordinatewiseMetric() bool { return true }

// CoordinatewiseMetric marks Chebyshev as coordinatewise.
func (Chebyshev) CoordinatewiseMetric() bool { return true }

// CoordinatewiseMetric marks Minkowski as coordinatewise.
func (Minkowski) CoordinatewiseMetric() bool { return true }

// CoordinatewiseMetric marks WeightedEuclidean as coordinatewise.
func (*WeightedEuclidean) CoordinatewiseMetric() bool { return true }

// BaseMetric strips Counting wrappers, returning the innermost metric.
// Geometric lower-bound computations use the base metric so that MBR
// distance evaluations are not charged as object distance calculations.
func BaseMetric(m Metric) Metric {
	for {
		c, ok := m.(*Counting)
		if !ok {
			return m
		}
		m = c.Unwrap()
	}
}
