// Package mtree implements the M-tree of Ciaccia, Patella and Zezula
// (VLDB 1997): a balanced, paged tree for *general metric data* — any Go
// type with a metric distance function, not just vectors. Directory nodes
// store routing objects with covering radii; subtrees are pruned with the
// triangle inequality, using pre-computed distances to parent routing
// objects to avoid distance calculations during descent.
//
// This covers the paper's general metric-database case (e.g. WWW sessions
// compared by edit distance), for which rectangle-based indexes like the
// X-tree are not applicable. The batch query methods apply the same
// Lemma 1/2 avoidance as the multi-query processor, demonstrating that the
// technique "applies to any type of similarity query and to an
// implementation based on an index or using a sequential scan".
package mtree

import (
	"fmt"
	"math"
)

// DistanceFunc is a metric distance on T. It must satisfy the metric
// axioms; the tree prunes incorrectly otherwise.
type DistanceFunc[T any] func(a, b T) float64

// Config parameterizes an M-tree.
type Config struct {
	// NodeCapacity is the maximum number of entries per node (>= 4).
	// Zero selects 32.
	NodeCapacity int
}

func (c Config) withDefaults() (Config, error) {
	if c.NodeCapacity == 0 {
		c.NodeCapacity = 32
	}
	if c.NodeCapacity < 4 {
		return c, fmt.Errorf("mtree: NodeCapacity must be >= 4, got %d", c.NodeCapacity)
	}
	return c, nil
}

// leafEntry is one stored object with its distance to the parent routing
// object (the cached value that enables pruning without recomputation).
type leafEntry[T any] struct {
	obj        T
	distParent float64
}

// routingEntry references a subtree: the routing object, its covering
// radius (an upper bound on the distance from the routing object to any
// object in the subtree), the cached distance to the parent routing object,
// and the child node.
type routingEntry[T any] struct {
	obj        T
	radius     float64
	distParent float64
	child      *node[T]
}

type node[T any] struct {
	leaf     bool
	entries  []leafEntry[T]    // when leaf
	children []routingEntry[T] // when internal
}

// Tree is an M-tree. It is not safe for concurrent mutation; concurrent
// reads are safe once construction is finished.
type Tree[T any] struct {
	dist  DistanceFunc[T]
	cfg   Config
	root  *node[T]
	size  int
	calcs int64
}

// New creates an empty M-tree over the metric dist.
func New[T any](dist DistanceFunc[T], cfg Config) (*Tree[T], error) {
	if dist == nil {
		return nil, fmt.Errorf("mtree: nil distance function")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Tree[T]{dist: dist, cfg: cfg, root: &node[T]{leaf: true}}, nil
}

// d computes a distance, charging the tree's calculation counter.
func (t *Tree[T]) d(a, b T) float64 {
	t.calcs++
	return t.dist(a, b)
}

// DistCalcs returns the number of distance calculations performed by the
// tree so far (construction and queries).
func (t *Tree[T]) DistCalcs() int64 { return t.calcs }

// ResetDistCalcs zeroes the counter and returns the previous value.
func (t *Tree[T]) ResetDistCalcs() int64 {
	c := t.calcs
	t.calcs = 0
	return c
}

// Len returns the number of stored objects.
func (t *Tree[T]) Len() int { return t.size }

// Insert adds an object to the tree.
func (t *Tree[T]) Insert(obj T) {
	if split := t.insertAt(t.root, obj, math.NaN(), nil); split != nil {
		// Root split: promote the two routing entries into a new root.
		newRoot := &node[T]{leaf: false, children: *split}
		for i := range newRoot.children {
			newRoot.children[i].distParent = math.NaN() // root entries have no parent
		}
		t.root = newRoot
	}
	t.size++
}

// insertAt inserts obj into the subtree at n, where distToHere is the
// distance from obj to n's routing object (NaN at the root) and parentObj
// is that routing object (nil at the root). It returns a replacement pair
// of routing entries when n was split.
func (t *Tree[T]) insertAt(n *node[T], obj T, distToHere float64, parentObj *T) *[]routingEntry[T] {
	if n.leaf {
		n.entries = append(n.entries, leafEntry[T]{obj: obj, distParent: distToHere})
		if len(n.entries) > t.cfg.NodeCapacity {
			s := t.splitLeaf(n)
			return &s
		}
		return nil
	}

	// Choose the subtree: prefer routing entries that already cover obj
	// (minimal distance), else the one whose radius grows least.
	best := -1
	bestDist := 0.0
	covered := false
	for i := range n.children {
		di := t.d(obj, n.children[i].obj)
		in := di <= n.children[i].radius
		switch {
		case best == -1,
			in && !covered,
			in == covered && betterInsert(di, n.children[i].radius, bestDist, n.children[best].radius, covered):
			best = i
			bestDist = di
			covered = covered || in
		}
	}
	r := &n.children[best]
	if bestDist > r.radius {
		r.radius = bestDist
	}
	split := t.insertAt(r.child, obj, bestDist, &r.obj)
	if split == nil {
		return nil
	}
	// Replace the split child's routing entry with the two new ones and
	// refresh their cached parent distances.
	n.children[best] = (*split)[0]
	n.children = append(n.children, (*split)[1])
	if len(n.children) > t.cfg.NodeCapacity {
		s := t.splitInternal(n)
		return &s
	}
	for _, i := range []int{best, len(n.children) - 1} {
		if parentObj != nil {
			n.children[i].distParent = t.d(n.children[i].obj, *parentObj)
		} else {
			n.children[i].distParent = math.NaN()
		}
	}
	return nil
}

// betterInsert compares two candidate routing entries for insertion. When
// covered, the closer routing object wins; otherwise the one needing the
// smaller radius enlargement (i.e. smaller dist - radius) wins.
func betterInsert(d, r, bestD, bestR float64, covered bool) bool {
	if covered {
		return d < bestD
	}
	return d-r < bestD-bestR
}

// splitLeaf splits an overflowing leaf using mM_RAD promotion (the pair of
// promoted objects minimizing the larger covering radius) with generalized
// hyperplane distribution, returning two routing entries.
func (t *Tree[T]) splitLeaf(n *node[T]) []routingEntry[T] {
	objs := make([]T, len(n.entries))
	for i, e := range n.entries {
		objs[i] = e.obj
	}
	p1, p2, d12 := t.promote(objs)
	g1, g2, r1, r2 := t.partition(objs, p1, p2, d12)

	left := &node[T]{leaf: true, entries: make([]leafEntry[T], len(g1))}
	for i, idx := range g1 {
		left.entries[i] = leafEntry[T]{obj: objs[idx], distParent: r1.dists[i]}
	}
	right := &node[T]{leaf: true, entries: make([]leafEntry[T], len(g2))}
	for i, idx := range g2 {
		right.entries[i] = leafEntry[T]{obj: objs[idx], distParent: r2.dists[i]}
	}
	*n = node[T]{leaf: true} // detach; replaced by the new entries
	return []routingEntry[T]{
		{obj: objs[p1], radius: r1.radius, child: left, distParent: math.NaN()},
		{obj: objs[p2], radius: r2.radius, child: right, distParent: math.NaN()},
	}
}

// splitInternal splits an overflowing internal node analogously; covering
// radii must additionally account for the children's own radii.
func (t *Tree[T]) splitInternal(n *node[T]) []routingEntry[T] {
	objs := make([]T, len(n.children))
	for i, e := range n.children {
		objs[i] = e.obj
	}
	p1, p2, d12 := t.promote(objs)
	g1, g2, r1, r2 := t.partition(objs, p1, p2, d12)

	left := &node[T]{leaf: false, children: make([]routingEntry[T], len(g1))}
	var rad1 float64
	for i, idx := range g1 {
		c := n.children[idx]
		c.distParent = r1.dists[i]
		left.children[i] = c
		if rr := r1.dists[i] + c.radius; rr > rad1 {
			rad1 = rr
		}
	}
	right := &node[T]{leaf: false, children: make([]routingEntry[T], len(g2))}
	var rad2 float64
	for i, idx := range g2 {
		c := n.children[idx]
		c.distParent = r2.dists[i]
		right.children[i] = c
		if rr := r2.dists[i] + c.radius; rr > rad2 {
			rad2 = rr
		}
	}
	*n = node[T]{leaf: true}
	return []routingEntry[T]{
		{obj: objs[p1], radius: rad1, child: left, distParent: math.NaN()},
		{obj: objs[p2], radius: rad2, child: right, distParent: math.NaN()},
	}
}

// promote selects two promotion objects with the mM_RAD criterion over a
// bounded candidate sample (full O(c²) scan for small nodes, a deterministic
// sample otherwise, keeping split cost manageable).
func (t *Tree[T]) promote(objs []T) (int, int, float64) {
	n := len(objs)
	step := 1
	if n > 24 {
		step = n / 24
	}
	bestI, bestJ := 0, 1
	bestScore := math.Inf(1)
	bestD := 0.0
	for i := 0; i < n; i += step {
		for j := i + 1; j < n; j += step {
			dij := t.d(objs[i], objs[j])
			// mM_RAD proxy: prefer well-separated promotion pairs;
			// the true radii are computed during partition, so score
			// by -separation (larger separation → smaller radii for
			// hyperplane partitioning).
			score := -dij
			if score < bestScore {
				bestScore = score
				bestI, bestJ = i, j
				bestD = dij
			}
		}
	}
	return bestI, bestJ, bestD
}

// partitionSide carries per-member distances to the promoted object plus
// the resulting covering radius.
type partitionSide struct {
	dists  []float64
	radius float64
}

// partition assigns each object to the nearer promoted object (generalized
// hyperplane), with a balancing pass that steals from the larger side when
// one side would underflow.
func (t *Tree[T]) partition(objs []T, p1, p2 int, _ float64) (g1, g2 []int, s1, s2 partitionSide) {
	type cand struct {
		idx    int
		d1, d2 float64
	}
	cands := make([]cand, 0, len(objs))
	for i := range objs {
		switch i {
		case p1:
			g1 = append(g1, i)
			s1.dists = append(s1.dists, 0)
		case p2:
			g2 = append(g2, i)
			s2.dists = append(s2.dists, 0)
		default:
			cands = append(cands, cand{i, t.d(objs[i], objs[p1]), t.d(objs[i], objs[p2])})
		}
	}
	minFill := len(objs) / 4
	if minFill < 1 {
		minFill = 1
	}
	for _, c := range cands {
		if c.d1 <= c.d2 {
			g1 = append(g1, c.idx)
			s1.dists = append(s1.dists, c.d1)
		} else {
			g2 = append(g2, c.idx)
			s2.dists = append(s2.dists, c.d2)
		}
	}
	// Rebalance if one side is starved: move the members of the larger
	// side that are relatively closest to the other promoted object.
	rebalance := func(from, to *[]int, fromS, toS *partitionSide, other int) {
		for len(*to) < minFill && len(*from) > minFill {
			bestK, bestGain := -1, math.Inf(1)
			for k, idx := range *from {
				if idx == p1 || idx == p2 {
					continue
				}
				dOther := t.d(objs[idx], objs[other])
				if gain := dOther - fromS.dists[k]; gain < bestGain {
					bestGain = gain
					bestK = k
				}
			}
			if bestK < 0 {
				return
			}
			idx := (*from)[bestK]
			*from = append((*from)[:bestK], (*from)[bestK+1:]...)
			fromS.dists = append(fromS.dists[:bestK], fromS.dists[bestK+1:]...)
			*to = append(*to, idx)
			toS.dists = append(toS.dists, t.d(objs[idx], objs[other]))
		}
	}
	rebalance(&g1, &g2, &s1, &s2, p2)
	rebalance(&g2, &g1, &s2, &s1, p1)

	for _, d := range s1.dists {
		if d > s1.radius {
			s1.radius = d
		}
	}
	for _, d := range s2.dists {
		if d > s2.radius {
			s2.radius = d
		}
	}
	return g1, g2, s1, s2
}

// Height returns the height of the tree (1 for a single leaf).
func (t *Tree[T]) Height() int {
	h := 1
	n := t.root
	for !n.leaf {
		h++
		n = n.children[0].child
	}
	return h
}
