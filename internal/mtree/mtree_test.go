package mtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"metricdb/internal/vec"
)

// euclid adapts the vec metric for []float64 objects.
func euclid(a, b vec.Vector) float64 { return vec.Euclidean{}.Distance(a, b) }

// editDistance is the Levenshtein distance — a metric on strings that has
// no vector representation, exercising the general-metric path.
func editDistance(a, b string) float64 {
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return float64(prev[lb])
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func randomVectors(seed int64, n, dim int) []vec.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]vec.Vector, n)
	for i := range out {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

func buildVecTree(t *testing.T, data []vec.Vector, capacity int) *Tree[vec.Vector] {
	t.Helper()
	tr, err := New[vec.Vector](euclid, Config{NodeCapacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range data {
		tr.Insert(v)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New[int](nil, Config{}); err == nil {
		t.Error("nil distance accepted")
	}
	if _, err := New[int](func(a, b int) float64 { return 0 }, Config{NodeCapacity: 2}); err == nil {
		t.Error("tiny capacity accepted")
	}
	tr, err := New[int](func(a, b int) float64 { return math.Abs(float64(a - b)) }, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("fresh tree: Len=%d Height=%d", tr.Len(), tr.Height())
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	data := randomVectors(1, 800, 4)
	tr := buildVecTree(t, data, 16)
	if tr.Len() != 800 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Errorf("height = %d, expected a split tree", tr.Height())
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		q := randomVectors(rng.Int63(), 1, 4)[0]
		eps := 0.15 + rng.Float64()*0.3

		got := tr.Range(q, eps)
		var want []float64
		for _, v := range data {
			if d := euclid(q, v); d <= eps {
				want = append(want, d)
			}
		}
		sort.Float64s(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d answers, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i]) > 1e-12 {
				t.Fatalf("trial %d: answer %d dist %v, want %v", trial, i, got[i].Dist, want[i])
			}
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	data := randomVectors(3, 600, 3)
	tr := buildVecTree(t, data, 12)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		q := randomVectors(rng.Int63(), 1, 3)[0]
		k := 1 + rng.Intn(15)

		got := tr.KNN(q, k)
		dists := make([]float64, len(data))
		for i, v := range data {
			dists[i] = euclid(q, v)
		}
		sort.Float64s(dists)
		if len(got) != k {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), k)
		}
		for i := range got {
			if math.Abs(got[i].Dist-dists[i]) > 1e-12 {
				t.Fatalf("trial %d: k-NN %d dist %v, want %v", trial, i, got[i].Dist, dists[i])
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	tr := buildVecTree(t, randomVectors(5, 10, 2), 8)
	if got := tr.KNN(vec.Vector{0, 0}, 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	if got := tr.KNN(vec.Vector{0, 0}, 100); len(got) != 10 {
		t.Errorf("k>n returned %d results, want all 10", len(got))
	}
	empty, err := New[vec.Vector](euclid, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.KNN(vec.Vector{0, 0}, 3); got != nil {
		t.Errorf("empty tree returned %v", got)
	}
	if got := empty.Range(vec.Vector{0, 0}, 1); len(got) != 0 {
		t.Errorf("empty tree range returned %v", got)
	}
}

func TestTreePrunesDistanceCalculations(t *testing.T) {
	data := randomVectors(6, 3000, 3)
	tr := buildVecTree(t, data, 24)
	tr.ResetDistCalcs()
	_ = tr.Range(vec.Vector{0.5, 0.5, 0.5}, 0.05)
	if calcs := tr.DistCalcs(); calcs >= 3000 {
		t.Errorf("range query computed %d distances on 3000 objects — no pruning", calcs)
	}
	tr.ResetDistCalcs()
	_ = tr.KNN(vec.Vector{0.5, 0.5, 0.5}, 5)
	if calcs := tr.DistCalcs(); calcs >= 3000 {
		t.Errorf("kNN computed %d distances — no pruning", calcs)
	}
}

func TestBatchRangeMatchesSingle(t *testing.T) {
	data := randomVectors(7, 700, 4)
	tr := buildVecTree(t, data, 16)
	queries := randomVectors(8, 15, 4)
	const eps = 0.35

	batch, stats := tr.BatchRange(queries, eps)
	if stats.MatrixCalcs != int64(len(queries)*(len(queries)-1)/2) {
		t.Errorf("MatrixCalcs = %d", stats.MatrixCalcs)
	}
	for i, q := range queries {
		single := tr.Range(q, eps)
		if len(batch[i]) != len(single) {
			t.Fatalf("query %d: batch %d answers, single %d", i, len(batch[i]), len(single))
		}
		for j := range single {
			if math.Abs(batch[i][j].Dist-single[j].Dist) > 1e-12 {
				t.Fatalf("query %d answer %d: %v vs %v", i, j, batch[i][j].Dist, single[j].Dist)
			}
		}
	}
}

func TestBatchRangeSavesWork(t *testing.T) {
	data := randomVectors(9, 2000, 6)
	tr := buildVecTree(t, data, 24)
	// Clustered queries around one location profit most from the lemmas.
	rng := rand.New(rand.NewSource(10))
	queries := make([]vec.Vector, 40)
	for i := range queries {
		q := make(vec.Vector, 6)
		for j := range q {
			q[j] = 0.5 + rng.Float64()*0.05
		}
		queries[i] = q
	}
	const eps = 0.2

	tr.ResetDistCalcs()
	var singleCalcs int64
	for _, q := range queries {
		_ = tr.Range(q, eps)
	}
	singleCalcs = tr.ResetDistCalcs()

	_, stats := tr.BatchRange(queries, eps)
	if stats.Avoided == 0 {
		t.Error("batch avoided nothing")
	}
	batchTotal := stats.DistCalcs + stats.MatrixCalcs
	if batchTotal >= singleCalcs {
		t.Errorf("batch computed %d distances, singles %d — no saving", batchTotal, singleCalcs)
	}
	if got, _ := tr.BatchRange(nil, eps); len(got) != 0 {
		t.Errorf("empty batch returned %v", got)
	}
}

func TestStringMetricTree(t *testing.T) {
	sessions := []string{
		"/index", "/index/about", "/index/news", "/shop/cart", "/shop/cart/pay",
		"/shop", "/shop/item/1", "/shop/item/2", "/blog", "/blog/post/xyz",
		"/blog/post/abc", "/index/contact", "/shop/item/42", "/blog/feed",
	}
	tr, err := New[string](editDistance, Config{NodeCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sessions {
		tr.Insert(s)
	}
	got := tr.Range("/shop/cart", 5)
	found := map[string]bool{}
	for _, r := range got {
		found[r.Obj] = true
	}
	if !found["/shop/cart"] || !found["/shop/cart/pay"] || !found["/shop"] {
		t.Errorf("edit-distance range query missed close sessions: %v", got)
	}
	// Exact brute-force comparison.
	for _, q := range []string{"/blog", "/shop/item/7", "/index"} {
		want := 0
		for _, s := range sessions {
			if editDistance(q, s) <= 3 {
				want++
			}
		}
		if res := tr.Range(q, 3); len(res) != want {
			t.Errorf("Range(%q, 3) = %d answers, want %d", q, len(res), want)
		}
	}
	nn := tr.KNN("/shop/cart/payy", 1)
	if len(nn) != 1 || nn[0].Obj != "/shop/cart/pay" {
		t.Errorf("1-NN = %v, want /shop/cart/pay", nn)
	}
}

// Property: on random data and random queries, Range and KNN agree with
// brute force.
func TestSearchProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(150)
		data := randomVectors(rng.Int63(), n, 3)
		tr, err := New[vec.Vector](euclid, Config{NodeCapacity: 8})
		if err != nil {
			return false
		}
		for _, v := range data {
			tr.Insert(v)
		}
		q := randomVectors(rng.Int63(), 1, 3)[0]

		eps := rng.Float64() * 0.5
		want := 0
		for _, v := range data {
			if euclid(q, v) <= eps {
				want++
			}
		}
		if len(tr.Range(q, eps)) != want {
			return false
		}

		k := 1 + rng.Intn(10)
		dists := make([]float64, n)
		for i, v := range data {
			dists[i] = euclid(q, v)
		}
		sort.Float64s(dists)
		res := tr.KNN(q, k)
		if len(res) != k {
			return false
		}
		for i := range res {
			if math.Abs(res[i].Dist-dists[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEditDistanceIsAMetric(t *testing.T) {
	words := []string{"", "a", "ab", "abc", "axc", "xyz", "abcd", "bcda"}
	for _, a := range words {
		for _, b := range words {
			dab := editDistance(a, b)
			if dab != editDistance(b, a) {
				t.Fatalf("asymmetry for %q,%q", a, b)
			}
			if (dab == 0) != (a == b) {
				t.Fatalf("identity violated for %q,%q", a, b)
			}
			for _, c := range words {
				if editDistance(a, c) > dab+editDistance(b, c) {
					t.Fatalf("triangle violated for %q,%q,%q", a, b, c)
				}
			}
		}
	}
}

func TestBatchKNNMatchesSingle(t *testing.T) {
	data := randomVectors(11, 900, 4)
	tr := buildVecTree(t, data, 16)
	queries := randomVectors(12, 12, 4)
	const k = 7

	batch, stats := tr.BatchKNN(queries, k)
	if stats.MatrixCalcs != int64(len(queries)*(len(queries)-1)/2) {
		t.Errorf("MatrixCalcs = %d", stats.MatrixCalcs)
	}
	for i, q := range queries {
		single := tr.KNN(q, k)
		if len(batch[i]) != k || len(single) != k {
			t.Fatalf("query %d: batch %d, single %d results", i, len(batch[i]), len(single))
		}
		for j := range single {
			if math.Abs(batch[i][j].Dist-single[j].Dist) > 1e-12 {
				t.Fatalf("query %d result %d: batch dist %v, single %v", i, j, batch[i][j].Dist, single[j].Dist)
			}
		}
	}
}

func TestBatchKNNSavesWorkOnRelatedQueries(t *testing.T) {
	data := randomVectors(13, 2500, 5)
	tr := buildVecTree(t, data, 24)
	// Clustered queries: the k-NN of one seed vector.
	seedNN := tr.KNN(data[0], 30)
	queries := make([]vec.Vector, len(seedNN))
	for i, r := range seedNN {
		queries[i] = r.Obj
	}

	tr.ResetDistCalcs()
	for _, q := range queries {
		_ = tr.KNN(q, 10)
	}
	singleCalcs := tr.ResetDistCalcs()

	_, stats := tr.BatchKNN(queries, 10)
	if stats.Avoided == 0 {
		t.Error("batch kNN avoided nothing")
	}
	if stats.DistCalcs+stats.MatrixCalcs >= singleCalcs {
		t.Errorf("batch kNN computed %d distances, singles %d", stats.DistCalcs+stats.MatrixCalcs, singleCalcs)
	}
}

func TestBatchKNNEdgeCases(t *testing.T) {
	tr := buildVecTree(t, randomVectors(14, 50, 3), 8)
	if out, _ := tr.BatchKNN(nil, 5); len(out) != 0 {
		t.Error("empty batch returned results")
	}
	if out, _ := tr.BatchKNN(randomVectors(15, 2, 3), 0); out[0] != nil {
		t.Error("k=0 returned results")
	}
	empty, err := New[vec.Vector](euclid, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := empty.BatchKNN(randomVectors(16, 2, 3), 3)
	if out[0] != nil || out[1] != nil {
		t.Error("empty tree returned results")
	}
}
