package mtree

import (
	"container/heap"
	"math"
	"sort"
)

// Result is one answer of a similarity search.
type Result[T any] struct {
	Obj  T
	Dist float64
}

// Range returns every stored object within eps of q, sorted by distance.
// Subtrees and leaf entries are pruned with the triangle inequality over
// covering radii and cached parent distances, so many distance calculations
// are avoided.
func (t *Tree[T]) Range(q T, eps float64) []Result[T] {
	var out []Result[T]
	t.rangeSearch(t.root, q, eps, math.NaN(), &out)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	return out
}

// rangeSearch descends n, where dQParent is the (possibly unknown)
// distance from q to n's routing object.
func (t *Tree[T]) rangeSearch(n *node[T], q T, eps, dQParent float64, out *[]Result[T]) {
	if n.leaf {
		for i := range n.entries {
			e := &n.entries[i]
			// If |d(q,Op) - d(O,Op)| > eps then d(q,O) > eps: skip
			// without computing (the leaf-level parent-distance prune).
			if !math.IsNaN(dQParent) && !math.IsNaN(e.distParent) &&
				math.Abs(dQParent-e.distParent) > eps {
				continue
			}
			if d := t.d(q, e.obj); d <= eps {
				*out = append(*out, Result[T]{Obj: e.obj, Dist: d})
			}
		}
		return
	}
	for i := range n.children {
		c := &n.children[i]
		if !math.IsNaN(dQParent) && !math.IsNaN(c.distParent) &&
			math.Abs(dQParent-c.distParent) > eps+c.radius {
			continue // subtree provably outside the query ball
		}
		d := t.d(q, c.obj)
		if d <= eps+c.radius {
			t.rangeSearch(c.child, q, eps, d, out)
		}
	}
}

// knnItem is a priority-queue element for best-first k-NN traversal.
type knnItem[T any] struct {
	n     *node[T]
	bound float64 // lower bound on the distance from q to anything in n
	dQObj float64 // distance from q to n's routing object (parent for children)
}

type knnQueue[T any] []knnItem[T]

func (h knnQueue[T]) Len() int           { return len(h) }
func (h knnQueue[T]) Less(i, j int) bool { return h[i].bound < h[j].bound }
func (h knnQueue[T]) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *knnQueue[T]) Push(x any)        { *h = append(*h, x.(knnItem[T])) }
func (h *knnQueue[T]) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// KNN returns the k nearest stored objects to q in ascending distance
// order, using best-first traversal with covering-radius lower bounds (the
// metric-space analogue of the Hjaltason–Samet algorithm).
func (t *Tree[T]) KNN(q T, k int) []Result[T] {
	if k <= 0 || t.size == 0 {
		return nil
	}
	results := make([]Result[T], 0, k)
	worst := func() float64 {
		if len(results) < k {
			return math.Inf(1)
		}
		return results[len(results)-1].Dist
	}
	consider := func(obj T, d float64) {
		if d > worst() {
			return
		}
		i := sort.Search(len(results), func(i int) bool { return results[i].Dist > d })
		results = append(results, Result[T]{})
		copy(results[i+1:], results[i:])
		results[i] = Result[T]{Obj: obj, Dist: d}
		if len(results) > k {
			results = results[:k]
		}
	}

	pq := &knnQueue[T]{{n: t.root, bound: 0, dQObj: math.NaN()}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(knnItem[T])
		if it.bound > worst() {
			break // everything remaining is farther than the current k-th
		}
		if it.n.leaf {
			for i := range it.n.entries {
				e := &it.n.entries[i]
				if !math.IsNaN(it.dQObj) && !math.IsNaN(e.distParent) &&
					math.Abs(it.dQObj-e.distParent) > worst() {
					continue
				}
				consider(e.obj, t.d(q, e.obj))
			}
			continue
		}
		for i := range it.n.children {
			c := &it.n.children[i]
			if !math.IsNaN(it.dQObj) && !math.IsNaN(c.distParent) &&
				math.Abs(it.dQObj-c.distParent)-c.radius > worst() {
				continue
			}
			d := t.d(q, c.obj)
			bound := d - c.radius
			if bound < 0 {
				bound = 0
			}
			if bound <= worst() {
				heap.Push(pq, knnItem[T]{n: c.child, bound: bound, dQObj: d})
			}
		}
	}
	return results
}

// BatchStats reports the cost of a batched similarity query.
type BatchStats struct {
	// DistCalcs counts object/routing distance calculations during the
	// traversal.
	DistCalcs int64
	// MatrixCalcs counts the m(m-1)/2 inter-query distances.
	MatrixCalcs int64
	// AvoidTries counts triangle-inequality evaluations.
	AvoidTries int64
	// Avoided counts distance calculations skipped via Lemma 1/2.
	Avoided int64
}

// BatchRange evaluates range queries with radius eps for all query objects
// in a single traversal: each node is visited at most once and processed
// for every query it is relevant for (the I/O-sharing idea of §5.1), and
// distances from earlier queries to the same object avoid calculations for
// later queries via Lemmas 1 and 2 (§5.2), here applied to a general metric
// index. Results are per query, sorted by distance.
func (t *Tree[T]) BatchRange(queries []T, eps float64) ([][]Result[T], BatchStats) {
	m := len(queries)
	out := make([][]Result[T], m)
	if m == 0 {
		return out, BatchStats{}
	}
	var stats BatchStats
	before := t.calcs

	// Inter-query distance matrix.
	matrix := make([][]float64, m)
	for i := range matrix {
		matrix[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			d := t.d(queries[i], queries[j])
			matrix[i][j], matrix[j][i] = d, d
			stats.MatrixCalcs++
		}
	}

	active := make([]int, m)
	for i := range active {
		active[i] = i
	}
	t.batchWalk(t.root, queries, eps, matrix, active, out, &stats)
	for i := range out {
		sort.SliceStable(out[i], func(a, b int) bool { return out[i][a].Dist < out[i][b].Dist })
	}
	stats.DistCalcs = t.calcs - before - stats.MatrixCalcs
	return out, stats
}

// knownPair records a distance already calculated from the current object
// to the query at index qi.
type knownPair struct {
	qi int
	d  float64
}

// batchWalk visits n once for the still-active queries.
func (t *Tree[T]) batchWalk(n *node[T], queries []T, eps float64, matrix [][]float64, active []int, out [][]Result[T], stats *BatchStats) {
	knowns := make([]knownPair, 0, len(active))
	if n.leaf {
		for e := range n.entries {
			obj := n.entries[e].obj
			knowns = knowns[:0]
			for _, qi := range active {
				if avoidWith(knowns, matrix[qi], eps, stats) {
					continue
				}
				d := t.d(queries[qi], obj)
				knowns = append(knowns, knownPair{qi, d})
				if d <= eps {
					out[qi] = append(out[qi], Result[T]{Obj: obj, Dist: d})
				}
			}
		}
		return
	}
	for i := range n.children {
		c := &n.children[i]
		next := make([]int, 0, len(active))
		knowns = knowns[:0]
		for _, qi := range active {
			// Avoidance on the routing object with the enlarged radius
			// eps + c.radius: if the lower bound on d(q_i, c.obj)
			// exceeds it, the whole subtree is irrelevant for q_i.
			if avoidWith(knowns, matrix[qi], eps+c.radius, stats) {
				continue
			}
			d := t.d(queries[qi], c.obj)
			knowns = append(knowns, knownPair{qi, d})
			if d <= eps+c.radius {
				next = append(next, qi)
			}
		}
		if len(next) > 0 {
			t.batchWalk(c.child, queries, eps, matrix, next, out, stats)
		}
	}
}

// maxAvoidProbes bounds the known distances consulted per avoidance
// decision, keeping batch traversal linear in the number of queries.
const maxAvoidProbes = 8

// avoidWith applies Lemmas 1 and 2 over already-known distances: if some
// known d(Q_j, O) proves d(Q_i, O) > threshold, the calculation for Q_i is
// avoidable.
func avoidWith(knowns []knownPair, row []float64, threshold float64, stats *BatchStats) bool {
	if len(knowns) > maxAvoidProbes {
		knowns = knowns[:maxAvoidProbes]
	}
	for _, k := range knowns {
		stats.AvoidTries++
		if math.Abs(k.d-row[k.qi]) > threshold {
			stats.Avoided++
			return true
		}
	}
	return false
}
