package mtree

import (
	"math"
	"sort"
)

// BatchKNN evaluates k-nearest-neighbor queries for all query objects in
// one shared traversal: every node is visited at most once and processed
// for the queries it is still relevant for, and distances computed for
// earlier queries avoid calculations for later ones via Lemmas 1 and 2,
// with the per-query dynamic k-NN distance as the pruning threshold.
//
// Results are per query, ascending by distance. Compared to repeated
// single KNN calls, the traversal order is depth-first rather than
// best-first per query, so individual queries may look at more nodes; the
// sharing and avoidance more than compensate for batched, related queries.
func (t *Tree[T]) BatchKNN(queries []T, k int) ([][]Result[T], BatchStats) {
	m := len(queries)
	out := make([][]Result[T], m)
	var stats BatchStats
	if m == 0 || k <= 0 || t.size == 0 {
		return out, stats
	}
	before := t.calcs

	matrix := make([][]float64, m)
	for i := range matrix {
		matrix[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			d := t.d(queries[i], queries[j])
			matrix[i][j], matrix[j][i] = d, d
			stats.MatrixCalcs++
		}
	}

	results := make([]knnAccum[T], m)
	for i := range results {
		results[i].k = k
	}
	active := make([]int, m)
	for i := range active {
		active[i] = i
	}
	t.batchKNNWalk(t.root, queries, matrix, active, results, &stats)

	for i := range results {
		out[i] = results[i].items
	}
	stats.DistCalcs = t.calcs - before - stats.MatrixCalcs
	return out, stats
}

// knnAccum is a bounded best-k accumulator.
type knnAccum[T any] struct {
	k     int
	items []Result[T]
}

// worst returns the current pruning distance: +Inf until k results exist.
func (a *knnAccum[T]) worst() float64 {
	if len(a.items) < a.k {
		return math.Inf(1)
	}
	return a.items[len(a.items)-1].Dist
}

func (a *knnAccum[T]) consider(obj T, d float64) {
	if d > a.worst() {
		return
	}
	i := sort.Search(len(a.items), func(i int) bool { return a.items[i].Dist > d })
	a.items = append(a.items, Result[T]{})
	copy(a.items[i+1:], a.items[i:])
	a.items[i] = Result[T]{Obj: obj, Dist: d}
	if len(a.items) > a.k {
		a.items = a.items[:a.k]
	}
}

// batchKNNWalk visits n once for the still-active queries.
func (t *Tree[T]) batchKNNWalk(n *node[T], queries []T, matrix [][]float64, active []int, results []knnAccum[T], stats *BatchStats) {
	knowns := make([]knownPair, 0, len(active))
	if n.leaf {
		for e := range n.entries {
			obj := n.entries[e].obj
			knowns = knowns[:0]
			for _, qi := range active {
				if avoidWith(knowns, matrix[qi], results[qi].worst(), stats) {
					continue
				}
				d := t.d(queries[qi], obj)
				knowns = append(knowns, knownPair{qi, d})
				results[qi].consider(obj, d)
			}
		}
		return
	}
	for i := range n.children {
		c := &n.children[i]
		next := make([]int, 0, len(active))
		knowns = knowns[:0]
		for _, qi := range active {
			// The subtree is irrelevant for qi when its lower bound
			// d(q, c.obj) - c.radius exceeds the current k-NN distance;
			// the lemma check proves that without computing d(q, c.obj)
			// when possible.
			threshold := results[qi].worst() + c.radius
			if avoidWith(knowns, matrix[qi], threshold, stats) {
				continue
			}
			d := t.d(queries[qi], c.obj)
			knowns = append(knowns, knownPair{qi, d})
			if d-c.radius <= results[qi].worst() {
				next = append(next, qi)
			}
		}
		if len(next) > 0 {
			t.batchKNNWalk(c.child, queries, matrix, next, results, stats)
		}
	}
}
