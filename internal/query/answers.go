package query

import (
	"sort"

	"metricdb/internal/store"
)

// Answer is one element of a similarity query result: an item and its
// distance from the query object.
type Answer struct {
	ID   store.ItemID
	Dist float64
}

// AnswerList accumulates answers for one similarity query, implementing the
// insert / remove_last_element / adapt_query_dist logic of Figure 1.
//
// For bounded kinds (k-NN and bounded k-NN) the list keeps the k best
// answers in ascending distance order and shrinks the query distance as it
// fills. For range queries the query distance is constant (ε) and answers
// are kept unsorted until Answers is called, which avoids the O(n²) cost of
// sorted insertion into potentially large range results.
//
// Ties at equal distance are broken by ItemID so that results are
// deterministic across engines, which the cross-engine equivalence tests
// rely on.
type AnswerList struct {
	typ     Type
	answers []Answer
	sorted  bool
}

// NewAnswerList returns an empty answer list for the given query type.
func NewAnswerList(t Type) *AnswerList {
	l := &AnswerList{typ: t, sorted: true}
	if t.Bounded() && t.Cardinality < 1<<20 {
		l.answers = make([]Answer, 0, t.Cardinality)
	}
	return l
}

// less orders answers by (distance, ID).
func less(a, b Answer) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// Consider offers an answer to the list. It returns true if the answer
// currently qualifies (dist <= QueryDist()) and was inserted. A bounded
// list that is already full drops its worst element, which tightens
// QueryDist — the adapt_query_dist step.
func (l *AnswerList) Consider(id store.ItemID, dist float64) bool {
	if dist > l.QueryDist() {
		return false
	}
	a := Answer{ID: id, Dist: dist}
	if !l.typ.Bounded() {
		l.answers = append(l.answers, a)
		l.sorted = len(l.answers) <= 1
		return true
	}
	// Bounded: sorted insertion, then trim to cardinality.
	i := sort.Search(len(l.answers), func(i int) bool { return less(a, l.answers[i]) })
	l.answers = append(l.answers, Answer{})
	copy(l.answers[i+1:], l.answers[i:])
	l.answers[i] = a
	if len(l.answers) > l.typ.Cardinality {
		l.answers = l.answers[:l.typ.Cardinality]
	}
	return true
}

// QueryDist returns the current pruning distance: any object farther away
// can neither enter the answers nor force out a current answer. For a range
// query this is always ε; for bounded kinds it is ε until the list is full
// and the distance of the current worst answer afterwards.
func (l *AnswerList) QueryDist() float64 {
	if !l.typ.Bounded() || len(l.answers) < l.typ.Cardinality {
		return l.typ.Range
	}
	return l.answers[len(l.answers)-1].Dist
}

// Full reports whether a bounded list has reached its cardinality. Range
// lists are never full.
func (l *AnswerList) Full() bool {
	return l.typ.Bounded() && len(l.answers) >= l.typ.Cardinality
}

// Len returns the number of answers collected so far.
func (l *AnswerList) Len() int { return len(l.answers) }

// Type returns the query type this list was created for.
func (l *AnswerList) Type() Type { return l.typ }

// Answers returns the answers in ascending (distance, ID) order. The
// returned slice is owned by the list; callers must not modify it.
func (l *AnswerList) Answers() []Answer {
	if !l.sorted {
		sort.Slice(l.answers, func(i, j int) bool { return less(l.answers[i], l.answers[j]) })
		l.sorted = true
	}
	return l.answers
}

// Clone returns a deep copy of the list, used when buffering partial
// answers between incremental multi-query calls.
func (l *AnswerList) Clone() *AnswerList {
	c := &AnswerList{typ: l.typ, sorted: l.sorted}
	c.answers = append([]Answer(nil), l.answers...)
	return c
}

// IDs returns just the item IDs of the answers, in result order.
func (l *AnswerList) IDs() []store.ItemID {
	as := l.Answers()
	ids := make([]store.ItemID, len(as))
	for i, a := range as {
		ids[i] = a.ID
	}
	return ids
}
