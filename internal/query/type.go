// Package query models similarity queries per Definition 1 of the paper:
// a query type T consists of a range, a cardinality, and a kind, and the
// classic query types are specializations:
//
//	range query (Def. 2):   T.range = ε,   T.cardinality = ∞, kind "range"
//	k-NN query (Def. 3):    T.range = +∞,  T.cardinality = k, kind "knn"
//	bounded k-NN:           T.range = ε,   T.cardinality = k, kind "bounded-knn"
//
// The package also provides the answer list used by the query processor,
// which implements the Answers.insert / remove_last_element /
// adapt_query_dist steps of Figure 1.
package query

import (
	"fmt"
	"math"
)

// Kind distinguishes how the range and cardinality conditions combine.
type Kind int

// The supported query kinds.
const (
	// Range returns every object within distance Range of the query.
	Range Kind = iota
	// KNN returns the Cardinality nearest objects.
	KNN
	// BoundedKNN returns the Cardinality nearest objects among those
	// within distance Range ("the k nearest neighbors but only those
	// within a specified range", §2).
	BoundedKNN
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Range:
		return "range"
	case KNN:
		return "knn"
	case BoundedKNN:
		return "bounded-knn"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Type is the specification T of a similarity query.
type Type struct {
	Kind        Kind
	Range       float64 // maximum distance between query and answer
	Cardinality int     // maximum number of answers (ignored for Range kind)
}

// NewRange returns a range query type with radius eps.
func NewRange(eps float64) Type {
	return Type{Kind: Range, Range: eps, Cardinality: math.MaxInt}
}

// NewKNN returns a k-nearest-neighbor query type.
func NewKNN(k int) Type {
	return Type{Kind: KNN, Range: math.Inf(1), Cardinality: k}
}

// NewBoundedKNN returns a k-nearest-neighbor query type restricted to
// answers within distance eps.
func NewBoundedKNN(k int, eps float64) Type {
	return Type{Kind: BoundedKNN, Range: eps, Cardinality: k}
}

// Validate reports whether the type is well formed.
func (t Type) Validate() error {
	switch t.Kind {
	case Range:
		if t.Range < 0 || math.IsNaN(t.Range) {
			return fmt.Errorf("query: range must be >= 0, got %v", t.Range)
		}
	case KNN:
		if t.Cardinality <= 0 {
			return fmt.Errorf("query: k must be positive, got %d", t.Cardinality)
		}
	case BoundedKNN:
		if t.Cardinality <= 0 {
			return fmt.Errorf("query: k must be positive, got %d", t.Cardinality)
		}
		if t.Range < 0 || math.IsNaN(t.Range) {
			return fmt.Errorf("query: range must be >= 0, got %v", t.Range)
		}
	default:
		return fmt.Errorf("query: unknown kind %v", t.Kind)
	}
	return nil
}

// Bounded reports whether the answer cardinality is limited.
func (t Type) Bounded() bool { return t.Kind != Range }

// InitialQueryDist returns the pruning distance before any answers are
// known: T.range, which is +∞ for a pure k-NN query.
func (t Type) InitialQueryDist() float64 { return t.Range }

// String renders the type compactly, e.g. "knn(k=10)" or "range(ε=0.5)".
func (t Type) String() string {
	switch t.Kind {
	case Range:
		return fmt.Sprintf("range(ε=%g)", t.Range)
	case KNN:
		return fmt.Sprintf("knn(k=%d)", t.Cardinality)
	case BoundedKNN:
		return fmt.Sprintf("bounded-knn(k=%d, ε=%g)", t.Cardinality, t.Range)
	default:
		return t.Kind.String()
	}
}
