package query

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"metricdb/internal/store"
)

func TestTypeConstructors(t *testing.T) {
	r := NewRange(0.5)
	if r.Kind != Range || r.Range != 0.5 || r.Bounded() {
		t.Errorf("NewRange = %+v", r)
	}
	k := NewKNN(10)
	if k.Kind != KNN || k.Cardinality != 10 || !math.IsInf(k.Range, 1) || !k.Bounded() {
		t.Errorf("NewKNN = %+v", k)
	}
	b := NewBoundedKNN(5, 2)
	if b.Kind != BoundedKNN || b.Cardinality != 5 || b.Range != 2 || !b.Bounded() {
		t.Errorf("NewBoundedKNN = %+v", b)
	}
	for _, typ := range []Type{r, k, b} {
		if err := typ.Validate(); err != nil {
			t.Errorf("%v invalid: %v", typ, err)
		}
	}
}

func TestTypeValidateRejects(t *testing.T) {
	bad := []Type{
		NewRange(-1),
		NewRange(math.NaN()),
		NewKNN(0),
		NewKNN(-3),
		NewBoundedKNN(0, 1),
		NewBoundedKNN(3, -1),
		{Kind: Kind(42)},
	}
	for _, typ := range bad {
		if err := typ.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid type", typ)
		}
	}
}

func TestTypeAndKindStrings(t *testing.T) {
	cases := []struct {
		typ  Type
		want string
	}{
		{NewRange(0.5), "range(ε=0.5)"},
		{NewKNN(10), "knn(k=10)"},
		{NewBoundedKNN(3, 1), "bounded-knn(k=3, ε=1)"},
	}
	for _, c := range cases {
		if got := c.typ.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	if Kind(42).String() == "" || !strings.Contains(Type{Kind: Kind(42)}.String(), "42") {
		t.Error("unknown kind has no diagnostic string")
	}
	if Range.String() != "range" || KNN.String() != "knn" || BoundedKNN.String() != "bounded-knn" {
		t.Error("kind names wrong")
	}
}

func TestInitialQueryDist(t *testing.T) {
	if got := NewRange(2).InitialQueryDist(); got != 2 {
		t.Errorf("range initial dist = %v", got)
	}
	if got := NewKNN(3).InitialQueryDist(); !math.IsInf(got, 1) {
		t.Errorf("knn initial dist = %v", got)
	}
	if got := NewBoundedKNN(3, 1.5).InitialQueryDist(); got != 1.5 {
		t.Errorf("bounded-knn initial dist = %v", got)
	}
}

func TestAnswerListKNN(t *testing.T) {
	l := NewAnswerList(NewKNN(3))
	if !math.IsInf(l.QueryDist(), 1) {
		t.Error("empty kNN list should not prune")
	}

	dists := []float64{5, 1, 3, 2, 4}
	for i, d := range dists {
		l.Consider(store.ItemID(i), d)
	}
	if l.Len() != 3 || !l.Full() {
		t.Fatalf("Len = %d, Full = %v", l.Len(), l.Full())
	}
	got := l.Answers()
	wantDists := []float64{1, 2, 3}
	for i, a := range got {
		if a.Dist != wantDists[i] {
			t.Errorf("answer %d dist = %v, want %v", i, a.Dist, wantDists[i])
		}
	}
	if l.QueryDist() != 3 {
		t.Errorf("QueryDist = %v, want 3 (distance of 3rd NN)", l.QueryDist())
	}
	// An answer beyond the adapted query distance is rejected.
	if l.Consider(99, 3.5) {
		t.Error("answer beyond query distance accepted")
	}
}

func TestAnswerListRange(t *testing.T) {
	l := NewAnswerList(NewRange(2))
	accepted := 0
	for i, d := range []float64{0.5, 2.0, 2.1, 1.0, 3.0} {
		if l.Consider(store.ItemID(i), d) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Errorf("accepted %d answers, want 3 (<= ε including boundary)", accepted)
	}
	if l.Full() {
		t.Error("range list reported Full")
	}
	if l.QueryDist() != 2 {
		t.Errorf("range QueryDist = %v, want constant ε", l.QueryDist())
	}
	got := l.Answers()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Dist < got[j].Dist }) {
		t.Errorf("range answers not sorted: %v", got)
	}
}

func TestAnswerListBoundedKNN(t *testing.T) {
	l := NewAnswerList(NewBoundedKNN(2, 1.0))
	l.Consider(1, 0.5)
	if l.Consider(2, 1.5) {
		t.Error("answer beyond ε accepted by bounded kNN")
	}
	l.Consider(3, 0.9)
	l.Consider(4, 0.1)
	ids := l.IDs()
	if len(ids) != 2 || ids[0] != 4 || ids[1] != 1 {
		t.Errorf("IDs = %v, want [4 1]", ids)
	}
	if l.QueryDist() != 0.5 {
		t.Errorf("QueryDist = %v, want 0.5", l.QueryDist())
	}
}

func TestAnswerListTieBreaking(t *testing.T) {
	l := NewAnswerList(NewKNN(2))
	l.Consider(7, 1.0)
	l.Consider(3, 1.0)
	l.Consider(5, 1.0)
	ids := l.IDs()
	if ids[0] != 3 || ids[1] != 5 {
		t.Errorf("tie-broken IDs = %v, want [3 5]", ids)
	}
}

func TestAnswerListClone(t *testing.T) {
	l := NewAnswerList(NewKNN(2))
	l.Consider(1, 1)
	c := l.Clone()
	c.Consider(2, 0.5)
	if l.Len() != 1 {
		t.Error("Clone shares answer storage")
	}
	if c.Len() != 2 {
		t.Error("Clone lost answers")
	}
	if c.Type() != l.Type() {
		t.Error("Clone changed the type")
	}
}

// Property: an AnswerList fed a random stream produces exactly the k nearest
// by (dist, id), matching an oracle that sorts the full stream.
func TestAnswerListMatchesOracle(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%10) + 1
		n := 50
		type pair struct {
			id store.ItemID
			d  float64
		}
		stream := make([]pair, n)
		for i := range stream {
			stream[i] = pair{store.ItemID(i), float64(rng.Intn(20))} // ints force ties
		}

		l := NewAnswerList(NewKNN(k))
		for _, p := range stream {
			l.Consider(p.id, p.d)
		}

		oracle := append([]pair(nil), stream...)
		sort.Slice(oracle, func(i, j int) bool {
			if oracle[i].d != oracle[j].d {
				return oracle[i].d < oracle[j].d
			}
			return oracle[i].id < oracle[j].id
		})
		got := l.Answers()
		if len(got) != k {
			return false
		}
		for i := range got {
			if got[i].ID != oracle[i].id || got[i].Dist != oracle[i].d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: QueryDist never increases as answers are considered, which the
// page-pruning and avoidance logic depend on.
func TestQueryDistMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewAnswerList(NewKNN(int(rng.Int63n(8)) + 1))
		prev := l.QueryDist()
		for i := 0; i < 100; i++ {
			l.Consider(store.ItemID(i), rng.Float64()*10)
			cur := l.QueryDist()
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
