package query

import (
	"math"
	"testing"

	"metricdb/internal/store"
)

// FuzzAnswerListInvariants drives an AnswerList with arbitrary byte-derived
// operation streams and checks its structural invariants: sorted output,
// bounded cardinality, monotone query distance, and acceptance consistency.
func FuzzAnswerListInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3), uint8(0))
	f.Add([]byte{255, 0, 255, 0, 10, 20}, uint8(1), uint8(1))
	f.Add([]byte{9, 9, 9, 9}, uint8(5), uint8(2))

	f.Fuzz(func(t *testing.T, data []byte, kRaw, kindRaw uint8) {
		k := int(kRaw%16) + 1
		var typ Type
		switch kindRaw % 3 {
		case 0:
			typ = NewKNN(k)
		case 1:
			typ = NewRange(float64(kRaw) / 16)
		default:
			typ = NewBoundedKNN(k, float64(kRaw)/8)
		}
		l := NewAnswerList(typ)
		prevQD := l.QueryDist()
		for i, b := range data {
			dist := float64(b) / 32
			accepted := l.Consider(store.ItemID(i), dist)
			if accepted && dist > prevQD {
				t.Fatalf("accepted %v beyond previous query distance %v", dist, prevQD)
			}
			qd := l.QueryDist()
			if qd > prevQD {
				t.Fatalf("query distance grew: %v -> %v", prevQD, qd)
			}
			prevQD = qd
		}
		if typ.Bounded() && l.Len() > typ.Cardinality {
			t.Fatalf("bounded list holds %d answers, cap %d", l.Len(), typ.Cardinality)
		}
		answers := l.Answers()
		for i := 1; i < len(answers); i++ {
			if answers[i].Dist < answers[i-1].Dist {
				t.Fatal("answers not sorted")
			}
			if answers[i].Dist == answers[i-1].Dist && answers[i].ID <= answers[i-1].ID {
				t.Fatal("tie-break ordering violated")
			}
		}
		for _, a := range answers {
			if math.IsNaN(a.Dist) {
				t.Fatal("NaN distance stored")
			}
			if typ.Kind != KNN && a.Dist > typ.Range {
				t.Fatalf("answer at %v beyond range %v", a.Dist, typ.Range)
			}
		}
	})
}
