// Package vafile implements a vector-approximation file in the spirit of
// Weber, Schek and Blott (VLDB 1998), which the paper cites as the
// refined alternative to the plain sequential scan: every vector is
// quantized into a small bit approximation kept in memory; a query first
// scans the approximations, deriving per-item lower and upper distance
// bounds from the quantization cells, and only reads the exact vectors of
// candidates that the bounds cannot exclude.
//
// Mapped onto this library's engine interface, the approximation scan
// implements Plan/MinDist/MaxDist: a data page's lower bound is the
// minimum over its items' cell lower bounds, so the multiple-similarity-
// query machinery (page sharing, incremental buffering, avoidance) works
// unchanged on top of a VA-file — demonstrating the paper's claim that the
// techniques apply to "an implementation based on an index or using a
// sequential scan".
//
// The approximation array is immutable after construction, so the query
// path (Plan/MinDist/MaxDist/ReadPage) is safe for concurrent readers, as
// the engine contract requires.
package vafile

import (
	"fmt"
	"math"
	"sort"

	"metricdb/internal/engine"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// Config parameterizes a VA-file.
type Config struct {
	// Bits per dimension (1..8); zero selects 6, i.e. 64 cells per
	// dimension (the VA-file paper's recommended range is 4-8).
	Bits int
	// PageCapacity is the number of exact vectors per data page; zero
	// derives it from 32 KB blocks.
	PageCapacity int
	// BufferPages sizes the LRU buffer (0 disables; negative selects the
	// 10 % default).
	BufferPages int
	// Metric is used for the cell bounds. Nil selects Euclidean. Only
	// coordinatewise metrics produce nonzero bounds; anything else makes
	// the VA-file degrade to a plain scan.
	Metric vec.Metric
	// WrapDisk, when non-nil, interposes on the freshly built disk before
	// the pager is attached — the hook used to run the engine on
	// fault-injected storage. Approximations are built from the in-memory
	// pages, so construction never reads through the wrapper.
	WrapDisk func(store.PageSource) (store.PageSource, error)
	// Columns selects which sibling representations (columnar float64
	// block, float32, quantized codes) are materialized on each page at
	// build time for the blocked distance kernels.
	Columns store.ColumnSpec
}

// Engine is a VA-file over a paged vector file.
type Engine struct {
	pager    *store.Pager
	metric   vec.Metric
	base     vec.Metric // unwrapped metric used for bound arithmetic
	cw       bool       // base is coordinatewise
	dim      int
	bits     int
	cells    int
	bounds   [][]float64 // per dimension: cells+1 boundaries
	pages    []pageApprox
	numItems int
	// pageCapacity is the resolved build-time page capacity, kept for
	// EXPLAIN output.
	pageCapacity int
}

// pageApprox holds the in-memory approximations of one data page.
type pageApprox struct {
	cells []uint8 // item-major: item*dim + d
	n     int
}

var _ engine.Engine = (*Engine)(nil)

// New builds a VA-file over items.
func New(items []store.Item, cfg Config) (*Engine, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("vafile: empty database")
	}
	if cfg.Bits == 0 {
		cfg.Bits = 6
	}
	if cfg.Bits < 1 || cfg.Bits > 8 {
		return nil, fmt.Errorf("vafile: bits per dimension must be in [1,8], got %d", cfg.Bits)
	}
	dim := items[0].Vec.Dim()
	if cfg.PageCapacity == 0 {
		cfg.PageCapacity = store.PageCapacityForBlockSize(32768, dim)
	}
	if cfg.PageCapacity < 1 {
		return nil, fmt.Errorf("vafile: page capacity must be >= 1, got %d", cfg.PageCapacity)
	}
	if cfg.Metric == nil {
		cfg.Metric = vec.Euclidean{}
	}

	pages, err := store.Paginate(items, cfg.PageCapacity)
	if err != nil {
		return nil, fmt.Errorf("vafile: %w", err)
	}
	if err := store.Columnize(pages, cfg.Columns); err != nil {
		return nil, fmt.Errorf("vafile: %w", err)
	}
	disk, err := store.NewDisk(pages)
	if err != nil {
		return nil, fmt.Errorf("vafile: %w", err)
	}
	var src store.PageSource = disk
	if cfg.WrapDisk != nil {
		if src, err = cfg.WrapDisk(disk); err != nil {
			return nil, fmt.Errorf("vafile: %w", err)
		}
	}
	bufPages := cfg.BufferPages
	if bufPages < 0 {
		bufPages = store.DefaultBufferPages(len(pages))
	}
	var buf *store.Buffer
	if bufPages > 0 {
		if buf, err = store.NewBuffer(bufPages); err != nil {
			return nil, fmt.Errorf("vafile: %w", err)
		}
	}
	pager, err := store.NewPager(src, buf)
	if err != nil {
		return nil, fmt.Errorf("vafile: %w", err)
	}

	e := &Engine{
		pager:        pager,
		metric:       cfg.Metric,
		dim:          dim,
		bits:         cfg.Bits,
		cells:        1 << cfg.Bits,
		numItems:     len(items),
		pageCapacity: cfg.PageCapacity,
	}
	e.base = vec.BaseMetric(cfg.Metric)
	if cw, ok := e.base.(vec.Coordinatewise); ok && cw.CoordinatewiseMetric() {
		e.cw = true
	}
	e.buildBoundaries(items)
	e.quantize(pages)
	return e, nil
}

// buildBoundaries computes equi-width cell boundaries per dimension from
// the data's min/max range.
func (e *Engine) buildBoundaries(items []store.Item) {
	e.bounds = make([][]float64, e.dim)
	for d := 0; d < e.dim; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range items {
			v := items[i].Vec[d]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi == lo {
			hi = lo + 1 // constant dimension: one degenerate cell range
		}
		b := make([]float64, e.cells+1)
		step := (hi - lo) / float64(e.cells)
		for c := 0; c <= e.cells; c++ {
			b[c] = lo + float64(c)*step
		}
		b[e.cells] = hi // avoid floating-point shortfall at the top edge
		e.bounds[d] = b
	}
}

// quantize stores the approximation of every page.
func (e *Engine) quantize(pages []*store.Page) {
	e.pages = make([]pageApprox, len(pages))
	for pi, p := range pages {
		pa := pageApprox{cells: make([]uint8, len(p.Items)*e.dim), n: len(p.Items)}
		for it := range p.Items {
			for d := 0; d < e.dim; d++ {
				pa.cells[it*e.dim+d] = e.cellOf(d, p.Items[it].Vec[d])
			}
		}
		e.pages[pi] = pa
	}
}

// cellOf returns the cell index of value v in dimension d.
func (e *Engine) cellOf(d int, v float64) uint8 {
	b := e.bounds[d]
	lo, hi := b[0], b[e.cells]
	if v <= lo {
		return 0
	}
	if v >= hi {
		return uint8(e.cells - 1)
	}
	c := int(float64(e.cells) * (v - lo) / (hi - lo))
	if c >= e.cells {
		c = e.cells - 1
	}
	// Guard against floating-point drift at cell edges.
	for c > 0 && v < b[c] {
		c--
	}
	for c < e.cells-1 && v >= b[c+1] {
		c++
	}
	return uint8(c)
}

// itemLowerBound returns the cell-derived lower bound on the distance from
// q to the it-th item of page pi, writing the per-dimension gaps into
// scratch (len dim).
func (e *Engine) itemLowerBound(q vec.Vector, pi store.PageID, it int, scratch, zero vec.Vector) float64 {
	if !e.cw {
		return 0
	}
	cells := e.pages[pi].cells[it*e.dim : (it+1)*e.dim]
	for d := 0; d < e.dim; d++ {
		b := e.bounds[d]
		c := int(cells[d])
		lo, hi := b[c], b[c+1]
		switch {
		case q[d] < lo:
			scratch[d] = lo - q[d]
		case q[d] > hi:
			scratch[d] = q[d] - hi
		default:
			scratch[d] = 0
		}
	}
	return e.base.Distance(scratch, zero)
}

// itemUpperBound is the matching farthest-corner bound.
func (e *Engine) itemUpperBound(q vec.Vector, pi store.PageID, it int, scratch, zero vec.Vector) float64 {
	if !e.cw {
		return math.Inf(1)
	}
	cells := e.pages[pi].cells[it*e.dim : (it+1)*e.dim]
	for d := 0; d < e.dim; d++ {
		b := e.bounds[d]
		c := int(cells[d])
		lo := math.Abs(q[d] - b[c])
		hi := math.Abs(q[d] - b[c+1])
		if lo > hi {
			scratch[d] = lo
		} else {
			scratch[d] = hi
		}
	}
	return e.base.Distance(scratch, zero)
}

// Name returns "vafile".
func (e *Engine) Name() string { return "vafile" }

// Describe reports the approximation resolution for EXPLAIN output.
func (e *Engine) Describe() engine.Config {
	return engine.Config{PageCapacity: e.pageCapacity, Bits: e.bits}
}

// Prepare returns the per-query handle. The handle owns the per-dimension
// scratch vectors that the cell-bound arithmetic needs, so a query pays the
// two allocations once instead of on every page probe.
func (e *Engine) Prepare(q vec.Vector) engine.PreparedQuery {
	return &prepared{
		e:       e,
		q:       q,
		scratch: make(vec.Vector, e.dim),
		zero:    make(vec.Vector, e.dim),
	}
}

// prepared answers page probes for one query against the in-memory
// approximation array.
type prepared struct {
	e       *Engine
	q       vec.Vector
	scratch vec.Vector
	zero    vec.Vector
}

// Plan performs the approximation scan (phase 1 of VA-file query
// processing): every page whose best item lower bound is within queryDist
// becomes a candidate, ordered by ascending lower bound so that k-NN
// processing can stop early, exactly like an index plan.
func (p *prepared) Plan(queryDist float64) []engine.PageRef {
	e := p.e
	refs := make([]engine.PageRef, 0, len(e.pages))
	for pi := range e.pages {
		pid := store.PageID(pi)
		lb := e.pageLowerBound(p.q, pid, p.scratch, p.zero)
		if lb <= queryDist {
			refs = append(refs, engine.PageRef{ID: pid, MinDist: lb})
		}
	}
	sortRefs(refs)
	return refs
}

func sortRefs(refs []engine.PageRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].MinDist != refs[j].MinDist {
			return refs[i].MinDist < refs[j].MinDist
		}
		return refs[i].ID < refs[j].ID
	})
}

// pageLowerBound is the minimum item lower bound of the page.
func (e *Engine) pageLowerBound(q vec.Vector, pid store.PageID, scratch, zero vec.Vector) float64 {
	pa := &e.pages[pid]
	best := math.Inf(1)
	for it := 0; it < pa.n; it++ {
		if lb := e.itemLowerBound(q, pid, it, scratch, zero); lb < best {
			best = lb
			if best == 0 {
				break
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// MinDist returns the page's approximation lower bound.
func (p *prepared) MinDist(pid store.PageID) float64 {
	return p.e.pageLowerBound(p.q, pid, p.scratch, p.zero)
}

// MaxDist returns an upper bound on the distance from q to any item on the
// page (the maximum item upper bound).
func (p *prepared) MaxDist(pid store.PageID) float64 {
	e := p.e
	if !e.cw {
		return math.Inf(1)
	}
	pa := &e.pages[pid]
	worst := 0.0
	for it := 0; it < pa.n; it++ {
		if ub := e.itemUpperBound(p.q, pid, it, p.scratch, p.zero); ub > worst {
			worst = ub
		}
	}
	return worst
}

// PageLen returns the number of items on the page.
func (e *Engine) PageLen(pid store.PageID) int { return e.pages[pid].n }

// ReadPage fetches the exact vectors of a page (phase 2).
func (e *Engine) ReadPage(pid store.PageID) (*store.Page, error) {
	return e.pager.ReadPage(pid)
}

// NumPages returns the number of data pages.
func (e *Engine) NumPages() int { return len(e.pages) }

// NumItems returns the number of stored items.
func (e *Engine) NumItems() int { return e.numItems }

// Pager returns the underlying pager.
func (e *Engine) Pager() *store.Pager { return e.pager }

// ApproximationBytes reports the in-memory size of the approximations,
// the VA-file's footprint relative to 8·dim bytes per exact vector.
func (e *Engine) ApproximationBytes() int {
	total := 0
	for i := range e.pages {
		total += len(e.pages[i].cells)
	}
	return total
}
