package vafile

import (
	"fmt"
	"math/rand"
	"testing"

	"metricdb/internal/engine"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// BenchmarkSortRefs measures the plan ordering on large page counts — the
// regime where the previous insertion sort's quadratic cost dominated Plan
// for VA-files with thousands of pages.
func BenchmarkSortRefs(b *testing.B) {
	for _, n := range []int{256, 2048, 16384} {
		rng := rand.New(rand.NewSource(1))
		refs := make([]engine.PageRef, n)
		for i := range refs {
			refs[i] = engine.PageRef{ID: store.PageID(i), MinDist: rng.Float64()}
		}
		scratch := make([]engine.PageRef, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(scratch, refs)
				sortRefs(scratch)
			}
		})
	}
}

// BenchmarkPlan exercises the full approximation scan over a many-page
// VA-file, whose output ordering runs through sortRefs.
func BenchmarkPlan(b *testing.B) {
	const dim, nItems = 8, 8192
	rng := rand.New(rand.NewSource(2))
	items := make([]store.Item, nItems)
	for i := range items {
		v := make(vec.Vector, dim)
		for d := range v {
			v[d] = rng.Float64()
		}
		items[i] = store.Item{ID: store.ItemID(i), Vec: v}
	}
	e, err := New(items, Config{PageCapacity: 4})
	if err != nil {
		b.Fatal(err)
	}
	q := make(vec.Vector, dim)
	for d := range q {
		q[d] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refs := e.Prepare(q).Plan(0.4)
		benchSinkRefs = len(refs)
	}
}

var benchSinkRefs int
