package vafile

import (
	"testing"

	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// FuzzQuantizationBounds builds a tiny VA-file from fuzzed coordinates and
// checks the safety contract on a fuzzed query point: the cell-derived
// lower bound never exceeds the true distance, the upper bound never
// undercuts it.
func FuzzQuantizationBounds(f *testing.F) {
	f.Add(0.1, 0.9, 0.5, 0.25, 0.75)
	f.Add(-3.0, 7.5, 0.0, 100.0, -100.0)
	f.Add(1.0, 1.0, 1.0, 1.0, 1.0)

	f.Fuzz(func(t *testing.T, a, b, c, q1, q2 float64) {
		for _, v := range []float64{a, b, c, q1, q2} {
			if v != v || v > 1e12 || v < -1e12 { // NaN or extreme: skip
				t.Skip()
			}
		}
		items := []store.Item{
			{ID: 0, Vec: vec.Vector{a, b}},
			{ID: 1, Vec: vec.Vector{b, c}},
			{ID: 2, Vec: vec.Vector{c, a}},
		}
		e, err := New(items, Config{PageCapacity: 2, Bits: 3})
		if err != nil {
			t.Fatal(err)
		}
		q := vec.Vector{q1, q2}
		m := vec.Euclidean{}
		scratch := make(vec.Vector, 2)
		zero := make(vec.Vector, 2)
		const eps = 1e-9
		for pid := 0; pid < e.NumPages(); pid++ {
			p, err := e.ReadPage(store.PageID(pid))
			if err != nil {
				t.Fatal(err)
			}
			for it := range p.Items {
				d := m.Distance(q, p.Items[it].Vec)
				lb := e.itemLowerBound(q, store.PageID(pid), it, scratch, zero)
				ub := e.itemUpperBound(q, store.PageID(pid), it, scratch, zero)
				if lb > d+eps {
					t.Fatalf("lower bound %v exceeds distance %v", lb, d)
				}
				if d > ub+eps {
					t.Fatalf("upper bound %v undercuts distance %v", ub, d)
				}
			}
		}
	})
}
