package vafile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"metricdb/internal/dataset"
	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

func testItems(seed int64, n, dim int) []store.Item {
	return dataset.Uniform(seed, n, dim)
}

func TestNewValidation(t *testing.T) {
	items := testItems(1, 50, 4)
	if _, err := New(nil, Config{}); err == nil {
		t.Error("empty database accepted")
	}
	if _, err := New(items, Config{Bits: 9}); err == nil {
		t.Error("9 bits accepted")
	}
	if _, err := New(items, Config{Bits: -1}); err == nil {
		t.Error("negative bits accepted")
	}
	e, err := New(items, Config{PageCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "vafile" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.NumItems() != 50 || e.NumPages() != 7 {
		t.Errorf("NumItems=%d NumPages=%d", e.NumItems(), e.NumPages())
	}
	if e.PageLen(0) != 8 || e.PageLen(6) != 2 {
		t.Errorf("PageLen = %d / %d", e.PageLen(0), e.PageLen(6))
	}
	// 6 bits default, 4 dims, 50 items: 200 approximation bytes.
	if got := e.ApproximationBytes(); got != 200 {
		t.Errorf("ApproximationBytes = %d, want 200", got)
	}
}

// TestBoundsSafety property-tests the load-bearing contract: for every
// item, itemLowerBound <= true distance <= itemUpperBound, and the page
// bounds wrap them.
func TestBoundsSafety(t *testing.T) {
	const dim = 5
	items := testItems(2, 300, dim)
	e, err := New(items, Config{PageCapacity: 16, Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := vec.Euclidean{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := make(vec.Vector, dim)
		for d := range q {
			q[d] = rng.Float64()*1.5 - 0.25 // partly outside the data range
		}
		scratch := make(vec.Vector, dim)
		zero := make(vec.Vector, dim)
		const eps = 1e-9
		for pid := 0; pid < e.NumPages(); pid++ {
			p, err := e.ReadPage(store.PageID(pid))
			if err != nil {
				return false
			}
			pq := e.Prepare(q)
			pageLB := pq.MinDist(store.PageID(pid))
			pageUB := pq.MaxDist(store.PageID(pid))
			for it := range p.Items {
				d := m.Distance(q, p.Items[it].Vec)
				lb := e.itemLowerBound(q, store.PageID(pid), it, scratch, zero)
				ub := e.itemUpperBound(q, store.PageID(pid), it, scratch, zero)
				if lb > d+eps || d > ub+eps {
					return false
				}
				if pageLB > d+eps || d > pageUB+eps {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQueriesMatchScan runs the full query stack over the VA-file and
// cross-checks against the scan engine.
func TestQueriesMatchScan(t *testing.T) {
	const dim = 6
	items := testItems(3, 800, dim)
	va, err := New(items, Config{PageCapacity: 16, Bits: 6})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.New(items, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := vec.Euclidean{}
	pv, err := msq.New(va, m, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := msq.New(sc, m, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		q := testItems(rng.Int63(), 1, dim)[0].Vec
		var typ query.Type
		if trial%2 == 0 {
			typ = query.NewKNN(8)
		} else {
			typ = query.NewRange(0.3)
		}
		av, _, err := pv.Single(q, typ)
		if err != nil {
			t.Fatal(err)
		}
		as, _, err := ps.Single(q, typ)
		if err != nil {
			t.Fatal(err)
		}
		va1, sc1 := av.Answers(), as.Answers()
		if len(va1) != len(sc1) {
			t.Fatalf("trial %d: %d vs %d answers", trial, len(va1), len(sc1))
		}
		for i := range va1 {
			if va1[i].ID != sc1[i].ID || math.Abs(va1[i].Dist-sc1[i].Dist) > 1e-12 {
				t.Fatalf("trial %d answer %d: %+v vs %+v", trial, i, va1[i], sc1[i])
			}
		}
	}
}

// TestVAFileIsSelective: with enough bits, tight queries exclude most pages
// from phase 2, unlike the plain scan.
func TestVAFileIsSelective(t *testing.T) {
	const dim = 4 // moderate dimension: approximations are effective
	items := testItems(5, 3000, dim)
	va, err := New(items, Config{PageCapacity: 16, Bits: 6})
	if err != nil {
		t.Fatal(err)
	}
	m := vec.Euclidean{}
	p, err := msq.New(va, m, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := p.Single(vec.Vector{0.5, 0.5, 0.5, 0.5}, query.NewKNN(10))
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesRead >= int64(va.NumPages())/2 {
		t.Errorf("VA-file read %d of %d pages — approximations not selective", st.PagesRead, va.NumPages())
	}

	// Plan ordering is ascending by lower bound.
	plan := va.Prepare(vec.Vector{0.1, 0.9, 0.5, 0.2}).Plan(math.Inf(1))
	if !sort.SliceIsSorted(plan, func(i, j int) bool { return plan[i].MinDist <= plan[j].MinDist }) {
		t.Error("plan not sorted by lower bound")
	}
}

// TestMultiQueryOnVAFile exercises the full multi-query machinery over the
// VA-file and checks equivalence with per-query brute force.
func TestMultiQueryOnVAFile(t *testing.T) {
	const dim = 5
	items := testItems(6, 600, dim)
	va, err := New(items, Config{PageCapacity: 16, Bits: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := vec.Euclidean{}
	p, err := msq.New(va, m, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]msq.Query, 10)
	rng := rand.New(rand.NewSource(7))
	for i := range queries {
		queries[i] = msq.Query{ID: uint64(i), Vec: items[rng.Intn(len(items))].Vec.Clone(), Type: query.NewKNN(6)}
	}
	results, stats, err := p.MultiQuery(queries)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Avoided == 0 {
		t.Error("no distance calculations avoided on the VA-file path")
	}
	for i, q := range queries {
		l := query.NewAnswerList(q.Type)
		for _, it := range items {
			l.Consider(it.ID, m.Distance(q.Vec, it.Vec))
		}
		want := l.Answers()
		got := results[i].Answers()
		if len(got) != len(want) {
			t.Fatalf("query %d: %d vs %d answers", i, len(got), len(want))
		}
		for j := range want {
			if got[j].ID != want[j].ID {
				t.Fatalf("query %d answer %d: %+v vs %+v", i, j, got[j], want[j])
			}
		}
	}
}

// TestNonCoordinatewiseDegradesToScan: with a quadratic-form metric, all
// bounds collapse and the VA-file behaves like a scan (still correct).
func TestNonCoordinatewiseDegradesToScan(t *testing.T) {
	const dim = 4
	items := testItems(8, 200, dim)
	hm, err := vec.HistogramSimilarityMatrix(dim, 2)
	if err != nil {
		t.Fatal(err)
	}
	qf, err := vec.NewQuadraticForm(dim, hm)
	if err != nil {
		t.Fatal(err)
	}
	va, err := New(items, Config{PageCapacity: 8, Metric: qf})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(va.Prepare(items[0].Vec).Plan(0.01)); got != va.NumPages() {
		t.Errorf("quadratic-form plan covers %d of %d pages", got, va.NumPages())
	}
	if !math.IsInf(va.Prepare(items[0].Vec).MaxDist(0), 1) {
		t.Error("MaxDist not +Inf for non-coordinatewise metric")
	}

	p, err := msq.New(va, qf, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := p.Single(items[0].Vec, query.NewKNN(3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers()[0].ID != items[0].ID {
		t.Error("nearest neighbor of a stored object is not itself")
	}
}

func TestCellOfEdges(t *testing.T) {
	items := []store.Item{
		{ID: 0, Vec: vec.Vector{0}},
		{ID: 1, Vec: vec.Vector{1}},
		{ID: 2, Vec: vec.Vector{0.5}},
		{ID: 3, Vec: vec.Vector{0.5}}, // duplicate values
	}
	e, err := New(items, Config{PageCapacity: 4, Bits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c := e.cellOf(0, -5); c != 0 {
		t.Errorf("below-range cell = %d", c)
	}
	if c := e.cellOf(0, 5); c != 3 {
		t.Errorf("above-range cell = %d", c)
	}
	if c := e.cellOf(0, 0); c != 0 {
		t.Errorf("min cell = %d", c)
	}
	if c := e.cellOf(0, 1); c != 3 {
		t.Errorf("max cell = %d", c)
	}

	// Constant dimension must not divide by zero.
	flat := []store.Item{{ID: 0, Vec: vec.Vector{7}}, {ID: 1, Vec: vec.Vector{7}}}
	if _, err := New(flat, Config{PageCapacity: 2, Bits: 3}); err != nil {
		t.Errorf("constant dimension rejected: %v", err)
	}
}
