package pmtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"metricdb/internal/dataset"
	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

func testItems(seed int64, n, dim int) []store.Item {
	return dataset.Uniform(seed, n, dim)
}

func TestNewValidation(t *testing.T) {
	items := testItems(1, 100, 4)
	if _, err := New(nil, Config{PageCapacity: 8}); err == nil {
		t.Error("empty database accepted")
	}
	if _, err := New(items, Config{}); err == nil {
		t.Error("zero page capacity accepted")
	}
	if _, err := New(items, Config{PageCapacity: 8, Fanout: 1}); err == nil {
		t.Error("fanout 1 accepted")
	}
	e, err := New(items, Config{PageCapacity: 8, Pivots: 4, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "pmtree" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.NumItems() != 100 {
		t.Errorf("NumItems = %d", e.NumItems())
	}
	if e.NumPages() != 13 { // ceil(100/8) clusters
		t.Errorf("NumPages = %d", e.NumPages())
	}
	total := 0
	for pid := 0; pid < e.NumPages(); pid++ {
		n := e.PageLen(store.PageID(pid))
		if n < 1 || n > 8 {
			t.Errorf("page %d holds %d items, capacity 8", pid, n)
		}
		total += n
	}
	if total != 100 {
		t.Errorf("pages hold %d items in total", total)
	}
	if d := e.Describe(); d.Pivots != 4 || d.Fanout != 4 || d.PageCapacity != 8 {
		t.Errorf("Describe = %+v", d)
	}
	if e.BuildDistCalcs() == 0 {
		t.Error("bulk load reported no distance calculations")
	}
}

// TestPagesPartitionItems: the clustered pages must hold every item
// exactly once.
func TestPagesPartitionItems(t *testing.T) {
	items := testItems(2, 333, 5)
	e, err := New(items, Config{PageCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[store.ItemID]int{}
	for pid := 0; pid < e.NumPages(); pid++ {
		p, err := e.ReadPage(store.PageID(pid))
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Items) != e.PageLen(store.PageID(pid)) {
			t.Fatalf("page %d: PageLen %d but %d items", pid, e.PageLen(store.PageID(pid)), len(p.Items))
		}
		for _, it := range p.Items {
			seen[it.ID]++
		}
	}
	if len(seen) != len(items) {
		t.Fatalf("pages hold %d distinct items, want %d", len(seen), len(items))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("item %d appears %d times", id, n)
		}
	}
}

// TestBoundsSafety: for every page, MinDist ≤ the true distance of every
// item on the page ≤ MaxDist — the soundness of both the ball and the
// hyper-ring filters.
func TestBoundsSafety(t *testing.T) {
	const dim = 5
	for _, metric := range []vec.Metric{vec.Euclidean{}, vec.Manhattan{}, vec.Chebyshev{}} {
		items := testItems(3, 300, dim)
		e, err := New(items, Config{PageCapacity: 16, Pivots: 4, Fanout: 4, Metric: metric})
		if err != nil {
			t.Fatal(err)
		}
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			q := make(vec.Vector, dim)
			for d := range q {
				q[d] = rng.Float64()*1.5 - 0.25
			}
			pq := e.Prepare(q)
			const eps = 1e-9
			for pid := 0; pid < e.NumPages(); pid++ {
				p, err := e.ReadPage(store.PageID(pid))
				if err != nil {
					return false
				}
				lb := pq.MinDist(store.PageID(pid))
				ub := pq.MaxDist(store.PageID(pid))
				for it := range p.Items {
					d := metric.Distance(q, p.Items[it].Vec)
					if d < lb-eps || d > ub+eps {
						t.Logf("metric %s page %d item %d: d=%v outside [%v, %v]",
							metric.Name(), pid, it, d, lb, ub)
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("metric %s: %v", metric.Name(), err)
		}
	}
}

// TestPlan: the best-first descent must emit a duplicate-free ascending
// schedule whose entries agree with MinDist, and omit a page only when its
// bound exceeds the query distance.
func TestPlan(t *testing.T) {
	const dim = 4
	items := testItems(4, 500, dim)
	e, err := New(items, Config{PageCapacity: 16, Pivots: 4, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := vec.Vector{0.9, 0.1, 0.4, 0.7}
	pq := e.Prepare(q)

	full := pq.Plan(math.Inf(1))
	if len(full) != e.NumPages() {
		t.Fatalf("unbounded plan has %d pages, want %d", len(full), e.NumPages())
	}
	if !sort.SliceIsSorted(full, func(i, j int) bool { return full[i].MinDist < full[j].MinDist }) {
		t.Error("plan not in ascending MinDist order")
	}
	seen := map[store.PageID]bool{}
	for _, ref := range full {
		if seen[ref.ID] {
			t.Fatalf("page %d appears twice", ref.ID)
		}
		seen[ref.ID] = true
		if got := pq.MinDist(ref.ID); got != ref.MinDist {
			t.Fatalf("page %d: plan lb %v != MinDist %v", ref.ID, ref.MinDist, got)
		}
	}

	const eps = 0.3
	tight := e.Prepare(q).Plan(eps)
	if len(tight) == len(full) {
		t.Error("tight range query pruned nothing")
	}
	inPlan := map[store.PageID]bool{}
	for _, ref := range tight {
		if ref.MinDist > eps {
			t.Errorf("page %d in plan with lb %v > eps %v", ref.ID, ref.MinDist, eps)
		}
		inPlan[ref.ID] = true
	}
	// Omitted pages really are out of range. (A fresh handle probes leaf
	// bounds directly, unclamped by the descent.)
	probe := e.Prepare(q)
	for pid := 0; pid < e.NumPages(); pid++ {
		id := store.PageID(pid)
		if !inPlan[id] && probe.MinDist(id) <= eps {
			t.Errorf("page %d omitted with lb %v <= eps %v", pid, probe.MinDist(id), eps)
		}
	}
}

// TestPivotDistCalcs: Prepare pays one distance per ring pivot; probes pay
// at most one memoized routing-center distance per node.
func TestPivotDistCalcs(t *testing.T) {
	items := testItems(5, 200, 4)
	e, err := New(items, Config{PageCapacity: 16, Pivots: 4})
	if err != nil {
		t.Fatal(err)
	}
	pq := e.Prepare(items[0].Vec)
	after := e.PivotDistCalcs()
	if after != 4 {
		t.Fatalf("PivotDistCalcs after Prepare = %d, want 4", after)
	}
	pq.Plan(math.Inf(1))
	planCost := e.PivotDistCalcs() - after
	// A full descent touches every node's center exactly once.
	if planCost > int64(len(e.nodes)) {
		t.Fatalf("plan paid %d center distances over %d nodes", planCost, len(e.nodes))
	}
	before := e.PivotDistCalcs()
	pq.Plan(math.Inf(1))
	for pid := 0; pid < e.NumPages(); pid++ {
		pq.MinDist(store.PageID(pid))
		pq.MaxDist(store.PageID(pid))
	}
	if got := e.PivotDistCalcs(); got != before {
		t.Fatalf("repeated probes paid %d more distances — memoization broken", got-before)
	}
}

// TestQueriesMatchScan: answers must be bit-identical to the sequential
// scan for both query types.
func TestQueriesMatchScan(t *testing.T) {
	const dim = 6
	items := testItems(6, 800, dim)
	pe, err := New(items, Config{PageCapacity: 16, Pivots: 4, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.New(items, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := vec.Euclidean{}
	pp, err := msq.New(pe, m, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := msq.New(sc, m, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		q := testItems(rng.Int63(), 1, dim)[0].Vec
		var typ query.Type
		if trial%2 == 0 {
			typ = query.NewKNN(8)
		} else {
			typ = query.NewRange(0.3)
		}
		ap, _, err := pp.Single(q, typ)
		if err != nil {
			t.Fatal(err)
		}
		as, _, err := ps.Single(q, typ)
		if err != nil {
			t.Fatal(err)
		}
		p1, s1 := ap.Answers(), as.Answers()
		if len(p1) != len(s1) {
			t.Fatalf("trial %d: %d vs %d answers", trial, len(p1), len(s1))
		}
		for i := range p1 {
			if p1[i].ID != s1[i].ID || p1[i].Dist != s1[i].Dist {
				t.Fatalf("trial %d answer %d: %+v vs %+v", trial, i, p1[i], s1[i])
			}
		}
	}
}

// TestMultiQueryMatchesBruteForce exercises the multi-query machinery over
// the PM-tree.
func TestMultiQueryMatchesBruteForce(t *testing.T) {
	const dim = 5
	items := testItems(8, 600, dim)
	e, err := New(items, Config{PageCapacity: 16, Pivots: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := vec.Euclidean{}
	p, err := msq.New(e, m, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]msq.Query, 10)
	rng := rand.New(rand.NewSource(9))
	for i := range queries {
		queries[i] = msq.Query{ID: uint64(i), Vec: items[rng.Intn(len(items))].Vec.Clone(), Type: query.NewKNN(6)}
	}
	results, stats, err := p.MultiQuery(queries)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PivotDistCalcs == 0 {
		t.Error("PM-tree batch reported no pivot distance calculations")
	}
	for i, q := range queries {
		l := query.NewAnswerList(q.Type)
		for _, it := range items {
			l.Consider(it.ID, m.Distance(q.Vec, it.Vec))
		}
		want := l.Answers()
		got := results[i].Answers()
		if len(got) != len(want) {
			t.Fatalf("query %d: %d vs %d answers", i, len(got), len(want))
		}
		for j := range want {
			if got[j].ID != want[j].ID {
				t.Fatalf("query %d answer %d: %+v vs %+v", i, j, got[j], want[j])
			}
		}
	}
}

// TestBuildDeterminism: two builds over the same items produce identical
// trees (same pages, same node geometry).
func TestBuildDeterminism(t *testing.T) {
	items := testItems(10, 400, 5)
	a, err := New(items, Config{PageCapacity: 16, Pivots: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(items, Config{PageCapacity: 16, Pivots: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.nodes) != len(b.nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(a.nodes), len(b.nodes))
	}
	for i := range a.nodes {
		na, nb := &a.nodes[i], &b.nodes[i]
		if na.radius != nb.radius || na.pid != nb.pid {
			t.Fatalf("node %d differs: %+v vs %+v", i, na, nb)
		}
		for p := range na.ringMin {
			if na.ringMin[p] != nb.ringMin[p] || na.ringMax[p] != nb.ringMax[p] {
				t.Fatalf("node %d ring %d differs", i, p)
			}
		}
	}
	for pid := 0; pid < a.NumPages(); pid++ {
		pa, _ := a.ReadPage(store.PageID(pid))
		pb, _ := b.ReadPage(store.PageID(pid))
		for i := range pa.Items {
			if pa.Items[i].ID != pb.Items[i].ID {
				t.Fatalf("page %d item %d differs", pid, i)
			}
		}
	}
}
