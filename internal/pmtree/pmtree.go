// Package pmtree implements a PM-tree engine (Skopal & Lokoč's Pivoting
// M-tree): a paged metric tree whose nodes carry both the M-tree's ball
// region — a routing center with a covering radius — and per-pivot
// hyper-rings, the [min, max] interval of the distances from a global pivot
// to every item under the node. A query prunes a node when EITHER bound
// proves it empty of answers:
//
//	ball lower bound:  d(q, center) − radius
//	ring lower bound:  max over pivots p of
//	                   max(d(q,p) − ringMax(p), ringMin(p) − d(q,p))
//
// Both follow from the triangle inequality alone, so the tree is sound for
// any metric. The hyper-rings reuse the same global pivots as the LAESA
// table of internal/pivot; the per-query pivot distances d(q, p) are
// computed once in Engine.Prepare and shared by every node probe, while
// the routing-center distances d(q, center) are computed lazily per node
// and memoized in the prepared handle — the contract redesign that makes a
// metric tree affordable under the multi-query processor's many page
// probes.
//
// The build is a deterministic bulk load: leaf pages are formed by
// capacity-bounded farthest-first clustering (each cluster seed claims its
// nearest unassigned items), and the directory is grown bottom-up by
// grouping consecutive nodes under a routing entry whose ball and rings
// cover its children. Rebuilt trees are therefore bit-identical.
package pmtree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"metricdb/internal/engine"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// DefaultFanout is the directory fanout when the configuration does not
// choose one.
const DefaultFanout = 8

// DefaultPivots is the hyper-ring pivot count when the configuration does
// not choose one. Rings pay off faster than a flat pivot table because the
// ball bound already does coarse pruning; 8 keeps node entries compact.
const DefaultPivots = 8

// Config parameterizes a PM-tree.
type Config struct {
	// PageCapacity is the number of items per leaf data page. Required.
	PageCapacity int
	// Fanout is the directory fanout; 0 selects DefaultFanout.
	Fanout int
	// Pivots is the number of hyper-ring pivots; 0 selects DefaultPivots.
	Pivots int
	// BufferPages sizes the LRU buffer (0 disables; negative selects the
	// 10 % default).
	BufferPages int
	// Metric is the distance the tree is built and probed under. Nil
	// selects Euclidean.
	Metric vec.Metric
	// WrapDisk, when non-nil, interposes on the freshly built disk before
	// the pager is attached (fault injection, persisted layouts).
	WrapDisk func(store.PageSource) (store.PageSource, error)
	// Columns selects the sibling representations materialized on each
	// page at build time.
	Columns store.ColumnSpec
}

// node is one tree node. Leaves reference a data page; internal nodes
// reference a contiguous child range. Nodes are stored in one slice with
// children preceding parents (bottom-up build), the root last.
type node struct {
	center vec.Vector
	radius float64
	// ringMin/ringMax are the per-pivot hyper-rings over all items under
	// the node.
	ringMin []float64
	ringMax []float64
	// pid is the data page for leaves; InvalidPage for internal nodes.
	pid store.PageID
	// firstChild/numChildren describe the child range of internal nodes.
	firstChild  int
	numChildren int
}

func (n *node) isLeaf() bool { return n.pid != store.InvalidPage }

// Engine is a PM-tree engine over a paged database.
type Engine struct {
	pager        *store.Pager
	metric       vec.Metric
	pivots       []vec.Vector
	nodes        []node // children before parents; root is the last entry
	numItems     int
	pageLens     []int
	pageCapacity int
	fanout       int
	buildCalcs   int64
	pivotCalcs   atomic.Int64
}

var (
	_ engine.Engine      = (*Engine)(nil)
	_ engine.PivotCoster = (*Engine)(nil)
	_ engine.Described   = (*Engine)(nil)
)

// New bulk-loads a PM-tree over items according to cfg.
func New(items []store.Item, cfg Config) (*Engine, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("pmtree: empty database")
	}
	if cfg.PageCapacity < 1 {
		return nil, fmt.Errorf("pmtree: page capacity must be >= 1, got %d", cfg.PageCapacity)
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = DefaultFanout
	}
	if cfg.Fanout < 2 {
		return nil, fmt.Errorf("pmtree: fanout must be >= 2, got %d", cfg.Fanout)
	}
	if cfg.Metric == nil {
		cfg.Metric = vec.Euclidean{}
	}
	e := &Engine{
		metric:       cfg.Metric,
		pageCapacity: cfg.PageCapacity,
		fanout:       cfg.Fanout,
	}

	clusters := e.cluster(items, cfg.PageCapacity)
	e.selectPivots(items, cfg.Pivots)

	// Materialize the leaf pages in cluster order and their nodes.
	pages := make([]*store.Page, len(clusters))
	e.pageLens = make([]int, len(clusters))
	e.nodes = make([]node, 0, 2*len(clusters))
	for pid, cl := range clusters {
		members := make([]store.Item, len(cl.members))
		for i, idx := range cl.members {
			members[i] = items[idx]
		}
		pages[pid] = &store.Page{ID: store.PageID(pid), Items: members}
		e.pageLens[pid] = len(members)
		e.numItems += len(members)
		e.nodes = append(e.nodes, e.leafNode(store.PageID(pid), items[cl.seed].Vec, members))
	}
	e.buildDirectory(len(clusters))

	if err := store.Columnize(pages, cfg.Columns); err != nil {
		return nil, fmt.Errorf("pmtree: %w", err)
	}
	disk, err := store.NewDisk(pages)
	if err != nil {
		return nil, fmt.Errorf("pmtree: %w", err)
	}
	var src store.PageSource = disk
	if cfg.WrapDisk != nil {
		if src, err = cfg.WrapDisk(disk); err != nil {
			return nil, fmt.Errorf("pmtree: %w", err)
		}
	}
	bufPages := cfg.BufferPages
	if bufPages < 0 {
		bufPages = store.DefaultBufferPages(len(pages))
	}
	var buf *store.Buffer
	if bufPages > 0 {
		if buf, err = store.NewBuffer(bufPages); err != nil {
			return nil, fmt.Errorf("pmtree: %w", err)
		}
	}
	if e.pager, err = store.NewPager(src, buf); err != nil {
		return nil, fmt.Errorf("pmtree: %w", err)
	}
	return e, nil
}

// cluster forms capacity-bounded leaf clusters by farthest-first traversal:
// seeds are chosen to be mutually far apart (the first seed is item 0, each
// next seed the item farthest from every earlier seed), then each seed in
// order claims its nearest unassigned items up to the page capacity. The
// construction is deterministic; ties break toward the lowest item index.
type clusterInfo struct {
	seed    int
	members []int
}

func (e *Engine) cluster(items []store.Item, capacity int) []clusterInfo {
	n := len(items)
	numPages := (n + capacity - 1) / capacity
	// Farthest-first seeds.
	seeds := make([]int, 0, numPages)
	nearest := make([]float64, n)
	for i := range nearest {
		nearest[i] = math.Inf(1)
	}
	next := 0
	for len(seeds) < numPages {
		seeds = append(seeds, next)
		sv := items[next].Vec
		for o := 0; o < n; o++ {
			d := e.metric.Distance(sv, items[o].Vec)
			if d < nearest[o] {
				nearest[o] = d
			}
		}
		e.buildCalcs += int64(n)
		next = 0
		for o := 1; o < n; o++ {
			if nearest[o] > nearest[next] {
				next = o
			}
		}
	}
	// Capacity-bounded assignment: each seed in order claims its nearest
	// unassigned items. The last cluster absorbs the remainder, so every
	// item is assigned and no cluster exceeds the capacity.
	assigned := make([]bool, n)
	clusters := make([]clusterInfo, numPages)
	type cand struct {
		d   float64
		idx int
	}
	cands := make([]cand, 0, n)
	for ci, seed := range seeds {
		cands = cands[:0]
		sv := items[seed].Vec
		for o := 0; o < n; o++ {
			if assigned[o] {
				continue
			}
			d := e.metric.Distance(sv, items[o].Vec)
			cands = append(cands, cand{d: d, idx: o})
		}
		e.buildCalcs += int64(len(cands))
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d != cands[j].d {
				return cands[i].d < cands[j].d
			}
			return cands[i].idx < cands[j].idx
		})
		take := capacity
		if remainingClusters := numPages - ci - 1; len(cands)-take < remainingClusters {
			// Never strand later seeds without items (cannot happen with
			// exact arithmetic, but keep the invariant explicit).
			take = len(cands) - remainingClusters
		}
		if ci == numPages-1 {
			take = len(cands)
		}
		members := make([]int, 0, take)
		for _, c := range cands[:take] {
			assigned[c.idx] = true
			members = append(members, c.idx)
		}
		sort.Ints(members) // keep the dataset's item order within a page
		clusters[ci] = clusterInfo{seed: seed, members: members}
	}
	return clusters
}

// selectPivots chooses the global hyper-ring pivots by the same
// deterministic farthest-first traversal the pivot table uses.
func (e *Engine) selectPivots(items []store.Item, npivots int) {
	if npivots <= 0 {
		npivots = DefaultPivots
	}
	if npivots > len(items) {
		npivots = len(items)
	}
	n := len(items)
	nearest := make([]float64, n)
	for i := range nearest {
		nearest[i] = math.Inf(1)
	}
	next := 0
	e.pivots = make([]vec.Vector, 0, npivots)
	for len(e.pivots) < npivots {
		pv := append(vec.Vector(nil), items[next].Vec...)
		e.pivots = append(e.pivots, pv)
		for o := 0; o < n; o++ {
			d := e.metric.Distance(pv, items[o].Vec)
			if d < nearest[o] {
				nearest[o] = d
			}
		}
		e.buildCalcs += int64(n)
		next = 0
		for o := 1; o < n; o++ {
			if nearest[o] > nearest[next] {
				next = o
			}
		}
	}
}

// leafNode computes a leaf's ball and hyper-rings from its members.
func (e *Engine) leafNode(pid store.PageID, center vec.Vector, members []store.Item) node {
	nd := node{
		center:  append(vec.Vector(nil), center...),
		pid:     pid,
		ringMin: make([]float64, len(e.pivots)),
		ringMax: make([]float64, len(e.pivots)),
	}
	for i := range members {
		if d := e.metric.Distance(nd.center, members[i].Vec); d > nd.radius {
			nd.radius = d
		}
	}
	e.buildCalcs += int64(len(members))
	for p, pv := range e.pivots {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range members {
			d := e.metric.Distance(pv, members[i].Vec)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		e.buildCalcs += int64(len(members))
		nd.ringMin[p], nd.ringMax[p] = lo, hi
	}
	return nd
}

// buildDirectory grows the directory bottom-up: consecutive runs of fanout
// nodes are grouped under a parent whose ball and rings cover them, until
// one root remains. Nodes are appended after their children, so the root is
// always the slice's last entry.
func (e *Engine) buildDirectory(numLeaves int) {
	levelStart, levelLen := 0, numLeaves
	for levelLen > 1 {
		nextStart := len(e.nodes)
		for off := 0; off < levelLen; off += e.fanout {
			count := e.fanout
			if off+count > levelLen {
				count = levelLen - off
			}
			e.nodes = append(e.nodes, e.parentNode(levelStart+off, count))
		}
		levelStart, levelLen = nextStart, len(e.nodes)-nextStart
	}
}

// parentNode covers children [first, first+count): its center is the first
// child's routing center, its radius covers every child ball, and its rings
// are the elementwise union of the child rings.
func (e *Engine) parentNode(first, count int) node {
	children := e.nodes[first : first+count]
	nd := node{
		center:      children[0].center,
		pid:         store.InvalidPage,
		firstChild:  first,
		numChildren: count,
		ringMin:     make([]float64, len(e.pivots)),
		ringMax:     make([]float64, len(e.pivots)),
	}
	for p := range e.pivots {
		nd.ringMin[p] = math.Inf(1)
		nd.ringMax[p] = math.Inf(-1)
	}
	for i := range children {
		c := &children[i]
		d := 0.0
		if i > 0 {
			d = e.metric.Distance(nd.center, c.center)
			e.buildCalcs++
		}
		if r := d + c.radius; r > nd.radius {
			nd.radius = r
		}
		for p := range e.pivots {
			if c.ringMin[p] < nd.ringMin[p] {
				nd.ringMin[p] = c.ringMin[p]
			}
			if c.ringMax[p] > nd.ringMax[p] {
				nd.ringMax[p] = c.ringMax[p]
			}
		}
	}
	return nd
}

// Name returns "pmtree".
func (e *Engine) Name() string { return "pmtree" }

// Describe reports the tree's tuning for EXPLAIN output.
func (e *Engine) Describe() engine.Config {
	return engine.Config{PageCapacity: e.pageCapacity, Pivots: len(e.pivots), Fanout: e.fanout}
}

// PivotDistCalcs returns the cumulative count of per-query distance
// calculations paid by prepared handles: the pivot distances of Prepare
// plus the lazily memoized routing-center distances.
func (e *Engine) PivotDistCalcs() int64 { return e.pivotCalcs.Load() }

// BuildDistCalcs returns the number of metric evaluations the bulk load
// spent (clustering, pivot selection, ball radii and rings).
func (e *Engine) BuildDistCalcs() int64 { return e.buildCalcs }

// Prepare computes the query's pivot distances once and returns the handle
// that memoizes routing-center distances and per-page bounds.
func (e *Engine) Prepare(q vec.Vector) engine.PreparedQuery {
	qp := make([]float64, len(e.pivots))
	for i, pv := range e.pivots {
		qp[i] = e.metric.Distance(q, pv)
	}
	e.pivotCalcs.Add(int64(len(qp)))
	p := &prepared{
		e:          e,
		q:          q,
		qp:         qp,
		centerDist: make([]float64, len(e.nodes)),
		leafLB:     make([]float64, len(e.pageLens)),
		leafUB:     make([]float64, len(e.pageLens)),
	}
	for i := range p.centerDist {
		p.centerDist[i] = math.NaN()
	}
	for i := range p.leafLB {
		p.leafLB[i] = math.NaN()
		p.leafUB[i] = math.NaN()
	}
	return p
}

// prepared answers page probes for one query. It memoizes the expensive
// parts — routing-center distances and per-leaf bounds — so repeated probes
// of the same page (plans, relevance checks, bootstrap) cost arithmetic
// only. PreparedQuery handles are single-owner by contract, so the memos
// need no locking.
type prepared struct {
	e          *Engine
	q          vec.Vector
	qp         []float64
	centerDist []float64 // per node, NaN = not yet computed
	leafLB     []float64 // per page, NaN = not yet computed
	leafUB     []float64
}

// center returns the memoized d(q, center) of node i.
func (p *prepared) center(i int) float64 {
	if d := p.centerDist[i]; !math.IsNaN(d) {
		return d
	}
	d := p.e.metric.Distance(p.q, p.e.nodes[i].center)
	p.e.pivotCalcs.Add(1)
	p.centerDist[i] = d
	return d
}

// nodeLB is the node's lower bound: the larger of the ball bound and the
// strongest ring bound, floored at zero.
func (p *prepared) nodeLB(i int) float64 {
	nd := &p.e.nodes[i]
	lb := p.center(i) - nd.radius
	if lb < 0 {
		lb = 0
	}
	for pi, qp := range p.qp {
		if d := qp - nd.ringMax[pi]; d > lb {
			lb = d
		}
		if d := nd.ringMin[pi] - qp; d > lb {
			lb = d
		}
	}
	return lb
}

// nodeUB is the node's upper bound: the tighter of the ball bound and the
// best ring bound.
func (p *prepared) nodeUB(i int) float64 {
	nd := &p.e.nodes[i]
	ub := p.center(i) + nd.radius
	for pi, qp := range p.qp {
		if d := qp + nd.ringMax[pi]; d < ub {
			ub = d
		}
	}
	return ub
}

// leafBounds returns the memoized bounds of the leaf holding page pid.
// Leaves occupy the first NumPages slots of the node slice in page order.
func (p *prepared) leafBounds(pid store.PageID) (lb, ub float64) {
	if lb = p.leafLB[pid]; !math.IsNaN(lb) {
		return lb, p.leafUB[pid]
	}
	lb, ub = p.nodeLB(int(pid)), p.nodeUB(int(pid))
	p.leafLB[pid], p.leafUB[pid] = lb, ub
	return lb, ub
}

// planEntry is a heap entry of the best-first descent.
type planEntry struct {
	lb   float64
	node int
}

type planHeap []planEntry

func (h planHeap) Len() int { return len(h) }
func (h planHeap) Less(i, j int) bool {
	if h[i].lb != h[j].lb {
		return h[i].lb < h[j].lb
	}
	return h[i].node < h[j].node
}
func (h planHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *planHeap) Push(x any)   { *h = append(*h, x.(planEntry)) }
func (h *planHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Plan descends the tree best-first: nodes are popped in ascending
// lower-bound order, internal nodes expand their children, and leaves are
// emitted — so the resulting page schedule is the Hjaltason–Samet order.
// A child's lower bound is clamped to its parent's (a child region is
// contained in its parent's, so mathematically lb(child) ≥ lb(parent); the
// clamp keeps the emitted order monotone under floating-point rounding).
func (p *prepared) Plan(queryDist float64) []engine.PageRef {
	e := p.e
	if len(e.nodes) == 0 {
		return nil
	}
	root := len(e.nodes) - 1
	h := planHeap{{lb: p.rootLB(root), node: root}}
	refs := make([]engine.PageRef, 0, len(e.pageLens))
	for len(h) > 0 {
		ent := heap.Pop(&h).(planEntry)
		if ent.lb > queryDist {
			break // every remaining entry is at least as far
		}
		nd := &e.nodes[ent.node]
		if nd.isLeaf() {
			// Memoize the leaf bound under the same clamp the emitted ref
			// carries, so MinDist(pid) agrees with the plan entry.
			if math.IsNaN(p.leafLB[nd.pid]) {
				p.leafLB[nd.pid] = ent.lb
				p.leafUB[nd.pid] = p.nodeUB(ent.node)
			}
			refs = append(refs, engine.PageRef{ID: nd.pid, MinDist: ent.lb})
			continue
		}
		for c := nd.firstChild; c < nd.firstChild+nd.numChildren; c++ {
			lb := p.nodeLB(c)
			if lb < ent.lb {
				lb = ent.lb
			}
			if lb <= queryDist {
				heap.Push(&h, planEntry{lb: lb, node: c})
			}
		}
	}
	return refs
}

// rootLB is the root's lower bound, or the leaf bound when the tree is a
// single leaf.
func (p *prepared) rootLB(root int) float64 {
	if p.e.nodes[root].isLeaf() {
		lb, _ := p.leafBounds(p.e.nodes[root].pid)
		return lb
	}
	return p.nodeLB(root)
}

// MinDist returns the leaf's lower bound.
func (p *prepared) MinDist(pid store.PageID) float64 {
	lb, _ := p.leafBounds(pid)
	return lb
}

// MaxDist returns the leaf's upper bound.
func (p *prepared) MaxDist(pid store.PageID) float64 {
	_, ub := p.leafBounds(pid)
	return ub
}

// PageLen returns the number of items on the page.
func (e *Engine) PageLen(pid store.PageID) int { return e.pageLens[pid] }

// ReadPage reads a data page through the pager.
func (e *Engine) ReadPage(pid store.PageID) (*store.Page, error) {
	return e.pager.ReadPage(pid)
}

// NumPages returns the number of data pages.
func (e *Engine) NumPages() int { return len(e.pageLens) }

// NumItems returns the number of stored items.
func (e *Engine) NumItems() int { return e.numItems }

// Pager returns the underlying pager.
func (e *Engine) Pager() *store.Pager { return e.pager }
