package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"metricdb/internal/vec"
)

func rect(t *testing.T, min, max vec.Vector) Rect {
	t.Helper()
	r, err := NewRect(min, max)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRectValidation(t *testing.T) {
	if _, err := NewRect(vec.Vector{0, 0}, vec.Vector{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := NewRect(vec.Vector{2}, vec.Vector{1}); err == nil {
		t.Error("inverted corners accepted")
	}
	if _, err := NewRect(vec.Vector{0}, vec.Vector{0}); err != nil {
		t.Errorf("degenerate rect rejected: %v", err)
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect(3)
	if !e.IsEmpty() {
		t.Error("EmptyRect is not empty")
	}
	if e.Area() != 0 || e.Margin() != 0 {
		t.Error("empty rect has nonzero area or margin")
	}
	r := rect(t, vec.Vector{0, 0, 0}, vec.Vector{1, 1, 1})
	if got := e.Union(r); !got.ContainsRect(r) || !r.ContainsRect(got) {
		t.Errorf("Union with empty = %v, want %v", got, r)
	}
	if e.Intersects(r) {
		t.Error("empty rect intersects something")
	}
	if !r.ContainsRect(e) {
		t.Error("every rect should contain the empty rect")
	}
}

func TestContainsAndIntersects(t *testing.T) {
	r := rect(t, vec.Vector{0, 0}, vec.Vector{2, 2})
	if !r.Contains(vec.Vector{1, 1}) || !r.Contains(vec.Vector{0, 0}) || !r.Contains(vec.Vector{2, 2}) {
		t.Error("Contains misses interior/boundary points")
	}
	if r.Contains(vec.Vector{3, 1}) {
		t.Error("Contains accepts outside point")
	}

	s := rect(t, vec.Vector{1, 1}, vec.Vector{3, 3})
	if !r.Intersects(s) || !s.Intersects(r) {
		t.Error("overlapping rects do not intersect")
	}
	far := rect(t, vec.Vector{5, 5}, vec.Vector{6, 6})
	if r.Intersects(far) {
		t.Error("disjoint rects intersect")
	}
	touch := rect(t, vec.Vector{2, 0}, vec.Vector{3, 2})
	if !r.Intersects(touch) {
		t.Error("touching rects should intersect")
	}
}

func TestAreaMarginOverlap(t *testing.T) {
	r := rect(t, vec.Vector{0, 0}, vec.Vector{2, 3})
	if got := r.Area(); got != 6 {
		t.Errorf("Area = %v, want 6", got)
	}
	if got := r.Margin(); got != 5 {
		t.Errorf("Margin = %v, want 5", got)
	}
	s := rect(t, vec.Vector{1, 1}, vec.Vector{3, 4})
	if got := r.Overlap(s); got != 2 {
		t.Errorf("Overlap = %v, want 2", got)
	}
	far := rect(t, vec.Vector{10, 10}, vec.Vector{11, 11})
	if got := r.Overlap(far); got != 0 {
		t.Errorf("Overlap disjoint = %v, want 0", got)
	}
	if got := r.Enlargement(PointRect(vec.Vector{4, 3})); got != 6 {
		t.Errorf("Enlargement = %v, want 6", got)
	}
}

func TestExtend(t *testing.T) {
	r := EmptyRect(2)
	r.Extend(vec.Vector{1, 1})
	r.Extend(vec.Vector{-1, 3})
	want := rect(t, vec.Vector{-1, 1}, vec.Vector{1, 3})
	if !r.ContainsRect(want) || !want.ContainsRect(r) {
		t.Errorf("Extend = %v, want %v", r, want)
	}

	r.ExtendRect(rect(t, vec.Vector{0, 0}, vec.Vector{5, 5}))
	if !r.Contains(vec.Vector{5, 0}) {
		t.Error("ExtendRect did not grow rectangle")
	}
	sz := r.Clone()
	r.ExtendRect(EmptyRect(2))
	if !r.ContainsRect(sz) || !sz.ContainsRect(r) {
		t.Error("ExtendRect with empty changed the rectangle")
	}
}

func TestMinMaxDist(t *testing.T) {
	r := rect(t, vec.Vector{0, 0}, vec.Vector{2, 2})
	cases := []struct {
		p        vec.Vector
		min, max float64
	}{
		{vec.Vector{1, 1}, 0, math.Sqrt(2)},               // inside
		{vec.Vector{3, 1}, 1, math.Sqrt(9 + 1)},           // right of box
		{vec.Vector{-1, -1}, math.Sqrt(2), math.Sqrt(18)}, // corner
		{vec.Vector{1, 5}, 3, math.Sqrt(1 + 25)},          // above
		{vec.Vector{0, 0}, 0, math.Sqrt(8)},               // on corner
	}
	for _, c := range cases {
		if got := r.MinDist(c.p); math.Abs(got-c.min) > 1e-12 {
			t.Errorf("MinDist(%v) = %v, want %v", c.p, got, c.min)
		}
		if got := r.MaxDist(c.p); math.Abs(got-c.max) > 1e-12 {
			t.Errorf("MaxDist(%v) = %v, want %v", c.p, got, c.max)
		}
	}
}

func TestCenter(t *testing.T) {
	r := rect(t, vec.Vector{0, 2}, vec.Vector{4, 4})
	if got := r.Center(); !got.Equal(vec.Vector{2, 3}) {
		t.Errorf("Center = %v", got)
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []vec.Vector{{1, 1}, {0, 3}, {2, 0}}
	r := BoundingRect(pts)
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("BoundingRect misses %v", p)
		}
	}
	if got := BoundingRect(nil); !got.IsEmpty() {
		t.Errorf("BoundingRect(nil) = %v, want empty", got)
	}
}

// Property: for random points p, q and a random rect containing q,
// MinDist(p, r) <= dist(p, q) <= MaxDist(p, r). This is the exact safety
// contract that index pruning relies on.
func TestMinMaxDistBoundsProperty(t *testing.T) {
	const dim = 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randVec(rng, dim)
		q := randVec(rng, dim)
		r := PointRect(q)
		// Grow the rect randomly around q.
		for i := 0; i < dim; i++ {
			r.Min[i] -= rng.Float64() * 3
			r.Max[i] += rng.Float64() * 3
		}
		d := vec.Euclidean{}.Distance(p, q)
		const eps = 1e-9
		return r.MinDist(p) <= d+eps && d <= r.MaxDist(p)+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Union is commutative, covers both operands, and Overlap is
// symmetric and bounded by min area.
func TestRectAlgebraProperty(t *testing.T) {
	const dim = 4
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randRect(rng, dim)
		b := randRect(rng, dim)

		u1, u2 := a.Union(b), b.Union(a)
		if !u1.ContainsRect(a) || !u1.ContainsRect(b) {
			return false
		}
		if !u1.ContainsRect(u2) || !u2.ContainsRect(u1) {
			return false
		}
		const eps = 1e-9
		ov := a.Overlap(b)
		if math.Abs(ov-b.Overlap(a)) > eps {
			return false
		}
		return ov <= math.Min(a.Area(), b.Area())+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func randVec(rng *rand.Rand, dim int) vec.Vector {
	v := make(vec.Vector, dim)
	for i := range v {
		v[i] = rng.Float64()*10 - 5
	}
	return v
}

func randRect(rng *rand.Rand, dim int) Rect {
	a, b := randVec(rng, dim), randVec(rng, dim)
	r := PointRect(a)
	r.Extend(b)
	return r
}
