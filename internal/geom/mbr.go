// Package geom provides minimum bounding rectangles (MBRs) in d-dimensional
// space, the geometric substrate of the X-tree directory.
//
// The key query-processing primitives are MinDist and MaxDist: MINDIST is a
// lower bound on the distance from a query point to any point inside the
// rectangle, so a data page whose MBR has MINDIST greater than the current
// query distance can be excluded from the search.
package geom

import (
	"fmt"
	"math"

	"metricdb/internal/vec"
)

// Rect is an axis-aligned hyper-rectangle given by its lower-left and
// upper-right corners. A Rect with Min[i] > Max[i] for any i is invalid;
// the Empty rectangle (returned by EmptyRect) is the identity for Union.
type Rect struct {
	Min vec.Vector
	Max vec.Vector
}

// EmptyRect returns the empty rectangle in dim dimensions: the Union
// identity, containing no points.
func EmptyRect(dim int) Rect {
	r := Rect{Min: make(vec.Vector, dim), Max: make(vec.Vector, dim)}
	for i := 0; i < dim; i++ {
		r.Min[i] = math.Inf(1)
		r.Max[i] = math.Inf(-1)
	}
	return r
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p vec.Vector) Rect {
	return Rect{Min: p.Clone(), Max: p.Clone()}
}

// NewRect returns a rectangle with the given corners, validating that
// min[i] <= max[i] in every dimension.
func NewRect(min, max vec.Vector) (Rect, error) {
	if len(min) != len(max) {
		return Rect{}, fmt.Errorf("geom: corner dimensions differ: %d vs %d", len(min), len(max))
	}
	for i := range min {
		if min[i] > max[i] {
			return Rect{}, fmt.Errorf("geom: min[%d]=%g > max[%d]=%g", i, min[i], i, max[i])
		}
	}
	return Rect{Min: min.Clone(), Max: max.Clone()}, nil
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Min) }

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool {
	for i := range r.Min {
		if r.Min[i] > r.Max[i] {
			return true
		}
	}
	return len(r.Min) == 0
}

// Clone returns an independent copy of r.
func (r Rect) Clone() Rect {
	return Rect{Min: r.Min.Clone(), Max: r.Max.Clone()}
}

// Contains reports whether point p lies inside r (boundaries included).
func (r Rect) Contains(p vec.Vector) bool {
	for i := range r.Min {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	for i := range r.Min {
		if r.Min[i] > s.Max[i] || s.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s.Clone()
	}
	if s.IsEmpty() {
		return r.Clone()
	}
	u := r.Clone()
	for i := range u.Min {
		u.Min[i] = math.Min(u.Min[i], s.Min[i])
		u.Max[i] = math.Max(u.Max[i], s.Max[i])
	}
	return u
}

// Extend grows r in place to cover point p. An empty rectangle becomes the
// point rectangle of p.
func (r *Rect) Extend(p vec.Vector) {
	for i := range r.Min {
		if p[i] < r.Min[i] {
			r.Min[i] = p[i]
		}
		if p[i] > r.Max[i] {
			r.Max[i] = p[i]
		}
	}
}

// ExtendRect grows r in place to cover rectangle s.
func (r *Rect) ExtendRect(s Rect) {
	if s.IsEmpty() {
		return
	}
	for i := range r.Min {
		if s.Min[i] < r.Min[i] {
			r.Min[i] = s.Min[i]
		}
		if s.Max[i] > r.Max[i] {
			r.Max[i] = s.Max[i]
		}
	}
}

// Area returns the d-dimensional volume of r. An empty rectangle has area 0.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// Margin returns the sum of the edge lengths of r (the R*-tree margin
// criterion). An empty rectangle has margin 0.
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	var m float64
	for i := range r.Min {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// Overlap returns the volume of the intersection of r and s.
func (r Rect) Overlap(s Rect) float64 {
	if !r.Intersects(s) {
		return 0
	}
	v := 1.0
	for i := range r.Min {
		lo := math.Max(r.Min[i], s.Min[i])
		hi := math.Min(r.Max[i], s.Max[i])
		v *= hi - lo
	}
	return v
}

// Enlargement returns the increase in area needed for r to cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// AreaWithPoint returns the area of r grown to cover p, without
// materializing the union — the hot path of R*-style subtree choice.
func (r Rect) AreaWithPoint(p vec.Vector) float64 {
	a := 1.0
	for i := range r.Min {
		lo, hi := r.Min[i], r.Max[i]
		if p[i] < lo {
			lo = p[i]
		}
		if p[i] > hi {
			hi = p[i]
		}
		if lo > hi {
			return 0 // r was empty; a single point has zero volume
		}
		a *= hi - lo
	}
	return a
}

// OverlapWithPoint returns the overlap volume of (r grown to cover p) with
// o, without materializing the union.
func (r Rect) OverlapWithPoint(p vec.Vector, o Rect) float64 {
	v := 1.0
	for i := range r.Min {
		lo, hi := r.Min[i], r.Max[i]
		if p[i] < lo {
			lo = p[i]
		}
		if p[i] > hi {
			hi = p[i]
		}
		if o.Min[i] > lo {
			lo = o.Min[i]
		}
		if o.Max[i] < hi {
			hi = o.Max[i]
		}
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// Center returns the midpoint of r.
func (r Rect) Center() vec.Vector {
	c := make(vec.Vector, len(r.Min))
	for i := range c {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

// MinDist returns MINDIST(p, r): the Euclidean distance from p to the
// nearest point of r, 0 if p is inside r. For any point q in r,
// dist(p, q) >= MinDist(p, r), which is what makes index pruning safe.
func (r Rect) MinDist(p vec.Vector) float64 {
	var s float64
	for i := range r.Min {
		var d float64
		switch {
		case p[i] < r.Min[i]:
			d = r.Min[i] - p[i]
		case p[i] > r.Max[i]:
			d = p[i] - r.Max[i]
		}
		s += d * d
	}
	return math.Sqrt(s)
}

// MaxDist returns MAXDIST(p, r): the Euclidean distance from p to the
// farthest corner of r. For any point q in r, dist(p, q) <= MaxDist(p, r).
func (r Rect) MaxDist(p vec.Vector) float64 {
	var s float64
	for i := range r.Min {
		d := math.Max(math.Abs(p[i]-r.Min[i]), math.Abs(p[i]-r.Max[i]))
		s += d * d
	}
	return math.Sqrt(s)
}

// String renders the rectangle as "[min .. max]".
func (r Rect) String() string {
	return fmt.Sprintf("[%v .. %v]", r.Min, r.Max)
}

// BoundingRect returns the MBR of the given points. It returns the empty
// rectangle of dimension 0 when points is empty.
func BoundingRect(points []vec.Vector) Rect {
	if len(points) == 0 {
		return EmptyRect(0)
	}
	r := PointRect(points[0])
	for _, p := range points[1:] {
		r.Extend(p)
	}
	return r
}
