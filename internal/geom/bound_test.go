package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"metricdb/internal/vec"
)

func TestLowerBoundMatchesMinDistForEuclidean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRect(rng, 4)
		q := randVec(rng, 4)
		return math.Abs(LowerBound(vec.Euclidean{}, r, q)-r.MinDist(q)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUpperBoundMatchesMaxDistForEuclidean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRect(rng, 4)
		q := randVec(rng, 4)
		return math.Abs(UpperBound(vec.Euclidean{}, r, q)-r.MaxDist(q)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBoundsSandwichDistances: for any point p inside r and any metric in
// the coordinatewise family, LowerBound <= dist(q, p) <= UpperBound.
func TestBoundsSandwichDistances(t *testing.T) {
	metrics := []vec.Metric{vec.Euclidean{}, vec.Manhattan{}, vec.Chebyshev{}}
	mk, err := vec.NewMinkowski(3)
	if err != nil {
		t.Fatal(err)
	}
	metrics = append(metrics, mk)
	we, err := vec.NewWeightedEuclidean(vec.Vector{2, 0.5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	metrics = append(metrics, we)

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRect(rng, 4)
		q := randVec(rng, 4)
		// A random point inside r.
		p := make(vec.Vector, 4)
		for i := range p {
			p[i] = r.Min[i] + rng.Float64()*(r.Max[i]-r.Min[i])
		}
		const eps = 1e-9
		for _, m := range metrics {
			d := m.Distance(q, p)
			if LowerBound(m, r, q) > d+eps {
				return false
			}
			if d > UpperBound(m, r, q)+eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBoundsForNonCoordinatewiseMetric(t *testing.T) {
	hm, err := vec.HistogramSimilarityMatrix(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	qf, err := vec.NewQuadraticForm(3, hm)
	if err != nil {
		t.Fatal(err)
	}
	r := PointRect(vec.Vector{1, 1, 1})
	q := vec.Vector{0, 0, 0}
	if got := LowerBound(qf, r, q); got != 0 {
		t.Errorf("LowerBound = %v, want 0 for non-coordinatewise metric", got)
	}
	if got := UpperBound(qf, r, q); !math.IsInf(got, 1) {
		t.Errorf("UpperBound = %v, want +Inf", got)
	}
}

func TestBoundsUnwrapCountingMetric(t *testing.T) {
	c := vec.NewCounting(vec.Euclidean{})
	r, err := NewRect(vec.Vector{0, 0}, vec.Vector{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = LowerBound(c, r, vec.Vector{2, 0})
	_ = UpperBound(c, r, vec.Vector{2, 0})
	if got := c.Count(); got != 0 {
		t.Errorf("bound evaluation charged %d distance calculations", got)
	}
}

// TestAreaWithPointMatchesUnion cross-checks the allocation-free fast path
// against the materialized union.
func TestAreaWithPointMatchesUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRect(rng, 3)
		p := randVec(rng, 3)
		want := r.Union(PointRect(p)).Area()
		return math.Abs(r.AreaWithPoint(p)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestOverlapWithPointMatchesUnion does the same for the grown-overlap
// fast path.
func TestOverlapWithPointMatchesUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRect(rng, 3)
		o := randRect(rng, 3)
		p := randVec(rng, 3)
		want := r.Union(PointRect(p)).Overlap(o)
		return math.Abs(r.OverlapWithPoint(p, o)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
