package geom

import (
	"math"

	"metricdb/internal/vec"
)

// LowerBound computes a lower bound on the m-distance from q to any point
// inside r, generalizing Euclidean MINDIST to arbitrary metrics:
//
//   - For coordinatewise metrics (all Lp variants, weighted Euclidean) it
//     applies the metric to the per-coordinate gap vector, which is exact
//     MINDIST for those metrics.
//   - For any other metric it returns 0, which is always safe: the index
//     simply loses selectivity, converging to scan behaviour — precisely the
//     degradation mode §4 of the paper describes for indexes without
//     selectivity.
//
// Counting wrappers are stripped first so that geometric bound evaluations
// are not charged as object distance calculations.
func LowerBound(m vec.Metric, r Rect, q vec.Vector) float64 {
	base := vec.BaseMetric(m)
	cw, ok := base.(vec.Coordinatewise)
	if !ok || !cw.CoordinatewiseMetric() {
		return 0
	}
	gap := make(vec.Vector, len(q))
	zero := make(vec.Vector, len(q))
	for i := range q {
		switch {
		case q[i] < r.Min[i]:
			gap[i] = r.Min[i] - q[i]
		case q[i] > r.Max[i]:
			gap[i] = q[i] - r.Max[i]
		}
	}
	return base.Distance(gap, zero)
}

// UpperBound computes an upper bound on the m-distance from q to any point
// inside r (generalized MAXDIST): the metric applied to the per-coordinate
// farthest-edge gaps for coordinatewise metrics, +Inf otherwise. The
// multi-query processor uses it to bound a k-NN query's result distance
// before any object distance has been calculated.
func UpperBound(m vec.Metric, r Rect, q vec.Vector) float64 {
	base := vec.BaseMetric(m)
	cw, ok := base.(vec.Coordinatewise)
	if !ok || !cw.CoordinatewiseMetric() {
		return math.Inf(1)
	}
	gap := make(vec.Vector, len(q))
	zero := make(vec.Vector, len(q))
	for i := range q {
		lo := math.Abs(q[i] - r.Min[i])
		hi := math.Abs(q[i] - r.Max[i])
		if lo > hi {
			gap[i] = lo
		} else {
			gap[i] = hi
		}
	}
	return base.Distance(gap, zero)
}
