// Package report renders experiment results as aligned text tables and CSV,
// one "figure" per experiment, mirroring the layout of the paper's
// evaluation section.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Figure is a set of named series over a common x-axis, corresponding to
// one of the paper's figures.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	XVals  []float64
	Series []Series
}

// Series is one curve of a figure.
type Series struct {
	Name string
	// Y holds one value per Figure.XVals entry; NaN renders as "-".
	Y []float64
}

// AddSeries appends a series, validating its length.
func (f *Figure) AddSeries(name string, y []float64) error {
	if len(y) != len(f.XVals) {
		return fmt.Errorf("report: series %q has %d points, figure has %d x-values", name, len(y), len(f.XVals))
	}
	f.Series = append(f.Series, Series{Name: name, Y: y})
	return nil
}

// WriteTable renders the figure as an aligned text table.
func (f *Figure) WriteTable(w io.Writer) error {
	headers := make([]string, 0, len(f.Series)+1)
	headers = append(headers, f.XLabel)
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	rows := make([][]string, len(f.XVals))
	for i, x := range f.XVals {
		row := make([]string, 0, len(headers))
		row = append(row, formatNum(x))
		for _, s := range f.Series {
			row = append(row, formatNum(s.Y[i]))
		}
		rows[i] = row
	}

	widths := make([]int, len(headers))
	for c, h := range headers {
		widths[c] = len(h)
	}
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s", f.Title)
	if f.YLabel != "" {
		fmt.Fprintf(&b, "  [%s]", f.YLabel)
	}
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for c, cell := range cells {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[c], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, wd := range widths {
		total += wd
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the figure as CSV with a header row.
func (f *Figure) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for i, x := range f.XVals {
		b.WriteString(formatNum(x))
		for _, s := range f.Series {
			b.WriteByte(',')
			b.WriteString(formatNum(s.Y[i]))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatNum(v float64) string {
	if v != v { // NaN
		return "-"
	}
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
