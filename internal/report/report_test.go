package report

import (
	"math"
	"strings"
	"testing"
)

func sampleFigure(t *testing.T) *Figure {
	t.Helper()
	f := &Figure{
		Title:  "Figure 7: avg I/O cost per query",
		XLabel: "m",
		YLabel: "pages",
		XVals:  []float64{1, 10, 100},
	}
	if err := f.AddSeries("scan", []float64{128, 12.8, 1.28}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSeries("xtree", []float64{30, 10, math.NaN()}); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAddSeriesValidation(t *testing.T) {
	f := &Figure{XVals: []float64{1, 2}}
	if err := f.AddSeries("bad", []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestWriteTable(t *testing.T) {
	f := sampleFigure(t)
	var b strings.Builder
	if err := f.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 7", "[pages]", "m", "scan", "xtree", "12.8", "128", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestWriteCSV(t *testing.T) {
	f := sampleFigure(t)
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if lines[0] != "m,scan,xtree" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,128,30" {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.HasSuffix(lines[3], ",-") {
		t.Errorf("NaN row = %q", lines[3])
	}
}

func TestCSVEscaping(t *testing.T) {
	f := &Figure{XLabel: `m, "count"`, XVals: []float64{1}}
	if err := f.AddSeries("a,b", []float64{2}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), `"m, ""count""","a,b"`) {
		t.Errorf("escaping wrong: %q", b.String())
	}
}

func TestFormatNum(t *testing.T) {
	cases := map[float64]string{
		1:       "1",
		1.5:     "1.5",
		-3:      "-3",
		0.12345: "0.1235",
	}
	for in, want := range cases {
		if got := formatNum(in); got != want {
			t.Errorf("formatNum(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatNum(math.NaN()); got != "-" {
		t.Errorf("NaN = %q", got)
	}
}
