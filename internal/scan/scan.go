// Package scan implements the sequential-scan engine: every data page is
// relevant for every query and pages are processed in physical order, so
// all disk I/O is sequential. In high-dimensional spaces this is often the
// most efficient single-query strategy, and it profits maximally from
// multiple similarity queries because relevant_pages(Q1) = ... =
// relevant_pages(Qm) = all pages (§5.1 of the paper: the I/O speed-up
// factor is exactly m).
//
// A scan is immutable after construction, so all query-path methods are
// safe for concurrent readers; because every plan entry has lower bound
// zero, the msq pipeline can prefetch a scan's entire plan, giving the
// scan the full benefit of intra-server I/O/CPU overlap.
package scan

import (
	"fmt"
	"math"

	"metricdb/internal/engine"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// Engine is a sequential-scan engine over a paged database.
type Engine struct {
	pager    *store.Pager
	numItems int
	pageLens []int
}

var _ engine.Engine = (*Engine)(nil)

// Config parameterizes a scan engine.
type Config struct {
	// PageCapacity is the number of items per data page. Required.
	PageCapacity int
	// BufferPages sizes the LRU buffer; 0 disables buffering.
	BufferPages int
	// WrapDisk, when non-nil, interposes on the freshly built disk before
	// the pager is attached — the hook used to run the engine on
	// fault-injected storage.
	WrapDisk func(store.PageSource) (store.PageSource, error)
	// Columns selects which sibling representations (columnar float64
	// block, float32, quantized codes) are materialized on each page at
	// build time for the blocked distance kernels.
	Columns store.ColumnSpec
}

// New builds a scan engine over items, paginating them into pages of
// pageCapacity items on a fresh simulated disk with an LRU buffer of
// bufferPages pages (0 disables buffering).
func New(items []store.Item, pageCapacity, bufferPages int) (*Engine, error) {
	return NewWithConfig(items, Config{PageCapacity: pageCapacity, BufferPages: bufferPages})
}

// NewWithConfig builds a scan engine over items according to cfg.
func NewWithConfig(items []store.Item, cfg Config) (*Engine, error) {
	if cfg.BufferPages < 0 {
		return nil, fmt.Errorf("scan: bufferPages must be >= 0, got %d", cfg.BufferPages)
	}
	pages, err := store.Paginate(items, cfg.PageCapacity)
	if err != nil {
		return nil, fmt.Errorf("scan: %w", err)
	}
	if err := store.Columnize(pages, cfg.Columns); err != nil {
		return nil, fmt.Errorf("scan: %w", err)
	}
	disk, err := store.NewDisk(pages)
	if err != nil {
		return nil, fmt.Errorf("scan: %w", err)
	}
	var src store.PageSource = disk
	if cfg.WrapDisk != nil {
		if src, err = cfg.WrapDisk(disk); err != nil {
			return nil, fmt.Errorf("scan: %w", err)
		}
	}
	var buf *store.Buffer
	if cfg.BufferPages > 0 {
		if buf, err = store.NewBuffer(cfg.BufferPages); err != nil {
			return nil, fmt.Errorf("scan: %w", err)
		}
	}
	pager, err := store.NewPager(src, buf)
	if err != nil {
		return nil, fmt.Errorf("scan: %w", err)
	}
	lens := make([]int, len(pages))
	for i, p := range pages {
		lens[i] = len(p.Items)
	}
	return &Engine{pager: pager, numItems: len(items), pageLens: lens}, nil
}

// NewStored builds a scan engine over an existing pager whose page sizes
// are already known — typically from the manifest of a persistent dataset
// directory (store.FileDisk). Unlike NewFromPager it performs no warm-up
// reads, so opening a stored database touches the disk only when the first
// query runs.
func NewStored(pager *store.Pager, numItems int, pageLens []int) (*Engine, error) {
	if pager == nil {
		return nil, fmt.Errorf("scan: nil pager")
	}
	if len(pageLens) != pager.NumPages() {
		return nil, fmt.Errorf("scan: %d page lengths for %d pages", len(pageLens), pager.NumPages())
	}
	total := 0
	for i, n := range pageLens {
		if n < 0 {
			return nil, fmt.Errorf("scan: page %d has negative length %d", i, n)
		}
		total += n
	}
	if total != numItems {
		return nil, fmt.Errorf("scan: page lengths sum to %d items, expected %d", total, numItems)
	}
	return &Engine{pager: pager, numItems: numItems, pageLens: append([]int(nil), pageLens...)}, nil
}

// NewFromPager builds a scan engine over an existing pager holding numItems
// items. Page sizes are determined with one warm-up pass, after which the
// pager's statistics are reset.
func NewFromPager(pager *store.Pager, numItems int) (*Engine, error) {
	if pager == nil {
		return nil, fmt.Errorf("scan: nil pager")
	}
	lens := make([]int, pager.NumPages())
	for i := range lens {
		p, err := pager.ReadPage(store.PageID(i))
		if err != nil {
			return nil, fmt.Errorf("scan: sizing page %d: %w", i, err)
		}
		lens[i] = len(p.Items)
	}
	pager.ResetStats()
	return &Engine{pager: pager, numItems: numItems, pageLens: lens}, nil
}

// Name returns "scan".
func (e *Engine) Name() string { return "scan" }

// Prepare returns the per-query handle. A scan has no per-query state, so
// the handle is a stateless view of the engine.
func (e *Engine) Prepare(vec.Vector) engine.PreparedQuery { return prepared{e} }

// prepared is the scan's PreparedQuery: geometry-free, so every probe is
// answered from the engine alone.
type prepared struct{ e *Engine }

// Plan returns every data page in physical order with lower bound 0: a scan
// can exclude nothing, so all pages are relevant regardless of queryDist.
func (p prepared) Plan(_ float64) []engine.PageRef {
	refs := make([]engine.PageRef, p.e.pager.NumPages())
	for i := range refs {
		refs[i] = engine.PageRef{ID: store.PageID(i)}
	}
	return refs
}

// MinDist returns 0: the scan has no geometric knowledge of page contents.
func (prepared) MinDist(store.PageID) float64 { return 0 }

// MaxDist returns +Inf: the scan cannot bound page contents.
func (prepared) MaxDist(store.PageID) float64 { return math.Inf(1) }

// PageLen returns the number of items on the page.
func (e *Engine) PageLen(pid store.PageID) int { return e.pageLens[pid] }

// ReadPage reads a data page through the pager.
func (e *Engine) ReadPage(pid store.PageID) (*store.Page, error) {
	return e.pager.ReadPage(pid)
}

// NumPages returns the number of data pages.
func (e *Engine) NumPages() int { return e.pager.NumPages() }

// NumItems returns the number of stored items.
func (e *Engine) NumItems() int { return e.numItems }

// Pager returns the underlying pager.
func (e *Engine) Pager() *store.Pager { return e.pager }
