package scan

import (
	"errors"
	"math"
	"testing"

	"metricdb/internal/store"
	"metricdb/internal/vec"
)

func items(n int) []store.Item {
	out := make([]store.Item, n)
	for i := range out {
		out[i] = store.Item{ID: store.ItemID(i), Vec: vec.Vector{float64(i), 0}}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(items(4), 0, 0); err == nil {
		t.Error("zero page capacity accepted")
	}
	if _, err := New(items(4), 2, -1); err == nil {
		t.Error("negative buffer accepted")
	}
	if _, err := NewFromPager(nil, 0); err == nil {
		t.Error("nil pager accepted")
	}
}

func TestPlanCoversAllPagesInPhysicalOrder(t *testing.T) {
	e, err := New(items(10), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "scan" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.NumPages() != 4 || e.NumItems() != 10 {
		t.Errorf("NumPages=%d NumItems=%d", e.NumPages(), e.NumItems())
	}
	plan := e.Prepare(vec.Vector{5, 5}).Plan(0.001) // queryDist is irrelevant to a scan
	if len(plan) != 4 {
		t.Fatalf("plan has %d pages, want 4", len(plan))
	}
	for i, ref := range plan {
		if ref.ID != store.PageID(i) {
			t.Errorf("plan[%d] = page %d, want physical order", i, ref.ID)
		}
		if ref.MinDist != 0 {
			t.Errorf("plan[%d].MinDist = %v, want 0", i, ref.MinDist)
		}
	}
	if got := e.Prepare(vec.Vector{9, 9}).MinDist(2); got != 0 {
		t.Errorf("MinDist = %v, want 0", got)
	}
}

func TestSequentialIOAccounting(t *testing.T) {
	e, err := New(items(12), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range e.Prepare(nil).Plan(math.Inf(1)) {
		if _, err := e.ReadPage(ref.ID); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Pager().Disk().Stats()
	if s.Reads != 4 {
		t.Errorf("Reads = %d, want 4", s.Reads)
	}
	if s.RandReads != 1 || s.SeqReads != 3 {
		t.Errorf("scan should be sequential after the first seek: %+v", s)
	}
}

func TestNewFromPager(t *testing.T) {
	pages, err := store.Paginate(items(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := store.NewDisk(pages)
	if err != nil {
		t.Fatal(err)
	}
	pager, err := store.NewPager(disk, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFromPager(pager, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumItems() != 4 || e.NumPages() != 2 {
		t.Errorf("NumItems=%d NumPages=%d", e.NumItems(), e.NumPages())
	}
	if e.Pager() != pager {
		t.Error("Pager() does not return the provided pager")
	}
}

func TestNewFromPagerSurfacesSizingErrors(t *testing.T) {
	pages, err := store.Paginate(items(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := store.NewDisk(pages)
	if err != nil {
		t.Fatal(err)
	}
	disk.FailOn(func(store.PageID) error { return errBoom })
	pager, err := store.NewPager(disk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromPager(pager, 4); err == nil {
		t.Error("sizing failure swallowed")
	}
}

var errBoom = errors.New("boom")

func TestPageLenAndMaxDist(t *testing.T) {
	e, err := New(items(5), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.PageLen(0) != 2 || e.PageLen(2) != 1 {
		t.Errorf("PageLen = %d / %d", e.PageLen(0), e.PageLen(2))
	}
	if !math.IsInf(e.Prepare(vec.Vector{0, 0}).MaxDist(0), 1) {
		t.Error("scan MaxDist should be +Inf")
	}
}
