package fault

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// writeTestDataset builds a small persistent dataset directory and returns
// the pages it was built from.
func writeTestDataset(t *testing.T, dir string, n, dim, capacity int) []*store.Page {
	t.Helper()
	items := make([]store.Item, n)
	for i := range items {
		v := make(vec.Vector, dim)
		for d := range v {
			v[d] = float64(i)*1.25 - float64(d)*0.5
		}
		items[i] = store.Item{ID: store.ItemID(i), Vec: v, Label: i % 3}
	}
	pages, err := store.Paginate(items, capacity)
	if err != nil {
		t.Fatal(err)
	}
	meta := store.DatasetMeta{Dim: dim, PageCapacity: capacity}
	if err := store.WriteDataset(dir, pages, meta, store.WriteOptions{NoSync: true}); err != nil {
		t.Fatal(err)
	}
	return pages
}

// TestFSDeterministicPlan: the zero-value FS only records; FailAt k fails
// exactly the k-th operation and nothing else; the operation log is
// identical run to run, which is what makes the crash sweep deterministic.
func TestFSDeterministicPlan(t *testing.T) {
	pages := []*store.Page{{ID: 0, Items: []store.Item{{ID: 1, Vec: vec.Vector{1, 2}}}}}
	meta := store.DatasetMeta{Dim: 2, PageCapacity: 4}

	record := &FS{}
	if err := store.WriteDataset(t.TempDir(), pages, meta, store.WriteOptions{Hook: record.Hook}); err != nil {
		t.Fatalf("zero-value FS failed a build: %v", err)
	}
	if record.Tripped() {
		t.Fatal("zero-value FS reports a tripped fault")
	}
	ops := record.Ops()
	if len(ops) == 0 || record.Count() != len(ops) {
		t.Fatalf("operation log inconsistent: %d ops, count %d", len(ops), record.Count())
	}

	for k := 1; k <= len(ops); k++ {
		inj := &FS{FailAt: k}
		err := store.WriteDataset(t.TempDir(), pages, meta, store.WriteOptions{Hook: inj.Hook})
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("FailAt=%d: want injected error, got %v", k, err)
		}
		if !inj.Tripped() || inj.Count() != k {
			t.Fatalf("FailAt=%d: tripped=%v count=%d", k, inj.Tripped(), inj.Count())
		}
		if got := inj.Ops(); len(got) != k || got[k-1] != ops[k-1] {
			t.Fatalf("FailAt=%d: operation log diverged: %v vs %v", k, got, ops[:k])
		}
		if !IsStorageFault(err) || IsCorruption(err) {
			t.Fatalf("FailAt=%d: taxonomy wrong for %v", k, err)
		}
	}
}

// TestFSTornWrite: with TornBytes set, the failing write carries a
// store.TornWrite so the builder leaves exactly that prefix on disk.
func TestFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	pages := []*store.Page{{ID: 0, Items: []store.Item{{ID: 1, Vec: vec.Vector{1, 2}}}}}
	meta := store.DatasetMeta{Dim: 2, PageCapacity: 4}

	// Find the first write op, then fail it torn.
	probe := &FS{}
	if err := store.WriteDataset(dir, pages, meta, store.WriteOptions{Hook: probe.Hook}); err != nil {
		t.Fatal(err)
	}
	writeAt := 0
	for i, op := range probe.Ops() {
		if strings.HasPrefix(op, string(store.OpWrite)+" pages-") {
			writeAt = i + 1
			break
		}
	}
	if writeAt == 0 {
		t.Fatalf("no page write in operation log: %v", probe.Ops())
	}

	inj := &FS{FailAt: writeAt, TornBytes: 7}
	err := store.WriteDataset(dir, pages, meta, store.WriteOptions{Hook: inj.Hook})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	var torn *store.TornWrite
	if !errors.As(err, &torn) || torn.Bytes != 7 {
		t.Fatalf("want TornWrite{7} in chain, got %v", err)
	}
	// The aborted generation's page file holds exactly the torn prefix.
	names, err := filepath.Glob(filepath.Join(dir, "pages-*.dat"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range names {
		st, err := os.Stat(name)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no 7-byte torn page file among %v", names)
	}
}

// TestWrapFileDiskPassThrough: a zero-config injector in front of a real
// file-backed disk is invisible — identical pages bit for bit, identical
// I/O statistics — in both pread and mmap modes. This is what lets every
// existing chaos test run unchanged against persistent storage.
func TestWrapFileDiskPassThrough(t *testing.T) {
	for _, mmap := range []bool{false, true} {
		dir := t.TempDir()
		writeTestDataset(t, dir, 37, 3, 5)

		bare, err := store.OpenFileDisk(dir, store.FileDiskOptions{Mmap: mmap})
		if err != nil {
			t.Fatal(err)
		}
		inner, err := store.OpenFileDisk(dir, store.FileDiskOptions{Mmap: mmap})
		if err != nil {
			t.Fatal(err)
		}
		wrapped, err := Wrap(inner, Config{})
		if err != nil {
			t.Fatal(err)
		}

		if wrapped.NumPages() != bare.NumPages() {
			t.Fatalf("mmap=%v: NumPages %d vs %d", mmap, wrapped.NumPages(), bare.NumPages())
		}
		seq := []store.PageID{0, 1, 2, 5, 0, 7, 3, 4, 4, 6}
		for _, pid := range seq {
			pb, errB := bare.Read(pid)
			pw, errW := wrapped.Read(pid)
			if errB != nil || errW != nil {
				t.Fatalf("mmap=%v: read %d: %v / %v", mmap, pid, errB, errW)
			}
			if pb.ID != pw.ID || len(pb.Items) != len(pw.Items) {
				t.Fatalf("mmap=%v: page %d shape differs", mmap, pid)
			}
			for i := range pb.Items {
				if pb.Items[i].ID != pw.Items[i].ID || pb.Items[i].Label != pw.Items[i].Label {
					t.Fatalf("mmap=%v: page %d item %d differs", mmap, pid, i)
				}
				for d := range pb.Items[i].Vec {
					if math.Float64bits(pb.Items[i].Vec[d]) != math.Float64bits(pw.Items[i].Vec[d]) {
						t.Fatalf("mmap=%v: page %d item %d coord %d differs", mmap, pid, i, d)
					}
				}
			}
		}
		if bare.Stats() != wrapped.Stats() {
			t.Fatalf("mmap=%v: IOStats diverged: %+v vs %+v", mmap, bare.Stats(), wrapped.Stats())
		}
		if bare.ResetStats() != wrapped.ResetStats() {
			t.Fatalf("mmap=%v: ResetStats diverged", mmap)
		}
		bare.Close()  //nolint:errcheck
		inner.Close() //nolint:errcheck
	}
}

// TestWrapFileDiskSurfacesCorruption: on-disk corruption read through the
// injector surfaces as a corruption fault, distinct from injected errors,
// and both land in the storage-fault taxonomy.
func TestWrapFileDiskSurfacesCorruption(t *testing.T) {
	dir := t.TempDir()
	writeTestDataset(t, dir, 20, 2, 4)

	fd, err := store.OpenFileDisk(dir, store.FileDiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	man := fd.Manifest()
	// Flip one byte in the middle of page 1's record.
	path := filepath.Join(dir, man.PagesFile)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[man.Pages[1].Offset+man.Pages[1].Length/2] ^= 0x40
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	fd.Close() //nolint:errcheck

	fd, err = store.OpenFileDisk(dir, store.FileDiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close() //nolint:errcheck
	wrapped, err := Wrap(fd, Config{FailPages: []store.PageID{2}})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := wrapped.Read(0); err != nil {
		t.Fatalf("undamaged page 0: %v", err)
	}
	_, corrErr := wrapped.Read(1)
	if !IsCorruption(corrErr) || !IsStorageFault(corrErr) || errors.Is(corrErr, ErrInjected) {
		t.Fatalf("corrupt page error misclassified: %v", corrErr)
	}
	_, injErr := wrapped.Read(2)
	if !errors.Is(injErr, ErrInjected) || !IsStorageFault(injErr) || IsCorruption(injErr) {
		t.Fatalf("injected error misclassified: %v", injErr)
	}
}
