// Package fault provides a deterministic, seedable fault injector for the
// simulated storage layer. Disk wraps any store.PageSource and injects
// read errors and simulated latency according to a Config, which makes it
// possible to chaos-test every engine (scan, X-tree, VA-file), the parallel
// query processor, and the wire server on unreliable storage without
// touching their code.
//
// Determinism is a design requirement: given the same Config (including
// Seed) and the same sequence of reads, the injector makes exactly the same
// decisions, so failing runs can be replayed. With a zero Config the
// wrapper is a pure pass-through — same pages, same statistics — which is
// asserted by the tests.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"metricdb/internal/store"
)

// ErrInjected is the sentinel wrapped by every injected read error; callers
// distinguish injected faults from genuine bugs with errors.Is.
var ErrInjected = errors.New("fault: injected disk error")

// Config parameterizes an injector. The zero value injects nothing.
type Config struct {
	// Seed makes probabilistic injection reproducible.
	Seed int64
	// ErrProb is the probability in [0,1] that any single read fails.
	ErrProb float64
	// LatencyTicks is added to the injector's simulated-latency counter on
	// every read; like the page-read counters elsewhere it is a cost-model
	// unit, not wall-clock sleeping.
	LatencyTicks int
	// FailAfter, when positive, makes every read after the first FailAfter
	// successful operations fail (a disk that dies mid-run).
	FailAfter int
	// FailPages lists specific fault sites: every read of one of these
	// pages fails.
	FailPages []store.PageID
	// MaxFaults, when positive, bounds the total number of injected
	// failures; after the budget is exhausted the disk behaves perfectly
	// (a transient fault that clears, letting retries succeed).
	MaxFaults int
}

// Stats counts injector activity (distinct from the underlying disk's
// IOStats, which only sees reads that were allowed through).
type Stats struct {
	// Reads is the number of read attempts seen by the injector.
	Reads int64
	// Injected is the number of reads that were failed.
	Injected int64
	// Ticks is the accumulated simulated latency.
	Ticks int64
}

// Disk wraps a store.PageSource with fault injection. It implements
// store.PageSource itself, so it can be handed to store.NewPager or to any
// engine's WrapDisk hook. It is safe for concurrent use.
type Disk struct {
	inner store.PageSource
	cfg   Config

	mu        sync.Mutex
	rng       *rand.Rand
	stats     Stats
	enabled   bool
	failPages map[store.PageID]bool
}

var _ store.PageSource = (*Disk)(nil)

// Wrap places an injector in front of inner. The injector starts enabled;
// use SetEnabled(false) around construction phases that must not fault.
func Wrap(inner store.PageSource, cfg Config) (*Disk, error) {
	if inner == nil {
		return nil, fmt.Errorf("fault: nil page source")
	}
	if cfg.ErrProb < 0 || cfg.ErrProb > 1 {
		return nil, fmt.Errorf("fault: error probability %g outside [0,1]", cfg.ErrProb)
	}
	if cfg.LatencyTicks < 0 {
		return nil, fmt.Errorf("fault: negative latency ticks %d", cfg.LatencyTicks)
	}
	d := &Disk{
		inner:   inner,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		enabled: true,
	}
	if len(cfg.FailPages) > 0 {
		d.failPages = make(map[store.PageID]bool, len(cfg.FailPages))
		for _, pid := range cfg.FailPages {
			d.failPages[pid] = true
		}
	}
	return d, nil
}

// SetEnabled arms or disarms injection. While disarmed the wrapper is a
// pass-through and reads are not counted against FailAfter or the rng
// stream, so a build phase does not perturb the injected workload.
func (d *Disk) SetEnabled(on bool) {
	d.mu.Lock()
	d.enabled = on
	d.mu.Unlock()
}

// Read consults the fault model and either fails or delegates to the
// wrapped source.
func (d *Disk) Read(pid store.PageID) (*store.Page, error) {
	d.mu.Lock()
	if !d.enabled {
		d.mu.Unlock()
		return d.inner.Read(pid)
	}
	d.stats.Reads++
	d.stats.Ticks += int64(d.cfg.LatencyTicks)
	inject := d.failPages[pid] ||
		(d.cfg.FailAfter > 0 && d.stats.Reads > int64(d.cfg.FailAfter)) ||
		(d.cfg.ErrProb > 0 && d.rng.Float64() < d.cfg.ErrProb)
	if inject && d.cfg.MaxFaults > 0 && d.stats.Injected >= int64(d.cfg.MaxFaults) {
		inject = false // budget exhausted: the fault has cleared
	}
	if inject {
		d.stats.Injected++
		d.mu.Unlock()
		return nil, fmt.Errorf("fault: reading page %d: %w", pid, ErrInjected)
	}
	d.mu.Unlock()
	return d.inner.Read(pid)
}

// NumPages returns the wrapped source's page count.
func (d *Disk) NumPages() int { return d.inner.NumPages() }

// Stats returns the wrapped source's I/O statistics: only reads that were
// allowed through are charged, so a fault-free injector is stat-identical
// to the bare disk.
func (d *Disk) Stats() store.IOStats { return d.inner.Stats() }

// ResetStats resets the wrapped source's I/O statistics. Injector counters
// are left alone; use ResetFaultStats for those.
func (d *Disk) ResetStats() store.IOStats { return d.inner.ResetStats() }

// FaultStats returns a snapshot of the injector's own counters.
func (d *Disk) FaultStats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetFaultStats zeroes the injector counters (and with them the FailAfter
// and MaxFaults progress) and reseeds the rng, returning the previous
// snapshot. The next read sequence replays the same decisions as a fresh
// injector.
func (d *Disk) ResetFaultStats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	d.stats = Stats{}
	d.rng = rand.New(rand.NewSource(d.cfg.Seed))
	return s
}

// Exhausted reports whether a positive MaxFaults budget has been fully
// spent — from that point on the disk behaves perfectly.
func (d *Disk) Exhausted() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfg.MaxFaults > 0 && d.stats.Injected >= int64(d.cfg.MaxFaults)
}
