package fault

import (
	"errors"
	"fmt"
	"sync"

	"metricdb/internal/store"
)

// FS is a deterministic fault plan for the persistent dataset builder: it
// plugs into store.WriteOptions.Hook and fails the build at exactly one
// chosen filesystem operation, optionally as a torn write that leaves a
// prefix of the blob on disk. Because store.WriteDataset performs its
// operations in a fixed order, sweeping FailAt from 1 upward interrupts a
// build at every individual fault point — the crash-safety suite in
// internal/dataset drives exactly that sweep and asserts a reopened
// directory always yields the old or the new dataset, never a torn one.
//
// The zero value injects nothing and just records the operation log.
type FS struct {
	// FailAt is the 1-based index of the operation that fails; 0 never
	// fails.
	FailAt int
	// TornBytes, when positive and the failing operation is a write,
	// lets that many bytes of the blob reach the file before the abort
	// (store.TornWrite semantics). Zero aborts before any byte.
	TornBytes int

	mu  sync.Mutex
	n   int
	ops []string
	hit bool
}

// Hook is the store.WriteOptions.Hook adapter.
func (f *FS) Hook(op store.FileOp, name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.n++
	f.ops = append(f.ops, fmt.Sprintf("%s %s", op, name))
	if f.FailAt == 0 || f.n != f.FailAt {
		return nil
	}
	f.hit = true
	if op == store.OpWrite && f.TornBytes > 0 {
		return fmt.Errorf("fault: op %d (%s %s): %w: %w",
			f.n, op, name, ErrInjected, &store.TornWrite{Bytes: f.TornBytes})
	}
	return fmt.Errorf("fault: op %d (%s %s): %w", f.n, op, name, ErrInjected)
}

// Ops returns the recorded operation log ("write pages-g00000001.dat", …).
func (f *FS) Ops() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.ops...)
}

// Count returns how many operations the hook has seen.
func (f *FS) Count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Tripped reports whether the planned fault point was reached.
func (f *FS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hit
}

// IsCorruption reports whether err is a storage-corruption failure — a
// page record that failed checksum or structural validation on a
// file-backed disk. It extends the package's fault taxonomy beyond
// injected read errors (ErrInjected): both classes are storage faults the
// degraded-mode machinery treats alike (the page's contents are
// unavailable; answers from surviving pages remain a sound subset), but
// corruption is never transient, so retry loops should give up on the
// page instead of re-reading it.
func IsCorruption(err error) bool {
	return errors.Is(err, store.ErrCorruptPage)
}

// IsStorageFault reports whether err is any fault of the storage layer:
// an injected read error or detected corruption.
func IsStorageFault(err error) bool {
	return errors.Is(err, ErrInjected) || IsCorruption(err)
}
