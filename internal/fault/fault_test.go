package fault

import (
	"errors"
	"testing"

	"metricdb/internal/store"
	"metricdb/internal/vec"
)

func testDisk(t *testing.T, n int) *store.Disk {
	t.Helper()
	pages := make([]*store.Page, n)
	for i := range pages {
		pages[i] = &store.Page{ID: store.PageID(i), Items: []store.Item{
			{ID: store.ItemID(i), Vec: vec.Vector{float64(i)}},
		}}
	}
	d, err := store.NewDisk(pages)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestZeroConfigIsPassThrough is the acceptance bar: with no faults
// configured the wrapper returns the same pages and charges the same
// statistics as the bare disk, read for read.
func TestZeroConfigIsPassThrough(t *testing.T) {
	bare := testDisk(t, 8)
	inner := testDisk(t, 8)
	wrapped, err := Wrap(inner, Config{})
	if err != nil {
		t.Fatal(err)
	}

	seq := []store.PageID{0, 1, 2, 5, 6, 3, 0, 7}
	for _, pid := range seq {
		pb, errB := bare.Read(pid)
		pw, errW := wrapped.Read(pid)
		if errB != nil || errW != nil {
			t.Fatalf("page %d: bare err %v, wrapped err %v", pid, errB, errW)
		}
		if pb.ID != pw.ID || len(pb.Items) != len(pw.Items) {
			t.Fatalf("page %d differs through the wrapper", pid)
		}
	}
	if bare.Stats() != wrapped.Stats() {
		t.Errorf("stats diverged: bare %+v, wrapped %+v", bare.Stats(), wrapped.Stats())
	}
	if wrapped.NumPages() != bare.NumPages() {
		t.Errorf("NumPages: %d vs %d", wrapped.NumPages(), bare.NumPages())
	}
	fs := wrapped.FaultStats()
	if fs.Injected != 0 || fs.Ticks != 0 || fs.Reads != int64(len(seq)) {
		t.Errorf("fault stats = %+v", fs)
	}
	// ResetStats delegates to the wrapped disk.
	if prev := wrapped.ResetStats(); prev.Reads != int64(len(seq)) {
		t.Errorf("ResetStats returned %+v", prev)
	}
	if inner.Stats().Reads != 0 {
		t.Error("inner disk stats not reset through wrapper")
	}
}

func TestProbabilisticInjectionIsDeterministic(t *testing.T) {
	run := func() []bool {
		d, err := Wrap(testDisk(t, 4), Config{Seed: 7, ErrProb: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		var pattern []bool
		for i := 0; i < 64; i++ {
			_, err := d.Read(store.PageID(i % 4))
			pattern = append(pattern, err != nil)
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("read %d: %v is not ErrInjected", i, err)
			}
		}
		return pattern
	}
	a, b := run(), run()
	injected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at read %d", i)
		}
		if a[i] {
			injected++
		}
	}
	if injected == 0 || injected == len(a) {
		t.Errorf("ErrProb 0.5 injected %d/%d faults", injected, len(a))
	}
}

func TestFailAfter(t *testing.T) {
	d, err := Wrap(testDisk(t, 4), Config{FailAfter: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := d.Read(store.PageID(i % 4)); err != nil {
			t.Fatalf("read %d failed before FailAfter: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Read(0); !errors.Is(err, ErrInjected) {
			t.Fatalf("read after FailAfter succeeded (err=%v)", err)
		}
	}
}

func TestFailPages(t *testing.T) {
	d, err := Wrap(testDisk(t, 6), Config{FailPages: []store.PageID{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for pid := store.PageID(0); pid < 6; pid++ {
		_, err := d.Read(pid)
		wantFail := pid == 2 || pid == 4
		if wantFail != (err != nil) {
			t.Errorf("page %d: err=%v, want fail=%v", pid, err, wantFail)
		}
	}
}

// TestMaxFaultsExhaustion: a bounded fault budget clears, after which the
// disk behaves perfectly — the property the retry layers rely on.
func TestMaxFaultsExhaustion(t *testing.T) {
	d, err := Wrap(testDisk(t, 4), Config{ErrProb: 1, Seed: 3, MaxFaults: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if d.Exhausted() {
			t.Fatalf("exhausted after %d faults", i)
		}
		if _, err := d.Read(0); !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d: want injected fault, got %v", i, err)
		}
	}
	if !d.Exhausted() {
		t.Error("not exhausted after MaxFaults injections")
	}
	for i := 0; i < 8; i++ {
		if _, err := d.Read(store.PageID(i % 4)); err != nil {
			t.Fatalf("read after exhaustion failed: %v", err)
		}
	}
	fs := d.FaultStats()
	if fs.Injected != 3 || fs.Reads != 11 {
		t.Errorf("fault stats = %+v", fs)
	}
	// ResetFaultStats replays the same fault sequence.
	if prev := d.ResetFaultStats(); prev.Injected != 3 {
		t.Errorf("reset returned %+v", prev)
	}
	if _, err := d.Read(0); !errors.Is(err, ErrInjected) {
		t.Errorf("after reset the budget did not replay: %v", err)
	}
}

func TestLatencyTicks(t *testing.T) {
	d, err := Wrap(testDisk(t, 2), Config{LatencyTicks: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := d.Read(store.PageID(i % 2)); err != nil {
			t.Fatal(err)
		}
	}
	if fs := d.FaultStats(); fs.Ticks != 20 {
		t.Errorf("Ticks = %d, want 20", fs.Ticks)
	}
}

func TestSetEnabled(t *testing.T) {
	d, err := Wrap(testDisk(t, 2), Config{ErrProb: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.SetEnabled(false)
	if _, err := d.Read(0); err != nil {
		t.Fatalf("disarmed injector failed a read: %v", err)
	}
	if fs := d.FaultStats(); fs.Reads != 0 {
		t.Errorf("disarmed reads were counted: %+v", fs)
	}
	d.SetEnabled(true)
	if _, err := d.Read(0); !errors.Is(err, ErrInjected) {
		t.Errorf("armed injector passed a read: %v", err)
	}
}

func TestWrapValidation(t *testing.T) {
	if _, err := Wrap(nil, Config{}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := Wrap(testDisk(t, 1), Config{ErrProb: 1.5}); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := Wrap(testDisk(t, 1), Config{ErrProb: -0.1}); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := Wrap(testDisk(t, 1), Config{LatencyTicks: -1}); err == nil {
		t.Error("negative latency accepted")
	}
}
