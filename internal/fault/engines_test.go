package fault_test

import (
	"errors"
	"math"
	"testing"

	"metricdb/internal/dataset"
	"metricdb/internal/engine"
	"metricdb/internal/fault"
	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vafile"
	"metricdb/internal/vec"
	"metricdb/internal/xtree"
)

// engineMaker builds one of the three physical organizations over items,
// optionally on fault-injected storage.
type engineMaker struct {
	name string
	make func(items []store.Item, wrap func(store.PageSource) (store.PageSource, error)) (engine.Engine, error)
}

func makers(dim int) []engineMaker {
	return []engineMaker{
		{"scan", func(items []store.Item, wrap func(store.PageSource) (store.PageSource, error)) (engine.Engine, error) {
			return scan.NewWithConfig(items, scan.Config{PageCapacity: 16, WrapDisk: wrap})
		}},
		{"xtree", func(items []store.Item, wrap func(store.PageSource) (store.PageSource, error)) (engine.Engine, error) {
			cfg := xtree.Config{LeafCapacity: 16, DirFanout: 8, WrapDisk: wrap}
			return xtree.Bulk(items, dim, cfg)
		}},
		{"vafile", func(items []store.Item, wrap func(store.PageSource) (store.PageSource, error)) (engine.Engine, error) {
			return vafile.New(items, vafile.Config{PageCapacity: 16, WrapDisk: wrap})
		}},
	}
}

// TestEnginesOnFaultyDiskRecover injects a bounded fault budget under each
// engine, retries queries until the budget is exhausted, and asserts the
// answers are identical to a fault-free run — faults delay, never corrupt.
func TestEnginesOnFaultyDiskRecover(t *testing.T) {
	const dim = 4
	items := dataset.Uniform(11, 400, dim)
	queries := []msq.Query{
		{ID: 1, Vec: items[10].Vec, Type: query.NewKNN(5)},
		{ID: 2, Vec: items[200].Vec, Type: query.NewRange(0.35)},
		{ID: 3, Vec: items[333].Vec, Type: query.NewBoundedKNN(4, 0.5)},
	}

	for _, mk := range makers(dim) {
		t.Run(mk.name, func(t *testing.T) {
			clean, err := mk.make(items, nil)
			if err != nil {
				t.Fatal(err)
			}
			cleanProc, err := msq.New(clean, vec.Euclidean{}, msq.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := cleanProc.MultiQuery(queries)
			if err != nil {
				t.Fatal(err)
			}

			var injector *fault.Disk
			faulty, err := mk.make(items, func(src store.PageSource) (store.PageSource, error) {
				injector, err = fault.Wrap(src, fault.Config{Seed: 5, ErrProb: 1, MaxFaults: 3})
				return injector, err
			})
			if err != nil {
				t.Fatal(err)
			}
			if injector == nil {
				t.Fatal("WrapDisk hook was not invoked")
			}
			proc, err := msq.New(faulty, vec.Euclidean{}, msq.Options{})
			if err != nil {
				t.Fatal(err)
			}

			var got []*query.AnswerList
			attempts := 0
			for {
				attempts++
				if attempts > 10 {
					t.Fatal("queries never recovered")
				}
				res, _, err := proc.MultiQuery(queries)
				if err == nil {
					got = res
					break
				}
				if !errors.Is(err, fault.ErrInjected) {
					t.Fatalf("attempt %d: non-injected error %v", attempts, err)
				}
			}
			if attempts < 2 {
				t.Fatalf("first attempt succeeded; no fault was injected (stats %+v)", injector.FaultStats())
			}
			if !injector.Exhausted() {
				t.Errorf("fault budget not exhausted: %+v", injector.FaultStats())
			}

			for qi := range queries {
				w, g := want[qi].Answers(), got[qi].Answers()
				if len(w) != len(g) {
					t.Fatalf("query %d: %d answers after recovery, want %d", qi, len(g), len(w))
				}
				for j := range w {
					if w[j].ID != g[j].ID || math.Abs(w[j].Dist-g[j].Dist) > 1e-12 {
						t.Fatalf("query %d answer %d differs after recovery", qi, j)
					}
				}
			}
		})
	}
}

// TestZeroProbabilityInjectorIsInvisible runs a real query workload through
// each engine twice — bare disk vs. zero-config injector — and asserts
// bit-for-bit identical processing statistics and I/O counters.
func TestZeroProbabilityInjectorIsInvisible(t *testing.T) {
	const dim = 3
	items := dataset.Uniform(12, 300, dim)
	queries := []msq.Query{
		{ID: 1, Vec: items[5].Vec, Type: query.NewKNN(7)},
		{ID: 2, Vec: items[150].Vec, Type: query.NewRange(0.4)},
	}

	for _, mk := range makers(dim) {
		t.Run(mk.name, func(t *testing.T) {
			run := func(wrap func(store.PageSource) (store.PageSource, error)) (msq.Stats, store.IOStats) {
				eng, err := mk.make(items, wrap)
				if err != nil {
					t.Fatal(err)
				}
				proc, err := msq.New(eng, vec.Euclidean{}, msq.Options{})
				if err != nil {
					t.Fatal(err)
				}
				_, st, err := proc.MultiQuery(queries)
				if err != nil {
					t.Fatal(err)
				}
				return st, eng.Pager().Disk().Stats()
			}
			bareStats, bareIO := run(nil)
			injStats, injIO := run(func(src store.PageSource) (store.PageSource, error) {
				return fault.Wrap(src, fault.Config{})
			})
			if bareStats != injStats {
				t.Errorf("query stats diverged:\nbare %+v\ninj  %+v", bareStats, injStats)
			}
			if bareIO != injIO {
				t.Errorf("io stats diverged: bare %+v, inj %+v", bareIO, injIO)
			}
		})
	}
}
