// Package engine defines the interface between the query processor and the
// physical data organizations (sequential scan, X-tree, ...).
//
// The single- and multiple-similarity-query algorithms of the paper (Figures
// 1 and 4) are engine-agnostic: they only need, per query object, an ordered
// list of relevant data pages with lower-bound distances, plus the ability
// to read pages. An index engine provides tight lower bounds (MINDIST of
// page MBRs) and can exclude pages; the scan engine reports every page as
// relevant with lower bound zero, and the shared algorithm degenerates to
// exactly the paper's linear-scan variant.
package engine

import (
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// PageRef is a reference to a data page together with a lower bound on the
// distance from a specific query object to any item stored on the page.
type PageRef struct {
	ID store.PageID
	// MinDist satisfies: for every item o on the page,
	// dist(q, o) >= MinDist. Zero for the sequential scan.
	MinDist float64
}

// Engine is a physical data organization that the query processors operate
// on. Implementations must be safe for concurrent readers.
type Engine interface {
	// Name identifies the engine in reports ("scan", "xtree", ...).
	Name() string

	// Plan implements determine_relevant_data_pages of Figure 1: it
	// returns references to every data page that may contain an answer
	// for a query at q with initial query distance queryDist, in optimal
	// processing order. Index engines return pages in ascending MinDist
	// order (the Hjaltason–Samet schedule, proven I/O-optimal for k-NN);
	// the scan returns all pages in physical order so that reads are
	// sequential. Each page appears at most once in a plan — the msq
	// pipeline's ordered prefetcher depends on plans being duplicate-free.
	Plan(q vec.Vector, queryDist float64) []PageRef

	// MinDist returns a lower bound on dist(q, o) for every item o on
	// page pid. The multi-query processor uses it to decide whether a
	// page loaded for one query is also relevant for another.
	MinDist(q vec.Vector, pid store.PageID) float64

	// MaxDist returns an upper bound on dist(q, o) for every item o on
	// page pid, or +Inf when the engine has no geometric knowledge (the
	// scan). A page holding at least k items therefore upper-bounds the
	// k-NN distance of q, which lets the multi-query processor bound a
	// query before any object distance has been calculated.
	MaxDist(q vec.Vector, pid store.PageID) float64

	// PageLen returns the number of items on page pid without reading it.
	PageLen(pid store.PageID) int

	// ReadPage fetches a data page through the engine's pager (buffer
	// hits cost no I/O).
	ReadPage(pid store.PageID) (*store.Page, error)

	// NumPages returns the number of data pages.
	NumPages() int

	// NumItems returns the number of stored items.
	NumItems() int

	// Pager exposes the underlying pager for I/O statistics.
	Pager() *store.Pager
}
