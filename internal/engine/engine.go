// Package engine defines the interface between the query processor and the
// physical data organizations (sequential scan, X-tree, VA-file, pivot
// table, PM-tree).
//
// The single- and multiple-similarity-query algorithms of the paper (Figures
// 1 and 4) are engine-agnostic: they only need, per query object, an ordered
// list of relevant data pages with lower-bound distances, plus the ability
// to read pages. An index engine provides tight lower bounds (MINDIST of
// page MBRs, or pivot-based triangle-inequality bounds) and can exclude
// pages; the scan engine reports every page as relevant with lower bound
// zero, and the shared algorithm degenerates to exactly the paper's
// linear-scan variant.
//
// The contract is split in two. Engine is the long-lived, concurrency-safe
// physical organization; Prepare(q) returns a PreparedQuery — a per-query
// handle that carries whatever per-query state the engine wants to pay for
// exactly once (pivot distances d(q, p_i) for the pivot-based engines,
// scratch buffers for the VA-file) and answers all subsequent Plan /
// MinDist / MaxDist probes for that query against it. The multi-query
// processor keeps one handle per query for the lifetime of the batch, so an
// engine's per-query setup cost is amortized over every page probe the
// batch makes, not paid per probe.
package engine

import (
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// PageRef is a reference to a data page together with a lower bound on the
// distance from a specific query object to any item stored on the page.
type PageRef struct {
	ID store.PageID
	// MinDist satisfies: for every item o on the page,
	// dist(q, o) >= MinDist. Zero for the sequential scan.
	MinDist float64
}

// PreparedQuery is a per-query view of an engine. It is created once per
// query object by Engine.Prepare and answers every page-level probe for that
// query. A PreparedQuery is used by a single goroutine at a time (the
// processor's coordinator); it need not be safe for concurrent use, which
// frees implementations to memoize lazily.
type PreparedQuery interface {
	// Plan implements determine_relevant_data_pages of Figure 1: it
	// returns references to every data page that may contain an answer
	// for the prepared query at initial query distance queryDist, in
	// optimal processing order. Index engines return pages in ascending
	// MinDist order (the Hjaltason–Samet schedule, proven I/O-optimal for
	// k-NN); the scan returns all pages in physical order so that reads
	// are sequential. Each page appears at most once in a plan — the msq
	// pipeline's ordered prefetcher depends on plans being duplicate-free.
	Plan(queryDist float64) []PageRef

	// MinDist returns a lower bound on dist(q, o) for every item o on
	// page pid. The multi-query processor uses it to decide whether a
	// page loaded for one query is also relevant for another.
	MinDist(pid store.PageID) float64

	// MaxDist returns an upper bound on dist(q, o) for every item o on
	// page pid, or +Inf when the engine has no geometric knowledge (the
	// scan). A page holding at least k items therefore upper-bounds the
	// k-NN distance of q, which lets the multi-query processor bound a
	// query before any object distance has been calculated.
	MaxDist(pid store.PageID) float64
}

// Engine is a physical data organization that the query processors operate
// on. Implementations must be safe for concurrent readers; the handles
// returned by Prepare are owned by their caller.
type Engine interface {
	// Name identifies the engine in reports ("scan", "xtree", ...).
	Name() string

	// Prepare computes the per-query state for q (for pivot-based
	// engines, the distances from q to every pivot) and returns the
	// handle that serves all page probes for this query.
	Prepare(q vec.Vector) PreparedQuery

	// PageLen returns the number of items on page pid without reading it.
	PageLen(pid store.PageID) int

	// ReadPage fetches a data page through the engine's pager (buffer
	// hits cost no I/O).
	ReadPage(pid store.PageID) (*store.Page, error)

	// NumPages returns the number of data pages.
	NumPages() int

	// NumItems returns the number of stored items.
	NumItems() int

	// Pager exposes the underlying pager for I/O statistics.
	Pager() *store.Pager
}

// PivotCoster is implemented by engines whose Prepare pays real metric
// distance calculations (query-to-pivot distances). The counter is
// cumulative over the engine's lifetime; the processor snapshots it around
// each call and reports the delta as Stats.PivotDistCalcs, keeping the
// filter's cost visible next to the DistCalcs it saves.
type PivotCoster interface {
	PivotDistCalcs() int64
}

// Config describes an engine's tuning for EXPLAIN output and the advisor.
// Zero fields are omitted from JSON, so each engine only reports the knobs
// it actually has.
type Config struct {
	PageCapacity int `json:"page_capacity,omitempty"`
	// Pivots is the number of pivots (pivot table, PM-tree rings).
	Pivots int `json:"pivots,omitempty"`
	// Bits is the per-dimension approximation resolution (VA-file).
	Bits int `json:"bits,omitempty"`
	// Fanout is the directory fanout (X-tree, PM-tree).
	Fanout int `json:"fanout,omitempty"`
}

// Described is implemented by engines that can report their configuration.
type Described interface {
	Describe() Config
}
