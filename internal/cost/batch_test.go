package cost

import (
	"reflect"
	"testing"
)

func estimate(t *testing.T, s BatchShape) []EngineEstimate {
	t.Helper()
	ests, err := PaperModel(16).EstimateBatch(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 5 {
		t.Fatalf("priced %d engines, want 5", len(ests))
	}
	for i := 1; i < len(ests); i++ {
		if ests[i].Total < ests[i-1].Total {
			t.Fatalf("estimates not ascending: %v then %v", ests[i-1], ests[i])
		}
	}
	return ests
}

func rank(ests []EngineEstimate) map[string]int {
	r := make(map[string]int, len(ests))
	for i, e := range ests {
		r[e.Engine] = i
	}
	return r
}

// TestEstimateBatchCrossovers pins the qualitative crossovers the advisor
// exists for; the absolute numbers are calibration, the ordering is the
// contract.
func TestEstimateBatchCrossovers(t *testing.T) {
	base := BatchShape{Items: 100000, PageCapacity: 64, MeanK: 10}

	// Low intrinsic dimension, one query: index selectivity is real, the
	// full sweep is waste — the scan must not win.
	low := base
	low.Queries, low.IntrinsicDim = 1, 4
	if ests := estimate(t, low); ests[0].Engine == "scan" {
		t.Errorf("scan cheapest at intrinsic dim 4, m=1: %+v", ests)
	}

	// High intrinsic dimension: spheres cover everything, pruning is an
	// illusion, and random I/O only adds insult — the scan wins.
	high := base
	high.Queries, high.IntrinsicDim = 1, 64
	if ests := estimate(t, high); ests[0].Engine != "scan" {
		t.Errorf("%q cheapest at intrinsic dim 64, want scan: %+v", ests[0].Engine, ests)
	}

	// Moderate dimension, large batch: the pivot table shares one sweep
	// over the union of needed pages and prunes distance calculations with
	// arithmetic — it must beat both the scan (fewer DistCalcs) and the
	// per-query random I/O of the tree.
	mid := base
	mid.Queries, mid.IntrinsicDim = 32, 9
	ests := estimate(t, mid)
	r := rank(ests)
	if r["pivot"] > r["scan"] {
		t.Errorf("pivot priced above scan at dim 9, m=32: %+v", ests)
	}
	if r["pivot"] > r["xtree"] {
		t.Errorf("pivot priced above xtree at dim 9, m=32: %+v", ests)
	}
	for _, e := range ests {
		if e.Engine == "pivot" && e.DistCalcs >= mid.mustScanDistCalcs() {
			t.Errorf("pivot predicts %d DistCalcs, not fewer than scan's %d",
				e.DistCalcs, mid.mustScanDistCalcs())
		}
	}

	// A measured selectivity overrides the model's estimate.
	meas := base
	meas.Queries, meas.IntrinsicDim, meas.Selectivity = 4, 64, 0.001
	if ests := estimate(t, meas); ests[0].Engine == "scan" {
		t.Errorf("measured selectivity 0.1%% ignored; scan still cheapest: %+v", ests)
	}

	// Determinism: identical shapes price identically.
	a := estimate(t, mid)
	b := estimate(t, mid)
	if !reflect.DeepEqual(a, b) {
		t.Error("EstimateBatch is not deterministic")
	}
}

func (s BatchShape) mustScanDistCalcs() int64 {
	return int64(s.Queries) * int64(s.Items)
}

func TestEstimateBatchValidation(t *testing.T) {
	m := PaperModel(8)
	bad := []BatchShape{
		{Queries: 0, Items: 10, PageCapacity: 4},
		{Queries: 1, Items: 0, PageCapacity: 4},
		{Queries: 1, Items: 10, PageCapacity: 0},
		{Queries: 1, Items: 10, PageCapacity: 4, Selectivity: 1.5},
		{Queries: 1, Items: 10, PageCapacity: 4, Selectivity: -0.1},
	}
	for i, s := range bad {
		if _, err := m.EstimateBatch(s); err == nil {
			t.Errorf("shape %d accepted: %+v", i, s)
		}
	}
}

// TestSelectivityMonotonic: the Minkowski-sum estimate must grow with the
// intrinsic dimension (the curse) and never leave [0, 1].
func TestSelectivityMonotonic(t *testing.T) {
	prev := 0.0
	for d := 1.0; d <= 64; d *= 2 {
		s := BatchShape{Items: 100000, PageCapacity: 64, MeanK: 10, IntrinsicDim: d}
		sel := s.selectivity()
		if sel < prev {
			t.Errorf("selectivity fell from %g to %g at dim %g", prev, sel, d)
		}
		if sel < 0 || sel > 1 {
			t.Errorf("selectivity %g outside [0,1] at dim %g", sel, d)
		}
		prev = sel
	}
	if prev != 1 {
		t.Errorf("selectivity at dim 64 is %g, want saturation at 1", prev)
	}
}

// TestEstimateFor: the single-engine lookup agrees with the full ranking
// and rejects unknown names.
func TestEstimateFor(t *testing.T) {
	m := PaperModel(16)
	shape := BatchShape{Queries: 8, Items: 4000, PageCapacity: 64, IntrinsicDim: 8, MeanK: 10}
	ests, err := m.EstimateBatch(shape)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range ests {
		got, err := m.EstimateFor(shape, want.Engine)
		if err != nil {
			t.Fatalf("EstimateFor(%s): %v", want.Engine, err)
		}
		if got != want {
			t.Fatalf("EstimateFor(%s) = %+v, want %+v", want.Engine, got, want)
		}
	}
	if _, err := m.EstimateFor(shape, "btree"); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := m.EstimateFor(BatchShape{}, "scan"); err == nil {
		t.Fatal("invalid shape accepted")
	}
}
