// Per-batch engine cost prediction: given the dataset's intrinsics and a
// batch's shape (how many queries, how selective they are), price each
// registered engine with the Model's time constants. The point is not
// absolute accuracy — the constants are calibrated or nominal either way —
// but getting the crossovers right: a tree wins at low intrinsic dimension
// and small batches, the pivot table holds on longer because its probes are
// arithmetic, and the scan wins once selectivity collapses or the batch is
// large enough that one shared sequential sweep amortizes over every query
// (the paper's m-fold I/O speed-up).
package cost

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// BatchShape describes one query batch against one dataset. Counts are
// per batch; selectivity is per query.
type BatchShape struct {
	// Queries is the batch size m.
	Queries int
	// Items and PageCapacity describe the dataset.
	Items        int
	PageCapacity int
	// IntrinsicDim is the dataset's estimated intrinsic dimensionality
	// (values below 1 are clamped to 1).
	IntrinsicDim float64
	// MeanK is the mean answer cardinality over the batch's queries (for
	// range queries, the expected answer count; 1 when unknown).
	MeanK float64
	// Selectivity, when positive, is the measured per-query item
	// selectivity (fraction of items a query's pruning sphere covers) and
	// overrides the MeanK-based estimate — callers that can sample real
	// distances should set it.
	Selectivity float64
	// Pivots is the pivot count of the pivot-based engines (0 selects the
	// LAESA default of 16 for pricing).
	Pivots int
}

// Validate rejects shapes the estimator cannot price.
func (s BatchShape) Validate() error {
	if s.Queries < 1 {
		return fmt.Errorf("cost: batch of %d queries", s.Queries)
	}
	if s.Items < 1 {
		return fmt.Errorf("cost: dataset of %d items", s.Items)
	}
	if s.PageCapacity < 1 {
		return fmt.Errorf("cost: page capacity %d", s.PageCapacity)
	}
	if s.Selectivity < 0 || s.Selectivity > 1 {
		return fmt.Errorf("cost: selectivity %g outside [0, 1]", s.Selectivity)
	}
	return nil
}

// EngineEstimate is one engine's predicted batch cost in counted work and
// in the Model's time units.
type EngineEstimate struct {
	// Engine is the registry kind name ("scan", "xtree", ...).
	Engine string `json:"engine"`
	// PagesRead is the predicted data-page reads for the whole batch.
	PagesRead int64 `json:"pages_read"`
	// DistCalcs is the predicted object distance calculations.
	DistCalcs int64 `json:"dist_calcs"`
	// PivotDistCalcs is the predicted per-query setup distances (pivot
	// table, PM-tree routing) — zero for geometry-based engines.
	PivotDistCalcs int64 `json:"pivot_dist_calcs,omitempty"`
	// IO, CPU and Total are the priced components.
	IO    time.Duration `json:"io_ns"`
	CPU   time.Duration `json:"cpu_ns"`
	Total time.Duration `json:"total_ns"`
}

// selectivity returns the per-query fraction of items a query's pruning
// sphere is expected to cover: the measured value when the shape carries
// one, otherwise the Minkowski-sum estimate at page granularity,
//
//	s = ((k/n)^(1/d) + (cap/n)^(1/d))^d
//
// — the k-NN sphere inflated by a page diameter, the standard
// cost-model form (Weber/Böhm style) driven by the *intrinsic* dimension,
// which is what governs how fast spheres stop excluding anything.
func (s BatchShape) selectivity() float64 {
	if s.Selectivity > 0 {
		return math.Min(1, s.Selectivity)
	}
	d := math.Max(1, s.IntrinsicDim)
	k := math.Max(1, s.MeanK)
	n := float64(s.Items)
	cap := math.Min(float64(s.PageCapacity), n)
	sel := math.Pow(math.Pow(k/n, 1/d)+math.Pow(cap/n, 1/d), d)
	return math.Min(1, sel)
}

// EstimateBatch prices every registered engine for the batch and returns
// the estimates in ascending total cost (ties by name, so the result is
// deterministic). The winner is the first entry.
func (m Model) EstimateBatch(shape BatchShape) ([]EngineEstimate, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	n := float64(shape.Items)
	mq := float64(shape.Queries)
	pages := math.Ceil(n / float64(shape.PageCapacity))
	sel := shape.selectivity()
	pivots := float64(shape.Pivots)
	if pivots <= 0 {
		pivots = 16
	}
	// Fraction of pages the batch reads when queries share one pass over
	// a common layout: a page is fetched once if any of the m queries
	// needs it.
	union := 1 - math.Pow(1-sel, mq)

	ests := []EngineEstimate{
		// Scan: one shared sequential sweep for the whole batch, no
		// pruning — every (query, item) pair is offered.
		m.price("scan", pages, 0, mq*n, 0),
		// X-tree: per-query random reads over its private clustered
		// layout; pruning follows the selectivity, which the intrinsic
		// dimension inflates toward 1.
		m.price("xtree", 0, mq*sel*pages, mq*sel*n, 0),
		// VA-file: every query scans the in-memory approximations (priced
		// as comparisons), then random-reads the pages the bounds cannot
		// exclude.
		m.priceWithFilter("vafile", 0, mq*sel*pages, mq*sel*n, 0, mq*n),
		// Pivot table: the batch shares one sweep over the pivot-ordered
		// pages that any query needs; each query pays its pivot distances
		// once, and each (query, page) probe is arithmetic.
		m.price("pivot", union*pages, 0, mq*sel*n, mq*pivots),
		// PM-tree: clustered pages read once per batch when any query
		// needs them (random order — the tree's layout is not the
		// sweep's), plus per-query routing distances down the directory.
		m.price("pmtree", 0, union*pages, mq*sel*n,
			mq*(pivots+math.Ceil(math.Log2(pages+1)))),
	}
	sort.Slice(ests, func(i, j int) bool {
		if ests[i].Total != ests[j].Total {
			return ests[i].Total < ests[j].Total
		}
		return ests[i].Engine < ests[j].Engine
	})
	return ests, nil
}

// EstimateFor prices the batch and returns the estimate for one named
// engine. It errors on an unknown engine name so callers cannot silently
// record calibration samples against a missing prediction.
func (m Model) EstimateFor(shape BatchShape, engine string) (EngineEstimate, error) {
	ests, err := m.EstimateBatch(shape)
	if err != nil {
		return EngineEstimate{}, err
	}
	for _, e := range ests {
		if e.Engine == engine {
			return e, nil
		}
	}
	return EngineEstimate{}, fmt.Errorf("cost: no estimate for engine %q", engine)
}

func (m Model) price(engine string, seqPages, randPages, distCalcs, pivotCalcs float64) EngineEstimate {
	return m.priceWithFilter(engine, seqPages, randPages, distCalcs, pivotCalcs, 0)
}

// priceWithFilter prices counted work; filterProbes are cheap per-item
// bound evaluations (VA-file approximations) priced like avoidance
// comparisons.
func (m Model) priceWithFilter(engine string, seqPages, randPages, distCalcs, pivotCalcs, filterProbes float64) EngineEstimate {
	e := EngineEstimate{
		Engine:         engine,
		PagesRead:      int64(math.Ceil(seqPages + randPages)),
		DistCalcs:      int64(math.Ceil(distCalcs)),
		PivotDistCalcs: int64(math.Ceil(pivotCalcs)),
	}
	e.IO = time.Duration(seqPages*float64(m.SeqPageRead) + randPages*float64(m.RandPageRead))
	e.CPU = time.Duration((distCalcs+pivotCalcs)*float64(m.DistCalc) + filterProbes*float64(m.Compare))
	e.Total = e.IO + e.CPU
	return e
}
