package cost

import (
	"testing"
	"time"

	"metricdb/internal/msq"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

func TestPaperModel(t *testing.T) {
	m20 := PaperModel(20)
	if m20.DistCalc != 4300*time.Nanosecond {
		t.Errorf("20-d DistCalc = %v", m20.DistCalc)
	}
	m64 := PaperModel(64)
	if m64.DistCalc != 12700*time.Nanosecond {
		t.Errorf("64-d DistCalc = %v", m64.DistCalc)
	}
	for _, m := range []Model{m20, m64} {
		if err := m.Validate(); err != nil {
			t.Errorf("paper model invalid: %v", err)
		}
		// The paper's dist/compare ratios: 52x at 20-d, 155x at 64-d.
		ratio := float64(m.DistCalc) / float64(m.Compare)
		if ratio < 40 {
			t.Errorf("dist/compare ratio %v too small", ratio)
		}
	}
	if (Model{}).Validate() == nil {
		t.Error("zero model validated")
	}
}

func TestMeasure(t *testing.T) {
	m := Measure(vec.Euclidean{}, 20)
	if err := m.Validate(); err != nil {
		t.Fatalf("measured model invalid: %v", err)
	}
	// A 20-d Euclidean distance must cost more than one float compare.
	if m.DistCalc < m.Compare {
		t.Errorf("DistCalc %v < Compare %v", m.DistCalc, m.Compare)
	}
}

func TestMeasuredRatioGrowsWithDimension(t *testing.T) {
	d20 := MeasureDistance(vec.Euclidean{}, 20)
	d64 := MeasureDistance(vec.Euclidean{}, 64)
	if d64 <= d20 {
		t.Errorf("64-d distance (%v) not slower than 20-d (%v)", d64, d20)
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	a := Breakdown{IO: 10 * time.Millisecond, CPU: 2 * time.Millisecond}
	b := Breakdown{IO: 5 * time.Millisecond, CPU: 1 * time.Millisecond}
	sum := a.Add(b)
	if sum.IO != 15*time.Millisecond || sum.CPU != 3*time.Millisecond {
		t.Errorf("Add = %+v", sum)
	}
	if sum.Total() != 18*time.Millisecond {
		t.Errorf("Total = %v", sum.Total())
	}
	if got := sum.Div(3); got.IO != 5*time.Millisecond || got.CPU != time.Millisecond {
		t.Errorf("Div = %+v", got)
	}
	if got := sum.Div(0); got != (Breakdown{}) {
		t.Errorf("Div(0) = %+v", got)
	}
}

func TestOfPricesWork(t *testing.T) {
	m := Model{
		SeqPageRead:  1 * time.Millisecond,
		RandPageRead: 10 * time.Millisecond,
		DistCalc:     1 * time.Microsecond,
		Compare:      100 * time.Nanosecond,
	}
	st := msq.Stats{DistCalcs: 1000, MatrixDistCalcs: 10, AvoidTries: 500}
	io := store.IOStats{Reads: 7, SeqReads: 5, RandReads: 2}
	b := m.Of(st, io)
	wantIO := 5*time.Millisecond + 20*time.Millisecond
	if b.IO != wantIO {
		t.Errorf("IO = %v, want %v", b.IO, wantIO)
	}
	wantCPU := 1010*time.Microsecond + 50*time.Microsecond
	if b.CPU != wantCPU {
		t.Errorf("CPU = %v, want %v", b.CPU, wantCPU)
	}
	if got := m.OfPagesOnly(3); got != 30*time.Millisecond {
		t.Errorf("OfPagesOnly = %v", got)
	}
}
