// Package cost converts counted work (page reads, distance calculations,
// triangle-inequality comparisons) into time, following §6.3 of the paper:
// "the average total query cost [is] the sum of the average I/O cost and
// the average CPU cost. This can be done since the cost for managing the
// query process can be neglected."
//
// A Model can be calibrated on the running host (Measure) or set to nominal
// 1999-hardware values matching the paper's testbed (PaperModel), so that
// the benchmark harness reports figures whose shapes are directly
// comparable to Figures 7–12.
package cost

import (
	"fmt"
	"time"

	"metricdb/internal/msq"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// Model holds the per-operation time constants.
type Model struct {
	// SeqPageRead is the time to read a page that physically follows the
	// previous one (no seek).
	SeqPageRead time.Duration
	// RandPageRead is the time for a page read requiring a seek.
	RandPageRead time.Duration
	// DistCalc is the time of one object distance calculation.
	DistCalc time.Duration
	// Compare is the time of one triangle-inequality evaluation.
	Compare time.Duration
}

// Validate rejects non-positive components.
func (m Model) Validate() error {
	if m.SeqPageRead <= 0 || m.RandPageRead <= 0 || m.DistCalc <= 0 || m.Compare <= 0 {
		return fmt.Errorf("cost: all model components must be positive: %+v", m)
	}
	return nil
}

// PaperModel returns nominal constants for the paper's testbed (Pentium II
// 300 MHz, late-90s SCSI disk, 32 KB blocks): the paper reports 4.3 µs per
// 20-d Euclidean distance, 12.7 µs per 64-d distance and 0.082 µs per
// triangle-inequality comparison; disk constants are the era's typical
// ~10 ms seek + ~3 ms transfer for 32 KB.
func PaperModel(dim int) Model {
	distance := 4300 * time.Nanosecond // 20-d
	if dim >= 48 {
		distance = 12700 * time.Nanosecond // 64-d
	}
	return Model{
		SeqPageRead:  3 * time.Millisecond,
		RandPageRead: 13 * time.Millisecond,
		DistCalc:     distance,
		Compare:      82 * time.Nanosecond,
	}
}

// Measure calibrates DistCalc and Compare on the running host for the
// given metric and dimensionality, keeping the nominal disk constants
// (there is no real disk in the simulation). The measured ratio
// DistCalc/Compare is what Figure 8 depends on; the paper reports 52× at
// 20 dimensions and 155× at 64.
func Measure(metric vec.Metric, dim int) Model {
	m := PaperModel(dim)
	m.DistCalc = MeasureDistance(metric, dim)
	m.Compare = MeasureCompare()
	// Guard against timer quantization on very fast hosts.
	if m.DistCalc <= 0 {
		m.DistCalc = time.Nanosecond
	}
	if m.Compare <= 0 {
		m.Compare = time.Nanosecond
	}
	return m
}

// MeasureDistanceNs times one distance calculation of the metric at the
// given dimensionality, in (possibly fractional) nanoseconds.
func MeasureDistanceNs(metric vec.Metric, dim int) float64 {
	a := make(vec.Vector, dim)
	b := make(vec.Vector, dim)
	for i := 0; i < dim; i++ {
		a[i] = float64(i) * 0.001
		b[i] = float64(dim-i) * 0.001
	}
	const iters = 20000
	var sink float64
	start := time.Now()
	for i := 0; i < iters; i++ {
		sink += metric.Distance(a, b)
	}
	elapsed := time.Since(start)
	_ = sink
	return float64(elapsed.Nanoseconds()) / iters
}

// MeasureDistance is MeasureDistanceNs rounded to a Duration of at least
// one nanosecond.
func MeasureDistance(metric vec.Metric, dim int) time.Duration {
	return atLeastOneNs(MeasureDistanceNs(metric, dim))
}

// MeasureCompareNs times one triangle-inequality evaluation (two float
// comparisons and a subtraction, as in the avoidance fast path), in
// fractional nanoseconds — modern CPUs execute it in well under 1 ns.
func MeasureCompareNs() float64 {
	const iters = 5000000
	d, mij, qd := 1.5, 0.25, 1.0
	hits := 0
	start := time.Now()
	for i := 0; i < iters; i++ {
		if d-mij > qd || mij-d > qd {
			hits++
		}
		d += 1e-9 // defeat loop-invariant hoisting
	}
	elapsed := time.Since(start)
	_ = hits
	return float64(elapsed.Nanoseconds()) / iters
}

// MeasureCompare is MeasureCompareNs rounded to a Duration of at least one
// nanosecond.
func MeasureCompare() time.Duration {
	return atLeastOneNs(MeasureCompareNs())
}

func atLeastOneNs(ns float64) time.Duration {
	if ns < 1 {
		return time.Nanosecond
	}
	return time.Duration(ns)
}

// Breakdown is a cost in time units split by origin.
type Breakdown struct {
	IO  time.Duration
	CPU time.Duration
}

// Total returns IO + CPU.
func (b Breakdown) Total() time.Duration { return b.IO + b.CPU }

// Add returns the component-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{IO: b.IO + o.IO, CPU: b.CPU + o.CPU}
}

// Div scales the breakdown down by n (for per-query averages).
func (b Breakdown) Div(n int64) Breakdown {
	if n == 0 {
		return Breakdown{}
	}
	return Breakdown{IO: b.IO / time.Duration(n), CPU: b.CPU / time.Duration(n)}
}

// Of prices counted query-processing work: I/O from the disk statistics
// (sequential and random reads priced separately) and CPU from distance
// calculations (including the query-distance matrix) plus
// triangle-inequality comparisons.
func (m Model) Of(st msq.Stats, io store.IOStats) Breakdown {
	return Breakdown{
		IO: time.Duration(io.SeqReads)*m.SeqPageRead +
			time.Duration(io.RandReads)*m.RandPageRead,
		CPU: time.Duration(st.TotalDistCalcs())*m.DistCalc +
			time.Duration(st.AvoidTries)*m.Compare,
	}
}

// OfPagesOnly prices I/O when only a total page count is known, assuming
// random reads (the conservative choice for index engines).
func (m Model) OfPagesOnly(pages int64) time.Duration {
	return time.Duration(pages) * m.RandPageRead
}
