package parallel

import (
	"math/rand"
	"testing"

	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// TestClusterIntraServerConcurrency checks the Config.Concurrency plumbing:
// a cluster whose servers run the width-4 pipeline internally must return
// exactly the answers of a sequential cluster — the two parallelism axes
// (shared-nothing fan-out and intra-server pipelining) compose without
// changing results.
func TestClusterIntraServerConcurrency(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const n, dim = 600, 4
	items := make([]store.Item, n)
	for i := range items {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = store.Item{ID: store.ItemID(i), Vec: v}
	}
	queries := make([]msq.Query, 6)
	for i := range queries {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		if i%2 == 0 {
			queries[i] = msq.Query{ID: uint64(i), Vec: v, Type: query.NewKNN(7)}
		} else {
			queries[i] = msq.Query{ID: uint64(i), Vec: v, Type: query.NewRange(0.5)}
		}
	}

	build := func(width int) *Cluster {
		c, err := New(items, Config{
			Servers:      3,
			Engine:       ScanEngine,
			Dim:          dim,
			PageCapacity: 16,
			Concurrency:  width,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	seqLists, _, err := build(1).MultiQueryAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	wideLists, _, err := build(4).MultiQueryAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqLists {
		a, b := seqLists[i].Answers(), wideLists[i].Answers()
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d answers", i, len(a), len(b))
		}
		for j := range a {
			if a[j].ID != b[j].ID || a[j].Dist != b[j].Dist {
				t.Errorf("query %d answer %d: (%d, %v) vs (%d, %v)",
					i, j, a[j].ID, a[j].Dist, b[j].ID, b[j].Dist)
			}
		}
	}
}
