package parallel

import (
	"math"
	"sort"
	"strings"
	"testing"
	"time"

	"metricdb/internal/dataset"
	"metricdb/internal/fault"
	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

func TestDecluster(t *testing.T) {
	items := dataset.Uniform(1, 100, 3)
	for _, strategy := range []Strategy{RoundRobin, RandomAssign, RangePartition} {
		parts, err := Decluster(items, 4, strategy, 42)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != 4 {
			t.Fatalf("%v: %d partitions", strategy, len(parts))
		}
		seen := make(map[store.ItemID]bool)
		total := 0
		for _, p := range parts {
			total += len(p)
			for _, it := range p {
				if seen[it.ID] {
					t.Fatalf("%v: item %d assigned twice", strategy, it.ID)
				}
				seen[it.ID] = true
			}
		}
		if total != 100 {
			t.Fatalf("%v: %d items after declustering", strategy, total)
		}
	}

	// Round-robin and range partitions must be balanced.
	for _, strategy := range []Strategy{RoundRobin, RangePartition} {
		parts, err := Decluster(items, 4, strategy, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range parts {
			if len(p) != 25 {
				t.Errorf("%v partition %d has %d items", strategy, i, len(p))
			}
		}
	}

	if _, err := Decluster(items, 0, RoundRobin, 0); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := Decluster(items, 2, Strategy(99), 0); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || RandomAssign.String() != "random" || RangePartition.String() != "range" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy has no diagnostic string")
	}
}

func TestNewValidation(t *testing.T) {
	items := dataset.Uniform(2, 50, 3)
	if _, err := New(items, Config{Servers: 2, Dim: 3, PageCapacity: 0}); err == nil {
		t.Error("zero page capacity accepted")
	}
	if _, err := New(items, Config{Servers: 2, Dim: 0, PageCapacity: 8}); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := New(items, Config{Servers: 0, Dim: 3, PageCapacity: 8}); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := New(items, Config{Servers: 2, Dim: 3, PageCapacity: 8, Engine: EngineKind("bogus")}); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestParallelMatchesSequential is the correctness core: merged parallel
// answers equal a sequential evaluation over the whole database, for both
// engines and several server counts.
func TestParallelMatchesSequential(t *testing.T) {
	const dim = 4
	items := dataset.Uniform(3, 500, dim)

	// Sequential reference.
	seqEngine, err := scan.New(items, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	seqProc, err := msq.New(seqEngine, vec.Euclidean{}, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}

	queries := make([]msq.Query, 8)
	qItems, err := dataset.SampleQueries(4, items, len(queries))
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range qItems {
		typ := query.NewKNN(6)
		if i%2 == 1 {
			typ = query.NewRange(0.4)
		}
		queries[i] = msq.Query{ID: uint64(it.ID), Vec: it.Vec, Type: typ}
	}
	want, _, err := seqProc.MultiQuery(queries)
	if err != nil {
		t.Fatal(err)
	}

	for _, kind := range []EngineKind{ScanEngine, XTreeEngine} {
		for _, s := range []int{1, 3, 4} {
			c, err := New(items, Config{
				Servers: s, Strategy: RoundRobin, Engine: kind,
				Dim: dim, PageCapacity: 16, BufferPages: 0,
			})
			if err != nil {
				t.Fatal(err)
			}
			if c.Servers() != s {
				t.Fatalf("Servers() = %d", c.Servers())
			}
			got, rep, err := c.MultiQueryAll(queries)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.PerServer) != s {
				t.Fatalf("report covers %d servers", len(rep.PerServer))
			}
			for qi := range queries {
				w, g := want[qi].Answers(), got[qi].Answers()
				if len(w) != len(g) {
					t.Fatalf("engine %s s=%d query %d: %d vs %d answers", kind, s, qi, len(g), len(w))
				}
				for j := range w {
					if w[j].ID != g[j].ID || math.Abs(w[j].Dist-g[j].Dist) > 1e-12 {
						t.Fatalf("engine %s s=%d query %d answer %d differs", kind, s, qi, j)
					}
				}
			}
		}
	}
}

func TestPerServerWorkShrinksWithServers(t *testing.T) {
	const dim = 6
	items := dataset.Uniform(5, 1200, dim)
	queries := make([]msq.Query, 10)
	qItems, err := dataset.SampleQueries(6, items, len(queries))
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range qItems {
		queries[i] = msq.Query{ID: uint64(it.ID), Vec: it.Vec, Type: query.NewKNN(5)}
	}

	run := func(s int) Report {
		c, err := New(items, Config{
			Servers: s, Strategy: RoundRobin, Engine: ScanEngine,
			Dim: dim, PageCapacity: 16, BufferPages: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := c.MultiQueryAll(queries)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	r1 := run(1)
	r4 := run(4)
	if r4.MaxPagesRead() >= r1.MaxPagesRead() {
		t.Errorf("busiest of 4 servers read %d pages, single server %d", r4.MaxPagesRead(), r1.MaxPagesRead())
	}
	if r4.MaxDistCalcs() >= r1.MaxDistCalcs() {
		t.Errorf("busiest of 4 servers computed %d distances, single server %d", r4.MaxDistCalcs(), r1.MaxDistCalcs())
	}
	// Total scan work is conserved across servers (same pages overall,
	// ± page-boundary rounding).
	if sum1, sum4 := r1.Sum().Query.PagesRead, r4.Sum().Query.PagesRead; absDiff(sum1, sum4) > 8 {
		t.Errorf("total pages: 1 server %d, 4 servers %d", sum1, sum4)
	}
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestSingle(t *testing.T) {
	const dim = 3
	items := dataset.Uniform(7, 300, dim)
	c, err := New(items, Config{
		Servers: 3, Strategy: RangePartition, Engine: XTreeEngine,
		Dim: dim, PageCapacity: 16, BufferPages: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := items[42].Vec
	res, _, err := c.Single(q, query.NewKNN(1))
	if err != nil {
		t.Fatal(err)
	}
	as := res.Answers()
	if len(as) != 1 || as[0].ID != 42 || as[0].Dist != 0 {
		t.Errorf("1-NN of a stored object = %+v", as)
	}
}

func TestReportSum(t *testing.T) {
	r := Report{PerServer: []ServerStats{
		{Query: msq.Stats{PagesRead: 3, DistCalcs: 10}, IO: store.IOStats{Reads: 3}},
		{Query: msq.Stats{PagesRead: 5, DistCalcs: 20}, IO: store.IOStats{Reads: 5}},
	}}
	sum := r.Sum()
	if sum.Query.PagesRead != 8 || sum.Query.DistCalcs != 30 || sum.IO.Reads != 8 {
		t.Errorf("Sum = %+v", sum)
	}
	if r.MaxPagesRead() != 5 {
		t.Errorf("MaxPagesRead = %d", r.MaxPagesRead())
	}
	if r.MaxDistCalcs() != 20 {
		t.Errorf("MaxDistCalcs = %d", r.MaxDistCalcs())
	}
}

// degradedFixture builds a 4-server cluster whose given servers sit on
// permanently failing disks, plus a batch of mixed queries and the
// fault-free reference answers. The items are returned too so tests can
// brute-force per-partition references (round-robin: item i lives on
// server i%4).
func degradedFixture(t *testing.T, failServers map[int]bool, cfg Config) (*Cluster, []msq.Query, []*query.AnswerList, []store.Item) {
	t.Helper()
	const dim = 4
	items := dataset.Uniform(21, 400, dim)
	queries := make([]msq.Query, 6)
	qItems, err := dataset.SampleQueries(22, items, len(queries))
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range qItems {
		typ := query.NewKNN(5)
		if i%2 == 1 {
			typ = query.NewRange(0.4)
		}
		queries[i] = msq.Query{ID: uint64(it.ID), Vec: it.Vec, Type: typ}
	}

	base := cfg
	base.Servers = 4
	base.Strategy = RoundRobin
	base.Engine = ScanEngine
	base.Dim = dim
	base.PageCapacity = 16
	base.BufferPages = 0

	clean := base
	clean.WrapDisk = nil
	ref, err := New(items, clean)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ref.MultiQueryAll(queries)
	if err != nil {
		t.Fatal(err)
	}

	base.WrapDisk = func(server int, src store.PageSource) (store.PageSource, error) {
		if !failServers[server] {
			return src, nil
		}
		return fault.Wrap(src, fault.Config{Seed: int64(server), ErrProb: 1})
	}
	c, err := New(items, base)
	if err != nil {
		t.Fatal(err)
	}
	return c, queries, want, items
}

// TestDegradedMerge is the acceptance scenario: with faults injected into
// 1 of s=4 servers, a batch returns a degraded result with coverage 3/4.
// Range answers are exact subsets of the fault-free answers; k-NN answers
// are the exact top-k over the surviving partitions (bounded-k-NN).
func TestDegradedMerge(t *testing.T) {
	c, queries, want, items := degradedFixture(t, map[int]bool{1: true}, Config{
		Degrade: true, Retries: 1, Backoff: time.Millisecond,
	})
	got, rep, err := c.MultiQueryAll(queries)
	if err != nil {
		t.Fatalf("degraded cluster errored: %v", err)
	}
	if !rep.Degraded {
		t.Fatal("report not marked degraded")
	}
	if rep.Servers != 4 || rep.Covered != 3 || rep.Coverage() != 0.75 {
		t.Fatalf("coverage: servers=%d covered=%d frac=%g", rep.Servers, rep.Covered, rep.Coverage())
	}
	if !strings.Contains(rep.Note(), "3/4") || !strings.Contains(rep.Note(), "sound subset") {
		t.Errorf("note = %q", rep.Note())
	}

	// Per-server health: server 1 failed after 2 attempts, others fine.
	for i, s := range rep.PerServer {
		if i == 1 {
			if s.Health.OK || s.Health.Attempts != 2 || !strings.Contains(s.Health.Err, "injected") {
				t.Errorf("server 1 health = %+v", s.Health)
			}
		} else if !s.Health.OK || s.Health.Attempts != 1 || s.Health.Err != "" {
			t.Errorf("server %d health = %+v", i, s.Health)
		}
	}

	// The covered partitions under RoundRobin with server 1 down are the
	// items whose index is not ≡ 1 (mod 4).
	var covered []store.Item
	for i, it := range items {
		if i%4 != 1 {
			covered = append(covered, it)
		}
	}
	metric := vec.Euclidean{}
	for qi, q := range queries {
		g := got[qi].Answers()
		if qi%2 == 1 {
			// Range query: the degraded list must be an exact subset of
			// the fault-free answers, with identical distances.
			ref := make(map[store.ItemID]float64, want[qi].Len())
			for _, a := range want[qi].Answers() {
				ref[a.ID] = a.Dist
			}
			if len(g) > want[qi].Len() {
				t.Fatalf("query %d: degraded range result has %d answers, fault-free %d", qi, len(g), want[qi].Len())
			}
			for _, a := range g {
				d, ok := ref[a.ID]
				if !ok {
					t.Fatalf("query %d: answer %d not in fault-free result", qi, a.ID)
				}
				if math.Abs(d-a.Dist) > 1e-12 {
					t.Fatalf("query %d: answer %d distance drifted", qi, a.ID)
				}
			}
			continue
		}
		// k-NN query: the degraded list is the exact top-k over the
		// covered partitions (bounded-k-NN over what survived).
		type cand struct {
			id   store.ItemID
			dist float64
		}
		cands := make([]cand, len(covered))
		for i, it := range covered {
			cands[i] = cand{it.ID, metric.Distance(q.Vec, it.Vec)}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].dist != cands[j].dist {
				return cands[i].dist < cands[j].dist
			}
			return cands[i].id < cands[j].id
		})
		const k = 5
		if len(g) != k {
			t.Fatalf("query %d: degraded k-NN result has %d answers, want %d", qi, len(g), k)
		}
		for j, a := range g {
			if a.ID != cands[j].id || math.Abs(a.Dist-cands[j].dist) > 1e-12 {
				t.Fatalf("query %d: rank %d = (%d, %g), want (%d, %g) over covered partitions",
					qi, j, a.ID, a.Dist, cands[j].id, cands[j].dist)
			}
		}
	}

	// The summed stats carry the degradation contract for upper layers.
	sum := rep.Sum()
	if !sum.Query.Degraded || sum.Query.PartitionsTotal != 4 || sum.Query.PartitionsAnswered != 3 {
		t.Errorf("summed stats = %+v", sum.Query)
	}
	if sum.Query.Coverage() != 0.75 {
		t.Errorf("stats coverage = %g", sum.Query.Coverage())
	}
}

// TestStrictModeFailsFast: without Degrade, one failing server fails the
// whole operation (the pre-existing contract).
func TestStrictModeFailsFast(t *testing.T) {
	c, queries, _, _ := degradedFixture(t, map[int]bool{2: true}, Config{})
	if _, _, err := c.MultiQueryAll(queries); err == nil || !strings.Contains(err.Error(), "server 2") {
		t.Fatalf("strict cluster returned %v", err)
	}
}

// TestAllServersFailingErrorsEvenWhenDegraded: coverage 0 is an error, not
// an empty result.
func TestAllServersFailingErrorsEvenWhenDegraded(t *testing.T) {
	c, queries, _, _ := degradedFixture(t, map[int]bool{0: true, 1: true, 2: true, 3: true}, Config{Degrade: true})
	if _, _, err := c.MultiQueryAll(queries); err == nil {
		t.Fatal("cluster with zero coverage returned a result")
	}
}

// TestRetryRecoversTransientFaults: a bounded fault budget is outlasted by
// retries and the final result is complete (coverage 1, not degraded) and
// identical to the fault-free answers.
func TestRetryRecoversTransientFaults(t *testing.T) {
	const dim = 4
	items := dataset.Uniform(23, 400, dim)
	queries := make([]msq.Query, 4)
	qItems, err := dataset.SampleQueries(24, items, len(queries))
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range qItems {
		queries[i] = msq.Query{ID: uint64(it.ID), Vec: it.Vec, Type: query.NewKNN(4)}
	}
	base := Config{
		Servers: 4, Strategy: RoundRobin, Engine: ScanEngine,
		Dim: dim, PageCapacity: 16, BufferPages: 0,
	}
	ref, err := New(items, base)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ref.MultiQueryAll(queries)
	if err != nil {
		t.Fatal(err)
	}

	faulted := base
	faulted.Degrade = true
	faulted.Retries = 3
	faulted.WrapDisk = func(server int, src store.PageSource) (store.PageSource, error) {
		if server != 0 {
			return src, nil
		}
		return fault.Wrap(src, fault.Config{ErrProb: 1, MaxFaults: 2})
	}
	c, err := New(items, faulted)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := c.MultiQueryAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded || rep.Coverage() != 1 {
		t.Fatalf("transient faults left the result degraded: %+v", rep)
	}
	if rep.PerServer[0].Health.Attempts < 2 {
		t.Errorf("server 0 recovered without retrying: %+v", rep.PerServer[0].Health)
	}
	for qi := range queries {
		w, g := want[qi].Answers(), got[qi].Answers()
		if len(w) != len(g) {
			t.Fatalf("query %d: %d vs %d answers", qi, len(g), len(w))
		}
		for j := range w {
			if w[j].ID != g[j].ID {
				t.Fatalf("query %d answer %d differs after retries", qi, j)
			}
		}
	}
}

// TestServerTimeout: an unmeetable per-server deadline fails every server,
// which is an error even in degraded mode (nothing survived).
func TestServerTimeout(t *testing.T) {
	const dim = 4
	items := dataset.Uniform(25, 600, dim)
	queries := []msq.Query{{ID: 1, Vec: items[0].Vec, Type: query.NewKNN(3)}}
	c, err := New(items, Config{
		Servers: 2, Strategy: RoundRobin, Engine: ScanEngine,
		Dim: dim, PageCapacity: 8, BufferPages: 0,
		Degrade: true, Timeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.MultiQueryAll(queries); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("timeout did not surface: %v", err)
	}
}
