package parallel

import (
	"math"
	"testing"

	"metricdb/internal/dataset"
	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

func TestDecluster(t *testing.T) {
	items := dataset.Uniform(1, 100, 3)
	for _, strategy := range []Strategy{RoundRobin, RandomAssign, RangePartition} {
		parts, err := Decluster(items, 4, strategy, 42)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != 4 {
			t.Fatalf("%v: %d partitions", strategy, len(parts))
		}
		seen := make(map[store.ItemID]bool)
		total := 0
		for _, p := range parts {
			total += len(p)
			for _, it := range p {
				if seen[it.ID] {
					t.Fatalf("%v: item %d assigned twice", strategy, it.ID)
				}
				seen[it.ID] = true
			}
		}
		if total != 100 {
			t.Fatalf("%v: %d items after declustering", strategy, total)
		}
	}

	// Round-robin and range partitions must be balanced.
	for _, strategy := range []Strategy{RoundRobin, RangePartition} {
		parts, err := Decluster(items, 4, strategy, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range parts {
			if len(p) != 25 {
				t.Errorf("%v partition %d has %d items", strategy, i, len(p))
			}
		}
	}

	if _, err := Decluster(items, 0, RoundRobin, 0); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := Decluster(items, 2, Strategy(99), 0); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || RandomAssign.String() != "random" || RangePartition.String() != "range" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy has no diagnostic string")
	}
}

func TestNewValidation(t *testing.T) {
	items := dataset.Uniform(2, 50, 3)
	if _, err := New(items, Config{Servers: 2, Dim: 3, PageCapacity: 0}); err == nil {
		t.Error("zero page capacity accepted")
	}
	if _, err := New(items, Config{Servers: 2, Dim: 0, PageCapacity: 8}); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := New(items, Config{Servers: 0, Dim: 3, PageCapacity: 8}); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := New(items, Config{Servers: 2, Dim: 3, PageCapacity: 8, Engine: EngineKind(9)}); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestParallelMatchesSequential is the correctness core: merged parallel
// answers equal a sequential evaluation over the whole database, for both
// engines and several server counts.
func TestParallelMatchesSequential(t *testing.T) {
	const dim = 4
	items := dataset.Uniform(3, 500, dim)

	// Sequential reference.
	seqEngine, err := scan.New(items, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	seqProc, err := msq.New(seqEngine, vec.Euclidean{}, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}

	queries := make([]msq.Query, 8)
	qItems, err := dataset.SampleQueries(4, items, len(queries))
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range qItems {
		typ := query.NewKNN(6)
		if i%2 == 1 {
			typ = query.NewRange(0.4)
		}
		queries[i] = msq.Query{ID: uint64(it.ID), Vec: it.Vec, Type: typ}
	}
	want, _, err := seqProc.MultiQuery(queries)
	if err != nil {
		t.Fatal(err)
	}

	for _, kind := range []EngineKind{ScanEngine, XTreeEngine} {
		for _, s := range []int{1, 3, 4} {
			c, err := New(items, Config{
				Servers: s, Strategy: RoundRobin, Engine: kind,
				Dim: dim, PageCapacity: 16, BufferPages: 0,
			})
			if err != nil {
				t.Fatal(err)
			}
			if c.Servers() != s {
				t.Fatalf("Servers() = %d", c.Servers())
			}
			got, rep, err := c.MultiQueryAll(queries)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.PerServer) != s {
				t.Fatalf("report covers %d servers", len(rep.PerServer))
			}
			for qi := range queries {
				w, g := want[qi].Answers(), got[qi].Answers()
				if len(w) != len(g) {
					t.Fatalf("engine %d s=%d query %d: %d vs %d answers", kind, s, qi, len(g), len(w))
				}
				for j := range w {
					if w[j].ID != g[j].ID || math.Abs(w[j].Dist-g[j].Dist) > 1e-12 {
						t.Fatalf("engine %d s=%d query %d answer %d differs", kind, s, qi, j)
					}
				}
			}
		}
	}
}

func TestPerServerWorkShrinksWithServers(t *testing.T) {
	const dim = 6
	items := dataset.Uniform(5, 1200, dim)
	queries := make([]msq.Query, 10)
	qItems, err := dataset.SampleQueries(6, items, len(queries))
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range qItems {
		queries[i] = msq.Query{ID: uint64(it.ID), Vec: it.Vec, Type: query.NewKNN(5)}
	}

	run := func(s int) Report {
		c, err := New(items, Config{
			Servers: s, Strategy: RoundRobin, Engine: ScanEngine,
			Dim: dim, PageCapacity: 16, BufferPages: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := c.MultiQueryAll(queries)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	r1 := run(1)
	r4 := run(4)
	if r4.MaxPagesRead() >= r1.MaxPagesRead() {
		t.Errorf("busiest of 4 servers read %d pages, single server %d", r4.MaxPagesRead(), r1.MaxPagesRead())
	}
	if r4.MaxDistCalcs() >= r1.MaxDistCalcs() {
		t.Errorf("busiest of 4 servers computed %d distances, single server %d", r4.MaxDistCalcs(), r1.MaxDistCalcs())
	}
	// Total scan work is conserved across servers (same pages overall,
	// ± page-boundary rounding).
	if sum1, sum4 := r1.Sum().Query.PagesRead, r4.Sum().Query.PagesRead; absDiff(sum1, sum4) > 8 {
		t.Errorf("total pages: 1 server %d, 4 servers %d", sum1, sum4)
	}
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestSingle(t *testing.T) {
	const dim = 3
	items := dataset.Uniform(7, 300, dim)
	c, err := New(items, Config{
		Servers: 3, Strategy: RangePartition, Engine: XTreeEngine,
		Dim: dim, PageCapacity: 16, BufferPages: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := items[42].Vec
	res, _, err := c.Single(q, query.NewKNN(1))
	if err != nil {
		t.Fatal(err)
	}
	as := res.Answers()
	if len(as) != 1 || as[0].ID != 42 || as[0].Dist != 0 {
		t.Errorf("1-NN of a stored object = %+v", as)
	}
}

func TestReportSum(t *testing.T) {
	r := Report{PerServer: []ServerStats{
		{Query: msq.Stats{PagesRead: 3, DistCalcs: 10}, IO: store.IOStats{Reads: 3}},
		{Query: msq.Stats{PagesRead: 5, DistCalcs: 20}, IO: store.IOStats{Reads: 5}},
	}}
	sum := r.Sum()
	if sum.Query.PagesRead != 8 || sum.Query.DistCalcs != 30 || sum.IO.Reads != 8 {
		t.Errorf("Sum = %+v", sum)
	}
	if r.MaxPagesRead() != 5 {
		t.Errorf("MaxPagesRead = %d", r.MaxPagesRead())
	}
	if r.MaxDistCalcs() != 20 {
		t.Errorf("MaxDistCalcs = %d", r.MaxDistCalcs())
	}
}
