// Package parallel simulates the shared-nothing parallel query processor of
// §5.3: the database is declustered over s servers, each holding its
// partition on a private simulated disk with a private engine, and every
// similarity query runs on all servers concurrently against s-times smaller
// data. Per-query answers are merged, which is correct because every
// server returns (at least) its local top answers and the global result is
// contained in their union.
//
// The paper's headline effect — parallel speed-up beyond s — comes from
// running blocks of m·s queries (s-times the memory buffers s-times the
// answers); the benchmark harness drives that, this package provides the
// machinery and per-server cost accounting.
package parallel

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"metricdb/internal/engine"
	"metricdb/internal/engines"
	"metricdb/internal/msq"
	"metricdb/internal/obs"
	"metricdb/internal/query"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// Strategy selects how items are declustered over the servers.
type Strategy int

// Declustering strategies (a future-work topic of the paper, exposed for
// the ablation benchmarks).
const (
	// RoundRobin deals items to servers in turn — balanced and
	// distribution-agnostic, the default.
	RoundRobin Strategy = iota
	// RandomAssign places each item on a uniformly random server.
	RandomAssign
	// RangePartition sorts by the first coordinate and assigns contiguous
	// chunks — spatially clustered partitions, the adversarial case for
	// load balance.
	RangePartition
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case RandomAssign:
		return "random"
	case RangePartition:
		return "range"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Decluster splits items over s servers according to the strategy. Items
// keep their global IDs.
func Decluster(items []store.Item, s int, strategy Strategy, seed int64) ([][]store.Item, error) {
	if s < 1 {
		return nil, fmt.Errorf("parallel: need at least one server, got %d", s)
	}
	parts := make([][]store.Item, s)
	switch strategy {
	case RoundRobin:
		for i, it := range items {
			parts[i%s] = append(parts[i%s], it)
		}
	case RandomAssign:
		rng := rand.New(rand.NewSource(seed))
		for _, it := range items {
			k := rng.Intn(s)
			parts[k] = append(parts[k], it)
		}
	case RangePartition:
		sorted := append([]store.Item(nil), items...)
		sort.Slice(sorted, func(i, j int) bool {
			a, b := sorted[i].Vec, sorted[j].Vec
			if len(a) > 0 && len(b) > 0 && a[0] != b[0] {
				return a[0] < b[0]
			}
			return sorted[i].ID < sorted[j].ID
		})
		per := (len(sorted) + s - 1) / s
		for i, it := range sorted {
			k := i / per
			if k >= s {
				k = s - 1
			}
			parts[k] = append(parts[k], it)
		}
	default:
		return nil, fmt.Errorf("parallel: unknown strategy %v", strategy)
	}
	return parts, nil
}

// EngineKind selects the per-server physical organization. It is the
// engine registry's kind, so every registered engine works per server.
type EngineKind = engines.Kind

// Engine kinds (aliases of the registry's names; the zero value "" selects
// the scan).
const (
	// ScanEngine gives each server a sequential scan.
	ScanEngine = engines.Scan
	// XTreeEngine gives each server an X-tree.
	XTreeEngine = engines.XTree
	// VAFileEngine gives each server a vector-approximation file.
	VAFileEngine = engines.VAFile
	// PivotEngine gives each server a LAESA pivot table.
	PivotEngine = engines.Pivot
	// PMTreeEngine gives each server a PM-tree.
	PMTreeEngine = engines.PMTree
)

// Config parameterizes a cluster.
type Config struct {
	Servers      int
	Strategy     Strategy
	Seed         int64
	Engine       EngineKind
	Dim          int
	PageCapacity int
	// BufferPages per server; negative selects the 10 % default, zero
	// disables buffering.
	BufferPages int
	Metric      vec.Metric
	// Avoidance is forwarded to each server's processor.
	Avoidance msq.AvoidanceMode
	// Concurrency is each server's intra-server pipeline width (the msq
	// Concurrency knob): inter-server parallelism comes from the cluster
	// fan-out, intra-server parallelism from this. 0 and 1 keep the
	// servers sequential inside.
	Concurrency int

	// WrapDisk, when non-nil, interposes on each server's freshly built
	// disk — the fault-injection hook. It is called once per server with
	// the server index, so faults can be confined to chosen partitions;
	// returning the source unchanged leaves that server on reliable
	// storage.
	WrapDisk func(server int, src store.PageSource) (store.PageSource, error)

	// Timeout bounds each server's work per cluster operation (per
	// attempt); zero means no timeout. A timed-out attempt counts as a
	// failure and is retried like any other.
	Timeout time.Duration
	// Retries is the number of additional attempts after a failed or
	// timed-out server call.
	Retries int
	// Backoff is the wait before the first retry, doubling on each
	// subsequent one. Zero retries immediately.
	Backoff time.Duration
	// Degrade allows partial results: when a server still fails after all
	// retries, the cluster merges the surviving servers' answers and
	// reports a degraded result (coverage < 1) instead of an error. With
	// Degrade false any server failure fails the whole operation, the
	// pre-existing strict behavior.
	Degrade bool

	// Tracer, when non-nil, is installed on every server's processor and
	// pager, and additionally receives one server_call span per server
	// attempt from the cluster fan-out. Nil disables tracing at no cost.
	// When the tracer retains distributed spans, every cluster operation
	// records a root span with one child span per server attempt (retries
	// are sibling attempt spans), viewable stitched at /debug/traces.
	Tracer *obs.Tracer
	// ServerTracers, when non-empty, must hold one tracer per server;
	// server i's processor and pager then report to ServerTracers[i]
	// instead of Tracer, so per-server phase costs stay separable. The
	// coordinator-side spans still go to Tracer. RegisterMetrics exposes
	// the per-server histograms under server="i" labels.
	ServerTracers []*obs.Tracer
}

// server is one shared-nothing node.
type server struct {
	proc *msq.Processor
	eng  engine.Engine
}

// Cluster is a set of shared-nothing servers answering similarity queries
// in parallel.
type Cluster struct {
	servers []*server
	metric  vec.Metric
	cfg     Config
}

// New declusters items and builds one engine and processor per server.
func New(items []store.Item, cfg Config) (*Cluster, error) {
	if cfg.Metric == nil {
		cfg.Metric = vec.Euclidean{}
	}
	if cfg.PageCapacity < 1 {
		return nil, fmt.Errorf("parallel: page capacity must be >= 1, got %d", cfg.PageCapacity)
	}
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("parallel: dimension must be >= 1, got %d", cfg.Dim)
	}
	if len(cfg.ServerTracers) != 0 && len(cfg.ServerTracers) != cfg.Servers {
		return nil, fmt.Errorf("parallel: ServerTracers must hold one tracer per server (%d), got %d",
			cfg.Servers, len(cfg.ServerTracers))
	}
	parts, err := Decluster(items, cfg.Servers, cfg.Strategy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	c := &Cluster{metric: cfg.Metric, servers: make([]*server, cfg.Servers), cfg: cfg}
	for i, part := range parts {
		var wrap func(store.PageSource) (store.PageSource, error)
		if cfg.WrapDisk != nil {
			si := i
			wrap = func(src store.PageSource) (store.PageSource, error) {
				return cfg.WrapDisk(si, src)
			}
		}
		kind := cfg.Engine
		if kind == "" {
			kind = ScanEngine
		}
		// The per-server buffer sentinel (negative = the 10 % default)
		// is resolved against the partition's own page count.
		buf := cfg.BufferPages
		if buf < 0 {
			buf = store.DefaultBufferPages((len(part) + cfg.PageCapacity - 1) / cfg.PageCapacity)
		}
		eng, err := engines.Build(engines.Spec{
			Kind:         kind,
			Items:        part,
			Dim:          cfg.Dim,
			Metric:       cfg.Metric,
			PageCapacity: cfg.PageCapacity,
			BufferPages:  buf,
			WrapDisk:     wrap,
		})
		if err != nil {
			return nil, fmt.Errorf("parallel: server %d: %w", i, err)
		}
		// Each server gets its own counting metric so per-server CPU
		// cost can be reported.
		proc, err := msq.New(eng, vec.NewCounting(cfg.Metric), msq.Options{Avoidance: cfg.Avoidance, Concurrency: cfg.Concurrency})
		if err != nil {
			return nil, fmt.Errorf("parallel: server %d: %w", i, err)
		}
		switch {
		case len(cfg.ServerTracers) > 0:
			if cfg.ServerTracers[i] != nil {
				proc = proc.WithTracer(cfg.ServerTracers[i])
			}
		case cfg.Tracer != nil:
			proc = proc.WithTracer(cfg.Tracer)
		}
		c.servers[i] = &server{proc: proc, eng: eng}
	}
	return c, nil
}

// Servers returns the number of servers.
func (c *Cluster) Servers() int { return len(c.servers) }

// ServerHealth describes one server's fate during a cluster operation.
type ServerHealth struct {
	// OK is true when the server contributed answers.
	OK bool
	// Attempts counts calls made to the server (1 for a first-try
	// success).
	Attempts int
	// Err holds the final failure, empty on success.
	Err string
	// Latency is the wall time of the server's final attempt — the
	// successful one, or the last failed one. Retried attempts' backoff
	// waits are not included.
	Latency time.Duration
}

// ServerStats is the per-server cost and health of one cluster operation.
type ServerStats struct {
	Query  msq.Stats
	IO     store.IOStats
	Health ServerHealth
}

// Report carries per-server costs and the degradation state of one
// parallel operation.
type Report struct {
	PerServer []ServerStats
	// Degraded is true when at least one server failed and the merged
	// result covers only the surviving partitions.
	Degraded bool
	// Servers and Covered count partitions total and partitions answered;
	// Covered/Servers is the coverage fraction of the merged result.
	Servers int
	Covered int
}

// Coverage returns the fraction of partitions that contributed answers
// (1 when the report predates any operation).
func (r Report) Coverage() float64 {
	if r.Servers == 0 {
		return 1
	}
	return float64(r.Covered) / float64(r.Servers)
}

// Note states the correctness contract of the report's result. Degraded
// results exploit the union-merge property: every answer returned was
// truly within the query's constraint on some surviving partition, so
// answer lists are a sound subset of the fault-free result; k-NN answers
// become "up to k nearest among the covered partitions" (bounded-k-NN
// semantics).
func (r Report) Note() string {
	if !r.Degraded {
		return "complete: all partitions answered"
	}
	return fmt.Sprintf("degraded: %d/%d partitions answered; answers are a sound subset "+
		"of the fault-free result, k-NN lists are bounded-k-NN over the covered partitions",
		r.Covered, r.Servers)
}

// Sum returns the total work across servers (throughput view). The summed
// query stats carry the report's degradation state and coverage counters.
func (r Report) Sum() ServerStats {
	var out ServerStats
	for _, s := range r.PerServer {
		out.Query = out.Query.Add(s.Query)
		out.IO = out.IO.Add(s.IO)
	}
	out.Query.Degraded = r.Degraded
	out.Query.PartitionsTotal = int64(r.Servers)
	out.Query.PartitionsAnswered = int64(r.Covered)
	return out
}

// MaxPagesRead returns the page count of the busiest server — the
// latency-determining quantity in a shared-nothing setting.
func (r Report) MaxPagesRead() int64 {
	var m int64
	for _, s := range r.PerServer {
		if s.Query.PagesRead > m {
			m = s.Query.PagesRead
		}
	}
	return m
}

// MaxDistCalcs returns the distance-calculation count (including matrix) of
// the busiest server.
func (r Report) MaxDistCalcs() int64 {
	var m int64
	for _, s := range r.PerServer {
		if c := s.Query.TotalDistCalcs(); c > m {
			m = c
		}
	}
	return m
}

// MultiQueryAll evaluates the batch to completion on every server in
// parallel and merges the per-server answers into global answers, aligned
// with queries.
//
// Each server call is bounded by Config.Timeout and retried up to
// Config.Retries times with exponential backoff. When a server still fails
// and Config.Degrade is set, the surviving servers' answers are merged
// into a degraded result (Report.Degraded, coverage < 1): by the
// union-merge property every returned answer genuinely satisfies its query
// on a covered partition, so the lists are a sound subset of the
// fault-free result. Without Degrade any persistent server failure fails
// the whole operation.
func (c *Cluster) MultiQueryAll(queries []msq.Query) ([]*query.AnswerList, Report, error) {
	return c.MultiQueryAllContext(context.Background(), queries)
}

// MultiQueryAllContext is MultiQueryAll with cancellation: ctx bounds the
// whole cluster operation. Cancellation aborts every server's page loop,
// interrupts retry backoff waits, and suppresses further retries; the
// operation then fails (or degrades, under Config.Degrade with surviving
// servers) with the context error recorded per server.
func (c *Cluster) MultiQueryAllContext(ctx context.Context, queries []msq.Query) ([]*query.AnswerList, Report, error) {
	report := Report{PerServer: make([]ServerStats, len(c.servers)), Servers: len(c.servers)}
	perServer := make([][]*query.AnswerList, len(c.servers))
	errs := make([]error, len(c.servers))

	// The batch's root distributed span: every server attempt records a
	// child span under it, so retries show up as sibling attempt spans of
	// one trace. Nil tracers (or disabled span retention) make root nil
	// and every span call below a no-op.
	root := c.cfg.Tracer.StartSpan("multi_all")
	defer root.End()

	var wg sync.WaitGroup
	for i, srv := range c.servers {
		wg.Add(1)
		go func(i int, srv *server) {
			defer wg.Done()
			attempts := 0
			backoff := c.cfg.Backoff
			var lastErr error
			var lastLatency time.Duration
			for try := 0; try <= c.cfg.Retries; try++ {
				if try > 0 {
					if backoff > 0 {
						select {
						case <-time.After(backoff):
						case <-ctx.Done():
						}
						backoff *= 2
					}
					if err := ctx.Err(); err != nil {
						lastErr = err
						break
					}
				}
				attempts++
				span := root.StartChild("server_call")
				span.SetServer(fmt.Sprintf("srv%d", i))
				span.SetAttempt(attempts)
				start := time.Now()
				res, st, err := c.callServer(ctx, srv, queries)
				lastLatency = time.Since(start)
				c.cfg.Tracer.Observe(obs.PhaseServerCall, lastLatency)
				if err != nil {
					span.SetErr(err.Error())
				}
				span.End()
				if err == nil {
					perServer[i] = res
					st.Health = ServerHealth{OK: true, Attempts: attempts, Latency: lastLatency}
					report.PerServer[i] = st
					return
				}
				lastErr = err
				if ctx.Err() != nil {
					break // canceled: further retries cannot succeed
				}
			}
			report.PerServer[i].Health = ServerHealth{Attempts: attempts, Err: lastErr.Error(), Latency: lastLatency}
			errs[i] = lastErr
		}(i, srv)
	}
	wg.Wait()

	var firstErr error
	firstIdx := -1
	for i, err := range errs {
		if err == nil {
			report.Covered++
		} else if firstErr == nil {
			firstErr, firstIdx = err, i
		}
	}
	if firstErr != nil {
		if !c.cfg.Degrade || report.Covered == 0 {
			return nil, report, fmt.Errorf("parallel: server %d: %w", firstIdx, firstErr)
		}
		report.Degraded = true
	}

	merged := make([]*query.AnswerList, len(queries))
	for qi := range queries {
		l := query.NewAnswerList(queries[qi].Type)
		for si := range c.servers {
			if errs[si] != nil {
				continue
			}
			for _, a := range perServer[si][qi].Answers() {
				l.Consider(a.ID, a.Dist)
			}
		}
		merged[qi] = l
	}
	return merged, report, nil
}

// callServer runs one batch on one server, optionally bounded by the
// configured timeout. The query processor checks its context once per page,
// but a single page read may stall indefinitely (a hung simulated disk), so
// the timeout still races a timer against the attempt: on expiry the attempt
// is abandoned — its goroutine aborts at its next page barrier via the
// canceled attempt context, any I/O it issued still shows up in the server's
// cumulative disk statistics, and its result is discarded.
func (c *Cluster) callServer(ctx context.Context, srv *server, queries []msq.Query) ([]*query.AnswerList, ServerStats, error) {
	type outcome struct {
		res []*query.AnswerList
		st  ServerStats
		err error
	}
	run := func(ctx context.Context) outcome {
		ioBefore := srv.eng.Pager().Disk().Stats()
		res, st, err := srv.proc.MultiQueryContext(ctx, queries)
		io := diffIO(srv.eng.Pager().Disk().Stats(), ioBefore)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{res: res, st: ServerStats{Query: st, IO: io}}
	}
	if c.cfg.Timeout <= 0 {
		o := run(ctx)
		return o.res, o.st, o.err
	}
	attemptCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, 1)
	go func() { ch <- run(attemptCtx) }()
	timer := time.NewTimer(c.cfg.Timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.res, o.st, o.err
	case <-timer.C:
		cancel() // let the abandoned attempt stop at its next page barrier
		return nil, ServerStats{}, fmt.Errorf("parallel: server timed out after %v", c.cfg.Timeout)
	}
}

// Single evaluates one similarity query on all servers and merges the
// results.
func (c *Cluster) Single(q vec.Vector, t query.Type) (*query.AnswerList, Report, error) {
	return c.SingleContext(context.Background(), q, t)
}

// SingleContext is Single with cancellation (see MultiQueryAllContext).
func (c *Cluster) SingleContext(ctx context.Context, q vec.Vector, t query.Type) (*query.AnswerList, Report, error) {
	res, rep, err := c.MultiQueryAllContext(ctx, []msq.Query{{ID: 0, Vec: q, Type: t}})
	if err != nil {
		return nil, rep, err
	}
	return res[0], rep, nil
}

// RegisterMetrics registers the cluster's per-server live counters on reg
// under server="i" labels — disk reads, buffer-pool hits/misses/evictions,
// and distance-calculation totals — and, when Config.ServerTracers is set,
// attaches each server's tracer so its phase histograms (with p50/p95/p99
// summaries) appear in the same exposition. One scrape of the coordinator's
// registry then covers the whole cluster.
func (c *Cluster) RegisterMetrics(reg *obs.Registry) {
	for i, srv := range c.servers {
		labels := fmt.Sprintf("server=%q", fmt.Sprint(i))
		pager := srv.eng.Pager()
		metric := srv.proc.Metric()
		reg.Counter("metricdb_server_disk_reads_total", labels,
			"Simulated-disk page reads on one server.",
			func() float64 { return float64(pager.Disk().Stats().Reads) })
		reg.Counter("metricdb_server_dist_calcs_total", labels,
			"Object distance calculations on one server.",
			func() float64 { return float64(metric.Count()) })
		reg.Counter("metricdb_server_dist_abandoned_total", labels,
			"Early-abandoned distance calculations on one server.",
			func() float64 { return float64(metric.Abandoned()) })
		if buf := pager.Buffer(); buf != nil {
			reg.Counter("metricdb_server_buffer_hits_total", labels,
				"Buffer-pool hits on one server.",
				func() float64 { h, _, _ := buf.HitRate(); return float64(h) })
			reg.Counter("metricdb_server_buffer_misses_total", labels,
				"Buffer-pool misses on one server.",
				func() float64 { _, m, _ := buf.HitRate(); return float64(m) })
			reg.Counter("metricdb_server_buffer_evictions_total", labels,
				"Buffer-pool LRU evictions on one server.",
				func() float64 { return float64(buf.Evictions()) })
		}
		if i < len(c.cfg.ServerTracers) && c.cfg.ServerTracers[i] != nil {
			reg.AttachTracer(labels, c.cfg.ServerTracers[i])
		}
	}
}

func diffIO(after, before store.IOStats) store.IOStats {
	return store.IOStats{
		Reads:     after.Reads - before.Reads,
		SeqReads:  after.SeqReads - before.SeqReads,
		RandReads: after.RandReads - before.RandReads,
	}
}
