package parallel

import (
	"strings"
	"testing"

	"metricdb/internal/dataset"
	"metricdb/internal/fault"
	"metricdb/internal/msq"
	"metricdb/internal/obs"
	"metricdb/internal/query"
	"metricdb/internal/store"
)

// traceWorkload builds a small cluster workload shared by the trace tests.
func traceWorkload(t *testing.T) ([]store.Item, []msq.Query) {
	t.Helper()
	const dim = 3
	items := dataset.Uniform(31, 300, dim)
	qItems, err := dataset.SampleQueries(32, items, 3)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]msq.Query, len(qItems))
	for i, it := range qItems {
		queries[i] = msq.Query{ID: uint64(it.ID), Vec: it.Vec, Type: query.NewKNN(4)}
	}
	return items, queries
}

// TestClusterTraceWithRetrySiblings: one batch under a transient fault on
// server 0 records a single trace whose root has one server_call child per
// server attempt — the failed attempt and its retry appear as siblings.
func TestClusterTraceWithRetrySiblings(t *testing.T) {
	items, queries := traceWorkload(t)
	const servers = 3
	tr := obs.New(obs.Config{SlowQueryThreshold: -1, Node: "coordinator"})
	c, err := New(items, Config{
		Servers: servers, Strategy: RoundRobin, Engine: ScanEngine,
		Dim: 3, PageCapacity: 16, BufferPages: 0,
		Retries: 2, Tracer: tr,
		WrapDisk: func(server int, src store.PageSource) (store.PageSource, error) {
			if server != 0 {
				return src, nil
			}
			return fault.Wrap(src, fault.Config{ErrProb: 1, MaxFaults: 1})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, rep, err := c.MultiQueryAll(queries); err != nil {
		t.Fatal(err)
	} else if rep.Degraded {
		t.Fatalf("transient fault left the result degraded: %+v", rep)
	}

	ids := tr.TraceIDs()
	if len(ids) != 1 {
		t.Fatalf("TraceIDs = %v, want exactly one trace for one batch", ids)
	}
	tree := tr.Trace(ids[0])
	if tree == nil || tree.Name != "multi_all" {
		t.Fatalf("stitched root = %+v", tree)
	}
	// servers calls + 1 retry of server 0.
	if len(tree.Children) != servers+1 {
		t.Fatalf("root has %d children, want %d", len(tree.Children), servers+1)
	}
	var failed, retried int
	for _, ch := range tree.Children {
		if ch.Name != "server_call" {
			t.Errorf("child span %q, want server_call", ch.Name)
		}
		if ch.Err != "" {
			failed++
			if ch.Node != "srv0" || ch.Attempt != 1 {
				t.Errorf("failed span = %+v, want srv0 attempt 1", ch.DistSpan)
			}
		}
		if ch.Attempt > 1 {
			retried++
			if ch.Node != "srv0" {
				t.Errorf("retry span on %q, want srv0", ch.Node)
			}
		}
	}
	if failed != 1 || retried != 1 {
		t.Errorf("trace shows %d failed and %d retry spans, want 1 and 1", failed, retried)
	}
}

// TestClusterRegisterMetricsLabels: a coordinator scrape exposes every
// server's live counters and phase histograms under server="i" labels.
func TestClusterRegisterMetricsLabels(t *testing.T) {
	items, queries := traceWorkload(t)
	const servers = 2
	coord := obs.New(obs.Config{SlowQueryThreshold: -1, Node: "coordinator"})
	serverTrs := make([]*obs.Tracer, servers)
	for i := range serverTrs {
		serverTrs[i] = obs.New(obs.Config{SlowQueryThreshold: -1})
	}
	c, err := New(items, Config{
		Servers: servers, Strategy: RoundRobin, Engine: ScanEngine,
		Dim: 3, PageCapacity: 16, BufferPages: 4,
		Tracer: coord, ServerTracers: serverTrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.MultiQueryAll(queries); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry(coord)
	c.RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`metricdb_server_disk_reads_total{server="0"}`,
		`metricdb_server_disk_reads_total{server="1"}`,
		`metricdb_server_dist_calcs_total{server="0"}`,
		`metricdb_server_buffer_hits_total{server="1"}`,
		obs.PhaseHistogramMetric + `_count{phase="kernel",server="0"}`,
		obs.PhaseQuantileMetric + `{phase="kernel",quantile="0.99",server="1"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}
