package dataset

import (
	"fmt"
	"os"

	"metricdb/internal/store"
)

// SaveOptions parameterizes SaveDir.
type SaveOptions struct {
	// PageCapacity is the pagination capacity; 0 derives it from 32 KB
	// blocks at the data's dimensionality (the paper's block size).
	PageCapacity int
	// Attrs is recorded in the manifest for provenance (generator kind,
	// seed, …).
	Attrs map[string]string
	// Hook is the crash-fault seam forwarded to store.WriteDataset
	// (tests interrupt a build at individual filesystem operations
	// through it).
	Hook func(op store.FileOp, name string) error
	// NoSync skips fsyncs; only for tests that build many throwaway
	// datasets.
	NoSync bool
	// Columnar writes version-2 columnar page records (contiguous
	// float64 blocks). Implied by F32 and QuantBits.
	Columnar bool
	// F32 additionally writes the float32 sibling section per page.
	F32 bool
	// QuantBits, when 1..8, additionally writes quantized code sections
	// on a grid derived from the data's coordinate bounds.
	QuantBits int
}

// SaveDir persists items as a dataset directory in the on-disk format
// (superblock manifest + checksummed page file), paginating them in order
// with consecutive page IDs. The build is crash-safe: it becomes visible
// only through the atomic manifest rename, and an interrupted build leaves
// any previously published dataset intact (see store.WriteDataset).
func SaveDir(dir string, items []store.Item, opts SaveOptions) error {
	dim := 0
	if len(items) > 0 {
		dim = items[0].Vec.Dim()
	}
	for i := range items {
		if items[i].Vec.Dim() != dim {
			return fmt.Errorf("dataset: item %d has dimension %d, item 0 has %d", i, items[i].Vec.Dim(), dim)
		}
	}
	capacity := opts.PageCapacity
	if capacity == 0 {
		capacity = store.PageCapacityForBlockSize(32768, dim)
	}
	pages, err := store.Paginate(items, capacity)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	meta := store.DatasetMeta{Dim: dim, PageCapacity: capacity, Attrs: opts.Attrs,
		Columnar: opts.Columnar, F32: opts.F32, QuantBits: opts.QuantBits}
	if err := store.WriteDataset(dir, pages, meta, store.WriteOptions{Hook: opts.Hook, NoSync: opts.NoSync}); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return nil
}

// LoadDir loads every item of a dataset directory, verifying each page's
// checksum on the way. Items come back in storage order (the order SaveDir
// received them).
func LoadDir(dir string) ([]store.Item, error) {
	fd, err := store.OpenFileDisk(dir, store.FileDiskOptions{})
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer fd.Close() //nolint:errcheck
	man := fd.Manifest()
	items := make([]store.Item, 0, man.Items)
	for pid := 0; pid < fd.NumPages(); pid++ {
		p, err := fd.Read(store.PageID(pid))
		if err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
		items = append(items, p.Items...)
	}
	if len(items) != man.Items {
		return nil, fmt.Errorf("dataset: manifest promises %d items, pages hold %d", man.Items, len(items))
	}
	return items, nil
}

// ReadAny loads a dataset from either storage format: a directory in the
// persistent page-store format (SaveDir / msqgen), or a legacy gob file
// (WriteFile). Existing gob datasets keep working unchanged.
func ReadAny(path string) ([]store.Item, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if st.IsDir() {
		return LoadDir(path)
	}
	return ReadFile(path)
}
