package dataset

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metricdb/internal/store"
	"metricdb/internal/vec"
)

func TestUniformDeterministicAndInRange(t *testing.T) {
	a := Uniform(42, 500, 8)
	b := Uniform(42, 500, 8)
	if len(a) != 500 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i].ID != store.ItemID(i) {
			t.Fatalf("item %d has ID %d", i, a[i].ID)
		}
		if !a[i].Vec.Equal(b[i].Vec) {
			t.Fatal("same seed produced different data")
		}
		for _, x := range a[i].Vec {
			if x < 0 || x >= 1 {
				t.Fatalf("coordinate %v outside [0,1)", x)
			}
		}
	}
	c := Uniform(43, 500, 8)
	if a[0].Vec.Equal(c[0].Vec) {
		t.Error("different seeds produced identical data")
	}
}

func TestClusteredValidation(t *testing.T) {
	bad := []ClusteredConfig{
		{N: -1, Dim: 4, Clusters: 2},
		{N: 10, Dim: 0, Clusters: 2},
		{N: 10, Dim: 4, Clusters: 0},
		{N: 10, Dim: 4, Clusters: 2, NoiseFraction: 1},
		{N: 10, Dim: 4, Clusters: 2, Spread: -1},
	}
	for _, cfg := range bad {
		if _, err := Clustered(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestClusteredIsActuallyClustered(t *testing.T) {
	items, err := Clustered(ClusteredConfig{Seed: 1, N: 2000, Dim: 16, Clusters: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Average intra-cluster distance must be much smaller than the
	// average inter-cluster distance.
	m := vec.Euclidean{}
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < 300; i++ {
		for j := i + 1; j < 300; j++ {
			d := m.Distance(items[i].Vec, items[j].Vec)
			if items[i].Label == items[j].Label {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 {
		t.Fatal("labels missing")
	}
	if intra/float64(nIntra) >= 0.5*inter/float64(nInter) {
		t.Errorf("intra %.3f vs inter %.3f: not clustered", intra/float64(nIntra), inter/float64(nInter))
	}
}

func TestClusteredHistogram(t *testing.T) {
	items, err := Clustered(ClusteredConfig{Seed: 2, N: 100, Dim: 64, Clusters: 3, Histogram: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		var sum float64
		for _, x := range it.Vec {
			if x < 0 {
				t.Fatal("negative histogram bin")
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("histogram sums to %v", sum)
		}
	}
}

func TestClusteredNoise(t *testing.T) {
	items, err := Clustered(ClusteredConfig{Seed: 3, N: 1000, Dim: 4, Clusters: 2, NoiseFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	noise := 0
	for _, it := range items {
		if it.Label == -1 {
			noise++
		}
	}
	if noise < 200 || noise > 400 {
		t.Errorf("noise count %d, want ≈300", noise)
	}
}

func TestSampleQueries(t *testing.T) {
	items := Uniform(4, 100, 3)
	qs, err := SampleQueries(5, items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 10 {
		t.Fatalf("len = %d", len(qs))
	}
	seen := make(map[store.ItemID]bool)
	for _, q := range qs {
		if seen[q.ID] {
			t.Fatal("duplicate query object")
		}
		seen[q.ID] = true
	}
	if _, err := SampleQueries(5, items, 101); err == nil {
		t.Error("oversampling accepted")
	}
	qs2, err := SampleQueries(5, items, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if qs[i].ID != qs2[i].ID {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestSessions(t *testing.T) {
	a := Sessions(7, 50)
	b := Sessions(7, 50)
	if len(a) != 50 {
		t.Fatalf("len = %d", len(a))
	}
	for i, s := range a {
		if !strings.HasPrefix(s, "/") {
			t.Fatalf("session %q is not a path", s)
		}
		if s != b[i] {
			t.Fatal("sessions not deterministic")
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.gob")
	items := Uniform(8, 200, 5)
	items[3].Label = 7

	if err := WriteFile(path, items); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("read %d items, wrote %d", len(got), len(items))
	}
	for i := range items {
		if got[i].ID != items[i].ID || got[i].Label != items[i].Label || !got[i].Vec.Equal(items[i].Vec) {
			t.Fatalf("item %d differs after round trip", i)
		}
	}
}

func TestReadFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := writeJunk(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("garbage file accepted")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func writeJunk(path string) error {
	return writeBytes(path, []byte("not a gob stream"))
}

func writeBytes(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

func TestNearUniformValidation(t *testing.T) {
	if _, err := NearUniform(1, 10, 0, 1, 0); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := NearUniform(1, 10, 4, 0, 0); err == nil {
		t.Error("zero intrinsic accepted")
	}
	if _, err := NearUniform(1, 10, 4, 5, 0); err == nil {
		t.Error("intrinsic > dim accepted")
	}
	if _, err := NearUniform(1, 10, 4, 2, -1); err == nil {
		t.Error("negative noise accepted")
	}
	if _, err := NearUniform(1, -1, 4, 2, 0); err == nil {
		t.Error("negative n accepted")
	}
}

func TestNearUniformProperties(t *testing.T) {
	a, err := NearUniform(42, 400, 20, 8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NearUniform(42, 400, 20, 8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != store.ItemID(i) || !a[i].Vec.Equal(b[i].Vec) {
			t.Fatal("NearUniform not deterministic")
		}
		if a[i].Vec.Dim() != 20 {
			t.Fatalf("dim = %d", a[i].Vec.Dim())
		}
	}
	// The data must have lower intrinsic dimensionality than ambient:
	// nearest-neighbor distances should be clearly smaller than for
	// truly 20-d i.i.d. uniform data of the same cardinality and spread.
	m := vec.Euclidean{}
	nnDist := func(items []store.Item) float64 {
		var sum float64
		for i := 0; i < 50; i++ {
			best := math.Inf(1)
			for j := range items {
				if j == i {
					continue
				}
				if d := m.Distance(items[i].Vec, items[j].Vec); d < best {
					best = d
				}
			}
			sum += best
		}
		return sum / 50
	}
	iid := Uniform(7, 400, 20)
	if got, ref := nnDist(a), nnDist(iid); got >= ref {
		t.Errorf("NearUniform NN distance %.3f not below i.i.d. uniform %.3f", got, ref)
	}
}

func TestEstimateIntrinsicDimension(t *testing.T) {
	// Truly 2-d data embedded in 2-d: estimate ≈ 2.
	flat := Uniform(50, 1500, 2)
	est, err := EstimateIntrinsicDimension(flat, 100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est < 1.2 || est > 3.0 {
		t.Errorf("2-d uniform estimated as %.2f", est)
	}

	// Intrinsically 8-d data embedded in 20 dimensions: the estimate must
	// track the latent dimension, not the ambient one.
	embedded, err := NearUniform(51, 1500, 20, 8, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	est8, err := EstimateIntrinsicDimension(embedded, 100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est8 < 4 || est8 > 13 {
		t.Errorf("intrinsic-8 data estimated as %.2f", est8)
	}

	// Full 20-d uniform: clearly higher than the embedded case.
	full := Uniform(52, 1500, 20)
	est20, err := EstimateIntrinsicDimension(full, 100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est20 <= est8 {
		t.Errorf("ambient 20-d (%.2f) not above intrinsic 8-d (%.2f)", est20, est8)
	}
}

func TestEstimateIntrinsicDimensionValidation(t *testing.T) {
	items := Uniform(53, 50, 3)
	if _, err := EstimateIntrinsicDimension(items, 10, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := EstimateIntrinsicDimension(items[:3], 10, 10, 1); err == nil {
		t.Error("tiny dataset accepted")
	}
	if _, err := EstimateIntrinsicDimension(items, 0, 5, 1); err == nil {
		t.Error("zero sample accepted")
	}
	// All-duplicate data: degenerate neighborhoods.
	dup := make([]store.Item, 30)
	for i := range dup {
		dup[i] = store.Item{ID: store.ItemID(i), Vec: vec.Vector{1, 1}}
	}
	if _, err := EstimateIntrinsicDimension(dup, 10, 5, 1); err == nil {
		t.Error("degenerate data accepted")
	}
}
