// Package dataset generates the synthetic workloads that substitute for the
// paper's proprietary datasets (see DESIGN.md §4):
//
//   - Uniform: stands in for the Tycho catalogue — 20-dimensional,
//     "almost uniformly distributed" star feature vectors. Only the
//     distribution matters for the experiments, so seeded uniform vectors
//     preserve the relevant behaviour.
//   - Clustered: stands in for the TV-snapshot image database —
//     64-dimensional, "highly clustered" color histograms. A seeded
//     Gaussian mixture with L1-normalized non-negative components
//     reproduces the clustering that drives the paper's CPU-cost results.
//   - Sessions: synthetic WWW-access sessions (URL paths) for the general
//     metric-database case under edit distance.
//
// All generators are deterministic in their seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// Uniform returns n items uniformly distributed in [0,1]^dim with
// IDs 0..n-1 and no labels.
func Uniform(seed int64, n, dim int) []store.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]store.Item, n)
	for i := range items {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = store.Item{ID: store.ItemID(i), Vec: v}
	}
	return items
}

// NearUniform returns n cluster-free items whose 20-style feature vectors
// have a lower *intrinsic* dimensionality, like real measured features
// (the Tycho catalogue's 20 values per star are heavily correlated): a
// uniform latent vector z ∈ [0,1]^intrinsic is mapped through a fixed
// random linear embedding into dim dimensions, plus per-coordinate noise.
//
// Truly i.i.d. uniform data in 20 dimensions exhibits full-strength
// distance concentration, which would suppress both index selectivity and
// triangle-inequality avoidance far beyond what the paper's real data
// shows; the embedding restores realistic behaviour while keeping the data
// "almost uniformly distributed" (no cluster structure).
func NearUniform(seed int64, n, dim, intrinsic int, noise float64) ([]store.Item, error) {
	if n < 0 || dim <= 0 {
		return nil, fmt.Errorf("dataset: invalid size %d x %d", n, dim)
	}
	if intrinsic < 1 || intrinsic > dim {
		return nil, fmt.Errorf("dataset: intrinsic dimension %d outside [1, %d]", intrinsic, dim)
	}
	if noise < 0 {
		return nil, fmt.Errorf("dataset: negative noise %g", noise)
	}
	rng := rand.New(rand.NewSource(seed))
	// Fixed random embedding, row-normalized so coordinates stay O(1).
	embed := make([][]float64, dim)
	for i := range embed {
		row := make([]float64, intrinsic)
		var norm float64
		for j := range row {
			row[j] = rng.NormFloat64()
			norm += row[j] * row[j]
		}
		norm = math.Sqrt(norm)
		for j := range row {
			row[j] /= norm
		}
		embed[i] = row
	}
	items := make([]store.Item, n)
	for i := range items {
		z := make([]float64, intrinsic)
		for j := range z {
			z[j] = rng.Float64()
		}
		v := make(vec.Vector, dim)
		for d := 0; d < dim; d++ {
			var s float64
			for j := 0; j < intrinsic; j++ {
				s += embed[d][j] * z[j]
			}
			v[d] = s + noise*rng.NormFloat64()
		}
		items[i] = store.Item{ID: store.ItemID(i), Vec: v}
	}
	return items, nil
}

// ClusteredConfig parameterizes the Gaussian-mixture generator.
type ClusteredConfig struct {
	Seed     int64
	N        int
	Dim      int
	Clusters int // number of mixture components (>= 1)
	// Spread is the per-coordinate standard deviation within a cluster;
	// zero selects 0.05, which produces the strong clustering the image
	// database exhibits.
	Spread float64
	// Histogram, when set, clamps components to be non-negative and
	// L1-normalizes each vector, making it a color-histogram lookalike.
	Histogram bool
	// NoiseFraction in [0,1) replaces that fraction of points with
	// uniform noise; zero is pure mixture.
	NoiseFraction float64
}

// Clustered returns n items drawn from a Gaussian mixture. Each item's
// Label is the index of its mixture component (noise points get label -1),
// which the classification experiments use as ground truth.
func Clustered(cfg ClusteredConfig) ([]store.Item, error) {
	if cfg.N < 0 || cfg.Dim <= 0 {
		return nil, fmt.Errorf("dataset: invalid size %d x %d", cfg.N, cfg.Dim)
	}
	if cfg.Clusters < 1 {
		return nil, fmt.Errorf("dataset: need at least one cluster, got %d", cfg.Clusters)
	}
	if cfg.NoiseFraction < 0 || cfg.NoiseFraction >= 1 {
		return nil, fmt.Errorf("dataset: noise fraction %g outside [0,1)", cfg.NoiseFraction)
	}
	spread := cfg.Spread
	if spread == 0 {
		spread = 0.05
	}
	if spread < 0 {
		return nil, fmt.Errorf("dataset: negative spread %g", spread)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([]vec.Vector, cfg.Clusters)
	for c := range centers {
		v := make(vec.Vector, cfg.Dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		centers[c] = v
	}

	items := make([]store.Item, cfg.N)
	for i := range items {
		v := make(vec.Vector, cfg.Dim)
		label := -1
		if rng.Float64() < cfg.NoiseFraction {
			for j := range v {
				v[j] = rng.Float64()
			}
		} else {
			label = rng.Intn(cfg.Clusters)
			center := centers[label]
			for j := range v {
				v[j] = center[j] + rng.NormFloat64()*spread
				if cfg.Histogram && v[j] < 0 {
					v[j] = 0
				}
			}
		}
		if cfg.Histogram {
			v.L1Normalize()
		}
		items[i] = store.Item{ID: store.ItemID(i), Vec: v, Label: label}
	}
	return items, nil
}

// SampleQueries picks m distinct random items from items as query objects,
// matching the paper's "M objects from the database were chosen randomly".
// It returns an error when m exceeds the dataset size.
func SampleQueries(seed int64, items []store.Item, m int) ([]store.Item, error) {
	if m > len(items) {
		return nil, fmt.Errorf("dataset: cannot sample %d queries from %d items", m, len(items))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(items))
	out := make([]store.Item, m)
	for i := 0; i < m; i++ {
		out[i] = items[perm[i]]
	}
	return out, nil
}

// Sessions generates n synthetic WWW-access session strings: URL-like paths
// over a small site graph, so edit distances between sessions of the same
// area are small. Used by the M-tree examples and tests.
func Sessions(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	areas := []string{"index", "shop", "blog", "help", "account"}
	leaves := []string{"view", "edit", "list", "search", "item", "post", "cart", "pay", "faq"}
	out := make([]string, n)
	for i := range out {
		area := areas[rng.Intn(len(areas))]
		depth := 1 + rng.Intn(3)
		s := "/" + area
		for d := 0; d < depth; d++ {
			s += "/" + leaves[rng.Intn(len(leaves))]
			if rng.Intn(2) == 0 {
				s += fmt.Sprintf("/%d", rng.Intn(50))
			}
		}
		out[i] = s
	}
	return out
}
