package dataset

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"os"

	"metricdb/internal/store"
)

// fileHeader guards against loading unrelated gob streams.
type fileHeader struct {
	Magic   string
	Version int
	Count   int
	Dim     int
}

const (
	fileMagic   = "metricdb-dataset"
	fileVersion = 1
)

// WriteFile stores items in a gob-encoded file, so generated datasets can be
// reused across benchmark runs (cmd/msqgen).
func WriteFile(path string, items []store.Item) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	enc := gob.NewEncoder(w)
	dim := 0
	if len(items) > 0 {
		dim = items[0].Vec.Dim()
	}
	if err := enc.Encode(fileHeader{Magic: fileMagic, Version: fileVersion, Count: len(items), Dim: dim}); err != nil {
		return fmt.Errorf("dataset: encode header: %w", err)
	}
	for i := range items {
		if err := enc.Encode(items[i]); err != nil {
			return fmt.Errorf("dataset: encode item %d: %w", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return f.Close()
}

// ReadFile loads a dataset written by WriteFile.
func ReadFile(path string) ([]store.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(bufio.NewReader(f))
	var h fileHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("dataset: decode header: %w", err)
	}
	if h.Magic != fileMagic {
		return nil, fmt.Errorf("dataset: %s is not a metricdb dataset file", path)
	}
	if h.Version != fileVersion {
		return nil, fmt.Errorf("dataset: unsupported file version %d", h.Version)
	}
	items := make([]store.Item, h.Count)
	for i := range items {
		if err := dec.Decode(&items[i]); err != nil {
			return nil, fmt.Errorf("dataset: decode item %d: %w", i, err)
		}
		if items[i].Vec.Dim() != h.Dim {
			return nil, fmt.Errorf("dataset: item %d has dimension %d, header says %d", i, items[i].Vec.Dim(), h.Dim)
		}
	}
	return items, nil
}
