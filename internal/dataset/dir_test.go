package dataset

import (
	"math"
	"path/filepath"
	"testing"

	"metricdb/internal/store"
)

// sameItems is bit-exact equality of two item slices.
func sameItems(a, b []store.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Label != b[i].Label || a[i].Vec.Dim() != b[i].Vec.Dim() {
			return false
		}
		for d := range a[i].Vec {
			if math.Float64bits(a[i].Vec[d]) != math.Float64bits(b[i].Vec[d]) {
				return false
			}
		}
	}
	return true
}

func TestSaveDirLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	items, err := Clustered(ClusteredConfig{Seed: 7, N: 211, Dim: 9, Clusters: 4, NoiseFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	attrs := map[string]string{"kind": "clustered", "seed": "7"}
	if err := SaveDir(dir, items, SaveOptions{PageCapacity: 16, Attrs: attrs}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sameItems(items, got) {
		t.Fatal("LoadDir items differ from saved items")
	}
	fd, err := store.OpenFileDisk(dir, store.FileDiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close() //nolint:errcheck
	man := fd.Manifest()
	if man.Attrs["kind"] != "clustered" || man.PageCapacity != 16 || man.Dim != 9 || man.Items != 211 {
		t.Errorf("manifest metadata: %+v", man)
	}
}

// TestReadAnyBothFormats: ReadAny must load both the persistent directory
// format and a legacy gob file, returning identical items for identical
// inputs.
func TestReadAnyBothFormats(t *testing.T) {
	items := Uniform(3, 97, 5)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := SaveDir(dir, items, SaveOptions{PageCapacity: 8}); err != nil {
		t.Fatal(err)
	}
	gobPath := filepath.Join(t.TempDir(), "ds.gob")
	if err := WriteFile(gobPath, items); err != nil {
		t.Fatal(err)
	}
	fromDir, err := ReadAny(dir)
	if err != nil {
		t.Fatal(err)
	}
	fromGob, err := ReadAny(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	if !sameItems(items, fromDir) || !sameItems(fromDir, fromGob) {
		t.Fatal("ReadAny results differ across formats")
	}
	if _, err := ReadAny(filepath.Join(dir, "no-such-thing")); err == nil {
		t.Error("ReadAny of a missing path succeeded")
	}
}

func TestSaveDirRejectsMixedDimensions(t *testing.T) {
	items := Uniform(5, 4, 3)
	items[2].Vec = items[2].Vec[:2]
	if err := SaveDir(t.TempDir(), items, SaveOptions{PageCapacity: 2}); err == nil {
		t.Fatal("mixed-dimension save succeeded")
	}
}

func TestSaveDirEmpty(t *testing.T) {
	dir := t.TempDir()
	if err := SaveDir(dir, nil, SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty dataset loaded %d items", len(got))
	}
}
