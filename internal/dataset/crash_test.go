package dataset_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"metricdb/internal/dataset"
	"metricdb/internal/fault"
	"metricdb/internal/store"
)

// TestCrashSafeBuild is the crash-safety contract of the persistent
// dataset build: a build interrupted at ANY filesystem operation — create,
// each page write (clean or torn), fsync, the manifest staging writes, the
// publishing rename, the directory fsync, orphan removal — must leave the
// directory in a state where reopening yields exactly the previously
// published dataset or exactly the new one, bit for bit. Never a torn
// mixture, never an unreadable directory.
//
// The test chains fault points: for each seed it publishes dataset A, then
// repeatedly attempts to build dataset B with the k-th operation failing,
// k = 1, 2, 3, … After every attempt the directory must load cleanly
// (checksums verified by LoadDir) and equal the last published state or B.
// The sweep ends when an attempt runs past the last operation and
// succeeds, which proves every fault point was covered. Runs across >= 100
// seeds (trimmed under -short), with dataset shapes and torn-write sizes
// varying by seed.
func TestCrashSafeBuild(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 12
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			nA := 20 + (seed*7)%30
			nB := 20 + (seed*11)%30
			dim := 2 + seed%3
			capacity := 4 + seed%5
			itemsA := dataset.Uniform(int64(seed), nA, dim)
			itemsB := dataset.Uniform(int64(seed)+1e6, nB, dim)

			// A quarter of the seeds run with real fsyncs, covering the
			// fsync and fsync-dir fault points; the rest skip syncing so
			// the sweep stays cheap (the create/write/rename/remove
			// points are identical either way).
			noSync := seed%4 != 0
			save := func(items []store.Item, hook func(store.FileOp, string) error) error {
				return dataset.SaveDir(dir, items, dataset.SaveOptions{
					PageCapacity: capacity,
					Hook:         hook,
					NoSync:       noSync,
				})
			}
			if err := save(itemsA, nil); err != nil {
				t.Fatal(err)
			}
			published := itemsA

			for k := 1; ; k++ {
				torn := 0
				if (seed+k)%3 == 0 {
					torn = 1 + (seed+k)%40
				}
				inj := &fault.FS{FailAt: k, TornBytes: torn}
				err := save(itemsB, inj.Hook)
				if err == nil {
					// The fault point lies beyond the build's last
					// operation: the sweep covered every point.
					if inj.Tripped() {
						t.Fatalf("k=%d: build succeeded although the fault tripped", k)
					}
					got, lerr := dataset.LoadDir(dir)
					if lerr != nil {
						t.Fatalf("k=%d: reopen after clean build: %v", k, lerr)
					}
					if !sameItemsBits(got, itemsB) {
						t.Fatalf("k=%d: clean build did not publish the new dataset", k)
					}
					break
				}
				if !errors.Is(err, fault.ErrInjected) {
					t.Fatalf("k=%d: build failed with a non-injected error: %v", k, err)
				}
				got, lerr := dataset.LoadDir(dir)
				if lerr != nil {
					t.Fatalf("k=%d: interrupted build left an unreadable dataset: %v\nops: %v", k, lerr, inj.Ops())
				}
				switch {
				case sameItemsBits(got, published):
					// Old dataset survived — the usual pre-rename outcome.
				case sameItemsBits(got, itemsB):
					// Fault hit after the atomic rename: new dataset is
					// live despite the reported error.
					published = itemsB
				default:
					t.Fatalf("k=%d: reopened dataset is neither old nor new (%d items)\nops: %v",
						k, len(got), inj.Ops())
				}
				if k > 10000 {
					t.Fatal("fault-point sweep did not terminate")
				}
			}
		})
	}
}

func sameItemsBits(a, b []store.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Label != b[i].Label || a[i].Vec.Dim() != b[i].Vec.Dim() {
			return false
		}
		for d := range a[i].Vec {
			if math.Float64bits(a[i].Vec[d]) != math.Float64bits(b[i].Vec[d]) {
				return false
			}
		}
	}
	return true
}
