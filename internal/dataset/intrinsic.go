package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// EstimateIntrinsicDimension estimates the data's intrinsic dimensionality
// with the Levina–Bickel maximum-likelihood estimator over a random sample:
// for each sampled point, the estimator inverts the average log-ratio of
// its k-th nearest-neighbor distance to the closer neighbor distances.
//
// The intrinsic dimension — not the ambient one — governs how well index
// structures and the triangle-inequality avoidance work (see DESIGN.md §4),
// so the estimate drives the engine recommendation.
func EstimateIntrinsicDimension(items []store.Item, sampleSize, k int, seed int64) (float64, error) {
	if k < 2 {
		return 0, fmt.Errorf("dataset: intrinsic-dimension estimation needs k >= 2, got %d", k)
	}
	if len(items) < k+2 {
		return 0, fmt.Errorf("dataset: need at least %d items, got %d", k+2, len(items))
	}
	if sampleSize < 1 {
		return 0, fmt.Errorf("dataset: sample size must be positive, got %d", sampleSize)
	}

	rng := rand.New(rand.NewSource(seed))
	// Work on a bounded reference set so estimation stays O(sample²).
	ref := items
	const maxRef = 4000
	if len(ref) > maxRef {
		perm := rng.Perm(len(items))
		ref = make([]store.Item, maxRef)
		for i := range ref {
			ref[i] = items[perm[i]]
		}
	}
	if sampleSize > len(ref) {
		sampleSize = len(ref)
	}

	m := vec.Euclidean{}
	dists := make([]float64, 0, len(ref))
	var invSum float64
	var used int
	for s := 0; s < sampleSize; s++ {
		p := ref[rng.Intn(len(ref))]
		dists = dists[:0]
		for i := range ref {
			if ref[i].ID == p.ID {
				continue
			}
			dists = append(dists, m.Distance(p.Vec, ref[i].Vec))
		}
		sort.Float64s(dists)
		if dists[k-1] <= 0 {
			continue // duplicates up to the k-th neighbor: skip this point
		}
		var logSum float64
		valid := 0
		for j := 0; j < k-1; j++ {
			if dists[j] <= 0 {
				continue
			}
			logSum += math.Log(dists[k-1] / dists[j])
			valid++
		}
		if valid == 0 || logSum == 0 {
			continue
		}
		invSum += float64(valid) / logSum
		used++
	}
	if used == 0 {
		return 0, fmt.Errorf("dataset: intrinsic dimension undefined (all sampled neighborhoods degenerate)")
	}
	return invSum / float64(used), nil
}
