package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNewIDFormat(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := newID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		if strings.Trim(id, "0123456789abcdef") != "" {
			t.Fatalf("id %q is not lowercase hex", id)
		}
		if seen[id] {
			t.Fatalf("id %q repeated", id)
		}
		seen[id] = true
	}
}

func TestStartSpanNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("root")
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	// Every method must be a no-op on the nil span.
	sp.SetServer("srv0")
	sp.SetAttempt(2)
	sp.SetErr("boom")
	sp.End()
	if ctx := sp.Context(); ctx.Valid() {
		t.Error("nil span has a valid context")
	}
	if ch := sp.StartChild("child"); ch != nil {
		t.Error("nil span spawned a child")
	}
	// Disabled span retention behaves like nil.
	disabled := New(Config{TraceBufferSize: -1})
	if sp := disabled.StartSpan("root"); sp != nil {
		t.Error("tracer with disabled retention returned a live span")
	}
	disabled.ImportSpans([]DistSpan{{Trace: "t", Span: "s"}})
	if n := disabled.DistSpansTotal(); n != 0 {
		t.Errorf("disabled tracer retained %d spans", n)
	}
}

func TestSpanParentChildLinkage(t *testing.T) {
	tr := New(Config{Node: "coordinator"})
	root := tr.StartSpan("multi_all")
	child := root.StartChild("server_call")
	child.SetServer("srv1")
	child.SetAttempt(1)
	child.End()
	root.End()

	spans := tr.DistSpans()
	if len(spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(spans))
	}
	var rootSpan, childSpan DistSpan
	for _, s := range spans {
		switch s.Name {
		case "multi_all":
			rootSpan = s
		case "server_call":
			childSpan = s
		}
	}
	if rootSpan.Parent != "" {
		t.Errorf("root has parent %q", rootSpan.Parent)
	}
	if childSpan.Parent != rootSpan.Span || childSpan.Trace != rootSpan.Trace {
		t.Errorf("child (trace %s parent %s) not under root (trace %s span %s)",
			childSpan.Trace, childSpan.Parent, rootSpan.Trace, rootSpan.Span)
	}
	if childSpan.Node != "srv1" || childSpan.Attempt != 1 {
		t.Errorf("child attributes = %+v", childSpan)
	}
	if rootSpan.DurNs <= 0 || childSpan.DurNs <= 0 {
		t.Errorf("durations not recorded: root %d, child %d", rootSpan.DurNs, childSpan.DurNs)
	}
}

func TestStartSpanFromInvalidParentStartsFreshTrace(t *testing.T) {
	tr := New(Config{})
	sp := tr.StartSpanFrom(SpanContext{}, "request")
	sp.End()
	spans := tr.DistSpans()
	if len(spans) != 1 {
		t.Fatalf("retained %d spans, want 1", len(spans))
	}
	if spans[0].Trace == "" || spans[0].Span == "" || spans[0].Parent != "" {
		t.Errorf("span from zero parent = %+v, want fresh root", spans[0])
	}
}

func TestImportSpansAndStitch(t *testing.T) {
	// The coordinator records root and two attempts; the remote server's
	// subtree arrives via ImportSpans, as the wire layer delivers it.
	tr := New(Config{Node: "coordinator"})
	root := tr.StartSpan("multi_all")
	a1 := root.StartChild("server_call")
	a1.SetServer("srv0")
	a1.SetAttempt(1)
	a1.SetErr("injected fault")
	a1.End()
	a2 := root.StartChild("server_call")
	a2.SetServer("srv0")
	a2.SetAttempt(2)
	remote := DistSpan{
		Trace:       root.Span().Trace,
		Span:        SpanID(newID()),
		Parent:      a2.Span().Span,
		Name:        "request:multi_all",
		Node:        "srv0",
		StartUnixNs: time.Now().UnixNano(),
		DurNs:       1000,
	}
	tr.ImportSpans([]DistSpan{remote})
	a2.End()
	root.End()

	ids := tr.TraceIDs()
	if len(ids) != 1 {
		t.Fatalf("TraceIDs = %v, want exactly one trace", ids)
	}
	tree := tr.Trace(ids[0])
	if tree == nil || tree.Name != "multi_all" {
		t.Fatalf("stitched root = %+v", tree)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("root has %d children, want the 2 attempts", len(tree.Children))
	}
	// Siblings are ordered by start time: the failed attempt first.
	if tree.Children[0].Attempt != 1 || tree.Children[0].Err == "" {
		t.Errorf("first sibling = %+v, want failed attempt 1", tree.Children[0].DistSpan)
	}
	if tree.Children[1].Attempt != 2 || len(tree.Children[1].Children) != 1 {
		t.Fatalf("second sibling = %+v, want attempt 2 carrying the remote subtree", tree.Children[1].DistSpan)
	}
	if got := tree.Children[1].Children[0]; got.Node != "srv0" || got.Name != "request:multi_all" {
		t.Errorf("remote child = %+v", got.DistSpan)
	}
}

func TestStitchTraceOrphans(t *testing.T) {
	// Spans whose parents were evicted from the ring must still appear: a
	// single orphan becomes the root, several group under a synthetic one.
	one := []DistSpan{
		{Trace: "t1", Span: "a", Parent: "gone", Name: "lost", StartUnixNs: 10},
	}
	if tree := StitchTrace(one, "t1"); tree == nil || tree.Name != "lost" {
		t.Errorf("single orphan tree = %+v, want the orphan as root", tree)
	}
	two := append(one, DistSpan{Trace: "t1", Span: "b", Parent: "gone2", Name: "later", StartUnixNs: 20})
	tree := StitchTrace(two, "t1")
	if tree == nil || tree.Name != "(stitched)" || len(tree.Children) != 2 {
		t.Fatalf("multi-orphan tree = %+v, want synthetic root with 2 children", tree)
	}
	if tree.Children[0].Name != "lost" || tree.Children[1].Name != "later" {
		t.Errorf("orphans not in start order: %+v", tree.Children)
	}
	if StitchTrace(one, "absent") != nil {
		t.Error("unknown trace id yielded a tree")
	}
}

func TestDistRingBounded(t *testing.T) {
	tr := New(Config{TraceBufferSize: 4})
	for i := 0; i < 10; i++ {
		tr.StartSpan("s").End()
	}
	if got := len(tr.DistSpans()); got != 4 {
		t.Errorf("ring holds %d spans, want 4", got)
	}
	if got := tr.DistSpansTotal(); got != 10 {
		t.Errorf("total = %d, want 10", got)
	}
}

func TestDistSpanJSONRoundTrip(t *testing.T) {
	tr := New(Config{Node: "srv2"})
	sp := tr.StartSpan("request:explain")
	sp.SetErr("deadline")
	sp.End()
	data, err := json.Marshal(tr.DistSpans()[0])
	if err != nil {
		t.Fatal(err)
	}
	var back DistSpan
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "request:explain" || back.Node != "srv2" || back.Err != "deadline" {
		t.Errorf("round trip = %+v", back)
	}
}

func TestHistSnapshotSubAndMerge(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)
	h.Observe(time.Microsecond)
	before := h.Snapshot()
	h.Observe(time.Millisecond)
	h.Observe(time.Microsecond)
	delta := h.Snapshot().Sub(before)
	if delta.Count != 2 {
		t.Fatalf("delta count = %d, want 2", delta.Count)
	}
	if delta.SumNs != time.Millisecond.Nanoseconds()+time.Microsecond.Nanoseconds() {
		t.Errorf("delta sum = %d", delta.SumNs)
	}
	// Folding the delta into a second tracer reproduces the new work.
	tr := New(Config{})
	tr.MergeSnapshot(PhaseKernel, delta)
	got := tr.Snapshot(PhaseKernel)
	if got.Count != 2 || got.SumNs != delta.SumNs {
		t.Errorf("merged snapshot = %+v, want the delta", got)
	}
	// Empty deltas and nil tracers are no-ops.
	tr.MergeSnapshot(PhaseKernel, HistSnapshot{})
	if tr.Snapshot(PhaseKernel).Count != 2 {
		t.Error("empty delta changed the histogram")
	}
	var nilTr *Tracer
	nilTr.MergeSnapshot(PhaseKernel, delta)
}

func TestWriteDistTraces(t *testing.T) {
	tr := New(Config{Node: "coordinator"})
	tr.StartSpan("multi_all").End()
	var sb strings.Builder
	if _, err := tr.WriteDistTraces(&sb); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(sb.String())
	var span DistSpan
	if err := json.Unmarshal([]byte(line), &span); err != nil {
		t.Fatalf("dist trace line is not JSON: %v: %q", err, line)
	}
	if span.Name != "multi_all" || span.Node != "coordinator" {
		t.Errorf("span = %+v", span)
	}
}
