package obs

import (
	"math/rand"
	"testing"
	"time"

	"metricdb/internal/vec"
)

// TestDisabledHookOverhead is the CI gate for the nil-hook fast path: the
// instrumentation pattern the hot loops use (a hoisted `tr != nil` test per
// page plus clock reads and observations guarded behind it) must cost
// <= 2 % over the bare kernel loop of `msqbench -experiment kernels`'s hot
// path. The measurement mirrors processPage at the realistic page shape —
// a 32 KB page holds ~256 dim-16 vectors and each page is evaluated against
// every active query of the batch — with the disabled-tracer bookkeeping
// around each page exactly as the instrumented loop performs it. The hooks
// run at page granularity, so their cost amortizes over items x queries;
// smaller pages or narrower batches only lower the absolute overhead.
//
// Run via `make obsgate`. Skipped in -short mode and under the race
// detector, where timing comparisons are meaningless.
func TestDisabledHookOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; run via make obsgate")
	}
	if raceEnabled {
		t.Skip("timing gate is meaningless under the race detector")
	}

	const (
		dim      = 16
		pageSize = 256 // items per 32 KB page at dim 16
		nQueries = 4   // a modest multi-query batch
		nPages   = 16
	)
	randVec := func(rng *rand.Rand, dim int) vec.Vector {
		v := make(vec.Vector, dim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	rng := rand.New(rand.NewSource(99))
	page := make([]vec.Vector, pageSize)
	for i := range page {
		page[i] = randVec(rng, dim)
	}
	queries := make([]vec.Vector, nQueries)
	for i := range queries {
		queries[i] = randVec(rng, dim)
	}
	kernel := vec.Euclidean{}
	limit := 5.0

	var sinkF float64
	var sinkB bool

	// bare is the uninstrumented page loop.
	bare := func() {
		for p := 0; p < nPages; p++ {
			for i := range page {
				for _, q := range queries {
					sinkF, sinkB = kernel.DistanceWithin(q, page[i], limit)
				}
			}
		}
	}
	// hooked is the loop as instrumented: a possibly-nil tracer, one
	// hoisted enabled test per page, and all clock reads and observations
	// guarded behind it — the exact pattern the msq page loops use.
	var tr *Tracer
	hooked := func() {
		for p := 0; p < nPages; p++ {
			traced := tr.Enabled()
			var pageStart time.Time
			if traced {
				pageStart = time.Now()
			}
			for i := range page {
				for _, q := range queries {
					sinkF, sinkB = kernel.DistanceWithin(q, page[i], limit)
				}
			}
			if traced {
				tr.Observe(PhaseKernel, time.Since(pageStart))
				tr.ObserveSince(PhasePageWait, pageStart)
			}
		}
	}
	_ = sinkF
	_ = sinkB

	measure := func(fn func()) time.Duration {
		fn() // warm up
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 7; trial++ {
			start := time.Now()
			for r := 0; r < 20; r++ {
				fn()
			}
			if e := time.Since(start); e < best {
				best = e
			}
		}
		return best
	}

	// Interleave measurements and accept the best ratio of a few rounds:
	// the gate must not flake on scheduling noise, only on a real
	// regression of the disabled path.
	bestRatio := 1e9
	for round := 0; round < 5; round++ {
		b := measure(bare)
		h := measure(hooked)
		if ratio := float64(h) / float64(b); ratio < bestRatio {
			bestRatio = ratio
		}
		if bestRatio <= 1.02 {
			break
		}
	}
	t.Logf("disabled-hook overhead: best ratio %.4f (gate 1.02)", bestRatio)
	if bestRatio > 1.02 {
		t.Errorf("disabled-hook overhead %.2f%% exceeds the 2%% gate", (bestRatio-1)*100)
	}
}
