package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Registry is a metrics registry with Prometheus text exposition. Gauges
// and counters are registered as callbacks, so the registry samples live
// values (buffer hit counters, disk read totals, connection counts) at
// scrape time instead of shadowing them; the attached tracer contributes
// the per-phase latency histograms and the slow-query counter.
type Registry struct {
	tracer *Tracer

	mu       sync.Mutex
	gauges   []metricDef
	counters []metricDef
}

// metricDef is one registered callback metric.
type metricDef struct {
	name   string
	help   string
	labels string // pre-rendered {k="v",...} or ""
	fn     func() float64
}

// NewRegistry creates a registry. tracer may be nil (histograms are then
// omitted from the exposition).
func NewRegistry(tracer *Tracer) *Registry {
	return &Registry{tracer: tracer}
}

// Tracer returns the attached tracer (possibly nil).
func (r *Registry) Tracer() *Tracer { return r.tracer }

// Gauge registers a gauge sampled at scrape time. labels is a rendered
// label set such as `engine="scan"` or empty.
func (r *Registry) Gauge(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges = append(r.gauges, metricDef{name: name, help: help, labels: labels, fn: fn})
}

// Counter registers a monotonically increasing total sampled at scrape
// time. By Prometheus convention the name should end in _total.
func (r *Registry) Counter(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = append(r.counters, metricDef{name: name, help: help, labels: labels, fn: fn})
}

// formatFloat renders a sample value in the exposition format.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeFamily writes one metric family: a HELP/TYPE header (once per name)
// and one sample line per definition.
func writeFamily(w io.Writer, typ string, defs []metricDef) error {
	byName := map[string][]metricDef{}
	var names []string
	for _, d := range defs {
		if _, ok := byName[d.name]; !ok {
			names = append(names, d.name)
		}
		byName[d.name] = append(byName[d.name], d)
	}
	sort.Strings(names)
	for _, name := range names {
		group := byName[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, group[0].help, name, typ); err != nil {
			return err
		}
		for _, d := range group {
			labels := ""
			if d.labels != "" {
				labels = "{" + d.labels + "}"
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", d.name, labels, formatFloat(d.fn())); err != nil {
				return err
			}
		}
	}
	return nil
}

// PhaseHistogramMetric is the name of the exported per-phase latency
// histogram family.
const PhaseHistogramMetric = "metricdb_phase_duration_seconds"

// writePhaseHistograms renders the tracer's phase histograms as one
// Prometheus histogram family with a `phase` label, cumulative buckets in
// seconds.
func writePhaseHistograms(w io.Writer, t *Tracer) error {
	if t == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP %s Query-processing phase latency.\n# TYPE %s histogram\n",
		PhaseHistogramMetric, PhaseHistogramMetric); err != nil {
		return err
	}
	for p := 0; p < NumPhases; p++ {
		snap := t.Snapshot(Phase(p))
		name := Phase(p).String()
		var cum int64
		for i, c := range snap.Counts {
			cum += c
			le := "+Inf"
			if b := BucketBound(i); b >= 0 {
				le = formatFloat(b.Seconds())
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{phase=%q,le=%q} %d\n",
				PhaseHistogramMetric, name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum{phase=%q} %s\n", PhaseHistogramMetric, name,
			formatFloat(float64(snap.SumNs)/1e9)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count{phase=%q} %d\n", PhaseHistogramMetric, name, snap.Count); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus writes the full exposition: phase histograms, the
// tracer's slow-query and span totals, then registered counters and gauges.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if err := writePhaseHistograms(w, r.tracer); err != nil {
		return err
	}
	if t := r.tracer; t != nil {
		tracerCounters := []metricDef{
			{name: "metricdb_slow_queries_total", help: "Query calls at or above the slow-query threshold.",
				fn: func() float64 { return float64(t.SlowQueriesTotal()) }},
			{name: "metricdb_traced_queries_total", help: "Query calls observed by the tracer.",
				fn: func() float64 { return float64(t.Queries()) }},
			{name: "metricdb_trace_spans_total", help: "Phase spans recorded by the tracer.",
				fn: func() float64 { return float64(t.SpansTotal()) }},
		}
		if err := writeFamily(w, "counter", tracerCounters); err != nil {
			return err
		}
	}
	r.mu.Lock()
	counters := append([]metricDef(nil), r.counters...)
	gauges := append([]metricDef(nil), r.gauges...)
	r.mu.Unlock()
	if err := writeFamily(w, "counter", counters); err != nil {
		return err
	}
	return writeFamily(w, "gauge", gauges)
}
