package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Registry is a metrics registry with Prometheus text exposition. Gauges
// and counters are registered as callbacks, so the registry samples live
// values (buffer hit counters, disk read totals, connection counts) at
// scrape time instead of shadowing them; the attached tracer contributes
// the per-phase latency histograms and the slow-query counter.
type Registry struct {
	tracer *Tracer

	mu       sync.Mutex
	extra    []labeledTracer
	gauges   []metricDef
	counters []metricDef
}

// labeledTracer is an additional tracer exposed under extra labels — the
// coordinator attaches one per server so a single scrape covers the cluster.
type labeledTracer struct {
	labels string
	tracer *Tracer
}

// metricDef is one registered callback metric.
type metricDef struct {
	name   string
	help   string
	labels string // pre-rendered {k="v",...} or ""
	fn     func() float64
}

// NewRegistry creates a registry. tracer may be nil (histograms are then
// omitted from the exposition).
func NewRegistry(tracer *Tracer) *Registry {
	return &Registry{tracer: tracer}
}

// Tracer returns the attached tracer (possibly nil).
func (r *Registry) Tracer() *Tracer { return r.tracer }

// AttachTracer exposes another tracer's phase histograms under extra labels
// (e.g. `server="2"`). The coordinator uses this to aggregate per-server
// phase costs — each server's histogram deltas are merged into a per-server
// tracer, and one scrape of the coordinator then covers the cluster. Nil
// tracers are ignored.
func (r *Registry) AttachTracer(labels string, tr *Tracer) {
	if tr == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.extra = append(r.extra, labeledTracer{labels: labels, tracer: tr})
}

// Gauge registers a gauge sampled at scrape time. labels is a rendered
// label set such as `engine="scan"` or empty.
func (r *Registry) Gauge(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges = append(r.gauges, metricDef{name: name, help: help, labels: labels, fn: fn})
}

// Counter registers a monotonically increasing total sampled at scrape
// time. By Prometheus convention the name should end in _total.
func (r *Registry) Counter(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = append(r.counters, metricDef{name: name, help: help, labels: labels, fn: fn})
}

// formatFloat renders a sample value in the exposition format.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeFamily writes one metric family: a HELP/TYPE header (once per name)
// and one sample line per definition.
func writeFamily(w io.Writer, typ string, defs []metricDef) error {
	byName := map[string][]metricDef{}
	var names []string
	for _, d := range defs {
		if _, ok := byName[d.name]; !ok {
			names = append(names, d.name)
		}
		byName[d.name] = append(byName[d.name], d)
	}
	sort.Strings(names)
	for _, name := range names {
		group := byName[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, group[0].help, name, typ); err != nil {
			return err
		}
		for _, d := range group {
			labels := ""
			if d.labels != "" {
				labels = "{" + d.labels + "}"
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", d.name, labels, formatFloat(d.fn())); err != nil {
				return err
			}
		}
	}
	return nil
}

// PhaseHistogramMetric is the name of the exported per-phase latency
// histogram family.
const PhaseHistogramMetric = "metricdb_phase_duration_seconds"

// PhaseQuantileMetric is the name of the precomputed per-phase quantile
// family (p50/p95/p99 upper-bound estimates, as a gauge with a `quantile`
// label) so operators read latency summaries without post-processing the
// raw buckets.
const PhaseQuantileMetric = "metricdb_phase_duration_quantile_seconds"

// summaryQuantiles are the precomputed quantiles in the exposition.
var summaryQuantiles = []struct {
	label string
	q     float64
}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}}

// writePhaseHistograms renders the tracers' phase histograms as one
// Prometheus histogram family with a `phase` label (plus each tracer's extra
// labels), cumulative buckets in seconds.
func writePhaseHistograms(w io.Writer, tracers []labeledTracer) error {
	if len(tracers) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP %s Query-processing phase latency.\n# TYPE %s histogram\n",
		PhaseHistogramMetric, PhaseHistogramMetric); err != nil {
		return err
	}
	for _, lt := range tracers {
		extra := ""
		if lt.labels != "" {
			extra = "," + lt.labels
		}
		for p := 0; p < NumPhases; p++ {
			snap := lt.tracer.Snapshot(Phase(p))
			name := Phase(p).String()
			var cum int64
			for i, c := range snap.Counts {
				cum += c
				le := "+Inf"
				if b := BucketBound(i); b >= 0 {
					le = formatFloat(b.Seconds())
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{phase=%q,le=%q%s} %d\n",
					PhaseHistogramMetric, name, le, extra, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum{phase=%q%s} %s\n", PhaseHistogramMetric, name, extra,
				formatFloat(float64(snap.SumNs)/1e9)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count{phase=%q%s} %d\n", PhaseHistogramMetric, name, extra, snap.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePhaseQuantiles renders the precomputed p50/p95/p99 summary lines per
// phase (and per attached tracer), skipping empty histograms.
func writePhaseQuantiles(w io.Writer, tracers []labeledTracer) error {
	if len(tracers) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP %s Upper-bound phase latency quantiles, precomputed from the histogram buckets.\n# TYPE %s gauge\n",
		PhaseQuantileMetric, PhaseQuantileMetric); err != nil {
		return err
	}
	for _, lt := range tracers {
		extra := ""
		if lt.labels != "" {
			extra = "," + lt.labels
		}
		for p := 0; p < NumPhases; p++ {
			snap := lt.tracer.Snapshot(Phase(p))
			if snap.Count == 0 {
				continue
			}
			name := Phase(p).String()
			for _, sq := range summaryQuantiles {
				if _, err := fmt.Fprintf(w, "%s{phase=%q,quantile=%q%s} %s\n",
					PhaseQuantileMetric, name, sq.label, extra,
					formatFloat(snap.Quantile(sq.q).Seconds())); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WritePrometheus writes the full exposition: phase histograms (the primary
// tracer plus any attached per-server tracers) with precomputed quantile
// summaries, the tracer's slow-query and span totals, then registered
// counters and gauges.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var tracers []labeledTracer
	if r.tracer != nil {
		tracers = append(tracers, labeledTracer{tracer: r.tracer})
	}
	r.mu.Lock()
	tracers = append(tracers, r.extra...)
	r.mu.Unlock()
	if err := writePhaseHistograms(w, tracers); err != nil {
		return err
	}
	if err := writePhaseQuantiles(w, tracers); err != nil {
		return err
	}
	if t := r.tracer; t != nil {
		tracerCounters := []metricDef{
			{name: "metricdb_slow_queries_total", help: "Query calls at or above the slow-query threshold.",
				fn: func() float64 { return float64(t.SlowQueriesTotal()) }},
			{name: "metricdb_traced_queries_total", help: "Query calls observed by the tracer.",
				fn: func() float64 { return float64(t.Queries()) }},
			{name: "metricdb_trace_spans_total", help: "Phase spans recorded by the tracer.",
				fn: func() float64 { return float64(t.SpansTotal()) }},
			{name: "metricdb_dist_spans_total", help: "Distributed spans recorded or imported by the tracer.",
				fn: func() float64 { return float64(t.DistSpansTotal()) }},
		}
		if err := writeFamily(w, "counter", tracerCounters); err != nil {
			return err
		}
	}
	r.mu.Lock()
	counters := append([]metricDef(nil), r.counters...)
	gauges := append([]metricDef(nil), r.gauges...)
	r.mu.Unlock()
	if err := writeFamily(w, "counter", counters); err != nil {
		return err
	}
	return writeFamily(w, "gauge", gauges)
}
