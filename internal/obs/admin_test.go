package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// get performs one request against the admin handler and returns the body.
func get(t *testing.T, reg *Registry, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	AdminHandler(reg).ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(body)
}

func TestAdminMetricsEndpoint(t *testing.T) {
	tr := New(Config{})
	tr.Observe(PhasePageFetch, time.Millisecond)
	reg := NewRegistry(tr)
	reg.Gauge("metricdb_buffer_hit_rate", "", "Buffer hit ratio.", func() float64 { return 0.5 })

	code, body := get(t, reg, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`metricdb_phase_duration_seconds_count{phase="page_fetch"} 1`,
		"metricdb_buffer_hit_rate 0.5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestAdminTracesEndpoint(t *testing.T) {
	tr := New(Config{})
	tr.Observe(PhaseWireEncode, 2*time.Microsecond)
	code, body := get(t, NewRegistry(tr), "/debug/traces")
	if code != 200 {
		t.Fatalf("/debug/traces status %d", code)
	}
	line := strings.TrimSpace(body)
	var rec struct {
		AtNs  int64  `json:"at_ns"`
		Phase string `json:"phase"`
		DurNs int64  `json:"dur_ns"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("trace line is not JSON: %v: %q", err, line)
	}
	if rec.Phase != "wire_encode" || rec.DurNs != 2000 {
		t.Errorf("trace record = %+v", rec)
	}
}

func TestAdminSlowEndpoint(t *testing.T) {
	tr := New(Config{SlowQueryThreshold: time.Nanosecond})
	tr.RecordQuery("multi_all", 4, time.Second, 10, 20, 30)
	code, body := get(t, NewRegistry(tr), "/debug/slow")
	if code != 200 {
		t.Fatalf("/debug/slow status %d", code)
	}
	var records []SlowQuery
	if err := json.Unmarshal([]byte(body), &records); err != nil {
		t.Fatalf("slow log is not JSON: %v", err)
	}
	if len(records) != 1 || records[0].Op != "multi_all" || records[0].PagesRead != 10 {
		t.Errorf("slow records = %+v", records)
	}
}

func TestAdminPprofEndpoint(t *testing.T) {
	code, body := get(t, NewRegistry(nil), "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}
