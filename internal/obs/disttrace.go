package obs

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Distributed tracing. The paper's §5.3 parallelization is shared-nothing —
// a coordinator fans a block of queries out to s servers — so a slow batch
// can only be attributed when the coordinator's view and every server's view
// stitch into one trace. The machinery here is deliberately small: a trace
// is identified by a TraceID minted at the coordinator, every unit of work
// (the batch, one server call attempt, one server-side request handling) is
// a DistSpan carrying its parent SpanID, and spans cross process boundaries
// as plain values (the wire layer serializes them in responses; ImportSpans
// stitches a remote subtree into the local ring). Like the phase spans,
// distributed spans are strictly observational and every method is safe on a
// nil *Tracer.

// TraceID identifies one distributed trace (16 hex digits, minted by the
// coordinator that starts the root span).
type TraceID string

// SpanID identifies one span within a trace (16 hex digits).
type SpanID string

// newID mints a random 64-bit hex ID. crypto/rand keeps IDs collision-free
// across processes without coordination; on the (never-observed) failure
// path a process-local counter keeps IDs at least locally unique.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", idFallback.Add(1))
	}
	return fmt.Sprintf("%016x", binary.BigEndian.Uint64(b[:]))
}

var idFallback atomic.Uint64

// SpanContext is the propagated position in a distributed trace: the trace
// and the span that new child spans should attach under. The zero value
// means "no trace"; starting a child from it starts a new root trace.
type SpanContext struct {
	Trace TraceID `json:"trace"`
	Span  SpanID  `json:"span"`
}

// Valid reports whether the context names a trace.
func (c SpanContext) Valid() bool { return c.Trace != "" && c.Span != "" }

// DistSpan is one completed distributed span. Timestamps are wall-clock
// (UnixNano) so spans recorded on different nodes order on one shared
// timeline; within a node durations still come from the monotonic clock.
type DistSpan struct {
	Trace  TraceID `json:"trace"`
	Span   SpanID  `json:"span"`
	Parent SpanID  `json:"parent,omitempty"`
	// Name is the unit of work: "multi_all", "server_call", "request", ...
	Name string `json:"name"`
	// Node labels the process/server that recorded the span (the tracer's
	// Config.Node, or a label set with SetServer).
	Node string `json:"node,omitempty"`
	// Attempt distinguishes sibling retry spans of one logical call
	// (1 = first try).
	Attempt int `json:"attempt,omitempty"`
	// Err holds the failure that ended the span, empty on success.
	Err         string `json:"err,omitempty"`
	StartUnixNs int64  `json:"start_unix_ns"`
	DurNs       int64  `json:"dur_ns"`
}

// distRing is a bounded ring of distributed spans, newest overwriting
// oldest. Distributed spans are coarse (per batch / per server call), so a
// mutex-guarded ring mirrors spanRing's tradeoff.
type distRing struct {
	mu    sync.Mutex
	ring  []DistSpan
	next  int
	total int64
}

func newDistRing(size int) *distRing {
	if size < 1 {
		size = 1
	}
	return &distRing{ring: make([]DistSpan, 0, size)}
}

func (r *distRing) add(s DistSpan) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, s)
		r.next = len(r.ring) % cap(r.ring)
		return
	}
	r.ring[r.next] = s
	r.next = (r.next + 1) % len(r.ring)
}

func (r *distRing) snapshot() []DistSpan {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DistSpan, 0, len(r.ring))
	if len(r.ring) < cap(r.ring) {
		return append(out, r.ring...)
	}
	out = append(out, r.ring[r.next:]...)
	return append(out, r.ring[:r.next]...)
}

// ActiveSpan is an in-progress distributed span. The zero value (and any
// span started on a nil tracer) is inert: every method is a no-op and
// Context returns the zero SpanContext.
type ActiveSpan struct {
	tr    *Tracer
	span  DistSpan
	start time.Time
}

// StartSpan starts a new root span in a fresh trace.
func (t *Tracer) StartSpan(name string) *ActiveSpan {
	return t.StartSpanFrom(SpanContext{}, name)
}

// StartSpanFrom starts a span under parent. An invalid (zero) parent starts
// a new root span in a fresh trace — so a server can call it with whatever
// context a request carried, traced or not.
func (t *Tracer) StartSpanFrom(parent SpanContext, name string) *ActiveSpan {
	if t == nil || t.dist == nil {
		return nil
	}
	sp := &ActiveSpan{
		tr:    t,
		start: time.Now(),
		span: DistSpan{
			Span: SpanID(newID()),
			Name: name,
			Node: t.node,
		},
	}
	if parent.Valid() {
		sp.span.Trace = parent.Trace
		sp.span.Parent = parent.Span
	} else {
		sp.span.Trace = TraceID(newID())
	}
	sp.span.StartUnixNs = sp.start.UnixNano()
	return sp
}

// Context returns the span's propagation context (zero for inert spans).
func (sp *ActiveSpan) Context() SpanContext {
	if sp == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: sp.span.Trace, Span: sp.span.Span}
}

// StartChild starts a child span of sp on the same tracer.
func (sp *ActiveSpan) StartChild(name string) *ActiveSpan {
	if sp == nil {
		return nil
	}
	return sp.tr.StartSpanFrom(sp.Context(), name)
}

// SetServer overrides the span's node label (e.g. "srv3" for the
// coordinator's view of a server call).
func (sp *ActiveSpan) SetServer(label string) {
	if sp != nil {
		sp.span.Node = label
	}
}

// SetAttempt tags the span as the n-th attempt of a retried call.
func (sp *ActiveSpan) SetAttempt(n int) {
	if sp != nil {
		sp.span.Attempt = n
	}
}

// SetErr records the failure that the span's work ended with.
func (sp *ActiveSpan) SetErr(err string) {
	if sp != nil {
		sp.span.Err = err
	}
}

// End completes the span and retains it in the tracer's ring.
func (sp *ActiveSpan) End() {
	if sp == nil {
		return
	}
	sp.span.DurNs = int64(time.Since(sp.start))
	sp.tr.dist.add(sp.span)
}

// Span returns a copy of the span as recorded so far (duration filled only
// after End). Inert spans return the zero DistSpan.
func (sp *ActiveSpan) Span() DistSpan {
	if sp == nil {
		return DistSpan{}
	}
	return sp.span
}

// ImportSpans stitches spans recorded elsewhere (a server's response
// subtree) into this tracer's ring, preserving their IDs and timestamps.
func (t *Tracer) ImportSpans(spans []DistSpan) {
	if t == nil || t.dist == nil {
		return
	}
	for _, s := range spans {
		t.dist.add(s)
	}
}

// DistSpans returns the retained distributed spans, oldest first.
func (t *Tracer) DistSpans() []DistSpan {
	if t == nil || t.dist == nil {
		return nil
	}
	return t.dist.snapshot()
}

// DistSpansTotal returns how many distributed spans were recorded or
// imported over the tracer's lifetime.
func (t *Tracer) DistSpansTotal() int64 {
	if t == nil || t.dist == nil {
		return 0
	}
	t.dist.mu.Lock()
	defer t.dist.mu.Unlock()
	return t.dist.total
}

// TraceSpans returns the retained spans of one trace, in recording order.
func (t *Tracer) TraceSpans(id TraceID) []DistSpan {
	var out []DistSpan
	for _, s := range t.DistSpans() {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out
}

// TraceNode is one span with its stitched children, the tree view of a
// cross-server trace.
type TraceNode struct {
	DistSpan
	Children []*TraceNode `json:"children,omitempty"`
}

// StitchTrace builds the span tree of one trace from a flat span set:
// children attach under their parent, sorted by start time (sibling retry
// attempts therefore appear in firing order); spans whose parent is missing
// from the set (or absent entirely) become roots. A single-root trace
// returns that root; multiple orphans are grouped under a synthetic node so
// the caller always gets one tree.
func StitchTrace(spans []DistSpan, id TraceID) *TraceNode {
	nodes := make(map[SpanID]*TraceNode)
	var ordered []*TraceNode
	for _, s := range spans {
		if s.Trace != id {
			continue
		}
		n := &TraceNode{DistSpan: s}
		nodes[s.Span] = n
		ordered = append(ordered, n)
	}
	if len(ordered) == 0 {
		return nil
	}
	var roots []*TraceNode
	for _, n := range ordered {
		if p, ok := nodes[n.Parent]; ok && n.Parent != "" && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortChildren func(n *TraceNode)
	sortChildren = func(n *TraceNode) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].StartUnixNs < n.Children[j].StartUnixNs
		})
		for _, c := range n.Children {
			sortChildren(c)
		}
	}
	if len(roots) == 1 {
		sortChildren(roots[0])
		return roots[0]
	}
	synth := &TraceNode{DistSpan: DistSpan{Trace: id, Name: "(stitched)"}, Children: roots}
	sortChildren(synth)
	return synth
}

// Trace returns the stitched tree of one retained trace, or nil when no
// spans of that trace are retained.
func (t *Tracer) Trace(id TraceID) *TraceNode {
	return StitchTrace(t.DistSpans(), id)
}

// TraceIDs returns the distinct trace IDs among the retained spans, most
// recently recorded last.
func (t *Tracer) TraceIDs() []TraceID {
	seen := make(map[TraceID]bool)
	var out []TraceID
	for _, s := range t.DistSpans() {
		if !seen[s.Trace] {
			seen[s.Trace] = true
			out = append(out, s.Trace)
		}
	}
	return out
}

// WriteDistTraces writes the retained distributed spans as JSONL, oldest
// first, one DistSpan object per line. It returns the number of spans
// written; nil tracers (or disabled retention) write nothing.
func (t *Tracer) WriteDistTraces(w io.Writer) (int, error) {
	spans := t.DistSpans()
	if len(spans) == 0 {
		return 0, nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return 0, err
		}
	}
	return len(spans), bw.Flush()
}
