package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The latency histogram uses exponential (power-of-two) buckets starting at
// histBase: bucket i covers durations in (histBase<<(i-1), histBase<<i],
// bucket 0 covers [0, histBase], and the final slot is the +Inf overflow.
// 28 doubling buckets from 256 ns reach ~34 s, which brackets everything
// from a buffer hit to a pathological batch.
const (
	histBase    = 256 * time.Nanosecond
	histBuckets = 28
)

// Histogram is a fixed-bucket exponential latency histogram with atomic
// counters; Observe is lock-free and safe for concurrent use. The zero
// value is ready to use.
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	if d <= histBase {
		return 0
	}
	// ceil(log2(d / histBase)): the number of doublings needed.
	q := (uint64(d) + uint64(histBase) - 1) / uint64(histBase)
	idx := bits.Len64(q - 1)
	if idx > histBuckets {
		return histBuckets
	}
	return idx
}

// Observe records one duration. Negative durations (a clock oddity) count
// as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// BucketBound returns the inclusive upper bound of bucket i, or a negative
// duration for the +Inf overflow slot.
func BucketBound(i int) time.Duration {
	if i >= histBuckets {
		return -1
	}
	return histBase << uint(i)
}

// HistSnapshot is a point-in-time copy of a histogram. Counts has one entry
// per bucket plus the +Inf overflow slot; entries are per-bucket counts,
// not cumulative.
type HistSnapshot struct {
	Counts []int64
	Count  int64
	SumNs  int64
}

// Snapshot copies the histogram's counters. Taken while observations are in
// flight it is approximately consistent (each counter is individually
// atomic), which is the usual exposition contract.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Counts: make([]int64, histBuckets+1)}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNs = h.sumNs.Load()
	return s
}

// Sub returns the delta s − prev: the observations recorded between the two
// snapshots (prev taken earlier on the same histogram). Buckets absent from
// prev count as zero, so a zero-value prev returns s itself. Deltas are the
// wire unit for shipping a server's per-request phase costs back to the
// coordinator.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count - prev.Count,
		SumNs:  s.SumNs - prev.SumNs,
	}
	for i, c := range s.Counts {
		d.Counts[i] = c
		if i < len(prev.Counts) {
			d.Counts[i] -= prev.Counts[i]
		}
	}
	return d
}

// merge folds a snapshot's counts into the histogram (bucket-wise adds), the
// receiving half of the wire delta transport. Snapshots with more buckets
// than the histogram (a future format) spill the excess into overflow.
func (h *Histogram) merge(s HistSnapshot) {
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if i > histBuckets {
			h.counts[histBuckets].Add(c)
			continue
		}
		h.counts[i].Add(c)
	}
	h.count.Add(s.Count)
	h.sumNs.Add(s.SumNs)
}

// MergeSnapshot folds a phase-histogram delta (HistSnapshot.Sub) received
// from another node into this tracer's histogram for phase p. No-op on nil
// tracers and empty deltas.
func (t *Tracer) MergeSnapshot(p Phase, snap HistSnapshot) {
	if t == nil || int(p) >= NumPhases || (snap.Count == 0 && snap.SumNs == 0) {
		return
	}
	t.hist[p].merge(snap)
}

// Mean returns the mean observation, 0 when empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the upper bound of the bucket where the q-th observation falls. Overflow
// observations report the last finite bound. Returns 0 when empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			if b := BucketBound(i); b >= 0 {
				return b
			}
			return histBase << uint(histBuckets-1)
		}
	}
	return histBase << uint(histBuckets-1)
}
