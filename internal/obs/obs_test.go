package obs

import (
	"strings"
	"testing"
	"time"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 0},
		{histBase, 0},
		{histBase + 1, 1},
		{2 * histBase, 1},
		{2*histBase + 1, 2},
		{4 * histBase, 2},
		{histBase << histBuckets, histBuckets},
		{time.Hour, histBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every observation must land in the bucket whose bound covers it.
	for i := 0; i < histBuckets; i++ {
		b := BucketBound(i)
		if got := bucketIndex(b); got != i {
			t.Errorf("bucketIndex(bound %d = %v) = %d", i, b, got)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond) // bucket covering 1us
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if got := s.Quantile(0.5); got < time.Microsecond || got > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1us bucket bound", got)
	}
	if got := s.Quantile(0.99); got < time.Millisecond || got > 2*time.Millisecond {
		t.Errorf("p99 = %v, want ~1ms bucket bound", got)
	}
	if got := s.Mean(); got < 90*time.Microsecond || got > 120*time.Microsecond {
		t.Errorf("mean = %v, want ~100us", got)
	}
	var empty Histogram
	if got := empty.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

// TestNilTracer pins the nil-hook contract: every method of a nil tracer
// must be a safe no-op, because instrumented code calls them
// unconditionally.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports Enabled")
	}
	tr.Observe(PhaseKernel, time.Millisecond)
	tr.ObserveSince(PhaseKernel, time.Now())
	tr.Start(PhaseKernel).End()
	tr.RecordQuery("single", 1, time.Second, 1, 2, 3)
	if got := tr.Queries(); got != 0 {
		t.Errorf("nil Queries() = %d", got)
	}
	if got := tr.SlowQueries(); got != nil {
		t.Errorf("nil SlowQueries() = %v", got)
	}
	if got := tr.SlowQueriesTotal(); got != 0 {
		t.Errorf("nil SlowQueriesTotal() = %d", got)
	}
	if got := tr.SpansTotal(); got != 0 {
		t.Errorf("nil SpansTotal() = %d", got)
	}
	if n, err := tr.WriteTraces(&strings.Builder{}); n != 0 || err != nil {
		t.Errorf("nil WriteTraces = %d, %v", n, err)
	}
	if s := tr.Snapshot(PhaseKernel); s.Count != 0 {
		t.Errorf("nil Snapshot count = %d", s.Count)
	}
	if len(tr.Snapshots()) != NumPhases {
		t.Error("nil Snapshots length mismatch")
	}
}

func TestSlowLogRingAndThreshold(t *testing.T) {
	tr := New(Config{SlowQueryThreshold: 10 * time.Millisecond, SlowLogSize: 3})
	tr.RecordQuery("single", 1, time.Millisecond, 0, 0, 0) // below threshold
	for i := 0; i < 5; i++ {
		tr.RecordQuery("multi_all", i, time.Duration(i+10)*time.Millisecond, int64(i), 0, 0)
	}
	got := tr.SlowQueries()
	if len(got) != 3 {
		t.Fatalf("retained %d records, want 3", len(got))
	}
	// Oldest-first: the ring of size 3 after 5 slow records holds 2,3,4.
	for i, rec := range got {
		if rec.Queries != i+2 {
			t.Errorf("record %d has Queries=%d, want %d (oldest-first ring)", i, rec.Queries, i+2)
		}
	}
	if tr.SlowQueriesTotal() != 5 {
		t.Errorf("SlowQueriesTotal = %d, want 5", tr.SlowQueriesTotal())
	}
	if tr.Queries() != 6 {
		t.Errorf("Queries = %d, want 6", tr.Queries())
	}
	if tr.SlowQueryThreshold() != 10*time.Millisecond {
		t.Errorf("threshold = %v", tr.SlowQueryThreshold())
	}

	off := New(Config{SlowQueryThreshold: -1})
	off.RecordQuery("single", 1, time.Hour, 0, 0, 0)
	if off.SlowQueries() != nil || off.SlowQueryThreshold() != 0 {
		t.Error("negative threshold did not disable the slow log")
	}
}

func TestTraceExportJSONL(t *testing.T) {
	tr := New(Config{TraceBufferSize: 4})
	tr.Observe(PhaseKernel, 5*time.Microsecond)
	tr.Observe(PhasePageWait, time.Microsecond)
	var sb strings.Builder
	n, err := tr.WriteTraces(&sb)
	if err != nil || n != 2 {
		t.Fatalf("WriteTraces = %d, %v", n, err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), sb.String())
	}
	if !strings.Contains(lines[0], `"phase":"kernel"`) || !strings.Contains(lines[0], `"dur_ns":5000`) {
		t.Errorf("line 0 = %s", lines[0])
	}
	if !strings.Contains(lines[1], `"phase":"page_wait"`) {
		t.Errorf("line 1 = %s", lines[1])
	}
	// Overflow: the ring keeps the newest spans.
	for i := 0; i < 10; i++ {
		tr.Observe(PhaseMerge, time.Duration(i)*time.Microsecond)
	}
	sb.Reset()
	if n, _ := tr.WriteTraces(&sb); n != 4 {
		t.Errorf("after overflow retained %d spans, want 4", n)
	}
	if tr.SpansTotal() != 12 {
		t.Errorf("SpansTotal = %d, want 12", tr.SpansTotal())
	}
}

func TestPhaseNames(t *testing.T) {
	names := PhaseNames()
	if len(names) != NumPhases {
		t.Fatalf("PhaseNames() has %d entries, want %d", len(names), NumPhases)
	}
	seen := map[string]bool{}
	for p, name := range names {
		if name == "" || name == "unknown" {
			t.Errorf("phase %d has no name", p)
		}
		if seen[name] {
			t.Errorf("duplicate phase name %q", name)
		}
		seen[name] = true
		if Phase(p).String() != name {
			t.Errorf("Phase(%d).String() = %q, want %q", p, Phase(p).String(), name)
		}
	}
	if Phase(200).String() != "unknown" {
		t.Error("out-of-range phase did not stringify as unknown")
	}
}

func TestRegistryPrometheusExposition(t *testing.T) {
	tr := New(Config{})
	tr.Observe(PhaseKernel, 3*time.Microsecond)
	tr.RecordQuery("single", 1, time.Second, 1, 2, 3)
	reg := NewRegistry(tr)
	reg.Gauge("metricdb_buffer_pages", `engine="scan"`, "Buffered pages.", func() float64 { return 7 })
	reg.Counter("metricdb_disk_reads_total", "", "Disk page reads.", func() float64 { return 42 })

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE metricdb_phase_duration_seconds histogram",
		`metricdb_phase_duration_seconds_bucket{phase="kernel",le="+Inf"} 1`,
		`metricdb_phase_duration_seconds_count{phase="kernel"} 1`,
		`metricdb_phase_duration_seconds_count{phase="page_fetch"} 0`,
		"# TYPE metricdb_buffer_pages gauge",
		`metricdb_buffer_pages{engine="scan"} 7`,
		"# TYPE metricdb_disk_reads_total counter",
		"metricdb_disk_reads_total 42",
		"metricdb_slow_queries_total 1",
		"metricdb_traced_queries_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the +Inf bucket equals the count.
	if !strings.Contains(out, `_bucket{phase="kernel",le="+Inf"} 1`) {
		t.Error("+Inf bucket not cumulative")
	}
	// A nil-tracer registry omits histograms but still serves callbacks.
	sb.Reset()
	if err := NewRegistry(nil).WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "phase_duration") {
		t.Error("nil-tracer registry exported histograms")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	tr := New(Config{})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				tr.Observe(PhaseKernel, time.Duration(i)*time.Nanosecond)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := tr.Snapshot(PhaseKernel).Count; got != 4000 {
		t.Errorf("concurrent count = %d, want 4000", got)
	}
}
