package obs

import (
	"sync"
	"time"
)

// SlowQuery is one retained slow-query record: a query-processing call
// whose wall-clock duration reached the tracer's threshold, together with
// the cost counters of that call (its own Stats deltas, in the paper's
// units).
type SlowQuery struct {
	// Time is when the call finished.
	Time time.Time `json:"time"`
	// Op names the entry point: "single", "multi", "multi_all".
	Op string `json:"op"`
	// Queries is the batch size m of the call.
	Queries int `json:"queries"`
	// Duration is the call's wall-clock time.
	Duration time.Duration `json:"duration_ns"`
	// PagesRead, DistCalcs and Avoided are the call's own cost deltas.
	PagesRead int64 `json:"pages_read"`
	DistCalcs int64 `json:"dist_calcs"`
	Avoided   int64 `json:"avoided"`
}

// SlowLog is a bounded ring of slow-query records. Oldest records are
// overwritten once the ring is full.
type SlowLog struct {
	threshold time.Duration
	mu        sync.Mutex
	ring      []SlowQuery
	next      int
	total     int64
}

func newSlowLog(threshold time.Duration, size int) *SlowLog {
	if size < 1 {
		size = 1
	}
	return &SlowLog{threshold: threshold, ring: make([]SlowQuery, 0, size)}
}

func (l *SlowLog) record(op string, m int, d time.Duration, pagesRead, distCalcs, avoided int64) {
	if d < l.threshold {
		return
	}
	rec := SlowQuery{
		Time: time.Now(), Op: op, Queries: m, Duration: d,
		PagesRead: pagesRead, DistCalcs: distCalcs, Avoided: avoided,
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, rec)
		l.next = len(l.ring) % cap(l.ring)
		return
	}
	l.ring[l.next] = rec
	l.next = (l.next + 1) % len(l.ring)
}

// entries returns the retained records, oldest first.
func (l *SlowLog) entries() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		return append(out, l.ring...)
	}
	out = append(out, l.ring[l.next:]...)
	return append(out, l.ring[:l.next]...)
}

// Total returns how many slow queries were recorded (including overwritten
// ones).
func (l *SlowLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// SlowQueriesTotal returns the lifetime slow-query count (0 on nil tracers
// or disabled logs), the counter behind metricdb_slow_queries_total.
func (t *Tracer) SlowQueriesTotal() int64 {
	if t == nil || t.slow == nil {
		return 0
	}
	return t.slow.Total()
}
