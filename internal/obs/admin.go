package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Endpoint is an extra admin route mounted by AdminHandler — the way a
// binary (cmd/msqserver) adds process-specific views such as /debug/explain
// without this package importing the query layer.
type Endpoint struct {
	Pattern string
	Handler http.HandlerFunc
}

// AdminHandler serves the observability endpoints of one registry:
//
//	/metrics             Prometheus text exposition (phase histograms with
//	                     p50/p95/p99 summaries, gauges, counters)
//	/debug/traces        retained phase spans as JSONL, oldest first
//	/debug/traces?dist=1 retained distributed spans as JSONL, oldest first
//	/debug/traces?trace=ID  one stitched cross-server trace as a JSON tree
//	/debug/slow          slow-query log as JSON, oldest first
//	/debug/pprof/*       the standard Go profiling endpoints
//
// plus any extra endpoints the caller mounts. The handler is read-only and
// safe to serve concurrently with query processing; it is intended for a
// loopback or otherwise trusted admin listener (cmd/msqserver's -admin
// flag), not for the query port.
func AdminHandler(r *Registry, extra ...Endpoint) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // best effort on a live conn
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
		t := r.Tracer()
		if id := req.URL.Query().Get("trace"); id != "" {
			tree := t.Trace(TraceID(id))
			if tree == nil {
				http.Error(w, "trace not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(tree) //nolint:errcheck // best effort on a live conn
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if req.URL.Query().Get("dist") != "" {
			t.WriteDistTraces(w) //nolint:errcheck // best effort on a live conn
			return
		}
		t.WriteTraces(w) //nolint:errcheck // best effort on a live conn
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		records := r.Tracer().SlowQueries()
		if records == nil {
			records = []SlowQuery{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(records) //nolint:errcheck // best effort on a live conn
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, e := range extra {
		mux.HandleFunc(e.Pattern, e.Handler)
	}
	return mux
}
