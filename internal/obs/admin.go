package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// AdminHandler serves the observability endpoints of one registry:
//
//	/metrics        Prometheus text exposition (phase histograms, gauges)
//	/debug/traces   retained phase spans as JSONL, oldest first
//	/debug/slow     slow-query log as JSON, oldest first
//	/debug/pprof/*  the standard Go profiling endpoints
//
// The handler is read-only and safe to serve concurrently with query
// processing; it is intended for a loopback or otherwise trusted admin
// listener (cmd/msqserver's -admin flag), not for the query port.
func AdminHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // best effort on a live conn
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		r.Tracer().WriteTraces(w) //nolint:errcheck // best effort on a live conn
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		records := r.Tracer().SlowQueries()
		if records == nil {
			records = []SlowQuery{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(records) //nolint:errcheck // best effort on a live conn
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
