// Package obs is the observability layer of the query processor: span
// tracing on the monotonic clock with per-phase latency histograms, a
// slow-query log, a bounded trace buffer exportable as JSONL, and a metrics
// registry with Prometheus text exposition. It is stdlib-only and strictly
// observational: nothing in this package influences query answers, page
// scheduling, or the paper's cost counters.
//
// The paper's evaluation (§5.1 I/O cost, §5.2 CPU cost avoidance) is
// expressed in end-of-run totals — pages read, distance calculations,
// avoidance tries. Those totals say nothing about *where wall-clock time
// went inside a batch*: waiting for a page, running the distance kernel,
// probing the triangle-inequality lemmas, merging per-query answers, or
// encoding responses. The phase histograms here provide exactly that
// decomposition, the precondition for any further "fast as the hardware
// allows" tuning, and the VA-file line of work (Weber et al., VLDB 1998)
// motivates the same split: its win is shifting cost between approximation
// scan and exact refinement, invisible without per-phase timers.
//
// # Nil-hook fast path
//
// Every Tracer method is safe — and a near-free no-op — on a nil receiver.
// Instrumented code therefore holds a possibly-nil *Tracer and calls it
// unconditionally at coarse-grained sites (one span per page, per request,
// per server call), or guards fine-grained accumulation behind a single
// `tr != nil` test hoisted out of the hot loop. The disabled cost is one
// predictable branch per page, which the overhead gate in
// overhead_test.go bounds at <= 2 % on the kernel hot path.
package obs

import (
	"sync/atomic"
	"time"
)

// Phase identifies one stage of query processing whose latency is
// histogrammed separately. The taxonomy follows the life of a multiple
// similarity query: plan the pages, build the query-distance matrix, then
// per page fetch/wait, kernel evaluation, avoidance checks and answer
// merging — plus the serving layer's per-server calls and wire codec work.
type Phase uint8

// Phases. The String values are the `phase` label on the exported
// metricdb_phase_duration_seconds histogram.
const (
	// PhasePageFetch is one simulated-disk page read (a buffer miss),
	// observed inside the store pager.
	PhasePageFetch Phase = iota
	// PhasePageWait is the query processor's wait for a page: the ReadPage
	// call (buffer hits are ~0) or, in the pipeline, the wait on the
	// prefetcher's delivery channel.
	PhasePageWait
	// PhasePlan is determine_relevant_data_pages: one engine Plan call.
	PhasePlan
	// PhaseMatrix is the inter-query distance matrix build (§5.2's
	// quadratic-in-m initialization overhead).
	PhaseMatrix
	// PhaseKernel is the per-page distance-kernel evaluation: the summed
	// DistanceWithin time of one page's (item, query) pairs.
	PhaseKernel
	// PhaseAvoid is the per-page Lemma-1/2 work: the summed time of the
	// triangle-inequality probes (avoidable) for one page.
	PhaseAvoid
	// PhaseMerge is the per-query merge of one page's results into the
	// answer lists (the pipeline's phase 2; the sequential path merges
	// inline and charges it to PhaseKernel).
	PhaseMerge
	// PhaseServerCall is one per-server call of the parallel cluster
	// (attempt granularity, including retries separately).
	PhaseServerCall
	// PhaseWireDecode is the JSON decode of one wire request.
	PhaseWireDecode
	// PhaseWireEncode is the JSON encode + flush of one wire response.
	PhaseWireEncode
	// PhaseAdmitWait is the time one admitted single query spent in the
	// admission queue before its batch was released (internal/admit).
	PhaseAdmitWait
	// PhaseStorageRead is one real-I/O page read of a file-backed disk
	// (store.FileDisk): the pread (or mapped copy), checksum verification
	// and decode of one page record. A nested refinement of the pager's
	// PhasePageFetch span that attributes how much of a miss was spent in
	// actual storage rather than singleflight bookkeeping.
	PhaseStorageRead

	// NumPhases is the number of phases (array sizing).
	NumPhases = int(iota)
)

var phaseNames = [NumPhases]string{
	"page_fetch",
	"page_wait",
	"plan",
	"matrix",
	"kernel",
	"avoid",
	"merge",
	"server_call",
	"wire_decode",
	"wire_encode",
	"admit_wait",
	"storage_read",
}

// String returns the phase's label value.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseNames returns the label values of all phases, indexed by Phase.
func PhaseNames() []string {
	names := make([]string, NumPhases)
	copy(names, phaseNames[:])
	return names
}

// Config tunes a Tracer. The zero value enables everything with defaults.
type Config struct {
	// SlowQueryThreshold is the duration at or above which a finished
	// query call is recorded in the slow-query log. Zero selects
	// DefaultSlowQueryThreshold; a negative value disables the log.
	SlowQueryThreshold time.Duration
	// SlowLogSize bounds the slow-query ring (0: DefaultSlowLogSize).
	SlowLogSize int
	// TraceBufferSize bounds the span ring served by /debug/traces and
	// WriteTraces (0: DefaultTraceBufferSize; negative disables span
	// retention, keeping only the histograms). The same size bounds the
	// distributed-span ring (StartSpan/ImportSpans).
	TraceBufferSize int
	// Node labels every distributed span this tracer records, so spans
	// stitched across processes identify their origin ("coordinator",
	// "srv2", ...). Empty leaves spans unlabelled.
	Node string
}

// Defaults for Config's zero values.
const (
	DefaultSlowQueryThreshold = 100 * time.Millisecond
	DefaultSlowLogSize        = 128
	DefaultTraceBufferSize    = 4096
)

// Tracer collects per-phase latency histograms, recent spans, and slow
// queries. All methods are safe on a nil *Tracer (no-ops) and safe for
// concurrent use: histograms are atomic, the rings are mutex-guarded.
type Tracer struct {
	start   time.Time
	node    string
	hist    [NumPhases]Histogram
	spans   *spanRing
	dist    *distRing
	slow    *SlowLog
	queries atomic.Int64 // query calls observed via RecordQuery
}

// New creates a Tracer. The returned tracer's clock origin is now; span
// timestamps in trace exports are offsets from it.
func New(cfg Config) *Tracer {
	if cfg.SlowQueryThreshold == 0 {
		cfg.SlowQueryThreshold = DefaultSlowQueryThreshold
	}
	if cfg.SlowLogSize == 0 {
		cfg.SlowLogSize = DefaultSlowLogSize
	}
	if cfg.TraceBufferSize == 0 {
		cfg.TraceBufferSize = DefaultTraceBufferSize
	}
	t := &Tracer{start: time.Now(), node: cfg.Node}
	if cfg.SlowQueryThreshold > 0 {
		t.slow = newSlowLog(cfg.SlowQueryThreshold, cfg.SlowLogSize)
	}
	if cfg.TraceBufferSize > 0 {
		t.spans = newSpanRing(cfg.TraceBufferSize)
		t.dist = newDistRing(cfg.TraceBufferSize)
	}
	return t
}

// Node returns the tracer's node label ("" on nil tracers).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Enabled reports whether the tracer is live. Hot loops hoist this test
// once per page instead of calling Observe per item.
func (t *Tracer) Enabled() bool { return t != nil }

// Observe records one duration under phase: a histogram sample and, when
// span retention is on, a trace entry stamped at the observation time.
func (t *Tracer) Observe(p Phase, d time.Duration) {
	if t == nil {
		return
	}
	t.hist[p].Observe(d)
	if t.spans != nil {
		t.spans.add(span{at: time.Since(t.start) - d, phase: p, dur: d})
	}
}

// ObserveSince records the time elapsed since start under phase.
func (t *Tracer) ObserveSince(p Phase, start time.Time) {
	if t == nil {
		return
	}
	t.Observe(p, time.Since(start))
}

// Span is an in-progress phase measurement. The zero Span (from a nil
// tracer) is valid and End is a no-op on it.
type Span struct {
	t     *Tracer
	phase Phase
	start time.Time
}

// Start begins a span. On a nil tracer it returns the zero Span without
// reading the clock.
func (t *Tracer) Start(p Phase) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, phase: p, start: time.Now()}
}

// End finishes the span and records it.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.Observe(s.phase, time.Since(s.start))
}

// RecordQuery accounts one finished query-processing call: op names the
// entry point ("single", "multi", "multi_all"), m is the batch size, d the
// wall-clock duration, and the counters are the call's own Stats deltas.
// Calls at or above the slow-query threshold land in the slow log.
func (t *Tracer) RecordQuery(op string, m int, d time.Duration, pagesRead, distCalcs, avoided int64) {
	if t == nil {
		return
	}
	t.queries.Add(1)
	if t.slow != nil {
		t.slow.record(op, m, d, pagesRead, distCalcs, avoided)
	}
}

// Queries returns the number of query calls recorded via RecordQuery.
func (t *Tracer) Queries() int64 {
	if t == nil {
		return 0
	}
	return t.queries.Load()
}

// SlowQueries returns the retained slow-query records, oldest first. Nil
// tracers and disabled slow logs return nil.
func (t *Tracer) SlowQueries() []SlowQuery {
	if t == nil || t.slow == nil {
		return nil
	}
	return t.slow.entries()
}

// SlowQueryThreshold returns the active threshold (0 when disabled).
func (t *Tracer) SlowQueryThreshold() time.Duration {
	if t == nil || t.slow == nil {
		return 0
	}
	return t.slow.threshold
}

// Histogram returns a snapshot of one phase's latency histogram.
func (t *Tracer) Snapshot(p Phase) HistSnapshot {
	if t == nil {
		return HistSnapshot{}
	}
	return t.hist[p].Snapshot()
}

// Snapshots returns snapshots of all phase histograms, indexed by Phase.
func (t *Tracer) Snapshots() []HistSnapshot {
	out := make([]HistSnapshot, NumPhases)
	if t == nil {
		return out
	}
	for p := 0; p < NumPhases; p++ {
		out[p] = t.hist[p].Snapshot()
	}
	return out
}
