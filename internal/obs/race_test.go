//go:build race

package obs

// raceEnabled reports that the race detector is compiled in; the overhead
// gate skips then, because instrumentation skews its timing comparison.
const raceEnabled = true
