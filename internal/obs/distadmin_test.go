package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsQuantileSummaryLines(t *testing.T) {
	tr := New(Config{})
	for i := 0; i < 100; i++ {
		tr.Observe(PhasePageFetch, time.Duration(i+1)*time.Microsecond)
	}
	_, body := get(t, NewRegistry(tr), "/metrics")
	if !strings.Contains(body, "# TYPE "+PhaseQuantileMetric+" gauge") {
		t.Fatalf("/metrics missing quantile family header:\n%s", body)
	}
	for _, q := range []string{"0.5", "0.95", "0.99"} {
		want := PhaseQuantileMetric + `{phase="page_fetch",quantile="` + q + `"}`
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Phases with no observations must not emit summary lines.
	if strings.Contains(body, `{phase="kernel",quantile=`) {
		t.Error("empty phase emitted quantile lines")
	}
}

func TestRegistryAttachTracerLabels(t *testing.T) {
	local := New(Config{})
	local.Observe(PhaseKernel, time.Microsecond)
	remote := New(Config{})
	remote.Observe(PhaseKernel, time.Millisecond)

	reg := NewRegistry(local)
	reg.AttachTracer(`server="1"`, remote)
	reg.AttachTracer(`server="2"`, nil) // ignored

	_, body := get(t, reg, "/metrics")
	for _, want := range []string{
		PhaseHistogramMetric + `_count{phase="kernel"} 1`,
		PhaseHistogramMetric + `_count{phase="kernel",server="1"} 1`,
		PhaseQuantileMetric + `{phase="kernel",quantile="0.5",server="1"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, `server="2"`) {
		t.Error("nil attached tracer produced output")
	}
}

func TestMetricsDistSpansTotal(t *testing.T) {
	tr := New(Config{})
	tr.StartSpan("multi_all").End()
	tr.ImportSpans([]DistSpan{{Trace: "t", Span: "s", Name: "request"}})
	_, body := get(t, NewRegistry(tr), "/metrics")
	if !strings.Contains(body, "metricdb_dist_spans_total 2") {
		t.Errorf("/metrics missing dist span total:\n%s", body)
	}
}

func TestAdminStitchedTraceEndpoint(t *testing.T) {
	tr := New(Config{Node: "coordinator"})
	root := tr.StartSpan("multi_all")
	child := root.StartChild("server_call")
	child.SetServer("srv0")
	child.End()
	root.End()
	reg := NewRegistry(tr)

	id := tr.TraceIDs()[0]
	code, body := get(t, reg, "/debug/traces?trace="+string(id))
	if code != 200 {
		t.Fatalf("trace endpoint status %d", code)
	}
	var tree TraceNode
	if err := json.Unmarshal([]byte(body), &tree); err != nil {
		t.Fatalf("stitched trace is not JSON: %v", err)
	}
	if tree.Name != "multi_all" || len(tree.Children) != 1 || tree.Children[0].Node != "srv0" {
		t.Errorf("stitched tree = %+v", tree)
	}
	if code, _ := get(t, reg, "/debug/traces?trace=deadbeefdeadbeef"); code != http.StatusNotFound {
		t.Errorf("unknown trace id status %d, want 404", code)
	}
}

func TestAdminDistTracesJSONL(t *testing.T) {
	tr := New(Config{Node: "srv3"})
	tr.StartSpan("request:explain").End()
	code, body := get(t, NewRegistry(tr), "/debug/traces?dist=1")
	if code != 200 {
		t.Fatalf("dist traces status %d", code)
	}
	var span DistSpan
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &span); err != nil {
		t.Fatalf("dist trace line is not JSON: %v: %q", err, body)
	}
	if span.Name != "request:explain" || span.Node != "srv3" {
		t.Errorf("span = %+v", span)
	}
}

func TestAdminExtraEndpoints(t *testing.T) {
	h := AdminHandler(NewRegistry(nil), Endpoint{
		Pattern: "/debug/custom",
		Handler: func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("custom ok")) },
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/custom", nil))
	if rec.Code != 200 || rec.Body.String() != "custom ok" {
		t.Errorf("extra endpoint: status %d body %q", rec.Code, rec.Body.String())
	}
}
