package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"time"
)

// span is one completed phase measurement retained for trace export.
type span struct {
	at    time.Duration // offset from the tracer's clock origin
	phase Phase
	dur   time.Duration
}

// spanRing is a bounded ring of completed spans; the newest overwrite the
// oldest. A plain mutex suffices: spans are recorded at page/request
// granularity, not per item.
type spanRing struct {
	mu    sync.Mutex
	ring  []span
	next  int
	total int64
}

func newSpanRing(size int) *spanRing {
	if size < 1 {
		size = 1
	}
	return &spanRing{ring: make([]span, 0, size)}
}

func (r *spanRing) add(s span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, s)
		r.next = len(r.ring) % cap(r.ring)
		return
	}
	r.ring[r.next] = s
	r.next = (r.next + 1) % len(r.ring)
}

func (r *spanRing) snapshot() []span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]span, 0, len(r.ring))
	if len(r.ring) < cap(r.ring) {
		return append(out, r.ring...)
	}
	out = append(out, r.ring[r.next:]...)
	return append(out, r.ring[:r.next]...)
}

// SpansTotal returns how many spans were recorded over the tracer's
// lifetime (including ones already overwritten in the ring).
func (t *Tracer) SpansTotal() int64 {
	if t == nil || t.spans == nil {
		return 0
	}
	t.spans.mu.Lock()
	defer t.spans.mu.Unlock()
	return t.spans.total
}

// WriteTraces writes the retained spans as JSONL, oldest first: one object
// per line with the span's start offset from the tracer's clock origin
// (monotonic), its phase, and its duration, both in nanoseconds:
//
//	{"at_ns":1203944,"phase":"kernel","dur_ns":48210}
//
// It returns the number of spans written. A nil tracer (or disabled span
// retention) writes nothing.
func (t *Tracer) WriteTraces(w io.Writer) (int, error) {
	if t == nil || t.spans == nil {
		return 0, nil
	}
	spans := t.spans.snapshot()
	bw := bufio.NewWriter(w)
	for _, s := range spans {
		if _, err := fmt.Fprintf(bw, "{\"at_ns\":%d,\"phase\":%q,\"dur_ns\":%d}\n",
			int64(s.at), s.phase.String(), int64(s.dur)); err != nil {
			return 0, err
		}
	}
	return len(spans), bw.Flush()
}
