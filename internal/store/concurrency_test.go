package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"metricdb/internal/vec"
)

func concPages(t *testing.T, n int) []*Page {
	t.Helper()
	pages := make([]*Page, n)
	for i := range pages {
		pages[i] = &Page{ID: PageID(i), Items: []Item{{ID: ItemID(i), Vec: vec.Vector{float64(i)}}}}
	}
	return pages
}

// TestBufferConcurrency hammers Get/Put/HitRate/Len/Clear from many
// goroutines; run under -race it proves the LRU list, entry map and the
// atomic counters tolerate contention, and afterwards the hit+miss total
// must equal the number of Gets issued since the last Clear.
func TestBufferConcurrency(t *testing.T) {
	buf, err := NewBuffer(8)
	if err != nil {
		t.Fatal(err)
	}
	pages := concPages(t, 32)

	const goroutines = 8
	const opsPer = 2000
	var gets atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				pid := PageID((g*7 + i) % len(pages))
				switch i % 4 {
				case 0:
					buf.Put(pid, pages[pid])
				case 1, 2:
					if pg, ok := buf.Get(pid); ok && pg.ID != pid {
						t.Errorf("Get(%d) returned page %d", pid, pg.ID)
					}
					gets.Add(1)
				default:
					buf.HitRate()
					if n := buf.Len(); n < 0 || n > buf.Capacity() {
						t.Errorf("Len() = %d outside [0, %d]", n, buf.Capacity())
					}
				}
			}
		}(g)
	}
	wg.Wait()

	hits, misses, _ := buf.HitRate()
	if hits+misses != gets.Load() {
		t.Errorf("hits %d + misses %d = %d, want %d gets", hits, misses, hits+misses, gets.Load())
	}
	buf.Clear()
	if h, m, _ := buf.HitRate(); h != 0 || m != 0 {
		t.Errorf("Clear left counters at %d/%d", h, m)
	}
	if buf.Len() != 0 {
		t.Errorf("Clear left %d pages buffered", buf.Len())
	}
}

// TestDiskConcurrentStatsSampling checks that the read counters are exact
// under concurrent readers and that Stats can be sampled while reads are
// in flight (it is lock-free and must not block or tear).
func TestDiskConcurrentStatsSampling(t *testing.T) {
	disk, err := NewDisk(concPages(t, 16))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const readsPer = 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() { // stats sampler racing the readers
		defer close(samplerDone)
		var prev int64
		for {
			select {
			case <-stop:
				return
			default:
				// Counters are loaded individually, so a snapshot may
				// skew between fields mid-flight; the per-counter loads
				// themselves must stay monotonic.
				s := disk.Stats()
				if s.Reads < prev {
					t.Errorf("Reads went backwards: %d after %d", s.Reads, prev)
					return
				}
				prev = s.Reads
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < readsPer; i++ {
				if _, err := disk.Read(PageID((g + i) % disk.NumPages())); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-samplerDone

	s := disk.Stats()
	if want := int64(goroutines * readsPer); s.Reads != want {
		t.Errorf("Reads = %d, want %d", s.Reads, want)
	}
	if s.SeqReads+s.RandReads != s.Reads {
		t.Errorf("SeqReads %d + RandReads %d != Reads %d", s.SeqReads, s.RandReads, s.Reads)
	}
}

// TestPagerSingleflight proves the read-once invariant under concurrency:
// with a buffer large enough to hold the working set, any number of
// goroutines reading any pages concurrently must produce exactly one disk
// read per distinct page — concurrent misses on the same page coalesce
// instead of racing to the disk.
func TestPagerSingleflight(t *testing.T) {
	const numPages = 16
	disk, err := NewDisk(concPages(t, numPages))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := NewBuffer(numPages)
	if err != nil {
		t.Fatal(err)
	}
	pager, err := NewPager(disk, buf)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < numPages; i++ {
				pid := PageID((g + i) % numPages) // staggered starts collide on purpose
				pg, err := pager.ReadPage(pid)
				if err != nil {
					t.Error(err)
					return
				}
				if pg.ID != pid {
					t.Errorf("ReadPage(%d) returned page %d", pid, pg.ID)
				}
			}
		}(g)
	}
	wg.Wait()

	if got := disk.Stats().Reads; got != numPages {
		t.Errorf("disk Reads = %d, want %d (one per distinct page)", got, numPages)
	}
	hits, misses, _ := buf.HitRate()
	if misses != numPages {
		t.Errorf("buffer misses = %d, want %d", misses, numPages)
	}
	if hits+misses != goroutines*numPages {
		t.Errorf("hits %d + misses %d != %d ReadPage calls", hits, misses, goroutines*numPages)
	}
}

// TestPagerSingleflightError checks that waiters coalesced onto a failed
// read all observe the error and that nothing is cached.
func TestPagerSingleflightError(t *testing.T) {
	disk, err := NewDisk(concPages(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	disk.FailOn(func(pid PageID) error {
		if pid == 2 {
			return boom
		}
		return nil
	})
	buf, err := NewBuffer(4)
	if err != nil {
		t.Fatal(err)
	}
	pager, err := NewPager(disk, buf)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	var failed atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := pager.ReadPage(2); err != nil {
				failed.Add(1)
			}
		}()
	}
	wg.Wait()
	if failed.Load() != goroutines {
		t.Errorf("%d of %d readers saw the injected error", failed.Load(), goroutines)
	}
	if _, ok := buf.Get(2); ok {
		t.Error("failed page was cached")
	}
	disk.FailOn(nil)
	if _, err := pager.ReadPage(2); err != nil {
		t.Errorf("read after disarming injection: %v", err)
	}
}
