package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"metricdb/internal/vec"
)

// FileOp names one filesystem mutation of the dataset writer. The write
// hook (WriteOptions.Hook) sees every operation in order, which is how the
// crash-safety tests (internal/fault + internal/dataset) interrupt a build
// at each individual fault point.
type FileOp string

// The writer's fault points, in the order a build performs them.
const (
	// OpCreate creates (or truncates) a file.
	OpCreate FileOp = "create"
	// OpWrite appends one blob — one page record, or the manifest body.
	OpWrite FileOp = "write"
	// OpSync fsyncs a file's contents.
	OpSync FileOp = "fsync"
	// OpRename atomically publishes the staged manifest.
	OpRename FileOp = "rename"
	// OpSyncDir fsyncs the dataset directory, making the rename durable.
	OpSyncDir FileOp = "fsync-dir"
	// OpRemove deletes an orphaned page file of a previous generation
	// (after publication; failure here cannot un-publish the dataset).
	OpRemove FileOp = "remove"
)

// TornWrite, returned from a write hook, makes the writer emit only the
// first Bytes bytes of the pending blob before aborting the build — the
// moral equivalent of power loss mid-write. The abort error wraps the
// TornWrite so tests can assert the injection was honored.
type TornWrite struct {
	// Bytes is how much of the blob reaches the file before the "crash".
	Bytes int
}

func (e *TornWrite) Error() string {
	return fmt.Sprintf("store: torn write after %d bytes", e.Bytes)
}

// WriteOptions parameterizes WriteDataset.
type WriteOptions struct {
	// Hook, when non-nil, is consulted before every filesystem mutation
	// with the operation kind and the target's base name. A non-nil
	// return aborts the build at exactly that point with no cleanup —
	// simulating a crash — except that a *TornWrite error on an OpWrite
	// first writes the requested prefix of the blob.
	Hook func(op FileOp, name string) error
	// NoSync skips the fsync calls (and their fault points). Only for
	// tests and benchmarks that build many throwaway datasets; a real
	// build must sync, or the atomic-rename protocol guarantees nothing
	// across power loss.
	NoSync bool
}

// DatasetMeta carries the dataset-wide manifest fields of a build.
type DatasetMeta struct {
	// Dim is the vector dimensionality; 0 derives it from the first
	// non-empty page.
	Dim int
	// PageCapacity records the pagination capacity (informational; 0
	// derives the largest page's item count).
	PageCapacity int
	// Attrs is copied into the manifest verbatim.
	Attrs map[string]string
	// Columnar requests version-2 columnar page records even without
	// sibling sections (a dataset that opens straight into SoA pages).
	// Pages that already carry a columnar block force this on.
	Columnar bool
	// F32 requests the float32 sibling section in every page record.
	F32 bool
	// QuantBits, when 1..8, requests quantized code sections on a
	// dataset-wide grid computed from the pages' coordinate bounds.
	QuantBits int
}

// WriteDataset builds (or atomically replaces) the persistent dataset in
// dir from pages, which must have consecutive IDs starting at 0 (the
// NewDisk contract). The protocol makes the build crash-safe:
//
//  1. the new page file is written under a generation-tagged name no
//     previous manifest references, then fsynced;
//  2. the new manifest is written to a staging name and fsynced;
//  3. the staged manifest is renamed over ManifestName — the atomic
//     publication point — and the directory is fsynced;
//  4. page files of previous generations are removed (best effort).
//
// A crash (or injected fault) before step 3 leaves the old manifest and
// its page file untouched; after step 3 the new dataset is live. There is
// no intermediate state: a reopened directory always yields the old or the
// new dataset in full, which the crash-safety suite in internal/dataset
// asserts for every fault point.
func WriteDataset(dir string, pages []*Page, meta DatasetMeta, opts WriteOptions) error {
	for i, p := range pages {
		if p == nil || p.ID != PageID(i) {
			return fmt.Errorf("store: page at slot %d is missing or misnumbered", i)
		}
	}
	dim := meta.Dim
	capacity := meta.PageCapacity
	items := 0
	for _, p := range pages {
		items += len(p.Items)
		if len(p.Items) > capacity {
			capacity = len(p.Items)
		}
		if dim == 0 && len(p.Items) > 0 {
			dim = p.Items[0].Vec.Dim()
		}
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return fmt.Errorf("store: %w", err)
	}

	// Resolve the columnar shape of the build: what the meta requests,
	// widened by whatever the pages already carry (a page that arrives
	// with a block is encoded as a version-2 record, so the manifest must
	// say so). Requested-but-missing representations are materialized
	// here, before any byte is written.
	spec := ColumnSpec{Columnar: meta.Columnar, F32: meta.F32}
	var grid *vec.QuantGrid
	wantBits := meta.QuantBits
	for _, p := range pages {
		if c := p.Cols; c != nil {
			spec.Columnar = true
			if c.F32 != nil {
				spec.F32 = true
			}
			if c.Codes != nil {
				if grid == nil && c.Grid != nil {
					grid = c.Grid
				}
				if wantBits == 0 {
					wantBits = c.CodeBits // gridless pages: rebuild at their width
				}
			}
		}
	}
	if wantBits != 0 || grid != nil {
		if grid == nil || (wantBits != 0 && grid.Bits != wantBits) {
			lo, hi := CoordinateBounds(pages, dim)
			var err error
			if grid, err = vec.BuildQuantGrid(wantBits, lo, hi); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
		spec.Quant = grid
	}
	if spec.Any() {
		spec.Columnar = true
		for _, p := range pages {
			if err := ColumnizePage(p, spec); err != nil {
				return err
			}
			if len(p.Items) == 0 && p.Cols == nil {
				p.Cols = vec.NewBlock(dim, 0) // itemless pages still need v2 records
			}
			// Codes from a foreign grid would desynchronize record and
			// manifest; re-derive on the dataset-wide grid (idempotent
			// when the grids match).
			if grid != nil && p.Cols != nil && len(p.Items) > 0 && p.Cols.Grid != grid {
				p.Cols.DeriveCodes(grid)
			}
		}
	}

	// The new generation is one past the published one, so the new page
	// file's name cannot collide with the file the live manifest needs.
	gen := int64(1)
	if old, err := readManifest(dir); err == nil {
		gen = old.Generation + 1
	} else if !errors.Is(err, ErrNoDataset) && !errors.Is(err, ErrBadManifest) {
		return err
	}

	w := &buildWriter{dir: dir, opts: opts}
	pagesName := fmt.Sprintf("pages-g%08d.dat", gen)
	version := FormatVersion
	if spec.Columnar {
		version = FormatVersionColumnar
	}
	man := &Manifest{
		Magic:        ManifestMagic,
		Version:      version,
		Generation:   gen,
		Items:        items,
		Dim:          dim,
		PageCapacity: capacity,
		PagesFile:    pagesName,
		Attrs:        meta.Attrs,
		Columnar:     spec.Columnar,
		F32:          spec.F32,
		Quant:        NewQuantGridManifest(spec.Quant),
		Pages:        make([]PageEntry, 0, len(pages)),
	}

	// Step 1: page file.
	pf, err := w.create(pagesName)
	if err != nil {
		return err
	}
	defer pf.Close() //nolint:errcheck // double close of *os.File is harmless
	var off int64
	for _, p := range pages {
		rec, err := EncodePage(p, dim)
		if err != nil {
			return err
		}
		if err := w.write(pf, pagesName, rec); err != nil {
			return err
		}
		man.Pages = append(man.Pages, PageEntry{
			Offset: off,
			Length: int64(len(rec)),
			Items:  len(p.Items),
			CRC32C: crcOf(rec),
		})
		off += int64(len(rec))
	}
	man.PagesBytes = off
	if err := w.sync(pf, pagesName); err != nil {
		return err
	}
	if err := pf.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", pagesName, err)
	}

	// Step 2: staged manifest.
	body, err := EncodeManifest(man)
	if err != nil {
		return err
	}
	mf, err := w.create(manifestTmpName)
	if err != nil {
		return err
	}
	defer mf.Close() //nolint:errcheck
	if err := w.write(mf, manifestTmpName, body); err != nil {
		return err
	}
	if err := w.sync(mf, manifestTmpName); err != nil {
		return err
	}
	if err := mf.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", manifestTmpName, err)
	}

	// Step 3: atomic publication.
	if err := w.hook(OpRename, ManifestName); err != nil {
		return err
	}
	if err := os.Rename(filepath.Join(dir, manifestTmpName), filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("store: publish manifest: %w", err)
	}
	if err := w.syncDir(); err != nil {
		return err
	}

	// Step 4: garbage-collect page files the live manifest no longer
	// references. The dataset is already published; a failure here is
	// reported but cannot produce a torn dataset.
	return removeOrphanPageFiles(dir, pagesName, w)
}

// crcOf extracts the record's trailing checksum (EncodePage wrote it last).
func crcOf(rec []byte) uint32 {
	return uint32(rec[len(rec)-4]) | uint32(rec[len(rec)-3])<<8 |
		uint32(rec[len(rec)-2])<<16 | uint32(rec[len(rec)-1])<<24
}

// removeOrphanPageFiles deletes generation-tagged page files other than
// keep. Remove errors on individual files are ignored (the next build will
// retry); only an injected fault aborts, so the crash suite can cover the
// post-publication window too.
func removeOrphanPageFiles(dir, keep string, w *buildWriter) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || name == keep || !strings.HasPrefix(name, "pages-g") || !strings.HasSuffix(name, ".dat") {
			continue
		}
		if err := w.hook(OpRemove, name); err != nil {
			return err
		}
		os.Remove(filepath.Join(dir, name)) //nolint:errcheck // best effort
	}
	return nil
}

// buildWriter funnels every filesystem mutation of a build through the
// fault hook.
type buildWriter struct {
	dir  string
	opts WriteOptions
}

func (w *buildWriter) hook(op FileOp, name string) error {
	if w.opts.Hook == nil {
		return nil
	}
	return w.opts.Hook(op, name)
}

func (w *buildWriter) create(name string) (*os.File, error) {
	if err := w.hook(OpCreate, name); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", name, err)
	}
	f, err := os.Create(filepath.Join(w.dir, name))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return f, nil
}

func (w *buildWriter) write(f *os.File, name string, blob []byte) error {
	if err := w.hook(OpWrite, name); err != nil {
		var torn *TornWrite
		if errors.As(err, &torn) {
			n := torn.Bytes
			if n > len(blob) {
				n = len(blob)
			}
			if n > 0 {
				f.Write(blob[:n]) //nolint:errcheck // we are simulating a crash
			}
		}
		return fmt.Errorf("store: write %s: %w", name, err)
	}
	if _, err := f.Write(blob); err != nil {
		return fmt.Errorf("store: write %s: %w", name, err)
	}
	return nil
}

func (w *buildWriter) sync(f *os.File, name string) error {
	if w.opts.NoSync {
		return nil
	}
	if err := w.hook(OpSync, name); err != nil {
		return fmt.Errorf("store: fsync %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", name, err)
	}
	return nil
}

func (w *buildWriter) syncDir() error {
	if w.opts.NoSync {
		return nil
	}
	if err := w.hook(OpSyncDir, "."); err != nil {
		return fmt.Errorf("store: fsync %s: %w", w.dir, err)
	}
	d, err := os.Open(w.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close() //nolint:errcheck
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", w.dir, err)
	}
	return nil
}

// readManifest loads and validates the published manifest of dir.
func readManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w in %s", ErrNoDataset, dir)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	m, err := DecodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	return m, nil
}
