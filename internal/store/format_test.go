package store

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metricdb/internal/vec"
)

// testItems builds n deterministic dim-dimensional items with labels and
// some awkward float values (negative zero, subnormals, huge magnitudes)
// so round-trips are checked at the bit level, not just approximately.
func testItems(n, dim int) []Item {
	items := make([]Item, n)
	for i := range items {
		v := make(vec.Vector, dim)
		for d := range v {
			switch (i + d) % 5 {
			case 0:
				v[d] = float64(i*dim+d) / 7
			case 1:
				v[d] = -float64(i+1) * 1e300
			case 2:
				v[d] = math.Copysign(0, -1)
			case 3:
				v[d] = 5e-324 // smallest subnormal
			default:
				v[d] = -float64(d) / float64(i+1)
			}
		}
		items[i] = Item{ID: ItemID(i), Vec: v, Label: i%3 - 1}
	}
	return items
}

func buildDataset(t *testing.T, dir string, n, dim, capacity int) []*Page {
	t.Helper()
	pages, err := Paginate(testItems(n, dim), capacity)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDataset(dir, pages, DatasetMeta{Dim: dim, PageCapacity: capacity}, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	return pages
}

func samePage(a, b *Page) bool {
	if a.ID != b.ID || len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Items {
		x, y := a.Items[i], b.Items[i]
		if x.ID != y.ID || x.Label != y.Label || x.Vec.Dim() != y.Vec.Dim() {
			return false
		}
		for d := range x.Vec {
			// Bit equality: distinguishes -0 from 0 and preserves NaN
			// payloads, which float comparison would not.
			if math.Float64bits(x.Vec[d]) != math.Float64bits(y.Vec[d]) {
				return false
			}
		}
	}
	return true
}

func TestPageRoundTrip(t *testing.T) {
	pages, err := Paginate(testItems(37, 5), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		rec, err := EncodePage(p, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodePage(rec)
		if err != nil {
			t.Fatalf("page %d: %v", p.ID, err)
		}
		if !samePage(p, got) {
			t.Fatalf("page %d round-trip mismatch", p.ID)
		}
	}
	// Empty page round-trips too.
	rec, err := EncodePage(&Page{ID: 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodePage(rec); err != nil || len(got.Items) != 0 {
		t.Fatalf("empty page: %v, %d items", err, len(got.Items))
	}
}

func TestDecodePageRejectsCorruption(t *testing.T) {
	pages, err := Paginate(testItems(16, 3), 16)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := EncodePage(pages[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every single-byte flip anywhere in the record must be detected.
	for i := range rec {
		mut := append([]byte(nil), rec...)
		mut[i] ^= 0x41
		if _, err := DecodePage(mut); !errors.Is(err, ErrCorruptPage) {
			t.Fatalf("flip at byte %d: err = %v, want ErrCorruptPage", i, err)
		}
	}
	// Truncations and extensions as well.
	for _, n := range []int{0, 1, len(rec) - 1} {
		if _, err := DecodePage(rec[:n]); !errors.Is(err, ErrCorruptPage) {
			t.Fatalf("truncation to %d: err = %v", n, err)
		}
	}
	if _, err := DecodePage(append(append([]byte(nil), rec...), 0)); !errors.Is(err, ErrCorruptPage) {
		t.Fatal("extended record accepted")
	}
}

func TestManifestRoundTripAndValidation(t *testing.T) {
	dir := t.TempDir()
	buildDataset(t, dir, 40, 4, 16)
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Items != 40 || man.Dim != 4 || man.PageCapacity != 16 || len(man.Pages) != 3 {
		t.Fatalf("manifest shape: %+v", man)
	}
	body, err := EncodeManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeManifest(body); err != nil {
		t.Fatal(err)
	}

	breakIt := func(mut func(*Manifest)) error {
		m := *man
		m.Pages = append([]PageEntry(nil), man.Pages...)
		mut(&m)
		b, err := EncodeManifest(&m)
		if err != nil {
			t.Fatal(err)
		}
		_, err = DecodeManifest(b)
		return err
	}
	cases := map[string]func(*Manifest){
		"magic":        func(m *Manifest) { m.Magic = "nope" },
		"version":      func(m *Manifest) { m.Version = 99 },
		"path escape":  func(m *Manifest) { m.PagesFile = "../evil" },
		"gap":          func(m *Manifest) { m.Pages[1].Offset++ },
		"bad length":   func(m *Manifest) { m.Pages[0].Length-- },
		"item sum":     func(m *Manifest) { m.Items++ },
		"pages bytes":  func(m *Manifest) { m.PagesBytes-- },
		"neg items":    func(m *Manifest) { m.Pages[2].Items = -1; m.PagesBytes = 0; m.Pages = m.Pages[:0]; m.Items = -1 },
		"neg capacity": func(m *Manifest) { m.PageCapacity = -1 },
	}
	for name, mut := range cases {
		if err := breakIt(mut); !errors.Is(err, ErrBadManifest) {
			t.Errorf("%s: err = %v, want ErrBadManifest", name, err)
		}
	}
}

// TestFileDiskMatchesSimulatedDisk drives the identical read sequence
// through a FileDisk and a simulated Disk and requires identical pages and
// identical I/O accounting (reads and the sequential/random split).
func TestFileDiskMatchesSimulatedDisk(t *testing.T) {
	dir := t.TempDir()
	pages := buildDataset(t, dir, 61, 6, 8)
	sim, err := NewDisk(pages)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []bool{false, true} {
		fd, err := OpenFileDisk(dir, FileDiskOptions{Mmap: mode})
		if err != nil {
			t.Fatal(err)
		}
		if fd.NumPages() != sim.NumPages() {
			t.Fatalf("NumPages %d vs %d", fd.NumPages(), sim.NumPages())
		}
		sim.ResetStats()
		seq := []PageID{0, 1, 2, 5, 6, 0, 7, 3, 4, 4, 5}
		for _, pid := range seq {
			fp, err := fd.Read(pid)
			if err != nil {
				t.Fatalf("mmap=%v: file read %d: %v", mode, pid, err)
			}
			sp, err := sim.Read(pid)
			if err != nil {
				t.Fatal(err)
			}
			if !samePage(sp, fp) {
				t.Fatalf("mmap=%v: page %d differs from simulated disk", mode, pid)
			}
		}
		if fd.Stats() != sim.Stats() {
			t.Errorf("mmap=%v: IOStats %+v vs simulated %+v", mode, fd.Stats(), sim.Stats())
		}
		prev := fd.Stats()
		if got := fd.ResetStats(); got != prev {
			t.Errorf("ResetStats returned %+v, want %+v", got, prev)
		}
		if (fd.Stats() != IOStats{}) {
			t.Errorf("stats not zeroed: %+v", fd.Stats())
		}
		// After a reset the next read pays the initial seek again (the
		// simulated disk counts the first read as random too).
		if _, err := fd.Read(0); err != nil {
			t.Fatal(err)
		}
		if s := fd.Stats(); s.Reads != 1 || s.RandReads != 1 {
			t.Errorf("post-reset classification: %+v", s)
		}
		st := fd.Storage()
		if st.BytesRead == 0 || st.ChecksumFailures != 0 {
			t.Errorf("storage stats: %+v", st)
		}
		if mode && fd.Mode() == "mmap" {
			if st.Preads != 0 {
				t.Errorf("mmap mode issued %d preads", st.Preads)
			}
		} else if st.Preads == 0 {
			t.Errorf("pread mode recorded no preads")
		}
		if _, err := fd.Read(PageID(len(pages))); err == nil {
			t.Error("out-of-range read succeeded")
		}
		if err := fd.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFileDiskDetectsOnDiskCorruption flips bytes in the published page
// file and asserts reads of the damaged page fail with ErrCorruptPage
// while other pages stay readable.
func TestFileDiskDetectsOnDiskCorruption(t *testing.T) {
	dir := t.TempDir()
	buildDataset(t, dir, 48, 4, 16)
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, man.PagesFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Damage page 1 in the middle of its item data.
	raw[man.Pages[1].Offset+man.Pages[1].Length/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []bool{false, true} {
		fd, err := OpenFileDisk(dir, FileDiskOptions{Mmap: mode})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fd.Read(0); err != nil {
			t.Fatalf("mmap=%v: undamaged page unreadable: %v", mode, err)
		}
		if _, err := fd.Read(1); !errors.Is(err, ErrCorruptPage) {
			t.Fatalf("mmap=%v: damaged page: err = %v, want ErrCorruptPage", mode, err)
		}
		if _, err := fd.Read(2); err != nil {
			t.Fatalf("mmap=%v: page after damage unreadable: %v", mode, err)
		}
		if st := fd.Storage(); st.ChecksumFailures != 1 {
			t.Errorf("mmap=%v: ChecksumFailures = %d, want 1", mode, st.ChecksumFailures)
		}
		fd.Close() //nolint:errcheck
	}
	// A truncated page file is rejected at open.
	if err := os.Truncate(path, man.PagesBytes-3); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileDisk(dir, FileDiskOptions{}); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("truncated page file: open err = %v, want ErrCorruptPage", err)
	}
}

// TestRebuildBumpsGenerationAndCollectsOrphans rebuilds a dataset in place
// and checks the generation advances, the new content is served, and the
// previous generation's page file is garbage-collected after publication.
func TestRebuildBumpsGenerationAndCollectsOrphans(t *testing.T) {
	dir := t.TempDir()
	buildDataset(t, dir, 32, 3, 8)
	first, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	pages2, err := Paginate(testItems(24, 3), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDataset(dir, pages2, DatasetMeta{Dim: 3, PageCapacity: 8}, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	second, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if second.Generation != first.Generation+1 {
		t.Errorf("generation %d after %d", second.Generation, first.Generation)
	}
	if second.PagesFile == first.PagesFile {
		t.Error("rebuild reused the live page file name")
	}
	if second.Items != 24 {
		t.Errorf("rebuilt manifest has %d items", second.Items)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "pages-g") && e.Name() != second.PagesFile {
			t.Errorf("orphan page file %s not collected", e.Name())
		}
	}
	fd, err := OpenFileDisk(dir, FileDiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close() //nolint:errcheck
	got, err := fd.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !samePage(pages2[0], got) {
		t.Error("rebuilt dataset serves stale pages")
	}
}

func TestOpenFileDiskErrors(t *testing.T) {
	if _, err := OpenFileDisk(t.TempDir(), FileDiskOptions{}); !errors.Is(err, ErrNoDataset) {
		t.Errorf("empty dir: err = %v, want ErrNoDataset", err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileDisk(dir, FileDiskOptions{}); !errors.Is(err, ErrBadManifest) {
		t.Errorf("corrupt manifest: err = %v, want ErrBadManifest", err)
	}
}

// TestEmptyDataset: zero items is a legal dataset (no page file needed).
func TestEmptyDataset(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDataset(dir, nil, DatasetMeta{}, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	fd, err := OpenFileDisk(dir, FileDiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close() //nolint:errcheck
	if fd.NumPages() != 0 {
		t.Errorf("NumPages = %d", fd.NumPages())
	}
	if _, err := fd.Read(0); err == nil {
		t.Error("read from empty dataset succeeded")
	}
}
