package store

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// IOStats is a snapshot of simulated disk activity.
type IOStats struct {
	// Reads is the total number of page reads that reached the disk
	// (buffer hits are not included when reading through a Pager).
	Reads int64
	// SeqReads counts reads of the page physically following the previous
	// one; these need no seek.
	SeqReads int64
	// RandReads counts reads that required a disk seek.
	RandReads int64
}

// Add returns the component-wise sum of s and t.
func (s IOStats) Add(t IOStats) IOStats {
	return IOStats{
		Reads:     s.Reads + t.Reads,
		SeqReads:  s.SeqReads + t.SeqReads,
		RandReads: s.RandReads + t.RandReads,
	}
}

// PageSource is the disk interface the Pager reads through. *Disk is the
// canonical implementation; wrappers (e.g. the fault injector in
// internal/fault) interpose on Read while delegating the statistics, so an
// engine can run on unreliable storage without knowing it.
type PageSource interface {
	// Read fetches the page at pid.
	Read(pid PageID) (*Page, error)
	// NumPages returns the number of pages on the disk.
	NumPages() int
	// Stats returns a snapshot of the I/O statistics.
	Stats() IOStats
	// ResetStats zeroes the I/O statistics and returns the previous
	// snapshot.
	ResetStats() IOStats
}

// Disk simulates a disk holding data pages at consecutive physical
// addresses. It is safe for concurrent use: reads serialize on a mutex (a
// disk head is a serial device, and the sequential/random classification
// depends on the previous read), while the counters themselves are atomic
// so Stats can be sampled without blocking behind an in-flight read.
type Disk struct {
	mu        sync.Mutex
	pages     []*Page
	reads     atomic.Int64
	seqReads  atomic.Int64
	randReads atomic.Int64
	lastRead  PageID
	failOn    func(PageID) error
}

// NewDisk creates a disk from pages. Pages must have consecutive IDs
// starting at 0 (as produced by Paginate); NewDisk returns an error
// otherwise, because physical-order sequential I/O accounting depends on it.
var _ PageSource = (*Disk)(nil)

func NewDisk(pages []*Page) (*Disk, error) {
	for i, p := range pages {
		if p == nil {
			return nil, fmt.Errorf("store: page %d is nil", i)
		}
		if p.ID != PageID(i) {
			return nil, fmt.Errorf("store: page at slot %d has ID %d, want %d", i, p.ID, i)
		}
	}
	return &Disk{pages: pages, lastRead: InvalidPage - 1}, nil
}

// NumPages returns the number of pages on the disk.
func (d *Disk) NumPages() int { return len(d.pages) }

// Read fetches a page from the disk, updating I/O statistics. It returns an
// error for out-of-range addresses or when failure injection is armed.
func (d *Disk) Read(pid PageID) (*Page, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if pid < 0 || int(pid) >= len(d.pages) {
		return nil, fmt.Errorf("store: read of page %d outside disk of %d pages", pid, len(d.pages))
	}
	if d.failOn != nil {
		if err := d.failOn(pid); err != nil {
			return nil, fmt.Errorf("store: injected failure reading page %d: %w", pid, err)
		}
	}
	d.reads.Add(1)
	if pid == d.lastRead+1 {
		d.seqReads.Add(1)
	} else {
		d.randReads.Add(1)
	}
	d.lastRead = pid
	return d.pages[pid], nil
}

// Stats returns a snapshot of the I/O statistics. It is lock-free and may
// be called while reads are in flight.
func (d *Disk) Stats() IOStats {
	return IOStats{
		Reads:     d.reads.Load(),
		SeqReads:  d.seqReads.Load(),
		RandReads: d.randReads.Load(),
	}
}

// ResetStats zeroes the I/O statistics and returns the previous snapshot.
// The sequential-read tracking is reset too.
func (d *Disk) ResetStats() IOStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := IOStats{
		Reads:     d.reads.Swap(0),
		SeqReads:  d.seqReads.Swap(0),
		RandReads: d.randReads.Swap(0),
	}
	d.lastRead = InvalidPage - 1
	return s
}

// FailOn installs a failure-injection hook consulted before every read.
// Passing nil disarms injection. Intended for tests.
func (d *Disk) FailOn(fn func(PageID) error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failOn = fn
}
