// On-disk dataset format.
//
// A persistent dataset is a directory holding two kinds of files:
//
//   - one page file ("pages-g<generation>.dat"): the data pages of the
//     dataset encoded back to back, each as a self-describing record with a
//     trailing CRC-32C;
//   - the manifest ("MANIFEST"): a JSON superblock naming the live page
//     file and carrying per-page metadata — byte offset, length, item
//     count and the same CRC-32C — plus dataset-wide facts (item count,
//     dimensionality, page capacity, free-form attributes).
//
// The manifest is the single source of truth: a page file is invisible
// until a manifest referencing it has been atomically renamed into place
// (see WriteDataset), and every read verifies the page record against both
// the embedded and the manifest checksum, so torn or bit-rotted pages are
// detected, never silently served.
//
// Page record layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "MDPG"
//	4       4     page ID (uint32)
//	8       4     item count n (uint32)
//	12      4     dimensionality d (uint32)
//	16      n*(16+8d)  items: id uint64, label int64, d float64 coordinates
//	…       4     CRC-32C (Castagnoli) over bytes [0, len-4)
//
// Float64 coordinates are stored as their IEEE-754 bit patterns, so a
// decoded page is bit-identical to the encoded one — the property the
// FileDisk-vs-Disk differential suite (internal/msq) depends on.
//
// Format version 2 ("columnar") page records carry the same items plus
// optional reduced-precision sibling sections, and decode directly into a
// contiguous vec.Block (see Page.Cols):
//
//	offset  size  field
//	0       4     magic "MDP2"
//	4       4     page ID (uint32)
//	8       4     item count n (uint32)
//	12      4     dimensionality d (uint32)
//	16      4     flags (bit 0: float32 section, bit 1: quant section)
//	20      4     quantization bits (1..8 when bit 1 set, else 0)
//	24      n*(16+8d)  items: id uint64, label int64, d float64 coordinates
//	…       n*4d  float32 coordinates, item-major (flag bit 0)
//	…       n*d   quantized cell codes, item-major, one byte each (flag bit 1)
//	…       4     CRC-32C (Castagnoli) over bytes [0, len-4)
//
// A version-2 dataset's manifest says Version 2 and Columnar true, and
// carries the sibling flags plus the dataset-wide quantization grid; a
// version-1 manifest never claims columnar fields. Readers accept both
// versions — old datasets keep working unchanged, and the version-1
// writer output is byte-identical to before version 2 existed.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"strings"

	"metricdb/internal/vec"
)

// Format constants.
const (
	// ManifestName is the published manifest file name inside a dataset
	// directory.
	ManifestName = "MANIFEST"
	// manifestTmpName is the staging name the manifest is written under
	// before the atomic rename.
	manifestTmpName = "MANIFEST.tmp"
	// ManifestMagic guards against loading unrelated JSON documents.
	ManifestMagic = "metricdb-dataset-dir"
	// FormatVersion is the baseline on-disk format version (AoS page
	// records). Datasets without columnar siblings are still written at
	// this version, byte-identical to older builds.
	FormatVersion = 1
	// FormatVersionColumnar is the columnar format version: version-2
	// page records (contiguous coordinates plus optional float32 and
	// quantized sections) and the matching manifest fields.
	FormatVersionColumnar = 2

	// pageMagic opens every version-1 page record ("MDPG").
	pageMagic = uint32('M') | uint32('D')<<8 | uint32('P')<<16 | uint32('G')<<24
	// pageMagic2 opens every version-2 columnar page record ("MDP2").
	pageMagic2 = uint32('M') | uint32('D')<<8 | uint32('P')<<16 | uint32('2')<<24
	// pageHeaderLen is the fixed version-1 prefix before the items.
	pageHeaderLen = 16
	// pageHeaderLenV2 is the version-2 prefix: the version-1 fields plus
	// flags and quantization bits.
	pageHeaderLenV2 = 24
	// pageFlagF32 and pageFlagQuant mark the optional version-2 sections.
	pageFlagF32   = 1
	pageFlagQuant = 2
	// pageTrailerLen is the trailing checksum.
	pageTrailerLen = 4
	// itemFixedLen is the per-item overhead: id (8) + label (8).
	itemFixedLen = 16
	// maxPageDim and maxPageItems bound the decoded sizes so a corrupt
	// header cannot drive a huge allocation before the length check.
	maxPageDim   = 1 << 20
	maxPageItems = 1 << 24
)

// Typed decode errors. ErrCorruptPage wraps every checksum or structural
// page failure so callers (the fault taxonomy, degraded-mode handling) can
// classify storage corruption with errors.Is without parsing messages.
var (
	// ErrCorruptPage marks a page record whose bytes fail validation:
	// bad magic, inconsistent lengths, or a checksum mismatch (torn
	// write, bit rot, misdirected read).
	ErrCorruptPage = errors.New("store: corrupt page record")
	// ErrBadManifest marks a manifest that is unreadable or structurally
	// invalid.
	ErrBadManifest = errors.New("store: invalid dataset manifest")
	// ErrNoDataset marks a directory holding no published manifest.
	ErrNoDataset = errors.New("store: no dataset manifest")
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PageEntry is the manifest's record of one page in the page file.
type PageEntry struct {
	// Offset is the byte offset of the page record in the page file.
	Offset int64 `json:"offset"`
	// Length is the full record length in bytes, checksum included.
	Length int64 `json:"length"`
	// Items is the number of items on the page.
	Items int `json:"items"`
	// CRC32C is the record checksum, duplicated from the record trailer
	// so a reader can verify a page against the manifest alone.
	CRC32C uint32 `json:"crc32c"`
}

// Manifest is the dataset superblock. It is the unit of atomic publication:
// a dataset build writes pages and a staged manifest, fsyncs both, and
// renames the manifest into place — a crashed build leaves either the old
// manifest or the new one, never a mixture.
type Manifest struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	// Generation increases by one per successful rebuild of the dataset
	// in the same directory; it tags the page file name so a rebuild
	// never overwrites the pages the published manifest references.
	Generation int64 `json:"generation"`
	// Items, Dim and PageCapacity describe the dataset: total item
	// count, vector dimensionality, and the maximum items per page.
	Items        int `json:"items"`
	Dim          int `json:"dim"`
	PageCapacity int `json:"page_capacity"`
	// PagesFile is the page file's name within the dataset directory.
	PagesFile string `json:"pages_file"`
	// PagesBytes is the page file's total length in bytes.
	PagesBytes int64 `json:"pages_bytes"`
	// Attrs carries free-form dataset attributes (generator kind, seed,
	// …) for provenance; the storage layer never interprets them.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Columnar reports version-2 columnar page records. Exactly
	// Version == FormatVersionColumnar datasets set it; a version-1
	// manifest claiming any columnar field is rejected.
	Columnar bool `json:"columnar,omitempty"`
	// F32 reports that page records carry the float32 sibling section.
	F32 bool `json:"f32,omitempty"`
	// Quant carries the dataset-wide quantization grid when page records
	// include quantized code sections.
	Quant *QuantGridManifest `json:"quant,omitempty"`
	// Pages lists every page in PageID order.
	Pages []PageEntry `json:"pages"`
}

// QuantGridManifest is the manifest encoding of a vec.QuantGrid: the
// dataset-wide per-dimension equi-width grid the page records' code
// sections were produced on. Float64 values survive the JSON round trip
// at full precision only if finite; BuildQuantGrid guarantees that.
type QuantGridManifest struct {
	Bits int       `json:"bits"`
	Min  []float64 `json:"min"`
	Step []float64 `json:"step"`
}

// Grid converts the manifest encoding back to a usable grid.
func (q *QuantGridManifest) Grid() *vec.QuantGrid {
	if q == nil {
		return nil
	}
	return &vec.QuantGrid{Bits: q.Bits, Min: q.Min, Step: q.Step}
}

// NewQuantGridManifest converts a grid to its manifest encoding.
func NewQuantGridManifest(g *vec.QuantGrid) *QuantGridManifest {
	if g == nil {
		return nil
	}
	return &QuantGridManifest{Bits: g.Bits, Min: g.Min, Step: g.Step}
}

// recordLen returns the page-record byte length the manifest's shape
// implies for a page of the given item count.
func (m *Manifest) recordLen(items int) int64 {
	if !m.Columnar {
		return int64(pageHeaderLen) + int64(items)*int64(itemFixedLen+8*m.Dim) + pageTrailerLen
	}
	l := int64(pageHeaderLenV2) + int64(items)*int64(itemFixedLen+8*m.Dim) + pageTrailerLen
	if m.F32 {
		l += int64(items) * int64(4*m.Dim)
	}
	if m.Quant != nil {
		l += int64(items) * int64(m.Dim)
	}
	return l
}

// EncodePage serializes one page record. Every item must have exactly dim
// coordinates. Pages without an attached columnar block encode as
// version-1 records, byte-identical to the pre-columnar writer; pages
// with one encode as version-2 records carrying whichever sibling
// sections the block holds.
func EncodePage(p *Page, dim int) ([]byte, error) {
	if p == nil {
		return nil, fmt.Errorf("store: encode of nil page")
	}
	if p.ID < 0 {
		return nil, fmt.Errorf("store: encode of page with negative ID %d", p.ID)
	}
	if dim < 0 || dim > maxPageDim {
		return nil, fmt.Errorf("store: page dimensionality %d outside [0, %d]", dim, maxPageDim)
	}
	if len(p.Items) > maxPageItems {
		return nil, fmt.Errorf("store: page holds %d items, format maximum is %d", len(p.Items), maxPageItems)
	}
	if p.Cols != nil {
		return encodePageV2(p, dim)
	}
	size := pageHeaderLen + len(p.Items)*(itemFixedLen+8*dim) + pageTrailerLen
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, pageMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.ID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Items)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(dim))
	for i := range p.Items {
		it := &p.Items[i]
		if it.Vec.Dim() != dim {
			return nil, fmt.Errorf("store: page %d item %d has dimension %d, want %d", p.ID, i, it.Vec.Dim(), dim)
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(it.ID))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(it.Label))
		for _, c := range it.Vec {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf, nil
}

// encodePageV2 serializes a columnar page record.
func encodePageV2(p *Page, dim int) ([]byte, error) {
	b := p.Cols
	if b.Dim != dim || b.N != len(p.Items) {
		return nil, fmt.Errorf("store: page %d block is %d×%d, page is %d×%d",
			p.ID, b.N, b.Dim, len(p.Items), dim)
	}
	var flags, qbits uint32
	if b.F32 != nil {
		if len(b.F32) != b.N*b.Dim {
			return nil, fmt.Errorf("store: page %d float32 sibling has %d values, want %d", p.ID, len(b.F32), b.N*b.Dim)
		}
		flags |= pageFlagF32
	}
	if b.Codes != nil {
		if len(b.Codes) != b.N*b.Dim {
			return nil, fmt.Errorf("store: page %d code sibling has %d values, want %d", p.ID, len(b.Codes), b.N*b.Dim)
		}
		if b.CodeBits < 1 || b.CodeBits > 8 {
			return nil, fmt.Errorf("store: page %d has %d quantization bits, want 1..8", p.ID, b.CodeBits)
		}
		flags |= pageFlagQuant
		qbits = uint32(b.CodeBits)
	}
	size := pageHeaderLenV2 + len(p.Items)*(itemFixedLen+8*dim) + pageTrailerLen
	if flags&pageFlagF32 != 0 {
		size += len(p.Items) * 4 * dim
	}
	if flags&pageFlagQuant != 0 {
		size += len(p.Items) * dim
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, pageMagic2)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.ID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Items)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(dim))
	buf = binary.LittleEndian.AppendUint32(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, qbits)
	for i := range p.Items {
		it := &p.Items[i]
		if it.Vec.Dim() != dim {
			return nil, fmt.Errorf("store: page %d item %d has dimension %d, want %d", p.ID, i, it.Vec.Dim(), dim)
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(it.ID))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(it.Label))
		for _, c := range it.Vec {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c))
		}
	}
	if flags&pageFlagF32 != 0 {
		for _, v := range b.F32 {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	if flags&pageFlagQuant != 0 {
		buf = append(buf, b.Codes...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf, nil
}

// DecodePage deserializes one page record, verifying structure and the
// embedded checksum. It never panics on arbitrary input: every length is
// validated against the actual data size before any allocation, and all
// failures return an error wrapping ErrCorruptPage.
func DecodePage(data []byte) (*Page, error) {
	if len(data) < pageHeaderLen+pageTrailerLen {
		return nil, fmt.Errorf("%w: record of %d bytes is shorter than the %d-byte envelope",
			ErrCorruptPage, len(data), pageHeaderLen+pageTrailerLen)
	}
	switch m := binary.LittleEndian.Uint32(data[0:4]); m {
	case pageMagic:
	case pageMagic2:
		return decodePageV2(data)
	default:
		return nil, fmt.Errorf("%w: bad magic %#08x", ErrCorruptPage, m)
	}
	id := binary.LittleEndian.Uint32(data[4:8])
	count := binary.LittleEndian.Uint32(data[8:12])
	dim := binary.LittleEndian.Uint32(data[12:16])
	if id > math.MaxInt32 {
		return nil, fmt.Errorf("%w: page ID %d overflows PageID", ErrCorruptPage, id)
	}
	if count > maxPageItems || dim > maxPageDim {
		return nil, fmt.Errorf("%w: implausible header (items %d, dim %d)", ErrCorruptPage, count, dim)
	}
	want := uint64(pageHeaderLen) + uint64(count)*uint64(itemFixedLen+8*dim) + pageTrailerLen
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("%w: record is %d bytes, header implies %d", ErrCorruptPage, len(data), want)
	}
	sum := binary.LittleEndian.Uint32(data[len(data)-pageTrailerLen:])
	if got := crc32.Checksum(data[:len(data)-pageTrailerLen], castagnoli); got != sum {
		return nil, fmt.Errorf("%w: checksum %#08x, record claims %#08x", ErrCorruptPage, got, sum)
	}
	p := &Page{ID: PageID(id), Items: make([]Item, count)}
	off := pageHeaderLen
	for i := range p.Items {
		it := &p.Items[i]
		it.ID = ItemID(binary.LittleEndian.Uint64(data[off:]))
		it.Label = int(int64(binary.LittleEndian.Uint64(data[off+8:])))
		off += itemFixedLen
		v := make(vec.Vector, dim)
		for d := range v {
			v[d] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
		it.Vec = v
	}
	return p, nil
}

// decodePageV2 deserializes a columnar page record. The coordinates land
// in one contiguous block with every Item.Vec aliasing its row; sibling
// sections become the block's float32/code buffers. The same
// never-panics/size-validated discipline as version 1 applies: every
// length is checked against the actual data before any allocation.
func decodePageV2(data []byte) (*Page, error) {
	if len(data) < pageHeaderLenV2+pageTrailerLen {
		return nil, fmt.Errorf("%w: columnar record of %d bytes is shorter than the %d-byte envelope",
			ErrCorruptPage, len(data), pageHeaderLenV2+pageTrailerLen)
	}
	id := binary.LittleEndian.Uint32(data[4:8])
	count := binary.LittleEndian.Uint32(data[8:12])
	dim := binary.LittleEndian.Uint32(data[12:16])
	flags := binary.LittleEndian.Uint32(data[16:20])
	qbits := binary.LittleEndian.Uint32(data[20:24])
	if id > math.MaxInt32 {
		return nil, fmt.Errorf("%w: page ID %d overflows PageID", ErrCorruptPage, id)
	}
	if count > maxPageItems || dim > maxPageDim {
		return nil, fmt.Errorf("%w: implausible header (items %d, dim %d)", ErrCorruptPage, count, dim)
	}
	if flags&^uint32(pageFlagF32|pageFlagQuant) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrCorruptPage, flags)
	}
	if flags&pageFlagQuant != 0 {
		if qbits < 1 || qbits > 8 {
			return nil, fmt.Errorf("%w: %d quantization bits, want 1..8", ErrCorruptPage, qbits)
		}
	} else if qbits != 0 {
		return nil, fmt.Errorf("%w: quantization bits %d without a code section", ErrCorruptPage, qbits)
	}
	want := uint64(pageHeaderLenV2) + uint64(count)*uint64(itemFixedLen+8*dim) + pageTrailerLen
	if flags&pageFlagF32 != 0 {
		want += uint64(count) * uint64(4*dim)
	}
	if flags&pageFlagQuant != 0 {
		want += uint64(count) * uint64(dim)
	}
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("%w: columnar record is %d bytes, header implies %d", ErrCorruptPage, len(data), want)
	}
	sum := binary.LittleEndian.Uint32(data[len(data)-pageTrailerLen:])
	if got := crc32.Checksum(data[:len(data)-pageTrailerLen], castagnoli); got != sum {
		return nil, fmt.Errorf("%w: checksum %#08x, record claims %#08x", ErrCorruptPage, got, sum)
	}
	b := vec.NewBlock(int(dim), int(count))
	p := &Page{ID: PageID(id), Items: make([]Item, count), Cols: b}
	off := pageHeaderLenV2
	for i := range p.Items {
		it := &p.Items[i]
		it.ID = ItemID(binary.LittleEndian.Uint64(data[off:]))
		it.Label = int(int64(binary.LittleEndian.Uint64(data[off+8:])))
		off += itemFixedLen
		row := b.Item(i)
		for d := range row {
			row[d] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
		it.Vec = row
	}
	if flags&pageFlagF32 != 0 {
		b.F32 = make([]float32, int(count)*int(dim))
		for i := range b.F32 {
			b.F32[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
	}
	if flags&pageFlagQuant != 0 {
		b.Codes = make([]uint8, int(count)*int(dim))
		copy(b.Codes, data[off:])
		b.CodeBits = int(qbits)
	}
	return p, nil
}

// EncodeManifest serializes a manifest as indented JSON (the file is meant
// to be inspectable with standard tools).
func EncodeManifest(m *Manifest) ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("store: encode of nil manifest")
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: encode manifest: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeManifest parses and validates a manifest document. It never panics
// on arbitrary input; every failure returns an error wrapping
// ErrBadManifest.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if m.Magic != ManifestMagic {
		return nil, fmt.Errorf("%w: magic %q, want %q", ErrBadManifest, m.Magic, ManifestMagic)
	}
	switch m.Version {
	case FormatVersion:
		if m.Columnar || m.F32 || m.Quant != nil {
			return nil, fmt.Errorf("%w: version %d manifest claims columnar fields", ErrBadManifest, m.Version)
		}
	case FormatVersionColumnar:
		if !m.Columnar {
			return nil, fmt.Errorf("%w: version %d manifest without columnar flag", ErrBadManifest, m.Version)
		}
		if q := m.Quant; q != nil {
			if q.Bits < 1 || q.Bits > 8 {
				return nil, fmt.Errorf("%w: quantization bits %d, want 1..8", ErrBadManifest, q.Bits)
			}
			if len(q.Min) != m.Dim || len(q.Step) != m.Dim {
				return nil, fmt.Errorf("%w: quantization grid is %d/%d-dimensional, dataset dim is %d",
					ErrBadManifest, len(q.Min), len(q.Step), m.Dim)
			}
			for d := 0; d < m.Dim; d++ {
				if !isFinite(q.Min[d]) || !isFinite(q.Step[d]) || q.Step[d] < 0 {
					return nil, fmt.Errorf("%w: non-finite or negative quantization grid on dimension %d", ErrBadManifest, d)
				}
			}
		}
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadManifest, m.Version)
	}
	if m.Generation < 0 {
		return nil, fmt.Errorf("%w: negative generation %d", ErrBadManifest, m.Generation)
	}
	if m.Items < 0 || m.Dim < 0 || m.Dim > maxPageDim || m.PageCapacity < 0 {
		return nil, fmt.Errorf("%w: negative or implausible shape (items %d, dim %d, capacity %d)",
			ErrBadManifest, m.Items, m.Dim, m.PageCapacity)
	}
	if len(m.Pages) > 0 {
		// The page file name must be a plain name inside the dataset
		// directory: a manifest must not be able to point reads at an
		// arbitrary filesystem path.
		if m.PagesFile == "" || strings.ContainsAny(m.PagesFile, "/\\") || m.PagesFile == "." || m.PagesFile == ".." {
			return nil, fmt.Errorf("%w: page file name %q is not a plain file name", ErrBadManifest, m.PagesFile)
		}
	}
	var end int64
	var items int64
	for i, e := range m.Pages {
		if e.Offset != end {
			return nil, fmt.Errorf("%w: page %d at offset %d, expected %d (records must be contiguous)",
				ErrBadManifest, i, e.Offset, end)
		}
		if e.Items < 0 || e.Items > maxPageItems {
			return nil, fmt.Errorf("%w: page %d claims %d items", ErrBadManifest, i, e.Items)
		}
		wantLen := m.recordLen(e.Items)
		if e.Length != wantLen {
			return nil, fmt.Errorf("%w: page %d length %d, shape implies %d", ErrBadManifest, i, e.Length, wantLen)
		}
		end += e.Length
		items += int64(e.Items)
	}
	if m.PagesBytes != end {
		return nil, fmt.Errorf("%w: pages_bytes %d, entries sum to %d", ErrBadManifest, m.PagesBytes, end)
	}
	if items != int64(m.Items) {
		return nil, fmt.Errorf("%w: items %d, page entries sum to %d", ErrBadManifest, m.Items, items)
	}
	return &m, nil
}

// isFinite reports x is neither NaN nor infinite.
func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
