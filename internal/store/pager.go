package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"metricdb/internal/obs"
)

// Pager reads pages through an LRU buffer: a buffer hit costs no disk I/O,
// a miss reads from the simulated disk and caches the page. This mirrors the
// paper's setup of a disk-resident database with a buffer of 10 % of the
// index size.
//
// The disk is accessed through the PageSource interface, so a Pager works
// unchanged over a bare *Disk or over a wrapper such as the fault injector.
//
// Pager is safe for concurrent use. Concurrent misses on the same page are
// coalesced into a single disk read ("singleflight"): the first caller goes
// to disk, later callers wait for its result. This keeps the cost-model
// invariant that a page is read from disk at most once per working set even
// when several goroutines — e.g. the msq pipeline's prefetcher and
// coordinator, or parallel sessions — request it at the same instant.
type Pager struct {
	disk PageSource
	buf  *Buffer

	mu       sync.Mutex
	inflight map[PageID]*flight

	// tracer, when set, receives a page_fetch span for every disk read the
	// pager issues (buffer hits and singleflight waiters observe nothing).
	// Held in an atomic pointer so SetTracer is safe against concurrent
	// readers; a nil tracer costs one predictable branch per miss.
	tracer atomic.Pointer[obs.Tracer]
}

// flight is one in-progress disk read awaited by one or more callers.
type flight struct {
	done chan struct{}
	page *Page
	err  error
}

// NewPager combines a page source and a buffer. A nil buffer means
// unbuffered access (every read hits the disk).
func NewPager(disk PageSource, buf *Buffer) (*Pager, error) {
	if disk == nil {
		return nil, fmt.Errorf("store: pager needs a disk")
	}
	return &Pager{disk: disk, buf: buf, inflight: make(map[PageID]*flight)}, nil
}

// ReadPage returns the page, going to disk only on a buffer miss. The buffer
// probe happens under the pager lock so that exactly one Get (and so one
// hit-or-miss count) is charged per call, and so that a miss and the
// in-flight registration are atomic — two concurrent misses cannot both
// reach the disk.
func (p *Pager) ReadPage(pid PageID) (*Page, error) {
	p.mu.Lock()
	if p.buf != nil {
		if pg, ok := p.buf.Get(pid); ok {
			p.mu.Unlock()
			return pg, nil
		}
	}
	if f, ok := p.inflight[pid]; ok {
		p.mu.Unlock()
		<-f.done
		return f.page, f.err
	}
	f := &flight{done: make(chan struct{})}
	p.inflight[pid] = f
	p.mu.Unlock()

	tr := p.tracer.Load()
	traced := tr.Enabled()
	var fetchStart time.Time
	if traced {
		fetchStart = time.Now()
	}
	page, err := p.disk.Read(pid)
	if traced {
		tr.ObserveSince(obs.PhasePageFetch, fetchStart)
	}
	if err == nil && p.buf != nil {
		// Cache before releasing the waiters, so that by the time any
		// later ReadPage misses the buffer the page can only have been
		// evicted, never "not yet inserted".
		p.buf.Put(pid, page)
	}
	p.mu.Lock()
	f.page, f.err = page, err
	delete(p.inflight, pid)
	p.mu.Unlock()
	close(f.done)
	if err != nil {
		return nil, err
	}
	return page, nil
}

// SetTracer installs (or, with nil, removes) the tracer that times the
// pager's disk reads as page_fetch spans. It may be called at any time,
// including while reads are in flight. When the underlying page source is
// itself tracer-aware (a FileDisk timing real I/O as storage_read spans),
// the tracer is forwarded so one installation instruments the whole read
// path.
func (p *Pager) SetTracer(tr *obs.Tracer) {
	p.tracer.Store(tr)
	if s, ok := p.disk.(interface{ SetTracer(*obs.Tracer) }); ok {
		s.SetTracer(tr)
	}
}

// Tracer returns the installed tracer, or nil.
func (p *Pager) Tracer() *obs.Tracer { return p.tracer.Load() }

// NumPages returns the number of pages on the underlying disk.
func (p *Pager) NumPages() int { return p.disk.NumPages() }

// Disk returns the underlying page source (for statistics).
func (p *Pager) Disk() PageSource { return p.disk }

// Buffer returns the buffer, or nil for an unbuffered pager.
func (p *Pager) Buffer() *Buffer { return p.buf }

// ResetStats zeroes disk statistics and clears the buffer so experiments
// start cold, returning the previous disk snapshot.
func (p *Pager) ResetStats() IOStats {
	if p.buf != nil {
		p.buf.Clear()
	}
	return p.disk.ResetStats()
}
