package store

import "fmt"

// Pager reads pages through an LRU buffer: a buffer hit costs no disk I/O,
// a miss reads from the simulated disk and caches the page. This mirrors the
// paper's setup of a disk-resident database with a buffer of 10 % of the
// index size.
//
// The disk is accessed through the PageSource interface, so a Pager works
// unchanged over a bare *Disk or over a wrapper such as the fault injector.
type Pager struct {
	disk PageSource
	buf  *Buffer
}

// NewPager combines a page source and a buffer. A nil buffer means
// unbuffered access (every read hits the disk).
func NewPager(disk PageSource, buf *Buffer) (*Pager, error) {
	if disk == nil {
		return nil, fmt.Errorf("store: pager needs a disk")
	}
	return &Pager{disk: disk, buf: buf}, nil
}

// ReadPage returns the page, going to disk only on a buffer miss.
func (p *Pager) ReadPage(pid PageID) (*Page, error) {
	if p.buf != nil {
		if pg, ok := p.buf.Get(pid); ok {
			return pg, nil
		}
	}
	pg, err := p.disk.Read(pid)
	if err != nil {
		return nil, err
	}
	if p.buf != nil {
		p.buf.Put(pid, pg)
	}
	return pg, nil
}

// NumPages returns the number of pages on the underlying disk.
func (p *Pager) NumPages() int { return p.disk.NumPages() }

// Disk returns the underlying page source (for statistics).
func (p *Pager) Disk() PageSource { return p.disk }

// Buffer returns the buffer, or nil for an unbuffered pager.
func (p *Pager) Buffer() *Buffer { return p.buf }

// ResetStats zeroes disk statistics and clears the buffer so experiments
// start cold, returning the previous disk snapshot.
func (p *Pager) ResetStats() IOStats {
	if p.buf != nil {
		p.buf.Clear()
	}
	return p.disk.ResetStats()
}
