package store

import (
	"encoding/binary"
	"math"
	"testing"

	"metricdb/internal/vec"
)

// FuzzPageDecode throws arbitrary bytes at the page-record decoder. The
// contract under fuzzing: never panic, never over-allocate from a
// corrupt header, and on success uphold the structural invariants
// (re-encoding the decoded page reproduces the input bit for bit, so no
// two distinct valid records decode to the same page).
func FuzzPageDecode(f *testing.F) {
	// Seed corpus: valid records of several shapes plus near-miss
	// mutations, so the fuzzer starts at the interesting boundaries.
	seed := func(n, dim int) []byte {
		items := make([]Item, n)
		for i := range items {
			v := make(vec.Vector, dim)
			for d := range v {
				v[d] = float64(i)*0.5 - float64(d)
			}
			items[i] = Item{ID: ItemID(i), Vec: v, Label: i - 1}
		}
		rec, err := EncodePage(&Page{ID: 3, Items: items}, dim)
		if err != nil {
			f.Fatal(err)
		}
		return rec
	}
	f.Add([]byte{})
	f.Add(seed(0, 0))
	f.Add(seed(1, 1))
	f.Add(seed(16, 4))
	f.Add(seed(5, 20))
	long := seed(16, 4)
	long[0] ^= 1 // broken magic
	f.Add(long)
	trunc := seed(16, 4)
	f.Add(trunc[:len(trunc)-7])
	huge := seed(1, 1)
	huge[8] = 0xFF // implausible item count
	huge[9] = 0xFF
	huge[10] = 0xFF
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePage(data)
		if err != nil {
			if p != nil {
				t.Fatal("decoder returned both a page and an error")
			}
			return
		}
		if p == nil {
			t.Fatal("decoder returned neither page nor error")
		}
		if p.ID < 0 {
			t.Fatalf("decoded negative page ID %d", p.ID)
		}
		// The record's dimensionality: from the items when present, from
		// the header for an empty page (the items carry no evidence).
		dim := int(uint32(data[12]) | uint32(data[13])<<8 | uint32(data[14])<<16 | uint32(data[15])<<24)
		if len(p.Items) > 0 {
			dim = p.Items[0].Vec.Dim()
		}
		for i := range p.Items {
			if p.Items[i].Vec.Dim() != dim {
				t.Fatal("decoded page mixes dimensionalities")
			}
		}
		re, err := EncodePage(p, dim)
		if err != nil {
			t.Fatalf("re-encode of decoded page failed: %v", err)
		}
		if string(re) != string(data) {
			t.Fatal("decode/encode round trip altered the record")
		}
	})
}

// FuzzColumnarPageDecode targets the version-2 (columnar) page-record
// decoder with seeds covering every sibling combination. Same contract as
// FuzzPageDecode — never panic, never allocate from an unvalidated size —
// plus the columnar structural invariants: an accepted record yields a
// block whose rows the item vectors alias and whose sibling sections match
// the header flags, and re-encoding reproduces the input bit for bit.
func FuzzColumnarPageDecode(f *testing.F) {
	seed := func(n, dim int, f32 bool, qbits int) []byte {
		items := testItems(n, dim)
		p := &Page{ID: 7, Items: items}
		spec := ColumnSpec{Columnar: true, F32: f32}
		if qbits > 0 {
			lo, hi := ItemCoordinateBounds(items, dim)
			g, err := vec.BuildQuantGrid(qbits, lo, hi)
			if err != nil {
				f.Fatal(err)
			}
			spec.Quant = g
		}
		if err := ColumnizePage(p, spec); err != nil {
			f.Fatal(err)
		}
		if p.Cols == nil {
			p.Cols = vec.NewBlock(dim, 0)
		}
		rec, err := EncodePage(p, dim)
		if err != nil {
			f.Fatal(err)
		}
		return rec
	}
	f.Add([]byte{})
	f.Add(seed(0, 3, false, 0))
	f.Add(seed(1, 1, false, 0))
	f.Add(seed(16, 4, false, 0))
	f.Add(seed(16, 4, true, 0))
	f.Add(seed(16, 4, false, 6))
	f.Add(seed(16, 4, true, 8))
	f.Add(seed(5, 20, true, 1))
	badFlags := seed(16, 4, true, 0)
	badFlags[16] |= 4 // unknown flag bit
	f.Add(badFlags)
	trunc := seed(16, 4, true, 6)
	f.Add(trunc[:len(trunc)-9])
	huge := seed(1, 1, false, 0)
	huge[8] = 0xFF // implausible item count
	huge[9] = 0xFF
	huge[10] = 0xFF
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePage(data)
		if err != nil {
			if p != nil {
				t.Fatal("decoder returned both a page and an error")
			}
			return
		}
		if p == nil {
			t.Fatal("decoder returned neither page nor error")
		}
		if len(data) < 16 || binary.LittleEndian.Uint32(data[0:4]) != pageMagic2 {
			return // version-1 record; FuzzPageDecode owns those invariants
		}
		b := p.Cols
		if b == nil {
			t.Fatal("columnar record decoded without a block")
		}
		dim := int(binary.LittleEndian.Uint32(data[12:16]))
		if b.Dim != dim || b.N != len(p.Items) {
			t.Fatalf("block is %d×%d, record header says %d items × dim %d", b.N, b.Dim, len(p.Items), dim)
		}
		if len(b.F64) != b.N*b.Dim {
			t.Fatal("block buffer length disagrees with its shape")
		}
		if b.F32 != nil && len(b.F32) != b.N*b.Dim {
			t.Fatal("float32 sibling length disagrees with block shape")
		}
		if b.Codes != nil {
			if len(b.Codes) != b.N*b.Dim {
				t.Fatal("code sibling length disagrees with block shape")
			}
			if b.CodeBits < 1 || b.CodeBits > 8 {
				t.Fatalf("accepted %d quantization bits", b.CodeBits)
			}
		} else if b.CodeBits != 0 {
			t.Fatal("code bits without a code section")
		}
		for i := range p.Items {
			if dim > 0 && &p.Items[i].Vec[0] != &b.Item(i)[0] {
				t.Fatalf("item %d vector does not alias its block row", i)
			}
		}
		re, err := EncodePage(p, dim)
		if err != nil {
			t.Fatalf("re-encode of decoded page failed: %v", err)
		}
		if string(re) != string(data) {
			t.Fatal("decode/encode round trip altered the record")
		}
	})
}

// FuzzManifestDecode throws arbitrary bytes at the manifest decoder: never
// panic, and any accepted manifest satisfies the structural invariants the
// FileDisk relies on (contiguous entries, consistent sums, a page file
// name that cannot escape the dataset directory).
func FuzzManifestDecode(f *testing.F) {
	valid := func(n, dim, capacity int) []byte {
		pages, err := Paginate(testItems(n, dim), capacity)
		if err != nil {
			f.Fatal(err)
		}
		man := Manifest{
			Magic: ManifestMagic, Version: FormatVersion, Generation: 2,
			Items: n, Dim: dim, PageCapacity: capacity,
			PagesFile: "pages-g00000002.dat",
			Attrs:     map[string]string{"kind": "fuzz"},
		}
		for _, p := range pages {
			rec, err := EncodePage(p, dim)
			if err != nil {
				f.Fatal(err)
			}
			man.Pages = append(man.Pages, PageEntry{
				Offset: man.PagesBytes, Length: int64(len(rec)),
				Items: len(p.Items), CRC32C: crcOf(rec),
			})
			man.PagesBytes += int64(len(rec))
		}
		body, err := EncodeManifest(&man)
		if err != nil {
			f.Fatal(err)
		}
		return body
	}
	validV2 := func(n, dim, capacity, qbits int) []byte {
		pages, err := Paginate(testItems(n, dim), capacity)
		if err != nil {
			f.Fatal(err)
		}
		spec := ColumnSpec{Columnar: true, F32: true}
		man := Manifest{
			Magic: ManifestMagic, Version: FormatVersionColumnar, Generation: 1,
			Items: n, Dim: dim, PageCapacity: capacity,
			PagesFile: "pages-g00000001.dat",
			Columnar:  true, F32: true,
		}
		if qbits > 0 {
			lo, hi := CoordinateBounds(pages, dim)
			g, err := vec.BuildQuantGrid(qbits, lo, hi)
			if err != nil {
				f.Fatal(err)
			}
			spec.Quant = g
			man.Quant = NewQuantGridManifest(g)
		}
		if err := Columnize(pages, spec); err != nil {
			f.Fatal(err)
		}
		for _, p := range pages {
			rec, err := EncodePage(p, dim)
			if err != nil {
				f.Fatal(err)
			}
			man.Pages = append(man.Pages, PageEntry{
				Offset: man.PagesBytes, Length: int64(len(rec)),
				Items: len(p.Items), CRC32C: crcOf(rec),
			})
			man.PagesBytes += int64(len(rec))
		}
		body, err := EncodeManifest(&man)
		if err != nil {
			f.Fatal(err)
		}
		return body
	}
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add([]byte(`{"magic":"metricdb-dataset-dir","version":1}`))
	f.Add(valid(0, 0, 4))
	f.Add(valid(40, 4, 16))
	f.Add(valid(7, 2, 3))
	f.Add(validV2(12, 3, 5, 0))
	f.Add(validV2(12, 3, 5, 6))
	evil := valid(7, 2, 3)
	f.Add([]byte(string(evil)[:len(evil)/2]))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if m.Magic != ManifestMagic || (m.Version != FormatVersion && m.Version != FormatVersionColumnar) {
			t.Fatal("accepted manifest with wrong magic or version")
		}
		if m.Version == FormatVersion && (m.Columnar || m.F32 || m.Quant != nil) {
			t.Fatal("accepted version-1 manifest claiming columnar fields")
		}
		if m.Version == FormatVersionColumnar && !m.Columnar {
			t.Fatal("accepted version-2 manifest without the columnar flag")
		}
		if q := m.Quant; q != nil && (q.Bits < 1 || q.Bits > 8 || len(q.Min) != m.Dim || len(q.Step) != m.Dim) {
			t.Fatal("accepted manifest with malformed quantization grid")
		}
		if m.Items < 0 || m.Dim < 0 || m.PageCapacity < 0 || m.Generation < 0 {
			t.Fatal("accepted manifest with negative shape")
		}
		var end, items int64
		for _, e := range m.Pages {
			if e.Offset != end || e.Items < 0 {
				t.Fatal("accepted non-contiguous or negative page entry")
			}
			end += e.Length
			items += int64(e.Items)
		}
		if end != m.PagesBytes || items != int64(m.Items) {
			t.Fatal("accepted manifest with inconsistent sums")
		}
		if len(m.Pages) > 0 {
			for _, c := range m.PagesFile {
				if c == '/' || c == '\\' {
					t.Fatalf("accepted page file path %q", m.PagesFile)
				}
			}
		}
		if int64(m.Items)*int64(16+8*m.Dim) > math.MaxInt64/2 {
			t.Fatal("accepted manifest implying overflowing dataset size")
		}
	})
}
