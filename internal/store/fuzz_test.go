package store

import (
	"math"
	"testing"

	"metricdb/internal/vec"
)

// FuzzPageDecode throws arbitrary bytes at the page-record decoder. The
// contract under fuzzing: never panic, never over-allocate from a
// corrupt header, and on success uphold the structural invariants
// (re-encoding the decoded page reproduces the input bit for bit, so no
// two distinct valid records decode to the same page).
func FuzzPageDecode(f *testing.F) {
	// Seed corpus: valid records of several shapes plus near-miss
	// mutations, so the fuzzer starts at the interesting boundaries.
	seed := func(n, dim int) []byte {
		items := make([]Item, n)
		for i := range items {
			v := make(vec.Vector, dim)
			for d := range v {
				v[d] = float64(i)*0.5 - float64(d)
			}
			items[i] = Item{ID: ItemID(i), Vec: v, Label: i - 1}
		}
		rec, err := EncodePage(&Page{ID: 3, Items: items}, dim)
		if err != nil {
			f.Fatal(err)
		}
		return rec
	}
	f.Add([]byte{})
	f.Add(seed(0, 0))
	f.Add(seed(1, 1))
	f.Add(seed(16, 4))
	f.Add(seed(5, 20))
	long := seed(16, 4)
	long[0] ^= 1 // broken magic
	f.Add(long)
	trunc := seed(16, 4)
	f.Add(trunc[:len(trunc)-7])
	huge := seed(1, 1)
	huge[8] = 0xFF // implausible item count
	huge[9] = 0xFF
	huge[10] = 0xFF
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePage(data)
		if err != nil {
			if p != nil {
				t.Fatal("decoder returned both a page and an error")
			}
			return
		}
		if p == nil {
			t.Fatal("decoder returned neither page nor error")
		}
		if p.ID < 0 {
			t.Fatalf("decoded negative page ID %d", p.ID)
		}
		// The record's dimensionality: from the items when present, from
		// the header for an empty page (the items carry no evidence).
		dim := int(uint32(data[12]) | uint32(data[13])<<8 | uint32(data[14])<<16 | uint32(data[15])<<24)
		if len(p.Items) > 0 {
			dim = p.Items[0].Vec.Dim()
		}
		for i := range p.Items {
			if p.Items[i].Vec.Dim() != dim {
				t.Fatal("decoded page mixes dimensionalities")
			}
		}
		re, err := EncodePage(p, dim)
		if err != nil {
			t.Fatalf("re-encode of decoded page failed: %v", err)
		}
		if string(re) != string(data) {
			t.Fatal("decode/encode round trip altered the record")
		}
	})
}

// FuzzManifestDecode throws arbitrary bytes at the manifest decoder: never
// panic, and any accepted manifest satisfies the structural invariants the
// FileDisk relies on (contiguous entries, consistent sums, a page file
// name that cannot escape the dataset directory).
func FuzzManifestDecode(f *testing.F) {
	valid := func(n, dim, capacity int) []byte {
		pages, err := Paginate(testItems(n, dim), capacity)
		if err != nil {
			f.Fatal(err)
		}
		man := Manifest{
			Magic: ManifestMagic, Version: FormatVersion, Generation: 2,
			Items: n, Dim: dim, PageCapacity: capacity,
			PagesFile: "pages-g00000002.dat",
			Attrs:     map[string]string{"kind": "fuzz"},
		}
		for _, p := range pages {
			rec, err := EncodePage(p, dim)
			if err != nil {
				f.Fatal(err)
			}
			man.Pages = append(man.Pages, PageEntry{
				Offset: man.PagesBytes, Length: int64(len(rec)),
				Items: len(p.Items), CRC32C: crcOf(rec),
			})
			man.PagesBytes += int64(len(rec))
		}
		body, err := EncodeManifest(&man)
		if err != nil {
			f.Fatal(err)
		}
		return body
	}
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add([]byte(`{"magic":"metricdb-dataset-dir","version":1}`))
	f.Add(valid(0, 0, 4))
	f.Add(valid(40, 4, 16))
	f.Add(valid(7, 2, 3))
	evil := valid(7, 2, 3)
	f.Add([]byte(string(evil)[:len(evil)/2]))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if m.Magic != ManifestMagic || m.Version != FormatVersion {
			t.Fatal("accepted manifest with wrong magic or version")
		}
		if m.Items < 0 || m.Dim < 0 || m.PageCapacity < 0 || m.Generation < 0 {
			t.Fatal("accepted manifest with negative shape")
		}
		var end, items int64
		for _, e := range m.Pages {
			if e.Offset != end || e.Items < 0 {
				t.Fatal("accepted non-contiguous or negative page entry")
			}
			end += e.Length
			items += int64(e.Items)
		}
		if end != m.PagesBytes || items != int64(m.Items) {
			t.Fatal("accepted manifest with inconsistent sums")
		}
		if len(m.Pages) > 0 {
			for _, c := range m.PagesFile {
				if c == '/' || c == '\\' {
					t.Fatalf("accepted page file path %q", m.PagesFile)
				}
			}
		}
		if int64(m.Items)*int64(16+8*m.Dim) > math.MaxInt64/2 {
			t.Fatal("accepted manifest implying overflowing dataset size")
		}
	})
}
