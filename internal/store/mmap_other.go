//go:build !unix

package store

import (
	"fmt"
	"os"
)

// mmapFile is unavailable on this platform; OpenFileDisk falls back to
// pread.
func mmapFile(*os.File, int) ([]byte, error) {
	return nil, fmt.Errorf("store: mmap unsupported on this platform")
}

func munmapFile([]byte) error { return nil }
