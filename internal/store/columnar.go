// Columnar page construction: turning array-of-structs pages (one heap
// allocation per item vector) into SoA blocks, at build time for the
// in-memory engines and on read for stored version-1 datasets.
package store

import (
	"fmt"
	"math"

	"metricdb/internal/obs"
	"metricdb/internal/vec"
)

// ColumnSpec says which columnar representations to materialize for a
// page set. The zero value requests nothing (pages stay AoS).
type ColumnSpec struct {
	// Columnar requests the contiguous float64 block (implied by the
	// sibling fields).
	Columnar bool
	// F32 additionally materializes the float32 sibling.
	F32 bool
	// Quant, when non-nil, additionally materializes quantized codes on
	// this grid.
	Quant *vec.QuantGrid
}

// Any reports whether the spec requests any columnar representation.
func (s ColumnSpec) Any() bool { return s.Columnar || s.F32 || s.Quant != nil }

// Columnize rebuilds each page's coordinates as a columnar block per
// spec and re-points every Item.Vec at its block row. Values are copied
// bit-for-bit, so results of any computation over the vectors are
// unchanged; only memory placement and the sibling representations are
// new. A no-op when the spec requests nothing.
func Columnize(pages []*Page, spec ColumnSpec) error {
	if !spec.Any() {
		return nil
	}
	for _, p := range pages {
		if err := ColumnizePage(p, spec); err != nil {
			return err
		}
	}
	return nil
}

// ColumnizePage is Columnize for a single page.
func ColumnizePage(p *Page, spec ColumnSpec) error {
	if !spec.Any() || len(p.Items) == 0 {
		return nil
	}
	dim := p.Items[0].Vec.Dim()
	b := p.Cols
	if b == nil || b.Dim != dim || b.N != len(p.Items) {
		b = vec.NewBlock(dim, len(p.Items))
		for i := range p.Items {
			if p.Items[i].Vec.Dim() != dim {
				return fmt.Errorf("store: page %d item %d has dimension %d, item 0 has %d",
					p.ID, i, p.Items[i].Vec.Dim(), dim)
			}
			b.SetItem(i, p.Items[i].Vec)
			p.Items[i].Vec = b.Item(i)
		}
		p.Cols = b
	}
	if spec.F32 && b.F32 == nil {
		b.DeriveF32()
	}
	if g := spec.Quant; g != nil && b.Codes == nil {
		if g.Dim() != dim {
			return fmt.Errorf("store: quantization grid dim %d, page dim %d", g.Dim(), dim)
		}
		b.DeriveCodes(g)
	}
	if b.Grid == nil && spec.Quant != nil {
		b.Grid = spec.Quant
	}
	return nil
}

// CoordinateBounds returns the per-dimension min/max over every item of
// every page — the input for building a dataset-wide quantization grid.
func CoordinateBounds(pages []*Page, dim int) (lo, hi []float64) {
	lo = make([]float64, dim)
	hi = make([]float64, dim)
	for d := range lo {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for _, p := range pages {
		for i := range p.Items {
			for d, v := range p.Items[i].Vec {
				if v < lo[d] {
					lo[d] = v
				}
				if v > hi[d] {
					hi[d] = v
				}
			}
		}
	}
	for d := range lo {
		if lo[d] > hi[d] { // no items: collapse to a point grid
			lo[d], hi[d] = 0, 0
		}
	}
	return lo, hi
}

// ItemCoordinateBounds is CoordinateBounds over a flat item slice.
func ItemCoordinateBounds(items []Item, dim int) (lo, hi []float64) {
	p := Page{Items: items}
	return CoordinateBounds([]*Page{&p}, dim)
}

// ColumnSource is a PageSource wrapper that columnizes pages as they are
// read — the adapter that lets a layout-requesting open serve a stored
// dataset whose records do not already carry the wanted representations
// (a version-1 dataset, or a columnar dataset missing a sibling). It sits
// between the disk and the buffer pool, so each page pays the conversion
// once per fetch and cached pages stay columnar.
type ColumnSource struct {
	src  PageSource
	spec ColumnSpec
}

// WrapColumns wraps src so every page read through it is columnized per
// spec. If the spec requests nothing, src is returned unwrapped.
func WrapColumns(src PageSource, spec ColumnSpec) PageSource {
	if !spec.Any() {
		return src
	}
	return &ColumnSource{src: src, spec: spec}
}

// Read fetches the page from the wrapped source and columnizes it.
func (c *ColumnSource) Read(pid PageID) (*Page, error) {
	p, err := c.src.Read(pid)
	if err != nil {
		return nil, err
	}
	if err := ColumnizePage(p, c.spec); err != nil {
		return nil, err
	}
	return p, nil
}

// NumPages reports the wrapped source's page count.
func (c *ColumnSource) NumPages() int { return c.src.NumPages() }

// Stats reports the wrapped source's I/O statistics.
func (c *ColumnSource) Stats() IOStats { return c.src.Stats() }

// ResetStats clears the wrapped source's I/O statistics, returning the
// stats up to that point.
func (c *ColumnSource) ResetStats() IOStats { return c.src.ResetStats() }

// SetTracer forwards the tracer to the wrapped source when it accepts one
// (the same duck-typed seam the pager uses).
func (c *ColumnSource) SetTracer(tr *obs.Tracer) {
	if st, ok := c.src.(interface{ SetTracer(*obs.Tracer) }); ok {
		st.SetTracer(tr)
	}
}

// Unwrap exposes the wrapped source so facades that type-assert for a
// concrete disk (e.g. *FileDisk for storage statistics) keep working when
// a layout wrapper is interposed.
func (c *ColumnSource) Unwrap() PageSource { return c.src }

// UnwrapSource strips PageSource wrappers (anything exposing
// Unwrap() PageSource) down to the innermost source.
func UnwrapSource(src PageSource) PageSource {
	for {
		u, ok := src.(interface{ Unwrap() PageSource })
		if !ok {
			return src
		}
		src = u.Unwrap()
	}
}

var _ PageSource = (*ColumnSource)(nil)
