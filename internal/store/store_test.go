package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"metricdb/internal/vec"
)

func makeItems(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: ItemID(i), Vec: vec.Vector{float64(i)}}
	}
	return items
}

func TestPaginate(t *testing.T) {
	pages, err := Paginate(makeItems(10), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 4 {
		t.Fatalf("got %d pages, want 4", len(pages))
	}
	total := 0
	for i, p := range pages {
		if p.ID != PageID(i) {
			t.Errorf("page %d has ID %d", i, p.ID)
		}
		total += len(p.Items)
	}
	if total != 10 {
		t.Errorf("pages hold %d items, want 10", total)
	}
	if len(pages[3].Items) != 1 {
		t.Errorf("last page holds %d items, want 1", len(pages[3].Items))
	}

	if _, err := Paginate(makeItems(3), 0); err == nil {
		t.Error("zero capacity accepted")
	}
	empty, err := Paginate(nil, 5)
	if err != nil || len(empty) != 0 {
		t.Errorf("Paginate(nil) = %v, %v", empty, err)
	}
}

// Property: pagination preserves every item exactly once, in order.
func TestPaginateProperty(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		items := makeItems(int(n))
		pages, err := Paginate(items, capacity)
		if err != nil {
			return false
		}
		var got []Item
		for _, p := range pages {
			if len(p.Items) > capacity {
				return false
			}
			got = append(got, p.Items...)
		}
		if len(got) != len(items) {
			return false
		}
		for i := range got {
			if got[i].ID != items[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageCapacityForBlockSize(t *testing.T) {
	// 32 KB block, 20-d items: 32768 / (8*20+8) = 195.
	if got := PageCapacityForBlockSize(32768, 20); got != 195 {
		t.Errorf("capacity = %d, want 195", got)
	}
	if got := PageCapacityForBlockSize(8, 1000); got != 1 {
		t.Errorf("tiny block capacity = %d, want 1", got)
	}
}

func newTestDisk(t *testing.T, nPages int) *Disk {
	t.Helper()
	pages, err := Paginate(makeItems(nPages*2), 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDisk(pages)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskReadAndStats(t *testing.T) {
	d := newTestDisk(t, 5)

	// Sequential scan 0..4.
	for pid := PageID(0); pid < 5; pid++ {
		if _, err := d.Read(pid); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.Reads != 5 {
		t.Errorf("Reads = %d, want 5", s.Reads)
	}
	// First read of page 0 is random (arm starts parked), rest sequential.
	if s.RandReads != 1 || s.SeqReads != 4 {
		t.Errorf("RandReads=%d SeqReads=%d, want 1/4", s.RandReads, s.SeqReads)
	}

	// A backward jump costs a seek.
	if _, err := d.Read(0); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().RandReads; got != 2 {
		t.Errorf("RandReads after jump = %d, want 2", got)
	}
}

func TestDiskValidation(t *testing.T) {
	d := newTestDisk(t, 3)
	if _, err := d.Read(-1); err == nil {
		t.Error("negative page read accepted")
	}
	if _, err := d.Read(99); err == nil {
		t.Error("out-of-range read accepted")
	}
	if _, err := NewDisk([]*Page{{ID: 5}}); err == nil {
		t.Error("non-consecutive page IDs accepted")
	}
	if _, err := NewDisk([]*Page{nil}); err == nil {
		t.Error("nil page accepted")
	}
}

func TestDiskResetStats(t *testing.T) {
	d := newTestDisk(t, 3)
	if _, err := d.Read(1); err != nil {
		t.Fatal(err)
	}
	prev := d.ResetStats()
	if prev.Reads != 1 {
		t.Errorf("previous Reads = %d, want 1", prev.Reads)
	}
	if got := d.Stats(); got != (IOStats{}) {
		t.Errorf("stats after reset = %+v", got)
	}
	// After a reset the arm is parked again: first read is random.
	if _, err := d.Read(2); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().RandReads; got != 1 {
		t.Errorf("RandReads after reset = %d, want 1", got)
	}
}

func TestDiskFailureInjection(t *testing.T) {
	d := newTestDisk(t, 3)
	boom := errors.New("boom")
	d.FailOn(func(pid PageID) error {
		if pid == 1 {
			return boom
		}
		return nil
	})
	if _, err := d.Read(0); err != nil {
		t.Errorf("read of healthy page failed: %v", err)
	}
	if _, err := d.Read(1); !errors.Is(err, boom) {
		t.Errorf("injected failure not surfaced: %v", err)
	}
	d.FailOn(nil)
	if _, err := d.Read(1); err != nil {
		t.Errorf("read after disarm failed: %v", err)
	}
}

func TestDiskConcurrentReads(t *testing.T) {
	d := newTestDisk(t, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := d.Read(PageID(i % 8)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := d.Stats().Reads; got != 800 {
		t.Errorf("Reads = %d, want 800", got)
	}
}

func TestIOStatsAdd(t *testing.T) {
	a := IOStats{Reads: 1, SeqReads: 2, RandReads: 3}
	b := IOStats{Reads: 10, SeqReads: 20, RandReads: 30}
	if got := a.Add(b); got != (IOStats{Reads: 11, SeqReads: 22, RandReads: 33}) {
		t.Errorf("Add = %+v", got)
	}
}

func TestBufferLRU(t *testing.T) {
	b, err := NewBuffer(2)
	if err != nil {
		t.Fatal(err)
	}
	p0, p1, p2 := &Page{ID: 0}, &Page{ID: 1}, &Page{ID: 2}

	if _, ok := b.Get(0); ok {
		t.Error("empty buffer produced a hit")
	}
	b.Put(0, p0)
	b.Put(1, p1)
	if got, ok := b.Get(0); !ok || got != p0 {
		t.Error("page 0 not buffered")
	}
	// 0 is now MRU; inserting 2 must evict 1.
	b.Put(2, p2)
	if _, ok := b.Get(1); ok {
		t.Error("LRU page 1 not evicted")
	}
	if _, ok := b.Get(0); !ok {
		t.Error("MRU page 0 evicted")
	}
	if _, ok := b.Get(2); !ok {
		t.Error("fresh page 2 missing")
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}

	hits, misses, ratio := b.HitRate()
	if hits != 3 || misses != 2 {
		t.Errorf("hits=%d misses=%d, want 3/2", hits, misses)
	}
	if ratio != 0.6 {
		t.Errorf("ratio = %v, want 0.6", ratio)
	}
	if ev := b.Evictions(); ev != 1 {
		t.Errorf("Evictions = %d, want 1 (page 1 evicted by page 2)", ev)
	}
	// Refreshing a resident page must not count as an eviction.
	b.Put(0, p0)
	if ev := b.Evictions(); ev != 1 {
		t.Errorf("Evictions after refresh = %d, want 1", ev)
	}
	b.Clear()
	if ev := b.Evictions(); ev != 0 {
		t.Errorf("Evictions after Clear = %d, want 0", ev)
	}
}

func TestBufferEdgeCases(t *testing.T) {
	if _, err := NewBuffer(-1); err == nil {
		t.Error("negative capacity accepted")
	}
	b, err := NewBuffer(0)
	if err != nil {
		t.Fatal(err)
	}
	b.Put(0, &Page{ID: 0})
	if _, ok := b.Get(0); ok {
		t.Error("zero-capacity buffer cached a page")
	}

	b2, err := NewBuffer(1)
	if err != nil {
		t.Fatal(err)
	}
	// Re-putting the same page must refresh, not duplicate.
	b2.Put(0, &Page{ID: 0})
	b2.Put(0, &Page{ID: 0})
	if b2.Len() != 1 {
		t.Errorf("Len after duplicate Put = %d, want 1", b2.Len())
	}
	b2.Clear()
	if b2.Len() != 0 {
		t.Error("Clear left pages behind")
	}
	if h, m, r := b2.HitRate(); h != 0 || m != 0 || r != 0 {
		t.Error("Clear did not reset hit stats")
	}
	if b2.Capacity() != 1 {
		t.Errorf("Capacity = %d", b2.Capacity())
	}
}

func TestDefaultBufferPages(t *testing.T) {
	cases := []struct{ pages, want int }{
		{0, 0}, {5, 1}, {10, 1}, {100, 10}, {1234, 123},
	}
	for _, c := range cases {
		if got := DefaultBufferPages(c.pages); got != c.want {
			t.Errorf("DefaultBufferPages(%d) = %d, want %d", c.pages, got, c.want)
		}
	}
}

func TestPagerBufferedReads(t *testing.T) {
	d := newTestDisk(t, 4)
	buf, err := NewBuffer(2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPager(d, buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPages() != 4 {
		t.Errorf("NumPages = %d", p.NumPages())
	}

	// Two reads of the same page: one disk I/O.
	if _, err := p.ReadPage(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadPage(0); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Reads; got != 1 {
		t.Errorf("disk reads = %d, want 1 (second read should hit buffer)", got)
	}

	if p.Disk() != d || p.Buffer() != buf {
		t.Error("accessors do not return the configured components")
	}

	prev := p.ResetStats()
	if prev.Reads != 1 {
		t.Errorf("ResetStats returned %+v", prev)
	}
	// After reset the buffer is cold again.
	if _, err := p.ReadPage(0); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Reads; got != 1 {
		t.Errorf("disk reads after reset = %d, want 1", got)
	}
}

func TestPagerUnbuffered(t *testing.T) {
	d := newTestDisk(t, 2)
	p, err := NewPager(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.ReadPage(0); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Stats().Reads; got != 3 {
		t.Errorf("unbuffered disk reads = %d, want 3", got)
	}
	if _, err := NewPager(nil, nil); err == nil {
		t.Error("nil disk accepted")
	}
}

func TestPagerSurfacesDiskErrors(t *testing.T) {
	d := newTestDisk(t, 2)
	p, err := NewPager(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.FailOn(func(PageID) error { return fmt.Errorf("dead sector") })
	if _, err := p.ReadPage(0); err == nil {
		t.Error("pager swallowed a disk error")
	}
}
