//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps the first size bytes of f read-only. size must be positive
// (a dataset with pages always has a non-empty page file).
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("store: mmap of %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("store: mmap: %w", err)
	}
	return data, nil
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
