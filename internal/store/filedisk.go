package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"metricdb/internal/obs"
	"metricdb/internal/vec"
)

// FileDiskOptions parameterizes OpenFileDisk.
type FileDiskOptions struct {
	// Mmap maps the page file into memory and decodes pages from the
	// mapping instead of issuing preads. Best effort: when the platform
	// has no mmap support (or the map fails), the disk falls back to
	// pread and Mode reports which path is live.
	Mmap bool
}

// StorageStats is a snapshot of a FileDisk's real-I/O activity — distinct
// from IOStats, which carries the paper's cost-model accounting shared
// with the simulated disk.
type StorageStats struct {
	// Preads counts read syscalls issued against the page file (zero in
	// mmap mode, where the kernel pages data in transparently).
	Preads int64
	// BytesRead is the total page-record bytes fetched (both modes).
	BytesRead int64
	// ChecksumFailures counts reads rejected because the page record
	// failed validation — torn writes, bit rot, misdirected I/O.
	ChecksumFailures int64
}

// FileDisk is a file-backed PageSource: it serves the pages of a persistent
// dataset directory (see WriteDataset) by positional reads of the page
// file, verifying every record against the manifest checksum before
// decoding. It implements exactly the simulated Disk's I/O accounting —
// reads serialize on a mutex and are classified sequential/random by
// physical adjacency — so the two backends are interchangeable under the
// differential harness, the fault injector, and the buffer pool.
type FileDisk struct {
	dir  string
	man  *Manifest
	f    *os.File
	data []byte // non-nil in mmap mode
	mode string // "pread" or "mmap"
	// grid is the dataset-wide quantization grid from the manifest, shared
	// by every decoded columnar page that carries a code section.
	grid *vec.QuantGrid

	mu        sync.Mutex
	lastRead  PageID
	reads     atomic.Int64
	seqReads  atomic.Int64
	randReads atomic.Int64

	preads      atomic.Int64
	bytesRead   atomic.Int64
	checksumErr atomic.Int64

	// tracer, when set, times each read (pread + verify + decode) as a
	// storage_read span. Atomic so SetTracer is safe mid-flight.
	tracer atomic.Pointer[obs.Tracer]
}

var _ PageSource = (*FileDisk)(nil)

// OpenFileDisk opens the persistent dataset in dir: it loads and validates
// the published manifest, opens the page file it references, and checks the
// file is at least as long as the manifest requires. Page contents are not
// read (and so not verified) until first access.
func OpenFileDisk(dir string, opts FileDiskOptions) (*FileDisk, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	d := &FileDisk{dir: dir, man: man, mode: "pread", lastRead: InvalidPage - 1, grid: man.Quant.Grid()}
	if len(man.Pages) > 0 {
		f, err := os.Open(filepath.Join(dir, man.PagesFile))
		if err != nil {
			return nil, fmt.Errorf("store: open page file: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close() //nolint:errcheck
			return nil, fmt.Errorf("store: stat page file: %w", err)
		}
		if st.Size() < man.PagesBytes {
			f.Close() //nolint:errcheck
			return nil, fmt.Errorf("%w: page file %s is %d bytes, manifest requires %d",
				ErrCorruptPage, man.PagesFile, st.Size(), man.PagesBytes)
		}
		d.f = f
		if opts.Mmap {
			if data, err := mmapFile(f, int(man.PagesBytes)); err == nil {
				d.data = data
				d.mode = "mmap"
			}
		}
	}
	return d, nil
}

// Close releases the page file (and mapping). The disk must not be used
// afterwards.
func (d *FileDisk) Close() error {
	var err error
	if d.data != nil {
		err = munmapFile(d.data)
		d.data = nil
	}
	if d.f != nil {
		if cerr := d.f.Close(); err == nil {
			err = cerr
		}
		d.f = nil
	}
	return err
}

// Manifest returns the dataset manifest. Callers must treat it as
// read-only.
func (d *FileDisk) Manifest() *Manifest { return d.man }

// Dir returns the dataset directory the disk was opened from.
func (d *FileDisk) Dir() string { return d.dir }

// Mode reports the live read path: "pread" or "mmap".
func (d *FileDisk) Mode() string { return d.mode }

// NumPages returns the number of pages in the dataset.
func (d *FileDisk) NumPages() int { return len(d.man.Pages) }

// Read fetches and decodes the page at pid, verifying its checksum against
// the manifest. I/O statistics follow the simulated disk's model: the read
// is counted and classified sequential (physically next) or random.
// Corruption — torn record, checksum mismatch, metadata disagreement — is
// returned as an error wrapping ErrCorruptPage and counted in
// StorageStats.ChecksumFailures; it is never silently served.
func (d *FileDisk) Read(pid PageID) (*Page, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if pid < 0 || int(pid) >= len(d.man.Pages) {
		return nil, fmt.Errorf("store: read of page %d outside dataset of %d pages", pid, len(d.man.Pages))
	}
	tr := d.tracer.Load()
	traced := tr.Enabled()
	var start time.Time
	if traced {
		start = time.Now()
	}
	page, err := d.fetch(pid)
	if traced {
		tr.ObserveSince(obs.PhaseStorageRead, start)
	}
	if err != nil {
		return nil, err
	}
	d.reads.Add(1)
	if pid == d.lastRead+1 {
		d.seqReads.Add(1)
	} else {
		d.randReads.Add(1)
	}
	d.lastRead = pid
	return page, nil
}

// fetch reads, verifies and decodes one page record.
func (d *FileDisk) fetch(pid PageID) (*Page, error) {
	e := d.man.Pages[pid]
	var rec []byte
	if d.data != nil {
		rec = d.data[e.Offset : e.Offset+e.Length]
	} else {
		rec = make([]byte, e.Length)
		if _, err := d.f.ReadAt(rec, e.Offset); err != nil {
			return nil, fmt.Errorf("store: pread page %d: %w", pid, err)
		}
		d.preads.Add(1)
	}
	d.bytesRead.Add(e.Length)
	page, err := DecodePage(rec)
	if err != nil {
		d.checksumErr.Add(1)
		return nil, fmt.Errorf("store: page %d: %w", pid, err)
	}
	if page.ID != pid || len(page.Items) != e.Items || crcOf(rec) != e.CRC32C {
		d.checksumErr.Add(1)
		return nil, fmt.Errorf("store: page %d: %w: record disagrees with manifest entry", pid, ErrCorruptPage)
	}
	if (page.Cols != nil) != d.man.Columnar {
		d.checksumErr.Add(1)
		return nil, fmt.Errorf("store: page %d: %w: record layout disagrees with manifest", pid, ErrCorruptPage)
	}
	if c := page.Cols; c != nil {
		if (c.F32 != nil) != d.man.F32 || (c.Codes != nil) != (d.man.Quant != nil) ||
			(d.man.Quant != nil && c.CodeBits != d.man.Quant.Bits) {
			d.checksumErr.Add(1)
			return nil, fmt.Errorf("store: page %d: %w: record sections disagree with manifest", pid, ErrCorruptPage)
		}
		// Attach the dataset-wide grid so code sections are usable for
		// filtering without re-reading the manifest per page.
		c.Grid = d.grid
	}
	return page, nil
}

// Stats returns the cost-model I/O statistics (lock-free).
func (d *FileDisk) Stats() IOStats {
	return IOStats{
		Reads:     d.reads.Load(),
		SeqReads:  d.seqReads.Load(),
		RandReads: d.randReads.Load(),
	}
}

// ResetStats zeroes the cost-model statistics (sequential tracking
// included) and returns the previous snapshot. Storage counters are left
// alone; they are lifetime totals.
func (d *FileDisk) ResetStats() IOStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := IOStats{
		Reads:     d.reads.Swap(0),
		SeqReads:  d.seqReads.Swap(0),
		RandReads: d.randReads.Swap(0),
	}
	d.lastRead = InvalidPage - 1
	return s
}

// Storage returns a snapshot of the real-I/O counters.
func (d *FileDisk) Storage() StorageStats {
	return StorageStats{
		Preads:           d.preads.Load(),
		BytesRead:        d.bytesRead.Load(),
		ChecksumFailures: d.checksumErr.Load(),
	}
}

// SetTracer installs (or with nil removes) the tracer that times reads as
// storage_read spans. The store pager forwards its tracer here
// automatically when a FileDisk sits directly beneath it.
func (d *FileDisk) SetTracer(tr *obs.Tracer) { d.tracer.Store(tr) }
