package store

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"metricdb/internal/vec"
)

// regularItems builds items with finite, well-spread coordinates (testItems
// mixes in 1e300-scale extremes that are legal for the format but make
// quantization-grid assertions awkward).
func regularItems(n, dim int) []Item {
	items := make([]Item, n)
	for i := range items {
		v := make(vec.Vector, dim)
		for d := range v {
			v[d] = float64((i*31+d*17)%97)/9.7 - 5
		}
		items[i] = Item{ID: ItemID(i + 1), Vec: v, Label: i % 3}
	}
	return items
}

func TestColumnizeAliasesAndPreserves(t *testing.T) {
	items := regularItems(23, 5)
	orig := make([]vec.Vector, len(items))
	for i := range items {
		orig[i] = append(vec.Vector(nil), items[i].Vec...)
	}
	pages, err := Paginate(items, 7)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := CoordinateBounds(pages, 5)
	g, err := vec.BuildQuantGrid(6, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if err := Columnize(pages, ColumnSpec{Columnar: true, F32: true, Quant: g}); err != nil {
		t.Fatal(err)
	}
	k := 0
	for _, p := range pages {
		b := p.Cols
		if b == nil || b.F32 == nil || b.Codes == nil || b.Grid != g || b.CodeBits != 6 {
			t.Fatalf("page %d: block missing requested representations: %+v", p.ID, b)
		}
		for i := range p.Items {
			if &p.Items[i].Vec[0] != &b.Item(i)[0] {
				t.Fatalf("page %d item %d: vector does not alias block row", p.ID, i)
			}
			for d, v := range p.Items[i].Vec {
				if math.Float64bits(v) != math.Float64bits(orig[k][d]) {
					t.Fatalf("page %d item %d dim %d: value changed %v -> %v", p.ID, i, d, orig[k][d], v)
				}
				if b.ItemF32(i)[d] != float32(v) {
					t.Fatalf("page %d item %d dim %d: f32 sibling mismatch", p.ID, i, d)
				}
			}
			k++
		}
	}
	// Idempotent: a second pass must not rebuild anything.
	before := pages[0].Cols
	if err := Columnize(pages, ColumnSpec{Columnar: true, F32: true, Quant: g}); err != nil {
		t.Fatal(err)
	}
	if pages[0].Cols != before {
		t.Fatal("re-columnize replaced an up-to-date block")
	}
}

func TestColumnSourceWrapsV1Reads(t *testing.T) {
	items := regularItems(40, 4)
	pages, err := Paginate(items, 16)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := NewDisk(pages)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := CoordinateBounds(pages, 4)
	g, err := vec.BuildQuantGrid(4, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	src := WrapColumns(disk, ColumnSpec{Columnar: true, F32: true, Quant: g})
	if src == PageSource(disk) {
		t.Fatal("non-empty spec returned the source unwrapped")
	}
	if WrapColumns(disk, ColumnSpec{}) != PageSource(disk) {
		t.Fatal("empty spec should not wrap")
	}
	if UnwrapSource(src) != PageSource(disk) {
		t.Fatal("UnwrapSource did not strip the column wrapper")
	}
	for pid := 0; pid < src.NumPages(); pid++ {
		p, err := src.Read(PageID(pid))
		if err != nil {
			t.Fatal(err)
		}
		if p.Cols == nil || p.Cols.F32 == nil || p.Cols.Codes == nil {
			t.Fatalf("page %d read through wrapper lacks columnar representations", pid)
		}
	}
	if got, want := src.Stats().Reads, int64(src.NumPages()); got != want {
		t.Fatalf("wrapper forwarded %d reads, want %d", got, want)
	}
	if src.ResetStats().Reads == 0 || src.Stats().Reads != 0 {
		t.Fatal("wrapper did not forward ResetStats")
	}
}

// TestWriteDatasetColumnar round-trips a dataset built with every sibling
// representation through the file disk: version-2 manifest, bit-identical
// coordinates, siblings present, and the manifest grid attached to every
// decoded page.
func TestWriteDatasetColumnar(t *testing.T) {
	dir := t.TempDir()
	items := regularItems(50, 3)
	pages, err := Paginate(items, 8)
	if err != nil {
		t.Fatal(err)
	}
	meta := DatasetMeta{Dim: 3, PageCapacity: 8, F32: true, QuantBits: 5,
		Attrs: map[string]string{"kind": "test"}}
	if err := WriteDataset(dir, pages, meta, WriteOptions{NoSync: true}); err != nil {
		t.Fatal(err)
	}
	d, err := OpenFileDisk(dir, FileDiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close() //nolint:errcheck
	man := d.Manifest()
	if man.Version != FormatVersionColumnar || !man.Columnar || !man.F32 || man.Quant == nil || man.Quant.Bits != 5 {
		t.Fatalf("manifest misses columnar facts: %+v", man)
	}
	g := man.Quant.Grid()
	k := 0
	for pid := 0; pid < d.NumPages(); pid++ {
		p, err := d.Read(PageID(pid))
		if err != nil {
			t.Fatal(err)
		}
		b := p.Cols
		if b == nil || b.F32 == nil || b.Codes == nil || b.CodeBits != 5 {
			t.Fatalf("page %d decoded without requested representations", pid)
		}
		if b.Grid == nil || b.Grid.Bits != g.Bits {
			t.Fatalf("page %d decoded without the manifest grid attached", pid)
		}
		codes := make([]uint8, 3)
		for i := range p.Items {
			if p.Items[i].ID != items[k].ID || p.Items[i].Label != items[k].Label {
				t.Fatalf("page %d item %d identity mismatch", pid, i)
			}
			for dd, v := range p.Items[i].Vec {
				if math.Float64bits(v) != math.Float64bits(items[k].Vec[dd]) {
					t.Fatalf("page %d item %d dim %d: coordinate not bit-identical", pid, i, dd)
				}
				if b.ItemF32(i)[dd] != float32(v) {
					t.Fatalf("page %d item %d dim %d: f32 sibling mismatch", pid, i, dd)
				}
			}
			b.Grid.EncodeInto(p.Items[i].Vec, codes)
			for dd, c := range b.ItemCodes(i) {
				if c != codes[dd] {
					t.Fatalf("page %d item %d dim %d: stored code %d, grid encodes %d", pid, i, dd, c, codes[dd])
				}
			}
			k++
		}
	}
	if k != len(items) {
		t.Fatalf("read back %d items, wrote %d", k, len(items))
	}
}

// TestWriteDatasetPlainStaysV1 pins the compatibility promise: a build with
// no columnar requests still writes a version-1 dataset.
func TestWriteDatasetPlainStaysV1(t *testing.T) {
	dir := t.TempDir()
	pages, err := Paginate(regularItems(10, 2), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDataset(dir, pages, DatasetMeta{Dim: 2}, WriteOptions{NoSync: true}); err != nil {
		t.Fatal(err)
	}
	d, err := OpenFileDisk(dir, FileDiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close() //nolint:errcheck
	if d.Manifest().Version != FormatVersion || d.Manifest().Columnar {
		t.Fatalf("plain build produced manifest %+v", d.Manifest())
	}
	p, err := d.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cols != nil {
		t.Fatal("version-1 record decoded with a columnar block")
	}
}

// TestWriteDatasetAdoptsPageBlocks: pages that already arrive columnar force
// a version-2 dataset even when the meta requests nothing.
func TestWriteDatasetAdoptsPageBlocks(t *testing.T) {
	dir := t.TempDir()
	pages, err := Paginate(regularItems(20, 4), 8)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := CoordinateBounds(pages, 4)
	g, err := vec.BuildQuantGrid(7, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if err := Columnize(pages, ColumnSpec{Columnar: true, Quant: g}); err != nil {
		t.Fatal(err)
	}
	if err := WriteDataset(dir, pages, DatasetMeta{Dim: 4}, WriteOptions{NoSync: true}); err != nil {
		t.Fatal(err)
	}
	d, err := OpenFileDisk(dir, FileDiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close() //nolint:errcheck
	man := d.Manifest()
	if man.Version != FormatVersionColumnar || man.F32 || man.Quant == nil || man.Quant.Bits != 7 {
		t.Fatalf("adopted manifest wrong: %+v", man)
	}
	p, err := d.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cols == nil || p.Cols.Codes == nil || p.Cols.F32 != nil {
		t.Fatal("adopted dataset pages miss the representations the build carried")
	}
}

// TestFileDiskRejectsSectionMismatch: a manifest whose quantization width
// disagrees with the page records (same record length, so it survives both
// the manifest shape check and the CRC) is caught by the read-time
// cross-check, never silently served with the wrong grid.
func TestFileDiskRejectsSectionMismatch(t *testing.T) {
	dir := t.TempDir()
	pages, err := Paginate(regularItems(12, 3), 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDataset(dir, pages, DatasetMeta{Dim: 3, QuantBits: 5}, WriteOptions{NoSync: true}); err != nil {
		t.Fatal(err)
	}
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	man.Quant.Bits = 6 // same section length, different grid width
	body, err := EncodeManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), body, 0o666); err != nil {
		t.Fatal(err)
	}
	d, err := OpenFileDisk(dir, FileDiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close() //nolint:errcheck
	if _, err := d.Read(0); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("section mismatch read returned %v, want ErrCorruptPage", err)
	}
	if d.Storage().ChecksumFailures != 1 {
		t.Fatalf("mismatch not counted as checksum failure: %+v", d.Storage())
	}
}
