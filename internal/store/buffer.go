package store

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// Buffer is a fixed-capacity LRU page buffer. The paper's experiments use a
// buffer sized at 10 % of the index, which DefaultBufferPages computes.
// Buffer is safe for concurrent use; the hit/miss counters are atomic so
// that HitRate can be sampled without contending with readers on the LRU
// lock while a query pipeline is running.
type Buffer struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used; values are PageID
	entries   map[PageID]*bufferEntry
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type bufferEntry struct {
	page *Page
	elem *list.Element
}

// NewBuffer creates an LRU buffer holding up to capacity pages. It returns
// an error if capacity is negative; a zero-capacity buffer is valid and
// caches nothing (every lookup misses).
func NewBuffer(capacity int) (*Buffer, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("store: buffer capacity must be >= 0, got %d", capacity)
	}
	return &Buffer{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[PageID]*bufferEntry),
	}, nil
}

// DefaultBufferPages returns the paper's buffer sizing: 10 % of numPages,
// but at least 1 page when the database is non-empty.
func DefaultBufferPages(numPages int) int {
	n := numPages / 10
	if n < 1 && numPages > 0 {
		n = 1
	}
	return n
}

// Get returns the cached page and true on a hit, or nil and false on a miss.
func (b *Buffer) Get(pid PageID) (*Page, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[pid]
	if !ok {
		b.misses.Add(1)
		return nil, false
	}
	b.hits.Add(1)
	b.order.MoveToFront(e.elem)
	return e.page, true
}

// Put inserts or refreshes a page, evicting the least recently used page if
// the buffer is full.
func (b *Buffer) Put(pid PageID, p *Page) {
	if b.capacity == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.entries[pid]; ok {
		e.page = p
		b.order.MoveToFront(e.elem)
		return
	}
	if b.order.Len() >= b.capacity {
		oldest := b.order.Back()
		if oldest != nil {
			b.order.Remove(oldest)
			delete(b.entries, oldest.Value.(PageID))
			b.evictions.Add(1)
		}
	}
	elem := b.order.PushFront(pid)
	b.entries[pid] = &bufferEntry{page: p, elem: elem}
}

// Len returns the number of buffered pages.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.order.Len()
}

// Capacity returns the maximum number of buffered pages.
func (b *Buffer) Capacity() int { return b.capacity }

// HitRate returns hits, misses, and the hit ratio (0 when unused). It never
// takes the LRU lock, so sampling it cannot stall concurrent readers.
func (b *Buffer) HitRate() (hits, misses int64, ratio float64) {
	h, m := b.hits.Load(), b.misses.Load()
	if h+m == 0 {
		return h, m, 0
	}
	return h, m, float64(h) / float64(h+m)
}

// Evictions returns the number of LRU evictions since creation (or the last
// Clear). Like HitRate it never takes the LRU lock.
func (b *Buffer) Evictions() int64 { return b.evictions.Load() }

// Clear empties the buffer and resets hit statistics.
func (b *Buffer) Clear() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.order.Init()
	b.entries = make(map[PageID]*bufferEntry)
	b.hits.Store(0)
	b.misses.Store(0)
	b.evictions.Store(0)
}
