// Package store provides the storage substrate of the library: database
// items, fixed-capacity data pages, a simulated disk with I/O accounting,
// and an LRU buffer pool.
//
// The paper measures I/O cost as the number of data pages read from disk
// (with pages ordered by physical address so seeks are minimized). The
// simulated disk reproduces exactly this accounting: every read is counted
// and classified as sequential (next physical page) or random (requires a
// seek), and the buffer pool absorbs re-reads just like the 10 %-of-index
// buffer used in the paper's experiments.
package store

import (
	"fmt"

	"metricdb/internal/vec"
)

// ItemID identifies a database object.
type ItemID uint64

// Item is one database object: an identifier plus its feature vector.
// An optional Label carries class information for the classification
// experiments (it plays no role in query processing).
type Item struct {
	ID    ItemID
	Vec   vec.Vector
	Label int
}

// PageID is the physical address of a data page. Reads of consecutive
// PageIDs are sequential I/O; anything else costs a seek.
type PageID int32

// InvalidPage is the zero-value "no such page" sentinel.
const InvalidPage PageID = -1

// Page is a fixed-capacity data page holding items.
//
// When Cols is non-nil the page is columnar: the item coordinates live in
// one contiguous item-major float64 buffer (plus optional float32 and
// quantized siblings) and every Items[i].Vec aliases its row of that
// buffer. Per-pair code therefore reads the exact same values either way;
// the block only adds contiguity and the sibling representations. Cols is
// set at build time (Columnize, engine configs) or by the version-2 page
// decoder, never mutated while a page is served.
type Page struct {
	ID    PageID
	Items []Item
	Cols  *vec.Block
}

// Paginate packs items into pages of at most capacity items each, in the
// given order, assigning consecutive PageIDs starting at 0. It returns an
// error if capacity is not positive.
func Paginate(items []Item, capacity int) ([]*Page, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("store: page capacity must be positive, got %d", capacity)
	}
	pages := make([]*Page, 0, (len(items)+capacity-1)/capacity)
	for start := 0; start < len(items); start += capacity {
		end := start + capacity
		if end > len(items) {
			end = len(items)
		}
		pages = append(pages, &Page{
			ID:    PageID(len(pages)),
			Items: items[start:end],
		})
	}
	return pages, nil
}

// PageCapacityForBlockSize returns how many d-dimensional float64 items fit
// in a disk block of blockSize bytes, assuming 8 bytes per coordinate plus
// 8 bytes of identifier per item (the layout the paper's 32 KB X-tree blocks
// imply). The result is at least 1 so degenerate configurations still work.
func PageCapacityForBlockSize(blockSize, dim int) int {
	per := 8*dim + 8
	c := blockSize / per
	if c < 1 {
		c = 1
	}
	return c
}
