// Persistent pivot-table format.
//
// A pivot table is persisted next to the dataset it was computed from, in
// one self-describing record with a trailing CRC-32C (the same discipline
// as the page records of internal/store):
//
//	offset  size   field
//	0       4      magic "MDPV"
//	4       4      version (1)
//	8       8      dataset generation (int64) the table was built from
//	16      8      item count (uint64)
//	24      4      pivot count k (uint32)
//	28      4      page count g (uint32)
//	32      4      dimensionality d (uint32)
//	36      4      metric name length L (uint32)
//	40      L      metric name (UTF-8)
//	…       k*8d   pivot vectors (float64 bit patterns, pivot-major)
//	…       k*8g   per-page minima  MinD (float64, pivot-major)
//	…       k*8g   per-page maxima  MaxD (float64, pivot-major)
//	…       4      CRC-32C (Castagnoli) over bytes [0, len-4)
//
// Writes are crash-safe: the record goes to a temporary name, is fsynced,
// atomically renamed over TableFileName, and the directory is fsynced — a
// crash leaves the old table or the new one, never a torn file. A reader
// that finds no table, a corrupt table, or a table whose generation, metric
// or shape disagree with the live manifest simply rebuilds; the persisted
// table is a pure cache of a deterministic construction.
package pivot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"unicode/utf8"

	"metricdb/internal/vec"
)

const (
	// TableFileName is the persisted table's name inside a dataset
	// directory.
	TableFileName = "pivots.dat"
	// tableTmpName is the staging name used before the atomic rename.
	tableTmpName = "pivots.dat.tmp"

	tableMagic   = uint32('M') | uint32('D')<<8 | uint32('P')<<16 | uint32('V')<<24
	tableVersion = 1
	// tableHeaderLen is the fixed prefix before the metric name.
	tableHeaderLen = 40
	// tableTrailerLen is the trailing checksum.
	tableTrailerLen = 4
	// Decode bounds: a corrupt header must not drive a huge allocation.
	maxTablePivots     = 1 << 16
	maxTablePages      = 1 << 24
	maxTableDim        = 1 << 20
	maxTableMetricName = 1 << 10
)

// ErrCorruptTable marks a persisted pivot table whose bytes fail
// validation; callers treat it as "no table" and rebuild.
var ErrCorruptTable = errors.New("pivot: corrupt table record")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeTable serializes the table.
func EncodeTable(t *Table) ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("pivot: encode of nil table")
	}
	k := len(t.Pivots)
	g := t.NumPages()
	if k == 0 {
		return nil, fmt.Errorf("pivot: encode of table with no pivots")
	}
	if len(t.MetricName) > maxTableMetricName {
		return nil, fmt.Errorf("pivot: metric name of %d bytes exceeds format maximum", len(t.MetricName))
	}
	size := tableHeaderLen + len(t.MetricName) + k*8*t.Dim + 2*k*8*g + tableTrailerLen
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, tableMagic)
	buf = binary.LittleEndian.AppendUint32(buf, tableVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Generation))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Items))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Dim))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.MetricName)))
	buf = append(buf, t.MetricName...)
	for _, pv := range t.Pivots {
		if pv.Dim() != t.Dim {
			return nil, fmt.Errorf("pivot: pivot of dimension %d in table of dimension %d", pv.Dim(), t.Dim)
		}
		for _, c := range pv {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c))
		}
	}
	for _, rows := range [][][]float64{t.MinD, t.MaxD} {
		if len(rows) != k {
			return nil, fmt.Errorf("pivot: table has %d aggregate rows for %d pivots", len(rows), k)
		}
		for _, row := range rows {
			if len(row) != g {
				return nil, fmt.Errorf("pivot: aggregate row of %d pages in table of %d", len(row), g)
			}
			for _, d := range row {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d))
			}
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf, nil
}

// DecodeTable deserializes a table record, verifying structure and the
// checksum. It never panics on arbitrary input: every length is validated
// against the actual data size before any allocation, and all failures
// return an error wrapping ErrCorruptTable.
func DecodeTable(data []byte) (*Table, error) {
	if len(data) < tableHeaderLen+tableTrailerLen {
		return nil, fmt.Errorf("%w: record of %d bytes is shorter than the %d-byte envelope",
			ErrCorruptTable, len(data), tableHeaderLen+tableTrailerLen)
	}
	if m := binary.LittleEndian.Uint32(data[0:4]); m != tableMagic {
		return nil, fmt.Errorf("%w: bad magic %#08x", ErrCorruptTable, m)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != tableVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptTable, v)
	}
	gen := int64(binary.LittleEndian.Uint64(data[8:16]))
	items := binary.LittleEndian.Uint64(data[16:24])
	k := binary.LittleEndian.Uint32(data[24:28])
	g := binary.LittleEndian.Uint32(data[28:32])
	dim := binary.LittleEndian.Uint32(data[32:36])
	nameLen := binary.LittleEndian.Uint32(data[36:40])
	if gen < 0 || items > math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible provenance (generation %d, items %d)", ErrCorruptTable, gen, items)
	}
	if k == 0 || k > maxTablePivots || g > maxTablePages || dim > maxTableDim || nameLen > maxTableMetricName {
		return nil, fmt.Errorf("%w: implausible header (pivots %d, pages %d, dim %d, name %d)",
			ErrCorruptTable, k, g, dim, nameLen)
	}
	want := uint64(tableHeaderLen) + uint64(nameLen) + uint64(k)*8*uint64(dim) +
		2*uint64(k)*8*uint64(g) + tableTrailerLen
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("%w: record is %d bytes, header implies %d", ErrCorruptTable, len(data), want)
	}
	sum := binary.LittleEndian.Uint32(data[len(data)-tableTrailerLen:])
	if got := crc32.Checksum(data[:len(data)-tableTrailerLen], castagnoli); got != sum {
		return nil, fmt.Errorf("%w: checksum %#08x, record claims %#08x", ErrCorruptTable, got, sum)
	}
	name := string(data[tableHeaderLen : tableHeaderLen+int(nameLen)])
	if !utf8.ValidString(name) {
		return nil, fmt.Errorf("%w: metric name is not valid UTF-8", ErrCorruptTable)
	}
	t := &Table{
		MetricName: name,
		Generation: gen,
		Items:      int(items),
		Dim:        int(dim),
		Pivots:     make([]vec.Vector, k),
		MinD:       make([][]float64, k),
		MaxD:       make([][]float64, k),
	}
	off := tableHeaderLen + int(nameLen)
	for p := range t.Pivots {
		pv := make(vec.Vector, dim)
		for d := range pv {
			pv[d] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
		t.Pivots[p] = pv
	}
	for _, rows := range []([][]float64){t.MinD, t.MaxD} {
		for p := range rows {
			row := make([]float64, g)
			for i := range row {
				row[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
				off += 8
			}
			rows[p] = row
		}
	}
	// Aggregates must be ordered (min ≤ max) and not NaN — a NaN bound
	// would silently disable pruning comparisons.
	for p := 0; p < int(k); p++ {
		for i := 0; i < int(g); i++ {
			lo, hi := t.MinD[p][i], t.MaxD[p][i]
			if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
				return nil, fmt.Errorf("%w: aggregate [%d][%d] is [%v, %v]", ErrCorruptTable, p, i, lo, hi)
			}
		}
	}
	return t, nil
}

// WriteTableFile persists the table into dir crash-safely: staged write,
// fsync, atomic rename, directory fsync.
func WriteTableFile(dir string, t *Table) error {
	body, err := EncodeTable(t)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, tableTmpName)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("pivot: %w", err)
	}
	defer f.Close() //nolint:errcheck // double close of *os.File is harmless
	if _, err := f.Write(body); err != nil {
		return fmt.Errorf("pivot: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("pivot: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("pivot: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, TableFileName)); err != nil {
		return fmt.Errorf("pivot: publish table: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("pivot: %w", err)
	}
	defer d.Close() //nolint:errcheck
	if err := d.Sync(); err != nil {
		return fmt.Errorf("pivot: fsync %s: %w", dir, err)
	}
	return nil
}

// LoadTableFile reads the persisted table of dir. A missing file returns
// os.ErrNotExist (wrapped); a corrupt one returns ErrCorruptTable. Callers
// treat both as "rebuild".
func LoadTableFile(dir string) (*Table, error) {
	data, err := os.ReadFile(filepath.Join(dir, TableFileName))
	if err != nil {
		return nil, fmt.Errorf("pivot: %w", err)
	}
	return DecodeTable(data)
}
