// Package pivot implements a LAESA-style pivot table engine (Micó, Oncina
// and Vidal's Linear Approximating and Eliminating Search Algorithm,
// adapted to page granularity): a small set of pivot objects is chosen from
// the data by farthest-first traversal, the distance from every pivot to
// every item is computed once at build time, and each data page keeps the
// per-pivot minimum and maximum of those distances. A query computes its
// distance to each pivot exactly once (in Engine.Prepare); every page probe
// then costs only arithmetic:
//
//	lb(page) = max over pivots p of max(d(q,p) − maxD(p,page),
//	                                    minD(p,page) − d(q,p), 0)
//	ub(page) = min over pivots p of d(q,p) + maxD(p,page)
//
// Both follow from the triangle inequality alone — for every item o on the
// page, |d(q,p) − d(p,o)| ≤ d(q,o) ≤ d(q,p) + d(p,o) and d(p,o) lies in
// [minD, maxD] — so the bounds are sound for any metric, unlike MBR
// geometry, which needs coordinatewise structure. The table is the
// data-side sibling of the paper's query-distance matrix: the same lemmas,
// precomputed against fixed reference objects instead of the batch's other
// queries.
//
// Page bounds are only as tight as the pages are coherent, so New lays
// items out in pivot order — sorted by their distance to the first pivot —
// which makes every page a thin annulus around that pivot and its rings
// genuinely selective. NewStored instead serves whatever pagination an
// existing dataset directory has (the table is computed for that layout,
// persisted beside the pages, and reloaded without any distance
// calculations — see persist.go); bounds over an incoherent layout are
// looser but remain sound.
package pivot

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"metricdb/internal/engine"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// DefaultPivots is the pivot count when the configuration does not choose
// one. LAESA's accuracy grows quickly and then saturates with the pivot
// count; 16 keeps the table a few pages' worth of floats while giving the
// lower bounds most of their power at moderate intrinsic dimensionality.
const DefaultPivots = 16

// Config parameterizes a pivot table engine.
type Config struct {
	// Pivots is the number of pivots; 0 selects DefaultPivots. Values
	// above the item count are clamped at build time.
	Pivots int
	// PageCapacity is the number of items per data page. Required.
	PageCapacity int
	// BufferPages sizes the LRU buffer (0 disables; negative selects the
	// 10 % default).
	BufferPages int
	// Metric is the distance used for pivot selection, the table, and the
	// per-query pivot distances. Nil selects Euclidean.
	Metric vec.Metric
	// WrapDisk, when non-nil, interposes on the freshly built disk before
	// the pager is attached (fault injection).
	WrapDisk func(store.PageSource) (store.PageSource, error)
	// Columns selects the sibling representations materialized on each
	// page at build time.
	Columns store.ColumnSpec
}

// Table is the precomputed pivot structure: the pivots themselves and the
// per-page aggregates of the pivot-to-item distances. It is independent of
// the query path and serializable (see persist.go).
type Table struct {
	// MetricName names the metric the distances were computed under; a
	// table loaded for a different metric is unusable.
	MetricName string
	// Generation and Items bind a persisted table to the dataset build it
	// was computed from (the manifest's generation and item count).
	Generation int64
	Items      int
	// Dim is the vector dimensionality of the pivots.
	Dim int
	// Pivots are the chosen reference objects, in selection order.
	Pivots []vec.Vector
	// MinD[p][page] and MaxD[p][page] are the minimum and maximum of
	// d(Pivots[p], o) over the items o of the page.
	MinD [][]float64
	MaxD [][]float64
	// BuildDistCalcs is the number of metric evaluations the construction
	// spent (pivot selection rows double as table rows, so this is
	// len(Pivots) × Items). Not persisted.
	BuildDistCalcs int64
}

// NumPivots returns the pivot count.
func (t *Table) NumPivots() int { return len(t.Pivots) }

// NumPages returns the page count the table was aggregated over.
func (t *Table) NumPages() int {
	if len(t.MinD) == 0 {
		return 0
	}
	return len(t.MinD[0])
}

// BuildTable selects npivots pivots by farthest-first traversal and
// aggregates the pivot-to-item distance matrix at page granularity, with
// pages defined by pageLens over items in order (the sequential layout of
// store.Paginate and of persistent dataset directories). The construction
// is deterministic: the first pivot is the first item, and each further
// pivot is the item maximizing its distance to the nearest already-chosen
// pivot (ties broken by lowest index), so a rebuilt table is bit-identical
// to a persisted one.
func BuildTable(items []store.Item, pageLens []int, npivots int, metric vec.Metric) (*Table, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("pivot: empty database")
	}
	if npivots <= 0 {
		npivots = DefaultPivots
	}
	if npivots > len(items) {
		npivots = len(items)
	}
	if metric == nil {
		metric = vec.Euclidean{}
	}
	total := 0
	for _, n := range pageLens {
		if n < 0 {
			return nil, fmt.Errorf("pivot: negative page length")
		}
		total += n
	}
	if total != len(items) {
		return nil, fmt.Errorf("pivot: page lengths sum to %d items, expected %d", total, len(items))
	}

	t := &Table{
		MetricName: metric.Name(),
		Items:      len(items),
		Dim:        items[0].Vec.Dim(),
		Pivots:     make([]vec.Vector, 0, npivots),
		MinD:       make([][]float64, 0, npivots),
		MaxD:       make([][]float64, 0, npivots),
	}
	// nearest[o] is the distance from item o to its closest chosen pivot;
	// the next pivot is the argmax. Each chosen pivot's full distance row
	// is exactly a table row, so selection costs nothing extra.
	nearest := make([]float64, len(items))
	for i := range nearest {
		nearest[i] = math.Inf(1)
	}
	next := 0
	row := make([]float64, len(items))
	for len(t.Pivots) < npivots {
		pv := append(vec.Vector(nil), items[next].Vec...)
		for o := range items {
			d := metric.Distance(pv, items[o].Vec)
			row[o] = d
			if d < nearest[o] {
				nearest[o] = d
			}
		}
		t.BuildDistCalcs += int64(len(items))
		minD, maxD := aggregateRow(row, pageLens)
		t.Pivots = append(t.Pivots, pv)
		t.MinD = append(t.MinD, minD)
		t.MaxD = append(t.MaxD, maxD)
		next = 0
		for o := 1; o < len(items); o++ {
			if nearest[o] > nearest[next] {
				next = o
			}
		}
	}
	return t, nil
}

// orderByPivot returns the items sorted by ascending distance to the first
// item — the pivot the farthest-first selection starts from — with ties
// broken by input position. Sequential pagination of the result yields
// annulus-shaped pages whose first-pivot rings are as thin as the data
// allows. The sort is deterministic and does not mutate the input slice.
func orderByPivot(items []store.Item, metric vec.Metric) []store.Item {
	type keyed struct {
		d   float64
		idx int
	}
	keys := make([]keyed, len(items))
	first := items[0].Vec
	for i := range items {
		keys[i] = keyed{d: metric.Distance(first, items[i].Vec), idx: i}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].d != keys[j].d {
			return keys[i].d < keys[j].d
		}
		return keys[i].idx < keys[j].idx
	})
	ordered := make([]store.Item, len(items))
	for i, k := range keys {
		ordered[i] = items[k.idx]
	}
	return ordered
}

// aggregateRow folds one pivot's item distances into per-page minima and
// maxima. Empty pages get [+Inf, -Inf], which makes their lower bound +Inf —
// an empty page can contain no answer.
func aggregateRow(row []float64, pageLens []int) (minD, maxD []float64) {
	minD = make([]float64, len(pageLens))
	maxD = make([]float64, len(pageLens))
	off := 0
	for pg, n := range pageLens {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, d := range row[off : off+n] {
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		minD[pg], maxD[pg] = lo, hi
		off += n
	}
	return minD, maxD
}

// Engine is a pivot table engine over a paged database. The page layout is
// identical to the sequential scan's; only the probe answers differ.
type Engine struct {
	pager        *store.Pager
	metric       vec.Metric
	table        *Table
	numItems     int
	pageLens     []int
	pageCapacity int
	pivotCalcs   atomic.Int64
}

var (
	_ engine.Engine      = (*Engine)(nil)
	_ engine.PivotCoster = (*Engine)(nil)
	_ engine.Described   = (*Engine)(nil)
)

// New builds a pivot engine over items according to cfg: items are laid
// out in pivot order (ascending distance to the first pivot, ties by input
// position), paginated onto a fresh simulated disk, and the pivot table is
// computed from that pagination.
func New(items []store.Item, cfg Config) (*Engine, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("pivot: empty database")
	}
	if cfg.Metric == nil {
		cfg.Metric = vec.Euclidean{}
	}
	items = orderByPivot(items, cfg.Metric)
	pages, err := store.Paginate(items, cfg.PageCapacity)
	if err != nil {
		return nil, fmt.Errorf("pivot: %w", err)
	}
	if err := store.Columnize(pages, cfg.Columns); err != nil {
		return nil, fmt.Errorf("pivot: %w", err)
	}
	disk, err := store.NewDisk(pages)
	if err != nil {
		return nil, fmt.Errorf("pivot: %w", err)
	}
	var src store.PageSource = disk
	if cfg.WrapDisk != nil {
		if src, err = cfg.WrapDisk(disk); err != nil {
			return nil, fmt.Errorf("pivot: %w", err)
		}
	}
	bufPages := cfg.BufferPages
	if bufPages < 0 {
		bufPages = store.DefaultBufferPages(len(pages))
	}
	var buf *store.Buffer
	if bufPages > 0 {
		if buf, err = store.NewBuffer(bufPages); err != nil {
			return nil, fmt.Errorf("pivot: %w", err)
		}
	}
	pager, err := store.NewPager(src, buf)
	if err != nil {
		return nil, fmt.Errorf("pivot: %w", err)
	}
	lens := make([]int, len(pages))
	for i, p := range pages {
		lens[i] = len(p.Items)
	}
	table, err := BuildTable(items, lens, cfg.Pivots, cfg.Metric)
	if err != nil {
		return nil, err
	}
	return &Engine{
		pager:        pager,
		metric:       cfg.Metric,
		table:        table,
		numItems:     len(items),
		pageLens:     lens,
		pageCapacity: cfg.PageCapacity,
	}, nil
}

// NewStored builds a pivot engine over an existing pager (a persistent
// dataset's own page layout) and an already-available table — either loaded
// from the dataset directory (no distance calculations at all) or freshly
// built by the caller. The table must match the pagination.
func NewStored(pager *store.Pager, table *Table, metric vec.Metric, numItems int, pageLens []int, pageCapacity int) (*Engine, error) {
	if pager == nil {
		return nil, fmt.Errorf("pivot: nil pager")
	}
	if table == nil {
		return nil, fmt.Errorf("pivot: nil table")
	}
	if metric == nil {
		metric = vec.Euclidean{}
	}
	if err := table.CheckShape(metric.Name(), numItems, len(pageLens)); err != nil {
		return nil, err
	}
	total := 0
	for _, n := range pageLens {
		total += n
	}
	if total != numItems {
		return nil, fmt.Errorf("pivot: page lengths sum to %d items, expected %d", total, numItems)
	}
	return &Engine{
		pager:        pager,
		metric:       metric,
		table:        table,
		numItems:     numItems,
		pageLens:     append([]int(nil), pageLens...),
		pageCapacity: pageCapacity,
	}, nil
}

// CheckShape verifies that the table describes a dataset of the given
// metric, item count and page count — the validation both NewStored and the
// persisted-table loader apply before trusting a table.
func (t *Table) CheckShape(metricName string, items, pages int) error {
	if t.MetricName != metricName {
		return fmt.Errorf("pivot: table built under metric %q, want %q", t.MetricName, metricName)
	}
	if t.Items != items {
		return fmt.Errorf("pivot: table covers %d items, dataset holds %d", t.Items, items)
	}
	if len(t.Pivots) == 0 {
		return fmt.Errorf("pivot: table has no pivots")
	}
	for p := range t.Pivots {
		if len(t.MinD[p]) != pages || len(t.MaxD[p]) != pages {
			return fmt.Errorf("pivot: table row %d covers %d pages, dataset has %d", p, len(t.MinD[p]), pages)
		}
	}
	return nil
}

// Table exposes the engine's pivot table (for persistence).
func (e *Engine) Table() *Table { return e.table }

// Name returns "pivot".
func (e *Engine) Name() string { return "pivot" }

// Describe reports the pivot count for EXPLAIN output.
func (e *Engine) Describe() engine.Config {
	return engine.Config{PageCapacity: e.pageCapacity, Pivots: len(e.table.Pivots)}
}

// PivotDistCalcs returns the cumulative count of query-to-pivot distance
// calculations paid by Prepare.
func (e *Engine) PivotDistCalcs() int64 { return e.pivotCalcs.Load() }

// Prepare computes d(q, p) for every pivot p — the engine's entire
// per-query cost. Every subsequent Plan/MinDist/MaxDist probe is pure
// arithmetic over the table.
func (e *Engine) Prepare(q vec.Vector) engine.PreparedQuery {
	qp := make([]float64, len(e.table.Pivots))
	for i, pv := range e.table.Pivots {
		qp[i] = e.metric.Distance(q, pv)
	}
	e.pivotCalcs.Add(int64(len(qp)))
	return &prepared{e: e, qp: qp}
}

// prepared answers page probes for one query from the cached pivot
// distances.
type prepared struct {
	e  *Engine
	qp []float64
}

// Plan returns every page whose pivot lower bound is within queryDist, in
// ascending lower-bound order (ties by page ID).
func (p *prepared) Plan(queryDist float64) []engine.PageRef {
	n := len(p.e.pageLens)
	refs := make([]engine.PageRef, 0, n)
	for pid := 0; pid < n; pid++ {
		lb := p.lowerBound(pid)
		if lb <= queryDist {
			refs = append(refs, engine.PageRef{ID: store.PageID(pid), MinDist: lb})
		}
	}
	sortRefs(refs)
	return refs
}

// MinDist returns the pivot lower bound for the page.
func (p *prepared) MinDist(pid store.PageID) float64 { return p.lowerBound(int(pid)) }

// MaxDist returns the pivot upper bound for the page: the tightest
// d(q,pivot) + maxD over the pivots.
func (p *prepared) MaxDist(pid store.PageID) float64 {
	t := p.e.table
	best := math.Inf(1)
	for i, qp := range p.qp {
		maxD := t.MaxD[i][pid]
		if math.IsInf(maxD, -1) {
			continue // empty page: no finite upper bound needed
		}
		if ub := qp + maxD; ub < best {
			best = ub
		}
	}
	return best
}

func (p *prepared) lowerBound(pid int) float64 {
	t := p.e.table
	best := 0.0
	for i, qp := range p.qp {
		if d := qp - t.MaxD[i][pid]; d > best {
			best = d
		}
		if d := t.MinD[i][pid] - qp; d > best {
			best = d
		}
	}
	return best
}

// sortRefs orders refs by ascending lower bound with page ID as the
// deterministic tiebreak (the Hjaltason–Samet schedule).
func sortRefs(refs []engine.PageRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].MinDist != refs[j].MinDist {
			return refs[i].MinDist < refs[j].MinDist
		}
		return refs[i].ID < refs[j].ID
	})
}

// PageLen returns the number of items on the page.
func (e *Engine) PageLen(pid store.PageID) int { return e.pageLens[pid] }

// ReadPage reads a data page through the pager.
func (e *Engine) ReadPage(pid store.PageID) (*store.Page, error) {
	return e.pager.ReadPage(pid)
}

// NumPages returns the number of data pages.
func (e *Engine) NumPages() int { return len(e.pageLens) }

// NumItems returns the number of stored items.
func (e *Engine) NumItems() int { return e.numItems }

// Pager returns the underlying pager.
func (e *Engine) Pager() *store.Pager { return e.pager }
