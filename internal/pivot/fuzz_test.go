package pivot

import (
	"bytes"
	"testing"

	"metricdb/internal/vec"
)

// FuzzTableDecode drives DecodeTable with arbitrary bytes: it must never
// panic, and any record it accepts must satisfy the Table invariants and
// re-encode to the exact input bytes (the format has no redundancy, so
// decode ∘ encode is the identity on valid records).
func FuzzTableDecode(f *testing.F) {
	items := testItems(1, 50, 3)
	tab, err := BuildTable(items, []int{16, 16, 16, 2}, 4, vec.Euclidean{})
	if err != nil {
		f.Fatal(err)
	}
	tab.Generation = 7
	valid, err := EncodeTable(tab)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:40])
	mut := append([]byte(nil), valid...)
	mut[20] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := DecodeTable(data)
		if err != nil {
			return
		}
		if tab.NumPivots() == 0 || len(tab.MinD) != tab.NumPivots() || len(tab.MaxD) != tab.NumPivots() {
			t.Fatalf("accepted table with inconsistent shape: %+v", tab)
		}
		re, err := EncodeTable(tab)
		if err != nil {
			t.Fatalf("accepted table does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatal("decode/encode round trip is not the identity")
		}
	})
}
