package pivot

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"metricdb/internal/dataset"
	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

func testItems(seed int64, n, dim int) []store.Item {
	return dataset.Uniform(seed, n, dim)
}

func TestNewValidation(t *testing.T) {
	items := testItems(1, 50, 4)
	if _, err := New(nil, Config{PageCapacity: 8}); err == nil {
		t.Error("empty database accepted")
	}
	if _, err := New(items, Config{}); err == nil {
		t.Error("zero page capacity accepted")
	}
	e, err := New(items, Config{PageCapacity: 8, Pivots: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "pivot" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.NumItems() != 50 || e.NumPages() != 7 {
		t.Errorf("NumItems=%d NumPages=%d", e.NumItems(), e.NumPages())
	}
	if e.PageLen(0) != 8 || e.PageLen(6) != 2 {
		t.Errorf("PageLen = %d / %d", e.PageLen(0), e.PageLen(6))
	}
	if d := e.Describe(); d.Pivots != 4 || d.PageCapacity != 8 {
		t.Errorf("Describe = %+v", d)
	}
	// Pivot count above the item count is clamped.
	e2, err := New(items[:3], Config{PageCapacity: 8, Pivots: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Table().NumPivots(); got != 3 {
		t.Errorf("clamped pivot count = %d, want 3", got)
	}
}

// TestBuildDeterminism: the construction must be bit-reproducible, because
// a persisted table claims equality with a rebuild.
func TestBuildDeterminism(t *testing.T) {
	items := testItems(2, 400, 6)
	lens := []int{100, 100, 100, 100}
	a, err := BuildTable(items, lens, 8, vec.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildTable(items, lens, 8, vec.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	ea, err := EncodeTable(a)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := EncodeTable(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Error("two builds over the same items differ")
	}
	if a.BuildDistCalcs != int64(8*len(items)) {
		t.Errorf("BuildDistCalcs = %d, want %d", a.BuildDistCalcs, 8*len(items))
	}
}

// TestBoundsSafety property-tests the load-bearing contract: for every
// page, MinDist ≤ the true distance of every item on the page ≤ MaxDist.
// This is exactly the soundness of the |d(q,p) − d(p,o)| filter.
func TestBoundsSafety(t *testing.T) {
	const dim = 5
	for _, metric := range []vec.Metric{vec.Euclidean{}, vec.Manhattan{}, vec.Chebyshev{}} {
		items := testItems(3, 300, dim)
		e, err := New(items, Config{PageCapacity: 16, Pivots: 8, Metric: metric})
		if err != nil {
			t.Fatal(err)
		}
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			q := make(vec.Vector, dim)
			for d := range q {
				q[d] = rng.Float64()*1.5 - 0.25 // partly outside the data range
			}
			pq := e.Prepare(q)
			const eps = 1e-9
			for pid := 0; pid < e.NumPages(); pid++ {
				p, err := e.ReadPage(store.PageID(pid))
				if err != nil {
					return false
				}
				lb := pq.MinDist(store.PageID(pid))
				ub := pq.MaxDist(store.PageID(pid))
				for it := range p.Items {
					d := metric.Distance(q, p.Items[it].Vec)
					if d < lb-eps || d > ub+eps {
						t.Logf("metric %s page %d item %d: d=%v outside [%v, %v]",
							metric.Name(), pid, it, d, lb, ub)
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("metric %s: %v", metric.Name(), err)
		}
	}
}

// TestPlan checks ordering, duplicate-freedom, and the filter contract: a
// page is omitted only if its lower bound exceeds the query distance.
func TestPlan(t *testing.T) {
	const dim = 4
	items := testItems(4, 500, dim)
	e, err := New(items, Config{PageCapacity: 16, Pivots: 8})
	if err != nil {
		t.Fatal(err)
	}
	q := vec.Vector{0.9, 0.1, 0.4, 0.7}
	pq := e.Prepare(q)

	full := pq.Plan(math.Inf(1))
	if len(full) != e.NumPages() {
		t.Fatalf("unbounded plan has %d pages, want %d", len(full), e.NumPages())
	}
	if !sort.SliceIsSorted(full, func(i, j int) bool {
		if full[i].MinDist != full[j].MinDist {
			return full[i].MinDist < full[j].MinDist
		}
		return full[i].ID < full[j].ID
	}) {
		t.Error("plan not in ascending (MinDist, ID) order")
	}
	seen := map[store.PageID]bool{}
	for _, ref := range full {
		if seen[ref.ID] {
			t.Fatalf("page %d appears twice", ref.ID)
		}
		seen[ref.ID] = true
		if got := pq.MinDist(ref.ID); got != ref.MinDist {
			t.Fatalf("page %d: plan lb %v != MinDist %v", ref.ID, ref.MinDist, got)
		}
	}

	const eps = 0.35
	tight := pq.Plan(eps)
	inPlan := map[store.PageID]bool{}
	for _, ref := range tight {
		inPlan[ref.ID] = true
	}
	for pid := 0; pid < e.NumPages(); pid++ {
		id := store.PageID(pid)
		if lb := pq.MinDist(id); (lb <= eps) != inPlan[id] {
			t.Errorf("page %d: lb=%v eps=%v inPlan=%v", pid, lb, eps, inPlan[id])
		}
	}
	if len(tight) == len(full) {
		t.Error("tight range query pruned nothing — pivot filter powerless on uniform 4-d data")
	}
}

// TestPivotDistCalcs: Prepare pays exactly one distance per pivot, probes
// pay none.
func TestPivotDistCalcs(t *testing.T) {
	items := testItems(5, 200, 4)
	e, err := New(items, Config{PageCapacity: 16, Pivots: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.PivotDistCalcs(); got != 0 {
		t.Fatalf("PivotDistCalcs before any Prepare = %d", got)
	}
	pq := e.Prepare(items[0].Vec)
	if got := e.PivotDistCalcs(); got != 8 {
		t.Fatalf("PivotDistCalcs after Prepare = %d, want 8", got)
	}
	pq.Plan(math.Inf(1))
	pq.MinDist(0)
	pq.MaxDist(0)
	if got := e.PivotDistCalcs(); got != 8 {
		t.Fatalf("PivotDistCalcs after probes = %d, want 8 (probes must be arithmetic-only)", got)
	}
	e.Prepare(items[1].Vec)
	if got := e.PivotDistCalcs(); got != 16 {
		t.Fatalf("PivotDistCalcs after second Prepare = %d, want 16", got)
	}
}

// TestQueriesMatchScan: answers must be bit-identical to the sequential
// scan for both query types.
func TestQueriesMatchScan(t *testing.T) {
	const dim = 6
	items := testItems(6, 800, dim)
	pe, err := New(items, Config{PageCapacity: 16, Pivots: 12})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.New(items, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := vec.Euclidean{}
	pp, err := msq.New(pe, m, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := msq.New(sc, m, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		q := testItems(rng.Int63(), 1, dim)[0].Vec
		var typ query.Type
		if trial%2 == 0 {
			typ = query.NewKNN(8)
		} else {
			typ = query.NewRange(0.3)
		}
		ap, stp, err := pp.Single(q, typ)
		if err != nil {
			t.Fatal(err)
		}
		as, _, err := ps.Single(q, typ)
		if err != nil {
			t.Fatal(err)
		}
		p1, s1 := ap.Answers(), as.Answers()
		if len(p1) != len(s1) {
			t.Fatalf("trial %d: %d vs %d answers", trial, len(p1), len(s1))
		}
		for i := range p1 {
			if p1[i].ID != s1[i].ID || p1[i].Dist != s1[i].Dist {
				t.Fatalf("trial %d answer %d: %+v vs %+v", trial, i, p1[i], s1[i])
			}
		}
		if stp.PivotDistCalcs != 12 {
			t.Fatalf("trial %d: PivotDistCalcs = %d, want 12", trial, stp.PivotDistCalcs)
		}
	}
}

// TestStoredRoundTrip: persist a table, reload it, and serve bit-identical
// bounds through NewStored without a rebuild.
func TestStoredRoundTrip(t *testing.T) {
	const dim = 5
	items := testItems(8, 300, dim)
	e, err := New(items, Config{PageCapacity: 16, Pivots: 8})
	if err != nil {
		t.Fatal(err)
	}
	tab := e.Table()
	tab.Generation = 42

	dir := t.TempDir()
	if err := WriteTableFile(dir, tab); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTableFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Generation != 42 || loaded.Items != 300 || loaded.Dim != dim {
		t.Fatalf("loaded provenance: %+v", loaded)
	}
	eb, _ := EncodeTable(tab)
	lb, _ := EncodeTable(loaded)
	if !bytes.Equal(eb, lb) {
		t.Fatal("loaded table re-encodes differently")
	}

	// A stored engine over the same pager and the loaded table answers
	// identically.
	lens := make([]int, e.NumPages())
	for i := range lens {
		lens[i] = e.PageLen(store.PageID(i))
	}
	se, err := NewStored(e.Pager(), loaded, vec.Euclidean{}, e.NumItems(), lens, 16)
	if err != nil {
		t.Fatal(err)
	}
	q := items[17].Vec
	a, b := e.Prepare(q), se.Prepare(q)
	for pid := 0; pid < e.NumPages(); pid++ {
		id := store.PageID(pid)
		if a.MinDist(id) != b.MinDist(id) || a.MaxDist(id) != b.MaxDist(id) {
			t.Fatalf("page %d: stored bounds differ", pid)
		}
	}

	// Mismatched provenance is rejected.
	if _, err := NewStored(e.Pager(), loaded, vec.Manhattan{}, e.NumItems(), lens, 16); err == nil {
		t.Error("wrong metric accepted")
	}
	if _, err := NewStored(e.Pager(), loaded, vec.Euclidean{}, e.NumItems()+1, lens, 16); err == nil {
		t.Error("wrong item count accepted")
	}
	if _, err := NewStored(e.Pager(), loaded, vec.Euclidean{}, e.NumItems(), lens[:len(lens)-1], 16); err == nil {
		t.Error("wrong page count accepted")
	}
}

// TestDecodeRejectsCorruption: every single-byte flip of a valid record
// must be detected (CRC or structural validation), never panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	items := testItems(9, 60, 3)
	tab, err := BuildTable(items, []int{20, 20, 20}, 4, vec.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	body, err := EncodeTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTable(body); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	for i := 0; i < len(body); i++ {
		mut := append([]byte(nil), body...)
		mut[i] ^= 0x40
		if _, err := DecodeTable(mut); err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
	// Truncations at every length.
	for l := 0; l < len(body); l += 7 {
		if _, err := DecodeTable(body[:l]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", l)
		}
	}
}

// TestLoadTableFileMissing distinguishes a missing table (ErrNotExist)
// from a corrupt one.
func TestLoadTableFileMissing(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadTableFile(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing table: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, TableFileName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTableFile(dir); err == nil {
		t.Fatal("garbage table accepted")
	}
}
