package msq

import (
	"fmt"
	"math"
	"testing"

	"metricdb/internal/engine"
	"metricdb/internal/pivot"
	"metricdb/internal/pmtree"
	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vafile"
	"metricdb/internal/vec"
	"metricdb/internal/xtree"
)

// The layout differential harness pins the tentpole contract of the
// columnar layouts:
//
//   - LayoutSoA is bit-identical to LayoutAoS in answers AND in every
//     statistic (I/O, buffer behaviour, DistCalcs/Avoided/AvoidTries,
//     PartialAbandoned) at every pipeline width — the row kernels are
//     required to reproduce the scalar kernels' decisions exactly.
//   - LayoutQuant is bit-identical in answers, page reads and page
//     visits; only the CPU-side disposal of pairs may shift (filtered
//     pairs move out of DistCalcs/Avoided into QuantFiltered, and the
//     thinner known lists may change later avoidance decisions). The
//     three disposals still partition the identical offered set.
//   - LayoutF32 answers the same IDs with distances within a documented
//     rounding bound of the float64 run where its rows engage (no
//     avoidance interleaving), and is bit-identical where they don't.

// layoutMakers mirrors diffMakers but materializes the given sibling
// representations on every page at build time.
func layoutMakers(spec store.ColumnSpec) []diffMaker {
	return []diffMaker{
		{"scan", func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine {
			t.Helper()
			e, err := scan.NewWithConfig(items, scan.Config{PageCapacity: 16, BufferPages: 4, Columns: spec})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"xtree", func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine {
			t.Helper()
			e, err := xtree.Bulk(items, dim, xtree.Config{LeafCapacity: 16, DirFanout: 8, BufferPages: 4, Metric: m, Columns: spec})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"vafile", func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine {
			t.Helper()
			e, err := vafile.New(items, vafile.Config{PageCapacity: 16, BufferPages: 4, Metric: m, Columns: spec})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"pivot", func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine {
			t.Helper()
			e, err := pivot.New(items, pivot.Config{PageCapacity: 16, BufferPages: 4, Pivots: 8, Metric: m, Columns: spec})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"pmtree", func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine {
			t.Helper()
			e, err := pmtree.New(items, pmtree.Config{PageCapacity: 16, BufferPages: 4, Pivots: 8, Metric: m, Columns: spec})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
	}
}

// runLayout evaluates the batch on a fresh engine with the given layout.
func runLayout(t *testing.T, mk diffMaker, m vec.Metric, mode AvoidanceMode, width int, layout Layout, items []store.Item, dim int, queries []Query) diffRun {
	t.Helper()
	eng := mk.make(t, items, dim, m)
	proc, err := New(eng, m, Options{Avoidance: mode, Concurrency: width, Layout: layout})
	if err != nil {
		t.Fatal(err)
	}
	lists, stats, err := proc.NewSession().MultiQueryAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	r := diffRun{stats: stats, io: eng.Pager().Disk().Stats()}
	for _, l := range lists {
		r.answers = append(r.answers, append([]query.Answer(nil), l.Answers()...))
	}
	if buf := eng.Pager().Buffer(); buf != nil {
		r.hits, r.misses, _ = buf.HitRate()
	}
	return r
}

// TestDifferentialLayoutSoA: for every engine × metric × avoidance mode ×
// width, the SoA run must be indistinguishable from the AoS run — answers
// and the full Stats record compare with ==.
func TestDifferentialLayoutSoA(t *testing.T) {
	const dim = 4
	items := testDB(41, 300, dim)
	queries := diffBatch(dim, 42)
	metrics := []struct {
		name string
		m    vec.Metric
	}{
		{"euclidean", vec.Euclidean{}},
		{"manhattan", vec.Manhattan{}},
	}
	aosMakers := diffMakers()
	soaMakers := layoutMakers(store.ColumnSpec{Columnar: true})

	for i := range aosMakers {
		for _, mt := range metrics {
			for _, mode := range []AvoidanceMode{AvoidBoth, AvoidOff} {
				for _, width := range []int{1, 2, 8} {
					t.Run(fmt.Sprintf("%s/%s/%s/w%d", aosMakers[i].name, mt.name, mode, width), func(t *testing.T) {
						aos := runLayout(t, aosMakers[i], mt.m, mode, width, LayoutAoS, items, dim, queries)
						soa := runLayout(t, soaMakers[i], mt.m, mode, width, LayoutSoA, items, dim, queries)
						if diag, ok := identicalAnswers(aos.answers, soa.answers); !ok {
							t.Errorf("soa answers differ from aos: %s", diag)
						}
						if soa.stats != aos.stats {
							t.Errorf("soa stats differ:\n  aos: %+v\n  soa: %+v", aos.stats, soa.stats)
						}
						if soa.io != aos.io {
							t.Errorf("soa disk stats %+v, aos %+v", soa.io, aos.io)
						}
						if soa.hits != aos.hits || soa.misses != aos.misses {
							t.Errorf("soa buffer hits/misses %d/%d, aos %d/%d",
								soa.hits, soa.misses, aos.hits, aos.misses)
						}
					})
				}
			}
		}
	}
}

// TestDifferentialLayoutSoAExplain pins the observation twins of the row
// path: EXPLAIN over an SoA run must report the same batch stats as the
// unprofiled SoA run and the same per-query offered sets as an AoS
// EXPLAIN.
func TestDifferentialLayoutSoAExplain(t *testing.T) {
	const dim = 4
	items := testDB(43, 300, dim)
	queries := diffBatch(dim, 44)
	m := vec.Euclidean{}
	aosMk := diffMakers()[0]
	soaMk := layoutMakers(store.ColumnSpec{Columnar: true})[0]

	for _, width := range []int{1, 8} {
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			plain := runLayout(t, soaMk, m, AvoidOff, width, LayoutSoA, items, dim, queries)

			eng := soaMk.make(t, items, dim, m)
			proc, err := New(eng, m, Options{Avoidance: AvoidOff, Concurrency: width, Layout: LayoutSoA})
			if err != nil {
				t.Fatal(err)
			}
			ex, err := proc.ExplainContext(t.Context(), queries)
			if err != nil {
				t.Fatal(err)
			}
			if ex.Stats != plain.stats {
				t.Errorf("explain stats differ from plain soa run:\n  plain:   %+v\n  explain: %+v", plain.stats, ex.Stats)
			}

			aosEng := aosMk.make(t, items, dim, m)
			aosProc, err := New(aosEng, m, Options{Avoidance: AvoidOff, Concurrency: width})
			if err != nil {
				t.Fatal(err)
			}
			aosEx, err := aosProc.ExplainContext(t.Context(), queries)
			if err != nil {
				t.Fatal(err)
			}
			for q := range ex.Queries {
				if ex.Queries[q].Offered() != aosEx.Queries[q].Offered() ||
					ex.Queries[q].DistCalcs != aosEx.Queries[q].DistCalcs ||
					ex.Queries[q].PagesVisited != aosEx.Queries[q].PagesVisited {
					t.Errorf("query %d profile differs:\n  aos: %+v\n  soa: %+v", q, aosEx.Queries[q], ex.Queries[q])
				}
			}
		})
	}
}

// TestDifferentialLayoutQuant: the quantized pre-filter may only move
// pairs between the three CPU disposals; everything a caller can observe
// about answers and I/O stays bit-identical, and the disposals partition
// the same offered set as the AoS run.
func TestDifferentialLayoutQuant(t *testing.T) {
	const dim = 4
	items := testDB(45, 300, dim)
	queries := diffBatch(dim, 46)
	m := vec.Euclidean{}

	lo, hi := store.ItemCoordinateBounds(items, dim)
	grid, err := vec.BuildQuantGrid(8, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	aosMakers := diffMakers()
	quantMakers := layoutMakers(store.ColumnSpec{Columnar: true, Quant: grid})

	filteredSomething := false
	for i := range aosMakers {
		for _, mode := range []AvoidanceMode{AvoidBoth, AvoidOff} {
			for _, width := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("%s/%s/w%d", aosMakers[i].name, mode, width), func(t *testing.T) {
					aos := runLayout(t, aosMakers[i], m, mode, width, LayoutAoS, items, dim, queries)
					qr := runLayout(t, quantMakers[i], m, mode, width, LayoutQuant, items, dim, queries)
					if diag, ok := identicalAnswers(aos.answers, qr.answers); !ok {
						t.Errorf("quant answers differ from aos: %s", diag)
					}
					if qr.stats.PagesRead != aos.stats.PagesRead || qr.stats.PageVisits != aos.stats.PageVisits {
						t.Errorf("quant pages read/visited %d/%d, aos %d/%d",
							qr.stats.PagesRead, qr.stats.PageVisits, aos.stats.PagesRead, aos.stats.PageVisits)
					}
					if qr.io != aos.io {
						t.Errorf("quant disk stats %+v, aos %+v", qr.io, aos.io)
					}
					if qr.stats.QuantFiltered < 0 {
						t.Errorf("negative QuantFiltered %d", qr.stats.QuantFiltered)
					}
					if qr.stats.QuantFiltered > 0 {
						filteredSomething = true
					}
					offeredAos := aos.stats.DistCalcs + aos.stats.Avoided
					offeredQuant := qr.stats.DistCalcs + qr.stats.Avoided + qr.stats.QuantFiltered
					if offeredQuant != offeredAos {
						t.Errorf("offered set not partitioned: quant %d (calc %d + avoided %d + filtered %d), aos %d",
							offeredQuant, qr.stats.DistCalcs, qr.stats.Avoided, qr.stats.QuantFiltered, offeredAos)
					}
					if mode == AvoidOff {
						// Without avoidance the filter can only remove work.
						if qr.stats.DistCalcs != aos.stats.DistCalcs-qr.stats.QuantFiltered {
							t.Errorf("AvoidOff: DistCalcs %d, want %d - %d",
								qr.stats.DistCalcs, aos.stats.DistCalcs, qr.stats.QuantFiltered)
						}
					}
				})
			}
		}
	}
	if !filteredSomething {
		t.Error("quant filter rejected no pair in any configuration; the layout is untested")
	}
}

// TestDifferentialLayoutF32: where the float32 rows engage (no avoidance
// interleaving) the answers must keep the float64 run's IDs with
// distances inside the rounding bound; with avoidance on the layout falls
// back to exact float64 and must be bit-identical.
func TestDifferentialLayoutF32(t *testing.T) {
	const dim = 4
	items := testDB(47, 300, dim)
	queries := diffBatch(dim, 48)
	m := vec.Euclidean{}
	aosMakers := diffMakers()
	f32Makers := layoutMakers(store.ColumnSpec{Columnar: true, F32: true})

	// Coordinates are in [0,1], so a euclidean distance at dim 4 is at
	// most 2; float32 rounding of inputs and accumulator keeps the error
	// orders of magnitude below this (see DESIGN.md).
	const bound = 1e-5

	for i := range aosMakers {
		for _, width := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/w%d", aosMakers[i].name, width), func(t *testing.T) {
				aos := runLayout(t, aosMakers[i], m, AvoidOff, width, LayoutAoS, items, dim, queries)
				f32 := runLayout(t, f32Makers[i], m, AvoidOff, width, LayoutF32, items, dim, queries)
				if len(aos.answers) != len(f32.answers) {
					t.Fatalf("query count %d vs %d", len(aos.answers), len(f32.answers))
				}
				for q := range aos.answers {
					if len(aos.answers[q]) != len(f32.answers[q]) {
						t.Errorf("query %d: %d aos answers, %d f32 answers", q, len(aos.answers[q]), len(f32.answers[q]))
						continue
					}
					for j := range aos.answers[q] {
						a, b := aos.answers[q][j], f32.answers[q][j]
						if a.ID != b.ID {
							t.Errorf("query %d answer %d: id %d vs %d", q, j, a.ID, b.ID)
						}
						if d := math.Abs(a.Dist - b.Dist); d > bound {
							t.Errorf("query %d answer %d: |Δdist| = %g exceeds %g", q, j, d, bound)
						}
					}
				}
				// I/O must not move: the same pages are visited in the
				// same order regardless of distance rounding.
				if f32.stats.PagesRead != aos.stats.PagesRead || f32.io != aos.io {
					t.Errorf("f32 I/O differs: %+v vs %+v", f32.io, aos.io)
				}

				// With avoidance on, multi-query pages interleave pruning
				// state, the f32 rows stand down, and the run must be
				// bit-identical to AoS.
				aosAv := runLayout(t, aosMakers[i], m, AvoidBoth, width, LayoutAoS, items, dim, queries)
				f32Av := runLayout(t, f32Makers[i], m, AvoidBoth, width, LayoutF32, items, dim, queries)
				if diag, ok := identicalAnswers(aosAv.answers, f32Av.answers); !ok {
					t.Errorf("AvoidBoth: f32 answers differ from aos: %s", diag)
				}
				if f32Av.stats != aosAv.stats {
					t.Errorf("AvoidBoth: f32 stats differ:\n  aos: %+v\n  f32: %+v", aosAv.stats, f32Av.stats)
				}
			})
		}
	}
}

// TestLayoutF32Unsupported: metrics without a float32 row kernel must be
// rejected at construction, not silently served float64.
func TestLayoutF32Unsupported(t *testing.T) {
	items := testDB(49, 64, 3)
	eng := scanEngine(t, items)
	mink, err := vec.NewMinkowski(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(eng, mink, Options{Layout: LayoutF32}); err == nil {
		t.Error("LayoutF32 with a Minkowski metric accepted; no f32 kernel exists")
	}
	if _, err := New(eng, mink, Options{Layout: LayoutSoA}); err != nil {
		t.Errorf("LayoutSoA with a Minkowski metric rejected: %v", err)
	}
}
